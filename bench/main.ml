(* Benchmark harness.

   Regenerates every figure of the paper's evaluation (Figures 1 and 3–7;
   Figure 2 is a diagram), replays the two adversarial scenarios, runs the
   design-decision ablations called out in DESIGN.md, and finishes with
   Bechamel microbenchmarks of the hot data structures.

   Usage:
     dune exec bench/main.exe            # everything, full length (~3 min)
     dune exec bench/main.exe -- quick   # quarter-length simulation sweeps
     dune exec bench/main.exe -- figures # one section only; sections are
                                         # figures, scenarios, ablations,
                                         # faults, faults-live, claims,
                                         # micro, wire, saturation, wire2,
                                         # service, perf (combinable)

   The perf section measures real wall-clock time and allocation on a fixed
   deterministic workload and writes the numbers to BENCH_PR1.json; the
   faults-live section runs the same seeded drop plans on forked loopback
   clusters and writes BENCH_PR5.json; the saturation section sweeps
   offered load over the batched/pipelined/ring stack on both backends
   and writes the knee curves to BENCH_PR6.json; the wire2 section
   measures the in-place frame encoder against the legacy stage-then-copy
   path, re-runs the batched live knee over the poll(2) loop, times the
   chaos sweep at --jobs 1/2/4 and writes BENCH_PR10.json. *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Experiment = Ics_workload.Experiment
module Figures = Ics_workload.Figures
module Scenarios = Ics_workload.Scenarios
module Table = Ics_prelude.Table
module Stats = Ics_prelude.Stats
module Quorum = Ics_consensus.Quorum
module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster

let section title = Format.printf "@.##### %s #####@.@." title

(* --- The paper's figures ------------------------------------------------ *)

let run_figures ~quick =
  section "Paper figures (latency in ms; '*' marks saturated cells)";
  List.iter
    (fun f ->
      let table = Figures.run ~quick f in
      Table.print table;
      Format.printf "paper shape: %s@.@." f.Figures.paper_shape)
    Figures.all

(* --- Adversarial scenarios (S2.2, S3.3.2) ------------------------------- *)

let run_scenarios () =
  section "Violation scenarios (viol-ct = S2.2, viol-mr = S3.3.2)";
  List.iter
    (fun o -> Format.printf "%a@." Scenarios.pp_outcome o)
    [
      Scenarios.validity_scenario Scenarios.Faulty_ids;
      Scenarios.validity_scenario Scenarios.Indirect;
      Scenarios.mr_scenario Scenarios.Naive;
      Scenarios.mr_scenario Scenarios.Indirect_mr;
    ]

(* --- Ablations ----------------------------------------------------------- *)

(* abl-network: the latency-vs-throughput knee depends on the contention
   model.  Same P-III hosts, same 100 Mbit NICs — half-duplex shared
   segment vs full-duplex switch.  This isolates the fabric as a
   load-bearing modelling choice (and justifies reading the paper's
   "100 Base-TX Ethernet" as switched: the bus column collapses under
   loads their testbed demonstrably sustained). *)
let ablation_network ~quick =
  section "Ablation abl-network: fig1b sweep, shared bus vs switched (same hosts)";
  let sizes = [ 0; 1000; 2000; 3000; 4000 ] in
  let table =
    Table.create ~title:"indirect consensus, n=3, 800 msg/s, Setup 1 hosts"
      ~columns:[ "size[B]"; "shared-bus[ms]"; "switched[ms]" ]
  in
  List.iter
    (fun size ->
      let cell setup =
        let config = { Stack.abcast_indirect with Stack.setup } in
        let scale = if quick then 0.25 else 1.0 in
        let load =
          {
            Experiment.throughput = 800.0;
            body_bytes = size;
            duration = 500.0 +. (scale *. 4_000.0);
            warmup = 500.0;
          }
        in
        let r = Experiment.run config load in
        let saturated =
          (not r.Experiment.quiescent) || r.Experiment.latency.Stats.mean > 200.0
        in
        Printf.sprintf "%.3f%s" r.Experiment.latency.Stats.mean
          (if saturated then "*" else "")
      in
      Table.add_row table
        [ string_of_int size; cell Stack.Setup1_shared_bus; cell Stack.Setup1 ])
    sizes;
  Table.print table;
  Format.printf
    "expectation: the shared segment saturates ('*') as payloads grow while the@.\
     switch carries the same load — the contention model, isolated.@."

(* abl-quorum: MR-indirect's resilience boundary f < n/3, measured.  For
   each n we crash f processes and report whether atomic broadcast still
   terminates for the survivors. *)
let ablation_quorum () =
  section "Ablation abl-quorum: MR-indirect liveness at the f < n/3 boundary";
  let table =
    Table.create ~title:"MR-indirect: crashes vs termination (ideal LAN)"
      ~columns:[ "n"; "quorum"; "f"; "f<n/3"; "delivered-by-survivors" ]
  in
  List.iter
    (fun (n, f) ->
      let config =
        {
          Stack.default_config with
          Stack.n;
          algo = Stack.Mr;
          setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.1 };
          fd_kind = Stack.Oracle 10.0;
        }
      in
      let stack = Stack.create config in
      let engine = stack.Stack.engine in
      for c = 0 to f - 1 do
        Ics_sim.Engine.crash_at engine (n - 1 - c) ~at:1.0
      done;
      (* Survivors broadcast after the crashes have settled. *)
      Ics_sim.Engine.schedule engine ~at:40.0 (fun () ->
          ignore (Stack.abroadcast stack ~src:0 ~body_bytes:16));
      Stack.run ~until:3_000.0 ~max_events:3_000_000 stack;
      let delivered = List.length (Abcast.delivered_sequence stack.Stack.abcast 0) in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Quorum.two_thirds ~n);
          string_of_int f;
          string_of_bool (f <= Quorum.max_faults_two_thirds ~n);
          string_of_int delivered;
        ])
    [ (3, 0); (3, 1); (4, 1); (5, 1); (5, 2); (6, 1); (6, 2); (7, 2); (7, 3) ];
  Table.print table;
  Format.printf
    "expectation: delivered=1 exactly on rows where f<n/3 is true — the paper's@.\
     resilience loss (S3.3.3) made measurable.@."

(* abl-rb: message complexity of the three broadcast substrates in good
   runs, per abcast (the O(n) vs O(n^2) axis of S4.4).  Per-layer
   transport statistics isolate broadcast-layer messages from consensus
   traffic, so fd-relay's good-run count is exactly n-1. *)
let ablation_broadcast_cost ~quick =
  section "Ablation abl-rb: broadcast-layer messages per abcast by substrate";
  let table =
    Table.create
      ~title:"n=3..7, 64B payloads, 200 msg/s, ideal LAN (consensus column for scale)"
      ~columns:[ "n"; "flood"; "fd-relay"; "uniform"; "consensus(flood run)" ]
  in
  let scale = if quick then 0.25 else 1.0 in
  List.iter
    (fun n ->
      let run broadcast =
        let ordering =
          if broadcast = Stack.Uniform then Abcast.Consensus_on_ids
          else Abcast.Indirect_consensus
        in
        let config =
          {
            Stack.abcast_indirect with
            Stack.n;
            broadcast;
            ordering;
            setup = Stack.Ideal_lan { delay = 0.2; jitter = 0.02 };
          }
        in
        let load =
          {
            Experiment.throughput = 200.0;
            body_bytes = 64;
            duration = 500.0 +. (scale *. 3_000.0);
            warmup = 500.0;
          }
        in
        Experiment.run config load
      in
      let layer_per_abcast r layer =
        let msgs =
          List.fold_left
            (fun acc (l, m, _) -> if l = layer then acc + m else acc)
            0 r.Experiment.per_layer
        in
        float_of_int msgs /. float_of_int (max 1 r.Experiment.abroadcasts)
      in
      let flood_run = run Stack.Flood in
      Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (layer_per_abcast flood_run "rb");
          Printf.sprintf "%.1f" (layer_per_abcast (run Stack.Fd_relay) "rb");
          Printf.sprintf "%.1f" (layer_per_abcast (run Stack.Uniform) "urb");
          Printf.sprintf "%.1f" (layer_per_abcast flood_run "consensus");
        ])
    [ 3; 4; 5; 6; 7 ];
  Table.print table;
  Format.printf
    "expectation: fd-relay is exactly n-1 (O(n) good runs); flood is exactly@.\
     (n-1) + (n-1)(n-2); uniform is ~n^2 (payloads + acks) — S4.4's axis.@."

(* abl-rcv: sensitivity of Figure 3's overhead to the modelled cost of one
   rcv check.  The paper attributes the indirect-consensus overhead to
   those calls growing with the proposal size; scaling the per-identifier
   cost should scale the measured overhead roughly linearly below
   saturation and super-linearly near it. *)
let ablation_rcv_cost ~quick =
  section "Ablation abl-rcv: overhead vs rcv-check cost (fig3b's 700 msg/s point)";
  let table =
    Table.create ~title:"n=5, 1B payloads, 700 msg/s, Setup 1 hosts"
      ~columns:[ "rcv-cost-scale"; "indirect[ms]"; "faulty[ms]"; "overhead[ms]" ]
  in
  let scale_sim = if quick then 0.25 else 1.0 in
  let load =
    {
      Experiment.throughput = 700.0;
      body_bytes = 1;
      duration = 500.0 +. (scale_sim *. 4_000.0);
      warmup = 500.0;
    }
  in
  List.iter
    (fun scale ->
      let host =
        {
          Ics_net.Host.pentium3 with
          Ics_net.Host.rcv_check_fixed = Ics_net.Host.pentium3.rcv_check_fixed *. scale;
          rcv_check_per_id = Ics_net.Host.pentium3.rcv_check_per_id *. scale;
        }
      in
      let setup =
        Stack.Custom
          {
            name = Printf.sprintf "setup1-rcv-x%g" scale;
            build =
              (fun ~n -> (Ics_net.Model.switched Ics_net.Model.params_100mbps ~n, host));
          }
      in
      let run ordering =
        Experiment.run { Stack.abcast_indirect with Stack.n = 5; setup; ordering } load
      in
      let ind = run Abcast.Indirect_consensus in
      let fau = run Abcast.Consensus_on_ids in
      let mi = ind.Experiment.latency.Stats.mean in
      let mf = fau.Experiment.latency.Stats.mean in
      Table.add_row table
        [
          Printf.sprintf "%g" scale;
          Printf.sprintf "%.3f" mi;
          Printf.sprintf "%.3f" mf;
          Printf.sprintf "%.3f" (mi -. mf);
        ])
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ];
  Table.print table;
  Format.printf
    "expectation: overhead ~0 at scale 0, growing with the scale — the Figure 3@.\
     gap is the rcv cost and nothing else (the faulty column is unaffected).@."

(* ext-algo: the indirect adaptation generalized — Chandra–Toueg vs
   Mostéfaoui–Raynal vs the leader-based (Paxos-style) extension, all with
   the rcv guard, all above the same RB flood.  The paper remarks (§3.2.2)
   that Paxos and PBFT use "similar approaches"; this quantifies the
   latency profile of the three engines. *)
let extension_algorithms ~quick =
  section "Extension ext-algo: indirect consensus engines compared (Setup 1, n=3, 1B)";
  let table =
    Table.create ~title:"latency vs throughput by consensus engine"
      ~columns:[ "tput[msg/s]"; "ct[ms]"; "mr[ms]"; "lb[ms]" ]
  in
  let scale = if quick then 0.25 else 1.0 in
  List.iter
    (fun tput ->
      let cell algo =
        let config = { Stack.abcast_indirect with Stack.algo } in
        let load =
          {
            Experiment.throughput = tput;
            body_bytes = 1;
            duration = 500.0 +. (scale *. 4_000.0);
            warmup = 500.0;
          }
        in
        let r = Experiment.run config load in
        Printf.sprintf "%.3f%s" r.Experiment.latency.Stats.mean
          (if r.Experiment.quiescent then "" else "*")
      in
      Table.add_row table
        [ Printf.sprintf "%g" tput; cell Stack.Ct; cell Stack.Mr; cell Stack.Lb ])
    [ 100.; 300.; 500.; 700. ];
  Table.print table;
  Format.printf
    "expectation: MR's two-step fast path wins at low load; CT and LB pay an@.\
     extra step (coordinator proposal / accept round).  All three stay correct@.\
     under the same workloads (see the test suite's configuration matrix).@."

(* ext-scale: latency vs kernel size.  The paper's footnote 1 argues that
   ordering kernels are deliberately small; this sweep shows why — every
   stack's latency grows with n, and the O(n²)-broadcast stacks grow
   fastest. *)
let extension_scalability ~quick =
  section "Extension ext-scale: latency vs number of processes (Setup 1, 200 msg/s, 100B)";
  let table =
    Table.create ~title:"latency vs n by stack"
      ~columns:[ "n"; "indirect+flood[ms]"; "indirect+fd-relay[ms]"; "urb+ids[ms]" ]
  in
  let scale = if quick then 0.25 else 1.0 in
  let load =
    {
      Experiment.throughput = 200.0;
      body_bytes = 100;
      duration = 500.0 +. (scale *. 4_000.0);
      warmup = 500.0;
    }
  in
  List.iter
    (fun n ->
      let cell config =
        let r = Experiment.run { config with Stack.n } load in
        Printf.sprintf "%.3f%s" r.Experiment.latency.Stats.mean
          (if r.Experiment.quiescent then "" else "*")
      in
      Table.add_row table
        [
          string_of_int n;
          cell Stack.abcast_indirect;
          cell { Stack.abcast_indirect with Stack.broadcast = Stack.Fd_relay };
          cell Stack.abcast_urb;
        ])
    [ 3; 4; 5; 6; 7; 9 ];
  Table.print table;
  Format.printf
    "expectation: all grow with n; the O(n) fd-relay broadcast flattens the@.\
     curve relative to the flood, and URB's ack storm grows fastest.@."

(* --- Fault injection: the cost of lossy links ----------------------------- *)

(* What does packet loss cost once the retransmission channel heals it?
   Latency should degrade gracefully with the drop probability (each lost
   frame costs ~one RTO), and the retransmit/ack overhead quantifies the
   bandwidth price of quasi-reliability over a fair-lossy link. *)
let run_faults ~quick =
  section "Fault injection: lossy links healed by retransmission (indirect, n=3, 200 msg/s, 64B)";
  let module Nemesis = Ics_faults.Nemesis in
  let module Retransmit = Ics_net.Retransmit in
  let table =
    Table.create ~title:"per-frame drop probability vs delivery cost"
      ~columns:
        [ "drop-p"; "latency[ms]"; "retx/abcast"; "acks/abcast"; "drops"; "quiescent" ]
  in
  let scale = if quick then 0.25 else 1.0 in
  List.iter
    (fun p ->
      let fstats = ref None in
      let rstats = ref None in
      let setup =
        Stack.Custom
          {
            name = Printf.sprintf "lossy-%.2f" p;
            build =
              (fun ~n ->
                let base =
                  Ics_net.Model.constant ~delay:1.0 ~n ~seed:4242L ()
                in
                let plan =
                  if p = 0.0 then []
                  else
                    [
                      Nemesis.Drop
                        { link = Nemesis.any_link; prob = p; window = Nemesis.always };
                    ]
                in
                let lossy, fs = Nemesis.apply ~seed:7L ~plan ~base () in
                let model, rs = Retransmit.wrap lossy in
                fstats := Some fs;
                rstats := Some rs;
                (model, Ics_net.Host.instant));
          }
      in
      let config =
        { Stack.abcast_indirect with Stack.setup; fd_kind = Stack.Oracle 10.0 }
      in
      let load =
        {
          Experiment.throughput = 200.0;
          body_bytes = 64;
          duration = 500.0 +. (scale *. 2_000.0);
          warmup = 500.0;
        }
      in
      let r = Experiment.run config load in
      let ab = float_of_int (max 1 r.Experiment.abroadcasts) in
      let retx, acks =
        match !rstats with
        | Some s -> (s.Retransmit.retransmits, s.Retransmit.acks_sent)
        | None -> (0, 0)
      in
      let drops =
        match !fstats with
        | Some fs -> Ics_net.Model.Fault_stats.total_drops fs
        | None -> 0
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" p;
          Printf.sprintf "%.3f" r.Experiment.latency.Stats.mean;
          Printf.sprintf "%.2f" (float_of_int retx /. ab);
          Printf.sprintf "%.2f" (float_of_int acks /. ab);
          string_of_int drops;
          string_of_bool r.Experiment.quiescent;
        ])
    [ 0.0; 0.01; 0.05; 0.10 ];
  Table.print table;
  Format.printf
    "expectation: latency degrades gracefully with drop-p (a lost frame costs@.\
     ~one RTO); retransmits track the loss rate; every run stays quiescent.@."

(* --- Fault injection on the live backend ---------------------------------- *)

(* The lossy-link experiment replayed on real sockets: the same Nemesis
   drop plans, compiled by the same interposer, healed by the same
   retransmission channel — but over loopback TCP with forked OS
   processes.  The sim column is virtual time under a 1 ms constant-delay
   model; the live column is wall clock on loopback, so magnitudes differ
   by design and the comparison is about shape: latency degrading
   gracefully with drop-p, retransmissions tracking the loss rate, and
   the checker staying green on both backends. *)
let run_faults_live ~quick =
  section
    "Fault injection, live backend: seeded drops on loopback TCP (indirect, n=3, 64B)";
  let module Nemesis = Ics_faults.Nemesis in
  let module Retransmit = Ics_net.Retransmit in
  let module Profile = Ics_core.Profile in
  let drop_plan p =
    if p = 0.0 then []
    else [ Nemesis.Drop { link = Nemesis.any_link; prob = p; window = Nemesis.always } ]
  in
  let total key l = Option.value ~default:0 (List.assoc_opt key l) in
  let sim_cell p =
    let fstats = ref None in
    let rstats = ref None in
    let setup =
      Stack.Custom
        {
          name = Printf.sprintf "live-cmp-lossy-%.2f" p;
          build =
            (fun ~n ->
              let base = Ics_net.Model.constant ~delay:1.0 ~n ~seed:4242L () in
              let lossy, fs = Nemesis.apply ~seed:42L ~plan:(drop_plan p) ~base () in
              let model, rs = Retransmit.wrap lossy in
              fstats := Some fs;
              rstats := Some rs;
              (model, Ics_net.Host.instant));
        }
    in
    let config =
      { Stack.abcast_indirect with Stack.setup; fd_kind = Stack.Oracle 10.0 }
    in
    let scale = if quick then 0.25 else 1.0 in
    let load =
      {
        Experiment.throughput = 200.0;
        body_bytes = 64;
        duration = 500.0 +. (scale *. 2_000.0);
        warmup = 500.0;
      }
    in
    let r = Experiment.run config load in
    let ab = float_of_int (max 1 r.Experiment.abroadcasts) in
    let retx =
      match !rstats with Some s -> s.Retransmit.retransmits | None -> 0
    in
    let drops =
      match !fstats with
      | Some fs -> Ics_net.Model.Fault_stats.total_drops fs
      | None -> 0
    in
    ( r.Experiment.latency.Stats.mean,
      drops,
      float_of_int retx /. ab,
      r.Experiment.quiescent )
  in
  let live_cell p =
    let count = if quick then 10 else 25 in
    let node =
      {
        Node.default_workload with
        Node.profile =
          {
            Profile.default with
            Profile.n = 3;
            count;
            body_bytes = 64;
            gap_ms = 2.0;
            warmup_ms = 400.0;
            deadline_ms = 20_000.0;
          };
        seed = 42L;
        plan = drop_plan p;
        plan_seed = 42L;
      }
    in
    match Cluster.run { Cluster.default with Cluster.node } with
    | Error e ->
        Format.printf "drop-p %.2f: skipped (%s)@." p e;
        None
    | Ok o ->
        let ab = float_of_int (max 1 (3 * count)) in
        let mean, p95 =
          match o.Cluster.latency with
          | Some l -> (l.Cluster.mean_ms, l.Cluster.p95_ms)
          | None -> (Float.nan, Float.nan)
        in
        Some
          ( mean,
            p95,
            total "drops" o.Cluster.faults,
            float_of_int (total "retransmits" o.Cluster.retx) /. ab,
            Cluster.ok o )
  in
  let rows =
    if not (Cluster.supported ()) then begin
      Format.printf "live fault runs skipped: no loopback sockets here@.";
      []
    end
    else
      List.filter_map
        (fun p ->
          match live_cell p with
          | None -> None
          | Some live -> Some (p, sim_cell p, live))
        [ 0.0; 0.05; 0.10 ]
  in
  if rows <> [] then begin
    let table =
      Table.create
        ~title:
          "same drop plan, both backends (sim latency is virtual; live is wall clock)"
        ~columns:
          [
            "drop-p";
            "sim-lat[ms]";
            "sim-drops";
            "sim-retx/ab";
            "sim-quiet";
            "live-lat[ms]";
            "live-p95[ms]";
            "live-drops";
            "live-retx/ab";
            "live-ok";
          ]
    in
    List.iter
      (fun (p, (smean, sdrops, sretx, squiet), (lmean, lp95, ldrops, lretx, lok)) ->
        Table.add_row table
          [
            Printf.sprintf "%.2f" p;
            Printf.sprintf "%.3f" smean;
            string_of_int sdrops;
            Printf.sprintf "%.2f" sretx;
            string_of_bool squiet;
            Printf.sprintf "%.2f" lmean;
            Printf.sprintf "%.2f" lp95;
            string_of_int ldrops;
            Printf.sprintf "%.2f" lretx;
            string_of_bool lok;
          ])
      rows;
    Table.print table;
    Format.printf
      "expectation: both columns degrade gracefully with drop-p and stay@.\
       checker-green; retransmits track the loss rate on each backend.@."
  end;
  let oc = open_out "BENCH_PR5.json" in
  let row_json =
    String.concat ",\n"
      (List.map
         (fun (p, (smean, sdrops, sretx, squiet), (lmean, lp95, ldrops, lretx, lok)) ->
           Printf.sprintf
             {|    {"drop_p": %.2f,
     "sim": {"latency_mean_ms": %.3f, "drops": %d, "retx_per_abcast": %.2f, "quiescent": %b},
     "live": {"latency_mean_ms": %.2f, "latency_p95_ms": %.2f, "drops": %d, "retx_per_abcast": %.2f, "checker_ok": %b}}|}
             p smean sdrops sretx squiet lmean lp95 ldrops lretx lok)
         rows)
  in
  Printf.fprintf oc
    "{\n  \"workload\": {\"n\": 3, \"ordering\": \"indirect\", \"body_bytes\": 64},\n\
    \  \"faults_live\": [\n%s\n  ]\n}\n"
    row_json;
  close_out oc;
  Format.printf "wrote BENCH_PR5.json@."

(* --- Claim verification --------------------------------------------------- *)

let run_claims ~quick =
  section "Shape claims: the paper's conclusions, machine-checked";
  let verdicts = Ics_workload.Claims.verify ~quick () in
  List.iter (fun v -> Format.printf "%a@." Ics_workload.Claims.pp_verdict v) verdicts;
  Format.printf "@.%d/%d claims hold.@."
    (List.length (List.filter (fun v -> v.Ics_workload.Claims.holds) verdicts))
    (List.length verdicts)

(* --- Wall-clock perf harness --------------------------------------------- *)

(* A fixed, deterministic workload: the latency table it produces is
   bit-identical across runs and across hot-path refactors (same seed, same
   event order), so any change in the fingerprint line signals a semantics
   change, not noise.  Wall clock and Gc.minor_words are the real-time
   costs of simulating it. *)
let perf_config = { Stack.abcast_indirect with Stack.n = 3 }

let perf_load ~quick =
  {
    Experiment.throughput = 800.0;
    body_bytes = 1000;
    duration = 500.0 +. (if quick then 5_000.0 else 20_000.0);
    warmup = 500.0;
  }

let run_perf ~quick =
  section
    (Printf.sprintf
       "Perf harness: indirect consensus, n=3, 1kB, 800 msg/s, %g s of traffic"
       ((perf_load ~quick).Experiment.duration /. 1000.0));
  let load = perf_load ~quick in
  (* Warm-up run faults in every code path before timing starts. *)
  ignore (Experiment.run perf_config { load with Experiment.duration = 600.0 });
  let measure ~check =
    Gc.compact ();
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = Experiment.run ~check perf_config load in
    let wall = Unix.gettimeofday () -. t0 in
    (r, wall, Gc.minor_words () -. minor0)
  in
  let r, wall, minor = measure ~check:false in
  let rc, wallc, minorc = measure ~check:true in
  let per_abcast m (r : Experiment.result) =
    m /. float_of_int (max 1 r.Experiment.abroadcasts)
  in
  let events_per_s (r : Experiment.result) w = float_of_int r.Experiment.events /. w in
  let table =
    Table.create ~title:"simulator wall-clock cost (real time, not virtual)"
      ~columns:[ "mode"; "wall[s]"; "events"; "events/s"; "minor-w/abcast" ]
  in
  let row name r w m =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.4f" w;
        string_of_int r.Experiment.events;
        Printf.sprintf "%.0f" (events_per_s r w);
        Printf.sprintf "%.1f" (per_abcast m r);
      ]
  in
  row "trace-off" r wall minor;
  row "trace-on+checker" rc wallc minorc;
  Table.print table;
  let s = r.Experiment.latency in
  Format.printf "fingerprint: mean=%.9f p50=%.9f p99=%.9f sent_messages=%d@."
    s.Stats.mean s.Stats.p50 s.Stats.p99 r.Experiment.sent_messages;
  (match rc.Experiment.verdict with
  | Some v -> Format.printf "checker verdict ok: %b@." (Ics_checker.Checker.ok v)
  | None -> ());
  let oc = open_out "BENCH_PR1.json" in
  Printf.fprintf oc
    {|{
  "workload": {"n": 3, "ordering": "indirect", "body_bytes": 1000,
               "throughput": 800.0, "virtual_duration_ms": %g},
  "trace_off": {"wall_s": %.4f, "events": %d, "events_per_s": %.0f,
                "abroadcasts": %d, "minor_words_per_abroadcast": %.1f},
  "trace_on_checked": {"wall_s": %.4f, "events": %d, "events_per_s": %.0f,
                       "minor_words_per_abroadcast": %.1f},
  "fingerprint": {"latency_mean_ms": %.9f, "latency_p50_ms": %.9f,
                  "latency_p99_ms": %.9f, "sent_messages": %d}
}
|}
    load.Experiment.duration wall r.Experiment.events (events_per_s r wall)
    r.Experiment.abroadcasts (per_abcast minor r) wallc rc.Experiment.events
    (events_per_s rc wallc) (per_abcast minorc rc) s.Stats.mean s.Stats.p50
    s.Stats.p99 r.Experiment.sent_messages;
  close_out oc;
  Format.printf "wrote BENCH_PR1.json@."

(* --- Wire: codec throughput + live loopback clusters --------------------- *)

module Codec = Ics_codec.Codec
module Codecs = Ics_core.Codecs

let run_wire ~quick =
  section "Wire: codec throughput and live loopback clusters";
  Codecs.ensure ();
  (* Codec throughput on the two hot payload shapes: a full application
     message riding the rb layer, and a consensus estimate carrying a
     16-id proposal. *)
  (* Constructors stay private to their layers; draw representative
     payloads from each layer's registered fuzz generator. *)
  let payload_of name =
    let rng = Ics_prelude.Rng.create 7L in
    match
      List.find_opt (fun (e : Codec.entry) -> e.Codec.name = name) (Codec.entries ())
    with
    | Some e -> e.Codec.gen rng
    | None -> Fmt.failwith "no codec named %s" name
  in
  let app = payload_of "rb.data" in
  let est = payload_of "ct.est" in
  let codec_cell name payload =
    let iters = if quick then 50_000 else 200_000 in
    let w = Buffer.create 256 in
    (* encode *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Buffer.clear w;
      Codec.encode_payload_legacy w payload
    done;
    let enc_s = Unix.gettimeofday () -. t0 in
    let bytes = Buffer.contents w in
    (* decode *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Codec.decode_payload (Ics_codec.Prim.reader bytes))
    done;
    let dec_s = Unix.gettimeofday () -. t0 in
    let mbps s = float_of_int (iters * String.length bytes) /. s /. 1e6 in
    ( name,
      String.length bytes,
      float_of_int iters /. enc_s,
      mbps enc_s,
      float_of_int iters /. dec_s,
      mbps dec_s )
  in
  let codec_rows = [ codec_cell "rb.data" app; codec_cell "ct.est" est ] in
  let table =
    Table.create ~title:"codec throughput (single core)"
      ~columns:[ "payload"; "bytes"; "enc[Mop/s]"; "enc[MB/s]"; "dec[Mop/s]"; "dec[MB/s]" ]
  in
  List.iter
    (fun (name, bytes, enc_ops, enc_mb, dec_ops, dec_mb) ->
      Table.add_row table
        [
          name;
          string_of_int bytes;
          Printf.sprintf "%.2f" (enc_ops /. 1e6);
          Printf.sprintf "%.0f" enc_mb;
          Printf.sprintf "%.2f" (dec_ops /. 1e6);
          Printf.sprintf "%.0f" dec_mb;
        ])
    codec_rows;
  Table.print table;
  (* Live loopback clusters: real processes, real TCP, checker-verified. *)
  let live_rows =
    if not (Cluster.supported ()) then begin
      Format.printf "live clusters skipped: no loopback sockets here@.";
      []
    end
    else
      List.filter_map
        (fun n ->
          let count = if quick then 20 else 50 in
          let node =
            {
              Node.default_workload with
              Node.profile =
                {
                  Ics_core.Profile.default with
                  Ics_core.Profile.n;
                  count;
                  gap_ms = 2.0;
                  deadline_ms = 30_000.0;
                };
            }
          in
          match Cluster.run { Cluster.default with Cluster.node } with
          | Error e ->
              Format.printf "n=%d: skipped (%s)@." n e;
              None
          | Ok o ->
              let ok = Cluster.ok o in
              let mean, p95, p99, max_ms =
                match o.Cluster.latency with
                | Some l -> (l.Cluster.mean_ms, l.Cluster.p95_ms, l.Cluster.p99_ms, l.Cluster.max_ms)
                | None -> (Float.nan, Float.nan, Float.nan, Float.nan)
              in
              Some (n, count, ok, mean, p95, p99, max_ms, o.Cluster.throughput_msg_s))
        [ 3; 5; 7 ]
  in
  if live_rows <> [] then begin
    let table =
      Table.create
        ~title:"live loopback abcast (ct, indirect, flood; every node broadcasts)"
        ~columns:
          [ "n"; "msgs/node"; "checker"; "mean[ms]"; "p95[ms]"; "p99[ms]"; "max[ms]"; "tput[msg/s]" ]
    in
    List.iter
      (fun (n, count, ok, mean, p95, p99, max_ms, tput) ->
        Table.add_row table
          [
            string_of_int n;
            string_of_int count;
            (if ok then "ok" else "FAIL");
            Printf.sprintf "%.2f" mean;
            Printf.sprintf "%.2f" p95;
            Printf.sprintf "%.2f" p99;
            Printf.sprintf "%.2f" max_ms;
            Printf.sprintf "%.0f" tput;
          ])
      live_rows;
    Table.print table
  end;
  let oc = open_out "BENCH_PR3.json" in
  let codec_json =
    String.concat ",\n"
      (List.map
         (fun (name, bytes, enc_ops, enc_mb, dec_ops, dec_mb) ->
           Printf.sprintf
             {|    {"payload": %S, "bytes": %d, "enc_ops_s": %.0f, "enc_mb_s": %.1f, "dec_ops_s": %.0f, "dec_mb_s": %.1f}|}
             name bytes enc_ops enc_mb dec_ops dec_mb)
         codec_rows)
  in
  let live_json =
    String.concat ",\n"
      (List.map
         (fun (n, count, ok, mean, p95, p99, max_ms, tput) ->
           Printf.sprintf
             {|    {"n": %d, "msgs_per_node": %d, "checker_ok": %b, "latency_mean_ms": %.3f, "latency_p95_ms": %.3f, "latency_p99_ms": %.3f, "latency_max_ms": %.3f, "throughput_msg_s": %.0f}|}
             n count ok mean p95 p99 max_ms tput)
         live_rows)
  in
  Printf.fprintf oc "{\n  \"codec\": [\n%s\n  ],\n  \"live_loopback\": [\n%s\n  ]\n}\n"
    codec_json live_json;
  close_out oc;
  Format.printf "wrote BENCH_PR3.json@."

(* --- Saturation: offered-load knee curves -------------------------------- *)

module Saturation = Ics_workload.Saturation
module Profile = Ics_core.Profile

(* The PR3 live headline this PR's tentpole is measured against: ct/
   indirect/flood, unbatched, n=5, from BENCH_PR3.json's live_loopback. *)
let pr3_live_msg_s = 2_525.0

let run_saturation ~quick =
  section "Saturation: batched/pipelined indirect consensus, offered-load sweep";
  Codecs.ensure ();
  let n = 5 in
  let batched = { Abcast.batch = 32; pipeline = 4; flush_ms = 1.0 } in
  let status p =
    if Saturation.healthy p then "ok"
    else if p.Saturation.checker_ok then "overload (checker ok)"
    else "CHECKER FAIL"
  in
  let print_curve title (c : Saturation.curve) =
    let table =
      Table.create ~title
        ~columns:
          [ "offered"; "achieved"; "mean[ms]"; "p95[ms]"; "p99[ms]"; "max[ms]"; "status" ]
    in
    List.iter
      (fun (p : Saturation.point) ->
        Table.add_row table
          [
            Printf.sprintf "%.0f" p.Saturation.offered;
            Printf.sprintf "%.0f" p.Saturation.achieved;
            Printf.sprintf "%.2f" p.Saturation.latency.Stats.mean;
            Printf.sprintf "%.2f" p.Saturation.latency.Stats.p95;
            Printf.sprintf "%.2f" p.Saturation.latency.Stats.p99;
            Printf.sprintf "%.2f" p.Saturation.latency.Stats.max;
            status p;
          ])
      c.Saturation.points;
    Table.print table;
    match Saturation.knee c with
    | Some k ->
        Format.printf "knee: %.0f msg/s achieved at %.0f offered (p99 %.2f ms)@."
          k.Saturation.achieved k.Saturation.offered k.Saturation.latency.Stats.p99;
        Some k
    | None ->
        Format.printf "knee: no points@.";
        None
  in
  let point_json (p : Saturation.point) =
    let f v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
    Printf.sprintf
      {|      {"offered": %.0f, "achieved": %.1f, "mean_ms": %s, "p95_ms": %s, "p99_ms": %s, "max_ms": %s, "util": %s, "checker_ok": %b, "clean": %b, "delivered": %d}|}
      p.Saturation.offered p.Saturation.achieved
      (f p.Saturation.latency.Stats.mean)
      (f p.Saturation.latency.Stats.p95)
      (f p.Saturation.latency.Stats.p99)
      (f p.Saturation.latency.Stats.max)
      (f p.Saturation.util) p.Saturation.checker_ok p.Saturation.clean
      p.Saturation.delivered
  in
  let curve_json (c : Saturation.curve) =
    String.concat ",\n" (List.map point_json c.Saturation.points)
  in
  let knee_json = function
    | Some (k : Saturation.point) -> Printf.sprintf "%.1f" k.Saturation.achieved
    | None -> "null"
  in
  (* Simulated sweeps: the seed shape saturates around 1 k msg/s, the
     batched/pipelined/ring shape around 4 k; past the knee the open-loop
     sim drains everything, so p99 is the overload signal. *)
  let sim_dur = if quick then 2_000.0 else 4_000.0 in
  let sim_seed =
    Saturation.sim_curve ~duration_ms:sim_dur ~n ~batching:Abcast.no_batching
      ~broadcast:Profile.Flood
      [ 250.0; 500.0; 750.0; 1_000.0; 1_500.0; 2_000.0 ]
  in
  let k_sim_seed = print_curve "sim: seed (unbatched, flood)" sim_seed in
  let sim_batched =
    Saturation.sim_curve ~duration_ms:sim_dur ~n ~batching:batched
      ~broadcast:Profile.Ring
      [ 1_000.0; 2_000.0; 3_000.0; 4_000.0; 5_000.0; 6_000.0 ]
  in
  let k_sim_batched =
    print_curve "sim: batch=32 pipeline=4 flush=1ms, ring" sim_batched
  in
  (* Live sweeps: real processes on loopback TCP.  Overload shows up as
     the drain running long (p99 explodes), never as a dirty trace. *)
  let live_seed, live_batched =
    if not (Saturation.live_supported ()) then begin
      Format.printf "live sweeps skipped: no loopback sockets here@.";
      (None, None)
    end
    else
      (* Best-of-3 per point: one co-tenant burst during a 1 s arrival
         window is noise, not a capacity statement (see Saturation). *)
      let seed =
        Saturation.live_curve ~duration_ms:1_000.0 ~attempts:3 ~n
          ~batching:Abcast.no_batching ~broadcast:Profile.Flood
          [ 1_000.0; 2_000.0; 3_000.0; 4_000.0 ]
      in
      let batched_c =
        Saturation.live_curve ~duration_ms:1_000.0 ~attempts:3 ~n
          ~batching:batched ~broadcast:Profile.Ring
          [ 2_000.0; 5_000.0; 8_000.0; 11_000.0; 13_000.0; 15_000.0 ]
      in
      (Some seed, Some batched_c)
  in
  let k_live_seed = Option.map (print_curve "live: seed (unbatched, flood)") live_seed in
  let k_live_batched =
    Option.map (print_curve "live: batch=32 pipeline=4 flush=1ms, ring") live_batched
  in
  (match Option.join k_live_batched with
  | Some k ->
      Format.printf "@.live knee vs BENCH_PR3 (%.0f msg/s): %.1fx@." pr3_live_msg_s
        (k.Saturation.achieved /. pr3_live_msg_s)
  | None -> ());
  let oc = open_out "BENCH_PR6.json" in
  Printf.fprintf oc
    {|{
  "n": %d,
  "config": {"batch": %d, "pipeline": %d, "flush_ms": %.1f, "dissemination": "ring", "algo": "ct", "ordering": "indirect"},
  "p99_bound_ms": %.1f,
  "sim": {
    "seed": [
%s
    ],
    "batched": [
%s
    ]
  },
  "live": {
    "seed": [
%s
    ],
    "batched": [
%s
    ]
  },
  "knee_msg_s": {"sim_seed": %s, "sim_batched": %s, "live_seed": %s, "live_batched": %s},
  "pr3_live_msg_s": %.0f
}
|}
    n batched.Abcast.batch batched.Abcast.pipeline batched.Abcast.flush_ms
    Saturation.p99_bound_ms (curve_json sim_seed) (curve_json sim_batched)
    (match live_seed with Some c -> curve_json c | None -> "")
    (match live_batched with Some c -> curve_json c | None -> "")
    (knee_json k_sim_seed) (knee_json k_sim_batched)
    (knee_json (Option.join k_live_seed))
    (knee_json (Option.join k_live_batched))
    pr3_live_msg_s;
  close_out oc;
  Format.printf "wrote BENCH_PR6.json@."

(* --- Wire2: the encode-into/poll/jobs plane ------------------------------ *)

module Bq = Ics_codec.Bq
module Chaos = Ics_workload.Chaos

(* The PR6 live headline the poll(2) rewrite is measured against:
   batch=32/pipeline=4/ring at n=5 over the select(2) loop, from
   BENCH_PR6.json's knee_msg_s.live_batched. *)
let pr6_live_msg_s = 14_906.1

(* Time one full sim sweep at a given [jobs] in a forked child: the child
   may spawn domains freely, while this process must stay fork-capable
   for the live sections (a process that ever spawned a domain can no
   longer fork). *)
let timed_sweep_in_child ~quick ~jobs =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let seeds = if quick then 2 else 4 in
      let t0 = Unix.gettimeofday () in
      let cells =
        Chaos.sweep ~seed_base:11L ~seeds
          ~progress:(fun _ -> ())
          ~jobs ~stacks:Chaos.all_stacks ~plans:Chaos.all_plans ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      let ok = Chaos.indirect_clean cells && Chaos.blackout_reproduced cells in
      let line = Printf.sprintf "%b %.6f\n" ok dt in
      let b = Bytes.of_string line in
      ignore (Unix.write w b 0 (Bytes.length b) : int);
      Unix._exit 0
  | pid -> (
      Unix.close w;
      let buf = Bytes.create 256 in
      let n = Unix.read r buf 0 256 in
      Unix.close r;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> failwith "sweep child died");
      match Scanf.sscanf (Bytes.sub_string buf 0 n) " %B %f" (fun ok dt -> (ok, dt)) with
      | ok, dt -> (ok, dt))

let run_wire2 ~quick =
  section "Wire2: in-place frame encoding, poll(2) loop, parallel sweep";
  Codecs.ensure ();
  (* Frame encode rate: the stage-then-copy legacy path against
     encode-into — header reserved and backpatched around an in-place
     body, straight into the (drained-per-frame) outbound queue, exactly
     as the transport's emit path runs it. *)
  let payload_of name =
    let rng = Ics_prelude.Rng.create 7L in
    match
      List.find_opt (fun (e : Codec.entry) -> e.Codec.name = name) (Codec.entries ())
    with
    | Some e -> e.Codec.gen rng
    | None -> Fmt.failwith "no codec named %s" name
  in
  let iters = if quick then 100_000 else 400_000 in
  let frame_cell name =
    let payload = payload_of name in
    let b = Buffer.create 256 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Buffer.clear b;
      ignore (Codec.encode_frame_legacy b ~src:1 ~dst:2 ~layer:"consensus" payload : int)
    done;
    let legacy_s = Unix.gettimeofday () -. t0 in
    let frame_bytes = Buffer.length b in
    let q = Bq.create 256 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Codec.encode_frame q ~src:1 ~dst:2 ~layer:"consensus" payload : int);
      Bq.consume q (Bq.length q)
    done;
    let into_s = Unix.gettimeofday () -. t0 in
    ( name,
      frame_bytes,
      float_of_int iters /. legacy_s,
      float_of_int iters /. into_s,
      legacy_s /. into_s )
  in
  let enc_rows = [ frame_cell "rb.data"; frame_cell "ct.est" ] in
  let table =
    Table.create ~title:"frame encode (header+crc+body, single core)"
      ~columns:[ "payload"; "frame[B]"; "legacy[Mf/s]"; "into[Mf/s]"; "speedup" ]
  in
  List.iter
    (fun (name, bytes, legacy_fs, into_fs, speedup) ->
      Table.add_row table
        [
          name;
          string_of_int bytes;
          Printf.sprintf "%.2f" (legacy_fs /. 1e6);
          Printf.sprintf "%.2f" (into_fs /. 1e6);
          Printf.sprintf "%.2fx" speedup;
        ])
    enc_rows;
  Table.print table;
  (* Live saturation knee over the poll(2) loop, same shape as the PR6
     headline (batch=32/pipeline=4/ring, n=5, best-of-3). *)
  let batched = { Abcast.batch = 32; pipeline = 4; flush_ms = 1.0 } in
  let live_knee =
    if not (Saturation.live_supported ()) then begin
      Format.printf "live sweep skipped: no loopback sockets here@.";
      None
    end
    else begin
      let c =
        Saturation.live_curve ~duration_ms:1_000.0 ~attempts:3 ~n:5
          ~batching:batched ~broadcast:Profile.Ring
          [ 2_000.0; 5_000.0; 8_000.0; 11_000.0; 13_000.0; 15_000.0 ]
      in
      let table =
        Table.create ~title:"live: batch=32 pipeline=4 flush=1ms, ring, poll loop"
          ~columns:[ "offered"; "achieved"; "p99[ms]"; "status" ]
      in
      List.iter
        (fun (p : Saturation.point) ->
          Table.add_row table
            [
              Printf.sprintf "%.0f" p.Saturation.offered;
              Printf.sprintf "%.0f" p.Saturation.achieved;
              Printf.sprintf "%.2f" p.Saturation.latency.Stats.p99;
              (if Saturation.healthy p then "ok"
               else if p.Saturation.checker_ok then "overload (checker ok)"
               else "CHECKER FAIL");
            ])
        c.Saturation.points;
      Table.print table;
      match Saturation.knee c with
      | Some k ->
          Format.printf "knee: %.0f msg/s; vs BENCH_PR6 select loop (%.0f): %.2fx@."
            k.Saturation.achieved pr6_live_msg_s
            (k.Saturation.achieved /. pr6_live_msg_s);
          Some k.Saturation.achieved
      | None ->
          Format.printf "knee: no points@.";
          None
    end
  in
  (* Sweep wall clock at jobs = 1/2/4.  Each level runs in its own forked
     child (domains forbid forking afterwards); speedup is bounded by the
     host's core count, which the JSON records. *)
  let cores = Domain.recommended_domain_count () in
  let jobs_rows =
    List.map
      (fun jobs ->
        let ok, dt = timed_sweep_in_child ~quick ~jobs in
        (jobs, ok, dt))
      [ 1; 2; 4 ]
  in
  let base = match jobs_rows with (_, _, dt) :: _ -> dt | [] -> Float.nan in
  let table =
    Table.create
      ~title:(Printf.sprintf "chaos sweep wall clock (%d cores available)" cores)
      ~columns:[ "jobs"; "gates"; "wall[s]"; "speedup" ]
  in
  List.iter
    (fun (jobs, ok, dt) ->
      Table.add_row table
        [
          string_of_int jobs;
          (if ok then "ok" else "FAIL");
          Printf.sprintf "%.2f" dt;
          Printf.sprintf "%.2fx" (base /. dt);
        ])
    jobs_rows;
  Table.print table;
  let oc = open_out "BENCH_PR10.json" in
  let enc_json =
    String.concat ",\n"
      (List.map
         (fun (name, bytes, legacy_fs, into_fs, speedup) ->
           Printf.sprintf
             {|    {"payload": %S, "frame_bytes": %d, "legacy_frames_s": %.0f, "into_frames_s": %.0f, "speedup": %.3f}|}
             name bytes legacy_fs into_fs speedup)
         enc_rows)
  in
  let jobs_json =
    String.concat ",\n"
      (List.map
         (fun (jobs, ok, dt) ->
           Printf.sprintf
             {|    {"jobs": %d, "gates_ok": %b, "wall_s": %.3f, "speedup": %.3f}|}
             jobs ok dt (base /. dt))
         jobs_rows)
  in
  Printf.fprintf oc
    {|{
  "encode_frame": [
%s
  ],
  "live_knee_msg_s": %s,
  "pr6_live_msg_s": %.1f,
  "cores": %d,
  "sweep_jobs": [
%s
  ]
}
|}
    enc_json
    (match live_knee with Some k -> Printf.sprintf "%.1f" k | None -> "null")
    pr6_live_msg_s cores jobs_json;
  close_out oc;
  Format.printf "wrote BENCH_PR10.json@."

(* --- Service: closed-loop client plane ----------------------------------- *)

module Service = Ics_workload.Service

(* Tens of thousands of closed-loop clients against the replicated
   KV/ledger, sim and live at n=3 and n=5.  Every point is gated by the
   abcast battery plus the application battery, and the headline number
   is what a client sees: submit -> applied-at-home p50/p99.  The
   sim/live pair at each n must land on the same final state hash. *)
let run_service ~quick =
  section "Service: closed-loop KV/ledger clients, checker- and hash-gated";
  Codecs.ensure ();
  let batching = { Abcast.batch = 256; pipeline = 8; flush_ms = 1.0 } in
  let clients = if quick then 2_000 else 10_000 in
  let requests = 1 in
  let live_ok = Service.live_supported () in
  let pair n =
    let sim = Service.sim_point ~seed:1L ~batching ~n ~clients ~requests () in
    let live =
      if not live_ok then None
      else
        match
          Service.live_point ~seed:1L ~batching ~attempts:3 ~deadline_ms:60_000.0
            ~n ~clients ~requests ()
        with
        | Ok p -> Some p
        | Error _ -> None
    in
    (n, sim, live)
  in
  let results = List.map pair [ 3; 5 ] in
  let status (p : Service.point) =
    if p.Service.checker_ok && p.Service.clean then "ok"
    else if not p.Service.checker_ok then "CHECKER FAIL"
    else "INCOMPLETE"
  in
  let table =
    Table.create ~title:(Printf.sprintf "service: %d closed-loop clients" clients)
      ~columns:
        [ "backend"; "n"; "cmd/s"; "p50[ms]"; "p99[ms]"; "status"; "hash" ]
  in
  let row (p : Service.point) =
    Table.add_row table
      [
        (match p.Service.backend with `Sim -> "sim" | `Live -> "live");
        string_of_int p.Service.n;
        Printf.sprintf "%.0f" p.Service.achieved;
        Printf.sprintf "%.2f" p.Service.latency.Stats.p50;
        Printf.sprintf "%.2f" p.Service.latency.Stats.p99;
        status p;
        (match p.Service.hash with
        | Some (c, h) -> Printf.sprintf "%Lx@%d" h c
        | None -> "-");
      ]
  in
  List.iter
    (fun (_, sim, live) ->
      row sim;
      Option.iter row live)
    results;
  Table.print table;
  if not live_ok then
    Format.printf "live points skipped: no loopback sockets here@.";
  List.iter
    (fun (n, sim, live) ->
      match live with
      | None -> ()
      | Some lp ->
          if Service.hash_match sim lp then
            Format.printf "n=%d: sim and live state hashes agree@." n
          else Format.printf "n=%d: STATE HASH DIVERGENCE@." n)
    results;
  let point_json (p : Service.point) =
    Printf.sprintf
      {|      {"n": %d, "clients": %d, "requests": %d, "commands": %d, "achieved_cmd_s": %.1f, "p50_ms": %.3f, "p99_ms": %.3f, "mean_ms": %.3f, "checker_ok": %b, "clean": %b, "state_hash": %s, "cursor": %s}|}
      p.Service.n p.Service.clients p.Service.requests p.Service.commands
      p.Service.achieved p.Service.latency.Stats.p50
      p.Service.latency.Stats.p99 p.Service.latency.Stats.mean
      p.Service.checker_ok p.Service.clean
      (match p.Service.hash with
      | Some (_, h) -> Printf.sprintf {|"%Lx"|} h
      | None -> "null")
      (match p.Service.hash with
      | Some (c, _) -> string_of_int c
      | None -> "null")
  in
  let sims = List.map (fun (_, s, _) -> point_json s) results in
  let lives = List.filter_map (fun (_, _, l) -> Option.map point_json l) results in
  let agree =
    List.filter_map
      (fun (n, sim, live) ->
        Option.map
          (fun lp ->
            Printf.sprintf {|"n%d": %b|} n (Service.hash_match sim lp))
          live)
      results
  in
  let oc = open_out "BENCH_PR8.json" in
  Printf.fprintf oc
    {|{
  "clients": %d,
  "requests": %d,
  "config": {"batch": %d, "pipeline": %d, "flush_ms": %.1f, "algo": "ct", "ordering": "indirect"},
  "sim": [
%s
  ],
  "live": [
%s
  ],
  "hash_agreement": {%s}
}
|}
    clients requests batching.Abcast.batch batching.Abcast.pipeline
    batching.Abcast.flush_ms
    (String.concat ",\n" sims)
    (String.concat ",\n" lives)
    (String.concat ", " agree);
  close_out oc;
  Format.printf "wrote BENCH_PR8.json@."

(* --- Bechamel microbenchmarks -------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let rng_test =
    Test.make ~name:"rng.next_int64"
      (Staged.stage
         (let rng = Ics_prelude.Rng.create 1L in
          fun () -> ignore (Ics_prelude.Rng.next_int64 rng)))
  in
  let queue_test =
    Test.make ~name:"event_queue.push+pop"
      (Staged.stage
         (let q = Ics_sim.Event_queue.create () in
          let t = ref 0.0 in
          fun () ->
            t := !t +. 1.0;
            Ics_sim.Event_queue.push q ~time:!t (fun () -> ());
            ignore (Ics_sim.Event_queue.pop q)))
  in
  let proposal_test =
    Test.make ~name:"proposal.on_ids(16)"
      (Staged.stage
         (let ids = List.init 16 (fun i -> Ics_net.Msg_id.make ~origin:(i mod 5) ~seq:i) in
          fun () -> ignore (Ics_consensus.Proposal.on_ids ids)))
  in
  let stats_test =
    Test.make ~name:"stats.summarize(1k)"
      (Staged.stage
         (let data = Array.init 1000 (fun i -> float_of_int ((i * 7919) mod 997)) in
          fun () -> ignore (Ics_prelude.Stats.summarize_array data)))
  in
  let abcast_test =
    Test.make ~name:"abcast.end-to-end(1 msg, n=3, ideal)"
      (Staged.stage (fun () ->
           let config =
             {
               Stack.abcast_indirect with
               Stack.setup = Stack.Ideal_lan { delay = 0.1; jitter = 0.0 };
             }
           in
           let stack = Stack.create config in
           ignore (Stack.abroadcast stack ~src:0 ~body_bytes:8);
           Stack.run stack))
  in
  Test.make_grouped ~name:"micro"
    [ rng_test; queue_test; proposal_test; stats_test; abcast_test ]

let run_micro () =
  section "Bechamel microbenchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ clock ] (micro_tests ()) in
  let results = Analyze.all ols clock raw in
  let table =
    Table.create ~title:"microbenchmarks" ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
      Table.add_row table [ name; Printf.sprintf "%.1f" est; Printf.sprintf "%.4f" r2 ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Table.print table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let only = List.filter (fun a -> a <> "quick") args in
  let want what = only = [] || List.mem what only in
  if want "figures" then run_figures ~quick;
  if want "scenarios" then run_scenarios ();
  if want "ablations" then begin
    ablation_network ~quick;
    ablation_quorum ();
    ablation_broadcast_cost ~quick;
    ablation_rcv_cost ~quick;
    extension_algorithms ~quick;
    extension_scalability ~quick
  end;
  if want "faults" then run_faults ~quick;
  if want "faults-live" then run_faults_live ~quick;
  if want "claims" then run_claims ~quick;
  if want "micro" then run_micro ();
  if want "wire" then run_wire ~quick;
  if want "saturation" then run_saturation ~quick;
  if want "wire2" then run_wire2 ~quick;
  if want "service" then run_service ~quick;
  if want "perf" then run_perf ~quick;
  Format.printf "@.done.@."
