# Convenience targets; `make verify` is the pre-merge gate.

.PHONY: all build test bench perf chaos chaos-smoke verify clean

all: build

build:
	dune build

test:
	dune runtest --force

# Full benchmark sweep (~minutes); `perf` alone is the quick wall-clock check.
bench:
	dune exec bench/main.exe

perf:
	dune exec bench/main.exe -- perf quick

# Full chaos sweep: 100 seeds x every stack x every fault plan (~a minute).
chaos:
	dune exec bin/ics_cli.exe -- chaos --seeds 100

# Quick sweep for the pre-merge gate (a few seconds).
chaos-smoke:
	dune exec bin/ics_cli.exe -- chaos --seeds 5

verify: build test perf chaos-smoke

clean:
	dune clean
