# Convenience targets; `make verify` is the pre-merge gate.

.PHONY: all build test bench perf verify clean

all: build

build:
	dune build

test:
	dune runtest --force

# Full benchmark sweep (~minutes); `perf` alone is the quick wall-clock check.
bench:
	dune exec bench/main.exe

perf:
	dune exec bench/main.exe -- perf quick

verify: build test perf

clean:
	dune clean
