# Convenience targets; `make verify` is the pre-merge gate.

.PHONY: all build test bench perf chaos chaos-smoke jobs-smoke chaos-live-smoke cluster-smoke saturation-smoke service-smoke lint lint-report verify clean

all: build

build:
	dune build

test:
	dune runtest --force

# Full benchmark sweep (~minutes); `perf` alone is the quick wall-clock check.
bench:
	dune exec bench/main.exe

perf:
	dune exec bench/main.exe -- perf quick

# Full chaos sweep: 100 seeds x every stack x every fault plan (~a minute
# single-threaded; cells run jobs-wide on OCaml 5 domains, bit-identical
# to --jobs 1 by construction).
chaos:
	dune exec bin/ics_cli.exe -- chaos --seeds 100 --jobs $$(nproc)

# Quick sweep for the pre-merge gate (a few seconds).  --replay-check reruns
# one seed per cell and fails on any fingerprint divergence, so the replay
# commands the sweep prints stay trustworthy.
chaos-smoke:
	dune exec bin/ics_cli.exe -- chaos --seeds 5 --replay-check

# Parallel-sweep determinism fence: a tiny sweep run at --jobs 1 and
# --jobs 2, every trace fingerprint compared — any divergence means
# domain-shared state leaked into a cell and fails the gate.
jobs-smoke:
	dune exec bin/ics_cli.exe -- chaos --seeds 2 --plans drop,blackout --jobs 2 --jobs-check

# Chaos cells as forked loopback-TCP clusters: the seeded plans compiled
# onto real sockets through the same interposer.  Includes the blackout
# cell, so the S2.2 ct-on-ids counterexample must reproduce on the live
# backend too (exit 2 = sandbox has no sockets = skip, not failure).
chaos-live-smoke:
	dune exec bin/ics_cli.exe -- chaos --live --seeds 1 --stacks ct-indirect,ct-on-ids --plans drop,blackout; \
	rc=$$?; \
	if [ $$rc -eq 2 ]; then echo "chaos-live-smoke: skipped (no loopback sockets)"; \
	elif [ $$rc -ne 0 ]; then exit $$rc; fi

# Live 3-node loopback cluster, checker-verified (exit 2 = sandbox has no
# sockets, which is a skip, not a failure).
cluster-smoke:
	dune exec bin/ics_cli.exe -- cluster -n 3 --algo ct --broadcast flood --count 10 --timeout 20; \
	rc=$$?; \
	if [ $$rc -eq 2 ]; then echo "cluster-smoke: skipped (no loopback sockets)"; \
	elif [ $$rc -ne 0 ]; then exit $$rc; fi

# Saturation knee smoke: a tiny offered-load sweep of the batched/
# pipelined/ring stack, replay-checked for sim determinism with every
# point gated by the full checker battery, then one live point (exit 2 =
# sandbox has no sockets = skip, not failure).
saturation-smoke:
	dune exec bin/ics_cli.exe -- bench --offered-load 200,400 --duration 0.5 --batch 8 --pipeline 2 --flush 1 --dissemination ring --n 5 --replay-check
	dune exec bin/ics_cli.exe -- bench --live --offered-load 500 --duration 0.5 --batch 8 --pipeline 2 --flush 1 --dissemination ring --n 5; \
	rc=$$?; \
	if [ $$rc -eq 2 ]; then echo "saturation-smoke: live skipped (no loopback sockets)"; \
	elif [ $$rc -ne 0 ]; then exit $$rc; fi

# Closed-loop service smoke: a few hundred KV/ledger client sessions
# through the full stack, replay-checked for sim determinism and gated by
# the abcast + application checker batteries; the live point must land on
# the simulator's final state hash bit-for-bit (exit 2 = sandbox has no
# sockets = the live half is skipped, not failed).
service-smoke:
	dune exec bin/ics_cli.exe -- service --clients 200 --requests 3 --replay-check
	dune exec bin/ics_cli.exe -- service --clients 200 --requests 3 --live; \
	rc=$$?; \
	if [ $$rc -eq 2 ]; then echo "service-smoke: live skipped (no loopback sockets)"; \
	elif [ $$rc -ne 0 ]; then exit $$rc; fi

# Determinism & protocol-safety linter over lib/, bin/ and examples/
# (exit 0 clean, 1 findings, 2 internal error).
lint:
	dune exec bin/ics_lint.exe -- --root .

# Same run, SARIF 2.1.0 to _build/lint.sarif for CI annotation.  The
# report is written even when findings exist; the exit code still gates.
lint-report:
	@mkdir -p _build
	dune exec bin/ics_lint.exe -- --root . --format sarif > _build/lint.sarif; \
	rc=$$?; echo "lint-report: _build/lint.sarif"; exit $$rc

verify: build test lint lint-report perf chaos-smoke jobs-smoke chaos-live-smoke cluster-smoke saturation-smoke service-smoke

clean:
	dune clean
