(* Tests for the deterministic PRNG and the random variates. *)

module Rng = Ics_prelude.Rng
module Variate = Ics_prelude.Variate

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  checkb "different seeds differ" true (!same < 4)

let test_copy () =
  let a = Rng.create 7L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  for _ = 1 to 32 do
    check Alcotest.int64 "copy tracks original" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_split_independence () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  (* The child stream should not simply replay the parent's. *)
  let clashes = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 parent = Rng.next_int64 child then incr clashes
  done;
  checkb "child stream distinct" true (!clashes < 4)

let test_float_bounds () =
  let rng = Rng.create 11L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    checkb "0 <= x" true (x >= 0.0);
    checkb "x < bound" true (x < 3.5)
  done

let test_float_mean () =
  let rng = Rng.create 13L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "uniform mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create 17L in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    checkb "in range" true (x >= 0 && x < 7)
  done

let test_int_covers_range () =
  let rng = Rng.create 19L in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Array.iteri (fun i hit -> checkb (Printf.sprintf "value %d reached" i) true hit) seen

let test_bool_fairness () =
  let rng = Rng.create 23L in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  checkb "fair coin" true (Float.abs (ratio -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let rng = Rng.create 29L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_moves_elements () =
  let rng = Rng.create 31L in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let fixed = ref 0 in
  Array.iteri (fun i x -> if i = x then incr fixed) a;
  checkb "not identity" true (!fixed < 20)

let test_pick () =
  let rng = Rng.create 37L in
  for _ = 1 to 100 do
    let x = Rng.pick rng [ 1; 2; 3 ] in
    checkb "picked member" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_exponential_mean () =
  let rng = Rng.create 41L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Variate.exponential rng ~mean:2.5
  done;
  let mean = !sum /. float_of_int n in
  checkb "exponential mean" true (Float.abs (mean -. 2.5) < 0.05)

let test_exponential_positive () =
  let rng = Rng.create 43L in
  for _ = 1 to 10_000 do
    checkb "positive" true (Variate.exponential rng ~mean:1.0 >= 0.0)
  done;
  Alcotest.check_raises "bad mean" (Invalid_argument "Variate.exponential: mean <= 0")
    (fun () -> ignore (Variate.exponential rng ~mean:0.0))

let test_uniform_bounds () =
  let rng = Rng.create 47L in
  for _ = 1 to 10_000 do
    let x = Variate.uniform rng ~lo:2.0 ~hi:5.0 in
    checkb "in [lo,hi)" true (x >= 2.0 && x < 5.0)
  done;
  Alcotest.(check (float 1e-9)) "degenerate" 3.0 (Variate.uniform rng ~lo:3.0 ~hi:3.0)

let test_normal_moments () =
  let rng = Rng.create 53L in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Variate.normal rng ~mean:10.0 ~stddev:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  checkb "normal mean" true (Float.abs (mean -. 10.0) < 0.1);
  checkb "normal variance" true (Float.abs (var -. 4.0) < 0.2)

let test_truncated_normal () =
  let rng = Rng.create 59L in
  for _ = 1 to 10_000 do
    checkb "clamped" true (Variate.truncated_normal rng ~mean:0.0 ~stddev:5.0 ~lo:0.0 >= 0.0)
  done

let qcheck_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0,bound)" ~count:500
    QCheck.(pair (int_bound 10_000) pos_float)
    (fun (seed, bound) ->
      QCheck.assume (bound > 1e-6 && Float.is_finite bound);
      let rng = Rng.create (Int64.of_int seed) in
      let x = Rng.float rng bound in
      x >= 0.0 && x < bound)

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create (Int64.of_int seed) in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "float mean" `Quick test_float_mean;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int covers range" `Quick test_int_covers_range;
        Alcotest.test_case "bool fairness" `Quick test_bool_fairness;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_elements;
        Alcotest.test_case "pick" `Quick test_pick;
        QCheck_alcotest.to_alcotest qcheck_float_in_bounds;
        QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
      ] );
    ( "variate",
      [
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
        Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
        Alcotest.test_case "normal moments" `Quick test_normal_moments;
        Alcotest.test_case "truncated normal" `Quick test_truncated_normal;
      ] );
  ]
