(* Tests for the workload generator, experiment runner and figure
   definitions. *)

module Stack = Ics_core.Stack
module Experiment = Ics_workload.Experiment
module Figures = Ics_workload.Figures
module Stats = Ics_prelude.Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fast_config =
  {
    Stack.abcast_indirect with
    Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.2 };
    fd_kind = Stack.Oracle 50.0;
  }

let small_load =
  { Experiment.throughput = 200.0; body_bytes = 10; duration = 2_000.0; warmup = 500.0 }

let test_run_produces_samples () =
  let r = Experiment.run fast_config small_load in
  checkb "samples collected" true (r.Experiment.measured > 0);
  checkb "latency positive" true (r.Experiment.latency.Stats.mean > 0.0);
  checkb "quiescent" true r.Experiment.quiescent;
  (* Roughly throughput * duration arrivals (Poisson, so loose bounds). *)
  let expected = 200.0 *. 2.0 in
  checkb "arrival count plausible" true
    (float_of_int r.Experiment.abroadcasts > expected *. 0.6
    && float_of_int r.Experiment.abroadcasts < expected *. 1.4)

let test_warmup_filters_samples () =
  (* All processes deliver every message: measured = deliveries of
     messages created in the window only. *)
  let r = Experiment.run fast_config small_load in
  checkb "measured < all deliveries" true
    (r.Experiment.measured < 3 * r.Experiment.abroadcasts);
  (* Sanity: every measured message is delivered by all 3 processes. *)
  checkb "multiple of n for quiescent runs" true (r.Experiment.measured mod 3 = 0)

let test_run_is_deterministic () =
  let a = Experiment.run ~seed:7L fast_config small_load in
  let b = Experiment.run ~seed:7L fast_config small_load in
  Alcotest.(check (float 1e-12)) "same mean" a.Experiment.latency.Stats.mean
    b.Experiment.latency.Stats.mean;
  checki "same messages" a.Experiment.sent_messages b.Experiment.sent_messages;
  let c = Experiment.run ~seed:8L fast_config small_load in
  checkb "different seed differs" true
    (c.Experiment.sent_messages <> a.Experiment.sent_messages
    || c.Experiment.latency.Stats.mean <> a.Experiment.latency.Stats.mean)

let test_run_with_check () =
  let r = Experiment.run ~check:true fast_config small_load in
  match r.Experiment.verdict with
  | None -> Alcotest.fail "expected a verdict"
  | Some v -> Test_util.assert_clean_verdict "workload run" v

let test_run_seeds_pools () =
  let r = Experiment.run_seeds ~seeds:[ 1L; 2L; 3L ] fast_config small_load in
  let single = Experiment.run ~seed:1L fast_config small_load in
  checkb "pooled count larger" true (r.Experiment.measured > single.Experiment.measured);
  checkb "pooled mean finite" true (Float.is_finite (Experiment.mean_latency r))

let test_run_validation () =
  Alcotest.check_raises "bad throughput" (Invalid_argument "Experiment.run: throughput <= 0")
    (fun () ->
      ignore (Experiment.run fast_config { small_load with Experiment.throughput = 0.0 }));
  Alcotest.check_raises "warmup >= duration"
    (Invalid_argument "Experiment.run: warmup >= duration") (fun () ->
      ignore (Experiment.run fast_config { small_load with Experiment.warmup = 2_000.0 }))

let test_figures_complete () =
  let ids = Figures.ids () in
  checki "16 panels" 16 (List.length ids);
  List.iter
    (fun required -> checkb required true (List.mem required ids))
    [ "fig1a"; "fig1b"; "fig3a"; "fig3b"; "fig4a"; "fig4b"; "fig4c"; "fig4d";
      "fig5a"; "fig5b"; "fig5c"; "fig6a"; "fig6b"; "fig6c"; "fig7a"; "fig7b" ];
  checkb "unknown id" true (Figures.find "fig99" = None)

let test_figures_well_formed () =
  List.iter
    (fun f ->
      checkb (f.Figures.id ^ " has two series") true (List.length f.Figures.series = 2);
      checkb (f.Figures.id ^ " has a paper note") true
        (String.length f.Figures.paper_shape > 10);
      match f.Figures.axis with
      | Figures.Message_size sizes -> checkb "sizes nonempty" true (sizes <> [])
      | Figures.Throughput tputs ->
          checkb "tputs positive" true (List.for_all (fun t -> t > 0.0) tputs))
    Figures.all

let test_load_for_scaling () =
  let f = List.hd Figures.all in
  let slow = Figures.load_for f ~x:10.0 in
  let fast = Figures.load_for f ~x:5000.0 in
  ignore fast;
  checkb "slow sweeps run longer" true (slow.Experiment.duration >= 4_000.0);
  let quick = Figures.load_for ~quick:true f ~x:10.0 in
  checkb "quick shrinks" true (quick.Experiment.duration < slow.Experiment.duration)

let test_figure_runs_one_cell () =
  (* Run a tiny custom figure end-to-end through the table machinery. *)
  let fig3a = Option.get (Figures.find "fig3a") in
  let tiny = { fig3a with Figures.axis = Figures.Throughput [ 50.0 ] } in
  let table = Figures.run ~quick:true tiny in
  checki "one row" 1 (List.length (Ics_prelude.Table.rows table));
  match Ics_prelude.Table.rows table with
  | [ row ] ->
      checki "three columns" 3 (List.length row);
      List.iter
        (fun cell -> checkb "cell parses as float" true
            (Float.is_finite (float_of_string (String.split_on_char '*' cell |> List.hd))))
        row
  | _ -> Alcotest.fail "unexpected rows"

let test_claims_hold () =
  let verdicts = Ics_workload.Claims.verify ~quick:true () in
  List.iter
    (fun v ->
      if not v.Ics_workload.Claims.holds then
        Alcotest.failf "claim failed: %a" Ics_workload.Claims.pp_verdict v)
    verdicts;
  Alcotest.(check bool) "at least ten claims" true (List.length verdicts >= 10)

let suites =
  [
    ( "experiment",
      [
        Alcotest.test_case "produces samples" `Quick test_run_produces_samples;
        Alcotest.test_case "warmup filters" `Quick test_warmup_filters_samples;
        Alcotest.test_case "deterministic" `Quick test_run_is_deterministic;
        Alcotest.test_case "with checker" `Quick test_run_with_check;
        Alcotest.test_case "seed pooling" `Quick test_run_seeds_pools;
        Alcotest.test_case "validation" `Quick test_run_validation;
      ] );
    ( "figures",
      [
        Alcotest.test_case "complete set" `Quick test_figures_complete;
        Alcotest.test_case "well-formed" `Quick test_figures_well_formed;
        Alcotest.test_case "load scaling" `Quick test_load_for_scaling;
        Alcotest.test_case "one cell end-to-end" `Quick test_figure_runs_one_cell;
        Alcotest.test_case "paper claims hold" `Slow test_claims_hold;
      ] );
  ]
