test/test_lb.ml: Alcotest Ics_checker Ics_consensus Ics_core Ics_fd Ics_net Ics_prelude Ics_sim Int64 List QCheck QCheck_alcotest Test_util
