test/test_more.ml: Alcotest Format Gen Hashtbl Ics_checker Ics_consensus Ics_core Ics_net Ics_prelude Ics_sim Ics_workload List Option QCheck QCheck_alcotest Test_util
