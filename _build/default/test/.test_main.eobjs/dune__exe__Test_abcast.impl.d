test/test_abcast.ml: Alcotest Ics_checker Ics_consensus Ics_core Ics_net Ics_prelude Ics_sim Int64 List QCheck QCheck_alcotest String Test_util
