test/test_protocol_edges.ml: Alcotest Ics_consensus Ics_core Ics_fd Ics_net Ics_prelude Ics_sim Ics_workload List Test_util
