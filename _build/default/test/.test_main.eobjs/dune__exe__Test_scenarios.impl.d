test/test_scenarios.ml: Alcotest Format Ics_checker Ics_workload List Test_util
