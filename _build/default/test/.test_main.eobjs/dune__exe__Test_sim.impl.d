test/test_sim.ml: Alcotest Float Format Gen Ics_prelude Ics_sim List QCheck QCheck_alcotest Test_util
