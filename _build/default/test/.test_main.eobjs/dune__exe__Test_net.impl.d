test/test_net.ml: Alcotest Array Ics_net Ics_sim List Option
