test/test_stats.ml: Alcotest Float Format Gen Ics_prelude List QCheck QCheck_alcotest Test_util
