test/test_consensus.ml: Alcotest Hashtbl Ics_consensus Ics_fd Ics_net Ics_sim List Option Printf QCheck QCheck_alcotest String
