test/test_checker.ml: Alcotest Format Ics_checker Ics_sim List Test_util
