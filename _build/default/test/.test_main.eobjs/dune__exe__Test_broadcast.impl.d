test/test_broadcast.ml: Alcotest Ics_broadcast Ics_checker Ics_fd Ics_net Ics_prelude Ics_sim Int64 List Printf QCheck QCheck_alcotest
