test/test_workload.ml: Alcotest Float Ics_core Ics_prelude Ics_workload List Option String Test_util
