test/test_adversarial.ml: Ics_checker Ics_core Ics_net Ics_prelude Ics_sim Int64 List QCheck QCheck_alcotest Test_util
