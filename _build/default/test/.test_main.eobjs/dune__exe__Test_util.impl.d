test/test_util.ml: Alcotest Ics_checker Ics_core Ics_sim List String
