test/test_fd.ml: Alcotest Ics_fd Ics_net Ics_sim List
