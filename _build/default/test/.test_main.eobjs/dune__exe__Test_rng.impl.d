test/test_rng.ml: Alcotest Array Float Ics_prelude Int64 List Printf QCheck QCheck_alcotest
