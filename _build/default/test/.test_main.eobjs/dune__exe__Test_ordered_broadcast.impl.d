test/test_ordered_broadcast.ml: Alcotest Array Ics_broadcast Ics_checker Ics_net Ics_prelude Ics_sim Int64 List QCheck QCheck_alcotest Test_util
