test/test_integration.ml: Alcotest Format Ics_checker Ics_core Ics_net Ics_prelude Ics_sim Ics_workload List Printf Test_util
