test/test_checker_fuzz.ml: Alcotest Array Fun Ics_checker Ics_core Ics_prelude Ics_sim Int64 Lazy List QCheck QCheck_alcotest Test_util
