(* Tests for the paper's adversarial scenarios: the §2.2 validity
   violation and the §3.3.2 MR counterexample, plus their fixes. *)

module Scenarios = Ics_workload.Scenarios
module Checker = Ics_checker.Checker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let has o property = Test_util.has_violation o.Scenarios.verdict property

let test_faulty_ct_violates () =
  let o = Scenarios.validity_scenario Scenarios.Faulty_ids in
  checkb "validity violated" true (has o "abcast.validity");
  checkb "no-loss violated" true (has o "indirect-consensus.no-loss");
  checkb "uniform agreement violated" true (has o "abcast.uniform-agreement");
  (* Correct processes are wedged on the lost head. *)
  checki "two blocked" 2 (List.length o.Scenarios.blocked);
  List.iter (fun (_, id) -> Alcotest.(check string) "blocked id" "p0#0" id) o.Scenarios.blocked

let test_indirect_ct_survives () =
  let o = Scenarios.validity_scenario Scenarios.Indirect in
  Test_util.assert_clean_verdict "indirect" o.Scenarios.verdict;
  checki "nothing blocked" 0 (List.length o.Scenarios.blocked);
  (* p1's message is delivered by both correct processes. *)
  List.iter
    (fun (p, c) -> if p > 0 then checki "correct delivered p1#0" 1 c)
    o.Scenarios.delivered

let test_faulty_ct_total_order_intact () =
  (* §2.2 is a validity/agreement violation, not an ordering one: the
     sequences remain prefix-compatible even in the broken run. *)
  let o = Scenarios.validity_scenario Scenarios.Faulty_ids in
  checkb "order holds" false (has o "abcast.uniform-total-order");
  checkb "integrity holds" false (has o "abcast.uniform-integrity")

let test_naive_mr_violates_with_single_crash () =
  let o = Scenarios.mr_scenario Scenarios.Naive in
  checkb "no-loss violated" true (has o "indirect-consensus.no-loss");
  checkb "validity violated" true (has o "abcast.validity");
  (* The decision happened with only f=1 crash — within the original MR
     resilience for n=5, which is the whole point of §3.3.2. *)
  checki "all four correct processes blocked" 4 (List.length o.Scenarios.blocked)

let test_indirect_mr_survives_same_schedule () =
  let o = Scenarios.mr_scenario Scenarios.Indirect_mr in
  Test_util.assert_clean_verdict "mr indirect" o.Scenarios.verdict;
  checki "nothing blocked" 0 (List.length o.Scenarios.blocked);
  checkb "instances decided" true (o.Scenarios.decided_instances >= 1)

let test_scenarios_deterministic () =
  let a = Scenarios.validity_scenario Scenarios.Faulty_ids in
  let b = Scenarios.validity_scenario Scenarios.Faulty_ids in
  checki "same violations" (List.length a.Scenarios.verdict.Checker.violations)
    (List.length b.Scenarios.verdict.Checker.violations);
  Alcotest.(check (list (pair int int))) "same deliveries" a.Scenarios.delivered b.Scenarios.delivered

let test_outcome_pp () =
  let o = Scenarios.validity_scenario Scenarios.Faulty_ids in
  let s = Format.asprintf "%a" Scenarios.pp_outcome o in
  checkb "mentions scenario" true (Test_util.contains s "S2.2");
  checkb "mentions blockage" true (Test_util.contains s "blocked")

let suites =
  [
    ( "scenarios",
      [
        Alcotest.test_case "faulty CT violates validity (S2.2)" `Quick test_faulty_ct_violates;
        Alcotest.test_case "indirect CT survives (S2.2)" `Quick test_indirect_ct_survives;
        Alcotest.test_case "faulty CT keeps order" `Quick test_faulty_ct_total_order_intact;
        Alcotest.test_case "naive MR violates no-loss (S3.3.2)" `Quick
          test_naive_mr_violates_with_single_crash;
        Alcotest.test_case "indirect MR survives (S3.3.2)" `Quick
          test_indirect_mr_survives_same_schedule;
        Alcotest.test_case "deterministic" `Quick test_scenarios_deterministic;
        Alcotest.test_case "outcome pp" `Quick test_outcome_pp;
      ] );
  ]
