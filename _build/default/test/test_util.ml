(* Shared helpers for the test suite. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end

(* Run a stack under a small deterministic burst and return it quiescent.
   [broadcasts] is a list of (time, src, body_bytes). *)
let run_stack ?rule ?manual_fd ?(crashes = []) ?(horizon = 20_000.0) config broadcasts =
  let stack = Ics_core.Stack.create ?rule ?manual_fd config in
  let engine = stack.Ics_core.Stack.engine in
  List.iter
    (fun (at, src, body_bytes) ->
      Ics_sim.Engine.schedule engine ~at (fun () ->
          ignore (Ics_core.Stack.abroadcast stack ~src ~body_bytes)))
    broadcasts;
  List.iter (fun (p, at) -> Ics_sim.Engine.crash_at engine p ~at) crashes;
  Ics_core.Stack.run ~until:horizon stack;
  stack

let checker_run stack =
  let engine = stack.Ics_core.Stack.engine in
  Ics_checker.Checker.Run.of_trace (Ics_sim.Engine.trace engine)
    ~n:(Ics_sim.Engine.n engine)

let burst ~n ~count ~body_bytes ~spacing =
  List.concat_map
    (fun i ->
      List.map (fun p -> ((float_of_int i *. spacing) +. (0.1 *. float_of_int p), p, body_bytes))
        (List.init n (fun p -> p)))
    (List.init count (fun i -> i))

let assert_clean_verdict name verdict =
  if not (Ics_checker.Checker.ok verdict) then
    Alcotest.failf "%s: %a" name Ics_checker.Checker.pp_verdict verdict

let has_violation verdict property =
  List.exists
    (fun v -> v.Ics_checker.Checker.property = property)
    verdict.Ics_checker.Checker.violations
