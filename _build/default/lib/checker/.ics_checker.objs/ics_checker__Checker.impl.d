lib/checker/checker.ml: Array Format Hashtbl Ics_sim Int List Printf Set String
