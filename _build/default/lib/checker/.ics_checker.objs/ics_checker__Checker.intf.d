lib/checker/checker.mli: Format Ics_sim
