lib/sim/trace.ml: Format List Pid String Time
