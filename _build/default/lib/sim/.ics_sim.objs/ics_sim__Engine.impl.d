lib/sim/engine.ml: Array Event_queue Ics_prelude List Pid Time Trace
