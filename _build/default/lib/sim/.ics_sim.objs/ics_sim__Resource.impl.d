lib/sim/resource.ml: Float Time
