lib/sim/engine.mli: Ics_prelude Pid Time Trace
