lib/sim/pid.mli: Format
