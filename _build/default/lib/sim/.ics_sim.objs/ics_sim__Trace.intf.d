lib/sim/trace.mli: Format Pid Time
