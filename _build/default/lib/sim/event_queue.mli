(** Pending-event set of the discrete-event simulator.

    A binary min-heap ordered by (time, sequence number).  The sequence
    number is assigned at insertion, so simultaneous events run in insertion
    order — this is what makes whole simulations deterministic. *)

type t

val create : unit -> t

val push : t -> time:Time.t -> (unit -> unit) -> unit
(** Schedule an action.  Scheduling in the past is a programming error.
    @raise Invalid_argument if [time] is NaN. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Remove and return the earliest event, ties broken by insertion order. *)

val peek_time : t -> Time.t option
val size : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop all pending events (used when aborting a run). *)
