(** Structured execution traces.

    Every protocol layer records its externally visible actions here; the
    checker library replays a trace against the formal properties of the
    abstraction (reliable broadcast, consensus, atomic broadcast).  Message
    identifiers are strings of the form ["p2#17"] (origin and per-origin
    sequence number), which the paper's bijection between messages and
    identifiers makes sufficient. *)

type kind =
  | Crash  (** the process stops taking steps *)
  | Abroadcast of string  (** atomic broadcast invoked with this message id *)
  | Adeliver of string  (** atomic broadcast delivery *)
  | Rbroadcast of string  (** reliable broadcast invoked *)
  | Rdeliver of string  (** reliable broadcast delivery *)
  | Urb_broadcast of string  (** uniform reliable broadcast invoked *)
  | Urb_deliver of string  (** uniform reliable broadcast delivery *)
  | Propose of int * string list  (** consensus instance, proposed id set *)
  | Decide of int * string list  (** consensus instance, decided id set *)
  | Suspect of Pid.t  (** failure detector starts suspecting [pid] *)
  | Trust of Pid.t  (** failure detector stops suspecting [pid] *)
  | Note of string  (** free-form, for debugging only *)

type event = { time : Time.t; pid : Pid.t; kind : kind }

type t
(** A mutable, append-only event log. *)

val create : unit -> t
val record : t -> time:Time.t -> pid:Pid.t -> kind -> unit
val events : t -> event list
(** Events in chronological (= insertion) order. *)

val length : t -> int

val filter : t -> (event -> bool) -> event list
val find_all : t -> pid:Pid.t -> (kind -> bool) -> event list

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
