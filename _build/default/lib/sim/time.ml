type t = float

let zero = 0.0
let ( + ) = Stdlib.( +. )
let ( - ) = Stdlib.( -. )
let compare = Float.compare
let max = Float.max
let of_us us = us /. 1000.0
let of_s s = s *. 1000.0
let to_ms t = t
let pp ppf t = Format.fprintf ppf "%.3fms" t
