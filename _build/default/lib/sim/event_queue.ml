type entry = { time : Time.t; seq : int; run : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; run = (fun () -> ()) }

let create () = { heap = Array.make 256 dummy; size = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (Array.length t.heap * 2) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time run =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- { time; seq = t.next_seq; run };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some (top.time, top.run)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  Array.fill t.heap 0 t.size dummy;
  t.size <- 0
