(** Virtual time.

    The simulator measures time in {e milliseconds} as a float, matching the
    unit the paper reports latencies in.  Sub-microsecond service times are
    representable without loss. *)

type t = float

val zero : t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val compare : t -> t -> int
val max : t -> t -> t
val of_us : float -> t
(** Microseconds to milliseconds. *)

val of_s : float -> t
(** Seconds to milliseconds. *)

val to_ms : t -> float
val pp : Format.formatter -> t -> unit
(** Renders as [12.345ms]. *)
