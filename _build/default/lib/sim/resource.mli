(** Single-server FIFO resources.

    The network models follow Urbán's Neko performance model: processing a
    message occupies the sender's CPU, then a network resource, then the
    receiver's CPU, each for a service time that grows linearly with the
    message's wire size.  Each of those is a FIFO single-server queue —
    exactly what this module provides.  Queueing at these resources is what
    produces the latency-vs-throughput saturation curves of Figures 3–7. *)

type t

val create : string -> t
(** [create name] is an idle resource; [name] appears in debug output and
    utilization reports. *)

val name : t -> string

val reserve : t -> now:Time.t -> service:Time.t -> Time.t
(** [reserve r ~now ~service] enqueues a job arriving at [now] needing
    [service] time units and returns its completion time:
    [max now (free_at r) + service].  The resource is then busy until that
    completion time.  @raise Invalid_argument on negative service time. *)

val free_at : t -> Time.t
(** Earliest time a new arrival would start service. *)

val busy_time : t -> Time.t
(** Total time spent serving jobs so far (for utilization reports). *)

val jobs : t -> int
(** Number of jobs served or in service. *)

val utilization : t -> horizon:Time.t -> float
(** [busy_time / horizon], clamped to [\[0,1\]]. *)

val reset : t -> unit
(** Return to the idle state and zero the counters. *)
