type t = {
  name : string;
  mutable free_at : Time.t;
  mutable busy_time : Time.t;
  mutable jobs : int;
}

let create name = { name; free_at = Time.zero; busy_time = Time.zero; jobs = 0 }

let name t = t.name

let reserve t ~now ~service =
  if service < 0.0 then invalid_arg "Resource.reserve: negative service";
  let start = Time.max now t.free_at in
  let finish = Time.( + ) start service in
  t.free_at <- finish;
  t.busy_time <- Time.( + ) t.busy_time service;
  t.jobs <- t.jobs + 1;
  finish

let free_at t = t.free_at
let busy_time t = t.busy_time
let jobs t = t.jobs

let utilization t ~horizon =
  if horizon <= 0.0 then 0.0
  else Float.min 1.0 (Float.max 0.0 (t.busy_time /. horizon))

let reset t =
  t.free_at <- Time.zero;
  t.busy_time <- Time.zero;
  t.jobs <- 0
