type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf p = Format.fprintf ppf "p%d" p
let to_string p = "p" ^ string_of_int p
let all ~n = List.init n (fun i -> i)
let others ~n p = List.filter (fun q -> q <> p) (all ~n)
let coordinator ~n ~round =
  if round < 1 then invalid_arg "Pid.coordinator: rounds are 1-based";
  (round - 1) mod n
