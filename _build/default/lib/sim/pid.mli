(** Process identifiers.

    Processes are numbered [0 .. n-1].  The paper numbers them 1-based and
    rotates coordinators as [(r mod n) + 1]; we use the 0-based equivalent
    and keep the same rotation order. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Renders as [p0], [p1], ... *)

val to_string : t -> string

val all : n:int -> t list
(** [all ~n] is [\[0; ...; n-1\]]. *)

val others : n:int -> t -> t list
(** [others ~n p] is every process except [p], in increasing order. *)

val coordinator : n:int -> round:int -> t
(** Rotating coordinator for 1-based round numbers: round [r] is led by
    process [(r - 1) mod n], i.e. round 1 by [p0].  The paper's
    [(r mod n) + 1] is the same rotation under its 1-based numbering.
    @raise Invalid_argument if [round < 1]. *)
