type kind =
  | Crash
  | Abroadcast of string
  | Adeliver of string
  | Rbroadcast of string
  | Rdeliver of string
  | Urb_broadcast of string
  | Urb_deliver of string
  | Propose of int * string list
  | Decide of int * string list
  | Suspect of Pid.t
  | Trust of Pid.t
  | Note of string

type event = { time : Time.t; pid : Pid.t; kind : kind }

type t = { mutable rev_events : event list; mutable length : int }

let create () = { rev_events = []; length = 0 }

let record t ~time ~pid kind =
  t.rev_events <- { time; pid; kind } :: t.rev_events;
  t.length <- t.length + 1

let events t = List.rev t.rev_events
let length t = t.length
let filter t pred = List.filter pred (events t)

let find_all t ~pid pred =
  filter t (fun e -> Pid.equal e.pid pid && pred e.kind)

let pp_ids ppf ids = Format.fprintf ppf "{%s}" (String.concat ", " ids)

let pp_kind ppf = function
  | Crash -> Format.fprintf ppf "crash"
  | Abroadcast m -> Format.fprintf ppf "abroadcast(%s)" m
  | Adeliver m -> Format.fprintf ppf "adeliver(%s)" m
  | Rbroadcast m -> Format.fprintf ppf "rbroadcast(%s)" m
  | Rdeliver m -> Format.fprintf ppf "rdeliver(%s)" m
  | Urb_broadcast m -> Format.fprintf ppf "urb-broadcast(%s)" m
  | Urb_deliver m -> Format.fprintf ppf "urb-deliver(%s)" m
  | Propose (k, ids) -> Format.fprintf ppf "propose(#%d, %a)" k pp_ids ids
  | Decide (k, ids) -> Format.fprintf ppf "decide(#%d, %a)" k pp_ids ids
  | Suspect q -> Format.fprintf ppf "suspect(%a)" Pid.pp q
  | Trust q -> Format.fprintf ppf "trust(%a)" Pid.pp q
  | Note s -> Format.fprintf ppf "note(%s)" s

let pp_event ppf e =
  Format.fprintf ppf "%a %a %a" Time.pp e.time Pid.pp e.pid pp_kind e.kind

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
