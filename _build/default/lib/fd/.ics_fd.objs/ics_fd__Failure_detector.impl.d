lib/fd/failure_detector.ml: Array Ics_net Ics_sim List
