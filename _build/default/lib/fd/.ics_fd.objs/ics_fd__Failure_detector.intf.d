lib/fd/failure_detector.mli: Ics_net Ics_sim
