lib/core/stack.ml: Abcast Ics_broadcast Ics_consensus Ics_fd Ics_net Ics_sim Int64 List Printf
