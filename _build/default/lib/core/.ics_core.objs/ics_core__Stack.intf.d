lib/core/stack.mli: Abcast Ics_fd Ics_net Ics_sim
