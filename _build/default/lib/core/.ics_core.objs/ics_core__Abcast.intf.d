lib/core/abcast.mli: Ics_broadcast Ics_consensus Ics_net Ics_sim
