lib/core/abcast.ml: Array Hashtbl Ics_broadcast Ics_consensus Ics_net Ics_sim List Queue
