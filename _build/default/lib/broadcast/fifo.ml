module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

type origin_state = { mutable next : int; pending : (int, App_msg.t) Hashtbl.t }

type proc_state = { by_origin : (Pid.t, origin_state) Hashtbl.t }

let origin_state st origin =
  match Hashtbl.find_opt st.by_origin origin with
  | Some s -> s
  | None ->
      let s = { next = 0; pending = Hashtbl.create 8 } in
      Hashtbl.add st.by_origin origin s;
      s

let create ~inner ~deliver =
  (* One reordering buffer per (receiver, origin) pair; sized lazily. *)
  let states : (Pid.t, proc_state) Hashtbl.t = Hashtbl.create 8 in
  let proc_state p =
    match Hashtbl.find_opt states p with
    | Some s -> s
    | None ->
        let s = { by_origin = Hashtbl.create 8 } in
        Hashtbl.add states p s;
        s
  in
  let reorder p (m : App_msg.t) =
    let os = origin_state (proc_state p) (App_msg.origin m) in
    Hashtbl.replace os.pending m.id.Msg_id.seq m;
    let rec flush () =
      match Hashtbl.find_opt os.pending os.next with
      | Some m' ->
          Hashtbl.remove os.pending os.next;
          os.next <- os.next + 1;
          deliver p m';
          flush ()
      | None -> ()
    in
    flush ()
  in
  let handle = inner ~deliver:reorder in
  { handle with Broadcast_intf.name = "fifo(" ^ handle.Broadcast_intf.name ^ ")" }
