(** Common shape of the broadcast layers.

    A broadcast layer object manages all [n] simulated processes at once
    (which is natural in a discrete-event simulation); the [src] argument of
    {!handle.broadcast} selects the broadcasting process.  Deliveries are
    reported through the callback supplied at creation, once per (process,
    message). *)

module Pid = Ics_sim.Pid
module App_msg = Ics_net.App_msg

type handle = {
  name : string;  (** e.g. ["rb-flood(O(n^2))"] *)
  broadcast : src:Pid.t -> App_msg.t -> unit;
      (** Invoke the broadcast primitive at process [src].  No-op if [src]
          has crashed. *)
  holds : Pid.t -> Ics_net.Msg_id.t -> bool;
      (** Does this process currently hold the payload of the given
          identifier?  This is the substrate of the [rcv] function that
          atomic broadcast hands to indirect consensus. *)
}

type deliver = Pid.t -> App_msg.t -> unit
(** [deliver p m]: process [p] delivers message [m]. *)
