lib/broadcast/causal.mli: Broadcast_intf Ics_net
