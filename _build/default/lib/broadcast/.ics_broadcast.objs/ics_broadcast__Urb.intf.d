lib/broadcast/urb.mli: Broadcast_intf Ics_net
