lib/broadcast/causal.ml: Array Broadcast_intf Ics_net Ics_sim List
