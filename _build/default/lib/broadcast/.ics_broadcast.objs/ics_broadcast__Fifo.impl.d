lib/broadcast/fifo.ml: Broadcast_intf Hashtbl Ics_net Ics_sim
