lib/broadcast/rb_fd.mli: Broadcast_intf Ics_fd Ics_net
