lib/broadcast/urb.ml: Array Broadcast_intf Ics_net Ics_sim List
