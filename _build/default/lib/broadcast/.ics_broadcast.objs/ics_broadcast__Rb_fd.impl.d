lib/broadcast/rb_fd.ml: Array Broadcast_intf Hashtbl Ics_fd Ics_net Ics_sim List
