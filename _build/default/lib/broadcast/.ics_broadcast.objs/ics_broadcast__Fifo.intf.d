lib/broadcast/fifo.mli: Broadcast_intf
