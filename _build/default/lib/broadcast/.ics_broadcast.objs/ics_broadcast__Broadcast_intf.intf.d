lib/broadcast/broadcast_intf.mli: Ics_net Ics_sim
