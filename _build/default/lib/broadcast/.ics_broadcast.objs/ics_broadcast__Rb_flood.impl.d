lib/broadcast/rb_flood.ml: Array Broadcast_intf Ics_net Ics_sim List
