lib/broadcast/rb_flood.mli: Broadcast_intf Ics_net
