(** Causal-order reliable broadcast (Birman–Schiper–Stephenson style).

    Messages carry the sender's vector clock; a receiver delivers [m]
    broadcast by [q] only once it has delivered every message that
    causally precedes [m]: [VC_m(q) = local(q) + 1] and
    [VC_m(i) <= local(i)] for [i ≠ q].  Dissemination is the O(n²) flood
    of {!Rb_flood}; the vector adds [4·n] bytes to every wire message,
    which the byte accounting reflects.

    Causal order implies FIFO order; it does {e not} imply total order —
    concurrent messages may be delivered in different relative orders at
    different processes, which is exactly the gap atomic broadcast (the
    paper's subject) closes. *)

val layer : string
(** ["cb"]. *)

val create :
  Ics_net.Transport.t -> deliver:Broadcast_intf.deliver -> Broadcast_intf.handle
