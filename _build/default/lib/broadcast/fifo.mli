(** FIFO-order reliable broadcast.

    A standard layer of the group-communication stacks the paper situates
    itself in ([3], [9]): messages from the same origin are delivered in
    the order they were broadcast.  Built by sequencing on top of any
    reliable broadcast implementation — the identifier's per-origin
    sequence number ({!Ics_net.Msg_id.t.seq}) is the FIFO index, so
    messages from origin [q] are held back until all of [q]'s earlier
    messages have been delivered.

    Senders must allocate consecutive sequence numbers per origin
    (starting at 0), which is what {!Ics_core.Abcast.abroadcast} and the
    tests do. *)

val create :
  inner:(deliver:Broadcast_intf.deliver -> Broadcast_intf.handle) ->
  deliver:Broadcast_intf.deliver ->
  Broadcast_intf.handle
(** [create ~inner ~deliver] builds the underlying broadcast with a
    reordering buffer in between.  [holds] reflects the {e inner} layer
    (payload possession, not FIFO deliverability). *)
