(** The paper's evaluation figures as runnable parameter sweeps.

    Each figure panel of §2.1 and §4 (Figures 1, 3–7; Figure 2 is a
    diagram) is described declaratively: the swept axis, the fixed
    parameters, and the algorithm stacks being compared.  Running a figure
    produces a {!Ics_prelude.Table.t} with one row per x-value and one
    latency column per series — the same rows the paper plots.

    Absolute milliseconds depend on the network-model calibration and are
    not expected to match the paper's testbed; the {e shapes} (who wins,
    how gaps scale with size/throughput/n, where saturation sets in) are
    the reproduction target and are recorded in EXPERIMENTS.md. *)

module Table = Ics_prelude.Table
module Stack = Ics_core.Stack

type axis =
  | Message_size of int list  (** sweep payload bytes at fixed throughput *)
  | Throughput of float list  (** sweep msgs/s at fixed payload *)

type series = { label : string; config : Stack.config }

type t = {
  id : string;  (** e.g. ["fig3a"] *)
  title : string;
  axis : axis;
  throughput : float;  (** fixed throughput (for Message_size axes) *)
  body_bytes : int;  (** fixed payload (for Throughput axes) *)
  series : series list;
  paper_shape : string;  (** the qualitative result the paper reports *)
}

val all : t list
(** Every panel: fig1a fig1b fig3a fig3b fig4a–d fig5a–c fig6a–c fig7a
    fig7b, in paper order. *)

val find : string -> t option
val ids : unit -> string list

val run :
  ?quick:bool -> ?seed:int64 -> ?seeds:int -> ?progress:(string -> unit) -> t -> Table.t
(** Execute every (series, x) cell.  [quick] shrinks durations by ~4x for
    smoke runs.  [seeds] > 1 pools latency samples over that many
    consecutive seeds starting at [seed].  Cells that saturated (offered
    load exceeded capacity, detected by a non-quiescent run or
    queue-buildup latencies) are suffixed ["*"].  [progress] is called
    with a short line per completed cell.
    @raise Invalid_argument if [seeds < 1]. *)

val load_for : ?quick:bool -> t -> x:float -> Experiment.load
(** The load a given x-value maps to (durations auto-scale so that slow
    sweeps still collect enough samples). *)
