module Table = Ics_prelude.Table
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast

type axis = Message_size of int list | Throughput of float list

type series = { label : string; config : Stack.config }

type t = {
  id : string;
  title : string;
  axis : axis;
  throughput : float;
  body_bytes : int;
  series : series list;
  paper_shape : string;
}

let sizes_to n step = List.init ((n / step) + 1) (fun i -> i * step)

let tputs_fig3 = [ 10.; 50.; 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800. ]
let tputs_fig7 = [ 500.; 750.; 1000.; 1250.; 1500.; 1750.; 2000. ]

(* Series constructors (all CT-based, as in the paper's implementation). *)
let indirect ~n ~setup ~broadcast =
  {
    label = "indirect";
    config = { Stack.abcast_indirect with n; setup; broadcast };
  }

let on_messages ~n ~setup =
  { label = "on-messages"; config = { Stack.abcast_msgs with n; setup } }

let faulty_ids ~n ~setup =
  { label = "faulty-ids"; config = { Stack.abcast_ids_faulty with n; setup } }

let urb_ids ~n ~setup =
  { label = "urb+ids"; config = { Stack.abcast_urb with n; setup } }

let fig1 id ~tput ~sizes =
  {
    id;
    title =
      Printf.sprintf
        "Fig 1%s: latency vs message size, n=3, %.0f msg/s (consensus on messages vs indirect)"
        (String.sub id 4 1) tput;
    axis = Message_size sizes;
    throughput = tput;
    body_bytes = 1;
    series =
      [
        indirect ~n:3 ~setup:Stack.Setup1 ~broadcast:Stack.Flood;
        on_messages ~n:3 ~setup:Stack.Setup1;
      ];
    paper_shape =
      "Consensus on messages degrades steeply with size; indirect stays nearly flat. \
       Gap widens with throughput.";
  }

let fig3 id ~n =
  {
    id;
    title =
      Printf.sprintf
        "Fig 3%s: latency vs throughput, n=%d, 1-byte payload (indirect vs faulty consensus on ids)"
        (String.sub id 4 1) n;
    axis = Throughput tputs_fig3;
    throughput = 0.;
    body_bytes = 1;
    series =
      [
        indirect ~n ~setup:Stack.Setup1 ~broadcast:Stack.Flood;
        faulty_ids ~n ~setup:Stack.Setup1;
      ];
    paper_shape =
      "Indirect consensus costs a rcv-check overhead that grows with throughput \
       (<=1.3ms at n=3, <=9.5ms at n=5); both curves otherwise track each other.";
  }

let fig4 id ~tput ~max_size =
  {
    id;
    title =
      Printf.sprintf
        "Fig 4%s: latency vs payload, n=5, %.0f msg/s (indirect vs faulty consensus on ids)"
        (String.sub id 4 1) tput;
    axis = Message_size (sizes_to max_size (max_size / 10));
    throughput = tput;
    body_bytes = 1;
    series =
      [
        indirect ~n:5 ~setup:Stack.Setup1 ~broadcast:Stack.Flood;
        faulty_ids ~n:5 ~setup:Stack.Setup1;
      ];
    paper_shape =
      "Overhead ratio stable across payload sizes (both algorithms only exchange ids); \
       negligible at 10 msg/s, measurable at higher throughputs.";
  }

let fig56 id ~tput ~broadcast =
  let rb = match broadcast with Stack.Fd_relay -> "O(n)" | _ -> "O(n^2)" in
  {
    id;
    title =
      Printf.sprintf
        "Fig %c%s: latency vs payload, n=3, %.0f msg/s, Setup 2, RB in %s (indirect+rb vs consensus+urb)"
        id.[3] (String.sub id 4 1) tput rb;
    axis = Message_size (sizes_to 2500 250);
    throughput = tput;
    body_bytes = 1;
    series =
      [ indirect ~n:3 ~setup:Stack.Setup2 ~broadcast; urb_ids ~n:3 ~setup:Stack.Setup2 ];
    paper_shape =
      (if broadcast = Stack.Fd_relay then
         "With O(n) reliable broadcast, indirect consensus is clearly better than \
          consensus-on-ids over uniform reliable broadcast."
       else
         "With O(n^2) reliable broadcast, indirect consensus is slightly better (URB \
          pays one extra communication step).");
  }

let fig7 id ~broadcast =
  let rb = match broadcast with Stack.Fd_relay -> "O(n)" | _ -> "O(n^2)" in
  {
    id;
    title =
      Printf.sprintf
        "Fig 7%s: latency vs throughput, n=3, 1-byte payload, Setup 2, RB in %s"
        (String.sub id 4 1) rb;
    axis = Throughput tputs_fig7;
    throughput = 0.;
    body_bytes = 1;
    series =
      [ indirect ~n:3 ~setup:Stack.Setup2 ~broadcast; urb_ids ~n:3 ~setup:Stack.Setup2 ];
    paper_shape =
      (if broadcast = Stack.Fd_relay then
         "With O(n) RB, atomic broadcast over indirect consensus is much less affected \
          by throughput than the URB-based solution."
       else
         "Both degrade with throughput; the indirect solution stays slightly ahead.");
  }

let all =
  [
    fig1 "fig1a" ~tput:100. ~sizes:(sizes_to 5000 500);
    fig1 "fig1b" ~tput:800. ~sizes:(sizes_to 4000 500);
    fig3 "fig3a" ~n:3;
    fig3 "fig3b" ~n:5;
    (* The paper's own x-ranges shrink as throughput rises (Fig 4(d) stops
       at 2000 B): beyond that the offered load exceeds testbed capacity. *)
    fig4 "fig4a" ~tput:10. ~max_size:5000;
    fig4 "fig4b" ~tput:100. ~max_size:5000;
    fig4 "fig4c" ~tput:400. ~max_size:5000;
    fig4 "fig4d" ~tput:800. ~max_size:2000;
    fig56 "fig5a" ~tput:500. ~broadcast:Stack.Flood;
    fig56 "fig5b" ~tput:1500. ~broadcast:Stack.Flood;
    fig56 "fig5c" ~tput:2000. ~broadcast:Stack.Flood;
    fig56 "fig6a" ~tput:500. ~broadcast:Stack.Fd_relay;
    fig56 "fig6b" ~tput:1500. ~broadcast:Stack.Fd_relay;
    fig56 "fig6c" ~tput:2000. ~broadcast:Stack.Fd_relay;
    fig7 "fig7a" ~broadcast:Stack.Flood;
    fig7 "fig7b" ~broadcast:Stack.Fd_relay;
  ]

let find id = List.find_opt (fun f -> f.id = id) all
let ids () = List.map (fun f -> f.id) all

let load_for ?(quick = false) t ~x =
  let throughput, body_bytes =
    match t.axis with
    | Message_size _ -> (t.throughput, int_of_float x)
    | Throughput _ -> (x, t.body_bytes)
  in
  let scale = if quick then 0.25 else 1.0 in
  (* Enough samples even on slow sweeps: at least ~400 measured messages. *)
  let measure_ms = scale *. Float.max 4000.0 (400_000.0 /. throughput) in
  let warmup = Float.max 500.0 (Float.min 1000.0 (measure_ms /. 8.0)) in
  {
    Experiment.throughput;
    body_bytes;
    duration = warmup +. measure_ms;
    warmup;
  }

let axis_values t =
  match t.axis with
  | Message_size sizes -> List.map float_of_int sizes
  | Throughput tputs -> tputs

let axis_label t =
  match t.axis with
  | Message_size _ -> "size[B]"
  | Throughput _ -> "tput[msg/s]"

let run ?(quick = false) ?(seed = 1L) ?(seeds = 1) ?(progress = fun _ -> ()) t =
  if seeds < 1 then invalid_arg "Figures.run: seeds < 1";
  let seed_list = List.init seeds (fun i -> Int64.add seed (Int64.of_int i)) in
  let xs = axis_values t in
  let columns =
    axis_label t :: List.concat_map (fun s -> [ s.label ^ "[ms]" ]) t.series
  in
  let table = Table.create ~title:(t.id ^ " — " ^ t.title) ~columns in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            let load = load_for ~quick t ~x in
            let r =
              if seeds = 1 then Experiment.run ~seed s.config load
              else Experiment.run_seeds ~seeds:seed_list s.config load
            in
            let mean = r.Experiment.latency.Ics_prelude.Stats.mean in
            (* Saturation: either the run could not drain before the
               horizon, or latencies reached queue-buildup magnitudes. *)
            let saturated = (not r.Experiment.quiescent) || mean > 200.0 in
            progress
              (Printf.sprintf "%s %s x=%g mean=%.3fms%s" t.id s.label x mean
                 (if saturated then " (saturated)" else ""));
            Printf.sprintf "%.3f%s" mean (if saturated then "*" else ""))
          t.series
      in
      Table.add_row table (Printf.sprintf "%g" x :: cells))
    xs;
  table
