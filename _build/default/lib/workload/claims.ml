module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Stats = Ics_prelude.Stats

type verdict = { id : string; statement : string; holds : bool; detail : string }

let pp_verdict ppf v =
  Format.fprintf ppf "[%s] %s — %s (%s)"
    (if v.holds then "PASS" else "FAIL")
    v.id v.statement v.detail

let all_hold = List.for_all (fun v -> v.holds)

(* One measured latency point.  Durations follow Figures.load_for so claim
   numbers line up with the figure tables. *)
let latency ?(quick = false) ~seed config ~tput ~size =
  let scale = if quick then 0.25 else 1.0 in
  let measure = scale *. Float.max 3000.0 (300_000.0 /. tput) in
  let load =
    {
      Experiment.throughput = tput;
      body_bytes = size;
      duration = 500.0 +. measure;
      warmup = 500.0;
    }
  in
  (Experiment.run ~seed config load).Experiment.latency.Stats.mean

let verify ?(quick = false) ?(seed = 1L) () =
  let lat = latency ~quick ~seed in
  let ms = Printf.sprintf "%.3f" in
  let verdicts = ref [] in
  let claim id statement holds detail =
    verdicts := { id; statement; holds; detail } :: !verdicts
  in

  (* Figure 1: consensus on messages pays for payload size; indirect does
     not. *)
  let ind0 = lat Stack.abcast_indirect ~tput:100.0 ~size:1 in
  let ind5k = lat Stack.abcast_indirect ~tput:100.0 ~size:5000 in
  let msg0 = lat Stack.abcast_msgs ~tput:100.0 ~size:1 in
  let msg5k = lat Stack.abcast_msgs ~tput:100.0 ~size:5000 in
  claim "fig1.size-sensitivity"
    "consensus on messages degrades with payload size much faster than indirect"
    (msg5k -. msg0 > 2.0 *. (ind5k -. ind0) && msg5k > ind5k)
    (Printf.sprintf "on-messages %s->%s, indirect %s->%s" (ms msg0) (ms msg5k) (ms ind0)
       (ms ind5k));

  let ind25_800 = lat Stack.abcast_indirect ~tput:800.0 ~size:2500 in
  let msg25_800 = lat Stack.abcast_msgs ~tput:800.0 ~size:2500 in
  let ind25_100 = lat Stack.abcast_indirect ~tput:100.0 ~size:2500 in
  let msg25_100 = lat Stack.abcast_msgs ~tput:100.0 ~size:2500 in
  claim "fig1.gap-widens-with-throughput"
    "the on-messages penalty grows with throughput"
    (msg25_800 -. ind25_800 > msg25_100 -. ind25_100)
    (Printf.sprintf "gap %s at 100/s vs %s at 800/s"
       (ms (msg25_100 -. ind25_100))
       (ms (msg25_800 -. ind25_800)));

  (* Figure 3: the rcv overhead exists, grows with throughput and with n. *)
  let ov ~n ~tput =
    lat { Stack.abcast_indirect with Stack.n } ~tput ~size:1
    -. lat { Stack.abcast_ids_faulty with Stack.n } ~tput ~size:1
  in
  let ov3_low = ov ~n:3 ~tput:50.0 in
  let ov3_high = ov ~n:3 ~tput:800.0 in
  claim "fig3.overhead-grows-with-throughput"
    "indirect consensus overhead is nonnegative and grows with throughput (n=3)"
    (ov3_low >= -0.01 && ov3_high > ov3_low)
    (Printf.sprintf "overhead %s at 50/s, %s at 800/s" (ms ov3_low) (ms ov3_high));

  let ov5_700 = ov ~n:5 ~tput:700.0 in
  let ov3_700 = ov ~n:3 ~tput:700.0 in
  claim "fig3.overhead-grows-with-n"
    "the overhead is larger at n=5 than at n=3 (same throughput)"
    (ov5_700 > ov3_700)
    (Printf.sprintf "n=3: %s, n=5: %s at 700/s" (ms ov3_700) (ms ov5_700));

  (* Figure 4: overhead is about throughput, not payload size. *)
  let n5 c = { c with Stack.n = 5 } in
  let ov_size size =
    lat (n5 Stack.abcast_indirect) ~tput:400.0 ~size
    -. lat (n5 Stack.abcast_ids_faulty) ~tput:400.0 ~size
  in
  let ov_small = ov_size 500 in
  let ov_large = ov_size 4000 in
  claim "fig4.overhead-flat-in-size"
    "the overhead does not grow with payload size (both sides exchange only ids)"
    (ov_large < (2.0 *. Float.max ov_small 0.05) +. 0.1)
    (Printf.sprintf "overhead %s at 500B vs %s at 4000B" (ms ov_small) (ms ov_large));

  (* Figures 5-7: indirect+RB beats consensus-on-ids+URB; the gap grows
     with throughput; O(n) RB makes indirect nearly throughput-insensitive. *)
  let s2 c = { c with Stack.setup = Stack.Setup2 } in
  let ind_urb tput =
    ( lat (s2 Stack.abcast_indirect) ~tput ~size:1,
      lat (s2 Stack.abcast_urb) ~tput ~size:1 )
  in
  let i500, u500 = ind_urb 500.0 in
  let i2000, u2000 = ind_urb 2000.0 in
  claim "fig5.indirect-beats-urb"
    "indirect consensus + RB beats plain consensus on ids + URB at every load"
    (i500 < u500 && i2000 < u2000)
    (Printf.sprintf "500/s: %s vs %s; 2000/s: %s vs %s" (ms i500) (ms u500) (ms i2000)
       (ms u2000));
  claim "fig7.urb-degrades-faster"
    "the URB-based stack degrades faster with throughput"
    (u2000 -. u500 > i2000 -. i500)
    (Printf.sprintf "urb +%s, indirect +%s over 500->2000/s" (ms (u2000 -. u500))
       (ms (i2000 -. i500)));

  let relay c = { c with Stack.broadcast = Stack.Fd_relay } in
  let ir500 = lat (s2 (relay Stack.abcast_indirect)) ~tput:500.0 ~size:1 in
  let ir2000 = lat (s2 (relay Stack.abcast_indirect)) ~tput:2000.0 ~size:1 in
  claim "fig7b.on-rb-flattens"
    "with O(n) reliable broadcast the indirect stack is much less affected by throughput"
    (ir2000 -. ir500 < 0.5 *. (u2000 -. u500) && ir2000 < i2000)
    (Printf.sprintf "fd-relay +%s vs urb +%s; %s < %s at 2000/s" (ms (ir2000 -. ir500))
       (ms (u2000 -. u500)) (ms ir2000) (ms i2000));

  (* Section 2.2 / 3.3.2: correctness claims via the scripted scenarios. *)
  let faulty = Scenarios.validity_scenario Scenarios.Faulty_ids in
  let fixed = Scenarios.validity_scenario Scenarios.Indirect in
  claim "s2.2.faulty-violates-validity"
    "unmodified consensus on ids violates AB validity under a crash; indirect does not"
    ((not (Ics_checker.Checker.ok faulty.Scenarios.verdict))
    && Ics_checker.Checker.ok fixed.Scenarios.verdict)
    (Printf.sprintf "faulty: %d violation(s); indirect: clean"
       (List.length faulty.Scenarios.verdict.Ics_checker.Checker.violations));

  let naive = Scenarios.mr_scenario Scenarios.Naive in
  let mr_fixed = Scenarios.mr_scenario Scenarios.Indirect_mr in
  claim "s3.3.2.naive-mr-loses-payloads"
    "the naive MR adaptation violates No loss with a single crash; indirect MR survives"
    ((not (Ics_checker.Checker.ok naive.Scenarios.verdict))
    && Ics_checker.Checker.ok mr_fixed.Scenarios.verdict)
    (Printf.sprintf "naive: %d violation(s); indirect MR: clean"
       (List.length naive.Scenarios.verdict.Ics_checker.Checker.violations));

  (* Section 3.3.3: the resilience boundary of indirect MR. *)
  let mr_survivors ~n ~f =
    let config =
      {
        Stack.default_config with
        Stack.n;
        algo = Stack.Mr;
        setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.1 };
        fd_kind = Stack.Oracle 10.0;
      }
    in
    let stack = Stack.create config in
    let engine = stack.Stack.engine in
    for c = 0 to f - 1 do
      Ics_sim.Engine.crash_at engine (n - 1 - c) ~at:1.0
    done;
    Ics_sim.Engine.schedule engine ~at:30.0 (fun () ->
        ignore (Stack.abroadcast stack ~src:0 ~body_bytes:8));
    Stack.run ~until:2_000.0 ~max_events:2_000_000 stack;
    List.length (Abcast.delivered_sequence stack.Stack.abcast 0)
  in
  claim "s3.3.3.resilience-boundary"
    "indirect MR is live exactly below f < n/3 (blocks at n=3/f=1, lives at n=4/f=1)"
    (mr_survivors ~n:3 ~f:1 = 0
    && mr_survivors ~n:4 ~f:1 = 1
    && mr_survivors ~n:7 ~f:2 = 1
    && mr_survivors ~n:7 ~f:3 = 0)
    "n=3/f=1: blocked; n=4/f=1 and n=7/f=2: delivered; n=7/f=3: blocked";

  List.rev !verdicts
