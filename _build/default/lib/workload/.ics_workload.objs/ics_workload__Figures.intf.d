lib/workload/figures.mli: Experiment Ics_core Ics_prelude
