lib/workload/experiment.mli: Ics_checker Ics_core Ics_prelude Ics_sim
