lib/workload/experiment.ml: Ics_checker Ics_core Ics_net Ics_prelude Ics_sim List
