lib/workload/claims.mli: Format
