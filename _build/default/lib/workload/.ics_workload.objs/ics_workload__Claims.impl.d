lib/workload/claims.ml: Experiment Float Format Ics_checker Ics_core Ics_prelude Ics_sim List Printf Scenarios
