lib/workload/scenarios.mli: Format Ics_checker Ics_core Ics_sim
