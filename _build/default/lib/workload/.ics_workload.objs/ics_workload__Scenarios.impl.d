lib/workload/scenarios.ml: Format Ics_checker Ics_core Ics_fd Ics_net Ics_sim Int List Printf
