lib/workload/figures.ml: Experiment Float Ics_core Ics_prelude Int64 List Printf String
