(** The paper's qualitative conclusions as executable assertions.

    EXPERIMENTS.md records shapes by prose; this module pins them down as
    machine-checked claims.  Each claim runs a handful of targeted
    simulations and asserts an inequality the paper states — who wins, how
    a gap moves with throughput/size/n, where liveness ends.  `bench`
    prints the claim table; the test suite asserts every claim holds, so a
    regression that silently flips a conclusion (not just a number) fails
    CI. *)

type verdict = {
  id : string;  (** e.g. ["fig3.overhead-grows"] *)
  statement : string;  (** the paper's claim, one line *)
  holds : bool;
  detail : string;  (** the measured numbers behind the verdict *)
}

val verify : ?quick:bool -> ?seed:int64 -> unit -> verdict list
(** Evaluate every claim (a dozen simulations; ~40 s full, ~10 s quick). *)

val pp_verdict : Format.formatter -> verdict -> unit

val all_hold : verdict list -> bool
