(** The paper's adversarial executions, scripted deterministically.

    Two families:

    - {!validity_scenario} (§2.2): a process [p0] A-broadcasts [m] but its
      reliable-broadcast payloads never reach anyone (they die with [p0]'s
      crash); consensus traffic goes through.  Run with the {e faulty}
      stack (unmodified consensus on identifiers), instance 1 decides
      [id(m)], the payload is lost, and every later message — including
      those of correct processes — is blocked behind the unfillable head:
      atomic broadcast {b Validity is violated} and the checker reports
      it, together with the No-loss violation.  Run with the {e indirect}
      stack under the very same schedule, the [rcv] guard nacks the
      orphan identifier, some later round decides without it, and all
      correct processes' messages are delivered.

    - {!mr_scenario} (§3.3.2): the Mostéfaoui–Raynal counterexample with a
      {b single} coordinator crash ([f = 1], within the original
      algorithm's [f < n/2]).  In the {e naive} adaptation (original MR
      run on identifiers), processes that received the coordinator's value
      relay it without holding its payloads; with the two suspecting
      processes' ⊥-relays delayed, every process observes a unanimous
      majority quorum and decides a value whose payloads die with the
      coordinator.  The {e conservative} patch (rcv-guard the relays but
      keep majority quorums) refuses to vouch and — in the symmetric
      execution the paper pairs with it — can no longer terminate/agree.
      The {e indirect} variant (⌈(2n+1)/3⌉ quorums) handles the same
      schedule correctly. *)

module Pid = Ics_sim.Pid
module Checker = Ics_checker.Checker
module Stack = Ics_core.Stack

type outcome = {
  description : string;
  verdict : Checker.verdict;  (** from {!Checker.check_all_abcast} *)
  blocked : (Pid.t * string) list;
      (** correct processes permanently stuck, with the identifier their
          ordered sequence is blocked on *)
  delivered : (Pid.t * int) list;  (** A-deliveries per process *)
  decided_instances : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

type ab_variant = Faulty_ids | Indirect

val validity_scenario : ?n:int -> ab_variant -> outcome
(** §2.2 with CT consensus, [n] = 3 by default.  [Faulty_ids] yields
    Validity + No-loss violations; [Indirect] yields a clean verdict. *)

type mr_variant = Naive | Indirect_mr

val mr_scenario : ?n:int -> mr_variant -> outcome
(** §3.3.2 with MR consensus, [n] = 5 by default.  [Naive] decides an
    unstable value and violates No loss with a single crash; [Indirect_mr]
    survives the same schedule. *)
