let ceil_div a b = (a + b - 1) / b
let majority ~n = ceil_div (n + 1) 2
let two_thirds ~n = ceil_div ((2 * n) + 1) 3
let one_third ~n = ceil_div (n + 1) 3
let max_faults_majority ~n = (n - 1) / 2
let max_faults_two_thirds ~n = if n mod 3 = 0 then (n / 3) - 1 else n / 3
