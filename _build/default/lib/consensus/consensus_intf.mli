(** Common shape of the consensus layers.

    A consensus layer manages a numbered sequence of independent instances
    for all [n] simulated processes.  The user (the atomic broadcast layer)
    proposes into instance [k] and learns decisions through the [on_decide]
    callback; a process that receives an instance-[k] protocol message
    before proposing {e joins} the instance with the proposal returned by
    the [join] callback (necessary for liveness: quorums must include
    processes that have nothing to order yet). *)

module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module Time = Ics_sim.Time

type rcv = Pid.t -> Msg_id.t list -> bool
(** [rcv p ids] tells whether process [p] currently holds the payloads of
    all [ids] — the paper's [rcv] function, supplied by atomic broadcast. *)

type callbacks = {
  on_decide : Pid.t -> int -> Proposal.t -> unit;
      (** [on_decide p k v]: process [p] decides [v] in instance [k].
          Called at most once per (p, k). *)
  join : Pid.t -> int -> Proposal.t;
      (** Initial value for a process dragged into an instance it has not
          proposed in. *)
}

type handle = {
  name : string;
  propose : Pid.t -> int -> Proposal.t -> unit;
      (** Start instance [k] at process [p] with the given initial value.
          No-op if [p] already has the instance or has crashed. *)
  has_instance : Pid.t -> int -> bool;
}
