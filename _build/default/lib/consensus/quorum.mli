(** Quorum arithmetic used across the consensus algorithms.

    All formulas are the paper's, with integer ceilings:
    - CT and original MR need a majority of correct processes
      ([f < n/2]) and use ⌈(n+1)/2⌉-sized quorums;
    - indirect MR needs [f < n/3] and uses ⌈(2n+1)/3⌉-sized quorums with
      the ⌈(n+1)/3⌉ adoption threshold of Algorithm 3 line 28. *)

val majority : n:int -> int
(** ⌈(n+1)/2⌉. *)

val two_thirds : n:int -> int
(** ⌈(2n+1)/3⌉. *)

val one_third : n:int -> int
(** ⌈(n+1)/3⌉. *)

val max_faults_majority : n:int -> int
(** Largest [f] with [f < n/2]. *)

val max_faults_two_thirds : n:int -> int
(** Largest [f] with [f < n/3]. *)
