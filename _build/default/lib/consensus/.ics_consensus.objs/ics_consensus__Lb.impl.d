lib/consensus/lb.ml: Array Consensus_intf Hashtbl Ics_fd Ics_net Ics_sim List Proposal Quorum
