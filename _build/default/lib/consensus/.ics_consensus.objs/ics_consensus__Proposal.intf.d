lib/consensus/proposal.mli: Format Ics_net
