lib/consensus/lb.mli: Consensus_intf Ics_fd Ics_net
