lib/consensus/quorum.mli:
