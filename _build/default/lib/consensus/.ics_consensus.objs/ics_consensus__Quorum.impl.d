lib/consensus/quorum.ml:
