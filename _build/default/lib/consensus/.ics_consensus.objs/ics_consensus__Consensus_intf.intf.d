lib/consensus/consensus_intf.mli: Ics_net Ics_sim Proposal
