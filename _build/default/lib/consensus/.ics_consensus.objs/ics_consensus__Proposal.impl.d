lib/consensus/proposal.ml: Format Ics_net List String
