lib/consensus/ct.mli: Consensus_intf Ics_fd Ics_net
