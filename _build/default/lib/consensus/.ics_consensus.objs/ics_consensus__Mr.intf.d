lib/consensus/mr.mli: Consensus_intf Ics_fd Ics_net
