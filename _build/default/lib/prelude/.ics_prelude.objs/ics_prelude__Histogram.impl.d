lib/prelude/histogram.ml: Array Format String
