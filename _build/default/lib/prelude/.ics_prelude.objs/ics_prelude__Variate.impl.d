lib/prelude/variate.ml: Float Rng
