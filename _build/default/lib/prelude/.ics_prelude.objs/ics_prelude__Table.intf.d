lib/prelude/table.mli: Format
