lib/prelude/variate.mli: Rng
