lib/prelude/rng.mli:
