lib/prelude/table.ml: Array Format List Printf String
