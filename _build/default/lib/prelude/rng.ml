type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Mixing with a distinct finalizer decorrelates the child stream from the
     parent's future outputs. *)
  let child_seed = mix64 (Int64.logxor (next_int64 t) 0xD6E8FEB86659FD93L) in
  create child_seed

let copy t = { state = t.state }

let float t bound =
  assert (bound > 0.);
  (* 53 high bits -> uniform in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let int t bound =
  assert (bound > 0);
  let bits = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem bits (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
