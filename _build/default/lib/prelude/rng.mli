(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from its seed.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting, which lets each
    simulated process own an independent stream derived from the experiment
    seed. *)

type t
(** A mutable generator. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    subsequent outputs of [t].  Used to give each simulated process its own
    stream. *)

val copy : t -> t
(** [copy t] duplicates the generator state (both copies then produce the
    same stream). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)
