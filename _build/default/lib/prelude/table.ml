type t = { title : string; columns : string list; mutable rev_rows : string list list }

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rev_rows <- row :: t.rev_rows

let add_float_row t row = add_row t (List.map (Printf.sprintf "%.3f") row)

let rows t = List.rev t.rev_rows

let pp ppf t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render row = String.concat "  " (List.mapi pad row) in
  Format.fprintf ppf "== %s ==@." t.title;
  Format.fprintf ppf "%s@." (render t.columns);
  Format.fprintf ppf "%s@."
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) (rows t)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (List.map line (t.columns :: rows t)) ^ "\n"

let print t =
  Format.printf "%a@." pp t
