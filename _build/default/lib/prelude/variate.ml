let exponential rng ~mean =
  if mean <= 0. then invalid_arg "Variate.exponential: mean <= 0";
  let u = Rng.float rng 1.0 in
  (* u is in [0,1); 1-u is in (0,1] so log never sees 0. *)
  -.mean *. log (1.0 -. u)

let uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Variate.uniform: hi < lo";
  if hi = lo then lo else lo +. Rng.float rng (hi -. lo)

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let truncated_normal rng ~mean ~stddev ~lo =
  Float.max lo (normal rng ~mean ~stddev)
