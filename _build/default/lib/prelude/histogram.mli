(** Fixed-width histograms, used for latency distributions in examples and
    for sanity-checking the PRNG in tests. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with [buckets] equal-width
    buckets plus underflow/overflow counters.
    @raise Invalid_argument if [hi <= lo] or [buckets <= 0]. *)

val add : t -> float -> unit
val count : t -> int
val bucket_count : t -> int

val bucket : t -> int -> int
(** Count of the i-th bucket (0-based). @raise Invalid_argument if out of
    range. *)

val underflow : t -> int
val overflow : t -> int

val bucket_bounds : t -> int -> float * float
(** Inclusive-exclusive bounds of the i-th bucket. *)

val pp : Format.formatter -> t -> unit
(** ASCII-art rendering, one line per non-empty bucket. *)
