(** Plain-text table and CSV rendering for benchmark output.

    Every figure harness prints its series through this module so that
    bench output has one consistent, diffable format. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title row and named columns. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    column count. *)

val add_float_row : t -> float list -> unit
(** Convenience: formats each value with [%.3f]. *)

val rows : t -> string list list
(** Rows in insertion order. *)

val pp : Format.formatter -> t -> unit
(** Render with aligned columns and a separator under the header. *)

val to_csv : t -> string
(** Header line then rows, comma-separated.  Values containing commas or
    quotes are quoted. *)

val print : t -> unit
(** [pp] to stdout followed by a blank line. *)
