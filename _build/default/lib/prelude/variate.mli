(** Random variates used by workload generators and network models. *)

val exponential : Rng.t -> mean:float -> float
(** [exponential rng ~mean] draws from an exponential distribution with the
    given mean (inter-arrival times of a Poisson process).
    @raise Invalid_argument if [mean <= 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  @raise Invalid_argument if [hi < lo]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller (one value per call; the pair's twin is
    discarded to keep the stream aligned across refactors). *)

val truncated_normal : Rng.t -> mean:float -> stddev:float -> lo:float -> float
(** Gaussian clamped below at [lo]; used for jitter that must stay
    non-negative. *)
