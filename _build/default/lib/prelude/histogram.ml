type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    total = 0;
    underflow = 0;
    overflow = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bucket_count t = Array.length t.counts

let bucket t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bucket";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let bucket_bounds t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let pp ppf t =
  let max_count = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bucket_bounds t i in
        let bar = String.make (c * 50 / max_count) '#' in
        Format.fprintf ppf "[%8.3f, %8.3f) %6d %s@." lo hi c bar
      end)
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow
