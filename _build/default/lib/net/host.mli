(** Host CPU cost profiles.

    Per-message CPU costs at the sender (serialization, syscalls) and the
    receiver (deserialization, dispatch), linear in the wire size, matching
    the Neko/Java performance model.  The [rcv] check of indirect consensus
    is also CPU work (a hash lookup per identifier in the proposal); its
    cost is what produces the indirect-consensus overhead measured in
    Figures 3 and 4 of the paper. *)

module Time = Ics_sim.Time

type t = {
  cpu_send_fixed : Time.t;
  cpu_send_per_byte : Time.t;
  cpu_recv_fixed : Time.t;
  cpu_recv_per_byte : Time.t;
  local_delivery : Time.t;  (** CPU time to hand a message to oneself *)
  rcv_check_fixed : Time.t;  (** fixed cost of one [rcv(v)] evaluation *)
  rcv_check_per_id : Time.t;  (** additional cost per identifier in [v] *)
}

val pentium3 : t
(** Setup 1 host: Pentium III 766 MHz running a 1.4 JVM. *)

val pentium4 : t
(** Setup 2 host: Pentium 4 3.2 GHz running a 1.5 JVM. *)

val instant : t
(** All costs zero — for algorithm-level tests where only message order and
    failure timing matter. *)

val send_cost : t -> wire_bytes:int -> Time.t
val recv_cost : t -> wire_bytes:int -> Time.t
val rcv_check_cost : t -> ids:int -> Time.t
