module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type t = { id : Msg_id.t; body_bytes : int; created_at : Time.t }

let make ~id ~body_bytes ~created_at = { id; body_bytes; created_at }
let origin t = t.id.Msg_id.origin

let pp ppf t =
  Format.fprintf ppf "%a(%dB @%a)" Msg_id.pp t.id t.body_bytes Time.pp t.created_at

let rb_body_bytes t = Wire.payload_with_id_bytes t.body_bytes
