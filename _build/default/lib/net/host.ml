module Time = Ics_sim.Time

type t = {
  cpu_send_fixed : Time.t;
  cpu_send_per_byte : Time.t;
  cpu_recv_fixed : Time.t;
  cpu_recv_per_byte : Time.t;
  local_delivery : Time.t;
  rcv_check_fixed : Time.t;
  rcv_check_per_id : Time.t;
}

let pentium3 =
  {
    cpu_send_fixed = 0.085;
    cpu_send_per_byte = 0.00002;
    cpu_recv_fixed = 0.085;
    cpu_recv_per_byte = 0.00002;
    local_delivery = 0.010;
    rcv_check_fixed = 0.010;
    rcv_check_per_id = 0.040;
  }

let pentium4 =
  (* Faster CPU than Setup 1, but the 1.5 JVM's per-message overhead keeps
     the fixed costs at roughly two thirds of Setup 1's, matching the
     paper's observed latencies (~1 ms at 500 msg/s on Setup 2 vs ~1.4 ms
     at 100 msg/s on Setup 1). *)
  {
    cpu_send_fixed = 0.055;
    cpu_send_per_byte = 0.000005;
    cpu_recv_fixed = 0.055;
    cpu_recv_per_byte = 0.000005;
    local_delivery = 0.006;
    rcv_check_fixed = 0.003;
    rcv_check_per_id = 0.010;
  }

let instant =
  {
    cpu_send_fixed = 0.0;
    cpu_send_per_byte = 0.0;
    cpu_recv_fixed = 0.0;
    cpu_recv_per_byte = 0.0;
    local_delivery = 0.0;
    rcv_check_fixed = 0.0;
    rcv_check_per_id = 0.0;
  }

let send_cost t ~wire_bytes =
  Time.( + ) t.cpu_send_fixed (t.cpu_send_per_byte *. float_of_int wire_bytes)

let recv_cost t ~wire_bytes =
  Time.( + ) t.cpu_recv_fixed (t.cpu_recv_per_byte *. float_of_int wire_bytes)

let rcv_check_cost t ~ids =
  Time.( + ) t.rcv_check_fixed (t.rcv_check_per_id *. float_of_int ids)
