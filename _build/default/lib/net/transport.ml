module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Resource = Ics_sim.Resource

type t = {
  engine : Engine.t;
  model : Model.t;
  host : Host.t;
  cpus : Resource.t array;
  handlers : (string, Message.t -> unit) Hashtbl.t array;
  mutable sent_messages : int;
  mutable sent_bytes : int;
  per_layer : (string, int ref * int ref) Hashtbl.t;  (* layer -> msgs, bytes *)
}

let create engine ~model ~host =
  let n = Engine.n engine in
  {
    engine;
    model;
    host;
    cpus = Array.init n (fun i -> Resource.create (Printf.sprintf "cpu%d" i));
    handlers = Array.init n (fun _ -> Hashtbl.create 8);
    sent_messages = 0;
    sent_bytes = 0;
    per_layer = Hashtbl.create 8;
  }

let engine t = t.engine
let host t = t.host
let n t = Engine.n t.engine

let register t pid ~layer handler =
  if Hashtbl.mem t.handlers.(pid) layer then
    invalid_arg (Printf.sprintf "Transport.register: duplicate layer %s at p%d" layer pid);
  Hashtbl.replace t.handlers.(pid) layer handler

let dispatch t (msg : Message.t) =
  if Engine.is_alive t.engine msg.dst then
    match Hashtbl.find_opt t.handlers.(msg.dst) msg.layer with
    | Some handler -> handler msg
    | None ->
        (* A layer that was never installed at this process: drop, as a real
           stack would for an unknown protocol port. *)
        ()

let deliver_leg t (msg : Message.t) =
  (* Receiver CPU: deserialization queues on the destination's processor. *)
  let service = Host.recv_cost t.host ~wire_bytes:(Message.wire_size msg) in
  let done_at = Resource.reserve t.cpus.(msg.dst) ~now:(Engine.now t.engine) ~service in
  Engine.schedule t.engine ~at:done_at (fun () -> dispatch t msg)

let send t ~src ~dst ~layer ~body_bytes payload =
  if Engine.is_alive t.engine src then begin
    let msg =
      { Message.src; dst; layer; payload; body_bytes; sent_at = Engine.now t.engine }
    in
    t.sent_messages <- t.sent_messages + 1;
    t.sent_bytes <- t.sent_bytes + Message.wire_size msg;
    (let msgs, bytes =
       match Hashtbl.find_opt t.per_layer layer with
       | Some c -> c
       | None ->
           let c = (ref 0, ref 0) in
           Hashtbl.add t.per_layer layer c;
           c
     in
     incr msgs;
     bytes := !bytes + Message.wire_size msg);
    if Pid.equal src dst then begin
      let done_at =
        Resource.reserve t.cpus.(src) ~now:(Engine.now t.engine)
          ~service:t.host.Host.local_delivery
      in
      Engine.schedule t.engine ~at:done_at (fun () -> dispatch t msg)
    end
    else begin
      let service = Host.send_cost t.host ~wire_bytes:(Message.wire_size msg) in
      let cpu_done = Resource.reserve t.cpus.(src) ~now:(Engine.now t.engine) ~service in
      Engine.schedule t.engine ~at:cpu_done (fun () ->
          (* A crash between the send call and the end of serialization kills
             the message before it reaches the wire. *)
          if Engine.is_alive t.engine src then
            Model.send t.model t.engine msg ~arrive:(fun () -> deliver_leg t msg))
    end
  end

let multicast t ~src ~dsts ~layer ~body_bytes payload =
  List.iter (fun dst -> send t ~src ~dst ~layer ~body_bytes payload) dsts

let send_to_all t ~src ~layer ~body_bytes payload =
  multicast t ~src ~dsts:(Pid.all ~n:(n t)) ~layer ~body_bytes payload

let send_to_others t ~src ~layer ~body_bytes payload =
  multicast t ~src ~dsts:(Pid.others ~n:(n t) src) ~layer ~body_bytes payload

let charge_cpu t pid service =
  ignore (Resource.reserve t.cpus.(pid) ~now:(Engine.now t.engine) ~service)

let cpu_resource t pid = t.cpus.(pid)
let sent_messages t = t.sent_messages
let sent_bytes t = t.sent_bytes

let per_layer_stats t =
  Hashtbl.fold (fun layer (msgs, bytes) acc -> (layer, !msgs, !bytes) :: acc) t.per_layer []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
