let header_bytes = 48
let id_bytes = 16
let id_set_bytes k = 4 + (k * id_bytes)
let payload_with_id_bytes payload = id_bytes + payload
let ack_bytes = 8
let estimate_bytes value_bytes = 8 + value_bytes
