lib/net/transport.mli: Host Ics_sim Message Model
