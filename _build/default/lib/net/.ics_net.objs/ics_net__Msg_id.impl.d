lib/net/msg_id.ml: Format Hashtbl Ics_sim Int Printf Set
