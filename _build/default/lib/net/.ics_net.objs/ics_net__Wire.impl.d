lib/net/wire.ml:
