lib/net/msg_id.mli: Format Hashtbl Ics_sim Set
