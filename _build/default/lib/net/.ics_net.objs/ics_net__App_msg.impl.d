lib/net/app_msg.ml: Format Ics_sim Msg_id Wire
