lib/net/model.mli: Ics_sim Message
