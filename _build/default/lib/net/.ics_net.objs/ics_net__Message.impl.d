lib/net/message.ml: Format Ics_sim Wire
