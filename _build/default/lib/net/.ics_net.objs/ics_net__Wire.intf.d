lib/net/wire.mli:
