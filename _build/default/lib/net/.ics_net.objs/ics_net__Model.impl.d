lib/net/model.ml: Array Ics_prelude Ics_sim Message Printf
