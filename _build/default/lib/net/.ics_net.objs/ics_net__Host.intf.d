lib/net/host.mli: Ics_sim
