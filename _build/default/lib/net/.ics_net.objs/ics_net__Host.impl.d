lib/net/host.ml: Ics_sim
