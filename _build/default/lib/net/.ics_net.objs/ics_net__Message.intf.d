lib/net/message.mli: Format Ics_sim
