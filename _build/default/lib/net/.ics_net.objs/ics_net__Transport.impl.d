lib/net/transport.ml: Array Hashtbl Host Ics_sim List Message Model Printf String
