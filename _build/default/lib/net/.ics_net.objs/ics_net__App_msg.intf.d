lib/net/app_msg.mli: Format Ics_sim Msg_id
