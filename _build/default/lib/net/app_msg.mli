(** Application messages submitted to atomic broadcast.

    The simulator never materializes payload contents — only their size
    matters for performance, and only their identity matters for
    correctness — so a message is its identifier, its payload size and its
    submission time. *)

module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type t = {
  id : Msg_id.t;
  body_bytes : int;  (** application payload size in bytes *)
  created_at : Time.t;  (** when [abroadcast] was invoked *)
}

val make : id:Msg_id.t -> body_bytes:int -> created_at:Time.t -> t
val origin : t -> Pid.t
val pp : Format.formatter -> t -> unit

val rb_body_bytes : t -> int
(** Encoded size when carried by a broadcast primitive: identifier plus
    payload. *)
