(** Wire-size accounting.

    The paper's whole point is that consensus on identifiers decouples the
    consensus traffic from the application payload size, so the simulator
    must account bytes honestly.  Sizes below approximate the Neko/Java
    implementation: a fixed per-message header (UDP/IP/Ethernet framing plus
    Neko's own envelope) and a fixed encoding for message identifiers
    (origin pid + per-origin sequence number + timestamps). *)

val header_bytes : int
(** Framing + envelope bytes added to every message on the wire (48). *)

val id_bytes : int
(** Encoded size of one message identifier (16). *)

val id_set_bytes : int -> int
(** [id_set_bytes k] is the encoded size of a set of [k] identifiers (a
    length prefix plus [k] encoded ids). *)

val payload_with_id_bytes : int -> int
(** Size of an application message as carried by reliable broadcast: its
    identifier plus its payload bytes. *)

val ack_bytes : int
(** Size of an ack/nack body (round number + flag). *)

val estimate_bytes : int -> int
(** Size of a consensus estimate message whose value encodes to [k] bytes:
    round, timestamp and the value. *)
