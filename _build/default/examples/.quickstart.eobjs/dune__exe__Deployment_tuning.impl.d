examples/deployment_tuning.ml: Float Format Ics_core Ics_prelude Ics_workload List Printf String
