examples/fd_tuning.ml: Format Ics_core Ics_net Ics_prelude Ics_sim List Printf
