examples/ordered_chat.ml: Array Format Ics_broadcast Ics_core Ics_net Ics_sim List String
