examples/quickstart.ml: Format Ics_checker Ics_core Ics_net Ics_sim List String
