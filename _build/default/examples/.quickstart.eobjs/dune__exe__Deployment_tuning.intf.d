examples/deployment_tuning.mli:
