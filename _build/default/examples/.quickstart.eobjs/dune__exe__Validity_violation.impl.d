examples/validity_violation.ml: Format Ics_workload
