examples/validity_violation.mli:
