examples/quickstart.mli:
