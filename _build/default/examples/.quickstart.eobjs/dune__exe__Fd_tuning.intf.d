examples/fd_tuning.mli:
