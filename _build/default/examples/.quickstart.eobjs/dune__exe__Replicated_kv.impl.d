examples/replicated_kv.ml: Array Format Hashtbl Ics_core Ics_net Ics_sim List String
