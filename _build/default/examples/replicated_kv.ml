(* Replicated key-value store — state machine replication over atomic
   broadcast.

   Each of the n processes hosts a replica of a string key-value store.
   Clients submit operations (PUT / DEL) at any replica; the operation is
   atomically broadcast, and every replica applies operations in delivery
   order.  Because atomic broadcast gives an identical total order, all
   replicas reach identical states — even with concurrent conflicting
   writes, and even when a replica crashes mid-run.

   The simulator carries only message identifiers and sizes on the wire,
   so operations live in a shared registry keyed by message id (the "what
   would have been the payload" table); replicas look them up at delivery
   time.  Wire costs still reflect the encoded operation size.

   Run with: dune exec examples/replicated_kv.exe *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Engine = Ics_sim.Engine
module Msg_id = Ics_net.Msg_id

type op = Put of string * string | Del of string

let op_bytes = function
  | Put (k, v) -> 2 + String.length k + String.length v
  | Del k -> 2 + String.length k

let pp_op ppf = function
  | Put (k, v) -> Format.fprintf ppf "PUT %s=%s" k v
  | Del k -> Format.fprintf ppf "DEL %s" k

module Replica = struct
  type t = { store : (string, string) Hashtbl.t; mutable applied : int }

  let create () = { store = Hashtbl.create 16; applied = 0 }

  let apply t = function
    | Put (k, v) ->
        Hashtbl.replace t.store k v;
        t.applied <- t.applied + 1
    | Del k ->
        Hashtbl.remove t.store k;
        t.applied <- t.applied + 1

  let snapshot t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
    |> List.sort compare

  let digest t =
    String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) (snapshot t))
end

let () =
  let n = 4 in
  let ops_registry : op Msg_id.Table.t = Msg_id.Table.create 64 in
  let replicas = Array.init n (fun _ -> Replica.create ()) in
  let on_deliver p (m : Ics_net.App_msg.t) =
    Replica.apply replicas.(p) (Msg_id.Table.find ops_registry m.Ics_net.App_msg.id)
  in
  let config =
    { Stack.abcast_indirect with Stack.n; fd_kind = Stack.Oracle 50.0 }
  in
  let stack = Stack.create ~on_deliver config in
  let engine = stack.Stack.engine in

  let submit ~at ~replica op =
    Engine.schedule engine ~at (fun () ->
        if Engine.is_alive engine replica then begin
          let m = Stack.abroadcast stack ~src:replica ~body_bytes:(op_bytes op) in
          Msg_id.Table.replace ops_registry m.Ics_net.App_msg.id op;
          Format.printf "  t=%6.1fms  client at p%d submits %a@." at replica pp_op op
        end)
  in

  (* Concurrent conflicting writes from different replicas. *)
  submit ~at:1.0 ~replica:0 (Put ("user:42", "alice"));
  submit ~at:1.2 ~replica:1 (Put ("user:42", "bob"));
  submit ~at:1.4 ~replica:2 (Put ("balance:42", "100"));
  submit ~at:6.0 ~replica:3 (Put ("balance:42", "250"));
  submit ~at:8.0 ~replica:0 (Del ("user:43"));
  submit ~at:9.0 ~replica:1 (Put ("user:43", "carol"));
  (* Replica 3 crashes; the system keeps going (f=1 < n/2). *)
  Engine.crash_at engine 3 ~at:12.0;
  submit ~at:15.0 ~replica:0 (Put ("user:44", "dave"));
  submit ~at:16.0 ~replica:2 (Put ("epoch", "2"));

  Stack.run stack;

  Format.printf "@.replica states after quiescence:@.";
  for p = 0 to n - 1 do
    Format.printf "  p%d%s: applied=%d  {%s}@." p
      (if Engine.is_alive engine p then "      " else " (dead)")
      replicas.(p).Replica.applied (Replica.digest replicas.(p))
  done;

  let alive = List.filter (Engine.is_alive engine) (List.init n (fun i -> i)) in
  let reference = Replica.digest replicas.(List.hd alive) in
  let converged =
    List.for_all (fun p -> Replica.digest replicas.(p) = reference) alive
  in
  Format.printf "@.all live replicas converged: %b@." converged;
  Format.printf "conflict resolution is by delivery order, identical everywhere:@.";
  Format.printf "  user:42 = %s (last writer in the total order wins)@."
    (match List.assoc_opt "user:42" (Replica.snapshot replicas.(0)) with
    | Some v -> v
    | None -> "<absent>")
