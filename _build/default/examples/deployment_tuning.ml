(* Deployment tuning study: which stack should you run?

   The paper's §4 answers a practical question: given a broadcast-heavy
   workload, should the group-communication stack order (a) full messages,
   (b) bare identifiers over uniform reliable broadcast, or (c) bare
   identifiers with indirect consensus?  This example runs a realistic
   replicated-service profile (mixed payload sizes, moderate rate) through
   all candidate stacks on both testbed models and prints a decision
   table: latency, wire bytes per delivered message, and transport message
   counts.

   Run with: dune exec examples/deployment_tuning.exe *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Experiment = Ics_workload.Experiment
module Table = Ics_prelude.Table
module Stats = Ics_prelude.Stats

let candidates ~setup =
  [
    ("indirect + RB O(n^2)", { Stack.abcast_indirect with Stack.setup });
    ( "indirect + RB O(n)",
      { Stack.abcast_indirect with Stack.setup; broadcast = Stack.Fd_relay } );
    ("on-messages + RB", { Stack.abcast_msgs with Stack.setup });
    ("on-ids + URB", { Stack.abcast_urb with Stack.setup });
  ]

let profile ~throughput ~body_bytes =
  { Experiment.throughput; body_bytes; duration = 4_000.0; warmup = 500.0 }

let run_setup ~name ~setup ~throughput ~body_bytes =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s — %.0f msg/s, %d B payloads, n=3" name throughput body_bytes)
      ~columns:
        [ "stack"; "mean[ms]"; "p99[ms]"; "wire-bytes/msg"; "msgs/abcast"; "max-cpu"; "max-link" ]
  in
  List.iter
    (fun (label, config) ->
      let r = Experiment.run config (profile ~throughput ~body_bytes) in
      let per_msg denom v = float_of_int v /. float_of_int (max 1 denom) in
      let max_util prefix =
        List.fold_left
          (fun acc (name, u) ->
            if String.length name >= String.length prefix
               && String.sub name 0 (String.length prefix) = prefix
            then Float.max acc u
            else acc)
          0.0 r.Experiment.utilization
      in
      let link = Float.max (max_util "uplink") (Float.max (max_util "downlink") (max_util "bus")) in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.3f%s" r.Experiment.latency.Stats.mean
            (if r.Experiment.quiescent then "" else " (saturated)");
          Printf.sprintf "%.3f" r.Experiment.latency.Stats.p99;
          Printf.sprintf "%.0f" (per_msg r.Experiment.abroadcasts r.Experiment.sent_bytes);
          Printf.sprintf "%.1f" (per_msg r.Experiment.abroadcasts r.Experiment.sent_messages);
          Printf.sprintf "%.0f%%" (100.0 *. max_util "cpu");
          Printf.sprintf "%.0f%%" (100.0 *. link);
        ])
    (candidates ~setup);
  Table.print table

let () =
  Format.printf "Deployment tuning: choosing an atomic broadcast stack@.@.";
  (* A chatty replicated service on ageing 100 Mbit hardware. *)
  run_setup ~name:"Setup 1 (P-III, switched 100 Mbit/s)" ~setup:Stack.Setup1 ~throughput:300.0
    ~body_bytes:1024;
  (* The same service moved to a modern switched gigabit cluster. *)
  run_setup ~name:"Setup 2 (P4, switched GigE)" ~setup:Stack.Setup2 ~throughput:1500.0
    ~body_bytes:1024;
  Format.printf
    "@.Reading the tables: consensus on full messages pays the payload price twice@.\
     (broadcast + ordering); URB pays an extra communication step and an O(n^2) ack@.\
     storm; indirect consensus keeps ordering traffic flat in the payload size,@.\
     which is the paper's recommendation — and the gap widens with throughput.@."
