(* The paper's §2.2 counterexample, live.

   Earlier group-communication stacks ran an *unmodified* consensus
   algorithm on message identifiers.  This example replays the execution
   from §2.2 of the paper against that legacy configuration and against
   indirect consensus, printing the checker's verdicts side by side:

   - legacy ("faulty") stack: consensus orders id(m) although only the
     origin ever held m; the origin crashes; every correct process wedges
     behind the lost head and atomic broadcast Validity is violated;
   - indirect consensus: the rcv guard nacks the orphan identifier, the
     instance decides without it, and later messages flow normally.

   It then replays the §3.3.2 Mostéfaoui–Raynal counterexample, where the
   naive adaptation loses a decided payload with a SINGLE crash — inside
   the original algorithm's f < n/2 resilience — while the indirect
   variant (⌈(2n+1)/3⌉ quorums) survives the identical schedule.

   Run with: dune exec examples/validity_violation.exe *)

module Scenarios = Ics_workload.Scenarios

let banner title =
  Format.printf "@.=== %s ===@." title

let () =
  banner "S2.2 — unmodified Chandra-Toueg consensus on identifiers (legacy stacks)";
  Format.printf "%a@." Scenarios.pp_outcome (Scenarios.validity_scenario Scenarios.Faulty_ids);

  banner "S2.2 — same schedule, indirect consensus (the paper's fix)";
  Format.printf "%a@." Scenarios.pp_outcome (Scenarios.validity_scenario Scenarios.Indirect);

  banner "S3.3.2 — naive Mostefaoui-Raynal on identifiers, single crash";
  Format.printf "%a@." Scenarios.pp_outcome (Scenarios.mr_scenario Scenarios.Naive);

  banner "S3.3.2 — same schedule, indirect MR (two-thirds quorums, f < n/3)";
  Format.printf "%a@." Scenarios.pp_outcome (Scenarios.mr_scenario Scenarios.Indirect_mr);

  Format.printf
    "@.Summary: ordering bare identifiers with an unmodified consensus algorithm is@.\
     unsafe the moment one process can crash; indirect consensus restores correctness@.\
     at the cost of rcv checks (CT) or reduced resilience (MR).@."
