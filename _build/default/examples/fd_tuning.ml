(* Failure-detector tuning: the timeout dilemma, measured.

   The ◇S abstraction hides a very practical knob: the heartbeat timeout.
   Set it too low and congestion causes false suspicions — wasted relays,
   abandoned consensus rounds, extra latency.  Set it too high and a real
   crash blocks every in-flight consensus instance until the detector
   finally speaks (the paper's algorithms wait on "received from
   coordinator OR coordinator suspected").

   This example runs the indirect stack under (a) a crash-free loaded run
   and (b) a coordinator crash, across a range of timeouts, and prints
   false suspicions, mean latency, and crash-recovery time.

   Run with: dune exec examples/fd_tuning.exe *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Engine = Ics_sim.Engine
module Trace = Ics_sim.Trace
module Table = Ics_prelude.Table
module Stats = Ics_prelude.Stats

let n = 3
let period = 5.0

let config timeout =
  {
    Stack.abcast_indirect with
    Stack.n;
    fd_kind = Stack.Heartbeat { period; timeout };
  }

(* Crash-free run under a bursty load: every 400 ms each process emits a
   salvo of large messages, spiking the CPU queues that heartbeats share. *)
let good_run timeout =
  let latencies = ref [] in
  let stack_ref = ref None in
  let on_deliver _ (m : Ics_net.App_msg.t) =
    match !stack_ref with
    | Some stack ->
        latencies := (Engine.now stack.Stack.engine -. m.created_at) :: !latencies
    | None -> ()
  in
  let stack = Stack.create ~on_deliver (config timeout) in
  stack_ref := Some stack;
  let engine = stack.Stack.engine in
  for burst = 0 to 9 do
    for i = 0 to 149 do
      let at = (400.0 *. float_of_int burst) +. (0.02 *. float_of_int i) in
      Engine.schedule engine ~at (fun () ->
          ignore (Stack.abroadcast stack ~src:(i mod n) ~body_bytes:4000))
    done
  done;
  Stack.run ~until:20_000.0 stack;
  let suspicions =
    List.length
      (Trace.filter (Engine.trace engine) (fun e ->
           match e.Trace.kind with Trace.Suspect _ -> true | _ -> false))
  in
  (suspicions, Stats.summarize !latencies)

(* Crash run: p0 (the perpetual round-1 coordinator) dies at t=100; a
   message broadcast just after must wait for suspicion before it can be
   ordered.  Recovery = its abroadcast->adeliver latency at p1. *)
let crash_run timeout =
  let recovered_at = ref None in
  let stack_ref = ref None in
  let on_deliver p (m : Ics_net.App_msg.t) =
    match !stack_ref with
    | Some stack
      when p = 1 && m.id.Ics_net.Msg_id.origin = 1 && !recovered_at = None ->
        recovered_at := Some (Engine.now stack.Stack.engine -. m.created_at)
    | _ -> ()
  in
  let stack = Stack.create ~on_deliver (config timeout) in
  stack_ref := Some stack;
  let engine = stack.Stack.engine in
  Engine.crash_at engine 0 ~at:100.0;
  Engine.schedule engine ~at:110.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:1 ~body_bytes:100));
  Stack.run ~until:10_000.0 stack;
  !recovered_at

let () =
  Format.printf "Heartbeat tuning for the indirect-consensus stack (n=%d, period=%.0fms)@.@."
    n period;
  let table =
    Table.create ~title:"timeout sweep"
      ~columns:
        [ "timeout[ms]"; "false-suspicions"; "mean-latency[ms]"; "p99[ms]"; "crash-recovery[ms]" ]
  in
  List.iter
    (fun timeout ->
      let suspicions, summary = good_run timeout in
      let recovery = crash_run timeout in
      Table.add_row table
        [
          Printf.sprintf "%.0f" timeout;
          string_of_int suspicions;
          Printf.sprintf "%.3f" summary.Stats.mean;
          Printf.sprintf "%.3f" summary.Stats.p99;
          (match recovery with Some r -> Printf.sprintf "%.1f" r | None -> "never");
        ])
    [ 8.0; 15.0; 30.0; 60.0; 120.0; 250.0 ];
  Table.print table;
  Format.printf
    "@.Reading the table: short timeouts suspect healthy processes under load@.\
     (suspicions > 0 in a crash-free run) yet recover from the real crash fast;@.\
     long timeouts are quiet but every consensus instance led by the dead@.\
     coordinator stalls for the full timeout.  The sweet spot sits just above@.\
     the congested heartbeat round-trip.@."
