(* Quickstart: totally ordered broadcast among five simulated processes.

   Builds the paper's recommended stack — reliable broadcast + indirect
   Chandra–Toueg consensus — over a simulated 100 Mbit/s LAN, has every
   process broadcast a handful of messages concurrently, and shows that
   all five deliver exactly the same sequence.

   Run with: dune exec examples/quickstart.exe *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Engine = Ics_sim.Engine
module Msg_id = Ics_net.Msg_id

let () =
  let config = { Stack.abcast_indirect with Stack.n = 5 } in
  (* Observe deliveries as they happen at process 0. *)
  let stack_ref = ref None in
  let on_deliver p (m : Ics_net.App_msg.t) =
    match !stack_ref with
    | Some stack when p = 0 ->
        Format.printf "  t=%6.2fms  p0 adelivers %a (sent at t=%.2fms)@."
          (Engine.now stack.Stack.engine) Msg_id.pp m.id m.created_at
    | _ -> ()
  in
  let stack = Stack.create ~on_deliver config in
  stack_ref := Some stack;
  let engine = stack.Stack.engine in

  (* Every process broadcasts 4 messages at slightly staggered times. *)
  for round = 0 to 3 do
    for p = 0 to 4 do
      let at = (float_of_int round *. 5.0) +. (0.7 *. float_of_int p) in
      Engine.schedule engine ~at (fun () ->
          ignore (Stack.abroadcast stack ~src:p ~body_bytes:100))
    done
  done;

  Stack.run stack;

  Format.printf "stack: %s@.@." (Stack.describe stack);
  List.iter
    (fun p ->
      let seq = Abcast.delivered_sequence stack.Stack.abcast p in
      Format.printf "p%d delivered %2d messages: %s@." p (List.length seq)
        (String.concat " " (List.map Msg_id.to_string seq)))
    [ 0; 1; 2; 3; 4 ];

  (* All five sequences are identical — that is atomic broadcast. *)
  let reference = Abcast.delivered_sequence stack.Stack.abcast 0 in
  let all_equal =
    List.for_all
      (fun p -> Abcast.delivered_sequence stack.Stack.abcast p = reference)
      [ 1; 2; 3; 4 ]
  in
  Format.printf "@.total order identical at all processes: %b@." all_equal;

  (* And the trace satisfies the formal spec. *)
  let run =
    Ics_checker.Checker.Run.of_trace (Engine.trace engine) ~n:5
  in
  Format.printf "checker: %a@." Ics_checker.Checker.pp_verdict
    (Ics_checker.Checker.check_all_abcast run)
