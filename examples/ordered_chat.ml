(* Ordered chat: why the broadcast *order* guarantee matters.

   A tiny chat room replicated at three sites.  Alice posts a question
   from site 0; Bob reads it at site 1 and posts an answer.  The answer
   causally depends on the question — yet with plain reliable broadcast a
   slow link can show Carol (site 2) the answer *before* the question.

   The same scenario is replayed over three broadcast layers:
   - plain reliable broadcast (flood): causal inversion visible;
   - causal broadcast (vector clocks): question always precedes answer,
     but two *concurrent* posts can still appear in different orders at
     different sites;
   - atomic broadcast (the paper's stack): one global order, identical
     everywhere — the strongest and costliest guarantee.

   Run with: dune exec examples/ordered_chat.exe *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Rb_flood = Ics_broadcast.Rb_flood
module Causal = Ics_broadcast.Causal
module Stack = Ics_core.Stack

let n = 3

(* The post registry: message id -> chat line. *)
let posts : string Msg_id.Table.t = Msg_id.Table.create 16

let post ~text m = Msg_id.Table.replace posts m.App_msg.id text

(* Slow down every copy of Alice's posts heading to site 2 (recognizable
   by their payload size), so Bob's answer can overtake them. *)
let slow_link (m : Ics_net.Message.t) =
  if Pid.equal m.dst 2 && m.body_bytes > 200 then Model.Delay_by 25.0 else Model.Pass

let show_timeline name timelines =
  Format.printf "%s:@." name;
  Array.iteri
    (fun site lines ->
      Format.printf "  site %d sees: %s@." site
        (String.concat " | " (List.rev lines)))
    timelines;
  Format.printf "@."

(* Scenario over a raw broadcast layer. *)
let run_broadcast name make_layer =
  let engine = Engine.create ~n () in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:3L ()) ~rule:slow_link in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let timelines = Array.make n [] in
  let handle =
    make_layer transport ~deliver:(fun site (m : App_msg.t) ->
        timelines.(site) <- Msg_id.Table.find posts m.id :: timelines.(site))
  in
  let say ~at ~site ~seq ~big text =
    Engine.schedule engine ~at (fun () ->
        let m =
          App_msg.make ~id:(Msg_id.make ~origin:site ~seq)
            ~body_bytes:(if big then 300 else 20)
            ~created_at:at ()
        in
        post ~text m;
        handle.Ics_broadcast.Broadcast_intf.broadcast ~src:site m)
  in
  (* Alice asks (big message, slow to site 2); Bob answers after reading. *)
  say ~at:1.0 ~site:0 ~seq:0 ~big:true "alice: lunch where?";
  say ~at:5.0 ~site:1 ~seq:0 ~big:false "bob: the usual place!";
  Engine.run engine;
  show_timeline name timelines

(* Scenario over full atomic broadcast. *)
let run_abcast () =
  let timelines = Array.make n [] in
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let stack =
    Stack.create
      ~rule:slow_link
      ~on_deliver:(fun site m ->
        timelines.(site) <- Msg_id.Table.find posts m.App_msg.id :: timelines.(site))
      config
  in
  let engine = stack.Stack.engine in
  let say ~at ~site ~big text =
    Engine.schedule engine ~at (fun () ->
        let m = Stack.abroadcast stack ~src:site ~body_bytes:(if big then 300 else 20) in
        post ~text m)
  in
  say ~at:1.0 ~site:0 ~big:true "alice: lunch where?";
  say ~at:5.0 ~site:1 ~big:false "bob: the usual place!";
  (* Two concurrent posts: atomic broadcast orders even these identically. *)
  say ~at:20.0 ~site:0 ~big:false "alice: 12:30?";
  say ~at:20.1 ~site:2 ~big:false "carol: i'm in";
  Stack.run stack;
  show_timeline "atomic broadcast (indirect consensus)" timelines

let () =
  Format.printf "One causal chain, three broadcast guarantees (site 2 has a slow link)@.@.";
  run_broadcast "plain reliable broadcast — answer can precede question at site 2"
    (fun transport ~deliver -> Rb_flood.create transport ~deliver);
  run_broadcast "causal broadcast — the question always comes first"
    (fun transport ~deliver -> Causal.create transport ~deliver);
  run_abcast ();
  Format.printf
    "Plain RB broke the conversation at site 2; causal order fixed the chain; atomic@.\
     broadcast additionally agreed on one interleaving of the concurrent posts —@.\
     which is what it costs consensus rounds to provide.@."
