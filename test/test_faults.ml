(* Tests for the fault-injection layer: nemesis plans, the retransmission
   channel, and the chaos harness built on both. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Model = Ics_net.Model
module Message = Ics_net.Message
module Layer = Ics_net.Layer
module Retransmit = Ics_net.Retransmit
module Nemesis = Ics_faults.Nemesis
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker
module Chaos = Ics_workload.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let msg ?(layer = "test") ~src ~dst () =
  {
    Message.src;
    dst;
    layer = Layer.unregistered layer;
    payload = Message.Ping;
    body_bytes = 8;
    sent_at = 0.0;
  }

let mk_base n = Model.constant ~delay:1.0 ~n ~seed:1L ()

(* --- Nemesis ------------------------------------------------------------- *)

let test_drop_all () =
  let e = Engine.create ~n:2 () in
  let model, stats =
    Nemesis.apply ~engine:e ~seed:1L
      ~plan:[ Nemesis.Drop { link = Nemesis.any_link; prob = 1.0; window = Nemesis.always } ]
      ~base:(mk_base 2) ()
  in
  let arrived = ref 0 in
  for _ = 1 to 5 do
    Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> incr arrived)
  done;
  Engine.run e;
  checki "nothing arrives" 0 !arrived;
  checki "all drops counted" 5 stats.Model.Fault_stats.drops;
  checki "drops recorded in trace" 5
    (List.length
       (Trace.filter (Engine.trace e) (fun ev ->
            match ev.Trace.kind with Trace.Net_drop _ -> true | _ -> false)))

let test_partition_cuts_cross_group_only () =
  let e = Engine.create ~n:4 () in
  let plan =
    [
      Nemesis.Partition
        {
          groups = [ [ 0; 1 ]; [ 2; 3 ] ];
          window = Nemesis.window ~from_t:0.0 ~until_t:100.0;
        };
    ]
  in
  let model, stats = Nemesis.apply ~engine:e ~seed:1L ~plan ~base:(mk_base 4) () in
  let arrived = ref [] in
  let send ~at ~src ~dst =
    Engine.schedule e ~at (fun () ->
        Model.send model e (msg ~src ~dst ()) ~arrive:(fun () ->
            arrived := (src, dst) :: !arrived))
  in
  send ~at:1.0 ~src:0 ~dst:1;  (* same group: passes *)
  send ~at:1.0 ~src:0 ~dst:2;  (* cross group: cut *)
  send ~at:1.0 ~src:3 ~dst:1;  (* cross group, other direction: cut *)
  send ~at:150.0 ~src:0 ~dst:2;  (* after heal: passes *)
  Engine.run e;
  checki "two arrivals" 2 (List.length !arrived);
  checki "two partition drops" 2 stats.Model.Fault_stats.partition_drops;
  let marker k =
    List.length (Trace.filter (Engine.trace e) (fun ev -> ev.Trace.kind = k))
  in
  checki "partition start traced" 1 (marker (Trace.Partition_start "{0 1}|{2 3}"));
  checki "partition heal traced" 1 (marker (Trace.Partition_heal "{0 1}|{2 3}"))

let test_isolate_outbound_only () =
  let e = Engine.create ~n:3 () in
  let plan =
    [
      Nemesis.Isolate
        { pid = 1; inbound = false; outbound = true; window = Nemesis.always };
    ]
  in
  let model, stats = Nemesis.apply ~engine:e ~seed:1L ~plan ~base:(mk_base 3) () in
  let arrived = ref [] in
  let send ~src ~dst =
    Model.send model e (msg ~src ~dst ()) ~arrive:(fun () ->
        arrived := (src, dst) :: !arrived)
  in
  send ~src:1 ~dst:0;  (* outbound from the victim: cut *)
  send ~src:0 ~dst:1;  (* inbound to the victim: passes (asymmetric) *)
  Engine.run e;
  Alcotest.(check (list (pair int int))) "only inbound arrives" [ (0, 1) ] !arrived;
  checki "one partition drop" 1 stats.Model.Fault_stats.partition_drops

let test_crash_clause () =
  let e = Engine.create ~n:3 () in
  let _, stats =
    Nemesis.apply ~engine:e ~seed:1L
      ~plan:[ Nemesis.Crash { pid = 1; at = 5.0 } ]
      ~base:(mk_base 3) ()
  in
  Engine.run e;
  checkb "p1 dead" false (Engine.is_alive e 1);
  checki "crash counted" 1 stats.Model.Fault_stats.crashes

let test_nemesis_deterministic () =
  let outcomes seed =
    let e = Engine.create ~n:2 () in
    let model, stats =
      Nemesis.apply ~engine:e ~seed
        ~plan:
          [ Nemesis.Drop { link = Nemesis.any_link; prob = 0.5; window = Nemesis.always } ]
        ~base:(mk_base 2) ()
    in
    let arrived = ref 0 in
    for _ = 1 to 40 do
      Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> incr arrived)
    done;
    Engine.run e;
    (!arrived, stats.Model.Fault_stats.drops)
  in
  let a1 = outcomes 7L and a2 = outcomes 7L in
  Alcotest.(check (pair int int)) "same seed, same faults" a1 a2;
  let arrived, drops = a1 in
  checki "partial loss" 40 (arrived + drops);
  checkb "some dropped, some passed" true (arrived > 0 && drops > 0)

let test_plan_pp () =
  let plan =
    [
      Nemesis.Drop
        {
          link = { Nemesis.l_src = Some 0; l_dst = None; l_layer = Some "rb" };
          prob = 1.0;
          window = Nemesis.always;
        };
      Nemesis.Crash { pid = 0; at = 10.0 };
    ]
  in
  let s = Nemesis.plan_to_string plan in
  checkb "mentions drop" true (Test_util.contains s "drop(src=0,layer=rb");
  checkb "mentions crash" true (Test_util.contains s "crash(p0");
  checkb "single line" true (not (String.contains s '\n'))

(* --- Retransmission channel ---------------------------------------------- *)

let test_retransmit_lossless_passthrough () =
  let e = Engine.create ~n:2 () in
  let model, stats = Retransmit.wrap (mk_base 2) in
  let order = ref [] in
  for i = 1 to 5 do
    Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> order := i :: !order)
  done;
  Engine.run ~until:200.0 e;
  Alcotest.(check (list int)) "in order, exactly once" [ 1; 2; 3; 4; 5 ] (List.rev !order);
  checki "no retransmits on a clean link" 0 stats.Retransmit.retransmits;
  checki "one transmission per message" 5 stats.Retransmit.transmissions;
  checki "queue drained" 0 (Engine.pending e)

let test_retransmit_recovers_from_drop_window () =
  let e = Engine.create ~n:2 () in
  let lossy, _ =
    Nemesis.apply ~engine:e ~seed:1L
      ~plan:
        [
          Nemesis.Drop
            {
              link = Nemesis.any_link;
              prob = 1.0;
              window = Nemesis.window ~from_t:0.0 ~until_t:12.0;
            };
        ]
      ~base:(mk_base 2) ()
  in
  let model, stats = Retransmit.wrap lossy in
  let order = ref [] in
  Engine.schedule e ~at:1.0 (fun () ->
      for i = 1 to 3 do
        Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> order := i :: !order)
      done);
  Engine.run ~until:500.0 e;
  Alcotest.(check (list int)) "all delivered in order after the window"
    [ 1; 2; 3 ] (List.rev !order);
  checkb "recovery needed retransmits" true (stats.Retransmit.retransmits > 0);
  checki "queue drained" 0 (Engine.pending e)

let test_retransmit_restores_order () =
  let e = Engine.create ~n:2 () in
  (* Slow only the first send by 5 ms: it enters the base model after the
     second one and arrives out of order underneath the channel. *)
  let lossy, _ =
    Nemesis.apply ~engine:e ~seed:1L
      ~plan:
        [
          Nemesis.Slow
            {
              link = Nemesis.any_link;
              extra = 5.0;
              window = Nemesis.window ~from_t:0.0 ~until_t:2.0;
            };
        ]
      ~base:(mk_base 2) ()
  in
  let model, stats = Retransmit.wrap lossy in
  let order = ref [] in
  Engine.schedule e ~at:1.0 (fun () ->
      Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> order := 1 :: !order));
  Engine.schedule e ~at:3.0 (fun () ->
      Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> order := 2 :: !order));
  Engine.run ~until:100.0 e;
  Alcotest.(check (list int)) "FIFO restored" [ 1; 2 ] (List.rev !order);
  checkb "second frame was held" true (stats.Retransmit.held_out_of_order > 0)

let test_retransmit_purges_on_crash () =
  let e = Engine.create ~n:2 () in
  let lossy, _ =
    Nemesis.apply ~engine:e ~seed:1L
      ~plan:[ Nemesis.Drop { link = Nemesis.any_link; prob = 1.0; window = Nemesis.always } ]
      ~base:(mk_base 2) ()
  in
  let model, _ = Retransmit.wrap lossy in
  let arrived = ref 0 in
  Engine.schedule e ~at:1.0 (fun () ->
      Model.send model e (msg ~src:0 ~dst:1 ()) ~arrive:(fun () -> incr arrived));
  Engine.crash_at e 1 ~at:20.0;
  (* The destination is dead and every frame is dropped: without the
     crash-stop purge the retry loop would keep the queue non-empty
     forever and this horizon-less drain would never return. *)
  Engine.run ~until:100.0 e;
  Engine.run e;
  checki "nothing delivered" 0 !arrived;
  checki "queue fully drained" 0 (Engine.pending e)

let test_retransmit_validates_params () =
  Alcotest.check_raises "bad params"
    (Invalid_argument "Retransmit.wrap: bad params") (fun () ->
      ignore
        (Retransmit.wrap
           ~params:{ Retransmit.default_params with backoff = 0.5 }
           (mk_base 2)))

(* --- Scripted-rule fault counters (Stack.fault_counters) ------------------ *)

let test_scripted_counters_surface () =
  let config =
    {
      Stack.default_config with
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let rule (m : Message.t) =
    if Message.layer_name m = "rb" && m.Message.src = 0 then Model.Drop else Model.Pass
  in
  let stack =
    Test_util.run_stack ~rule config [ (1.0, 0, 16); (5.0, 1, 16) ]
  in
  let counters = Stack.fault_counters stack in
  let get k = try List.assoc k counters with Not_found -> 0 in
  checkb "drops counted" true (get "drops" > 0);
  checki "per-layer attribution" (get "drops") (get "drops[rb]");
  (* A clean stack exposes no counters at all. *)
  let clean = Test_util.run_stack config [ (1.0, 0, 16) ] in
  Alcotest.(check (list (pair string int))) "no faults, no counters" []
    (Stack.fault_counters clean)

(* --- Post-crash silence --------------------------------------------------- *)

let test_no_steps_after_crash () =
  let config =
    {
      Stack.default_config with
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let stack =
    Test_util.run_stack ~crashes:[ (0, 10.0) ] config
      [ (1.0, 0, 16); (2.0, 1, 16); (20.0, 2, 16) ]
  in
  let late_p0_events =
    Trace.filter
      (Engine.trace stack.Stack.engine)
      (fun ev ->
        ev.Trace.pid = 0 && ev.Trace.time > 10.0 && ev.Trace.kind <> Trace.Crash)
  in
  checki "a crashed process takes no further protocol steps" 0
    (List.length late_p0_events);
  (* An abroadcast call on behalf of a dead process is a no-op. *)
  let before = List.length (Abcast.delivered_sequence stack.Stack.abcast 1) in
  ignore (Stack.abroadcast stack ~src:0 ~body_bytes:16);
  Stack.run ~until:30_000.0 stack;
  checki "dead-origin abroadcast delivers nothing"
    before
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 1))

(* --- Chaos harness -------------------------------------------------------- *)

let test_chaos_indirect_clean_under_drops () =
  let r = Chaos.run_one Chaos.Ct_indirect Chaos.Drop ~seed:1L in
  checkb "passed" true (Chaos.passed r);
  checkb "faults were actually injected" true
    (List.mem_assoc "drops" r.Chaos.faults);
  checkb "channel worked for it" true (List.length r.Chaos.retx > 0)

let test_chaos_blackout_breaks_on_ids_only () =
  let faulty = Chaos.run_one Chaos.Ct_on_ids Chaos.Blackout ~seed:1L in
  checkb "on-ids violates" true (not (Chaos.passed faulty));
  checkb "no-loss violated" true
    (Test_util.has_violation faulty.Chaos.verdict "indirect-consensus.no-loss");
  checkb "validity violated" true
    (Test_util.has_violation faulty.Chaos.verdict "abcast.validity");
  let indirect = Chaos.run_one Chaos.Ct_indirect Chaos.Blackout ~seed:1L in
  checkb "indirect stays clean under the same plan" true (Chaos.passed indirect);
  let mr = Chaos.run_one Chaos.Mr_indirect Chaos.Blackout ~seed:1L in
  checkb "mr-indirect stays clean too" true (Chaos.passed mr)

(* The satellite pair around strict no-loss: over fair-lossy links the
   stack's quasi-reliable-channel assumption is broken and even the correct
   algorithm fails (seed pinned to a failing run); the retransmission
   channel restores the assumption and the same run is clean. *)
let test_strict_no_loss_needs_retransmission () =
  let with_retx = Chaos.run_one ~retransmit:true Chaos.Ct_indirect Chaos.Drop ~seed:2L in
  checkb "with retransmission: all properties (incl. strict no-loss) hold" true
    (Checker.ok with_retx.Chaos.verdict && with_retx.Chaos.quiescent);
  let without = Chaos.run_one ~retransmit:false Chaos.Ct_indirect Chaos.Drop ~seed:2L in
  checkb "without: the lossy link breaks the stack" true
    (not (Checker.ok without.Chaos.verdict))

let test_chaos_replay_bit_identical () =
  let a = Chaos.run_one Chaos.Ct_on_ids Chaos.Blackout ~seed:3L in
  let b = Chaos.run_one Chaos.Ct_on_ids Chaos.Blackout ~seed:3L in
  Alcotest.(check string) "same fingerprint" a.Chaos.fingerprint b.Chaos.fingerprint;
  Alcotest.(check (list (pair string int))) "same fault counters"
    a.Chaos.faults b.Chaos.faults;
  checki "same violation count"
    (List.length a.Chaos.verdict.Checker.violations)
    (List.length b.Chaos.verdict.Checker.violations);
  let c = Chaos.run_one Chaos.Ct_on_ids Chaos.Blackout ~seed:4L in
  checkb "different seed, different run" true
    (c.Chaos.fingerprint <> a.Chaos.fingerprint)

let test_chaos_sweep_and_report () =
  let cells =
    Chaos.sweep ~seeds:2 ~stacks:[ Chaos.Ct_indirect; Chaos.Ct_on_ids ]
      ~plans:[ Chaos.Drop; Chaos.Blackout ] ()
  in
  checki "four cells" 4 (List.length cells);
  checkb "indirect clean, on-ids dirty" true (Chaos.indirect_clean cells);
  let faulty_cell =
    List.find
      (fun c -> c.Chaos.c_stack = Chaos.Ct_on_ids && c.Chaos.c_plan = Chaos.Blackout)
      cells
  in
  checki "every blackout seed fails on-ids" 2 (List.length faulty_cell.Chaos.failures);
  let report = Format.asprintf "%a" (Chaos.report ~verbose:false) cells in
  checkb "matrix rendered" true (Test_util.contains report "ct-indirect");
  checkb "failure is replayable" true (Test_util.contains report "--seed-base");
  let hint = Chaos.replay_hint (List.hd faulty_cell.Chaos.failures) in
  checkb "hint names the cell" true
    (Test_util.contains hint "--stacks ct-on-ids --plans blackout")

(* The nondeterminism fence on the parallel sweep: a domains-wide sweep
   must agree with the sequential one on every run's fingerprint (not
   just the failure lists), and both must agree with a fingerprint
   pinned when the sweep was single-domain only — so neither the
   parallel merge nor domain scheduling can move a single trace byte.

   The domain-spawning half runs in a forked child: this OCaml runtime
   forbids [Unix.fork] in any process that has {e ever} spawned a
   domain, and later suites fork live clusters — the same reason
   {!Chaos.sweep} itself forces [jobs = 1] on the live backend. *)
let test_chaos_jobs_fingerprint_identical () =
  let stacks = [ Chaos.Ct_indirect; Chaos.Ct_on_ids ] in
  let plans = [ Chaos.Drop; Chaos.Blackout ] in
  let fingerprints jobs =
    Chaos.sweep_results ~seed_base:2L ~seeds:2 ~jobs ~stacks ~plans ()
    |> List.concat_map (fun (_, results) ->
           List.map (fun r -> r.Chaos.fingerprint) results)
  in
  let seq = fingerprints 1 in
  checki "one fingerprint per run" 8 (List.length seq);
  Alcotest.(check string) "first run matches the single-domain pin"
    "4bc2be962988606fdb1a205603e94b6f" (List.hd seq);
  match Unix.fork () with
  | 0 ->
      let status =
        match fingerprints 4 = seq with
        | true ->
            if Chaos.replay_check ~jobs:4 ~seed_base:2L ~stacks ~plans () = []
            then 0
            else 3
        | false -> 2
        | exception e ->
            Printf.eprintf "parallel sweep raised: %s\n%!" (Printexc.to_string e);
            4
      in
      Unix._exit status
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED 2 ->
          Alcotest.fail "jobs=4 sweep fingerprints differ from jobs=1"
      | _, Unix.WEXITED 3 ->
          Alcotest.fail "replay check found mismatches at jobs=4"
      | _, Unix.WEXITED c ->
          Alcotest.fail (Printf.sprintf "parallel sweep child exited %d" c)
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          Alcotest.fail (Printf.sprintf "parallel sweep child killed by signal %d" s))

let suites =
  [
    ( "nemesis",
      [
        Alcotest.test_case "drop-all loses everything" `Quick test_drop_all;
        Alcotest.test_case "partition cuts cross-group" `Quick
          test_partition_cuts_cross_group_only;
        Alcotest.test_case "asymmetric isolation" `Quick test_isolate_outbound_only;
        Alcotest.test_case "crash clause" `Quick test_crash_clause;
        Alcotest.test_case "seeded determinism" `Quick test_nemesis_deterministic;
        Alcotest.test_case "plan rendering" `Quick test_plan_pp;
      ] );
    ( "retransmit",
      [
        Alcotest.test_case "lossless passthrough" `Quick
          test_retransmit_lossless_passthrough;
        Alcotest.test_case "recovers from drop window" `Quick
          test_retransmit_recovers_from_drop_window;
        Alcotest.test_case "restores FIFO order" `Quick test_retransmit_restores_order;
        Alcotest.test_case "purges on crash" `Quick test_retransmit_purges_on_crash;
        Alcotest.test_case "validates params" `Quick test_retransmit_validates_params;
      ] );
    ( "fault-accounting",
      [
        Alcotest.test_case "scripted counters surface" `Quick
          test_scripted_counters_surface;
        Alcotest.test_case "no steps after crash" `Quick test_no_steps_after_crash;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "indirect clean under drops" `Quick
          test_chaos_indirect_clean_under_drops;
        Alcotest.test_case "blackout breaks on-ids only" `Quick
          test_chaos_blackout_breaks_on_ids_only;
        Alcotest.test_case "strict no-loss needs retransmission" `Quick
          test_strict_no_loss_needs_retransmission;
        Alcotest.test_case "replay is bit-identical" `Quick
          test_chaos_replay_bit_identical;
        Alcotest.test_case "sweep and report" `Quick test_chaos_sweep_and_report;
        Alcotest.test_case "parallel sweep is bit-identical" `Quick
          test_chaos_jobs_fingerprint_identical;
      ] );
  ]
