(* Wire codec: registry-driven round-trip coverage, frame robustness
   against truncation/corruption, and the sim-fingerprint regression
   anchor for the body_bytes recalibration. *)

module Rng = Ics_prelude.Rng
module Bq = Ics_codec.Bq
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim
module Codecs = Ics_core.Codecs
module Chaos = Ics_workload.Chaos

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let encode_bytes payload =
  let w = Buffer.create 256 in
  Codec.encode_payload_legacy w payload;
  Buffer.contents w

(* Every registered constructor: gen → encode → decode → re-encode must
   reproduce the bytes, and the arithmetic [size] must equal the real
   encoded length.  The registry itself is the coverage universe, so a
   layer that registers a codec is automatically under test. *)
let test_roundtrip_all () =
  Codecs.ensure ();
  let entries = Codec.entries () in
  checkb "registry covers all protocol layers" true (List.length entries >= 20);
  let rng = Rng.create 0xC0DECL in
  List.iter
    (fun (e : Codec.entry) ->
      for _ = 1 to 50 do
        let p = e.Codec.gen rng in
        checkb (e.Codec.name ^ " gen fits") true (e.Codec.fits p);
        let bytes = encode_bytes p in
        checki (e.Codec.name ^ " size = |encode|") (String.length bytes)
          (e.Codec.size p);
        checki (e.Codec.name ^ " body_bytes agrees") (String.length bytes)
          (Codec.body_bytes p);
        let r = Prim.reader bytes in
        let p' = Codec.decode_payload r in
        checki (e.Codec.name ^ " decode consumed all") 0 (Prim.remaining r);
        checkb (e.Codec.name ^ " decoded fits same codec") true (e.Codec.fits p');
        Alcotest.(check string)
          (e.Codec.name ^ " re-encode identical") bytes (encode_bytes p')
      done)
    entries

let test_unique_tags_and_names () =
  Codecs.ensure ();
  let entries = Codec.entries () in
  let tags = List.map (fun (e : Codec.entry) -> e.Codec.tag) entries in
  let names = List.map (fun (e : Codec.entry) -> e.Codec.name) entries in
  checki "tags unique" (List.length tags) (List.length (List.sort_uniq compare tags));
  checki "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter (fun t -> checkb "tag in range" true (t >= 0 && t <= 255)) tags

let test_unregistered_payload () =
  Codecs.ensure ();
  let module M = struct
    type Ics_net.Message.payload += Never_registered
  end in
  checkb "encode rejects unregistered" true
    (match encode_bytes M.Never_registered with
    | _ -> false
    | exception Codec.Error _ -> true)

let frame_for payload =
  Codecs.ensure ();
  let w = Buffer.create 256 in
  let body_len = Codec.encode_frame_legacy w ~src:1 ~dst:2 ~layer:"consensus" payload in
  (Buffer.contents w, body_len)

let test_frame_roundtrip () =
  Codecs.ensure ();
  let rng = Rng.create 0xF4A3EL in
  List.iter
    (fun (e : Codec.entry) ->
      let p = e.Codec.gen rng in
      let frame, body_len = frame_for p in
      checki
        (e.Codec.name ^ " frame length")
        (Codec.header_bytes + body_len)
        (String.length frame);
      match Codec.decode_header frame with
      | Error msg -> Alcotest.failf "%s header: %s" e.Codec.name msg
      | Ok h -> (
          checki (e.Codec.name ^ " src") 1 h.Codec.h_src;
          checki (e.Codec.name ^ " dst") 2 h.Codec.h_dst;
          Alcotest.(check string) (e.Codec.name ^ " layer") "consensus" h.Codec.h_layer;
          checki (e.Codec.name ^ " body len") body_len h.Codec.h_body_len;
          match Codec.decode_body ~pos:Codec.header_bytes frame h with
          | Error msg -> Alcotest.failf "%s body: %s" e.Codec.name msg
          | Ok p' ->
              Alcotest.(check string)
                (e.Codec.name ^ " payload survives framing")
                (encode_bytes p) (encode_bytes p')))
    (Codec.entries ())

(* Every strict prefix of a valid frame must be rejected as a clean
   [Error] — a short read can never crash the node or yield a message. *)
let test_truncated_frames () =
  let frame, _ = frame_for Ics_net.Message.Ping in
  for len = 0 to String.length frame - 1 do
    let prefix = String.sub frame 0 len in
    let verdict =
      if len < Codec.header_bytes then
        match Codec.decode_header prefix with Error _ -> true | Ok _ -> false
      else
        match Codec.decode_header prefix with
        | Error _ -> true
        | Ok h -> (
            (* Header parses; the body must fail (it is too short, and the
               caller checks length first — but decode_body must also
               reject a short buffer on its own). *)
            match Codec.decode_body ~pos:Codec.header_bytes prefix h with
            | Error _ -> true
            | Ok _ -> false)
    in
    checkb (Printf.sprintf "prefix %d rejected" len) true verdict
  done

(* Single-byte corruption anywhere in the body is caught by the CRC; a
   corrupted magic or version byte is caught by the header parse. *)
let test_corrupt_frames () =
  let rng = Rng.create 0xBADL in
  List.iter
    (fun (e : Codec.entry) ->
      let p = e.Codec.gen rng in
      let frame, _ = frame_for p in
      (* magic and version bytes *)
      for pos = 0 to 1 do
        let b = Bytes.of_string frame in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
        checkb
          (Printf.sprintf "%s header byte %d" e.Codec.name pos)
          true
          (match Codec.decode_header (Bytes.to_string b) with
          | Error _ -> true
          | Ok _ -> false)
      done;
      (* every body byte *)
      for pos = Codec.header_bytes to String.length frame - 1 do
        let b = Bytes.of_string frame in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x55));
        let s = Bytes.to_string b in
        let verdict =
          match Codec.decode_header s with
          | Error _ -> true
          | Ok h -> (
              match Codec.decode_body ~pos:Codec.header_bytes s h with
              | Error _ -> true
              | Ok _ -> false)
        in
        checkb (Printf.sprintf "%s body byte %d" e.Codec.name pos) true verdict
      done)
    (Codec.entries ())

let test_unknown_tag_rejected () =
  Codecs.ensure ();
  let used =
    List.map (fun (e : Codec.entry) -> e.Codec.tag) (Codec.entries ())
  in
  let free = List.find (fun t -> not (List.mem t used)) [ 0xFE; 0xFD; 0xFC ] in
  (* Hand-build a body with an unregistered tag but a valid CRC by going
     through a registered frame and splicing the tag in is fragile;
     instead decode the bare payload, which shares the tag dispatch. *)
  let r = Prim.reader (String.make 1 (Char.chr free)) in
  checkb "unknown tag" true
    (match Codec.decode_payload r with
    | _ -> false
    | exception Codec.Error _ -> true)

let test_fuzz_decode_never_crashes () =
  Codecs.ensure ();
  let rng = Rng.create 0x5EEDL in
  for _ = 1 to 2_000 do
    let len = Rng.int rng 64 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (* Must return a clean result or raise the codec error — anything
       else (Invalid_argument, Out_of_bounds, ...) fails the test. *)
    (match Codec.decode_header s with
    | Ok _ | Error _ -> ());
    match Codec.decode_payload (Prim.reader s) with
    | _ -> ()
    | exception Codec.Error _ -> ()
  done

(* A reserved span's logical offset must survive storage growth and the
   head-compaction a growth triggers: reserve over a small buffer with a
   nonzero head, append enough to force both, then backpatch — the u32
   must land exactly where the reservation was taken. *)
let test_bq_reserve_across_growth () =
  let q = Bq.create 16 in
  Bq.add_string q "abcdefgh";
  Bq.consume q 5;
  (* head = 5, three live bytes "fgh" *)
  let at = Bq.reserve q 4 in
  checki "reservation offset is logical" 3 at;
  let filler = String.init 8192 (fun i -> Char.chr (i land 0xff)) in
  Bq.add_string q filler;
  checkb "growth actually happened" true (Bq.capacity q > 16);
  Bq.patch_u32 q ~at 0xDEADBEEF;
  let s = Bq.contents q in
  checki "length = live + span + filler" (3 + 4 + 8192) (String.length s);
  Alcotest.(check string) "live prefix intact" "fgh" (String.sub s 0 3);
  Alcotest.(check string) "backpatched u32 in place" "\xDE\xAD\xBE\xEF"
    (String.sub s 3 4);
  Alcotest.(check string) "filler intact after patch" filler (String.sub s 7 8192);
  checkb "patch beyond the queued region rejected" true
    (match Bq.patch_u32 q ~at:(Bq.length q - 3) 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* The ensure/write/advance triple — the read(2) half of the
   discipline: bytes blitted into the physical tail become queued only
   on [advance], and advancing past the ensured room is a bug. *)
let test_bq_ensure_advance () =
  let q = Bq.create 16 in
  Bq.add_string q "xy";
  Bq.ensure q 1000;
  checkb "ensure makes contiguous room" true (Bq.tail_room q >= 1000);
  let chunk = String.init 600 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Bytes.blit_string chunk 0 (Bq.unsafe_bytes q) (Bq.tail q) 600;
  checki "blit alone commits nothing" 2 (Bq.length q);
  Bq.advance q 600;
  Alcotest.(check string) "advance commits the blitted bytes" ("xy" ^ chunk)
    (Bq.contents q);
  checkb "advance beyond ensured room rejected" true
    (match Bq.advance q (Bq.tail_room q + 1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Draining a grown queue decays its storage back to the resting size. *)
  let big = Bq.create 16 in
  Bq.add_string big (String.make 200_000 'z');
  Bq.consume big 200_000;
  checki "drained queue is empty" 0 (Bq.length big);
  checki "storage decays to rest_cap" Bq.rest_cap (Bq.capacity big)

(* The frame encoder's error path: an exception mid-encode must leave
   the outbound queue exactly as it was, not with a partial frame that
   would desynchronize the TCP stream. *)
let test_encode_frame_error_truncates () =
  Codecs.ensure ();
  let module M = struct
    type Ics_net.Message.payload += Unframeable
  end in
  let q = Bq.create 64 in
  Bq.add_string q "queued";
  checkb "encode of unregistered payload raises" true
    (match Codec.encode_frame q ~src:0 ~dst:1 ~layer:"consensus" M.Unframeable with
    | _ -> false
    | exception Codec.Error _ -> true);
  Alcotest.(check string) "queue untouched after the failed encode" "queued"
    (Bq.contents q)

(* Byte-equality fuzz: the in-place backpatching encoder against the
   stage-then-copy legacy reference, per registered tag, with the queue's
   head pushed off physical zero so logical-offset arithmetic is
   actually exercised. *)
let test_encode_into_matches_legacy () =
  Codecs.ensure ();
  let rng = Rng.create 0xB0A7L in
  List.iter
    (fun (e : Codec.entry) ->
      for _ = 1 to 25 do
        let p = e.Codec.gen rng in
        let b = Buffer.create 256 in
        let len_legacy =
          Codec.encode_frame_legacy b ~src:3 ~dst:7 ~layer:"consensus" p
        in
        let q = Bq.create 16 in
        Bq.add_string q "padpad";
        Bq.consume q 4;
        let len = Codec.encode_frame q ~src:3 ~dst:7 ~layer:"consensus" p in
        checki (e.Codec.name ^ " body length agrees") len_legacy len;
        Alcotest.(check string)
          (e.Codec.name ^ " frame bytes identical")
          ("ad" ^ Buffer.contents b) (Bq.contents q)
      done)
    (Codec.entries ());
  (* Back-to-back frames share one queue: each backpatch must hit its
     own frame's reserved span, never a neighbour's. *)
  let rng = Rng.create 0xB0A7L in
  let q = Bq.create 32 and b = Buffer.create 1024 in
  List.iter
    (fun (e : Codec.entry) ->
      let p = e.Codec.gen rng in
      let lq = Codec.encode_frame q ~src:1 ~dst:2 ~layer:"consensus" p in
      let lb = Codec.encode_frame_legacy b ~src:1 ~dst:2 ~layer:"consensus" p in
      checki (e.Codec.name ^ " burst body length agrees") lb lq)
    (Codec.entries ());
  Alcotest.(check string) "burst of frames identical" (Buffer.contents b)
    (Bq.contents q)

(* Frames arriving split at arbitrary byte boundaries: feed a multi-frame
   stream into a queue through the transport's ensure/blit/advance read
   path, draining after every chunk exactly as the event loop does.  No
   chunk size may yield a decode error, a lost frame, or a leftover
   byte. *)
let test_partial_frame_chunked_decode () =
  Codecs.ensure ();
  let rng = Rng.create 0xC4A2L in
  let entries = Codec.entries () in
  let payloads = List.map (fun (e : Codec.entry) -> e.Codec.gen rng) entries in
  let stream_buf = Buffer.create 4096 in
  List.iter
    (fun p ->
      ignore
        (Codec.encode_frame_legacy stream_buf ~src:4 ~dst:5 ~layer:"consensus" p
          : int))
    payloads;
  let stream = Buffer.contents stream_buf in
  let expected = List.map encode_bytes payloads in
  let feed q pos len =
    Bq.ensure q len;
    Bytes.blit_string stream pos (Bq.unsafe_bytes q) (Bq.tail q) len;
    Bq.advance q len
  in
  (* The event loop's drain, minus the socket: parse complete frames in
     place, consume them, stop at the first partial one. *)
  let drain q acc =
    let continue = ref true in
    while !continue do
      let buf = Bytes.unsafe_to_string (Bq.unsafe_bytes q) in
      let pos = Bq.head q and limit = Bq.tail q in
      if limit - pos < Codec.header_bytes then continue := false
      else
        match Codec.decode_header ~pos buf with
        | Error e -> Alcotest.failf "mid-stream header error: %s" e
        | Ok h ->
            if limit - pos - Codec.header_bytes < h.Codec.h_body_len then
              continue := false
            else (
              (match Codec.decode_body ~pos:(pos + Codec.header_bytes) buf h with
              | Error e -> Alcotest.failf "mid-stream body error: %s" e
              | Ok p -> acc := encode_bytes p :: !acc);
              Bq.consume q (Codec.header_bytes + h.Codec.h_body_len))
    done
  in
  List.iter
    (fun chunk ->
      let q = Bq.create 16 in
      let got = ref [] in
      let pos = ref 0 in
      let n = String.length stream in
      while !pos < n do
        let len = min chunk (n - !pos) in
        feed q !pos len;
        drain q got;
        pos := !pos + len
      done;
      checki
        (Printf.sprintf "chunk %d: every frame decoded" chunk)
        (List.length expected) (List.length !got);
      checkb
        (Printf.sprintf "chunk %d: payloads identical in order" chunk)
        true
        (List.rev !got = expected);
      checki (Printf.sprintf "chunk %d: no leftover bytes" chunk) 0 (Bq.length q))
    [ 1; 2; 3; 5; 7; 13; Codec.header_bytes; Codec.header_bytes + 1; 64; 1021 ];
  (* A strict prefix of a frame must sit queued, undecoded, until the
     rest arrives. *)
  let q = Bq.create 16 in
  let got = ref [] in
  let first =
    match Codec.decode_header stream with
    | Error e -> Alcotest.failf "stream head header: %s" e
    | Ok h -> Codec.header_bytes + h.Codec.h_body_len - 1
  in
  feed q 0 first;
  drain q got;
  checki "partial frame yields nothing" 0 (List.length !got);
  checki "partial frame stays queued" first (Bq.length q);
  feed q first (String.length stream - first);
  drain q got;
  checki "completion decodes the whole stream" (List.length expected)
    (List.length !got)

(* The body_bytes recalibration anchor: these digests were captured
   before the codec existed (hand-estimated sizes) under Model.constant +
   Host.instant, where timing is size-independent — so they must survive
   the switch to real encoded sizes bit-for-bit.  If one of these moves,
   either the trace format changed (update EXPERIMENTS.md) or scheduling
   behaviour drifted (a real regression). *)
let test_sim_fingerprints_pinned () =
  let cases =
    [
      (Chaos.Ct_indirect, Chaos.Drop, 2L, "4bc2be962988606fdb1a205603e94b6f");
      (Chaos.Mr_indirect, Chaos.Mixed, 3L, "5bf49b603b81d4a736cde9f542e0cbf4");
      (Chaos.Ct_on_ids, Chaos.Blackout, 3L, "ba6b16163d0633fd02094d279e19b791");
      (* Storm drives the suspicion path hardest — these pin the
         Sorted_tbl rewrite of on_suspect/on_fd_change: digests captured
         under bucket-order Hashtbl.iter must hold under key-sorted
         iteration, proving insertion order coincided with key order. *)
      (Chaos.Ct_indirect, Chaos.Storm, 2L, "cd0bfcdb222f78733f3e27f88f42f901");
      (Chaos.Mr_indirect, Chaos.Storm, 3L, "b43209c3383be52b63b97e27f559bbfc");
      (Chaos.Ct_on_ids, Chaos.Storm, 2L, "3f4de219553dd1fe849368cfe728120f");
    ]
  in
  List.iter
    (fun (stack, plan, seed, expect) ->
      let r = Chaos.run_one stack plan ~seed in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s seed %Ld" (Chaos.stack_name stack)
           (Chaos.plan_name plan) seed)
        expect r.Chaos.fingerprint)
    cases

(* The fault-parity probe run is deterministic end to end: the interposer
   draws per-link streams, so this digest moving means the middleware's
   draw order (or the trace format) changed — which would also break the
   sim-vs-live counter parity the runtime tests assert. *)
let test_parity_fingerprint_pinned () =
  let o = Ics_workload.Fault_parity.sim () in
  Alcotest.(check string)
    "parity sim fingerprint" "f5b29822045c364f870b5660115db675"
    o.Ics_workload.Fault_parity.fingerprint

(* The gate behind every replay hint the sweep prints: rerunning a seed in
   the same process must reproduce the fingerprint exactly. *)
let test_replay_check_clean () =
  let mismatches =
    Chaos.replay_check ~seed_base:5L ~stacks:Chaos.all_stacks
      ~plans:[ Chaos.Storm; Chaos.Blackout ] ()
  in
  Alcotest.(check int) "no rerun divergence" 0 (List.length mismatches)

let suites =
  [
    ( "codec",
      [
        Alcotest.test_case "round-trip every constructor" `Quick test_roundtrip_all;
        Alcotest.test_case "tags and names unique" `Quick test_unique_tags_and_names;
        Alcotest.test_case "unregistered payload rejected" `Quick test_unregistered_payload;
        Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
        Alcotest.test_case "truncated frames rejected" `Quick test_truncated_frames;
        Alcotest.test_case "corrupt frames rejected" `Quick test_corrupt_frames;
        Alcotest.test_case "unknown tag rejected" `Quick test_unknown_tag_rejected;
        Alcotest.test_case "fuzzed decode never crashes" `Quick test_fuzz_decode_never_crashes;
        Alcotest.test_case "bq reservation survives growth" `Quick test_bq_reserve_across_growth;
        Alcotest.test_case "bq ensure/advance discipline" `Quick test_bq_ensure_advance;
        Alcotest.test_case "failed encode leaves no partial frame" `Quick test_encode_frame_error_truncates;
        Alcotest.test_case "in-place encoder matches legacy bytes" `Quick test_encode_into_matches_legacy;
        Alcotest.test_case "chunked partial-frame decode" `Quick test_partial_frame_chunked_decode;
        Alcotest.test_case "sim fingerprints pinned" `Quick test_sim_fingerprints_pinned;
        Alcotest.test_case "parity fingerprint pinned" `Quick test_parity_fingerprint_pinned;
        Alcotest.test_case "replay check finds no divergence" `Quick test_replay_check_clean;
      ] );
  ]
