(* Tests for the network substrate: wire sizes, identifiers, models and the
   transport. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Wire = Ics_net.Wire
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Message = Ics_net.Message
module Layer = Ics_net.Layer
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

type Message.payload += Test_payload of int

(* Wire / ids / app messages *)

let test_wire_sizes () =
  checki "id set grows linearly" (Wire.id_set_bytes 0 + (3 * Wire.id_bytes))
    (Wire.id_set_bytes 3);
  checkb "header positive" true (Wire.header_bytes > 0);
  checki "payload with id"
    (Wire.tag_bytes + Wire.id_bytes + Wire.app_msg_overhead + 100)
    (Wire.payload_with_id_bytes 100);
  checki "id only" (Wire.tag_bytes + Wire.id_bytes) Wire.id_only_bytes

let test_msg_id_order () =
  let a = Msg_id.make ~origin:0 ~seq:5 in
  let b = Msg_id.make ~origin:1 ~seq:0 in
  let c = Msg_id.make ~origin:0 ~seq:6 in
  checkb "origin dominates" true (Msg_id.compare a b < 0);
  checkb "seq breaks ties" true (Msg_id.compare a c < 0);
  checkb "equal" true (Msg_id.equal a (Msg_id.make ~origin:0 ~seq:5));
  Alcotest.(check string) "to_string" "p1#0" (Msg_id.to_string b)

let test_msg_id_set_table () =
  let ids = List.init 10 (fun i -> Msg_id.make ~origin:(i mod 3) ~seq:i) in
  let set = Msg_id.Set.of_list (ids @ ids) in
  checki "set dedups" 10 (Msg_id.Set.cardinal set);
  let tbl = Msg_id.Table.create 4 in
  List.iter (fun id -> Msg_id.Table.replace tbl id ()) ids;
  checki "table" 10 (Msg_id.Table.length tbl)

let test_app_msg () =
  let id = Msg_id.make ~origin:2 ~seq:7 in
  let m = App_msg.make ~id ~body_bytes:100 ~created_at:5.0 () in
  checki "origin" 2 (App_msg.origin m);
  checki "rb body" (Wire.payload_with_id_bytes 100) (App_msg.rb_body_bytes m)

(* Host *)

let test_host_costs () =
  let h = Host.pentium3 in
  checkb "send cost grows" true
    (Host.send_cost h ~wire_bytes:5000 > Host.send_cost h ~wire_bytes:50);
  checkb "rcv cost grows" true (Host.rcv_check_cost h ~ids:50 > Host.rcv_check_cost h ~ids:1);
  checkf "instant host" 0.0 (Host.send_cost Host.instant ~wire_bytes:1_000_000)

(* Models *)

let mk_msg ?(src = 0) ?(dst = 1) ?(bytes = 52) ?(sent_at = 0.0) () =
  { Message.src; dst; layer = Layer.unregistered "t"; payload = Test_payload 0; body_bytes = bytes; sent_at }

let test_constant_model_delay () =
  let e = Engine.create ~n:2 () in
  let m = Model.constant ~delay:3.0 ~n:2 ~seed:1L () in
  let arrived = ref None in
  Model.send m e (mk_msg ()) ~arrive:(fun () -> arrived := Some (Engine.now e));
  Engine.run e;
  Alcotest.(check (option (float 1e-9))) "exact delay" (Some 3.0) !arrived

let test_constant_model_fifo_with_jitter () =
  let e = Engine.create ~n:2 () in
  let m = Model.constant ~jitter:5.0 ~delay:1.0 ~n:2 ~seed:3L () in
  let arrivals = ref [] in
  for i = 1 to 50 do
    Engine.schedule e ~at:(float_of_int i) (fun () ->
        Model.send m e (mk_msg ()) ~arrive:(fun () -> arrivals := Engine.now e :: !arrivals);
        ignore i)
  done;
  Engine.run e;
  let l = List.rev !arrivals in
  let sorted = List.sort compare l in
  checkb "FIFO preserved despite jitter" true (l = sorted);
  checki "all arrived" 50 (List.length l)

let test_shared_bus_serializes () =
  let e = Engine.create ~n:3 () in
  let m = Model.shared_bus { Model.net_fixed = 1.0; net_per_byte = 0.0 } in
  let arrivals = ref [] in
  (* Two messages sent at the same instant share the bus: second arrives a
     full frame-time later. *)
  Model.send m e (mk_msg ()) ~arrive:(fun () -> arrivals := ("a", Engine.now e) :: !arrivals);
  Model.send m e (mk_msg ~dst:2 ()) ~arrive:(fun () ->
      arrivals := ("b", Engine.now e) :: !arrivals);
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "bus serialization" [ ("a", 1.0); ("b", 2.0) ] (List.rev !arrivals)

let test_switched_parallel_downlinks () =
  let e = Engine.create ~n:3 () in
  let m = Model.switched { Model.net_fixed = 1.0; net_per_byte = 0.0 } ~n:3 in
  let arrivals = ref [] in
  (* Same sender, two receivers: uplink is shared (serialized), downlinks
     are parallel, so arrivals are 2.0 and 3.0 (store-and-forward). *)
  Model.send m e (mk_msg ~dst:1 ()) ~arrive:(fun () ->
      arrivals := (1, Engine.now e) :: !arrivals);
  Model.send m e (mk_msg ~dst:2 ()) ~arrive:(fun () ->
      arrivals := (2, Engine.now e) :: !arrivals);
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-9))))
    "uplink shared, downlinks parallel" [ (1, 2.0); (2, 3.0) ] (List.rev !arrivals)

let test_switched_distinct_senders_parallel () =
  let e = Engine.create ~n:4 () in
  let m = Model.switched { Model.net_fixed = 1.0; net_per_byte = 0.0 } ~n:4 in
  let arrivals = ref [] in
  Model.send m e (mk_msg ~src:0 ~dst:2 ()) ~arrive:(fun () ->
      arrivals := (0, Engine.now e) :: !arrivals);
  Model.send m e (mk_msg ~src:1 ~dst:3 ()) ~arrive:(fun () ->
      arrivals := (1, Engine.now e) :: !arrivals);
  Engine.run e;
  List.iter (fun (_, t) -> checkf "full parallelism" 2.0 t) !arrivals

let test_scripted_model () =
  let e = Engine.create ~n:2 () in
  let base = Model.constant ~delay:1.0 ~n:2 ~seed:1L () in
  let rule (msg : Message.t) =
    if msg.body_bytes = 999 then Model.Drop
    else if msg.body_bytes = 500 then Model.Delay_by 10.0
    else Model.Pass
  in
  let m = Model.scripted ~base ~rule in
  let arrivals = ref [] in
  Model.send m e (mk_msg ~bytes:52 ()) ~arrive:(fun () ->
      arrivals := ("pass", Engine.now e) :: !arrivals);
  Model.send m e (mk_msg ~bytes:999 ()) ~arrive:(fun () ->
      arrivals := ("drop", Engine.now e) :: !arrivals);
  Model.send m e (mk_msg ~bytes:500 ()) ~arrive:(fun () ->
      arrivals := ("delay", Engine.now e) :: !arrivals);
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "scripted actions" [ ("pass", 1.0); ("delay", 11.0) ] (List.rev !arrivals)

(* Transport *)

let mk_transport ?(n = 3) ?host () =
  let e = Engine.create ~n () in
  let host = Option.value host ~default:Host.instant in
  let model = Model.constant ~delay:1.0 ~n ~seed:1L () in
  (e, Transport.create e ~model ~host)

let test_transport_dispatch () =
  let e, tr = mk_transport () in
  let got = ref [] in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun msg ->
      match msg.Message.payload with
      | Test_payload v -> got := v :: !got
      | _ -> ());
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:10 (Test_payload 42);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "other") ~body_bytes:10 (Test_payload 7);
  Engine.run e;
  Alcotest.(check (list int)) "dispatch by layer" [ 42 ] !got

let test_transport_duplicate_layer () =
  let _, tr = mk_transport () in
  Transport.register tr 0 ~layer:(Transport.intern tr "x") (fun _ -> ());
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Transport.register: duplicate layer x at p0") (fun () ->
      Transport.register tr 0 ~layer:(Transport.intern tr "x") (fun _ -> ()))

let test_transport_local_send () =
  let e, tr = mk_transport () in
  let got = ref 0 in
  Transport.register tr 0 ~layer:(Transport.intern tr "a") (fun _ -> incr got);
  Transport.send tr ~src:0 ~dst:0 ~layer:(Transport.intern tr "a") ~body_bytes:1 (Test_payload 0);
  Engine.run e;
  checki "local delivery" 1 !got;
  Alcotest.(check (float 1e-9)) "local is fast (no network delay)" 0.0 (Engine.now e)

let test_transport_fifo_per_channel () =
  let e, tr = mk_transport () in
  let got = ref [] in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun msg ->
      match msg.Message.payload with Test_payload v -> got := v :: !got | _ -> ());
  for i = 1 to 10 do
    Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:1 (Test_payload i)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" (List.init 10 (fun i -> i + 1)) (List.rev !got)

let test_transport_crash_drops () =
  let e, tr = mk_transport ~host:Host.pentium3 () in
  let got = ref 0 in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> incr got);
  (* Sender dead: send is a no-op. *)
  Engine.crash e 0;
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:1 (Test_payload 0);
  Engine.run e;
  checki "dead sender" 0 !got;
  (* Receiver dead at delivery: dropped. *)
  let e, tr = mk_transport () in
  let got = ref 0 in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> incr got);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:1 (Test_payload 0);
  Engine.crash_at e 1 ~at:0.5;
  Engine.run e;
  checki "dead receiver" 0 !got

let test_transport_crash_mid_serialization () =
  (* With a real host profile, a message sent just before the crash is
     still on the sender's CPU when the crash hits: it must die. *)
  let e, tr = mk_transport ~host:Host.pentium3 () in
  let got = ref 0 in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> incr got);
  Engine.schedule e ~at:1.0 (fun () ->
      Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:1_000_000 (Test_payload 0);
      (* Serializing ~1MB takes ~20ms on the P-III profile. *)
      Engine.crash_at e 0 ~at:1.001);
  Engine.run e;
  checki "killed on the CPU" 0 !got

let test_transport_multicast_and_counters () =
  let e, tr = mk_transport () in
  let got = Array.make 3 0 in
  List.iter
    (fun p -> Transport.register tr p ~layer:(Transport.intern tr "a") (fun _ -> got.(p) <- got.(p) + 1))
    [ 0; 1; 2 ];
  Transport.send_to_others tr ~src:0 ~layer:(Transport.intern tr "a") ~body_bytes:2 (Test_payload 0);
  Engine.run e;
  Alcotest.(check (array int)) "others only" [| 0; 1; 1 |] got;
  Transport.send_to_all tr ~src:0 ~layer:(Transport.intern tr "a") ~body_bytes:2 (Test_payload 0);
  Engine.run e;
  Alcotest.(check (array int)) "all" [| 1; 2; 2 |] got;
  checki "message counter" 5 (Transport.sent_messages tr);
  checki "byte counter" (5 * (2 + Wire.header_bytes)) (Transport.sent_bytes tr)

let test_per_layer_stats () =
  let e, tr = mk_transport () in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> ());
  Transport.register tr 1 ~layer:(Transport.intern tr "b") (fun _ -> ());
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:10 (Test_payload 0);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:10 (Test_payload 0);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "b") ~body_bytes:20 (Test_payload 0);
  Engine.run e;
  Alcotest.(check (list (triple string int int)))
    "per-layer decomposition"
    [ ("a", 2, 2 * (10 + Wire.header_bytes)); ("b", 1, 20 + Wire.header_bytes) ]
    (Transport.per_layer_stats tr)

let test_layer_interning () =
  let _, tr = mk_transport () in
  let a1 = Transport.intern tr "a" in
  let a2 = Transport.intern tr "a" in
  let b = Transport.intern tr "b" in
  checkb "idempotent: same token" true (a1 == a2);
  checkb "layer equal" true (Layer.equal a1 a2);
  checki "dense ids from zero" 0 (Layer.id a1);
  checki "next layer next id" 1 (Layer.id b);
  Alcotest.(check string) "name kept" "a" (Layer.name a1)

let test_foreign_token_resolves_by_name () =
  (* A token minted elsewhere (or the unregistered sentinel) must still
     dispatch correctly: the transport falls back to interning its name. *)
  let e, tr = mk_transport () in
  let got = ref 0 in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> incr got);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Layer.unregistered "a") ~body_bytes:1
    (Test_payload 0);
  Engine.run e;
  checki "delivered via name fallback" 1 !got;
  (* And the traffic lands in the right per-layer bucket. *)
  Alcotest.(check (list (triple string int int)))
    "accounting merged" [ ("a", 1, 1 + Wire.header_bytes) ]
    (Transport.per_layer_stats tr)

let test_transport_charge_cpu_delays () =
  let e = Engine.create ~n:2 () in
  let host = { Host.instant with Host.cpu_recv_fixed = 1.0 } in
  let model = Model.constant ~delay:1.0 ~n:2 ~seed:1L () in
  let tr = Transport.create e ~model ~host in
  let at = ref [] in
  Transport.register tr 1 ~layer:(Transport.intern tr "a") (fun _ -> at := Engine.now e :: !at);
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "a") ~body_bytes:1 (Test_payload 0);
  (* A protocol-level CPU charge at t=0 pushes the message's receive
     processing back. *)
  Transport.charge_cpu tr 1 5.0;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "recv queued behind charge" [ 6.0 ] !at

let suites =
  [
    ( "wire-ids",
      [
        Alcotest.test_case "wire sizes" `Quick test_wire_sizes;
        Alcotest.test_case "msg id order" `Quick test_msg_id_order;
        Alcotest.test_case "set and table" `Quick test_msg_id_set_table;
        Alcotest.test_case "app msg" `Quick test_app_msg;
        Alcotest.test_case "host costs" `Quick test_host_costs;
      ] );
    ( "model",
      [
        Alcotest.test_case "constant delay" `Quick test_constant_model_delay;
        Alcotest.test_case "constant fifo with jitter" `Quick test_constant_model_fifo_with_jitter;
        Alcotest.test_case "shared bus serializes" `Quick test_shared_bus_serializes;
        Alcotest.test_case "switched store-and-forward" `Quick test_switched_parallel_downlinks;
        Alcotest.test_case "switched parallel senders" `Quick test_switched_distinct_senders_parallel;
        Alcotest.test_case "scripted drop/delay" `Quick test_scripted_model;
      ] );
    ( "transport",
      [
        Alcotest.test_case "dispatch" `Quick test_transport_dispatch;
        Alcotest.test_case "duplicate layer" `Quick test_transport_duplicate_layer;
        Alcotest.test_case "local send" `Quick test_transport_local_send;
        Alcotest.test_case "fifo per channel" `Quick test_transport_fifo_per_channel;
        Alcotest.test_case "crash drops" `Quick test_transport_crash_drops;
        Alcotest.test_case "crash mid serialization" `Quick test_transport_crash_mid_serialization;
        Alcotest.test_case "multicast and counters" `Quick test_transport_multicast_and_counters;
        Alcotest.test_case "per-layer stats" `Quick test_per_layer_stats;
        Alcotest.test_case "layer interning" `Quick test_layer_interning;
        Alcotest.test_case "foreign token fallback" `Quick test_foreign_token_resolves_by_name;
        Alcotest.test_case "charge cpu delays dispatch" `Quick test_transport_charge_cpu_delays;
      ] );
  ]
