(* Fixture: ambient nondeterminism inside the simulator scope. *)

let jitter () = Random.float 1.0
let stamp () = Unix.gettimeofday ()
let cpu () = Sys.time ()
