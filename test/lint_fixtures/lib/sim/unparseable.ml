(* Fixture: not OCaml — the linter must report an internal error (exit
   2), never silently skip a file it cannot parse. *)

let let let (
