(* Fixture: the same constructs the deterministic layers ban are legal
   in lib/runtime — the wall-clock boundary — and Hashtbl traversal is
   only banned inside the deterministic scopes. *)

let epoch () = Unix.gettimeofday ()
let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
