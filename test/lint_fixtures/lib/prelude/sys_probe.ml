(* Fixture: a backend touch in a layer the B1 scope does not cover —
   fuel for the transitive B2 rule, invisible to B1 from any caller's
   file. *)

let pid () = Unix.getpid ()
