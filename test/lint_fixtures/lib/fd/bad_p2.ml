(* Fixture: a timer loop that rearms itself forever — nothing in this
   file ever consults the engine's quiescence signals. *)

let start engine =
  let rec tick () =
    do_work ();
    Engine.after engine ~delay:1.0 tick
  in
  tick ()
