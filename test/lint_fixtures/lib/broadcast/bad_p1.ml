(* Fixture: a payload constructor with no codec registration. *)

type payload = ..
type payload += Data of int | Probe

let register_codec () =
  Codec.register ~tag:0x7F ~name:"fixture.data"
    ~fits:(function Data _ -> true | _ -> false)
    ~size:(fun _ -> 5)
    ~encode_into:(fun _ _ -> ())
    ~dec:(fun _ -> Data 0)
    ~gen:(fun _ -> Data 0)
