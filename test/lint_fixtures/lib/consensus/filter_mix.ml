(* Fixture: one open violation plus one audited one — the --rule filter
   must keep the suppression accounting consistent with the active rule
   set (an allow for an unselected rule neither suppresses nor rots). *)

let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0

(* lint: allow D2 — fixture: audited jitter *)
let jitter () = Random.float 1.0
