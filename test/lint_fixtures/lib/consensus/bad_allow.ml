(* Fixture: an allow comment without a reason must not suppress, and is
   itself reported — suppressions need an audit trail. *)

(* lint: allow D1 *)
let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
