(* Fixture: a justified allow comment silences the rule. *)

(* lint: allow D1 — fixture: iteration order provably cannot reach the trace here *)
let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
