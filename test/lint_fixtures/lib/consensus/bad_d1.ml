(* Fixture: unordered hashtable traversal in a deterministic layer. *)

let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
let visit tbl f = Hashtbl.iter f tbl
