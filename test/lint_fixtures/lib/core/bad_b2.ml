(* Fixture: no line here names a backend — the Unix reach is one module
   away, in a layer outside the B1 scope.  B2 must carry the chain. *)

let tick () = Ics_prelude.Sys_probe.pid ()
