(* Fixture: the sanctioned version of everything the bad fixtures do —
   must produce zero findings. *)

type payload = ..
type payload += Beacon of int

let register_codec () =
  Codec.register ~tag:0x7E ~name:"fixture.beacon"
    ~fits:(function Beacon _ -> true | _ -> false)
    ~size:(fun _ -> 5)
    ~encode_into:(fun _ _ -> ())
    ~dec:(fun _ -> Beacon 0)
    ~gen:(fun _ -> Beacon 0)

let visit tbl f = Ics_prelude.Sorted_tbl.iter ~cmp:Int.compare f tbl
let sort_ids l = List.sort Int.compare l

let start engine =
  let rec tick () =
    match Engine.horizon engine with
    | Some _ -> ()
    | None -> Engine.after engine ~delay:1.0 tick
  in
  tick ()
