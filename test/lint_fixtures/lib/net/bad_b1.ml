(* B1 fixture: a protocol layer reaching around the Env seam — a module
   alias onto the runtime, a raw Unix call, and a dotted runtime access.
   None of these touch the D2 wall-clock list, so every finding below is
   B1's alone. *)

module C = Ics_runtime.Clock

let pid () = Unix.getpid ()
let now clock = Ics_runtime.Clock.now clock
