(* Fixture: no line in this file trips D2 — the nondeterminism sits two
   hops away, behind the runtime boundary where D2 is out of scope.
   Only the interprocedural pass can see the chain. *)

let snapshot () = Ics_runtime.Offscope.epoch ()
