(* Fixture: a mutually recursive pair that both reach the runtime clock
   — the SCC condensation must converge and report each boundary call
   site exactly once, not loop or double-count through the cycle. *)

let rec flip n = if n = 0 then Ics_runtime.Offscope.epoch () else flop (n - 1)
and flop n = if n = 0 then Ics_runtime.Offscope.epoch () else flip (n - 1)
