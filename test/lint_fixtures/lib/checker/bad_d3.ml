(* Fixture: polymorphic comparison on protocol state. *)

type id = { origin : int; seq : int }

let sort_ids l = List.sort compare l
let sort_poly l = List.sort Stdlib.compare l
let same_id a origin seq = a = { origin; seq }
let structural_eq : id -> id -> bool = ( = )
