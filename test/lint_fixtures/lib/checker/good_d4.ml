(* Fixture: the severed twin of bad_d4 — same two-hop shape into the
   runtime layer, but the helper is schedule-deterministic, so no
   transitive taint reaches this file. *)

let snapshot tbl = Ics_runtime.Offscope.count tbl
