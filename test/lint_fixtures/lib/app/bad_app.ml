(* Fixture: the app layer joined the deterministic scope in PR 8 — the
   same violations the other det layers ban must fire here too. *)

let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
let jitter () = Random.float 1.0
let ordered l = List.sort compare l
