(* Fixture: stands in for the repo's sweep driver — its toplevel
   functions are the DS1/DS2 reachability roots, exactly as the real
   lib/workload/chaos.ml's cells are. *)

let run_cell () =
  Registry.bump ();
  Registry.current ()

let run_audited () =
  Registry_allowed.bump ();
  Registry_allowed.current ()
