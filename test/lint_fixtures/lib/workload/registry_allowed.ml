(* Fixture: the audited twin of registry.ml — one reasoned DS1 allow on
   the declaration must silence both DS1 and the derived DS2, and the
   allow must count as used, not stale. *)

(* lint: allow DS1 — fixture: cells treat this as a write-once scratch counter *)
let hits = ref 0
let bump () = incr hits
let current () = !hits
