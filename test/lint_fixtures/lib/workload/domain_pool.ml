(* Fixture: stands in for the repo's domain-spawning pool driver — a
   DS root in its own right, because the closures handed to [map] run
   on spawned domains.  The cell closure below captures a non-Atomic
   module-toplevel ref: that must fail DS1 (and derive a DS2 from the
   write/read pair), even with no chaos.ml in the scanned set.  The
   Atomic counter is the sanctioned form and must stay silent. *)

let tally = ref 0
let claimed = Atomic.make 0

let map f tasks = Array.map f tasks

let run_cells () =
  Atomic.incr claimed;
  map
    (fun t ->
      tally := !tally + t;
      !tally)
    [| 1; 2; 3 |]
