(* Fixture: module-toplevel mutable state shared by every sweep cell —
   the ref must trip DS1 and its reachable read/write pair DS2; the
   Atomic.t is the sanctioned form and must stay silent. *)

let hits = ref 0
let live = Atomic.make 0
let bump () = incr hits
let current () = !hits
let bump_live () = Atomic.incr live
let read_live () = Atomic.get live
