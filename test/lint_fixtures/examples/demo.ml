(* Fixture: examples get the relaxed scope — runtime aliases, unordered
   iteration and polymorphic compare are all legal here; ambient
   nondeterminism is not. *)

module Clock = Ics_runtime.Clock

let count tbl = Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
let ordered l = List.sort compare l
let jitter () = Random.float 1.0
