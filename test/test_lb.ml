(* Tests specific to the leader-based (Paxos-style) consensus extension. *)

module Engine = Ics_sim.Engine
module Msg_id = Ics_net.Msg_id
module Fd = Ics_fd.Failure_detector
module Proposal = Ics_consensus.Proposal
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_leader_estimate () =
  let e = Engine.create ~n:4 () in
  let ctl = Fd.manual e in
  let fd = Fd.Control.fd ctl in
  checki "initially p0" 0 (Fd.leader fd ~observer:2);
  Fd.Control.suspect ctl ~observer:2 0;
  checki "skips suspected" 1 (Fd.leader fd ~observer:2);
  Fd.Control.suspect ctl ~observer:2 1;
  checki "skips two" 2 (Fd.leader fd ~observer:2);
  Fd.Control.trust ctl ~observer:2 0;
  checki "trust restores" 0 (Fd.leader fd ~observer:2);
  (* Another observer's view is independent. *)
  checki "independent views" 0 (Fd.leader fd ~observer:3)

let lb_config =
  {
    Stack.abcast_indirect with
    Stack.algo = Stack.Lb;
    setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
    fd_kind = Stack.Oracle 10.0;
  }

let test_lb_stack_good_run () =
  let stack =
    Test_util.run_stack lb_config (Test_util.burst ~n:3 ~count:8 ~body_bytes:100 ~spacing:3.0)
  in
  checki "all delivered" 24 (List.length (Abcast.delivered_sequence stack.Stack.abcast 0));
  Test_util.assert_clean_verdict "lb good run"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_lb_leader_crash_failover () =
  (* p0 leads ballot 0 of every instance; killing it forces p1 to take
     over via prepare ballots > 0. *)
  let stack =
    Test_util.run_stack lb_config
      ~crashes:[ (0, 15.0) ]
      [ (1.0, 0, 50); (30.0, 1, 50); (40.0, 2, 50) ]
  in
  let s1 = Abcast.delivered_sequence stack.Stack.abcast 1 in
  checkb "post-crash messages delivered" true (List.length s1 >= 2);
  Test_util.assert_clean_verdict "lb failover"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_lb_non_leader_proposer_kicks () =
  (* Only p2 broadcasts: its proposal must still get ordered even though
     p2 never leads (p0 is alive and lowest-numbered). *)
  let stack = Test_util.run_stack lb_config [ (1.0, 2, 50) ] in
  List.iter
    (fun p ->
      checki "delivered everywhere" 1
        (List.length (Abcast.delivered_sequence stack.Stack.abcast p)))
    [ 0; 1; 2 ]

let test_lb_double_crash_n5 () =
  let config = { lb_config with Stack.n = 5; fd_kind = Stack.Oracle 5.0 } in
  let stack =
    Test_util.run_stack config
      ~crashes:[ (0, 10.0); (1, 20.0) ]
      (Test_util.burst ~n:5 ~count:8 ~body_bytes:30 ~spacing:6.0)
  in
  let s2 = Abcast.delivered_sequence stack.Stack.abcast 2 in
  let s3 = Abcast.delivered_sequence stack.Stack.abcast 3 in
  checkb "survivors live (f=2 < n/2)" true (List.length s2 >= 24);
  checkb "agreement" true (List.for_all2 Msg_id.equal s2 s3);
  Test_util.assert_clean_verdict "lb double crash"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_lb_blocks_without_majority () =
  let stack =
    Test_util.run_stack lb_config
      ~crashes:[ (1, 0.5); (2, 0.5) ]
      [ (10.0, 0, 50) ]
  in
  checki "no delivery without majority" 0
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 0))

let test_lb_indirect_wedge_immunity () =
  (* The §2.2 schedule against the LB stack: the accept-guard nacks the
     orphan id and the system reroutes, exactly like CT-indirect. *)
  let rule (m : Ics_net.Message.t) =
    if Ics_net.Message.layer_name m = "rb" && m.src = 0 then Ics_net.Model.Drop
    else Ics_net.Model.Pass
  in
  let stack =
    Test_util.run_stack ~rule lb_config
      ~crashes:[ (0, 10.0) ]
      [ (1.0, 0, 64); (50.0, 1, 64) ]
  in
  checkb "no wedge" true (Abcast.blocked_head stack.Stack.abcast 1 = None);
  checki "p1's message delivered" 1
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 1));
  Test_util.assert_clean_verdict "lb indirect wedge immunity"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_lb_faulty_variant_wedges () =
  (* And the plain variant on ids reproduces the wedge, showing the guard
     is what saves it — the CT story generalizes to ballots. *)
  let rule (m : Ics_net.Message.t) =
    if Ics_net.Message.layer_name m = "rb" && m.src = 0 then Ics_net.Model.Drop
    else Ics_net.Model.Pass
  in
  let config = { lb_config with Stack.ordering = Abcast.Consensus_on_ids } in
  let stack =
    Test_util.run_stack ~rule config
      ~crashes:[ (0, 10.0) ]
      [ (1.0, 0, 64); (50.0, 1, 64) ]
  in
  checkb "wedged" true (Abcast.blocked_head stack.Stack.abcast 1 <> None);
  checkb "no-loss violated" true
    (Test_util.has_violation
       (Checker.check_all_abcast (Test_util.checker_run stack))
       "indirect-consensus.no-loss")

let qcheck_lb_safety_under_loss =
  QCheck.Test.make ~name:"lb-indirect safety under lossy network" ~count:30
    QCheck.(triple (int_range 3 5) (int_bound 50_000) (int_range 1 30))
    (fun (n, seed, drop) ->
      (* Reuse the adversarial driver with the Lb engine. *)
      let config =
        {
          Stack.n;
          seed = Int64.of_int (seed + 2);
          algo = Stack.Lb;
          ordering = Abcast.Indirect_consensus;
          broadcast = Stack.Flood;
          setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.3 };
          batching = Abcast.no_batching;
          fd_kind = Stack.Oracle 15.0;
          trace = `On;
        }
      in
      let rng = Ics_prelude.Rng.create (Int64.of_int (seed + 41)) in
      let rule (_ : Ics_net.Message.t) =
        let roll = Ics_prelude.Rng.int rng 100 in
        if roll < drop then Ics_net.Model.Drop
        else if roll < drop + 15 then Ics_net.Model.Delay_by (Ics_prelude.Rng.float rng 15.0)
        else Ics_net.Model.Pass
      in
      let broadcasts =
        List.init (1 + Ics_prelude.Rng.int rng 8) (fun _ ->
            (Ics_prelude.Rng.float rng 40.0, Ics_prelude.Rng.int rng n, Ics_prelude.Rng.int rng 100))
      in
      let stack = Test_util.run_stack ~rule ~horizon:30_000.0 config broadcasts in
      let verdict = Checker.check_all_abcast (Test_util.checker_run stack) in
      let safety =
        List.filter
          (fun v ->
            match v.Checker.property with
            | "abcast.uniform-integrity" | "abcast.uniform-total-order"
            | "consensus.uniform-integrity" | "consensus.uniform-agreement" ->
                true
            | _ -> false)
          verdict.Checker.violations
      in
      if safety <> [] then
        QCheck.Test.fail_reportf "%a" Checker.pp_verdict
          { Checker.violations = safety; checked = [] }
      else true)

let suites =
  [
    ( "lb",
      [
        Alcotest.test_case "leader estimate" `Quick test_leader_estimate;
        Alcotest.test_case "stack good run" `Quick test_lb_stack_good_run;
        Alcotest.test_case "leader crash failover" `Quick test_lb_leader_crash_failover;
        Alcotest.test_case "non-leader proposer kicks" `Quick test_lb_non_leader_proposer_kicks;
        Alcotest.test_case "double crash n=5" `Quick test_lb_double_crash_n5;
        Alcotest.test_case "blocks without majority" `Quick test_lb_blocks_without_majority;
        Alcotest.test_case "indirect wedge immunity" `Quick test_lb_indirect_wedge_immunity;
        Alcotest.test_case "faulty variant wedges" `Quick test_lb_faulty_variant_wedges;
        QCheck_alcotest.to_alcotest qcheck_lb_safety_under_loss;
      ] );
  ]
