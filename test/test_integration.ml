(* Whole-stack integration tests: realistic network models, heartbeat
   failure detection, cross-product stack configurations, and longer
   stress runs. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module Model = Ics_net.Model
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker
module Experiment = Ics_workload.Experiment
module Stats = Ics_prelude.Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let burst = Test_util.burst ~n:3 ~count:8 ~body_bytes:200 ~spacing:4.0

let check_converged ?(n = 3) stack expected =
  let seqs = List.init n (fun p -> Abcast.delivered_sequence stack.Stack.abcast p) in
  List.iteri
    (fun i seq -> checki (Printf.sprintf "p%d count" i) expected (List.length seq))
    seqs;
  match seqs with
  | ref :: rest ->
      List.iter
        (fun seq -> checkb "same order" true (List.for_all2 Msg_id.equal ref seq))
        rest
  | [] -> ()

(* Every (algo x ordering x broadcast x setup) combination that is supposed
   to be correct delivers everything in a good run, on realistic models. *)
let test_configuration_matrix () =
  let algos = [ Stack.Ct; Stack.Mr; Stack.Lb ] in
  let setups = [ Stack.Setup1; Stack.Setup1_shared_bus; Stack.Setup2 ] in
  let stacks =
    [
      (Abcast.Indirect_consensus, Stack.Flood);
      (Abcast.Indirect_consensus, Stack.Fd_relay);
      (Abcast.Consensus_on_messages, Stack.Flood);
      (Abcast.Consensus_on_ids, Stack.Uniform);
    ]
  in
  List.iter
    (fun algo ->
      List.iter
        (fun setup ->
          List.iter
            (fun (ordering, broadcast) ->
              let config =
                { Stack.default_config with algo; setup; ordering; broadcast }
              in
              let stack = Test_util.run_stack config burst in
              check_converged stack 24;
              Test_util.assert_clean_verdict (Stack.describe stack)
                (Checker.check_all_abcast (Test_util.checker_run stack)))
            stacks)
        setups)
    algos

(* Heartbeat failure detection end to end: good run (no false suspicions
   disturb delivery) and a crash run (suspicion unblocks consensus). *)
let test_heartbeat_stack_good_run () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.fd_kind = Stack.Heartbeat { period = 10.0; timeout = 80.0 };
    }
  in
  let stack = Test_util.run_stack ~horizon:2_000.0 config burst in
  check_converged stack 24

let test_heartbeat_stack_crash_run () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.fd_kind = Stack.Heartbeat { period = 5.0; timeout = 40.0 };
    }
  in
  (* p0 is round-1 coordinator for every instance; killing it forces every
     later instance through the heartbeat-suspicion path. *)
  let stack =
    Test_util.run_stack ~horizon:5_000.0 config
      ~crashes:[ (0, 10.0) ]
      [ (1.0, 0, 50); (50.0, 1, 50); (60.0, 2, 50); (70.0, 1, 50) ]
  in
  let s1 = Abcast.delivered_sequence stack.Stack.abcast 1 in
  let s2 = Abcast.delivered_sequence stack.Stack.abcast 2 in
  checkb "survivors delivered the post-crash traffic" true (List.length s1 >= 3);
  checkb "agreement" true (List.for_all2 Msg_id.equal s1 s2);
  Test_util.assert_clean_verdict "heartbeat crash run"
    (Checker.check_atomic_broadcast (Test_util.checker_run stack))

(* The faulty stack is indistinguishable from the indirect one in crash-free
   runs — the paper's performance comparison is meaningful precisely
   because the difference only shows up under failures. *)
let test_faulty_equals_indirect_without_crashes () =
  let run ordering =
    let config = { Stack.default_config with Stack.ordering } in
    let stack = Test_util.run_stack config burst in
    List.map Msg_id.to_string (Abcast.delivered_sequence stack.Stack.abcast 0)
  in
  Alcotest.(check (list string))
    "same delivery sequence" (run Abcast.Consensus_on_ids)
    (run Abcast.Indirect_consensus)

(* Larger stress run: hundreds of messages, a mid-run crash, full property
   check.  Exercises instance pipelining, join, and decision buffering. *)
let test_stress_run_with_crash () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.n = 5;
      setup = Stack.Ideal_lan { delay = 0.5; jitter = 0.3 };
      fd_kind = Stack.Oracle 5.0;
    }
  in
  let broadcasts = Test_util.burst ~n:5 ~count:60 ~body_bytes:32 ~spacing:1.0 in
  let stack =
    Test_util.run_stack ~horizon:60_000.0 config ~crashes:[ (4, 30.0) ] broadcasts
  in
  let s0 = Abcast.delivered_sequence stack.Stack.abcast 0 in
  checkb "most messages delivered" true (List.length s0 > 200);
  Test_util.assert_clean_verdict "stress"
    (Checker.check_all_abcast (Test_util.checker_run stack))

(* Two crashes at n=5 (f = 2 = max for CT): still live. *)
let test_two_crashes_n5 () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.n = 5;
      setup = Stack.Ideal_lan { delay = 0.5; jitter = 0.1 };
      fd_kind = Stack.Oracle 5.0;
    }
  in
  let stack =
    Test_util.run_stack ~horizon:30_000.0 config
      ~crashes:[ (3, 20.0); (4, 35.0) ]
      (Test_util.burst ~n:5 ~count:15 ~body_bytes:16 ~spacing:4.0)
  in
  let s0 = Abcast.delivered_sequence stack.Stack.abcast 0 in
  checkb "survivors deliver" true (List.length s0 >= 30);
  Test_util.assert_clean_verdict "two crashes"
    (Checker.check_all_abcast (Test_util.checker_run stack))

(* Latency sanity: an isolated message's delivery latency is bounded below
   by the network (can't be faster than physics) and above by a few round
   trips (no spurious waiting in the good path). *)
let test_latency_sanity () =
  let delay = 2.0 in
  let config =
    { Stack.abcast_indirect with Stack.setup = Stack.Ideal_lan { delay; jitter = 0.0 } }
  in
  let latencies = ref [] in
  let stack_ref = ref None in
  let on_deliver _ (m : Ics_net.App_msg.t) =
    match !stack_ref with
    | Some stack ->
        latencies :=
          (Engine.now stack.Stack.engine -. m.Ics_net.App_msg.created_at) :: !latencies
    | None -> ()
  in
  let stack = Stack.create ~on_deliver config in
  stack_ref := Some stack;
  Engine.schedule stack.Stack.engine ~at:1.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:1 ~body_bytes:10));
  Stack.run stack;
  checki "three deliveries" 3 (List.length !latencies);
  List.iter
    (fun l ->
      checkb "at least one network step" true (l >= delay);
      (* rb step + 3 consensus steps + slack *)
      checkb "at most a few round trips" true (l <= 8.0 *. delay))
    !latencies

(* The §2.2 wedge, built directly against the Stack API (the Scenarios
   module has its own copy; this one guards the raw plumbing). *)
let test_faulty_stack_wedges_on_crash () =
  let config =
    {
      Stack.abcast_ids_faulty with
      Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let rule (m : Ics_net.Message.t) =
    if Ics_net.Message.layer_name m = "rb" && Pid.equal m.src 0 then Model.Drop else Model.Pass
  in
  let stack =
    Test_util.run_stack ~rule config
      ~crashes:[ (0, 10.0) ]
      [ (1.0, 0, 64); (50.0, 1, 64) ]
  in
  checkb "p1 wedged" true (Abcast.blocked_head stack.Stack.abcast 1 <> None);
  checkb "p2 wedged" true (Abcast.blocked_head stack.Stack.abcast 2 <> None);
  checki "p1 delivered nothing" 0
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 1))

(* Same wedge schedule against the indirect stack: no wedge. *)
let test_indirect_stack_survives_same_schedule () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let rule (m : Ics_net.Message.t) =
    if Ics_net.Message.layer_name m = "rb" && Pid.equal m.src 0 then Model.Drop else Model.Pass
  in
  let stack =
    Test_util.run_stack ~rule config
      ~crashes:[ (0, 10.0) ]
      [ (1.0, 0, 64); (50.0, 1, 64) ]
  in
  checkb "no wedge" true (Abcast.blocked_head stack.Stack.abcast 1 = None);
  checki "p1's own message delivered" 1
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 1))

(* Saturation honesty: driving a stack well past capacity must be reported
   (either a non-quiescent run or queue-buildup latencies), never silently
   averaged away. *)
let test_saturation_is_visible () =
  let config = { Stack.abcast_msgs with Stack.n = 5 } in
  let load =
    { Experiment.throughput = 900.0; body_bytes = 4000; duration = 2_000.0; warmup = 300.0 }
  in
  let r = Experiment.run config load in
  checkb "saturation visible" true
    ((not r.Experiment.quiescent) || r.Experiment.latency.Stats.mean > 100.0)

(* Determinism at the whole-stack level: bitwise identical traces. *)
(* A larger kernel than the paper ever ran: n=15 with a crash still
   converges — guards the engine and protocol data structures against
   accidental O(n!) or quadratic-per-event behaviour. *)
let test_large_kernel () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.n = 15;
      setup = Stack.Ideal_lan { delay = 0.5; jitter = 0.2 };
      fd_kind = Stack.Oracle 5.0;
    }
  in
  let stack =
    Test_util.run_stack ~horizon:60_000.0 config
      ~crashes:[ (14, 20.0) ]
      (Test_util.burst ~n:15 ~count:4 ~body_bytes:16 ~spacing:5.0)
  in
  let s0 = Abcast.delivered_sequence stack.Stack.abcast 0 in
  checkb "most delivered" true (List.length s0 >= 56);
  Test_util.assert_clean_verdict "n=15"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_whole_stack_determinism () =
  let trace_of seed =
    let config =
      {
        Stack.abcast_indirect with
        Stack.seed;
        (* Jitter is the only randomness with a fixed broadcast schedule;
           without it the trace is rightly seed-independent. *)
        setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.5 };
      }
    in
    let stack = Test_util.run_stack config burst in
    Format.asprintf "%a" Ics_sim.Trace.pp (Engine.trace stack.Stack.engine)
  in
  Alcotest.(check string) "identical traces" (trace_of 11L) (trace_of 11L);
  checkb "seed changes the trace" true (trace_of 11L <> trace_of 12L)

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "configuration matrix" `Quick test_configuration_matrix;
        Alcotest.test_case "heartbeat good run" `Quick test_heartbeat_stack_good_run;
        Alcotest.test_case "heartbeat crash run" `Quick test_heartbeat_stack_crash_run;
        Alcotest.test_case "faulty = indirect without crashes" `Quick
          test_faulty_equals_indirect_without_crashes;
        Alcotest.test_case "stress run with crash" `Slow test_stress_run_with_crash;
        Alcotest.test_case "two crashes at n=5" `Quick test_two_crashes_n5;
        Alcotest.test_case "latency sanity" `Quick test_latency_sanity;
        Alcotest.test_case "faulty stack wedges" `Quick test_faulty_stack_wedges_on_crash;
        Alcotest.test_case "indirect survives wedge schedule" `Quick
          test_indirect_stack_survives_same_schedule;
        Alcotest.test_case "saturation visible" `Quick test_saturation_is_visible;
        Alcotest.test_case "large kernel n=15" `Slow test_large_kernel;
        Alcotest.test_case "whole-stack determinism" `Quick test_whole_stack_determinism;
      ] );
  ]
