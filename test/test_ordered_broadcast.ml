(* Tests for the FIFO and causal broadcast layers and their checkers. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Rb_flood = Ics_broadcast.Rb_flood
module Fifo = Ics_broadcast.Fifo
module Causal = Ics_broadcast.Causal
module Checker = Ics_checker.Checker
module Trace = Ics_sim.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let msg ~origin ~seq = App_msg.make ~id:(Msg_id.make ~origin ~seq) ~body_bytes:10 ~created_at:0.0 ()

type h = {
  engine : Engine.t;
  handle : Ics_broadcast.Broadcast_intf.handle;
  delivered : (Pid.t * Msg_id.t) list ref;
}

let mk ?(n = 3) ?(jitter = 0.0) which =
  let engine = Engine.create ~n () in
  let model = Model.constant ~jitter ~delay:1.0 ~n ~seed:5L () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let delivered = ref [] in
  let deliver p (m : App_msg.t) = delivered := (p, m.id) :: !delivered in
  let handle =
    match which with
    | `Fifo -> Fifo.create ~inner:(fun ~deliver -> Rb_flood.create transport ~deliver) ~deliver
    | `Causal -> Causal.create transport ~deliver
  in
  { engine; handle; delivered }

let deliveries_of h p =
  List.filter_map (fun (q, id) -> if q = p then Some id else None) (List.rev !(h.delivered))

let bcast h ~at ~src m =
  Engine.schedule h.engine ~at (fun () -> h.handle.Ics_broadcast.Broadcast_intf.broadcast ~src m)

(* FIFO layer *)

let test_fifo_reorders () =
  (* Deliver seq 1 before seq 0 at the layer below (by broadcasting 1
     first — the ids carry the FIFO index, not the send time). *)
  let h = mk `Fifo in
  bcast h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:1);
  bcast h ~at:5.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.run h.engine;
  List.iter
    (fun p ->
      Alcotest.(check (list string)) "FIFO order restored" [ "p0#0"; "p0#1" ]
        (List.map Msg_id.to_string (deliveries_of h p)))
    [ 0; 1; 2 ]

let test_fifo_holds_back_gap () =
  let h = mk `Fifo in
  bcast h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:1);
  (* seq 0 never sent: nothing may be delivered. *)
  Engine.run h.engine;
  checki "held back" 0 (List.length !(h.delivered))

let test_fifo_independent_origins () =
  let h = mk `Fifo in
  bcast h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  bcast h ~at:1.0 ~src:1 (msg ~origin:1 ~seq:0);
  bcast h ~at:2.0 ~src:1 (msg ~origin:1 ~seq:1);
  Engine.run h.engine;
  List.iter (fun p -> checki "all three" 3 (List.length (deliveries_of h p))) [ 0; 1; 2 ];
  let run = Checker.Run.of_trace (Engine.trace h.engine) ~n:3 in
  Test_util.assert_clean_verdict "fifo order" (Checker.check_fifo_order run)

let test_fifo_name () =
  let h = mk `Fifo in
  checkb "wrapped name" true
    (Test_util.contains h.handle.Ics_broadcast.Broadcast_intf.name "fifo(")

(* Causal layer *)

let test_causal_chain_across_origins () =
  (* p0 broadcasts a; p1 delivers a then broadcasts b (a -> b); p2's
     delivery of b must come after a even if b's copy arrives first. *)
  let n = 3 in
  let engine = Engine.create ~n () in
  (* Delay p0's message to p2 so b overtakes a on the wire. *)
  let rule (m : Ics_net.Message.t) =
    if Pid.equal m.src 0 && Pid.equal m.dst 2 then Model.Delay_by 20.0 else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:7L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let delivered = ref [] in
  let handle =
    Causal.create transport ~deliver:(fun p m -> delivered := (p, m.App_msg.id) :: !delivered)
  in
  Engine.schedule engine ~at:1.0 (fun () -> handle.broadcast ~src:0 (msg ~origin:0 ~seq:0));
  (* b is broadcast by p1 only after it delivered a. *)
  Engine.schedule engine ~at:5.0 (fun () -> handle.broadcast ~src:1 (msg ~origin:1 ~seq:0));
  Engine.run engine;
  let p2_seq =
    List.filter_map (fun (q, id) -> if q = 2 then Some (Msg_id.to_string id) else None)
      (List.rev !delivered)
  in
  Alcotest.(check (list string)) "causal order at p2" [ "p0#0"; "p1#0" ] p2_seq;
  let run = Checker.Run.of_trace (Engine.trace engine) ~n in
  Test_util.assert_clean_verdict "causal order" (Checker.check_causal_order run);
  Test_util.assert_clean_verdict "rb spec still holds" (Checker.check_reliable_broadcast run)

let test_causal_concurrent_messages_flow () =
  let h = mk `Causal in
  (* Concurrent broadcasts from all three processes, several rounds. *)
  for round = 0 to 4 do
    for p = 0 to 2 do
      bcast h ~at:(1.0 +. (3.0 *. float_of_int round)) ~src:p (msg ~origin:p ~seq:round)
    done
  done;
  Engine.run h.engine;
  List.iter (fun p -> checki "all delivered" 15 (List.length (deliveries_of h p))) [ 0; 1; 2 ];
  let run = Checker.Run.of_trace (Engine.trace h.engine) ~n:3 in
  Test_util.assert_clean_verdict "causal" (Checker.check_causal_order run);
  Test_util.assert_clean_verdict "fifo implied" (Checker.check_fifo_order run)

let test_causal_implies_fifo () =
  let h = mk `Causal in
  bcast h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  bcast h ~at:1.1 ~src:0 (msg ~origin:0 ~seq:1);
  bcast h ~at:1.2 ~src:0 (msg ~origin:0 ~seq:2);
  Engine.run h.engine;
  List.iter
    (fun p ->
      Alcotest.(check (list string)) "per-origin order" [ "p0#0"; "p0#1"; "p0#2" ]
        (List.map Msg_id.to_string (deliveries_of h p)))
    [ 0; 1; 2 ]

(* Checker self-tests for the order properties. *)

let test_fifo_checker_catches_violation () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~pid:0 (Trace.Rbroadcast (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr ~time:1.1 ~pid:0 (Trace.Rbroadcast (Msg_id.make ~origin:0 ~seq:1));
  Trace.record tr ~time:2.0 ~pid:1 (Trace.Rdeliver (Msg_id.make ~origin:0 ~seq:1));
  Trace.record tr ~time:2.1 ~pid:1 (Trace.Rdeliver (Msg_id.make ~origin:0 ~seq:0));
  let run = Checker.Run.of_trace tr ~n:2 in
  checkb "fifo violation flagged" true
    (Test_util.has_violation (Checker.check_fifo_order run) "broadcast.fifo-order")

let test_causal_checker_catches_violation () =
  let tr = Trace.create () in
  (* p0 sends a; p1 delivers a then sends b; p2 delivers b before a. *)
  Trace.record tr ~time:1.0 ~pid:0 (Trace.Rbroadcast (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr ~time:2.0 ~pid:1 (Trace.Rdeliver (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr ~time:3.0 ~pid:1 (Trace.Rbroadcast (Msg_id.make ~origin:1 ~seq:0));
  Trace.record tr ~time:4.0 ~pid:2 (Trace.Rdeliver (Msg_id.make ~origin:1 ~seq:0));
  Trace.record tr ~time:5.0 ~pid:2 (Trace.Rdeliver (Msg_id.make ~origin:0 ~seq:0));
  let run = Checker.Run.of_trace tr ~n:3 in
  checkb "causal violation flagged" true
    (Test_util.has_violation (Checker.check_causal_order run) "broadcast.causal-order");
  (* The missing-predecessor form too. *)
  let tr2 = Trace.create () in
  Trace.record tr2 ~time:1.0 ~pid:0 (Trace.Rbroadcast (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr2 ~time:2.0 ~pid:1 (Trace.Rdeliver (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr2 ~time:3.0 ~pid:1 (Trace.Rbroadcast (Msg_id.make ~origin:1 ~seq:0));
  Trace.record tr2 ~time:4.0 ~pid:2 (Trace.Rdeliver (Msg_id.make ~origin:1 ~seq:0));
  let run2 = Checker.Run.of_trace tr2 ~n:3 in
  checkb "missing predecessor flagged" true
    (Test_util.has_violation (Checker.check_causal_order run2) "broadcast.causal-order")

let test_plain_flood_is_not_causal () =
  (* Demonstrate the gap: the same cross-origin chain over plain rb-flood
     violates causal order (that is why these are distinct layers).  Every
     copy of the first message (recognizable by its payload size) is
     delayed towards p2 — direct send and relays alike. *)
  let n = 3 in
  let engine = Engine.create ~n () in
  let big = 999 in
  let rule (m : Ics_net.Message.t) =
    if Pid.equal m.dst 2 && m.body_bytes > big then Model.Delay_by 20.0 else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:7L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let handle = Rb_flood.create transport ~deliver:(fun _ _ -> ()) in
  Engine.schedule engine ~at:1.0 (fun () ->
      handle.broadcast ~src:0
        (App_msg.make ~id:(Msg_id.make ~origin:0 ~seq:0) ~body_bytes:(big + 100)
           ~created_at:0.0 ()));
  Engine.schedule engine ~at:5.0 (fun () -> handle.broadcast ~src:1 (msg ~origin:1 ~seq:0));
  Engine.run engine;
  let run = Checker.Run.of_trace (Engine.trace engine) ~n in
  checkb "flood violates causal order under reordering" true
    (Test_util.has_violation (Checker.check_causal_order run) "broadcast.causal-order")

let qcheck_causal_random =
  QCheck.Test.make ~name:"causal broadcast keeps causal order under jitter" ~count:40
    QCheck.(pair (int_range 2 5) (int_bound 10_000))
    (fun (n, seed) ->
      let engine = Engine.create ~seed:(Int64.of_int (seed + 11)) ~n () in
      let model = Model.constant ~jitter:4.0 ~delay:1.0 ~n ~seed:(Int64.of_int (seed + 3)) () in
      let transport = Transport.create engine ~model ~host:Host.instant in
      let handle = Causal.create transport ~deliver:(fun _ _ -> ()) in
      let rng = Ics_prelude.Rng.create (Int64.of_int (seed + 7)) in
      let seqs = Array.make n 0 in
      for _ = 1 to 12 do
        let src = Ics_prelude.Rng.int rng n in
        let s = seqs.(src) in
        seqs.(src) <- s + 1;
        Engine.schedule engine
          ~at:(Ics_prelude.Rng.float rng 30.0)
          (fun () -> handle.broadcast ~src (msg ~origin:src ~seq:s))
      done;
      Engine.run engine;
      let run = Checker.Run.of_trace (Engine.trace engine) ~n in
      Checker.ok (Checker.check_causal_order run)
      && Checker.ok (Checker.check_fifo_order run))

let suites =
  [
    ( "fifo-broadcast",
      [
        Alcotest.test_case "reorders" `Quick test_fifo_reorders;
        Alcotest.test_case "holds back gaps" `Quick test_fifo_holds_back_gap;
        Alcotest.test_case "independent origins" `Quick test_fifo_independent_origins;
        Alcotest.test_case "wrapped name" `Quick test_fifo_name;
      ] );
    ( "causal-broadcast",
      [
        Alcotest.test_case "cross-origin chain" `Quick test_causal_chain_across_origins;
        Alcotest.test_case "concurrent flow" `Quick test_causal_concurrent_messages_flow;
        Alcotest.test_case "implies fifo" `Quick test_causal_implies_fifo;
        Alcotest.test_case "fifo checker catches" `Quick test_fifo_checker_catches_violation;
        Alcotest.test_case "causal checker catches" `Quick test_causal_checker_catches_violation;
        Alcotest.test_case "plain flood is not causal" `Quick test_plain_flood_is_not_causal;
        QCheck_alcotest.to_alcotest qcheck_causal_random;
      ] );
  ]
