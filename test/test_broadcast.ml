(* Tests for the three broadcast primitives. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Fd = Ics_fd.Failure_detector
module Rb_flood = Ics_broadcast.Rb_flood
module Rb_fd = Ics_broadcast.Rb_fd
module Urb = Ics_broadcast.Urb
module Checker = Ics_checker.Checker

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type harness = {
  engine : Engine.t;
  transport : Transport.t;
  handle : Ics_broadcast.Broadcast_intf.handle;
  delivered : (Pid.t * Msg_id.t) list ref;  (* in delivery order *)
}

let mk_harness ?(n = 4) ?(delay = 1.0) which =
  let engine = Engine.create ~n () in
  let model = Model.constant ~delay ~n ~seed:1L () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let delivered = ref [] in
  let deliver p (m : App_msg.t) = delivered := (p, m.id) :: !delivered in
  let handle =
    match which with
    | `Flood -> Rb_flood.create transport ~deliver
    | `Fd_relay delay -> Rb_fd.create transport ~fd:(Fd.oracle engine ~detection_delay:delay) ~deliver
    | `Urb -> Urb.create transport ~deliver
  in
  { engine; transport; handle; delivered }

let msg ~origin ~seq = App_msg.make ~id:(Msg_id.make ~origin ~seq) ~body_bytes:10 ~created_at:0.0 ()

let deliveries_of h p = List.filter_map (fun (q, id) -> if q = p then Some id else None) (List.rev !(h.delivered))

let broadcast_at h ~at ~src m =
  Engine.schedule h.engine ~at (fun () ->
      h.handle.Ics_broadcast.Broadcast_intf.broadcast ~src m)

(* Generic properties, run for each implementation. *)

let test_all_deliver which () =
  let h = mk_harness which in
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  broadcast_at h ~at:2.0 ~src:3 (msg ~origin:3 ~seq:0);
  Engine.run h.engine;
  List.iter
    (fun p -> checki (Printf.sprintf "p%d delivered both" p) 2 (List.length (deliveries_of h p)))
    (Pid.all ~n:4)

let test_no_duplicates which () =
  let h = mk_harness which in
  for s = 0 to 9 do
    broadcast_at h ~at:(1.0 +. float_of_int s) ~src:(s mod 4) (msg ~origin:(s mod 4) ~seq:s)
  done;
  Engine.run h.engine;
  List.iter
    (fun p ->
      let ids = deliveries_of h p in
      checki "no duplicates" (List.length ids)
        (List.length (List.sort_uniq Msg_id.compare ids)))
    (Pid.all ~n:4)

let test_holds which () =
  let h = mk_harness which in
  let m = msg ~origin:1 ~seq:0 in
  checkb "not held before" false (h.handle.holds 2 m.App_msg.id);
  broadcast_at h ~at:1.0 ~src:1 m;
  Engine.run h.engine;
  checkb "held after" true (h.handle.holds 2 m.App_msg.id)

let test_dead_broadcaster_noop which () =
  let h = mk_harness which in
  Engine.crash h.engine 0;
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.run h.engine;
  checki "nothing delivered" 0 (List.length !(h.delivered))

(* Flood specifics *)

let test_flood_message_count () =
  let h = mk_harness `Flood in
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.run h.engine;
  (* n=4: origin sends 3, each receiver relays to the 2 others (minus the
     origin): 3 + 3*2 = 9 = O(n^2). *)
  checki "O(n^2) messages" 9 (Transport.sent_messages h.transport)

let test_flood_delivery_latency () =
  (* Delivery takes a single communication step despite relays. *)
  let h = mk_harness `Flood ~delay:5.0 in
  broadcast_at h ~at:0.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.schedule h.engine ~at:5.1 (fun () ->
      List.iter
        (fun p -> checki "delivered after one step" 1 (List.length (deliveries_of h p)))
        (Pid.all ~n:4));
  Engine.run h.engine

let test_flood_agreement_under_crash () =
  (* Origin crashes right after its multicast reaches the wire: everyone
     else still delivers thanks to the relays. *)
  let h = mk_harness `Flood in
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.crash_at h.engine 0 ~at:1.5;
  Engine.run h.engine;
  List.iter
    (fun p -> checki "correct deliver" 1 (List.length (deliveries_of h p)))
    [ 1; 2; 3 ]

(* FD-relay specifics *)

let test_fd_relay_good_run_message_count () =
  let h = mk_harness (`Fd_relay 50.0) in
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.run h.engine;
  (* Good run: exactly n-1 messages. *)
  checki "O(n) messages" 3 (Transport.sent_messages h.transport)

let test_fd_relay_agreement_after_partial_crash () =
  (* The origin reaches only p1 (messages to p2/p3 die with the crash);
     after the detector suspects p0, p1 relays and the rest deliver. *)
  let n = 4 in
  let engine = Engine.create ~n () in
  let rule (m : Ics_net.Message.t) =
    if m.Ics_net.Message.src = 0 && m.dst <> 1 && Ics_net.Message.layer_name m = "rb" then Model.Drop
    else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:1L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let fd = Fd.oracle engine ~detection_delay:10.0 in
  let delivered = ref [] in
  let handle =
    Rb_fd.create transport ~fd ~deliver:(fun p m -> delivered := (p, m.App_msg.id) :: !delivered)
  in
  Engine.schedule engine ~at:1.0 (fun () ->
      handle.broadcast ~src:0 (msg ~origin:0 ~seq:0));
  Engine.crash_at engine 0 ~at:2.5;
  Engine.run engine;
  let got p = List.exists (fun (q, _) -> q = p) !delivered in
  checkb "p1 got it directly" true (got 1);
  checkb "p2 via relay" true (got 2);
  checkb "p3 via relay" true (got 3)

let test_fd_relay_relays_once () =
  (* Two suspicions of the same origin must not double-deliver or
     re-relay. *)
  let n = 3 in
  let engine = Engine.create ~n () in
  let model = Model.constant ~delay:1.0 ~n ~seed:1L () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let ctl = Fd.manual engine in
  let fd = Fd.Control.fd ctl in
  let delivered = ref [] in
  let handle =
    Rb_fd.create transport ~fd ~deliver:(fun p m -> delivered := (p, m.App_msg.id) :: !delivered)
  in
  Engine.schedule engine ~at:1.0 (fun () -> handle.broadcast ~src:0 (msg ~origin:0 ~seq:0));
  Engine.schedule engine ~at:5.0 (fun () -> Fd.Control.suspect ctl ~observer:1 0);
  Engine.schedule engine ~at:6.0 (fun () -> Fd.Control.trust ctl ~observer:1 0);
  Engine.schedule engine ~at:7.0 (fun () -> Fd.Control.suspect ctl ~observer:1 0);
  Engine.run engine;
  let msgs = Transport.sent_messages transport in
  (* origin: 2 sends; p1 relays once to p2 (not back to p0's... relay goes
     to both others): 2 + 2 = 4; the second suspicion adds nothing. *)
  checki "single relay" 4 msgs;
  checki "three deliveries" 3 (List.length !delivered)

(* URB specifics *)

let test_urb_two_steps () =
  let h = mk_harness `Urb ~delay:5.0 in
  broadcast_at h ~at:0.0 ~src:0 (msg ~origin:0 ~seq:0);
  (* After one step (t=5) nobody delivered yet (acks still in flight);
     after two steps everyone has a majority of acks. *)
  Engine.schedule h.engine ~at:6.0 (fun () ->
      checki "not before ack round" 0 (List.length !(h.delivered)));
  Engine.schedule h.engine ~at:11.0 (fun () ->
      checki "all after two steps" 4 (List.length !(h.delivered)));
  Engine.run h.engine

let test_urb_uniform_agreement_under_crash () =
  (* The origin delivers first (it counts its own ack plus the earliest
     echoes) and crashes; uniformity demands all correct processes deliver
     too. *)
  let h = mk_harness `Urb in
  broadcast_at h ~at:1.0 ~src:0 (msg ~origin:0 ~seq:0);
  Engine.crash_at h.engine 0 ~at:4.5;
  Engine.run h.engine;
  List.iter
    (fun p -> checki "correct delivered" 1 (List.length (deliveries_of h p)))
    [ 1; 2; 3 ]

let test_urb_pull_recovers_payload () =
  (* p3 never receives the payload directly (origin's DATA to it is
     dropped) but sees acks and pulls the payload from an acker. *)
  let n = 4 in
  let engine = Engine.create ~n () in
  let rule (m : Ics_net.Message.t) =
    if m.Ics_net.Message.src = 0 && m.dst = 3 && Ics_net.Message.layer_name m = "urb" && m.body_bytes > 20 then
      Model.Drop
    else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:1L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let delivered = ref [] in
  let handle =
    Urb.create transport ~deliver:(fun p m -> delivered := (p, m.App_msg.id) :: !delivered)
  in
  Engine.schedule engine ~at:1.0 (fun () -> handle.broadcast ~src:0 (msg ~origin:0 ~seq:0));
  Engine.run engine;
  checkb "p3 delivered via pull" true (List.exists (fun (q, _) -> q = 3) !delivered);
  checki "everyone delivered" 4 (List.length !delivered)

let test_urb_no_delivery_without_majority () =
  (* n=4 needs ⌈5/2⌉=3 ackers.  If only the origin ever holds the message
     (all outgoing payloads and acks dropped), nobody delivers. *)
  let n = 4 in
  let engine = Engine.create ~n () in
  let rule (m : Ics_net.Message.t) =
    if m.Ics_net.Message.src = 0 && Ics_net.Message.layer_name m = "urb" then Model.Drop else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:1L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let delivered = ref [] in
  let handle = Urb.create transport ~deliver:(fun p m -> delivered := (p, m.App_msg.id) :: !delivered) in
  Engine.schedule engine ~at:1.0 (fun () -> handle.broadcast ~src:0 (msg ~origin:0 ~seq:0));
  Engine.run engine;
  checki "no uniform delivery" 0 (List.length !delivered)

(* Property-based: random broadcast schedules with random crashes keep the
   checker-verified broadcast properties. *)

let qcheck_flood_properties =
  QCheck.Test.make ~name:"rb-flood satisfies RB spec under random crashes" ~count:40
    QCheck.(triple (int_range 2 6) (int_range 1 15) (int_bound 10_000))
    (fun (n, msgs, seed) ->
      let engine = Engine.create ~seed:(Int64.of_int (seed + 1)) ~n () in
      let model =
        Model.constant ~jitter:2.0 ~delay:1.0 ~n ~seed:(Int64.of_int (seed + 77)) ()
      in
      let transport = Transport.create engine ~model ~host:Host.instant in
      let handle = Rb_flood.create transport ~deliver:(fun _ _ -> ()) in
      let rng = Ics_prelude.Rng.create (Int64.of_int (seed + 3)) in
      for s = 0 to msgs - 1 do
        let src = Ics_prelude.Rng.int rng n in
        Engine.schedule engine ~at:(Ics_prelude.Rng.float rng 50.0) (fun () ->
            Engine.record engine src
              (Ics_sim.Trace.Abroadcast (Msg_id.make ~origin:src ~seq:s));
            handle.broadcast ~src (msg ~origin:src ~seq:s))
      done;
      (* Crash at most one process (flood tolerates any f < n, but one keeps
         the schedule interesting without killing all copies). *)
      if Ics_prelude.Rng.bool rng then
        Engine.crash_at engine (Ics_prelude.Rng.int rng n)
          ~at:(Ics_prelude.Rng.float rng 60.0);
      Engine.run engine;
      let run = Checker.Run.of_trace (Engine.trace engine) ~n in
      Checker.ok (Checker.check_reliable_broadcast run))

let qcheck_urb_uniform =
  QCheck.Test.make ~name:"urb satisfies uniform RB spec under random crashes" ~count:40
    QCheck.(triple (int_range 3 6) (int_range 1 12) (int_bound 10_000))
    (fun (n, msgs, seed) ->
      let engine = Engine.create ~seed:(Int64.of_int (seed + 5)) ~n () in
      let model =
        Model.constant ~jitter:1.0 ~delay:1.0 ~n ~seed:(Int64.of_int (seed + 13)) ()
      in
      let transport = Transport.create engine ~model ~host:Host.instant in
      let handle = Urb.create transport ~deliver:(fun _ _ -> ()) in
      let rng = Ics_prelude.Rng.create (Int64.of_int (seed + 9)) in
      for s = 0 to msgs - 1 do
        let src = Ics_prelude.Rng.int rng n in
        Engine.schedule engine ~at:(Ics_prelude.Rng.float rng 50.0) (fun () ->
            Engine.record engine src
              (Ics_sim.Trace.Abroadcast (Msg_id.make ~origin:src ~seq:s));
            handle.broadcast ~src (msg ~origin:src ~seq:s))
      done;
      (* Fewer than half may crash. *)
      let crashes = (n - 1) / 2 in
      for c = 0 to crashes - 1 do
        Engine.crash_at engine c ~at:(20.0 +. Ics_prelude.Rng.float rng 40.0)
      done;
      Engine.run engine;
      let run = Checker.Run.of_trace (Engine.trace engine) ~n in
      (* Note: URB liveness needs outstanding pulls to settle; the run is
         quiescent here, so the check is exact. *)
      Checker.ok (Checker.check_uniform_broadcast run))

let generic name which =
  [
    Alcotest.test_case (name ^ ": all deliver") `Quick (test_all_deliver which);
    Alcotest.test_case (name ^ ": no duplicates") `Quick (test_no_duplicates which);
    Alcotest.test_case (name ^ ": holds") `Quick (test_holds which);
    Alcotest.test_case (name ^ ": dead broadcaster") `Quick (test_dead_broadcaster_noop which);
  ]

let suites =
  [
    ( "broadcast-generic",
      generic "flood" `Flood @ generic "fd-relay" (`Fd_relay 50.0) @ generic "urb" `Urb );
    ( "rb-flood",
      [
        Alcotest.test_case "message count O(n^2)" `Quick test_flood_message_count;
        Alcotest.test_case "one-step delivery" `Quick test_flood_delivery_latency;
        Alcotest.test_case "agreement under crash" `Quick test_flood_agreement_under_crash;
        QCheck_alcotest.to_alcotest qcheck_flood_properties;
      ] );
    ( "rb-fd",
      [
        Alcotest.test_case "message count O(n)" `Quick test_fd_relay_good_run_message_count;
        Alcotest.test_case "agreement after partial crash" `Quick
          test_fd_relay_agreement_after_partial_crash;
        Alcotest.test_case "relays once" `Quick test_fd_relay_relays_once;
      ] );
    ( "urb",
      [
        Alcotest.test_case "two steps" `Quick test_urb_two_steps;
        Alcotest.test_case "uniform agreement under crash" `Quick
          test_urb_uniform_agreement_under_crash;
        Alcotest.test_case "pull recovers payload" `Quick test_urb_pull_recovers_payload;
        Alcotest.test_case "no delivery without majority" `Quick
          test_urb_no_delivery_without_majority;
        QCheck_alcotest.to_alcotest qcheck_urb_uniform;
      ] );
  ]
