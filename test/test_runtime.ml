(* Live runtime: clock clamping, trace serialization, and — where the
   sandbox allows sockets — a real forked loopback cluster verified by
   the checker. *)

module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id
module Clock = Ics_runtime.Clock
module Trace_io = Ics_runtime.Trace_io
module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster
module Checker = Ics_checker.Checker
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_clock_monotone () =
  (* An epoch in the future makes raw readings negative: the clamp must
     hold the clock at its high-water mark instead of going backwards. *)
  let c = Clock.create ~epoch:(Unix.gettimeofday ()) in
  let a = Clock.now c in
  let b = Clock.now c in
  checkb "forward" true (b >= a);
  let future = Clock.create ~epoch:(Unix.gettimeofday () +. 3600.0) in
  let x = Clock.now future in
  let y = Clock.now future in
  checkb "clamped, not decreasing" true (y >= x)

let sample_events =
  let id o s = Msg_id.make ~origin:o ~seq:s in
  [
    { Trace.time = 0.25; pid = 0; kind = Trace.Abroadcast (id 0 0) };
    { Trace.time = 1.0; pid = 1; kind = Trace.Rbroadcast (id 0 0) };
    { Trace.time = 1.5; pid = 1; kind = Trace.Rdeliver (id 0 0) };
    { Trace.time = 2.0; pid = 2; kind = Trace.Urb_broadcast (id 2 7) };
    { Trace.time = 2.25; pid = 2; kind = Trace.Urb_deliver (id 2 7) };
    { Trace.time = 3.0; pid = 0; kind = Trace.Propose (4, [ id 0 0; id 2 7 ]) };
    { Trace.time = 3.5; pid = 0; kind = Trace.Decide (4, []) };
    { Trace.time = 4.0; pid = 1; kind = Trace.Adeliver (id 0 0) };
    { Trace.time = 4.5; pid = 2; kind = Trace.Suspect 1 };
    { Trace.time = 5.0; pid = 2; kind = Trace.Trust 1 };
    { Trace.time = 5.5; pid = 1; kind = Trace.Crash };
    { Trace.time = 6.0; pid = 0; kind = Trace.Net_drop 2 };
    { Trace.time = 6.1; pid = 0; kind = Trace.Net_dup 1 };
    { Trace.time = 6.2; pid = 0; kind = Trace.Net_delay 0 };
    { Trace.time = 7.0; pid = 0; kind = Trace.Partition_start "split {0}|{1,2}" };
    { Trace.time = 8.0; pid = 0; kind = Trace.Partition_heal "split {0}|{1,2}" };
    { Trace.time = 9.0; pid = 2; kind = Trace.Note "free form\twith tab" };
  ]

let test_trace_io_roundtrip () =
  let path = Filename.temp_file "ics-trace" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Trace.create () in
      List.iter
        (fun (e : Trace.event) ->
          Trace.record t ~time:e.Trace.time ~pid:e.Trace.pid e.Trace.kind)
        sample_events;
      Trace_io.save path t ~keep:(fun _ -> true);
      let back = Trace_io.load path in
      checki "event count" (List.length sample_events) (List.length back);
      List.iter2
        (fun (a : Trace.event) (b : Trace.event) ->
          checkb "time" true (Float.abs (a.Trace.time -. b.Trace.time) < 1e-6);
          checki "pid" a.Trace.pid b.Trace.pid;
          Alcotest.(check string)
            "kind"
            (Format.asprintf "%a" Trace.pp_kind a.Trace.kind)
            (Format.asprintf "%a" Trace.pp_kind b.Trace.kind))
        sample_events back)

let test_trace_io_keep_filter () =
  let path = Filename.temp_file "ics-trace" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Trace.create () in
      List.iter
        (fun (e : Trace.event) ->
          Trace.record t ~time:e.Trace.time ~pid:e.Trace.pid e.Trace.kind)
        sample_events;
      Trace_io.save path t ~keep:(fun e -> e.Trace.pid = 0);
      let back = Trace_io.load path in
      checki "only pid 0"
        (List.length (List.filter (fun (e : Trace.event) -> e.Trace.pid = 0) sample_events))
        (List.length back))

let test_trace_io_rejects_garbage () =
  List.iter
    (fun line ->
      checkb (Printf.sprintf "reject %S" line) true
        (match Trace_io.parse_line line with
        | _ -> false
        | exception Trace_io.Error _ -> true))
    [ ""; "nonsense"; "1.0"; "1.0 x AB"; "1.0 2"; "1.0 2 ZZ extra"; "1.0 2 AB not-an-id" ]

let test_merge_sorts_stably () =
  let a =
    [
      { Trace.time = 1.0; pid = 0; kind = Trace.Note "a1" };
      { Trace.time = 3.0; pid = 0; kind = Trace.Note "a3" };
    ]
  in
  let b =
    [
      { Trace.time = 1.0; pid = 1; kind = Trace.Note "b1" };
      { Trace.time = 2.0; pid = 1; kind = Trace.Note "b2" };
    ]
  in
  let merged = Trace.events (Trace_io.merge [ a; b ]) in
  let notes =
    List.map
      (fun (e : Trace.event) ->
        match e.Trace.kind with Trace.Note s -> s | _ -> assert false)
      merged
  in
  Alcotest.(check (list string)) "stable by time" [ "a1"; "b1"; "b2"; "a3" ] notes

(* Fork a real 3-node loopback cluster and let the checker judge the
   merged logs.  Skipped (cleanly) where the sandbox forbids sockets. *)
let cluster_case name config =
  Alcotest.test_case name `Slow (fun () ->
      if not (Cluster.supported ()) then ()
      else
        match Cluster.run { Cluster.default with Cluster.node = config } with
        | Error _ -> ()
        | Ok o ->
            checkb (name ^ " checker verdict") true (Checker.ok o.Cluster.verdict);
            Array.iteri
              (fun i c -> checki (Printf.sprintf "%s node %d exit" name i) 0 c)
              o.Cluster.exits;
            Array.iteri
              (fun i d ->
                checki (Printf.sprintf "%s node %d deliveries" name i)
                  o.Cluster.expected_per_node d)
              o.Cluster.delivered_per_node)

let small count =
  {
    Node.default_workload with
    Node.profile = { Profile.default with Profile.count };
  }

let with_profile config f =
  { config with Node.profile = f config.Node.profile }

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
        Alcotest.test_case "trace io round-trip" `Quick test_trace_io_roundtrip;
        Alcotest.test_case "trace io keep filter" `Quick test_trace_io_keep_filter;
        Alcotest.test_case "trace io rejects garbage" `Quick test_trace_io_rejects_garbage;
        Alcotest.test_case "merge stable by time" `Quick test_merge_sorts_stably;
      ] );
    ( "live-cluster",
      [
        cluster_case "ct flood" (small 8);
        cluster_case "mr flood"
          (with_profile (small 8) (fun p -> { p with Profile.algo = Stack.Mr }));
        cluster_case "ct fd-relay"
          (with_profile (small 8) (fun p ->
               { p with Profile.broadcast = Stack.Fd_relay }));
        cluster_case "ct uniform on-ids"
          (with_profile (small 8) (fun p ->
               {
                 p with
                 Profile.broadcast = Stack.Uniform;
                 ordering = Abcast.Consensus_on_ids;
               }));
      ] );
  ]
