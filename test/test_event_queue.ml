(* Event-queue stress tests for the array-backed heap: FIFO tie-breaking
   must survive internal growth, and a cleared queue must be reusable.
   These pin down the exact (time, seq) total order the engine's
   determinism guarantee rests on. *)

module Event_queue = Ics_sim.Event_queue

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rec drain q =
  match Event_queue.pop q with
  | Some (_, run) ->
      run ();
      drain q
  | None -> ()

(* 300 same-time pushes cross the initial capacity (256), forcing at least
   one grow mid-sequence; pops must still come back in insertion order. *)
let test_fifo_across_growth () =
  let q = Event_queue.create () in
  let out = ref [] in
  for i = 1 to 300 do
    Event_queue.push q ~time:5.0 (fun () -> out := i :: !out)
  done;
  checki "all queued" 300 (Event_queue.size q);
  let rec loop () =
    match Event_queue.pop q with
    | Some (t, run) ->
        Alcotest.(check (float 1e-9)) "same time" 5.0 t;
        run ();
        loop ()
    | None -> ()
  in
  loop ();
  Alcotest.(check (list int)) "insertion order across grow"
    (List.init 300 (fun i -> i + 1))
    (List.rev !out)

let test_clear_then_reuse () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:(float_of_int i) (fun () -> ())
  done;
  Event_queue.clear q;
  checkb "empty after clear" true (Event_queue.is_empty q);
  (* Reuse: the queue must behave like a fresh one, including FIFO ties. *)
  let out = ref [] in
  for i = 1 to 5 do
    Event_queue.push q ~time:2.0 (fun () -> out := i :: !out)
  done;
  Event_queue.push q ~time:1.0 (fun () -> out := 0 :: !out);
  drain q;
  Alcotest.(check (list int)) "reused queue pops in (time, seq) order"
    [ 0; 1; 2; 3; 4; 5 ] (List.rev !out)

(* Property: pop order is exactly the sort of pushes by (time, seq) — time
   ascending, insertion sequence breaking ties.  This is the total order
   the engine's determinism rests on, checked against a reference sort. *)
let qcheck_pop_matches_time_seq_sort =
  QCheck.Test.make ~name:"pop order = sort by (time, seq)" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 400) (int_bound 50))
    (fun raw ->
      let times = List.map float_of_int raw in
      let q = Event_queue.create () in
      let popped = ref [] in
      List.iteri
        (fun seq t -> Event_queue.push q ~time:t (fun () -> popped := seq :: !popped))
        times;
      let rec loop () =
        match Event_queue.pop q with
        | Some (_, run) ->
            run ();
            loop ()
        | None -> ()
      in
      loop ();
      let expected =
        List.mapi (fun seq t -> (t, seq)) times
        |> List.sort (fun (t1, s1) (t2, s2) ->
               match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
        |> List.map snd
      in
      List.rev !popped = expected)

let suites =
  [
    ( "event-queue-stress",
      [
        Alcotest.test_case "fifo across growth" `Quick test_fifo_across_growth;
        Alcotest.test_case "clear then reuse" `Quick test_clear_then_reuse;
        QCheck_alcotest.to_alcotest qcheck_pop_matches_time_seq_sort;
      ] );
  ]
