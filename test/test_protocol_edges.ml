(* Protocol edge cases driven by a manual failure detector, plus tests for
   the utilization/custom-setup APIs. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Fd = Ics_fd.Failure_detector
module Proposal = Ics_consensus.Proposal
module Ct = Ics_consensus.Ct
module Mr = Ics_consensus.Mr
module Intf = Ics_consensus.Consensus_intf
module Stack = Ics_core.Stack
module Experiment = Ics_workload.Experiment

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mid o s = Msg_id.make ~origin:o ~seq:s

type h = {
  engine : Engine.t;
  control : Fd.Control.t;
  handle : Intf.handle;
  decisions : (Pid.t * int * Proposal.t) list ref;
}

let mk_manual ?(n = 3) algo =
  let engine = Engine.create ~n () in
  let model = Model.constant ~delay:1.0 ~n ~seed:1L () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let control = Fd.manual engine in
  let fd = Fd.Control.fd control in
  let decisions = ref [] in
  let callbacks =
    {
      Intf.on_decide = (fun p k v -> decisions := (p, k, v) :: !decisions);
      join = (fun _ _ -> Proposal.empty);
    }
  in
  let handle =
    match algo with
    | `Ct -> Ct.create transport fd { Ct.layer = "consensus"; rcv = None } callbacks
    | `Mr -> Mr.create transport fd { Mr.layer = "consensus"; rcv = None } callbacks
  in
  { engine; control; handle; decisions }

(* CT: a false suspicion of the round-1 coordinator sends nacks; the run
   must still decide (in a later round) and agree. *)
let test_ct_false_suspicion_recovers () =
  let h = mk_manual `Ct in
  let v = Proposal.on_ids [ mid 0 0 ] in
  (* p1 and p2 falsely suspect p0 before the run starts: their Phase 3
     nacks abort round 1. *)
  Fd.Control.suspect h.control ~observer:1 0;
  Fd.Control.suspect h.control ~observer:2 0;
  Engine.schedule h.engine ~at:1.0 (fun () ->
      List.iter (fun p -> h.handle.Intf.propose p 1 v) [ 0; 1; 2 ]);
  Engine.run h.engine;
  checki "all decide despite false suspicion" 3 (List.length !(h.decisions));
  List.iter
    (fun (_, _, d) -> checkb "decided v" true (Proposal.equal d v))
    !(h.decisions)

(* CT: suspicion arriving mid-wait (not just pre-checked at round entry)
   must also unblock Phase 3. *)
let test_ct_mid_wait_suspicion () =
  let h = mk_manual `Ct in
  let v = Proposal.on_ids [ mid 1 0 ] in
  Engine.schedule h.engine ~at:1.0 (fun () ->
      (* Only p1/p2 propose; p0 (round-1 coordinator) stays silent and
         never joins, so Phase 3 blocks until the detector speaks. *)
      List.iter (fun p -> h.handle.Intf.propose p 1 v) [ 1; 2 ]);
  Engine.crash_at h.engine 0 ~at:2.0;
  Engine.schedule h.engine ~at:50.0 (fun () ->
      Fd.Control.suspect_everywhere h.control 0);
  Engine.run h.engine;
  let deciders = List.map (fun (p, _, _) -> p) !(h.decisions) in
  checkb "p1 decided" true (List.mem 1 deciders);
  checkb "p2 decided" true (List.mem 2 deciders)

(* MR: same shape — coordinator silent, suspicion mid-round unblocks the
   ⊥-relay path and the next round decides. *)
let test_mr_mid_wait_suspicion () =
  let h = mk_manual `Mr in
  let v = Proposal.on_ids [ mid 1 0 ] in
  Engine.schedule h.engine ~at:1.0 (fun () ->
      List.iter (fun p -> h.handle.Intf.propose p 1 v) [ 1; 2 ]);
  Engine.crash_at h.engine 0 ~at:2.0;
  Engine.schedule h.engine ~at:50.0 (fun () ->
      Fd.Control.suspect_everywhere h.control 0);
  Engine.run h.engine;
  let deciders = List.map (fun (p, _, _) -> p) !(h.decisions) in
  checkb "p1 decided" true (List.mem 1 deciders);
  checkb "p2 decided" true (List.mem 2 deciders)

(* MR: a round mixing the coordinator's value with ⊥ adopts the value and
   decides it unanimously one round later — the adoption path of line 28
   exercised deterministically. *)
let test_mr_mixed_round_adoption () =
  let h = mk_manual `Mr in
  let v0 = Proposal.on_ids [ mid 0 0 ] in
  let v_other = Proposal.on_ids [ mid 2 7 ] in
  (* p2 permanently suspects the round-1 coordinator p0, relays ⊥ in round
     1; p0/p1 relay v0.  Quorum = 2: p2 can observe {v0, ⊥}. *)
  Fd.Control.suspect h.control ~observer:2 0;
  Engine.schedule h.engine ~at:1.0 (fun () ->
      h.handle.Intf.propose 0 1 v0;
      h.handle.Intf.propose 1 1 v0;
      h.handle.Intf.propose 2 1 v_other);
  Engine.run h.engine;
  checki "three deciders" 3 (List.length !(h.decisions));
  List.iter
    (fun (_, _, d) -> checkb "v0 won (adopted, not overwritten)" true (Proposal.equal d v0))
    !(h.decisions)

(* CT round buffering: a process lagging a full round behind must catch
   up using the buffered messages of the round it skipped into.  Forced
   by delaying every consensus message to p2. *)
let test_ct_lagging_process_catches_up () =
  let n = 3 in
  let engine = Engine.create ~n () in
  let rule (m : Ics_net.Message.t) =
    if Ics_net.Message.layer_name m = "consensus" && Pid.equal m.dst 2 then
      Model.Delay_by 30.0
    else Model.Pass
  in
  let model = Model.scripted ~base:(Model.constant ~delay:1.0 ~n ~seed:1L ()) ~rule in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let fd = Fd.oracle engine ~detection_delay:20.0 in
  let decisions = ref [] in
  let callbacks =
    {
      Ics_consensus.Consensus_intf.on_decide =
        (fun p k v -> decisions := (p, k, v) :: !decisions);
      join = (fun _ _ -> Proposal.empty);
    }
  in
  let handle = Ct.create transport fd { Ct.layer = "consensus"; rcv = None } callbacks in
  let v = Proposal.on_ids [ mid 0 0 ] in
  Engine.schedule engine ~at:1.0 (fun () ->
      List.iter (fun p -> handle.Ics_consensus.Consensus_intf.propose p 1 v) [ 0; 1; 2 ]);
  Engine.run engine;
  checki "all three decide despite the lag" 3 (List.length !decisions);
  List.iter
    (fun (_, _, d) -> checkb "agreed" true (Proposal.equal d v))
    !decisions

(* Utilization accounting. *)
let test_stack_utilization () =
  let config = { Stack.abcast_indirect with Stack.n = 3 } in
  let stack =
    Test_util.run_stack config (Test_util.burst ~n:3 ~count:20 ~body_bytes:1000 ~spacing:1.0)
  in
  let util = Stack.utilization ~horizon:40.0 stack in
  (* 3 CPUs + 6 switch links for the switched Setup 1 model. *)
  checki "all resources reported" 9 (List.length util);
  List.iter
    (fun (name, u) ->
      checkb (name ^ " in range") true (u >= 0.0 && u <= 1.0))
    util;
  let cpu0 = List.assoc "cpu0" util in
  checkb "cpu0 did work" true (cpu0 > 0.0)

let test_experiment_reports_utilization () =
  let config = { Stack.abcast_indirect with Stack.n = 3 } in
  let load =
    { Experiment.throughput = 400.0; body_bytes = 100; duration = 1_500.0; warmup = 300.0 }
  in
  let r = Experiment.run config load in
  checkb "utilization present" true (r.Experiment.utilization <> []);
  checkb "some resource busy" true
    (List.exists (fun (_, u) -> u > 0.01) r.Experiment.utilization)

(* Custom setups plug arbitrary models and hosts into the stack. *)
let test_custom_setup () =
  let build ~n = (Model.constant ~delay:2.5 ~n ~seed:9L (), Host.instant) in
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = Stack.Custom { name = "my-net"; build };
      fd_kind = Stack.Oracle 10.0;
    }
  in
  let stack = Test_util.run_stack config [ (1.0, 0, 10) ] in
  checki "delivered" 1
    (List.length (Ics_core.Abcast.delivered_sequence stack.Stack.abcast 1));
  checkb "describe uses the custom name" true
    (Test_util.contains (Stack.describe stack) "my-net")

(* The rcv-cost knob isolates the Figure 3 overhead: with zero rcv cost,
   indirect and faulty runs have identical latency profiles. *)
let test_zero_rcv_cost_equalizes () =
  let host = { Host.pentium3 with Host.rcv_check_fixed = 0.0; rcv_check_per_id = 0.0 } in
  let setup =
    Stack.Custom
      { name = "no-rcv-cost"; build = (fun ~n -> (Model.switched Model.params_100mbps ~n, host)) }
  in
  let load =
    { Experiment.throughput = 300.0; body_bytes = 1; duration = 1_500.0; warmup = 300.0 }
  in
  let mean ordering =
    (Experiment.run { Stack.abcast_indirect with Stack.setup; ordering } load)
      .Experiment.latency.Ics_prelude.Stats.mean
  in
  Alcotest.(check (float 1e-9))
    "identical latency without rcv cost"
    (mean Ics_core.Abcast.Consensus_on_ids)
    (mean Ics_core.Abcast.Indirect_consensus)

let suites =
  [
    ( "protocol-edges",
      [
        Alcotest.test_case "ct false suspicion recovers" `Quick test_ct_false_suspicion_recovers;
        Alcotest.test_case "ct mid-wait suspicion" `Quick test_ct_mid_wait_suspicion;
        Alcotest.test_case "mr mid-wait suspicion" `Quick test_mr_mid_wait_suspicion;
        Alcotest.test_case "mr mixed-round adoption" `Quick test_mr_mixed_round_adoption;
        Alcotest.test_case "ct lagging process catches up" `Quick test_ct_lagging_process_catches_up;
      ] );
    ( "instrumentation",
      [
        Alcotest.test_case "stack utilization" `Quick test_stack_utilization;
        Alcotest.test_case "experiment utilization" `Quick test_experiment_reports_utilization;
        Alcotest.test_case "custom setup" `Quick test_custom_setup;
        Alcotest.test_case "zero rcv cost equalizes" `Quick test_zero_rcv_cost_equalizes;
      ] );
  ]
