(* Tests for the simulation substrate: event queue, engine, resources,
   time, pids and traces. *)

module Event_queue = Ics_sim.Event_queue
module Engine = Ics_sim.Engine
module Resource = Ics_sim.Resource
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Msg_id = Ics_sim.Msg_id

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* Event queue *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  let out = ref [] in
  List.iter
    (fun t -> Event_queue.push q ~time:t (fun () -> out := t :: !out))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, run) ->
        run ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !out)

let test_queue_tie_insertion_order () =
  let q = Event_queue.create () in
  let out = ref [] in
  for i = 1 to 20 do
    Event_queue.push q ~time:7.0 (fun () -> out := i :: !out)
  done;
  while Event_queue.pop q <> None do
    ()
  done;
  (* pops return closures; re-run to execute *)
  let q2 = Event_queue.create () in
  let out2 = ref [] in
  for i = 1 to 20 do
    Event_queue.push q2 ~time:7.0 (fun () -> out2 := i :: !out2)
  done;
  let rec drain () =
    match Event_queue.pop q2 with
    | Some (_, run) ->
        run ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" (List.init 20 (fun i -> i + 1))
    (List.rev !out2);
  ignore !out

let test_queue_growth () =
  let q = Event_queue.create () in
  for i = 0 to 9_999 do
    Event_queue.push q ~time:(float_of_int (i mod 97)) (fun () -> ())
  done;
  checki "size" 10_000 (Event_queue.size q);
  let last = ref (-1.0) in
  let rec drain count =
    match Event_queue.pop q with
    | Some (t, _) ->
        checkb "monotone" true (t >= !last);
        last := t;
        drain (count + 1)
    | None -> count
  in
  checki "popped all" 10_000 (drain 0)

let test_queue_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 (fun () -> ());
  Event_queue.clear q;
  checkb "empty" true (Event_queue.is_empty q);
  checkb "peek none" true (Event_queue.peek_time q = None)

let test_queue_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.push: NaN time") (fun () ->
      Event_queue.push q ~time:Float.nan (fun () -> ()))

let qcheck_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t (fun () -> ())) times;
      let rec drain last =
        match Event_queue.pop q with
        | Some (t, _) -> t >= last && drain t
        | None -> true
      in
      drain Float.neg_infinity)

(* Engine *)

let test_engine_run_order () =
  let e = Engine.create ~n:1 () in
  let out = ref [] in
  Engine.schedule e ~at:3.0 (fun () -> out := "c" :: !out);
  Engine.schedule e ~at:1.0 (fun () -> out := "a" :: !out);
  Engine.schedule e ~at:2.0 (fun () -> out := "b" :: !out);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !out);
  checkf "clock at last event" 3.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create ~n:1 () in
  let fired = ref 0 in
  Engine.schedule e ~at:1.0 (fun () -> incr fired);
  Engine.schedule e ~at:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  checki "only first" 1 !fired;
  checkf "clock advanced to horizon" 5.0 (Engine.now e);
  checki "one pending" 1 (Engine.pending e);
  Engine.run e;
  checki "second fired" 2 !fired

let test_engine_max_events () =
  let e = Engine.create ~n:1 () in
  for i = 1 to 10 do
    Engine.schedule e ~at:(float_of_int i) (fun () -> ())
  done;
  Engine.run ~max_events:4 e;
  checki "six left" 6 (Engine.pending e)

let test_engine_after_nested () =
  let e = Engine.create ~n:1 () in
  let times = ref [] in
  Engine.schedule e ~at:1.0 (fun () ->
      Engine.after e ~delay:2.0 (fun () -> times := Engine.now e :: !times));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "relative scheduling" [ 3.0 ] !times

let test_engine_negative_delay () =
  let e = Engine.create ~n:1 () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.after: negative delay")
    (fun () -> Engine.after e ~delay:(-1.0) (fun () -> ()))

let test_engine_past_clamped () =
  let e = Engine.create ~n:1 () in
  let at = ref None in
  Engine.schedule e ~at:5.0 (fun () ->
      Engine.schedule e ~at:1.0 (fun () -> at := Some (Engine.now e)));
  Engine.run e;
  Alcotest.(check (option (float 1e-9))) "clamped to now" (Some 5.0) !at

let test_engine_stop () =
  let e = Engine.create ~n:1 () in
  let fired = ref 0 in
  Engine.schedule e ~at:1.0 (fun () ->
      incr fired;
      Engine.stop e);
  Engine.schedule e ~at:2.0 (fun () -> incr fired);
  Engine.run e;
  checki "stopped early" 1 !fired;
  checki "event preserved" 1 (Engine.pending e)

let test_engine_step () =
  let e = Engine.create ~n:1 () in
  checkb "empty step" false (Engine.step e);
  Engine.schedule e ~at:1.0 (fun () -> ());
  checkb "step runs" true (Engine.step e);
  checkb "empty again" false (Engine.step e)

let test_crash_semantics () =
  let e = Engine.create ~n:3 () in
  checkb "alive initially" true (Engine.is_alive e 1);
  let hook_calls = ref [] in
  Engine.on_crash e (fun p -> hook_calls := p :: !hook_calls);
  Engine.crash e 1;
  checkb "dead" false (Engine.is_alive e 1);
  Alcotest.(check (list int)) "hook fired" [ 1 ] !hook_calls;
  Engine.crash e 1;
  Alcotest.(check (list int)) "idempotent" [ 1 ] !hook_calls;
  Alcotest.(check (list int)) "correct set" [ 0; 2 ] (Engine.correct e);
  (* crash is recorded in the trace *)
  let crashes =
    Ics_sim.Trace.filter (Engine.trace e) (fun ev -> ev.Trace.kind = Trace.Crash)
  in
  checki "one crash event" 1 (List.length crashes)

let test_crash_at () =
  let e = Engine.create ~n:2 () in
  Engine.crash_at e 0 ~at:5.0;
  Engine.schedule e ~at:4.0 (fun () -> checkb "alive before" true (Engine.is_alive e 0));
  Engine.schedule e ~at:6.0 (fun () -> checkb "dead after" false (Engine.is_alive e 0));
  Engine.run e

let test_alive_guard () =
  let e = Engine.create ~n:2 () in
  let calls = ref 0 in
  let guarded = Engine.alive_guard e 0 (fun () -> incr calls) in
  guarded ();
  Engine.crash e 0;
  guarded ();
  checki "only while alive" 1 !calls

let test_engine_rng_deterministic () =
  let mk () =
    let e = Engine.create ~seed:99L ~n:3 () in
    List.init 3 (fun p -> Ics_prelude.Rng.next_int64 (Engine.rng e p))
  in
  Alcotest.(check (list int64)) "per-process streams reproducible" (mk ()) (mk ());
  let e = Engine.create ~seed:99L ~n:3 () in
  let a = Ics_prelude.Rng.next_int64 (Engine.rng e 0) in
  let b = Ics_prelude.Rng.next_int64 (Engine.rng e 1) in
  checkb "distinct streams" true (a <> b)

let test_engine_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Engine.create: n <= 0") (fun () ->
      ignore (Engine.create ~n:0 ()))

(* Resource *)

let test_resource_fifo () =
  let r = Resource.create "cpu" in
  let t1 = Resource.reserve r ~now:0.0 ~service:2.0 in
  checkf "idle start" 2.0 t1;
  let t2 = Resource.reserve r ~now:1.0 ~service:2.0 in
  checkf "queues behind" 4.0 t2;
  let t3 = Resource.reserve r ~now:10.0 ~service:1.0 in
  checkf "idle gap" 11.0 t3;
  checki "jobs" 3 (Resource.jobs r);
  checkf "busy time" 5.0 (Resource.busy_time r)

let test_resource_utilization () =
  let r = Resource.create "x" in
  ignore (Resource.reserve r ~now:0.0 ~service:5.0);
  checkf "50%" 0.5 (Resource.utilization r ~horizon:10.0);
  checkf "clamped" 1.0 (Resource.utilization r ~horizon:2.0);
  Resource.reset r;
  checkf "reset" 0.0 (Resource.busy_time r)

let test_resource_negative () =
  let r = Resource.create "x" in
  Alcotest.check_raises "negative" (Invalid_argument "Resource.reserve: negative service")
    (fun () -> ignore (Resource.reserve r ~now:0.0 ~service:(-1.0)))

(* Pid / Time *)

let test_pid_helpers () =
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  Alcotest.(check (list int)) "others" [ 0; 2 ] (Pid.others ~n:3 1);
  Alcotest.(check string) "to_string" "p2" (Pid.to_string 2)

let test_coordinator_rotation () =
  checki "round 1 -> p0" 0 (Pid.coordinator ~n:3 ~round:1);
  checki "round 2 -> p1" 1 (Pid.coordinator ~n:3 ~round:2);
  checki "round 3 -> p2" 2 (Pid.coordinator ~n:3 ~round:3);
  checki "round 4 wraps" 0 (Pid.coordinator ~n:3 ~round:4);
  Alcotest.check_raises "round 0" (Invalid_argument "Pid.coordinator: rounds are 1-based")
    (fun () -> ignore (Pid.coordinator ~n:3 ~round:0))

let test_time_units () =
  checkf "us" 0.5 (Time.of_us 500.0);
  checkf "s" 2000.0 (Time.of_s 2.0);
  Alcotest.(check string) "pp" "12.340ms" (Format.asprintf "%a" Time.pp 12.34)

(* Trace *)

let test_trace_recording () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~pid:0 (Trace.Abroadcast (Msg_id.make ~origin:0 ~seq:0));
  Trace.record tr ~time:2.0 ~pid:1 (Trace.Adeliver (Msg_id.make ~origin:0 ~seq:0));
  checki "length" 2 (Trace.length tr);
  let events = Trace.events tr in
  checkb "chronological" true
    ((List.nth events 0).Trace.time <= (List.nth events 1).Trace.time);
  let at_p1 = Trace.find_all tr ~pid:1 (fun _ -> true) in
  checki "filter by pid" 1 (List.length at_p1)

let test_trace_pp () =
  let s = Format.asprintf "%a" Trace.pp_kind (Trace.Propose (3, [ Msg_id.make ~origin:0 ~seq:0; Msg_id.make ~origin:1 ~seq:0 ])) in
  checkb "propose rendering" true (Test_util.contains s "propose(#3");
  let s2 = Format.asprintf "%a" Trace.pp_kind (Trace.Suspect 2) in
  checkb "suspect rendering" true (Test_util.contains s2 "suspect(p2)")

let suites =
  [
    ( "event-queue",
      [
        Alcotest.test_case "ordering" `Quick test_queue_ordering;
        Alcotest.test_case "ties by insertion" `Quick test_queue_tie_insertion_order;
        Alcotest.test_case "growth" `Quick test_queue_growth;
        Alcotest.test_case "clear" `Quick test_queue_clear;
        Alcotest.test_case "nan rejected" `Quick test_queue_nan;
        QCheck_alcotest.to_alcotest qcheck_queue_sorted;
      ] );
    ( "engine",
      [
        Alcotest.test_case "run order" `Quick test_engine_run_order;
        Alcotest.test_case "until horizon" `Quick test_engine_until;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
        Alcotest.test_case "after nested" `Quick test_engine_after_nested;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
        Alcotest.test_case "past clamped" `Quick test_engine_past_clamped;
        Alcotest.test_case "stop" `Quick test_engine_stop;
        Alcotest.test_case "step" `Quick test_engine_step;
        Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
        Alcotest.test_case "crash_at" `Quick test_crash_at;
        Alcotest.test_case "alive guard" `Quick test_alive_guard;
        Alcotest.test_case "rng determinism" `Quick test_engine_rng_deterministic;
        Alcotest.test_case "invalid n" `Quick test_engine_invalid;
      ] );
    ( "resource",
      [
        Alcotest.test_case "fifo" `Quick test_resource_fifo;
        Alcotest.test_case "utilization" `Quick test_resource_utilization;
        Alcotest.test_case "negative service" `Quick test_resource_negative;
      ] );
    ( "pid-time",
      [
        Alcotest.test_case "pid helpers" `Quick test_pid_helpers;
        Alcotest.test_case "coordinator rotation" `Quick test_coordinator_rotation;
        Alcotest.test_case "time units" `Quick test_time_units;
      ] );
    ( "trace",
      [
        Alcotest.test_case "recording" `Quick test_trace_recording;
        Alcotest.test_case "pretty printing" `Quick test_trace_pp;
      ] );
  ]
