(* Entry point: concatenates every module's suites. *)

let () =
  Alcotest.run "ics"
    (List.concat
       [
         Test_rng.suites;
         Test_stats.suites;
         Test_sim.suites;
         Test_event_queue.suites;
         Test_net.suites;
         Test_fd.suites;
         Test_faults.suites;
         Test_broadcast.suites;
         Test_ordered_broadcast.suites;
         Test_consensus.suites;
         Test_abcast.suites;
         Test_checker.suites;
         Test_checker_fuzz.suites;
         Test_scenarios.suites;
         Test_workload.suites;
         Test_integration.suites;
         Test_adversarial.suites;
         Test_lb.suites;
         Test_protocol_edges.suites;
         Test_more.suites;
         Test_codec.suites;
         Test_batching.suites;
         Test_runtime.suites;
         Test_fault_parity.suites;
         Test_app.suites;
         Test_lint.suites;
       ])
