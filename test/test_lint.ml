(* The determinism linter: every rule fires on its violation fixture,
   the clean fixture and the repo itself are finding-free, allow
   comments suppress only with an audit trail, and the JSON report is
   byte-stable.  Linting the fixtures here keeps the verify gate honest:
   a rule that silently stops firing fails the suite, not just `make
   lint`. *)

module Lint = Ics_lint.Lint

(* `dune runtest` runs from _build/default/test; `dune exec` from the
   project root — accept either. *)
let fixtures =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures" else "test/lint_fixtures"

let lint files = Lint.run_files ~root:fixtures ~files

let rules r = List.map (fun f -> f.Lint.rule) r.Lint.findings

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_rules name file expected =
  let r = lint [ file ] in
  Alcotest.(check (list string)) name expected (rules r);
  Alcotest.(check (list (pair string string))) (name ^ " no internal errors") [] r.Lint.errors

let test_b1 () =
  let r = lint [ "lib/net/bad_b1.ml" ] in
  Alcotest.(check (list string))
    "B1: module alias, Unix call, dotted runtime access"
    [ "B1"; "B1"; "B1" ] (rules r);
  Alcotest.(check (list (pair string string))) "B1 no internal errors" [] r.Lint.errors;
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "hint points at the Env seam" true
        (contains ~sub:"lib/net/env.mli" f.Lint.hint))
    r.Lint.findings

let test_d1 () = check_rules "D1 fires twice" "lib/consensus/bad_d1.ml" [ "D1"; "D1" ]
let test_d2 () = check_rules "D2 fires thrice" "lib/sim/bad_d2.ml" [ "D2"; "D2"; "D2" ]

let test_d3 () =
  check_rules "D3: compare, Stdlib.compare, record =, first-class =" "lib/checker/bad_d3.ml"
    [ "D3"; "D3"; "D3"; "D3" ]

let test_p1 () =
  let r = lint [ "lib/broadcast/bad_p1.ml" ] in
  Alcotest.(check (list string)) "P1 fires once" [ "P1" ] (rules r);
  match r.Lint.findings with
  | [ f ] ->
      Alcotest.(check bool) "names the constructor" true (contains ~sub:"Probe" f.Lint.message)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_p2 () = check_rules "P2 fires once" "lib/fd/bad_p2.ml" [ "P2" ]

let test_clean_fixture () =
  let r = lint [ "lib/core/clean.ml" ] in
  Alcotest.(check (list string)) "clean fixture has no findings" [] (rules r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint.suppressed;
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code r)

let test_scopes () =
  (* Identical constructs outside the deterministic scopes are legal. *)
  let r = lint [ "lib/runtime/offscope.ml" ] in
  Alcotest.(check (list string)) "runtime layer is out of D1/D2-time scope" [] (rules r)

let test_allow_suppresses () =
  let r = lint [ "lib/consensus/allowed.ml" ] in
  Alcotest.(check (list string)) "justified allow silences D1" [] (rules r);
  Alcotest.(check int) "counted as suppressed" 1 r.Lint.suppressed;
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code r)

let test_allow_needs_reason () =
  let r = lint [ "lib/consensus/bad_allow.ml" ] in
  Alcotest.(check (list string)) "reasonless allow reported, D1 kept" [ "allow"; "D1" ] (rules r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint.suppressed

let test_unparseable () =
  let r = lint [ "lib/sim/unparseable.ml" ] in
  Alcotest.(check int) "one internal error" 1 (List.length r.Lint.errors);
  Alcotest.(check int) "exit 2" 2 (Lint.exit_code r)

let golden_json =
  "{\n\
  \  \"version\": 1,\n\
  \  \"files_scanned\": 1,\n\
  \  \"suppressed\": 0,\n\
  \  \"findings\": [\n\
  \    {\"file\": \"lib/broadcast/bad_p1.ml\", \"line\": 4, \"col\": 28, \"rule\": \"P1\", \
   \"message\": \"payload constructor Probe has no Codec.register ~fits coverage: it would be \
   rejected at encode time on a live wire, not at build time\", \"hint\": \"register a codec \
   for it next to the layer's handlers (see ct.ml's register_codec) and hook it into \
   Codecs.ensure\"}\n\
  \  ],\n\
  \  \"errors\": []\n\
   }\n"

let test_golden_json () =
  let r = lint [ "lib/broadcast/bad_p1.ml" ] in
  Alcotest.(check string) "json report is byte-stable" golden_json (Lint.to_json r)

(* The gate itself: the repo's own lib/ and bin/ must lint clean.  The
   test runs from _build/default/test, so the parent directory holds the
   copied sources of everything the suite links against. *)
let test_repo_clean () =
  if not (Sys.file_exists "../lib") then
    (* Sandboxed runner without the source tree alongside: nothing to scan. *)
    ()
  else begin
    let r = Lint.run ~root:".." in
    List.iter
      (fun (f : Lint.finding) ->
        Format.eprintf "repo finding: %s:%d:%d [%s] %s@." f.Lint.file f.Lint.line f.Lint.col
          f.Lint.rule f.Lint.message)
      r.Lint.findings;
    Alcotest.(check (list (pair string string))) "no internal errors" [] r.Lint.errors;
    Alcotest.(check int) "zero findings on the repo" 0 (List.length r.Lint.findings);
    Alcotest.(check bool) "scanned a real file set" true (r.Lint.files_scanned > 40)
  end

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "B1 backend neutrality" `Quick test_b1;
        Alcotest.test_case "D1 unordered iteration" `Quick test_d1;
        Alcotest.test_case "D2 ambient nondeterminism" `Quick test_d2;
        Alcotest.test_case "D3 polymorphic compare" `Quick test_d3;
        Alcotest.test_case "P1 codec completeness" `Quick test_p1;
        Alcotest.test_case "P2 timer hygiene" `Quick test_p2;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "per-directory scopes" `Quick test_scopes;
        Alcotest.test_case "allow comment suppresses" `Quick test_allow_suppresses;
        Alcotest.test_case "allow needs a reason" `Quick test_allow_needs_reason;
        Alcotest.test_case "unparseable input is an error" `Quick test_unparseable;
        Alcotest.test_case "golden JSON output" `Quick test_golden_json;
        Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
      ] );
  ]
