(* The determinism linter: every rule fires on its violation fixture,
   the clean fixture and the repo itself are finding-free, allow
   comments suppress only with an audit trail, and the JSON report is
   byte-stable.  Linting the fixtures here keeps the verify gate honest:
   a rule that silently stops firing fails the suite, not just `make
   lint`. *)

module Lint = Ics_lint.Lint
module Summary = Ics_lint.Summary
module Callgraph = Ics_lint.Callgraph

(* `dune runtest` runs from _build/default/test; `dune exec` from the
   project root — accept either. *)
let fixtures =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures" else "test/lint_fixtures"

let lint ?rules files = Lint.run_files ?rules ~root:fixtures ~files ()

let rules r = List.map (fun f -> f.Lint.rule) r.Lint.findings

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_rules name file expected =
  let r = lint [ file ] in
  Alcotest.(check (list string)) name expected (rules r);
  Alcotest.(check (list (pair string string))) (name ^ " no internal errors") [] r.Lint.errors

let test_b1 () =
  let r = lint [ "lib/net/bad_b1.ml" ] in
  Alcotest.(check (list string))
    "B1: module alias, Unix call, dotted runtime access"
    [ "B1"; "B1"; "B1" ] (rules r);
  Alcotest.(check (list (pair string string))) "B1 no internal errors" [] r.Lint.errors;
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "hint points at the Env seam" true
        (contains ~sub:"lib/net/env.mli" f.Lint.hint))
    r.Lint.findings

let test_d1 () = check_rules "D1 fires twice" "lib/consensus/bad_d1.ml" [ "D1"; "D1" ]
let test_d2 () = check_rules "D2 fires thrice" "lib/sim/bad_d2.ml" [ "D2"; "D2"; "D2" ]

let test_d3 () =
  check_rules "D3: compare, Stdlib.compare, record =, first-class =" "lib/checker/bad_d3.ml"
    [ "D3"; "D3"; "D3"; "D3" ]

let test_p1 () =
  let r = lint [ "lib/broadcast/bad_p1.ml" ] in
  Alcotest.(check (list string)) "P1 fires once" [ "P1" ] (rules r);
  match r.Lint.findings with
  | [ f ] ->
      Alcotest.(check bool) "names the constructor" true (contains ~sub:"Probe" f.Lint.message)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_p2 () = check_rules "P2 fires once" "lib/fd/bad_p2.ml" [ "P2" ]

let test_clean_fixture () =
  let r = lint [ "lib/core/clean.ml" ] in
  Alcotest.(check (list string)) "clean fixture has no findings" [] (rules r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint.suppressed;
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code r)

let test_scopes () =
  (* Identical constructs outside the deterministic scopes are legal. *)
  let r = lint [ "lib/runtime/offscope.ml" ] in
  Alcotest.(check (list string)) "runtime layer is out of D1/D2-time scope" [] (rules r)

let test_allow_suppresses () =
  let r = lint [ "lib/consensus/allowed.ml" ] in
  Alcotest.(check (list string)) "justified allow silences D1" [] (rules r);
  Alcotest.(check int) "counted as suppressed" 1 r.Lint.suppressed;
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code r)

let test_allow_needs_reason () =
  let r = lint [ "lib/consensus/bad_allow.ml" ] in
  Alcotest.(check (list string)) "reasonless allow reported, D1 kept" [ "allow"; "D1" ] (rules r);
  Alcotest.(check int) "nothing suppressed" 0 r.Lint.suppressed

let test_unparseable () =
  let r = lint [ "lib/sim/unparseable.ml" ] in
  Alcotest.(check int) "one internal error" 1 (List.length r.Lint.errors);
  Alcotest.(check int) "exit 2" 2 (Lint.exit_code r)

let golden_json =
  "{\n\
  \  \"version\": 1,\n\
  \  \"files_scanned\": 1,\n\
  \  \"suppressed\": 0,\n\
  \  \"findings\": [\n\
  \    {\"file\": \"lib/broadcast/bad_p1.ml\", \"line\": 4, \"col\": 28, \"rule\": \"P1\", \
   \"message\": \"payload constructor Probe has no Codec.register ~fits coverage: it would be \
   rejected at encode time on a live wire, not at build time\", \"hint\": \"register a codec \
   for it next to the layer's handlers (see ct.ml's register_codec) and hook it into \
   Codecs.ensure\"}\n\
  \  ],\n\
  \  \"errors\": []\n\
   }\n"

let test_golden_json () =
  let r = lint [ "lib/broadcast/bad_p1.ml" ] in
  Alcotest.(check string) "json report is byte-stable" golden_json (Lint.to_json r)

(* --- the interprocedural pass ------------------------------------- *)

let test_app_layer () =
  check_rules "app layer is in the deterministic scope" "lib/app/bad_app.ml"
    [ "D1"; "D2"; "D3" ]

let test_examples_scope () =
  (* Runtime alias, Hashtbl.fold and polymorphic compare are all legal
     in examples/; the Random draw is not. *)
  check_rules "examples get the relaxed scope" "examples/demo.ml" [ "D2" ]

let d4_golden_message =
  "transitive nondeterminism: bad_d4.snapshot → offscope.epoch → Unix.gettimeofday — the \
   call chain leaves the deterministic scope and bottoms out in an ambient source D2 cannot \
   see from here"

let test_d4_two_hop () =
  let r = lint [ "lib/checker/bad_d4.ml"; "lib/runtime/offscope.ml" ] in
  Alcotest.(check (list string)) "D4 fires at the boundary call site" [ "D4" ] (rules r);
  match r.Lint.findings with
  | [ f ] ->
      Alcotest.(check string) "pinned chain message" d4_golden_message f.Lint.message;
      Alcotest.(check (list string)) "structured chain"
        [ "bad_d4.snapshot"; "offscope.epoch"; "Unix.gettimeofday" ] f.Lint.chain;
      Alcotest.(check string) "anchored in the caller's file" "lib/checker/bad_d4.ml"
        f.Lint.file
  | _ -> Alcotest.fail "expected exactly one finding"

let test_d4_severed () =
  (* Without the runtime helper in the file set the call is unresolved —
     no edge, no finding; and the deterministic twin never taints. *)
  let r = lint [ "lib/checker/bad_d4.ml" ] in
  Alcotest.(check (list string)) "severed world: no finding" [] (rules r);
  let r = lint [ "lib/checker/good_d4.ml"; "lib/runtime/offscope.ml" ] in
  Alcotest.(check (list string)) "deterministic helper: no taint" [] (rules r)

let test_d4_cycle () =
  let r = lint [ "lib/checker/cycle_d4.ml"; "lib/runtime/offscope.ml" ] in
  Alcotest.(check (list string))
    "mutual recursion: one D4 per boundary site, no loop, no double-report" [ "D4"; "D4" ]
    (rules r)

let test_b2 () =
  let r = lint [ "lib/core/bad_b2.ml"; "lib/prelude/sys_probe.ml" ] in
  Alcotest.(check (list string)) "B2 fires once" [ "B2" ] (rules r);
  (match r.Lint.findings with
  | [ f ] ->
      Alcotest.(check (list string)) "chain bottoms out in Unix"
        [ "bad_b2.tick"; "sys_probe.pid"; "Unix.getpid" ] f.Lint.chain
  | _ -> Alcotest.fail "expected exactly one finding");
  let r = lint [ "lib/core/bad_b2.ml" ] in
  Alcotest.(check (list string)) "severed world: no finding" [] (rules r)

let ds_files =
  [
    "lib/workload/chaos.ml";
    "lib/workload/registry.ml";
    "lib/workload/registry_allowed.ml";
  ]

let test_ds () =
  let r = lint ds_files in
  Alcotest.(check (list string))
    "DS1 on the ref, DS2 on its write; Atomic.t and the audited twin stay silent"
    [ "DS1"; "DS2" ] (rules r);
  Alcotest.(check int) "the audit counts as a suppression, not a stale allow" 1
    r.Lint.suppressed;
  match r.Lint.findings with
  | [ ds1; ds2 ] ->
      Alcotest.(check string) "DS1 anchored at the declaration" "lib/workload/registry.ml"
        ds1.Lint.file;
      Alcotest.(check bool) "DS1 witness names the sweep root" true
        (contains ~sub:"chaos.run_cell" ds1.Lint.message);
      Alcotest.(check bool) "DS2 names writer and reader" true
        (contains ~sub:"registry.bump" ds2.Lint.message
        && contains ~sub:"registry.current" ds2.Lint.message)
  | _ -> Alcotest.fail "expected exactly two findings"

let test_ds_unreachable () =
  (* No sweep root in the file set: the same state is not domain-shared. *)
  let r = lint [ "lib/workload/registry.ml" ] in
  Alcotest.(check (list string)) "unreachable state is not flagged" [] (rules r)

(* The pool driver is a DS root by itself: a cell closure capturing a
   non-Atomic toplevel ref must fail DS1 even with no chaos.ml in the
   scanned set (the pool, not the sweep, is what spawns the domains). *)
let test_ds_domain_pool_root () =
  let r = lint [ "lib/workload/domain_pool.ml" ] in
  Alcotest.(check (list string))
    "cell closure capturing a toplevel ref: DS1 + derived DS2; Atomic stays silent"
    [ "DS1"; "DS2" ] (rules r);
  match r.Lint.findings with
  | [ ds1; _ds2 ] ->
      Alcotest.(check string) "DS1 anchored at the pool's declaration"
        "lib/workload/domain_pool.ml" ds1.Lint.file;
      Alcotest.(check bool) "finding names the captured ref" true
        (contains ~sub:"tally" ds1.Lint.message);
      Alcotest.(check bool) "witness chain roots at the pool driver" true
        (contains ~sub:"domain_pool." ds1.Lint.message)
  | _ -> Alcotest.fail "expected exactly two findings"

(* --- the --rule filter --------------------------------------------- *)

let test_rule_filter () =
  let file = [ "lib/consensus/filter_mix.ml" ] in
  let r = lint file in
  Alcotest.(check (list string)) "full run: D1 visible, D2 audited" [ "D1" ] (rules r);
  Alcotest.(check int) "full run: one suppression" 1 r.Lint.suppressed;
  let r = lint ~rules:[ "D1"; "allow" ] file in
  Alcotest.(check (list string)) "D1 filter: finding kept, foreign allow not stale" [ "D1" ]
    (rules r);
  Alcotest.(check int) "D1 filter: nothing suppressed" 0 r.Lint.suppressed;
  let r = lint ~rules:[ "D2"; "allow" ] file in
  Alcotest.(check (list string)) "D2 filter: audited, so clean" [] (rules r);
  Alcotest.(check int) "D2 filter: the suppression is counted" 1 r.Lint.suppressed

(* --- analysis internals -------------------------------------------- *)

let test_summary_extraction () =
  let s =
    Summary.of_source ~rel:"lib/fd/probe.ml"
      "module E = Ics_net.Env\n\
       let beat = ref 0\n\
       let seen = Atomic.make 0\n\
       let tick e = incr beat; E.rng e\n"
  in
  Alcotest.(check string) "base name" "probe" s.Summary.base;
  Alcotest.(check (list (pair string (list string)))) "aliases expanded"
    [ ("E", [ "Ics_net"; "Env" ]) ] s.Summary.aliases;
  Alcotest.(check (list (pair string (pair string bool)))) "globals classified"
    [ ("beat", ("ref", false)); ("seen", ("value", true)) ]
    (List.map
       (fun (g : Summary.global) -> (g.Summary.g_name, (g.Summary.g_kind, g.Summary.g_atomic)))
       s.Summary.globals);
  match s.Summary.fns with
  | [ f ] ->
      Alcotest.(check string) "fn name" "tick" f.Summary.fn_name;
      Alcotest.(check (list (list string))) "write targets" [ [ "beat" ] ]
        (List.map (fun (w : Summary.ident_ref) -> w.Summary.path) f.Summary.writes);
      Alcotest.(check bool) "alias-expanded ref" true
        (List.exists
           (fun (r : Summary.ident_ref) -> r.Summary.path = [ "Ics_net"; "Env"; "rng" ])
           f.Summary.refs)
  | _ -> Alcotest.fail "expected exactly one function"

let test_callgraph_resolution () =
  let a =
    Summary.of_source ~rel:"lib/fd/alpha.ml"
      "let helper () = 1\nlet go () = helper () + Beta.other () + Ics_fd.Beta.gauge ()\n"
  in
  let b =
    Summary.of_source ~rel:"lib/fd/beta.ml"
      "let other () = 2\nlet gauge () = 3\nlet cell = ref 0\n"
  in
  let cg = Callgraph.build [ a; b ] in
  let node nfile nname = { Callgraph.nfile; nname } in
  let res = Callgraph.resolve cg ~from_rel:"lib/fd/alpha.ml" in
  let check_res name path expected =
    Alcotest.(check bool) name true (res path = expected)
  in
  check_res "bare name: own file" [ "helper" ] (`Fn (node "lib/fd/alpha.ml" "helper"));
  check_res "sibling module" [ "Beta"; "other" ] (`Fn (node "lib/fd/beta.ml" "other"));
  check_res "wrapped library path" [ "Ics_fd"; "Beta"; "gauge" ]
    (`Fn (node "lib/fd/beta.ml" "gauge"));
  check_res "toplevel global" [ "Beta"; "cell" ] (`Global (node "lib/fd/beta.ml" "cell"));
  check_res "unknown module" [ "Gamma"; "nope" ] `Unresolved;
  check_res "stdlib stays unresolved" [ "Hashtbl"; "create" ] `Unresolved;
  let callees =
    List.map (fun (n, _, _) -> n.Callgraph.nname) (Callgraph.calls cg (node "lib/fd/alpha.ml" "go"))
  in
  Alcotest.(check (list string)) "edges out of go" [ "helper"; "gauge"; "other" ] callees

(* --- output formats ------------------------------------------------ *)

let test_json_chain () =
  let r = lint [ "lib/checker/bad_d4.ml"; "lib/runtime/offscope.ml" ] in
  Alcotest.(check bool) "json carries the chain key" true
    (contains
       ~sub:"\"chain\": [\"bad_d4.snapshot\", \"offscope.epoch\", \"Unix.gettimeofday\"]"
       (Lint.to_json r))

let test_sarif () =
  let r = lint [ "lib/broadcast/bad_p1.ml" ] in
  let s = Lint.to_sarif r in
  Alcotest.(check bool) "sarif version" true (contains ~sub:"\"version\": \"2.1.0\"" s);
  Alcotest.(check bool) "sarif carries the finding" true (contains ~sub:"\"ruleId\": \"P1\"" s);
  let r = lint [ "lib/checker/bad_d4.ml"; "lib/runtime/offscope.ml" ] in
  Alcotest.(check bool) "sarif folds the chain into the message" true
    (contains ~sub:"chain: bad_d4.snapshot -> offscope.epoch -> Unix.gettimeofday"
       (Lint.to_sarif r))

let test_explain () =
  List.iter
    (fun rule ->
      match Lint.explain rule with
      | Some text ->
          Alcotest.(check bool) ("explain " ^ rule ^ " names the rule") true
            (contains ~sub:rule text)
      | None -> Alcotest.fail ("no explanation for " ^ rule))
    ("allow" :: Lint.rule_ids);
  Alcotest.(check bool) "unknown rule has no explanation" true (Lint.explain "Z9" = None)

(* The gate itself: the repo's own lib/ and bin/ must lint clean.  The
   test runs from _build/default/test, so the parent directory holds the
   copied sources of everything the suite links against. *)
let test_repo_clean () =
  if not (Sys.file_exists "../lib") then
    (* Sandboxed runner without the source tree alongside: nothing to scan. *)
    ()
  else begin
    let r = Lint.run ~root:".." () in
    List.iter
      (fun (f : Lint.finding) ->
        Format.eprintf "repo finding: %s:%d:%d [%s] %s@." f.Lint.file f.Lint.line f.Lint.col
          f.Lint.rule f.Lint.message)
      r.Lint.findings;
    Alcotest.(check (list (pair string string))) "no internal errors" [] r.Lint.errors;
    Alcotest.(check int) "zero findings on the repo" 0 (List.length r.Lint.findings);
    Alcotest.(check bool) "scanned a real file set" true (r.Lint.files_scanned > 40)
  end

(* The transitive gate: the repo must also be clean under the
   interprocedural rules alone, with every DS1 audit in active use —
   exit-code-gated so `dune runtest` fails the moment a deterministic
   layer grows a chain to a wall clock or the sweep region grows
   unaudited shared state. *)
let test_repo_clean_transitive () =
  if not (Sys.file_exists "../lib") then ()
  else begin
    let r = Lint.run ~rules:[ "D4"; "B2"; "DS1"; "DS2"; "allow" ] ~root:".." () in
    List.iter
      (fun (f : Lint.finding) ->
        Format.eprintf "repo finding: %s:%d:%d [%s] %s@." f.Lint.file f.Lint.line f.Lint.col
          f.Lint.rule f.Lint.message)
      r.Lint.findings;
    Alcotest.(check int) "exit 0 under the transitive gate" 0 (Lint.exit_code r);
    Alcotest.(check int) "the DS1 audits are in active use" 3 r.Lint.suppressed
  end

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "B1 backend neutrality" `Quick test_b1;
        Alcotest.test_case "D1 unordered iteration" `Quick test_d1;
        Alcotest.test_case "D2 ambient nondeterminism" `Quick test_d2;
        Alcotest.test_case "D3 polymorphic compare" `Quick test_d3;
        Alcotest.test_case "P1 codec completeness" `Quick test_p1;
        Alcotest.test_case "P2 timer hygiene" `Quick test_p2;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "per-directory scopes" `Quick test_scopes;
        Alcotest.test_case "allow comment suppresses" `Quick test_allow_suppresses;
        Alcotest.test_case "allow needs a reason" `Quick test_allow_needs_reason;
        Alcotest.test_case "unparseable input is an error" `Quick test_unparseable;
        Alcotest.test_case "golden JSON output" `Quick test_golden_json;
        Alcotest.test_case "app layer scope" `Quick test_app_layer;
        Alcotest.test_case "examples relaxed scope" `Quick test_examples_scope;
        Alcotest.test_case "D4 two-hop chain" `Quick test_d4_two_hop;
        Alcotest.test_case "D4 severed chain is clean" `Quick test_d4_severed;
        Alcotest.test_case "D4 mutual recursion converges" `Quick test_d4_cycle;
        Alcotest.test_case "B2 transitive backend reach" `Quick test_b2;
        Alcotest.test_case "DS1/DS2 domain safety" `Quick test_ds;
        Alcotest.test_case "DS needs reachability" `Quick test_ds_unreachable;
        Alcotest.test_case "DS roots at the domain pool" `Quick test_ds_domain_pool_root;
        Alcotest.test_case "--rule filter accounting" `Quick test_rule_filter;
        Alcotest.test_case "summary extraction" `Quick test_summary_extraction;
        Alcotest.test_case "call-graph resolution" `Quick test_callgraph_resolution;
        Alcotest.test_case "JSON chain key" `Quick test_json_chain;
        Alcotest.test_case "SARIF output" `Quick test_sarif;
        Alcotest.test_case "every rule has an explanation" `Quick test_explain;
        Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
        Alcotest.test_case "repo clean under transitive gate" `Quick test_repo_clean_transitive;
      ] );
  ]
