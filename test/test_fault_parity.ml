(* Cross-backend fault parity: one seeded drop+partition plan, run once
   on the simulated transport and once as three forked OS processes on
   loopback TCP.  Per-(src, dst) RNG streams make the fault decisions a
   function of (seed, link, message index) only, so the live cluster's
   summed fault counters and total receipts must equal the simulation's
   exactly — and the merged live trace must satisfy the checker
   (vacuously: probes are not an atomic broadcast). *)

module FP = Ics_workload.Fault_parity
module Engine = Ics_sim.Engine
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Model = Ics_net.Model
module Nemesis = Ics_faults.Nemesis
module Clock = Ics_runtime.Clock
module Socket_transport = Ics_runtime.Socket_transport
module Cluster = Ics_runtime.Cluster
module Trace_io = Ics_runtime.Trace_io
module Checker = Ics_checker.Checker

let checki = Alcotest.(check int)

let warmup_ms = 150.0
let deadline_ms = warmup_ms +. (3.0 *. float_of_int FP.probes) +. 400.0
let trace_path dir i = Filename.concat dir (Printf.sprintf "parity%d.trace" i)
let kv_path dir i = Filename.concat dir (Printf.sprintf "parity%d.kv" i)

(* One OS process of the live half: raw socket transport + interposer,
   no protocol stack, no retransmission.  Runs to the fixed deadline
   (the workload has no completion barrier) and writes its receipt count
   and fault counters for the parent to sum. *)
let live_node ~self ~listen ~peer_addrs ~epoch ~dir =
  FP.register_codec ();
  let engine =
    Engine.create ~seed:(Int64.of_int (self + 1)) ~trace:`On ~n:FP.n ()
  in
  let clock = Clock.create ~epoch in
  let st =
    Socket_transport.create ~engine ~clock ~self ~listen ~peer_addrs ()
  in
  let transport = Socket_transport.transport st in
  let mw, stats =
    Nemesis.interposer ~self ~env:(Transport.env transport) ~seed:FP.seed
      ~plan:FP.plan ()
  in
  Transport.interpose transport mw;
  let layer = Transport.intern transport FP.layer_name in
  let received = ref 0 in
  Transport.register transport self ~layer (fun msg ->
      match msg.Message.payload with FP.Probe _ -> incr received | _ -> ());
  FP.schedule_sends engine transport ~layer ~start:warmup_ms ~srcs:[ self ];
  Socket_transport.run st ~deadline:deadline_ms ~stop:(fun () -> false);
  Socket_transport.close st;
  Trace_io.save (trace_path dir self) (Engine.trace engine) ~keep:(fun e ->
      e.Trace.pid = self);
  Trace_io.save_kv (kv_path dir self)
    (("received", !received) :: Model.Fault_stats.to_list stats)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base (Printf.sprintf "ics-parity-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (EEXIST, _, _) -> go (k + 1)
  in
  go 0

let run_live dir =
  let listeners =
    Array.init FP.n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd 64;
        fd)
  in
  let addrs = Array.map Unix.getsockname listeners in
  let epoch = Unix.gettimeofday () in
  flush stdout;
  flush stderr;
  let children =
    Array.init FP.n (fun i ->
        match Unix.fork () with
        | 0 ->
            let code =
              try
                Array.iteri
                  (fun j fd -> if j <> i then Unix.close fd)
                  listeners;
                live_node ~self:i ~listen:listeners.(i) ~peer_addrs:addrs
                  ~epoch ~dir;
                0
              with e ->
                Printf.eprintf "[parity node %d] fatal: %s\n%!" i
                  (Printexc.to_string e);
                11
            in
            flush stdout;
            flush stderr;
            Unix._exit code
        | pid -> pid)
  in
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  Array.map
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED c -> c
      | _ -> 12
      | exception Unix.Unix_error _ -> 13)
    children

let test_parity () =
  if not (Cluster.supported ()) then ()
  else begin
    let sim = FP.sim () in
    let dir = fresh_dir () in
    Fun.protect
      ~finally:(fun () ->
        for i = 0 to FP.n - 1 do
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ trace_path dir i; kv_path dir i ]
        done;
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () ->
        let exits = run_live dir in
        Array.iteri
          (fun i c -> checki (Printf.sprintf "node %d exit" i) 0 c)
          exits;
        let kvs =
          Array.to_list
            (Array.init FP.n (fun i ->
                 let p = kv_path dir i in
                 if Sys.file_exists p then Trace_io.load_kv p else []))
        in
        let totals = Trace_io.sum_kv kvs in
        let total k = Option.value ~default:0 (List.assoc_opt k totals) in
        checki "total receipts"
          (Array.fold_left ( + ) 0 sim.FP.received)
          (total "received");
        List.iter
          (fun (k, v) -> checki ("fault counter " ^ k) v (total k))
          sim.FP.faults;
        (* And nothing extra on the live side either. *)
        List.iter
          (fun (k, v) ->
            if k <> "received" then
              checki
                ("live-only counter " ^ k)
                (Option.value ~default:0 (List.assoc_opt k sim.FP.faults))
                v)
          totals;
        let merged =
          Trace_io.merge
            (List.init FP.n (fun i ->
                 let p = trace_path dir i in
                 if Sys.file_exists p then Trace_io.load p else []))
        in
        let verdict =
          Checker.check_all_abcast (Checker.Run.of_trace merged ~n:FP.n)
        in
        Alcotest.(check bool) "merged live trace checker-ok" true
          (Checker.ok verdict))
  end

(* The deterministic halves of the invariant, checkable without sockets:
   the partition cuts exactly 4 directed links x [probes] messages, and
   every probe is either received or accounted to a fault counter. *)
let test_sim_accounting () =
  let sim = FP.sim () in
  let total k = Option.value ~default:0 (List.assoc_opt k sim.FP.faults) in
  checki "partition drops" (4 * FP.probes) (total "partition-drops");
  checki "probe conservation"
    (FP.n * (FP.n - 1) * FP.probes)
    (Array.fold_left ( + ) 0 sim.FP.received
    + total "partition-drops" + total "drops");
  checki "p0 hears nothing through the partition" 0 sim.FP.received.(0)

let suites =
  [
    ( "fault-parity",
      [
        Alcotest.test_case "sim accounting" `Quick test_sim_accounting;
        Alcotest.test_case "sim vs live cluster" `Slow test_parity;
      ] );
  ]
