(* Additional focused edge-case tests across modules. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Wire = Ics_net.Wire
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Proposal = Ics_consensus.Proposal
module Quorum = Ics_consensus.Quorum
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Figures = Ics_workload.Figures
module Experiment = Ics_workload.Experiment
module Stats = Ics_prelude.Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

type Message.payload += More_test

(* --- sim odds and ends --- *)

let test_run_until_exact_boundary () =
  (* An event exactly at the horizon must run ([<=], not [<]). *)
  let e = Engine.create ~n:1 () in
  let hit = ref false in
  Engine.schedule e ~at:5.0 (fun () -> hit := true);
  Engine.run ~until:5.0 e;
  checkb "boundary event ran" true !hit

let test_stop_then_resume () =
  let e = Engine.create ~n:1 () in
  let order = ref [] in
  Engine.schedule e ~at:1.0 (fun () ->
      order := 1 :: !order;
      Engine.stop e);
  Engine.schedule e ~at:2.0 (fun () -> order := 2 :: !order);
  Engine.run e;
  Engine.run e;
  Alcotest.(check (list int)) "resumed" [ 1; 2 ] (List.rev !order)

let test_crash_hook_ordering () =
  let e = Engine.create ~n:2 () in
  let order = ref [] in
  Engine.on_crash e (fun _ -> order := "first" :: !order);
  Engine.on_crash e (fun _ -> order := "second" :: !order);
  Engine.crash e 0;
  Alcotest.(check (list string)) "registration order" [ "first"; "second" ] (List.rev !order)

let test_trace_note_and_filter () =
  let e = Engine.create ~n:2 () in
  Engine.record e 0 (Trace.Note "hello");
  Engine.record e 1 (Trace.Note "world");
  let notes =
    Trace.filter (Engine.trace e) (fun ev ->
        match ev.Trace.kind with Trace.Note _ -> true | _ -> false)
  in
  checki "two notes" 2 (List.length notes)

(* --- net odds and ends --- *)

let test_switched_store_and_forward_bytes () =
  (* Transmission time depends on wire size on both hops. *)
  let e = Engine.create ~n:2 () in
  let m = Model.switched { Model.net_fixed = 0.0; net_per_byte = 0.001 } ~n:2 in
  let arrived = ref 0.0 in
  let msg =
    { Message.src = 0; dst = 1; layer = Ics_net.Layer.unregistered "t"; payload = More_test; body_bytes = 952;
      sent_at = 0.0 }
  in
  (* wire = 952 + 48 = 1000 bytes; 1 ms per hop, two hops. *)
  Model.send m e msg ~arrive:(fun () -> arrived := Engine.now e);
  Engine.run e;
  checkf "two hops" 2.0 !arrived

let test_message_wire_size_and_pp () =
  let msg =
    { Message.src = 0; dst = 1; layer = Ics_net.Layer.unregistered "rb"; payload = More_test; body_bytes = 10;
      sent_at = 1.5 }
  in
  checki "wire size" (10 + Wire.header_bytes) (Message.wire_size msg);
  let s = Format.asprintf "%a" Message.pp msg in
  checkb "pp mentions layer" true (Test_util.contains s "rb")

let test_transport_counts_dropped_sends () =
  (* A scripted Drop still counts as an accepted send (the sender paid for
     it); engine-level statistics stay deterministic. *)
  let e = Engine.create ~n:2 () in
  let model =
    Model.scripted
      ~base:(Model.constant ~delay:1.0 ~n:2 ~seed:1L ())
      ~rule:(fun _ -> Model.Drop)
  in
  let tr = Transport.create e ~model ~host:Host.instant in
  Transport.register tr 1 ~layer:(Transport.intern tr "t") (fun _ -> Alcotest.fail "must not arrive");
  Transport.send tr ~src:0 ~dst:1 ~layer:(Transport.intern tr "t") ~body_bytes:5 More_test;
  Engine.run e;
  checki "counted" 1 (Transport.sent_messages tr)

let test_app_msg_pp () =
  let m = App_msg.make ~id:(Msg_id.make ~origin:1 ~seq:4) ~body_bytes:32 ~created_at:2.0 () in
  checkb "pp" true (Test_util.contains (Format.asprintf "%a" App_msg.pp m) "p1#4")

(* --- proposal / quorum properties --- *)

let qcheck_proposal_idempotent =
  QCheck.Test.make ~name:"proposal normalization is idempotent" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 5) (int_bound 50)))
    (fun pairs ->
      let ids = List.map (fun (o, s) -> Msg_id.make ~origin:o ~seq:s) pairs in
      let p1 = Proposal.on_ids ids in
      let p2 = Proposal.on_ids (Proposal.ids p1) in
      Proposal.equal p1 p2 && Proposal.wire_bytes p1 = Proposal.wire_bytes p2)

let qcheck_proposal_wire_monotone =
  QCheck.Test.make ~name:"proposal wire size grows with cardinality" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 5) (int_bound 100)))
    (fun pairs ->
      let ids = List.map (fun (o, s) -> Msg_id.make ~origin:o ~seq:s) pairs in
      let p = Proposal.on_ids ids in
      Proposal.wire_bytes p = Wire.id_set_bytes (Proposal.cardinal p))

let qcheck_msg_id_order_total =
  QCheck.Test.make ~name:"msg id compare is a total order" ~count:300
    QCheck.(
      triple (pair (int_bound 9) (int_bound 99)) (pair (int_bound 9) (int_bound 99))
        (pair (int_bound 9) (int_bound 99)))
    (fun ((a1, a2), (b1, b2), (c1, c2)) ->
      let a = Msg_id.make ~origin:a1 ~seq:a2 in
      let b = Msg_id.make ~origin:b1 ~seq:b2 in
      let c = Msg_id.make ~origin:c1 ~seq:c2 in
      let sign x = compare x 0 in
      (* antisymmetry and transitivity samples *)
      sign (Msg_id.compare a b) = -sign (Msg_id.compare b a)
      && (not (Msg_id.compare a b <= 0 && Msg_id.compare b c <= 0)
         || Msg_id.compare a c <= 0))

(* --- stack behaviours --- *)

let test_fifo_delivery_of_atomic_broadcast () =
  (* Atomic broadcast (total order) trivially implies FIFO per origin
     because ids order by (origin, seq)... it does NOT in general — the
     decided sets can interleave seq numbers across instances.  Verify the
     actual FIFO property on a concurrent run via the checker. *)
  let config =
    { Stack.abcast_indirect with Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.4 } }
  in
  let stack =
    Test_util.run_stack config (Test_util.burst ~n:3 ~count:10 ~body_bytes:10 ~spacing:1.5)
  in
  let run = Test_util.checker_run stack in
  (* The broadcast layer below AB is plain flood: FIFO need not hold for
     rdeliveries... but A-deliveries per origin are in seq order because
     proposals are sets of already-seen ids and the linearization sorts by
     (origin, seq) within an instance.  Check adelivery FIFO directly. *)
  List.iter
    (fun p ->
      let seqs = Hashtbl.create 4 in
      List.iter
        (fun id ->
          let origin = id.Msg_id.origin in
          let last = try Hashtbl.find seqs origin with Not_found -> -1 in
          checkb "per-origin ascending" true (id.Msg_id.seq > last);
          Hashtbl.replace seqs origin id.Msg_id.seq)
        (Abcast.delivered_sequence stack.Stack.abcast p))
    [ 0; 1; 2 ];
  ignore run

let test_empty_run_is_clean () =
  let stack = Test_util.run_stack Stack.abcast_indirect [] in
  Test_util.assert_clean_verdict "empty run"
    (Ics_checker.Checker.check_all_abcast (Test_util.checker_run stack));
  checki "no deliveries" 0 (List.length (Abcast.delivered_sequence stack.Stack.abcast 0))

let test_zero_byte_payloads () =
  let stack = Test_util.run_stack Stack.abcast_indirect [ (1.0, 0, 0); (2.0, 1, 0) ] in
  checki "delivered" 2 (List.length (Abcast.delivered_sequence stack.Stack.abcast 2))

let test_large_payloads () =
  let stack = Test_util.run_stack Stack.abcast_indirect [ (1.0, 0, 1_000_000) ] in
  checki "megabyte message delivered" 1
    (List.length (Abcast.delivered_sequence stack.Stack.abcast 1))

let test_single_process_cluster () =
  (* n=1: every quorum is 1; consensus is local; the stack must still
     work. *)
  let config = { Stack.abcast_indirect with Stack.n = 1 } in
  let stack = Test_util.run_stack config [ (1.0, 0, 10); (2.0, 0, 10) ] in
  Alcotest.(check (list string)) "self-delivery in order" [ "p0#0"; "p0#1" ]
    (List.map Msg_id.to_string (Abcast.delivered_sequence stack.Stack.abcast 0))

let test_n2_tolerates_nothing () =
  (* n=2: majority is 2; one crash blocks, no crash works. *)
  let config =
    { Stack.abcast_indirect with Stack.n = 2; setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 } }
  in
  let ok = Test_util.run_stack config [ (1.0, 0, 5) ] in
  checki "n=2 works crash-free" 1 (List.length (Abcast.delivered_sequence ok.Stack.abcast 1));
  let blocked =
    Test_util.run_stack config ~crashes:[ (1, 0.5) ] [ (1.0, 0, 5) ]
  in
  checki "n=2 blocks under one crash" 0
    (List.length (Abcast.delivered_sequence blocked.Stack.abcast 0))

(* --- workload odds and ends --- *)

let test_experiment_wall_clock_advances () =
  let config = { Stack.abcast_indirect with Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 } } in
  let load = { Experiment.throughput = 50.0; body_bytes = 1; duration = 1_000.0; warmup = 200.0 } in
  let r = Experiment.run config load in
  checkb "clock advanced past duration" true (r.Experiment.wall_clock >= 1_000.0)

let test_figures_seeds_pooling () =
  let fig = Option.get (Figures.find "fig3a") in
  let tiny = { fig with Figures.axis = Figures.Throughput [ 100.0 ] } in
  let t1 = Figures.run ~quick:true ~seeds:2 tiny in
  checki "row count" 1 (List.length (Ics_prelude.Table.rows t1));
  Alcotest.check_raises "seeds < 1" (Invalid_argument "Figures.run: seeds < 1") (fun () ->
      ignore (Figures.run ~seeds:0 tiny))

let test_default_load_sane () =
  checkb "warmup < duration" true
    (Experiment.default_load.Experiment.warmup < Experiment.default_load.Experiment.duration)

(* --- determinism of the scenario under different seeds (schedule is fully
   scripted, so even the seed must not matter) --- *)

let test_scripted_scenarios_seed_independent () =
  let a = Ics_workload.Scenarios.validity_scenario Ics_workload.Scenarios.Faulty_ids in
  checki "blocked count stable" 2 (List.length a.Ics_workload.Scenarios.blocked)

let suites =
  [
    ( "sim-more",
      [
        Alcotest.test_case "run until boundary" `Quick test_run_until_exact_boundary;
        Alcotest.test_case "stop then resume" `Quick test_stop_then_resume;
        Alcotest.test_case "crash hook ordering" `Quick test_crash_hook_ordering;
        Alcotest.test_case "trace notes" `Quick test_trace_note_and_filter;
      ] );
    ( "net-more",
      [
        Alcotest.test_case "switched byte timing" `Quick test_switched_store_and_forward_bytes;
        Alcotest.test_case "message pp" `Quick test_message_wire_size_and_pp;
        Alcotest.test_case "dropped sends counted" `Quick test_transport_counts_dropped_sends;
        Alcotest.test_case "app msg pp" `Quick test_app_msg_pp;
      ] );
    ( "values-more",
      [
        QCheck_alcotest.to_alcotest qcheck_proposal_idempotent;
        QCheck_alcotest.to_alcotest qcheck_proposal_wire_monotone;
        QCheck_alcotest.to_alcotest qcheck_msg_id_order_total;
      ] );
    ( "stack-more",
      [
        Alcotest.test_case "per-origin FIFO of adeliveries" `Quick
          test_fifo_delivery_of_atomic_broadcast;
        Alcotest.test_case "empty run" `Quick test_empty_run_is_clean;
        Alcotest.test_case "zero-byte payloads" `Quick test_zero_byte_payloads;
        Alcotest.test_case "large payloads" `Quick test_large_payloads;
        Alcotest.test_case "single-process cluster" `Quick test_single_process_cluster;
        Alcotest.test_case "n=2 tolerates nothing" `Quick test_n2_tolerates_nothing;
      ] );
    ( "workload-more",
      [
        Alcotest.test_case "wall clock" `Quick test_experiment_wall_clock_advances;
        Alcotest.test_case "figures seed pooling" `Quick test_figures_seeds_pooling;
        Alcotest.test_case "default load" `Quick test_default_load_sane;
        Alcotest.test_case "scenario stability" `Quick test_scripted_scenarios_seed_independent;
      ] );
  ]
