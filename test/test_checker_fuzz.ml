(* Checker fuzzing: take a genuine clean run, corrupt its trace with a
   random mutation, and assert the checker notices.  This guards the
   guard — a checker that silently stopped detecting a violation class
   would undermine every other correctness test in this suite. *)

module Engine = Ics_sim.Engine
module Trace = Ics_sim.Trace
module Stack = Ics_core.Stack
module Checker = Ics_checker.Checker
module Rng = Ics_prelude.Rng

(* A clean reference run, produced once: 3 processes, 12 messages. *)
let reference_events =
  lazy
    (let stack =
       Test_util.run_stack
         {
           Stack.abcast_indirect with
           Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.3 };
           fd_kind = Stack.Oracle 10.0;
         }
         (Test_util.burst ~n:3 ~count:4 ~body_bytes:16 ~spacing:3.0)
     in
     Trace.events (Engine.trace stack.Stack.engine))

let rebuild events =
  let tr = Trace.create () in
  List.iter (fun (e : Trace.event) -> Trace.record tr ~time:e.time ~pid:e.pid e.kind) events;
  Checker.Run.of_trace tr ~n:3

let adeliver_indices events =
  List.filteri (fun _ _ -> true) events
  |> List.mapi (fun i (e : Trace.event) ->
         match e.kind with Trace.Adeliver _ -> Some i | _ -> None)
  |> List.filter_map Fun.id

let mutate rng events =
  let arr = Array.of_list events in
  let adelivers = adeliver_indices events in
  let pick_adeliver () = List.nth adelivers (Rng.int rng (List.length adelivers)) in
  match Rng.int rng 4 with
  | 0 ->
      (* duplicate a delivery *)
      let i = pick_adeliver () in
      ("duplicate", events @ [ arr.(i) ])
  | 1 ->
      (* drop one delivery from a (correct) process *)
      let i = pick_adeliver () in
      ("drop", List.filteri (fun j _ -> j <> i) events)
  | 2 ->
      (* ghost delivery of a never-broadcast id *)
      let i = pick_adeliver () in
      let e = arr.(i) in
      ("ghost", events @ [ { e with Trace.kind = Trace.Adeliver (Ics_sim.Msg_id.make ~origin:9 ~seq:999) } ])
  | _ ->
      (* swap two distinct deliveries at one process: breaks total order *)
      let at_p p =
        List.filter
          (fun i ->
            (arr.(i)).Trace.pid = p
            &&
            match (arr.(i)).Trace.kind with Trace.Adeliver _ -> true | _ -> false)
          adelivers
      in
      let candidates = at_p 0 in
      (match candidates with
      | i :: j :: _ ->
          let tmp = arr.(i).Trace.kind in
          arr.(i) <- { (arr.(i)) with Trace.kind = arr.(j).Trace.kind };
          arr.(j) <- { (arr.(j)) with Trace.kind = tmp };
          ("swap", Array.to_list arr)
      | _ -> ("noop-swap", events))

let qcheck_mutations_detected =
  QCheck.Test.make ~name:"any trace corruption is detected" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed + 17)) in
      let events = Lazy.force reference_events in
      let kind, mutated = mutate rng events in
      if kind = "noop-swap" then true
      else begin
        let verdict = Checker.check_all_abcast (rebuild mutated) in
        if Checker.ok verdict then
          QCheck.Test.fail_reportf "mutation %s went undetected" kind
        else true
      end)

let test_reference_is_clean () =
  let verdict = Checker.check_all_abcast (rebuild (Lazy.force reference_events)) in
  Test_util.assert_clean_verdict "reference" verdict

let suites =
  [
    ( "checker-fuzz",
      [
        Alcotest.test_case "reference clean" `Quick test_reference_is_clean;
        QCheck_alcotest.to_alcotest qcheck_mutations_detected;
      ] );
  ]
