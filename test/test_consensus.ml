(* Tests for the consensus layer: quorum arithmetic, proposals, and the CT
   and MR algorithms (original and indirect). *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Fd = Ics_fd.Failure_detector
module Quorum = Ics_consensus.Quorum
module Proposal = Ics_consensus.Proposal
module Ct = Ics_consensus.Ct
module Mr = Ics_consensus.Mr
module Lb = Ics_consensus.Lb
module Intf = Ics_consensus.Consensus_intf

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Quorums *)

let test_quorum_values () =
  checki "majority n=3" 2 (Quorum.majority ~n:3);
  checki "majority n=4" 3 (Quorum.majority ~n:4);
  checki "majority n=5" 3 (Quorum.majority ~n:5);
  checki "two-thirds n=3" 3 (Quorum.two_thirds ~n:3);
  checki "two-thirds n=4" 3 (Quorum.two_thirds ~n:4);
  checki "two-thirds n=5" 4 (Quorum.two_thirds ~n:5);
  checki "two-thirds n=7" 5 (Quorum.two_thirds ~n:7);
  checki "one-third n=5" 2 (Quorum.one_third ~n:5);
  checki "one-third n=7" 3 (Quorum.one_third ~n:7);
  checki "max faults majority n=5" 2 (Quorum.max_faults_majority ~n:5);
  checki "max faults two-thirds n=3" 0 (Quorum.max_faults_two_thirds ~n:3);
  checki "max faults two-thirds n=4" 1 (Quorum.max_faults_two_thirds ~n:4);
  checki "max faults two-thirds n=7" 2 (Quorum.max_faults_two_thirds ~n:7)

let qcheck_majority_is_majority =
  QCheck.Test.make ~name:"majority quorum exceeds half" ~count:200
    QCheck.(int_range 1 500)
    (fun n -> 2 * Quorum.majority ~n > n)

let qcheck_two_majorities_intersect =
  QCheck.Test.make ~name:"two majority quorums always intersect" ~count:200
    QCheck.(int_range 1 500)
    (fun n -> (2 * Quorum.majority ~n) - n >= 1)

let qcheck_two_thirds_overlap =
  QCheck.Test.make
    ~name:"two-thirds quorums overlap in >= f+1 processes (the Figure 2 property)"
    ~count:200
    QCheck.(int_range 2 500)
    (fun n ->
      let q = Quorum.two_thirds ~n in
      let f = Quorum.max_faults_two_thirds ~n in
      (* Overlap of two q-quorums is at least 2q - n; the indirect MR proof
         needs it to reach f + 1. *)
      (2 * q) - n >= f + 1)

let qcheck_quorum_feasible =
  QCheck.Test.make ~name:"quorums are satisfiable by the correct processes" ~count:200
    QCheck.(int_range 2 500)
    (fun n ->
      Quorum.majority ~n <= n - Quorum.max_faults_majority ~n
      && Quorum.two_thirds ~n <= n - Quorum.max_faults_two_thirds ~n)

(* Proposals *)

let mid o s = Msg_id.make ~origin:o ~seq:s

let test_proposal_normalization () =
  let p = Proposal.on_ids [ mid 1 2; mid 0 1; mid 1 2; mid 0 0 ] in
  checki "dedup" 3 (Proposal.cardinal p);
  Alcotest.(check (list string)) "sorted" [ "p0#0"; "p0#1"; "p1#2" ] (Proposal.describe p);
  checkb "equal ignores order" true
    (Proposal.equal p (Proposal.on_ids [ mid 0 0; mid 0 1; mid 1 2 ]))

let test_proposal_sizes () =
  let ids = [ mid 0 0; mid 1 1 ] in
  let on_ids = Proposal.on_ids ids in
  let msgs =
    List.map (fun id -> App_msg.make ~id ~body_bytes:1000 ~created_at:0.0 ()) ids
  in
  let on_msgs = Proposal.on_messages msgs in
  checkb "same ids" true (Proposal.equal on_ids on_msgs);
  checki "ids size independent of payload" (Ics_net.Wire.id_set_bytes 2)
    (Proposal.wire_bytes on_ids);
  checki "messages size includes payloads" (Ics_net.Wire.id_set_bytes 2 + 2000)
    (Proposal.wire_bytes on_msgs)

let test_proposal_empty () =
  checkb "empty" true (Proposal.is_empty Proposal.empty);
  checki "empty cardinal" 0 (Proposal.cardinal Proposal.empty)

(* Consensus harness: drives a consensus layer directly (no atomic
   broadcast on top). *)

type harness = {
  engine : Engine.t;
  transport : Transport.t;
  handle : Intf.handle;
  decisions : (Pid.t * int * Proposal.t) list ref;
  holds : (Pid.t * Msg_id.t, unit) Hashtbl.t;  (* payload possession for rcv *)
}

let mk ?(n = 3) ?(jitter = 0.0) ?(seed = 1L) ?fd_delay ?manual_fd ~algo ~indirect () =
  let engine = Engine.create ~seed ~n () in
  let model = Model.constant ~jitter ~delay:1.0 ~n ~seed () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let fd =
    match manual_fd with
    | Some ctl -> Fd.Control.fd ctl
    | None -> Fd.oracle engine ~detection_delay:(Option.value fd_delay ~default:20.0)
  in
  let decisions = ref [] in
  let holds = Hashtbl.create 16 in
  let rcv_fn p ids = List.for_all (fun id -> Hashtbl.mem holds (p, id)) ids in
  let rcv = if indirect then Some rcv_fn else None in
  let callbacks =
    {
      Intf.on_decide = (fun p k v -> decisions := (p, k, v) :: !decisions);
      join = (fun _ _ -> Proposal.empty);
    }
  in
  let handle =
    match algo with
    | `Ct -> Ct.create transport fd { Ct.layer = "consensus"; rcv } callbacks
    | `Mr -> Mr.create transport fd { Mr.layer = "consensus"; rcv } callbacks
    | `Lb -> Lb.create transport fd { Lb.layer = "consensus"; rcv } callbacks
  in
  { engine; transport; handle; decisions; holds }

let give h p id = Hashtbl.replace h.holds (p, id) ()

let propose_at h ~at p k prop =
  Engine.schedule h.engine ~at (fun () -> h.handle.Intf.propose p k prop)

let decisions_for h k =
  List.filter_map (fun (p, k', v) -> if k' = k then Some (p, v) else None) !(h.decisions)

let check_uniform_agreement h k ~expect_deciders =
  let decs = decisions_for h k in
  checki "all decided" expect_deciders (List.length decs);
  match decs with
  | [] -> ()
  | (_, v0) :: rest ->
      List.iter (fun (_, v) -> checkb "agreement" true (Proposal.equal v v0)) rest

(* Runs for both algorithms. *)

let test_simple_decision algo () =
  let h = mk ~algo ~indirect:false () in
  let v = Proposal.on_ids [ mid 0 0 ] in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 v) [ 0; 1; 2 ];
  Engine.run h.engine;
  check_uniform_agreement h 1 ~expect_deciders:3;
  let _, decided = List.hd (decisions_for h 1) in
  checkb "validity" true (Proposal.equal decided v)

let test_divergent_proposals algo () =
  let h = mk ~algo ~indirect:false () in
  List.iteri
    (fun i p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ mid p i ]))
    [ 0; 1; 2 ];
  Engine.run h.engine;
  let decs = decisions_for h 1 in
  checki "all decided" 3 (List.length decs);
  let _, v0 = List.hd decs in
  List.iter (fun (_, v) -> checkb "same value" true (Proposal.equal v v0)) decs;
  (* Validity: the decision is one of the proposals. *)
  checkb "decision was proposed" true
    (List.exists (fun p -> Proposal.equal v0 (Proposal.on_ids [ mid p p ])) [ 0; 1; 2 ]
    || List.exists
         (fun (p, i) -> Proposal.equal v0 (Proposal.on_ids [ mid p i ]))
         [ (0, 0); (1, 1); (2, 2) ])

let test_multiple_instances algo () =
  let h = mk ~algo ~indirect:false () in
  for k = 1 to 5 do
    let v = Proposal.on_ids [ mid 0 k ] in
    List.iter (fun p -> propose_at h ~at:(float_of_int k) p k v) [ 0; 1; 2 ]
  done;
  Engine.run h.engine;
  for k = 1 to 5 do
    check_uniform_agreement h k ~expect_deciders:3
  done

let test_join_on_message algo () =
  (* Only p0 proposes; p1/p2 are dragged in and still decide. *)
  let h = mk ~algo ~indirect:false () in
  propose_at h ~at:1.0 0 1 (Proposal.on_ids [ mid 0 0 ]);
  Engine.run h.engine;
  check_uniform_agreement h 1 ~expect_deciders:3;
  checkb "instance known everywhere" true
    (List.for_all (fun p -> h.handle.Intf.has_instance p 1) [ 0; 1; 2 ])

let test_coordinator_crash algo () =
  (* p0 is the round-1 coordinator; it crashes immediately after propose,
     before anything circulates.  The others recover via their detector. *)
  let h = mk ~algo ~indirect:false ~fd_delay:5.0 () in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ mid p 0 ])) [ 0; 1; 2 ];
  Engine.crash_at h.engine 0 ~at:1.0;
  Engine.run h.engine;
  let decs = decisions_for h 1 in
  checki "both correct decide" 2 (List.length decs);
  match decs with
  | (_, v0) :: rest ->
      List.iter (fun (_, v) -> checkb "agreement" true (Proposal.equal v v0)) rest
  | [] -> ()

let test_decide_reaches_late_crasher algo () =
  (* A process that crashes mid-run must not break the others. *)
  let h = mk ~algo ~indirect:false ~fd_delay:5.0 () in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ mid 0 0 ])) [ 0; 1; 2 ];
  Engine.crash_at h.engine 2 ~at:2.5;
  Engine.run h.engine;
  let decs = decisions_for h 1 in
  checkb "correct processes decided" true (List.length decs >= 2)

let test_indirect_waits_for_payload algo () =
  (* All three propose {id}; only p0 holds the payload initially.  The
     indirect algorithm must not decide until the payload spreads; once
     p1/p2 get it, the decision lands. *)
  let h = mk ~algo ~indirect:true () in
  let id = mid 0 0 in
  let v = Proposal.on_ids [ id ] in
  give h 0 id;
  List.iter (fun p -> propose_at h ~at:1.0 p 1 v) [ 0; 1; 2 ];
  (* Check that nothing is decided while payloads are missing... *)
  Engine.schedule h.engine ~at:40.0 (fun () ->
      checki "no premature decision" 0 (List.length !(h.decisions));
      give h 1 id;
      give h 2 id);
  Engine.run ~until:2_000.0 h.engine;
  check_uniform_agreement h 1 ~expect_deciders:3;
  let _, decided = List.hd (decisions_for h 1) in
  checkb "decided the payload-backed value" true (Proposal.equal decided v)

let test_indirect_empty_proposal_trivial algo () =
  (* rcv(∅) is vacuously true: indirect consensus on empty sets decides. *)
  let h = mk ~algo ~indirect:true () in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 Proposal.empty) [ 0; 1; 2 ];
  Engine.run h.engine;
  check_uniform_agreement h 1 ~expect_deciders:3

(* CT-specific *)

let test_ct_indirect_tolerates_minority_crash () =
  (* n=3, f=1: CT-indirect keeps the original resilience (the paper's
     point in §3.2).  p2 holds nothing and crashes; p0/p1 hold the payload
     and decide. *)
  let h = mk ~algo:`Ct ~indirect:true ~fd_delay:5.0 () in
  let id = mid 0 0 in
  let v = Proposal.on_ids [ id ] in
  give h 0 id;
  give h 1 id;
  List.iter (fun p -> propose_at h ~at:1.0 p 1 v) [ 0; 1 ];
  Engine.crash_at h.engine 2 ~at:0.5;
  Engine.run ~until:2_000.0 h.engine;
  let decs = decisions_for h 1 in
  checki "two deciders" 2 (List.length decs)

let test_ct_no_decision_without_majority () =
  (* With 2 of 3 crashed, CT must block (f < n/2 violated) — and must not
     decide wrongly. *)
  let h = mk ~algo:`Ct ~indirect:false ~fd_delay:5.0 () in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ mid p 0 ])) [ 0; 1; 2 ];
  Engine.crash_at h.engine 1 ~at:0.1;
  Engine.crash_at h.engine 2 ~at:0.1;
  Engine.run ~until:500.0 h.engine;
  checki "blocked, no decision" 0 (List.length !(h.decisions))

(* MR-specific: the resilience drop of the indirect variant. *)

let test_mr_indirect_blocks_at_f1_n3 () =
  (* n=3 indirect MR needs ⌈7/3⌉=3 relays per round: a single crash stops
     progress — the f < n/3 resilience loss of §3.3.3 made concrete. *)
  let h = mk ~algo:`Mr ~indirect:true ~fd_delay:5.0 () in
  let id = mid 0 0 in
  List.iter (fun p -> give h p id) [ 0; 1; 2 ];
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ id ])) [ 0; 1; 2 ];
  Engine.crash_at h.engine 2 ~at:0.1;
  Engine.run ~until:500.0 ~max_events:200_000 h.engine;
  checki "blocked with one crash at n=3" 0 (List.length !(h.decisions))

let test_mr_original_survives_f1_n3 () =
  (* Same schedule, original MR (majority quorums): decides fine. *)
  let h = mk ~algo:`Mr ~indirect:false ~fd_delay:5.0 () in
  let id = mid 0 0 in
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ id ])) [ 0; 1; 2 ];
  Engine.crash_at h.engine 2 ~at:0.1;
  Engine.run ~until:500.0 h.engine;
  checki "two deciders" 2 (List.length (decisions_for h 1))

let test_mr_indirect_tolerates_f1_n4 () =
  (* n=4: ⌈9/3⌉=3 relays per round, so one crash is fine. *)
  let h = mk ~n:4 ~algo:`Mr ~indirect:true ~fd_delay:5.0 () in
  let id = mid 0 0 in
  List.iter (fun p -> give h p id) [ 0; 1; 2; 3 ];
  List.iter (fun p -> propose_at h ~at:1.0 p 1 (Proposal.on_ids [ id ])) [ 0; 1; 2; 3 ];
  Engine.crash_at h.engine 3 ~at:0.1;
  Engine.run ~until:2_000.0 h.engine;
  checki "three deciders" 3 (List.length (decisions_for h 1))

let test_mr_two_step_decision () =
  (* In a suspicion-free round MR decides within two communication steps:
     coordinator relay (1 step) + everyone's phase-2 relay (1 step). *)
  let h = mk ~algo:`Mr ~indirect:false () in
  let v = Proposal.on_ids [ mid 0 0 ] in
  List.iter (fun p -> propose_at h ~at:0.0 p 1 v) [ 0; 1; 2 ];
  Engine.schedule h.engine ~at:2.5 (fun () ->
      checkb "decided within 2 steps + epsilon" true (List.length !(h.decisions) >= 1));
  Engine.run h.engine;
  check_uniform_agreement h 1 ~expect_deciders:3

(* Determinism: identical seeds give identical decision transcripts. *)

let transcript algo seed =
  let h = mk ~algo ~indirect:false ~seed ~jitter:0.5 () in
  List.iteri
    (fun i p -> propose_at h ~at:(1.0 +. (0.3 *. float_of_int i)) p 1 (Proposal.on_ids [ mid p 0 ]))
    [ 0; 1; 2 ];
  Engine.run h.engine;
  List.map
    (fun (p, k, v) -> Printf.sprintf "%d/%d/%s" p k (String.concat "," (Proposal.describe v)))
    !(h.decisions)

let test_determinism algo () =
  Alcotest.(check (list string)) "same seed, same transcript" (transcript algo 42L)
    (transcript algo 42L);
  checkb "transcripts non-empty" true (transcript algo 42L <> [])

let both name f = [
  Alcotest.test_case ("ct: " ^ name) `Quick (f `Ct);
  Alcotest.test_case ("mr: " ^ name) `Quick (f `Mr);
  Alcotest.test_case ("lb: " ^ name) `Quick (f `Lb);
]

let suites =
  [
    ( "quorum",
      [
        Alcotest.test_case "known values" `Quick test_quorum_values;
        QCheck_alcotest.to_alcotest qcheck_majority_is_majority;
        QCheck_alcotest.to_alcotest qcheck_two_majorities_intersect;
        QCheck_alcotest.to_alcotest qcheck_two_thirds_overlap;
        QCheck_alcotest.to_alcotest qcheck_quorum_feasible;
      ] );
    ( "proposal",
      [
        Alcotest.test_case "normalization" `Quick test_proposal_normalization;
        Alcotest.test_case "wire sizes" `Quick test_proposal_sizes;
        Alcotest.test_case "empty" `Quick test_proposal_empty;
      ] );
    ( "consensus-common",
      List.concat
        [
          both "simple decision" test_simple_decision;
          both "divergent proposals" test_divergent_proposals;
          both "multiple instances" test_multiple_instances;
          both "join on message" test_join_on_message;
          both "coordinator crash" test_coordinator_crash;
          both "late crasher" test_decide_reaches_late_crasher;
          both "indirect waits for payload" test_indirect_waits_for_payload;
          both "indirect empty proposal" test_indirect_empty_proposal_trivial;
          both "determinism" test_determinism;
        ] );
    ( "ct",
      [
        Alcotest.test_case "indirect keeps f<n/2" `Quick test_ct_indirect_tolerates_minority_crash;
        Alcotest.test_case "blocks without majority" `Quick test_ct_no_decision_without_majority;
      ] );
    ( "mr",
      [
        Alcotest.test_case "indirect blocks at f=1, n=3" `Quick test_mr_indirect_blocks_at_f1_n3;
        Alcotest.test_case "original survives f=1, n=3" `Quick test_mr_original_survives_f1_n3;
        Alcotest.test_case "indirect tolerates f=1, n=4" `Quick test_mr_indirect_tolerates_f1_n4;
        Alcotest.test_case "two-step decision" `Quick test_mr_two_step_decision;
      ] );
  ]
