(* Tests for summary statistics, histograms and table rendering. *)

module Stats = Ics_prelude.Stats
module Histogram = Ics_prelude.Histogram
module Table = Ics_prelude.Table

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checkfa msg ~eps a b = Alcotest.(check (float eps)) msg a b

let test_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "count" 0 s.Stats.count;
  checkb "mean NaN" true (Float.is_nan s.Stats.mean)

let test_single () =
  let s = Stats.summarize [ 4.2 ] in
  Alcotest.(check int) "count" 1 s.Stats.count;
  checkf "mean" 4.2 s.Stats.mean;
  checkf "stddev" 0.0 s.Stats.stddev;
  checkf "p50" 4.2 s.Stats.p50;
  checkf "min=max" s.Stats.min s.Stats.max

let test_known_values () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  checkf "mean" 5.0 s.Stats.mean;
  (* Sample stddev with n-1 denominator: sqrt(32/7). *)
  checkfa "stddev" ~eps:1e-9 (sqrt (32.0 /. 7.0)) s.Stats.stddev;
  checkf "min" 2.0 s.Stats.min;
  checkf "max" 9.0 s.Stats.max

let test_percentile_interpolation () =
  let sorted = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "p0" 10.0 (Stats.percentile sorted 0.0);
  checkf "p100" 40.0 (Stats.percentile sorted 1.0);
  checkf "p50 interpolated" 25.0 (Stats.percentile sorted 0.5);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 0.5))

let test_mean () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkb "empty mean NaN" true (Float.is_nan (Stats.mean []))

let test_acc_matches_batch () =
  let data = List.init 1000 (fun i -> Float.of_int ((i * 7919) mod 100) /. 3.0) in
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) data;
  let s = Stats.summarize data in
  checkfa "mean" ~eps:1e-9 s.Stats.mean (Stats.Acc.mean acc);
  checkfa "stddev" ~eps:1e-9 s.Stats.stddev (Stats.Acc.stddev acc);
  checkf "min" s.Stats.min (Stats.Acc.min acc);
  checkf "max" s.Stats.max (Stats.Acc.max acc);
  Alcotest.(check int) "count" s.Stats.count (Stats.Acc.count acc)

let test_nan_rejected () =
  Alcotest.check_raises "summarize_array NaN"
    (Invalid_argument "Stats.summarize_array: NaN sample") (fun () ->
      ignore (Stats.summarize_array [| 1.0; Float.nan; 2.0 |]));
  let s = Stats.Samples.create () in
  Alcotest.check_raises "Samples.add NaN"
    (Invalid_argument "Stats.Samples.add: NaN sample") (fun () ->
      Stats.Samples.add s Float.nan)

let test_samples_matches_list () =
  (* The unboxed buffer must summarize identically to the list path,
     including across internal growth (capacity 2 forces doubling). *)
  let data = List.init 999 (fun i -> Float.of_int ((i * 131) mod 577) /. 7.0) in
  let s = Stats.Samples.create ~capacity:2 () in
  List.iter (Stats.Samples.add s) data;
  Alcotest.(check int) "length" 999 (Stats.Samples.length s);
  let a = Stats.Samples.summarize s in
  let b = Stats.summarize data in
  checkf "mean" b.Stats.mean a.Stats.mean;
  checkf "stddev" b.Stats.stddev a.Stats.stddev;
  checkf "p50" b.Stats.p50 a.Stats.p50;
  checkf "p99" b.Stats.p99 a.Stats.p99;
  checkf "min" b.Stats.min a.Stats.min;
  checkf "max" b.Stats.max a.Stats.max;
  Alcotest.(check int) "to_array order" 999
    (Array.length (Stats.Samples.to_array s))

let test_negative_zero_sort () =
  (* Array.sort compare on floats mis-sorts -0.0 vs 0.0 boxes; Float.compare
     orders them consistently and the summary must not care. *)
  let s = Stats.summarize_array [| 0.0; -0.0; 1.0 |] in
  checkf "min" 0.0 s.Stats.min;
  checkf "max" 1.0 s.Stats.max

let test_ci_shrinks () =
  let narrow = Stats.summarize (List.init 1000 (fun i -> Float.of_int (i mod 10))) in
  let wide = Stats.summarize (List.init 10 (fun i -> Float.of_int i)) in
  checkb "more samples, tighter CI" true
    (narrow.Stats.ci95_half_width < wide.Stats.ci95_half_width)

let qcheck_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun l ->
      let s = Stats.summarize l in
      s.Stats.mean >= s.Stats.min -. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let qcheck_percentiles_monotone =
  QCheck.Test.make ~name:"p50 <= p90 <= p99" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1000.0))
    (fun l ->
      let s = Stats.summarize l in
      s.Stats.p50 <= s.Stats.p90 +. 1e-9 && s.Stats.p90 <= s.Stats.p99 +. 1e-9)

let qcheck_stddev_nonneg =
  QCheck.Test.make ~name:"stddev >= 0" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 60) (float_bound_inclusive 100.0))
    (fun l -> (Stats.summarize l).Stats.stddev >= 0.0)

(* Histogram *)

let test_histogram_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.9; 9.99 ];
  Alcotest.(check int) "bucket 0" 1 (Histogram.bucket h 0);
  Alcotest.(check int) "bucket 1" 2 (Histogram.bucket h 1);
  Alcotest.(check int) "bucket 9" 1 (Histogram.bucket h 9);
  Alcotest.(check int) "count" 4 (Histogram.count h)

let test_histogram_overflow () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:4 in
  Histogram.add h (-0.1);
  Histogram.add h 1.0;
  Histogram.add h 100.0;
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "count includes both" 3 (Histogram.count h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:2.0 ~hi:4.0 ~buckets:4 in
  let lo, hi = Histogram.bucket_bounds h 1 in
  checkf "bucket lo" 2.5 lo;
  checkf "bucket hi" 3.0 hi;
  Alcotest.check_raises "bad params" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~buckets:3))

(* Table *)

let test_table_rows () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_float_row t [ 1.5; 2.25 ];
  Alcotest.(check (list (list string))) "rows" [ [ "1"; "2" ]; [ "1.500"; "2.250" ] ]
    (Table.rows t);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "x"; "note" ] in
  Table.add_row t [ "1"; "plain" ];
  Table.add_row t [ "2"; "with,comma" ];
  Table.add_row t [ "3"; "with\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv"
    "x,note\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n" csv

let test_table_pp_contains () =
  let t = Table.create ~title:"demo" ~columns:[ "col" ] in
  Table.add_row t [ "val" ];
  let s = Format.asprintf "%a" Table.pp t in
  checkb "has title" true (Test_util.contains s "demo" && Test_util.contains s "val")

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "single" `Quick test_single;
        Alcotest.test_case "known values" `Quick test_known_values;
        Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "acc matches batch" `Quick test_acc_matches_batch;
        Alcotest.test_case "ci shrinks" `Quick test_ci_shrinks;
        Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
        Alcotest.test_case "samples buffer matches list" `Quick test_samples_matches_list;
        Alcotest.test_case "negative zero" `Quick test_negative_zero_sort;
        QCheck_alcotest.to_alcotest qcheck_mean_bounded;
        QCheck_alcotest.to_alcotest qcheck_percentiles_monotone;
        QCheck_alcotest.to_alcotest qcheck_stddev_nonneg;
      ] );
    ( "histogram",
      [
        Alcotest.test_case "buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "overflow" `Quick test_histogram_overflow;
        Alcotest.test_case "bounds" `Quick test_histogram_bounds;
      ] );
    ( "table",
      [
        Alcotest.test_case "rows" `Quick test_table_rows;
        Alcotest.test_case "csv escaping" `Quick test_table_csv;
        Alcotest.test_case "pretty printing" `Quick test_table_pp_contains;
      ] );
  ]
