(* Tests for the failure detectors. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Model = Ics_net.Model
module Host = Ics_net.Host
module Transport = Ics_net.Transport
module Fd = Ics_fd.Failure_detector

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_oracle_detects_after_delay () =
  let e = Engine.create ~n:3 () in
  let fd = Fd.oracle e ~detection_delay:10.0 in
  Engine.crash_at e 1 ~at:5.0;
  Engine.schedule e ~at:14.0 (fun () ->
      checkb "not yet" false (Fd.is_suspected fd ~by:0 1));
  Engine.schedule e ~at:16.0 (fun () ->
      checkb "suspected at p0" true (Fd.is_suspected fd ~by:0 1);
      checkb "suspected at p2" true (Fd.is_suspected fd ~by:2 1));
  Engine.run e;
  checkb "no false suspicion" false (Fd.is_suspected fd ~by:0 2)

let test_oracle_callbacks () =
  let e = Engine.create ~n:3 () in
  let fd = Fd.oracle e ~detection_delay:1.0 in
  let seen = ref [] in
  Fd.on_suspect fd ~observer:0 (fun q -> seen := q :: !seen);
  Engine.crash_at e 2 ~at:1.0;
  Engine.run e;
  Alcotest.(check (list int)) "callback" [ 2 ] !seen

let test_oracle_dead_observer_silent () =
  let e = Engine.create ~n:3 () in
  let fd = Fd.oracle e ~detection_delay:1.0 in
  let seen = ref 0 in
  Fd.on_suspect fd ~observer:0 (fun _ -> incr seen);
  Engine.crash_at e 0 ~at:0.5;
  Engine.crash_at e 1 ~at:1.0;
  Engine.run e;
  checki "dead observers learn nothing" 0 !seen

let mk_transport n =
  let e = Engine.create ~n () in
  let model = Model.constant ~delay:1.0 ~n ~seed:1L () in
  (e, Transport.create e ~model ~host:Host.instant)

let test_heartbeat_good_run_no_suspicion () =
  let e, tr = mk_transport 3 in
  let fd = Fd.heartbeat tr ~period:10.0 ~timeout:50.0 in
  Engine.run ~until:500.0 e;
  List.iter
    (fun p ->
      List.iter
        (fun q -> checkb "no suspicion in good run" false (Fd.is_suspected fd ~by:p q))
        (Pid.others ~n:3 p))
    (Pid.all ~n:3)

let test_heartbeat_detects_crash () =
  let e, tr = mk_transport 3 in
  let fd = Fd.heartbeat tr ~period:10.0 ~timeout:50.0 in
  Engine.crash_at e 2 ~at:100.0;
  Engine.run ~until:400.0 e;
  checkb "p0 suspects p2" true (Fd.is_suspected fd ~by:0 2);
  checkb "p1 suspects p2" true (Fd.is_suspected fd ~by:1 2);
  checkb "p0 trusts p1" false (Fd.is_suspected fd ~by:0 1)

let test_heartbeat_trust_restored () =
  (* A transient network outage causes a false suspicion; the next
     heartbeat restores trust — the detector is only eventually accurate,
     which is exactly what makes it a ◇S and not a P. *)
  let e = Engine.create ~n:2 () in
  let outage (msg : Ics_net.Message.t) =
    if Ics_net.Message.layer_name msg = "fd" && msg.sent_at > 100.0 && msg.sent_at < 200.0 then
      Model.Drop
    else Model.Pass
  in
  let model =
    Model.scripted ~base:(Model.constant ~delay:1.0 ~n:2 ~seed:1L ()) ~rule:outage
  in
  let tr = Transport.create e ~model ~host:Host.instant in
  let fd = Fd.heartbeat tr ~period:10.0 ~timeout:40.0 in
  let suspected_during_outage = ref false in
  Engine.schedule e ~at:199.0 (fun () ->
      suspected_during_outage := Fd.is_suspected fd ~by:0 1);
  Engine.run ~until:400.0 e;
  checkb "false suspicion during outage" true !suspected_during_outage;
  checkb "trust restored" false (Fd.is_suspected fd ~by:0 1)

let test_heartbeat_records_trace () =
  let e, tr = mk_transport 2 in
  ignore (Fd.heartbeat tr ~period:10.0 ~timeout:30.0);
  Engine.crash_at e 1 ~at:50.0;
  Engine.run ~until:300.0 e;
  let suspects =
    Trace.filter (Engine.trace e) (fun ev ->
        match ev.Trace.kind with Trace.Suspect 1 -> true | _ -> false)
  in
  checki "suspicion traced" 1 (List.length suspects)

let test_heartbeat_validation () =
  let _, tr = mk_transport 2 in
  Alcotest.check_raises "timeout <= period"
    (Invalid_argument "Failure_detector.heartbeat: timeout <= period") (fun () ->
      ignore (Fd.heartbeat tr ~period:10.0 ~timeout:10.0))

let test_heartbeat_quiesces_at_horizon () =
  (* The heartbeat loop is self-rearming; without the horizon check it
     keeps the queue non-empty forever and this second, horizon-less
     [run] would never return. *)
  let e, tr = mk_transport 3 in
  ignore (Fd.heartbeat tr ~period:10.0 ~timeout:50.0);
  Engine.run ~until:400.0 e;
  (* Frames emitted right at the horizon may still be in flight; what must
     NOT remain is a self-rearming timer.  The horizon-less run drains the
     in-flight leftovers and returns — with the rescheduling bug it would
     never terminate. *)
  checkb "only in-flight frames remain" true (Engine.pending e <= 6);
  Engine.run e;
  checki "queue fully drained" 0 (Engine.pending e)

let test_heartbeat_stop_quiesces_without_horizon () =
  let e, tr = mk_transport 2 in
  let fd = Fd.heartbeat tr ~period:10.0 ~timeout:50.0 in
  Engine.schedule e ~at:55.0 (fun () -> Fd.stop fd);
  (* No horizon at all: only [stop] lets this run terminate. *)
  Engine.run e;
  checki "queue drained after stop" 0 (Engine.pending e);
  checkb "clock stopped shortly after stop" true (Engine.now e < 200.0)

let test_manual_control () =
  let e = Engine.create ~n:3 () in
  let ctl = Fd.manual e in
  let fd = Fd.Control.fd ctl in
  let events = ref [] in
  Fd.on_suspect fd ~observer:1 (fun q -> events := `S q :: !events);
  Fd.on_trust fd ~observer:1 (fun q -> events := `T q :: !events);
  checkb "initially trusting" false (Fd.is_suspected fd ~by:1 0);
  Fd.Control.suspect ctl ~observer:1 0;
  checkb "suspected" true (Fd.is_suspected fd ~by:1 0);
  Fd.Control.suspect ctl ~observer:1 0;
  (* idempotent *)
  Fd.Control.trust ctl ~observer:1 0;
  checkb "trusted again" false (Fd.is_suspected fd ~by:1 0);
  Alcotest.(check int) "exactly two events" 2 (List.length !events)

let test_manual_suspect_everywhere () =
  let e = Engine.create ~n:4 () in
  let ctl = Fd.manual e in
  let fd = Fd.Control.fd ctl in
  Fd.Control.suspect_everywhere ctl 2;
  List.iter
    (fun p ->
      if p <> 2 then checkb "everyone suspects p2" true (Fd.is_suspected fd ~by:p 2))
    (Pid.all ~n:4);
  checkb "no self suspicion" false (Fd.is_suspected fd ~by:2 2)

let suites =
  [
    ( "failure-detector",
      [
        Alcotest.test_case "oracle detects after delay" `Quick test_oracle_detects_after_delay;
        Alcotest.test_case "oracle callbacks" `Quick test_oracle_callbacks;
        Alcotest.test_case "oracle dead observer" `Quick test_oracle_dead_observer_silent;
        Alcotest.test_case "heartbeat good run" `Quick test_heartbeat_good_run_no_suspicion;
        Alcotest.test_case "heartbeat detects crash" `Quick test_heartbeat_detects_crash;
        Alcotest.test_case "heartbeat trust restored" `Quick test_heartbeat_trust_restored;
        Alcotest.test_case "heartbeat traces" `Quick test_heartbeat_records_trace;
        Alcotest.test_case "heartbeat validation" `Quick test_heartbeat_validation;
        Alcotest.test_case "heartbeat quiesces at horizon" `Quick
          test_heartbeat_quiesces_at_horizon;
        Alcotest.test_case "heartbeat stop quiesces" `Quick
          test_heartbeat_stop_quiesces_without_horizon;
        Alcotest.test_case "manual control" `Quick test_manual_control;
        Alcotest.test_case "manual suspect everywhere" `Quick test_manual_suspect_everywhere;
      ] );
  ]
