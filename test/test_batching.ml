(* Tests for batched/pipelined proposals and ring dissemination: the
   batch=1/pipeline=1 default must reproduce the pre-batching chaos runs
   bit-identically, batched cells must stay checker-green under every
   fault plan, the flush timer must drain sub-batch residues (including
   at the horizon, lint rule P2's discipline), and the batched sim cell
   must replay deterministically. *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker
module Chaos = Ics_workload.Chaos
module Saturation = Ics_workload.Saturation
module Profile = Ics_core.Profile

let checkb = Alcotest.(check bool)

let ideal = Stack.Ideal_lan { delay = 1.0; jitter = 0.2 }

let batched = { Abcast.batch = 4; pipeline = 2; flush_ms = 2.0 }

(* The same six digests test_codec pins for the default path, reproduced
   here through the batching plumbing with batch=1/pipeline=1 passed
   explicitly: proposing-on-arrival with no cap and no timer is not a
   separate code path that happens to agree — it is what the batched
   reduction degenerates to, and these pins hold it there. *)
let test_batch1_pins_bit_identical () =
  List.iter
    (fun (stack, plan, seed, expect) ->
      let r = Chaos.run_one ~batching:Abcast.no_batching stack plan ~seed in
      Alcotest.(check string)
        (Printf.sprintf "batch=1 %s/%s seed %Ld" (Chaos.stack_name stack)
           (Chaos.plan_name plan) seed)
        expect r.Chaos.fingerprint)
    [
      (Chaos.Ct_indirect, Chaos.Drop, 2L, "4bc2be962988606fdb1a205603e94b6f");
      (Chaos.Mr_indirect, Chaos.Mixed, 3L, "5bf49b603b81d4a736cde9f542e0cbf4");
      (Chaos.Ct_on_ids, Chaos.Blackout, 3L, "ba6b16163d0633fd02094d279e19b791");
      (Chaos.Ct_indirect, Chaos.Storm, 2L, "cd0bfcdb222f78733f3e27f88f42f901");
      (Chaos.Mr_indirect, Chaos.Storm, 3L, "b43209c3383be52b63b97e27f559bbfc");
      (Chaos.Ct_on_ids, Chaos.Storm, 2L, "3f4de219553dd1fe849368cfe728120f");
    ]

(* Batching on top of faults: the chaos cells that exercise drops, churn
   and suspicion storms must stay green when several ids ride one
   instance and several instances run concurrently. *)
let test_batched_chaos_green () =
  List.iter
    (fun (stack, plan, seed) ->
      let r = Chaos.run_one ~batching:batched stack plan ~seed in
      checkb
        (Printf.sprintf "batched %s/%s seed %Ld" (Chaos.stack_name stack)
           (Chaos.plan_name plan) seed)
        true (Chaos.passed r))
    [
      (Chaos.Ct_indirect, Chaos.Drop, 2L);
      (Chaos.Ct_indirect, Chaos.Storm, 5L);
      (Chaos.Mr_indirect, Chaos.Mixed, 3L);
      (Chaos.Mr_indirect, Chaos.Storm, 7L);
    ]

(* Two runs of the batched/pipelined/ring saturation cell must produce
   bit-identical traces — determinism does not stop at batch=1. *)
let test_batched_replay_deterministic () =
  match
    Saturation.replay_check ~offered:200.0 ~duration_ms:400.0 ~n:3
      ~batching:batched ~broadcast:Profile.Ring ()
  with
  | Ok _ -> ()
  | Error (a, b) -> Alcotest.failf "batched sim replay diverged: %s vs %s" a b

let delivered stack p = Abcast.delivered_sequence stack.Stack.abcast p

(* Fewer arrivals than [batch]: only the flush timer can open the
   instance, so delivery happening at all is the timer working; the
   checker battery then holds the result to the usual standard. *)
let test_flush_timer_drains_residue () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = ideal;
      fd_kind = Stack.Oracle 10.0;
      batching = { Abcast.batch = 64; pipeline = 2; flush_ms = 5.0 };
    }
  in
  let stack =
    Test_util.run_stack config [ (1.0, 0, 16); (1.5, 1, 16); (2.0, 2, 16) ]
  in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d delivered" p)
        3
        (List.length (delivered stack p)))
    [ 0; 1; 2 ];
  Test_util.assert_clean_verdict "flush residue"
    (Checker.check_all_abcast (Test_util.checker_run stack))

(* Arrivals just before the run's horizon, with a flush period that would
   fire past it: the timer must not park them — lint rule P2's deadline
   discipline says flush now instead — so the run still drains. *)
let test_flush_honors_horizon () =
  let horizon = 2_000.0 in
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = ideal;
      fd_kind = Stack.Oracle 10.0;
      batching = { Abcast.batch = 64; pipeline = 2; flush_ms = 500.0 };
    }
  in
  let stack =
    Test_util.run_stack ~horizon config
      [ (horizon -. 30.0, 0, 16); (horizon -. 29.0, 1, 16) ]
  in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d delivered" p)
        2
        (List.length (delivered stack p)))
    [ 0; 1; 2 ]

(* Ring dissemination under batching: payloads travel successor to
   successor while ids ride batched pipelined instances, and the full
   battery (incl. strict no-loss) holds. *)
let test_ring_batched_delivers () =
  let config =
    {
      Stack.abcast_indirect with
      Stack.setup = ideal;
      fd_kind = Stack.Oracle 10.0;
      broadcast = Stack.Ring;
      batching = batched;
    }
  in
  let stack =
    Test_util.run_stack config (Test_util.burst ~n:3 ~count:5 ~body_bytes:20 ~spacing:3.0)
  in
  let seq p = List.map Ics_net.Msg_id.to_string (delivered stack p) in
  Alcotest.(check int) "all delivered" 15 (List.length (seq 0));
  List.iter
    (fun p -> Alcotest.(check (list string)) "same order" (seq 0) (seq p))
    [ 1; 2 ];
  Test_util.assert_clean_verdict "ring batched"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let suites =
  [
    ( "batching",
      [
        Alcotest.test_case "batch=1 pins bit-identical" `Quick
          test_batch1_pins_bit_identical;
        Alcotest.test_case "batched chaos cells green" `Quick test_batched_chaos_green;
        Alcotest.test_case "batched replay deterministic" `Quick
          test_batched_replay_deterministic;
        Alcotest.test_case "flush timer drains residue" `Quick
          test_flush_timer_drains_residue;
        Alcotest.test_case "flush honors horizon" `Quick test_flush_honors_horizon;
        Alcotest.test_case "ring + batching delivers" `Quick test_ring_batched_delivers;
      ] );
  ]
