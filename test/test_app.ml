(* Tests for the application layer (lib/app), its hosting glue
   (App_host), the closed-loop service workload, the chaos app-on-top
   axis, and the PR's satellite guarantees (profile flag round-trips,
   Bq capacity decay, empty-sample latency digests, stable trace
   merge). *)

module Cmd = Ics_app.Cmd
module Machine = Ics_app.Machine
module Profile = Ics_core.Profile
module Checker = Ics_checker.Checker
module Cluster = Ics_runtime.Cluster
module Trace_io = Ics_runtime.Trace_io
module Bq = Ics_runtime.Socket_transport.Bq
module Trace = Ics_sim.Trace
module Service = Ics_workload.Service
module Chaos = Ics_workload.Chaos
module Stats = Ics_prelude.Stats

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Command derivation.                                                *)
(* ------------------------------------------------------------------ *)

let test_cmd_pack_roundtrip () =
  List.iter
    (fun (client, req) ->
      match Cmd.unpack (Cmd.pack ~client ~req) with
      | Some (c, r) ->
          checki "client" client c;
          checki "req" req r
      | None -> Alcotest.fail "packed blob unpacked to None")
    [ (0, 0); (1, 0); (0, 1); (41_999, 7); (0xFFFF, 0xFFFFF) ];
  checkb "zero blob is the non-app marker" true (Cmd.unpack 0L = None);
  checkb "client 0 req 0 packs non-zero" true (Cmd.pack ~client:0 ~req:0 <> 0L)

let test_cmd_derivation_deterministic () =
  let seed = 42L in
  for client = 0 to 5 do
    for req = 0 to 9 do
      let a = Cmd.kind_of seed ~nclients:6 ~client ~req in
      let b = Cmd.kind_of seed ~nclients:6 ~client ~req in
      checkb "kind stable" true (a = b);
      checki "value stable"
        (Cmd.val_of seed ~client ~req)
        (Cmd.val_of seed ~client ~req);
      if req = 0 then checkb "req 0 is Create" true (a = Cmd.Create)
    done
  done

(* ------------------------------------------------------------------ *)
(* State machine: exactly-once, probes, conservation, hashing.        *)
(* ------------------------------------------------------------------ *)

let machine ?(nclients = 8) ?(seed = 42L) () =
  let violations = ref [] in
  let m =
    Machine.create ~emit:(fun s -> violations := s :: !violations) ~nclients
      ~seed ()
  in
  (m, violations)

let test_machine_dedup_and_order () =
  let m, violations = machine () in
  checkb "first apply" true (Machine.apply m ~client:0 ~req:0 = Machine.Applied);
  checkb "retry is a duplicate" true
    (Machine.apply m ~client:0 ~req:0 = Machine.Duplicate);
  checki "cursor counts distinct commands" 1 (Machine.cursor m);
  checki "duplicate counted" 1 (Machine.duplicates m);
  checkb "no violation from a dup" true (!violations = []);
  (* A same-client gap (req 2 before req 1) means the broadcast lost an
     ordered command: rejected, and the probe fires. *)
  checkb "gap rejected" true
    (Machine.apply m ~client:0 ~req:2 = Machine.Rejected);
  checkb "gap emits a violation" true (!violations <> []);
  checki "rejected does not advance the cursor" 1 (Machine.cursor m)

let test_machine_deterministic_hash () =
  let stream =
    List.concat_map
      (fun req -> List.init 8 (fun client -> (client, req)))
      [ 0; 1; 2; 3 ]
  in
  let a, _ = machine () in
  let b, _ = machine () in
  List.iter
    (fun (client, req) ->
      ignore (Machine.apply a ~client ~req);
      ignore (Machine.apply b ~client ~req))
    stream;
  checkb "same stream, same hash" true
    (Int64.equal (Machine.hash a) (Machine.hash b));
  checki "no violations" 0 (Machine.violations a);
  (* A different interleaving of *different clients'* commands commutes:
     the final state hash is the same. *)
  let c, _ = machine () in
  List.iter
    (fun (client, req) -> ignore (Machine.apply c ~client ~req))
    (List.concat_map (fun client -> List.init 4 (fun req -> (client, req)))
       (List.init 8 (fun i -> 7 - i)));
  checkb "cross-client reorder commutes" true
    (Int64.equal (Machine.hash a) (Machine.hash c))

let test_machine_conservation () =
  let m, violations = machine ~nclients:4 () in
  for req = 0 to 7 do
    for client = 0 to 3 do
      ignore (Machine.apply m ~client ~req)
    done
  done;
  (* hash () recomputes the balance sum and fires the conservation probe
     on any disagreement with the incremental sum. *)
  ignore (Machine.hash m);
  checkb "no probe fired" true (!violations = []);
  let total =
    List.fold_left
      (fun acc client -> acc + Machine.balance m ~client)
      0 [ 0; 1; 2; 3 ]
  in
  checki "funds conserved" (4 * Machine.grant) total

(* ------------------------------------------------------------------ *)
(* Closed-loop service on the simulator.                              *)
(* ------------------------------------------------------------------ *)

let test_sim_service_point () =
  let p = Service.sim_point ~seed:3L ~n:3 ~clients:24 ~requests:3 () in
  checkb "checker green (abcast + app battery)" true p.Service.checker_ok;
  checkb "all sessions completed, all replicas caught up" true p.Service.clean;
  checki "workload size" 72 p.Service.commands;
  (match p.Service.hash with
  | Some (cursor, _) -> checki "final cursor covers the workload" 72 cursor
  | None -> Alcotest.fail "no state hash recorded");
  checki "one client-visible sample per command" 72
    p.Service.latency.Stats.count;
  checkb "median latency positive" true (p.Service.latency.Stats.p50 > 0.0)

let test_sim_service_hash_stable () =
  let p1 = Service.sim_point ~seed:9L ~n:3 ~clients:12 ~requests:4 () in
  let p2 = Service.sim_point ~seed:9L ~n:3 ~clients:12 ~requests:4 () in
  checkb "same seed, same final hash" true (Service.hash_match p1 p2);
  let p3 = Service.sim_point ~seed:9L ~n:5 ~clients:12 ~requests:4 () in
  checkb "different n still converges to the same state" true
    (match (p1.Service.hash, p3.Service.hash) with
    | Some (_, h1), Some (_, h3) -> Int64.equal h1 h3
    | _ -> false)

let test_sim_service_replay () =
  match Service.replay_check ~n:3 ~clients:12 ~requests:3 () with
  | Ok _ -> ()
  | Error (a, b) ->
      Alcotest.failf "service sim replay diverged: %s then %s" a b

(* ------------------------------------------------------------------ *)
(* Chaos app-on-top axis.                                             *)
(* ------------------------------------------------------------------ *)

let has_property v property =
  List.exists
    (fun (x : Checker.violation) -> x.Checker.property = property)
    v.Checker.violations

let test_chaos_app_indirect_blackout_green () =
  let r =
    Chaos.run_one ~app:true Chaos.Ct_indirect Chaos.Blackout ~seed:1L
  in
  checkb "indirect stack stays green with the app hosted" true
    (Chaos.passed r);
  checkb "app battery actually ran" true
    (List.mem "app.hash-agreement" r.Chaos.verdict.Checker.checked)

let test_chaos_app_on_ids_blackout_semantic () =
  let r = Chaos.run_one ~app:true Chaos.Ct_on_ids Chaos.Blackout ~seed:1L in
  checkb "on-ids blackout fails" true (not (Chaos.passed r));
  (* The point of the app axis: the cell fails *semantically* — ordered
     commands from correct clients never took effect — not only via the
     message-level battery. *)
  checkb "fails via app.progress (state divergence)" true
    (has_property r.Chaos.verdict "app.progress")

let test_chaos_app_sweep_cells () =
  List.iter
    (fun plan ->
      let r = Chaos.run_one ~app:true Chaos.Ct_indirect plan ~seed:2L in
      checkb
        (Printf.sprintf "ct-indirect x %s app cell green" (Chaos.plan_name plan))
        true (Chaos.passed r))
    [ Chaos.Drop; Chaos.Dup; Chaos.Reorder; Chaos.Partition; Chaos.Mixed ]

let test_chaos_app_replay () =
  let mismatches =
    Chaos.replay_check ~app:true ~stacks:[ Chaos.Ct_indirect ]
      ~plans:[ Chaos.Blackout; Chaos.Reorder ] ()
  in
  checki "app cells replay bit-identically" 0 (List.length mismatches)

(* ------------------------------------------------------------------ *)
(* Satellite: profile flag round-trips, table-driven.                 *)
(* ------------------------------------------------------------------ *)

(* Every spec carries its own canonical sample values, so a new flag is
   covered here the day it is added — nothing to remember. *)
let test_profile_spec_samples_roundtrip () =
  List.iter
    (fun (s : Profile.spec) ->
      let flag = List.hd s.Profile.keys in
      List.iter
        (fun sample ->
          match s.Profile.set Profile.default sample with
          | Error e -> Alcotest.failf "--%s rejects its own sample: %s" flag e
          | Ok p ->
              checks
                (Printf.sprintf "--%s %s get-after-set" flag sample)
                sample (s.Profile.get p))
        s.Profile.samples)
    Profile.specs

let test_profile_of_to_args_roundtrip () =
  (* Drive every flag off its canonical samples, then round-trip the
     whole profile through the argv encoding. *)
  let mutated =
    List.fold_left
      (fun p (s : Profile.spec) ->
        match s.Profile.samples with
        | sample :: _ -> (
            match s.Profile.set p sample with Ok p -> p | Error _ -> p)
        | [] -> p)
      Profile.default Profile.specs
  in
  List.iter
    (fun p ->
      match Profile.of_args (Profile.to_args p) with
      | Error e -> Alcotest.failf "of_args (to_args p) failed: %s" e
      | Ok q ->
          checkb "argv round-trip is the identity" true (p = q);
          checkb "re-encoding is stable" true
            (Profile.to_args p = Profile.to_args q))
    [ Profile.default; mutated ]

(* ------------------------------------------------------------------ *)
(* Satellite: Bq shrinks back after a burst.                          *)
(* ------------------------------------------------------------------ *)

let test_bq_shrinks_after_burst () =
  let q = Bq.create 1024 in
  let burst = Buffer.create (4 * Bq.rest_cap) in
  Buffer.add_string burst (String.make (4 * Bq.rest_cap) 'x');
  Bq.add_buffer q burst;
  checkb "burst grew the backing store" true (Bq.capacity q > Bq.rest_cap);
  Bq.consume q (Bq.length q / 2);
  checkb "partially drained queue keeps its buffer" true
    (Bq.capacity q > Bq.rest_cap);
  Bq.consume q (Bq.length q);
  checki "fully drained queue decays to its resting capacity" Bq.rest_cap
    (Bq.capacity q);
  checki "drained" 0 (Bq.length q);
  Bq.add_buffer q burst;
  Bq.clear q;
  checki "clear decays too" Bq.rest_cap (Bq.capacity q)

(* ------------------------------------------------------------------ *)
(* Satellite: latency digests guard against empty samples.            *)
(* ------------------------------------------------------------------ *)

let test_measure_empty_samples () =
  let duration, lat, app_lat, thr = Cluster.measure [] in
  checkb "no duration" true (duration = 0.0);
  checkb "no message latency summary" true (lat = None);
  checkb "no app latency summary" true (app_lat = None);
  checkb "no throughput" true (thr = 0.0);
  (* Submits without a matching home-pid apply must not fabricate
     samples either. *)
  let events =
    [
      { Trace.time = 1.0; pid = 0; kind = Trace.App_submit (0, 0) };
      { Trace.time = 2.0; pid = 1; kind = Trace.App_applied (0, 0) };
    ]
  in
  let _, lat, app_lat, _ = Cluster.measure events in
  checkb "still no message latency" true (lat = None);
  checkb "foreign-pid apply is not client-visible" true (app_lat = None)

(* ------------------------------------------------------------------ *)
(* Satellite: the registry-driven codec fuzz covers the app tag.      *)
(* ------------------------------------------------------------------ *)

let test_codec_registry_covers_app () =
  Ics_core.Codecs.ensure ();
  let entries = Ics_codec.Codec.entries () in
  match
    List.find_opt
      (fun (e : Ics_codec.Codec.entry) -> e.Ics_codec.Codec.name = "app.submit")
      entries
  with
  | None ->
      Alcotest.fail
        "app.submit missing from the codec registry — the fuzz corpus would \
         skip it"
  | Some e -> checki "app.submit wire tag" 0x58 e.Ics_codec.Codec.tag

(* ------------------------------------------------------------------ *)
(* Satellite: trace merge is stable on timestamp ties.                *)
(* ------------------------------------------------------------------ *)

let test_trace_merge_stable_on_ties () =
  let ev time pid kind = { Trace.time; pid; kind } in
  (* Three nodes, all events at the same instant: the merge must order
     ties by pid and keep each node's own order within the tie. *)
  let node0 =
    [ ev 5.0 0 (Trace.App_submit (0, 0)); ev 5.0 0 (Trace.App_applied (0, 0)) ]
  in
  let node1 = [ ev 5.0 1 (Trace.App_applied (0, 0)) ] in
  let node2 = [ ev 5.0 2 (Trace.App_hash (1, 7L)) ] in
  (* Deliberately merge in a scrambled order: the result must not depend
     on the order the per-node files were read. *)
  let a = Trace_io.merge [ node0; node1; node2 ] in
  let b = Trace_io.merge [ node2; node0; node1 ] in
  let render t = Format.asprintf "%a" Trace.pp t in
  checks "merge independent of input file order" (render a) (render b);
  let pids = List.map (fun e -> e.Trace.pid) (Trace.events a) in
  checkb "ties ordered by pid" true (pids = [ 0; 0; 1; 2 ]);
  (* Pin the rendering: if the merge or the App_* serialization changes
     shape, this fingerprint moves and the change must be deliberate. *)
  checks "merged trace fingerprint pinned"
    "80a1ca273ab3dace2b4010f47581937c"
    (Digest.to_hex (Digest.string (render a)))

let suites =
  [
    ( "app machine",
      [
        Alcotest.test_case "cmd pack/unpack round-trip" `Quick
          test_cmd_pack_roundtrip;
        Alcotest.test_case "cmd derivation deterministic" `Quick
          test_cmd_derivation_deterministic;
        Alcotest.test_case "dedup and gap probes" `Quick
          test_machine_dedup_and_order;
        Alcotest.test_case "deterministic, commuting state hash" `Quick
          test_machine_deterministic_hash;
        Alcotest.test_case "conservation of funds" `Quick
          test_machine_conservation;
      ] );
    ( "app service",
      [
        Alcotest.test_case "sim closed-loop point is green" `Quick
          test_sim_service_point;
        Alcotest.test_case "final hash stable across runs and n" `Quick
          test_sim_service_hash_stable;
        Alcotest.test_case "sim replay bit-identical" `Quick
          test_sim_service_replay;
      ] );
    ( "app chaos",
      [
        Alcotest.test_case "indirect blackout green with app" `Quick
          test_chaos_app_indirect_blackout_green;
        Alcotest.test_case "on-ids blackout fails semantically" `Quick
          test_chaos_app_on_ids_blackout_semantic;
        Alcotest.test_case "indirect app cells green across plans" `Quick
          test_chaos_app_sweep_cells;
        Alcotest.test_case "app cells replay bit-identically" `Quick
          test_chaos_app_replay;
      ] );
    ( "pr8 satellites",
      [
        Alcotest.test_case "profile spec samples round-trip" `Quick
          test_profile_spec_samples_roundtrip;
        Alcotest.test_case "profile argv round-trip" `Quick
          test_profile_of_to_args_roundtrip;
        Alcotest.test_case "bq shrinks after burst" `Quick
          test_bq_shrinks_after_burst;
        Alcotest.test_case "measure guards empty samples" `Quick
          test_measure_empty_samples;
        Alcotest.test_case "codec registry covers app.submit" `Quick
          test_codec_registry_covers_app;
        Alcotest.test_case "trace merge stable on ties" `Quick
          test_trace_merge_stable_on_ties;
      ] );
  ]
