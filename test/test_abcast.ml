(* Tests for the atomic broadcast reduction (Algorithm 1) and the stack
   assembly, including randomized whole-system property tests. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Msg_id = Ics_net.Msg_id
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker
module Rng = Ics_prelude.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ideal = Stack.Ideal_lan { delay = 1.0; jitter = 0.2 }

let base config = { config with Stack.setup = ideal; fd_kind = Stack.Oracle 10.0 }

let seq_strings stack p =
  List.map Msg_id.to_string (Abcast.delivered_sequence stack.Stack.abcast p)

let test_single_message () =
  let stack = Test_util.run_stack (base Stack.abcast_indirect) [ (1.0, 0, 10) ] in
  List.iter
    (fun p -> Alcotest.(check (list string)) "delivered" [ "p0#0" ] (seq_strings stack p))
    [ 0; 1; 2 ]

let test_total_order_and_checker () =
  let stack =
    Test_util.run_stack (base Stack.abcast_indirect)
      (Test_util.burst ~n:3 ~count:10 ~body_bytes:50 ~spacing:2.0)
  in
  let s0 = seq_strings stack 0 in
  checki "all messages" 30 (List.length s0);
  List.iter (fun p -> Alcotest.(check (list string)) "same order" s0 (seq_strings stack p)) [ 1; 2 ];
  Test_util.assert_clean_verdict "indirect burst"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_all_four_stacks_agree () =
  List.iter
    (fun config ->
      let stack =
        Test_util.run_stack (base config)
          (Test_util.burst ~n:3 ~count:5 ~body_bytes:20 ~spacing:3.0)
      in
      let s0 = seq_strings stack 0 in
      checki "15 messages" 15 (List.length s0);
      List.iter
        (fun p -> Alcotest.(check (list string)) "same order" s0 (seq_strings stack p))
        [ 1; 2 ];
      Test_util.assert_clean_verdict "good-run stack"
        (Checker.check_all_abcast (Test_util.checker_run stack)))
    [ Stack.abcast_indirect; Stack.abcast_msgs; Stack.abcast_ids_faulty; Stack.abcast_urb ]

let test_mr_stack () =
  let config = { (base Stack.abcast_indirect) with Stack.algo = Stack.Mr; n = 4 } in
  let stack =
    Test_util.run_stack config (Test_util.burst ~n:4 ~count:5 ~body_bytes:20 ~spacing:3.0)
  in
  checki "delivered" 20 (List.length (seq_strings stack 0));
  Test_util.assert_clean_verdict "mr stack"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_abroadcast_ids_unique () =
  let stack = Stack.create (base Stack.abcast_indirect) in
  let m1 = Stack.abroadcast stack ~src:0 ~body_bytes:1 in
  let m2 = Stack.abroadcast stack ~src:0 ~body_bytes:1 in
  let m3 = Stack.abroadcast stack ~src:1 ~body_bytes:1 in
  checkb "unique" true
    (not (Msg_id.equal m1.Ics_net.App_msg.id m2.Ics_net.App_msg.id));
  checkb "per-origin sequences" true
    (not (Msg_id.equal m1.Ics_net.App_msg.id m3.Ics_net.App_msg.id))

let test_dead_broadcaster_is_noop () =
  let stack = Stack.create (base Stack.abcast_indirect) in
  Engine.crash stack.Stack.engine 0;
  ignore (Stack.abroadcast stack ~src:0 ~body_bytes:1);
  Stack.run stack;
  checki "nothing delivered" 0 (List.length (seq_strings stack 1))

let test_crash_mid_run_prefix () =
  let stack =
    Test_util.run_stack (base Stack.abcast_indirect)
      ~crashes:[ (2, 25.0) ]
      (Test_util.burst ~n:3 ~count:10 ~body_bytes:20 ~spacing:5.0)
  in
  let s0 = seq_strings stack 0 in
  let s2 = seq_strings stack 2 in
  checkb "crashed sequence is a prefix" true
    (List.length s2 <= List.length s0
    && List.for_all2 String.equal s2 (List.filteri (fun i _ -> i < List.length s2) s0));
  Test_util.assert_clean_verdict "crash run"
    (Checker.check_all_abcast (Test_util.checker_run stack))

let test_blocked_head_none_in_good_run () =
  let stack = Test_util.run_stack (base Stack.abcast_indirect) [ (1.0, 0, 5) ] in
  List.iter
    (fun p -> checkb "no blockage" true (Abcast.blocked_head stack.Stack.abcast p = None))
    [ 0; 1; 2 ]

let test_holds_tracks_payloads () =
  let stack = Test_util.run_stack (base Stack.abcast_indirect) [ (1.0, 0, 5) ] in
  let id = Msg_id.make ~origin:0 ~seq:0 in
  List.iter
    (fun p -> checkb "payload held" true (Abcast.holds stack.Stack.abcast p id))
    [ 0; 1; 2 ];
  checkb "unknown id" false (Abcast.holds stack.Stack.abcast 0 (Msg_id.make ~origin:2 ~seq:9))

let test_describe_and_names () =
  let stack = Stack.create (base Stack.abcast_indirect) in
  let d = Stack.describe stack in
  checkb "describe mentions pieces" true
    (Test_util.contains d "indirect" && Test_util.contains d "ct-indirect"
    && Test_util.contains d "n=3");
  let urb = Stack.create (base Stack.abcast_urb) in
  checkb "urb described" true (Test_util.contains (Stack.describe urb) "urb")

let test_engine_mismatch_rejected () =
  let engine = Engine.create ~n:5 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Stack.create: engine/config n mismatch")
    (fun () -> ignore (Stack.create ~engine (base Stack.abcast_indirect)))

let test_unordered_count_drains () =
  let stack = Test_util.run_stack (base Stack.abcast_indirect) [ (1.0, 0, 5); (2.0, 1, 5) ] in
  List.iter
    (fun p -> checki "unordered drained" 0 (Abcast.unordered_count stack.Stack.abcast p))
    [ 0; 1; 2 ]

(* Randomized whole-system property: for every stack variant, random loads
   with random (resilience-respecting) crashes keep every atomic broadcast
   property.  This is the paper's Algorithm 1 + Algorithm 2/3 safety net. *)

let random_run ~algo ~ordering ~broadcast ~n ~seed =
  let config =
    {
      Stack.n;
      seed = Int64.of_int seed;
      algo;
      ordering;
      broadcast;
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.5 };
      batching = Abcast.no_batching;
      fd_kind = Stack.Oracle 15.0;
      trace = `On;
    }
  in
  let rng = Rng.create (Int64.of_int (seed * 7 + 1)) in
  let msgs = 1 + Rng.int rng 12 in
  let broadcasts =
    List.init msgs (fun i ->
        (Rng.float rng 40.0, Rng.int rng n, Rng.int rng 200) |> fun (t, p, b) ->
        (t, p, b) |> fun x -> ignore i; x)
  in
  let max_f =
    match (algo, ordering) with
    | Stack.Mr, Abcast.Indirect_consensus -> Ics_consensus.Quorum.max_faults_two_thirds ~n
    | _ -> Ics_consensus.Quorum.max_faults_majority ~n
  in
  let crashes =
    if max_f > 0 && Rng.bool rng then [ (Rng.int rng n, Rng.float rng 60.0) ] else []
  in
  let stack = Test_util.run_stack config ~crashes ~horizon:60_000.0 broadcasts in
  (stack, Test_util.checker_run stack)

let qcheck_stack_properties ~name ~algo ~ordering ~broadcast =
  QCheck.Test.make ~name ~count:25
    QCheck.(pair (int_range 3 5) (int_bound 100_000))
    (fun (n, seed) ->
      let _, run = random_run ~algo ~ordering ~broadcast ~n ~seed in
      let verdict = Checker.check_all_abcast run in
      if not (Checker.ok verdict) then
        QCheck.Test.fail_reportf "%a" Checker.pp_verdict verdict
      else true)

let qcheck_ct_indirect =
  qcheck_stack_properties ~name:"abcast[ct-indirect+flood] safe under random crashes"
    ~algo:Stack.Ct ~ordering:Abcast.Indirect_consensus ~broadcast:Stack.Flood

let qcheck_ct_indirect_fd_relay =
  qcheck_stack_properties ~name:"abcast[ct-indirect+fd-relay] safe under random crashes"
    ~algo:Stack.Ct ~ordering:Abcast.Indirect_consensus ~broadcast:Stack.Fd_relay

let qcheck_ct_urb =
  qcheck_stack_properties ~name:"abcast[ct-on-ids+urb] safe under random crashes"
    ~algo:Stack.Ct ~ordering:Abcast.Consensus_on_ids ~broadcast:Stack.Uniform

let qcheck_ct_msgs =
  qcheck_stack_properties ~name:"abcast[ct-on-messages+flood] safe under random crashes"
    ~algo:Stack.Ct ~ordering:Abcast.Consensus_on_messages ~broadcast:Stack.Flood

let qcheck_mr_indirect =
  qcheck_stack_properties ~name:"abcast[mr-indirect+flood] safe under random crashes"
    ~algo:Stack.Mr ~ordering:Abcast.Indirect_consensus ~broadcast:Stack.Flood

let qcheck_mr_msgs =
  qcheck_stack_properties ~name:"abcast[mr-on-messages+flood] safe under random crashes"
    ~algo:Stack.Mr ~ordering:Abcast.Consensus_on_messages ~broadcast:Stack.Flood

let qcheck_lb_indirect =
  qcheck_stack_properties ~name:"abcast[lb-indirect+flood] safe under random crashes"
    ~algo:Stack.Lb ~ordering:Abcast.Indirect_consensus ~broadcast:Stack.Flood

let suites =
  [
    ( "abcast",
      [
        Alcotest.test_case "single message" `Quick test_single_message;
        Alcotest.test_case "total order + checker" `Quick test_total_order_and_checker;
        Alcotest.test_case "all four stacks agree" `Quick test_all_four_stacks_agree;
        Alcotest.test_case "mr stack" `Quick test_mr_stack;
        Alcotest.test_case "unique ids" `Quick test_abroadcast_ids_unique;
        Alcotest.test_case "dead broadcaster" `Quick test_dead_broadcaster_is_noop;
        Alcotest.test_case "crash prefix" `Quick test_crash_mid_run_prefix;
        Alcotest.test_case "no blocked head in good runs" `Quick test_blocked_head_none_in_good_run;
        Alcotest.test_case "holds tracks payloads" `Quick test_holds_tracks_payloads;
        Alcotest.test_case "describe" `Quick test_describe_and_names;
        Alcotest.test_case "engine mismatch" `Quick test_engine_mismatch_rejected;
        Alcotest.test_case "unordered drains" `Quick test_unordered_count_drains;
      ] );
    ( "abcast-properties",
      [
        QCheck_alcotest.to_alcotest qcheck_ct_indirect;
        QCheck_alcotest.to_alcotest qcheck_ct_indirect_fd_relay;
        QCheck_alcotest.to_alcotest qcheck_ct_urb;
        QCheck_alcotest.to_alcotest qcheck_ct_msgs;
        QCheck_alcotest.to_alcotest qcheck_mr_indirect;
        QCheck_alcotest.to_alcotest qcheck_mr_msgs;
        QCheck_alcotest.to_alcotest qcheck_lb_indirect;
      ] );
  ]
