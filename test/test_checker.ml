(* Tests for the property checker itself: hand-built traces with seeded
   violations must be flagged; clean traces must pass. *)

module Trace = Ics_sim.Trace
module Checker = Ics_checker.Checker
module Msg_id = Ics_sim.Msg_id

let mid origin seq = Msg_id.make ~origin ~seq
let m00 = mid 0 0  (* m00 *)
let ida = mid 0 0
let idb = mid 1 0
let idz = mid 2 9
let ghost = mid 9 999

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk_trace events =
  let tr = Trace.create () in
  List.iter (fun (time, pid, kind) -> Trace.record tr ~time ~pid kind) events;
  tr

let run_of events ~n = Checker.Run.of_trace (mk_trace events) ~n

let has run checker property =
  Test_util.has_violation (checker run) property

(* A clean three-process exchange: p0 broadcasts, everyone delivers. *)
let clean_events =
  [
    (1.0, 0, Trace.Abroadcast m00);
    (1.0, 0, Trace.Rbroadcast m00);
    (1.5, 0, Trace.Rdeliver m00);
    (2.0, 1, Trace.Rdeliver m00);
    (2.0, 2, Trace.Rdeliver m00);
    (2.1, 0, Trace.Propose (1, [ m00 ]));
    (2.2, 1, Trace.Propose (1, [ m00 ]));
    (2.3, 2, Trace.Propose (1, [ m00 ]));
    (3.0, 0, Trace.Decide (1, [ m00 ]));
    (3.0, 1, Trace.Decide (1, [ m00 ]));
    (3.0, 2, Trace.Decide (1, [ m00 ]));
    (3.5, 0, Trace.Adeliver m00);
    (3.5, 1, Trace.Adeliver m00);
    (3.5, 2, Trace.Adeliver m00);
  ]

let test_clean_trace_passes () =
  let run = run_of clean_events ~n:3 in
  Test_util.assert_clean_verdict "abcast" (Checker.check_atomic_broadcast run);
  Test_util.assert_clean_verdict "consensus" (Checker.check_consensus run);
  Test_util.assert_clean_verdict "no-loss" (Checker.check_no_loss run);
  Test_util.assert_clean_verdict "rb" (Checker.check_reliable_broadcast run);
  Test_util.assert_clean_verdict "all" (Checker.check_all_abcast run)

let test_validity_violation_detected () =
  (* p0 is correct, abroadcasts, never adelivers its own message. *)
  let events =
    [ (1.0, 0, Trace.Abroadcast m00) ]
  in
  let run = run_of events ~n:3 in
  checkb "validity flagged" true (has run Checker.check_atomic_broadcast "abcast.validity")

let test_validity_crashed_broadcaster_exempt () =
  let events = [ (1.0, 0, Trace.Abroadcast m00); (2.0, 0, Trace.Crash) ] in
  let run = run_of events ~n:3 in
  checkb "faulty broadcaster exempt" false
    (has run Checker.check_atomic_broadcast "abcast.validity")

let test_duplicate_delivery_detected () =
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (2.0, 0, Trace.Adeliver m00);
      (2.0, 1, Trace.Adeliver m00);
      (2.0, 2, Trace.Adeliver m00);
      (3.0, 1, Trace.Adeliver m00);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "duplicate flagged" true
    (has run Checker.check_atomic_broadcast "abcast.uniform-integrity")

let test_unsourced_delivery_detected () =
  let events = [ (2.0, 1, Trace.Adeliver ghost) ] in
  let run = run_of events ~n:3 in
  checkb "ghost flagged" true
    (has run Checker.check_atomic_broadcast "abcast.uniform-integrity")

let test_uniform_agreement_violation () =
  (* p0 delivers then crashes; p1/p2 never deliver. *)
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (2.0, 0, Trace.Adeliver m00);
      (3.0, 0, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "uniform agreement flagged" true
    (has run Checker.check_atomic_broadcast "abcast.uniform-agreement")

let test_total_order_violation () =
  let events =
    [
      (1.0, 0, Trace.Abroadcast ida);
      (1.0, 1, Trace.Abroadcast idb);
      (2.0, 0, Trace.Adeliver ida);
      (2.1, 0, Trace.Adeliver idb);
      (2.0, 1, Trace.Adeliver idb);
      (2.1, 1, Trace.Adeliver ida);
      (2.0, 2, Trace.Adeliver ida);
      (2.1, 2, Trace.Adeliver idb);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "order flagged" true
    (has run Checker.check_atomic_broadcast "abcast.uniform-total-order")

let test_prefix_sequences_allowed () =
  (* A crashed process's shorter sequence is fine as long as it is a
     prefix. *)
  let events =
    [
      (1.0, 0, Trace.Abroadcast ida);
      (1.1, 1, Trace.Abroadcast idb);
      (2.0, 0, Trace.Adeliver ida);
      (2.1, 0, Trace.Adeliver idb);
      (2.0, 1, Trace.Adeliver ida);
      (2.1, 1, Trace.Adeliver idb);
      (2.0, 2, Trace.Adeliver ida);
      (2.05, 2, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "prefix ok" false
    (has run Checker.check_atomic_broadcast "abcast.uniform-total-order")

let test_consensus_agreement_violation () =
  let events =
    [
      (1.0, 0, Trace.Propose (1, [ ida ]));
      (1.0, 1, Trace.Propose (1, [ idb ]));
      (2.0, 0, Trace.Decide (1, [ ida ]));
      (2.0, 1, Trace.Decide (1, [ idb ]));
      (2.0, 2, Trace.Decide (1, [ ida ]));
    ]
  in
  let run = run_of events ~n:3 in
  checkb "disagreement flagged" true
    (has run Checker.check_consensus "consensus.uniform-agreement")

let test_consensus_integrity_violation () =
  let events =
    [
      (1.0, 0, Trace.Propose (1, [ ida ]));
      (2.0, 0, Trace.Decide (1, [ ida ]));
      (3.0, 0, Trace.Decide (1, [ ida ]));
      (2.0, 1, Trace.Decide (1, [ ida ]));
      (2.0, 2, Trace.Decide (1, [ ida ]));
    ]
  in
  let run = run_of events ~n:3 in
  checkb "double decide flagged" true
    (has run Checker.check_consensus "consensus.uniform-integrity")

let test_consensus_validity_violation () =
  let events =
    [
      (1.0, 0, Trace.Propose (1, [ ida ]));
      (2.0, 0, Trace.Decide (1, [ idz ]));
      (2.0, 1, Trace.Decide (1, [ idz ]));
      (2.0, 2, Trace.Decide (1, [ idz ]));
    ]
  in
  let run = run_of events ~n:3 in
  checkb "unproposed decision flagged" true
    (has run Checker.check_consensus "consensus.uniform-validity")

let test_consensus_termination_violations () =
  (* Decided elsewhere but not by a correct process. *)
  let events =
    [
      (1.0, 0, Trace.Propose (1, [ ida ]));
      (2.0, 0, Trace.Decide (1, [ ida ]));
      (2.0, 1, Trace.Decide (1, [ ida ]));
    ]
  in
  let run = run_of events ~n:3 in
  checkb "missing decider flagged" true
    (has run Checker.check_consensus "consensus.termination");
  (* Proposed by a correct process, never decided anywhere. *)
  let events2 = [ (1.0, 0, Trace.Propose (1, [ ida ])) ] in
  let run2 = run_of events2 ~n:3 in
  checkb "undecided instance flagged" true
    (has run2 Checker.check_consensus "consensus.termination")

let test_no_loss_violation () =
  (* The decided id's payload was only ever held by the crashed process. *)
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (1.1, 0, Trace.Rdeliver m00);
      (2.0, 0, Trace.Propose (1, [ m00 ]));
      (3.0, 0, Trace.Decide (1, [ m00 ]));
      (3.0, 1, Trace.Decide (1, [ m00 ]));
      (3.0, 2, Trace.Decide (1, [ m00 ]));
      (4.0, 0, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "no-loss flagged" true (has run Checker.check_no_loss "indirect-consensus.no-loss")

let test_no_loss_strict_vs_eventual () =
  (* Payload reaches a correct process only AFTER the decision: the
     eventual reading passes, the paper's strict reading fails. *)
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (1.1, 0, Trace.Rdeliver m00);
      (2.0, 0, Trace.Propose (1, [ m00 ]));
      (3.0, 0, Trace.Decide (1, [ m00 ]));
      (3.0, 1, Trace.Decide (1, [ m00 ]));
      (3.0, 2, Trace.Decide (1, [ m00 ]));
      (4.0, 1, Trace.Rdeliver m00);
      (5.0, 0, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "eventual passes" false
    (has run (fun r -> Checker.check_no_loss r) "indirect-consensus.no-loss");
  checkb "strict fails" true
    (has run
       (fun r -> Checker.check_no_loss ~strict:true r)
       "indirect-consensus.no-loss-strict");
  (* A pre-decision holder satisfies both. *)
  let ok_events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (1.1, 1, Trace.Rdeliver m00);
      (3.0, 0, Trace.Propose (1, [ m00 ]));
      (3.5, 0, Trace.Decide (1, [ m00 ]));
      (3.5, 1, Trace.Decide (1, [ m00 ]));
      (3.5, 2, Trace.Decide (1, [ m00 ]));
    ]
  in
  let ok_run = run_of ok_events ~n:3 in
  checkb "strict passes with pre-decision holder" false
    (has ok_run
       (fun r -> Checker.check_no_loss ~strict:true r)
       "indirect-consensus.no-loss-strict")

let test_no_loss_satisfied_by_urb_delivery () =
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (1.5, 1, Trace.Urb_deliver m00);
      (2.0, 0, Trace.Propose (1, [ m00 ]));
      (3.0, 0, Trace.Decide (1, [ m00 ]));
      (3.0, 1, Trace.Decide (1, [ m00 ]));
      (3.0, 2, Trace.Decide (1, [ m00 ]));
      (4.0, 0, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "urb delivery counts as holding" false
    (has run Checker.check_no_loss "indirect-consensus.no-loss")

let test_rb_agreement_not_uniform () =
  (* A faulty process delivering alone violates *uniform* agreement but
     not plain agreement. *)
  let events =
    [
      (1.0, 0, Trace.Abroadcast m00);
      (1.0, 0, Trace.Rbroadcast m00);
      (1.5, 0, Trace.Rdeliver m00);
      (2.0, 0, Trace.Crash);
    ]
  in
  let run = run_of events ~n:3 in
  checkb "plain rb tolerates" false
    (Test_util.has_violation (Checker.check_reliable_broadcast run) "rb.agreement");
  checkb "urb flags" true
    (Test_util.has_violation (Checker.check_uniform_broadcast run) "urb.uniform-agreement")

let test_run_view () =
  let events =
    [
      (1.0, 0, Trace.Abroadcast ida);
      (2.0, 1, Trace.Crash);
      (3.0, 0, Trace.Adeliver ida);
    ]
  in
  let run = run_of events ~n:3 in
  Alcotest.(check (list int)) "correct" [ 0; 2 ] (Checker.Run.correct run);
  Alcotest.(check (list int)) "crashed" [ 1 ] (Checker.Run.crashed run);
  Alcotest.(check (option (float 1e-9))) "crash time" (Some 2.0) (Checker.Run.crash_time run 1);
  checki "abroadcasts" 1 (List.length (Checker.Run.abroadcasts run));
  Alcotest.(check (list string)) "adeliveries" [ "p0#0" ]
    (List.map Msg_id.to_string (Checker.Run.adeliveries run 0))

let test_verdict_pp () =
  let run = run_of [ (2.0, 1, Trace.Adeliver ghost) ] ~n:2 in
  let v = Checker.check_atomic_broadcast run in
  let s = Format.asprintf "%a" Checker.pp_verdict v in
  checkb "mentions property" true (Test_util.contains s "abcast.uniform-integrity");
  let clean = Checker.check_no_loss run in
  checkb "ok rendering" true (Test_util.contains (Format.asprintf "%a" Checker.pp_verdict clean) "OK")

let suites =
  [
    ( "checker",
      [
        Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
        Alcotest.test_case "validity violation" `Quick test_validity_violation_detected;
        Alcotest.test_case "crashed broadcaster exempt" `Quick test_validity_crashed_broadcaster_exempt;
        Alcotest.test_case "duplicate delivery" `Quick test_duplicate_delivery_detected;
        Alcotest.test_case "unsourced delivery" `Quick test_unsourced_delivery_detected;
        Alcotest.test_case "uniform agreement" `Quick test_uniform_agreement_violation;
        Alcotest.test_case "total order" `Quick test_total_order_violation;
        Alcotest.test_case "prefix allowed" `Quick test_prefix_sequences_allowed;
        Alcotest.test_case "consensus agreement" `Quick test_consensus_agreement_violation;
        Alcotest.test_case "consensus integrity" `Quick test_consensus_integrity_violation;
        Alcotest.test_case "consensus validity" `Quick test_consensus_validity_violation;
        Alcotest.test_case "consensus termination" `Quick test_consensus_termination_violations;
        Alcotest.test_case "no-loss violation" `Quick test_no_loss_violation;
        Alcotest.test_case "no-loss strict vs eventual" `Quick test_no_loss_strict_vs_eventual;
        Alcotest.test_case "no-loss via urb" `Quick test_no_loss_satisfied_by_urb_delivery;
        Alcotest.test_case "rb vs urb agreement" `Quick test_rb_agreement_not_uniform;
        Alcotest.test_case "run view" `Quick test_run_view;
        Alcotest.test_case "verdict pp" `Quick test_verdict_pp;
      ] );
  ]
