(* Adversarial property tests: random message loss and delay.

   An unfair network (messages silently dropped) can destroy liveness —
   that is expected and not checked here — but must never corrupt
   *safety*: no duplicate or unsourced deliveries, and no two processes
   delivering in different orders.  These tests hammer the stacks with
   random drop/delay adversaries and verify exactly the safety subset of
   the atomic broadcast specification. *)

module Engine = Ics_sim.Engine
module Model = Ics_net.Model
module Message = Ics_net.Message
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker
module Rng = Ics_prelude.Rng

let safety_only verdict =
  List.filter
    (fun v ->
      match v.Checker.property with
      | "abcast.uniform-integrity" | "abcast.uniform-total-order"
      | "consensus.uniform-integrity" | "consensus.uniform-agreement"
      | "consensus.uniform-validity" ->
          true
      | _ -> false)
    verdict.Checker.violations

let random_adversary ~seed ~drop_percent ~max_delay =
  let rng = Rng.create (Int64.of_int seed) in
  fun (_ : Message.t) ->
    let roll = Rng.int rng 100 in
    if roll < drop_percent then Model.Drop
    else if roll < drop_percent + 20 then Model.Delay_by (Rng.float rng max_delay)
    else Model.Pass

let run_adversarial ~algo ~ordering ~broadcast (n, seed, drop_percent) =
  let config =
    {
      Stack.n;
      seed = Int64.of_int (seed + 1);
      algo;
      ordering;
      broadcast;
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.3 };
      batching = Abcast.no_batching;
      fd_kind = Stack.Oracle 15.0;
      trace = `On;
    }
  in
  let rule = random_adversary ~seed ~drop_percent ~max_delay:20.0 in
  let rng = Rng.create (Int64.of_int (seed + 99)) in
  let broadcasts =
    List.init (1 + Rng.int rng 10) (fun i ->
        ignore i;
        (Rng.float rng 40.0, Rng.int rng n, Rng.int rng 100))
  in
  let crashes =
    if Rng.bool rng then [ (Rng.int rng n, Rng.float rng 50.0) ] else []
  in
  let stack =
    Test_util.run_stack ~rule ~crashes ~horizon:30_000.0 config broadcasts
  in
  let run = Test_util.checker_run stack in
  let violations = safety_only (Checker.check_all_abcast run) in
  if violations <> [] then
    QCheck.Test.fail_reportf "%a" Checker.pp_verdict
      { Checker.violations; checked = [] }
  else true

let arb =
  QCheck.(triple (int_range 3 5) (int_bound 50_000) (int_range 1 30))

let qcheck_ct_indirect_safety =
  QCheck.Test.make ~name:"ct-indirect safety under lossy network" ~count:40 arb
    (run_adversarial ~algo:Stack.Ct ~ordering:Abcast.Indirect_consensus
       ~broadcast:Stack.Flood)

let qcheck_mr_indirect_safety =
  QCheck.Test.make ~name:"mr-indirect safety under lossy network" ~count:40 arb
    (run_adversarial ~algo:Stack.Mr ~ordering:Abcast.Indirect_consensus
       ~broadcast:Stack.Flood)

let qcheck_urb_safety =
  QCheck.Test.make ~name:"urb+on-ids safety under lossy network" ~count:40 arb
    (run_adversarial ~algo:Stack.Ct ~ordering:Abcast.Consensus_on_ids
       ~broadcast:Stack.Uniform)

(* Even the *faulty* stack never violates ordering safety — its defect is
   confined to validity/agreement/no-loss (the checker distinguishes the
   two failure classes; §2.2's point is precisely that the breakage slips
   past any ordering check). *)
let qcheck_faulty_still_orders_safely =
  QCheck.Test.make ~name:"faulty-on-ids never breaks ordering safety" ~count:40 arb
    (run_adversarial ~algo:Stack.Ct ~ordering:Abcast.Consensus_on_ids
       ~broadcast:Stack.Flood)

let suites =
  [
    ( "adversarial",
      [
        QCheck_alcotest.to_alcotest qcheck_ct_indirect_safety;
        QCheck_alcotest.to_alcotest qcheck_mr_indirect_safety;
        QCheck_alcotest.to_alcotest qcheck_urb_safety;
        QCheck_alcotest.to_alcotest qcheck_faulty_still_orders_safely;
      ] );
  ]
