(* Command-line driver for the indirect-consensus atomic broadcast
   simulator: run single experiments, regenerate the paper's figures, and
   replay the adversarial scenarios. *)

open Cmdliner
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module Experiment = Ics_workload.Experiment
module Figures = Ics_workload.Figures
module Scenarios = Ics_workload.Scenarios
module Chaos = Ics_workload.Chaos
module Table = Ics_prelude.Table
module Stats = Ics_prelude.Stats

(* Profile flags are not written by hand: every command that takes a
   stack shape (and, for the live commands, a workload) folds the
   relevant [Profile.specs] rows into one cmdliner term.  Adding a knob
   to the profile adds the flag to every command at once. *)
let profile_term ?(specs = Profile.specs) base =
  List.fold_left
    (fun term (spec : Profile.spec) ->
      let arg =
        Arg.(
          value
          & opt (some string) None
          & info spec.Profile.keys ~docv:spec.Profile.docv ~doc:spec.Profile.doc)
      in
      let apply profile = function
        | None -> profile
        | Some value -> (
            match spec.Profile.set profile value with
            | Ok profile -> profile
            | Error msg ->
                Format.eprintf "ics-cli: %s@." msg;
                exit 2)
      in
      Term.(const apply $ term $ arg))
    (Term.const base) specs

let setup_conv =
  Arg.enum
    [
      ("setup1", Stack.Setup1);
      ("setup2", Stack.Setup2);
      ("ideal", Stack.Ideal_lan { delay = 1.0; jitter = 0.1 });
    ]

let stack_config_of_profile (p : Profile.t) =
  {
    Stack.default_config with
    n = p.Profile.n;
    algo = p.Profile.algo;
    ordering = p.Profile.ordering;
    broadcast = p.Profile.broadcast;
    batching = Profile.batching p;
  }

(* `run` command: one configuration under one load. *)

let run_cmd =
  let exec profile setup tput size duration seed check =
    let config = { (stack_config_of_profile profile) with Stack.setup; seed } in
    let load =
      {
        Experiment.throughput = tput;
        body_bytes = size;
        duration = duration *. 1000.0;
        warmup = Float.min 1000.0 (duration *. 100.0);
      }
    in
    let r = Experiment.run ~check config load in
    Format.printf "config: n=%d algo=%s ordering=%s broadcast=%s@."
      profile.Profile.n
      (Profile.algo_to_string profile.Profile.algo)
      (Profile.ordering_to_string profile.Profile.ordering)
      (Profile.broadcast_to_string profile.Profile.broadcast);
    Format.printf "load: %.0f msg/s, %d B payloads, %.1f s@." tput size duration;
    Format.printf "latency: %a@." Stats.pp_summary r.Experiment.latency;
    Format.printf "measured=%d abroadcasts=%d transport-messages=%d wire-bytes=%d@."
      r.Experiment.measured r.Experiment.abroadcasts r.Experiment.sent_messages
      r.Experiment.sent_bytes;
    Format.printf "quiescent=%b (virtual time %.1f ms)@." r.Experiment.quiescent
      r.Experiment.wall_clock;
    (match r.Experiment.verdict with
    | Some v -> Format.printf "checker: %a@." Ics_checker.Checker.pp_verdict v
    | None -> ());
    (match r.Experiment.utilization with
    | [] -> ()
    | util ->
        let busiest =
          List.sort (fun (_, a) (_, b) -> Float.compare b a) util
          |> List.filteri (fun i _ -> i < 4)
        in
        Format.printf "busiest resources:%s@."
          (String.concat ""
             (List.map (fun (name, u) -> Printf.sprintf " %s=%.0f%%" name (u *. 100.0))
                busiest)));
    if not r.Experiment.quiescent then exit 2
  in
  let profile = profile_term ~specs:Profile.stack_specs Profile.default in
  let setup =
    Arg.(value & opt setup_conv Stack.Setup1 & info [ "setup" ] ~doc:"setup1, setup2 or ideal.")
  in
  let tput =
    Arg.(value & opt float 100.0 & info [ "throughput" ] ~doc:"Global rate, msgs/s.")
  in
  let size = Arg.(value & opt int 1 & info [ "size" ] ~doc:"Payload bytes.") in
  let duration = Arg.(value & opt float 10.0 & info [ "duration" ] ~doc:"Seconds of arrivals.") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Validate the trace against the formal properties.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one atomic-broadcast configuration under a synthetic load")
    Term.(const exec $ profile $ setup $ tput $ size $ duration $ seed $ check)

(* `figure` command: regenerate one of the paper's figures (or all). *)

let figure_cmd =
  let exec id quick csv seed seeds verbose =
    let figures =
      if id = "all" then Figures.all
      else
        match Figures.find id with
        | Some f -> [ f ]
        | None ->
            Format.eprintf "unknown figure %s; available: %s@." id
              (String.concat ", " (Figures.ids ()));
            exit 1
    in
    List.iter
      (fun f ->
        let progress = if verbose then fun s -> Format.eprintf "  %s@." s else fun _ -> () in
        let table = Figures.run ~quick ~seed ~seeds ~progress f in
        if csv then print_string (Table.to_csv table) else Table.print table;
        if not csv then
          Format.printf "paper: %s@.@." f.Figures.paper_shape)
      figures
  in
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc:"Figure id or 'all'.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Quarter-length runs.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"CSV output.") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let seeds =
    Arg.(value & opt int 1 & info [ "seeds" ] ~doc:"Pool results over this many seeds.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-cell progress on stderr.") in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a figure of the paper's evaluation")
    Term.(const exec $ id $ quick $ csv $ seed $ seeds $ verbose)

(* `violation` command: the adversarial scenarios. *)

let violation_cmd =
  let exec which =
    let outcomes =
      match which with
      | "ct" ->
          [
            Scenarios.validity_scenario Scenarios.Faulty_ids;
            Scenarios.validity_scenario Scenarios.Indirect;
          ]
      | "mr" ->
          [ Scenarios.mr_scenario Scenarios.Naive; Scenarios.mr_scenario Scenarios.Indirect_mr ]
      | _ ->
          Format.eprintf "unknown scenario %s (ct or mr)@." which;
          exit 1
    in
    List.iter (fun o -> Format.printf "%a@." Scenarios.pp_outcome o) outcomes
  in
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc:"'ct' (S2.2) or 'mr' (S3.3.2).")
  in
  Cmd.v
    (Cmd.info "violation"
       ~doc:"Replay the paper's counterexamples (faulty vs indirect consensus)")
    Term.(const exec $ which)

(* `trace` command: run a small configuration and dump the full protocol
   trace — invaluable for studying an execution step by step. *)

let trace_cmd =
  let exec profile messages crash csv =
    let config =
      {
        (stack_config_of_profile profile) with
        Stack.setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
        fd_kind = Stack.Oracle 10.0;
      }
    in
    let n = profile.Profile.n in
    let stack = Stack.create config in
    let engine = stack.Stack.engine in
    for i = 0 to messages - 1 do
      Ics_sim.Engine.schedule engine ~at:(1.0 +. (5.0 *. float_of_int i)) (fun () ->
          ignore (Stack.abroadcast stack ~src:(i mod n) ~body_bytes:16))
    done;
    (match crash with
    | Some p -> Ics_sim.Engine.crash_at engine p ~at:10.0
    | None -> ());
    Stack.run ~until:10_000.0 stack;
    let trace = Ics_sim.Engine.trace engine in
    if csv then begin
      print_endline "time_ms,pid,event";
      List.iter
        (fun (e : Ics_sim.Trace.event) ->
          Printf.printf "%.3f,p%d,%s\n" e.time e.pid
            (Format.asprintf "%a" Ics_sim.Trace.pp_kind e.kind))
        (Ics_sim.Trace.events trace)
    end
    else begin
      Format.printf "%a" Ics_sim.Trace.pp trace;
      Format.printf "@.-- %d trace events, stack: %s@." (Ics_sim.Trace.length trace)
        (Stack.describe stack)
    end
  in
  let profile = profile_term ~specs:Profile.stack_specs Profile.default in
  let messages = Arg.(value & opt int 2 & info [ "messages" ] ~doc:"How many abroadcasts.") in
  let crash =
    Arg.(value & opt (some int) None & info [ "crash" ] ~doc:"Crash this process at t=10ms.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"CSV output.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the full protocol trace of a small execution")
    Term.(const exec $ profile $ messages $ crash $ csv)

(* `chaos` command: seeded fault-injection sweep over stacks × plans,
   simulated by default or — with --live — run as forked loopback-TCP
   clusters judged by the same checker. *)

let chaos_cmd =
  let exec seeds seed_base n stacks plans batch pipeline flush no_retransmit
      app live replay_check jobs jobs_check verbose =
    let batching = { Abcast.batch; pipeline; flush_ms = flush } in
    if batch < 1 || pipeline < 1 || flush < 0.0 then begin
      Format.eprintf "chaos: --batch/--pipeline must be >= 1, --flush >= 0@.";
      exit 2
    end;
    let parse_csv ~what ~of_string ~all s =
      if s = "all" then all
      else
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun name ->
               match of_string name with
               | Some v -> v
               | None ->
                   Format.eprintf "unknown %s %s@." what name;
                   exit 1)
    in
    let stacks =
      parse_csv ~what:"stack" ~of_string:Chaos.stack_of_string
        ~all:Chaos.all_stacks stacks
    in
    let plans =
      parse_csv ~what:"plan" ~of_string:Chaos.plan_of_string
        ~all:Chaos.all_plans plans
    in
    let backend = if live then `Live else `Sim in
    if live && not (Chaos.live_supported ()) then begin
      Format.eprintf "chaos: skip: loopback sockets unavailable in this environment@.";
      exit 2
    end;
    if jobs < 1 then begin
      Format.eprintf "chaos: --jobs must be >= 1@.";
      exit 2
    end;
    if live && jobs > 1 then
      Format.eprintf
        "chaos: note: --live forks node processes, so the sweep runs with \
         --jobs 1@.";
    let progress =
      if verbose then fun s -> Format.eprintf "  %s@." s else fun _ -> ()
    in
    let cells =
      Chaos.sweep ~backend ~batching ~app ~retransmit:(not no_retransmit) ?n
        ~seed_base ~seeds ~progress ~jobs ~stacks ~plans ()
    in
    Chaos.report ~verbose Format.std_formatter cells;
    if jobs_check then begin
      if live then begin
        Format.eprintf "chaos: --jobs-check needs the sim backend@.";
        exit 2
      end;
      (* The jobs-determinism fence: the same sweep at --jobs 1 and at
         the requested width must agree on every run's fingerprint, not
         just on the failures the matrix shows. *)
      let fingerprints j =
        Chaos.sweep_results ~batching ~app ~retransmit:(not no_retransmit) ?n
          ~seed_base ~seeds ~jobs:j ~stacks ~plans ()
        |> List.concat_map (fun (_, results) ->
               List.map (fun r -> r.Chaos.fingerprint) results)
      in
      let wide = max jobs 2 in
      if fingerprints 1 = fingerprints wide then
        Format.printf
          "jobs check: %d run(s) fingerprint-identical at --jobs 1 and \
           --jobs %d@."
          (List.length stacks * List.length plans * seeds)
          wide
      else begin
        Format.printf
          "FAIL: jobs check — sweep fingerprints differ between --jobs 1 \
           and --jobs %d@."
          wide;
        exit 1
      end
    end;
    if replay_check then begin
      if live then
        Format.printf
          "replay check: skipped — live scheduling is not deterministic \
           (fault counters are; the sweep above already used them)@."
      else
        let mismatches =
          Chaos.replay_check ~batching ~app ~retransmit:(not no_retransmit) ?n
            ~seed_base ~jobs ~stacks ~plans ()
        in
        match mismatches with
        | [] ->
            Format.printf "replay check: %d cell(s) reran bit-identically@."
              (List.length stacks * List.length plans)
        | ms ->
            Format.printf
              "FAIL: replay check found nondeterminism — seeded reruns \
               diverged:@.";
            List.iter
              (fun m -> Format.printf "  %a@." Chaos.pp_mismatch m)
              ms;
            exit 1
    end;
    if not (Chaos.blackout_reproduced cells) then begin
      Format.printf
        "FAIL: the ct-on-ids x blackout cell passed on the %s backend — \
         the paper's S2.2 violation should always reproduce@."
        (Chaos.backend_name backend);
      exit 1
    end;
    if Chaos.indirect_clean cells then begin
      Format.printf "indirect stacks clean over %d seeds (%s backend)@." seeds
        (Chaos.backend_name backend);
      if List.exists (fun c -> c.Chaos.failures <> []) cells then
        Format.printf
          "on-ids failures above are expected: that stack is the paper's \
           counterexample@."
    end
    else begin
      Format.printf "FAIL: an indirect stack violated its properties@.";
      exit 1
    end
  in
  let seeds =
    Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Seeds per (stack, plan) cell.")
  in
  let seed_base =
    Arg.(value & opt int64 1L & info [ "seed-base" ] ~doc:"First seed; cell seeds are base..base+seeds-1.")
  in
  let n =
    Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Override the per-stack process count.")
  in
  let stacks =
    Arg.(
      value & opt string "all"
      & info [ "stacks" ] ~doc:"Comma-separated: ct-indirect, mr-indirect, ct-on-ids; or 'all'.")
  in
  let plans =
    Arg.(
      value & opt string "all"
      & info [ "plans" ]
          ~doc:"Comma-separated: drop, dup, reorder, partition, storm, blackout, mixed; or 'all'.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ]
          ~doc:"Fresh ids that trigger a consensus proposal (1 = seed behaviour).")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ]
          ~doc:"Concurrent consensus instances (commits stay in instance order).")
  in
  let flush =
    Arg.(
      value
      & opt float Abcast.no_batching.Abcast.flush_ms
      & info [ "flush" ] ~doc:"Batch flush timer, ms.")
  in
  let no_retransmit =
    Arg.(
      value & flag
      & info [ "no-retransmit" ]
          ~doc:"Run directly over the lossy links, without the retransmission channel.")
  in
  let app_flag =
    Arg.(
      value & flag
      & info [ "app" ]
          ~doc:
            "Host the replicated KV/ledger machine on every cell's \
             broadcasts and add the application battery (dedup, order, \
             state-hash agreement, progress) to each verdict: a cell \
             where ordered commands never take effect fails semantically, \
             not just at the message level.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Run each cell as a forked loopback-TCP cluster instead of a \
             simulation: the same seeded plan drives each node's transport \
             interposer and the merged trace goes through the same checker. \
             Exit 2 when the environment cannot create loopback sockets.")
  in
  let replay_check =
    Arg.(
      value & flag
      & info [ "replay-check" ]
          ~doc:
            "After the sweep, rerun one seed per (stack, plan) cell twice \
             and fail if the trace fingerprints differ — a determinism gate \
             for the replay commands the sweep prints.  Simulation only; \
             skipped (with a note) under $(b,--live).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Run up to $(docv) (stack, plan) cells concurrently on OCaml \
             domains.  Each cell's simulation stays single-domain and the \
             merged matrix, fingerprints and exit criteria are bit-identical \
             to --jobs 1; only progress-line interleaving varies.  Forced to \
             1 under $(b,--live) (live cells fork processes).")
  in
  let jobs_check =
    Arg.(
      value & flag
      & info [ "jobs-check" ]
          ~doc:
            "After the sweep, rerun it at --jobs 1 and at max(--jobs, 2) \
             and fail unless every run's trace fingerprint is identical — \
             the determinism fence on the parallel sweep.  Simulation only.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-cell progress and every failing seed.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Seeded fault-injection sweep (stacks x fault plans x seeds), simulated or live")
    Term.(
      const exec $ seeds $ seed_base $ n $ stacks $ plans $ batch $ pipeline
      $ flush $ no_retransmit $ app_flag $ live $ replay_check $ jobs
      $ jobs_check $ verbose)

(* Live runtime: `cluster` forks a real loopback-TCP cluster and checks
   the merged delivery logs; `node` runs a single process of one (for
   driving a cluster by hand across terminals, or as the child of
   `cluster --exec`). *)

module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster
module Trace_io = Ics_runtime.Trace_io

let pp_latency ppf (l : Cluster.latency) =
  Format.fprintf ppf "mean=%.2f ms p95=%.2f ms p99=%.2f ms max=%.2f ms (%d samples)"
    l.Cluster.mean_ms l.Cluster.p95_ms l.Cluster.p99_ms l.Cluster.max_ms
    l.Cluster.samples

let cluster_cmd =
  let exec profile keep_dir use_exec =
    let spawn = if use_exec then `Exec Sys.executable_name else `Fork in
    let config =
      {
        Cluster.default with
        Cluster.node = { Node.default_workload with Node.profile };
        keep_dir;
        spawn;
      }
    in
    match Cluster.run config with
    | Error reason ->
        Format.eprintf "cluster: skip: %s@." reason;
        exit 2
    | Ok o ->
        Format.printf "cluster: %s, %d msgs/node, %d B payloads over loopback TCP%s@."
          (Profile.describe profile) profile.Profile.count
          profile.Profile.body_bytes
          (if use_exec then " (exec spawn)" else "");
        Array.iteri
          (fun i d ->
            Format.printf "  node %d: %d/%d adelivered, exit %d@." i d
              o.Cluster.expected_per_node o.Cluster.exits.(i))
          o.Cluster.delivered_per_node;
        (match o.Cluster.latency with
        | Some l -> Format.printf "latency: %a@." pp_latency l
        | None -> ());
        Format.printf "throughput: %.0f msg/s over %.1f ms (%d trace events)@."
          o.Cluster.throughput_msg_s o.Cluster.duration_ms o.Cluster.events;
        if keep_dir then Format.printf "traces: %s@." o.Cluster.trace_dir;
        Format.printf "checker: %a@." Ics_checker.Checker.pp_verdict o.Cluster.verdict;
        if not (Cluster.ok o) then exit 1
  in
  let profile = profile_term Profile.default in
  let keep_dir =
    Arg.(value & flag & info [ "keep-traces" ] ~doc:"Keep the per-node trace files.")
  in
  let use_exec =
    Arg.(
      value & flag
      & info [ "exec" ]
          ~doc:
            "Spawn children as fresh $(b,node) processes of this executable \
             (configuration passed as flags) instead of forking — exercises \
             the Profile.to_args round-trip a hand-driven cluster uses.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Fork a live n-node cluster over loopback TCP and check the merged delivery logs"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Forks $(b,--n) real OS processes, each running the full protocol stack \
              over the binary wire codec and a localhost TCP mesh. Every node \
              A-broadcasts $(b,--count) messages; the run ends when all nodes have \
              A-delivered everything (or at $(b,--timeout)). The per-node delivery \
              logs are merged and replayed through the same checker the simulator \
              uses. Exit status: 0 on success, 1 if the checker or a node failed, 2 \
              if the environment cannot create loopback sockets.";
         ])
    Term.(const exec $ profile $ keep_dir $ use_exec)

let node_cmd =
  let exec self ports profile epoch trace_out stats_out =
    let ports =
      String.split_on_char ',' ports
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some p when p > 0 && p < 65536 -> p
             | _ ->
                 Format.eprintf "node: bad port %s@." s;
                 exit 2)
    in
    let n = List.length ports in
    if n < 2 then begin
      Format.eprintf "node: need at least two ports@.";
      exit 2
    end;
    if self < 0 || self >= n then begin
      Format.eprintf "node: --self %d out of range for %d ports@." self n;
      exit 2
    end;
    let addrs =
      Array.of_list
        (List.map (fun p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)) ports)
    in
    let listen =
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "node: skip: cannot create sockets (%s)@." (Unix.error_message e);
          exit 2
      | fd -> (
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          match
            Unix.bind fd addrs.(self);
            Unix.listen fd 64
          with
          | () -> fd
          | exception Unix.Unix_error (e, _, _) ->
              Format.eprintf "node: cannot bind port %d: %s@." (List.nth ports self)
                (Unix.error_message e);
              exit 2)
    in
    (* lint: allow D2 — the live node's shared time origin defaults to the real clock by design *)
    let epoch = match epoch with Some e -> e | None -> Unix.gettimeofday () in
    let config =
      {
        Node.default_workload with
        Node.self;
        profile = { profile with Profile.n };
      }
    in
    let r = Node.run ~epoch ~listen ~peer_addrs:addrs config in
    (match trace_out with
    | Some path ->
        Trace_io.save path r.Node.trace ~keep:(fun e -> e.Ics_sim.Trace.pid = self)
    | None -> ());
    (match stats_out with
    | Some path -> Trace_io.save_kv path (Node.result_kv r)
    | None -> ());
    Format.printf "node %d: %d/%d adelivered, %s@." self r.Node.delivered r.Node.expected
      (if r.Node.clean_exit then "all nodes done" else "deadline hit");
    Format.printf "net: %d frames out (%d B), %d frames in (%d B), %d decode errors@."
      r.Node.net.Ics_runtime.Socket_transport.frames_out
      r.Node.net.Ics_runtime.Socket_transport.bytes_out
      r.Node.net.Ics_runtime.Socket_transport.frames_in
      r.Node.net.Ics_runtime.Socket_transport.bytes_in
      r.Node.net.Ics_runtime.Socket_transport.decode_errors;
    if not r.Node.clean_exit then exit 10
  in
  let self =
    Arg.(required & opt (some int) None & info [ "self" ] ~doc:"This node's index into the port list.")
  in
  let ports =
    Arg.(
      required
      & opt (some string) None
      & info [ "ports" ] ~docv:"P0,P1,..."
          ~doc:"Comma-separated loopback ports, one per node; index $(b,--self) is ours.")
  in
  let profile = profile_term Profile.default in
  let epoch =
    Arg.(
      value
      & opt (some float) None
      & info [ "epoch" ]
          ~doc:"Shared time origin (seconds since the Unix epoch); defaults to now. Give \
                all nodes the same value to align their workload timers.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:"Write this node's delivery log here on exit (the format Cluster merges).")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"PATH"
          ~doc:"Write this node's fault/retransmission counters here on exit.")
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:"Run one live node of a cluster (for driving a cluster by hand)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs a single process of an n-node stack over loopback TCP, dialing the \
              peers in $(b,--ports). Start one in each terminal; they retry their \
              dials briefly, so start order does not matter. The process count comes \
              from the port list. Exit status: 0 when all nodes completed the \
              workload, 10 on deadline, 2 on setup errors.";
         ])
    Term.(const exec $ self $ ports $ profile $ epoch $ trace_out $ stats_out)

(* `bench` command: the saturation sweep — offered-load points on the
   sim or live backend, each point correctness-gated by the full checker
   battery, knee reported at the end. *)

module Saturation = Ics_workload.Saturation

let bench_cmd =
  let exec profile offered live duration size seed replay_check =
    let loads =
      String.split_on_char ',' offered
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match float_of_string_opt s with
             | Some v when v > 0.0 && Float.is_finite v -> v
             | _ ->
                 Format.eprintf "bench: bad offered load %s@." s;
                 exit 2)
    in
    if loads = [] then begin
      Format.eprintf "bench: --offered-load is empty@.";
      exit 2
    end;
    let n = profile.Profile.n in
    let algo = profile.Profile.algo in
    let ordering = profile.Profile.ordering in
    let broadcast = profile.Profile.broadcast in
    let batching = Profile.batching profile in
    Format.printf
      "saturation: %s dissemination=%s batch=%d pipeline=%d flush=%.1fms %s@."
      (Profile.describe profile)
      (Profile.broadcast_to_string broadcast)
      batching.Abcast.batch batching.Abcast.pipeline batching.Abcast.flush_ms
      (if live then "live" else "sim");
    if replay_check then begin
      match
        Saturation.replay_check ~seed ~algo ~ordering ~n ~batching ~broadcast ()
      with
      | Ok fp -> Format.printf "replay check: bit-identical (%s)@." fp
      | Error (a, b) ->
          Format.printf "FAIL: saturation cell replayed differently: %s vs %s@."
            a b;
          exit 1
    end;
    let curve =
      if live then begin
        if not (Saturation.live_supported ()) then begin
          Format.eprintf
            "bench: skip: loopback sockets unavailable in this environment@.";
          exit 2
        end;
        Saturation.live_curve ~seed ~algo ~ordering ~body_bytes:size
          ~duration_ms:(duration *. 1000.0) ~n ~batching ~broadcast loads
      end
      else
        Saturation.sim_curve ~seed ~algo ~ordering ~body_bytes:size
          ~duration_ms:(duration *. 1000.0) ~n ~batching ~broadcast loads
    in
    Format.printf
      "@.%10s %10s %9s %9s %9s %9s %6s  %s@." "offered" "achieved" "mean"
      "p95" "p99" "max" "util" "status";
    List.iter
      (fun (p : Saturation.point) ->
        Format.printf "%10.0f %10.0f %9.2f %9.2f %9.2f %9.2f %6s  %s@."
          p.Saturation.offered p.Saturation.achieved p.Saturation.latency.Stats.mean
          p.Saturation.latency.Stats.p95 p.Saturation.latency.Stats.p99
          p.Saturation.latency.Stats.max
          (if Float.is_nan p.Saturation.util then "-"
           else Printf.sprintf "%.0f%%" (p.Saturation.util *. 100.0))
          (if not p.Saturation.checker_ok then "CHECKER FAIL"
           else if Saturation.healthy p then "ok"
           else "overload (checker ok)"))
      curve.Saturation.points;
    (match Saturation.knee curve with
    | Some k ->
        Format.printf "@.knee: %.0f msg/s achieved at %.0f offered (p99 %.2f ms)@."
          k.Saturation.achieved k.Saturation.offered k.Saturation.latency.Stats.p99
    | None -> Format.printf "@.knee: no points ran@.");
    if List.exists (fun (p : Saturation.point) -> not p.Saturation.checker_ok)
         curve.Saturation.points
    then begin
      Format.printf "FAIL: a point violated the checker battery@.";
      exit 1
    end
  in
  let profile = profile_term ~specs:Profile.stack_specs Profile.default in
  let offered =
    Arg.(
      value
      & opt string "500,1000,2000,4000,8000"
      & info [ "offered-load" ] ~docv:"R0,R1,..."
          ~doc:"Comma-separated offered loads, msg/s cluster-wide.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Run each point as a forked loopback-TCP cluster instead of a \
             simulation. Exit 2 when the environment cannot create sockets.")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Seconds of arrivals per point.")
  in
  let size = Arg.(value & opt int 32 & info [ "size" ] ~doc:"Payload bytes.") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Run seed.") in
  let replay_check =
    Arg.(
      value & flag
      & info [ "replay-check" ]
          ~doc:
            "First rerun one deterministic sim cell of this configuration \
             twice and fail unless the trace fingerprints match — the \
             determinism gate for the batched/pipelined/ring path.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Offered-load saturation sweep (knee curve), simulated or live"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the configured stack at each $(b,--offered-load) point with \
              the full checker battery on, reports achieved throughput and \
              latency percentiles per point, and prints the knee — the fastest \
              point that is still checker-green and finished cleanly. Exit \
              status: 0 on success (overloaded points are expected past the \
              knee), 1 if any point fails the checker, 2 if $(b,--live) has no \
              socket support.";
         ])
    Term.(
      const exec $ profile $ offered $ live $ duration $ size $ seed
      $ replay_check)

(* `service` command: the closed-loop client plane — sessions submit to
   the replicated KV/ledger through the full stack, the point is judged
   by the abcast battery plus the application battery, and (with --live)
   the live cluster's final state hash must match the simulator's. *)

module Service = Ics_workload.Service

let service_cmd =
  let exec n clients requests seed batch pipeline flush live attempts
      replay_check =
    let batching = { Abcast.batch; pipeline; flush_ms = flush } in
    if batch < 1 || pipeline < 1 || flush < 0.0 || n < 1 || clients < 1
       || requests < 1
    then begin
      Format.eprintf
        "service: --n/--clients/--requests/--batch/--pipeline must be >= 1, \
         --flush >= 0@.";
      exit 2
    end;
    if replay_check then begin
      match Service.replay_check ~seed ~batching ~n () with
      | Ok fp -> Format.printf "replay check: bit-identical (%s)@." fp
      | Error (a, b) ->
          Format.printf "FAIL: service cell replayed differently: %s vs %s@." a
            b;
          exit 1
    end;
    let pp_point (p : Service.point) =
      Format.printf
        "%-4s n=%d clients=%d requests=%d: %d commands, %.0f cmd/s, p50 %.2f \
         ms, p99 %.2f ms, %s%s@."
        (match p.Service.backend with `Sim -> "sim" | `Live -> "live")
        p.Service.n p.Service.clients p.Service.requests p.Service.commands
        p.Service.achieved p.Service.latency.Stats.p50
        p.Service.latency.Stats.p99
        (if p.Service.checker_ok && p.Service.clean then "ok"
         else if not p.Service.checker_ok then "CHECKER FAIL"
         else "INCOMPLETE")
        (match p.Service.hash with
        | Some (c, h) -> Printf.sprintf " (hash %Lx @ %d)" h c
        | None -> "")
    in
    let sim = Service.sim_point ~seed ~batching ~n ~clients ~requests () in
    pp_point sim;
    let failed = ref (not (sim.Service.checker_ok && sim.Service.clean)) in
    if live then begin
      if not (Service.live_supported ()) then begin
        Format.eprintf
          "service: skip: loopback sockets unavailable in this environment@.";
        exit 2
      end;
      match
        Service.live_point ~seed ~batching ~attempts ~n ~clients ~requests ()
      with
      | Error reason ->
          Format.eprintf "service: skip: %s@." reason;
          exit 2
      | Ok lp ->
          pp_point lp;
          if not (lp.Service.checker_ok && lp.Service.clean) then failed := true;
          if Service.hash_match sim lp then
            Format.printf "state hash: sim and live agree@."
          else begin
            Format.printf
              "FAIL: sim and live disagree on the final state hash@.";
            failed := true
          end
    end;
    if !failed then begin
      Format.printf "FAIL: a service point violated its battery@.";
      exit 1
    end
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of replicas.") in
  let clients =
    Arg.(value & opt int 200 & info [ "clients" ] ~doc:"Closed-loop client sessions.")
  in
  let requests =
    Arg.(value & opt int 3 & info [ "requests" ] ~doc:"Commands per client.")
  in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Run seed.") in
  let batch =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~doc:"Fresh ids that trigger a consensus proposal.")
  in
  let pipeline =
    Arg.(
      value & opt int 4
      & info [ "pipeline" ] ~doc:"Concurrent consensus instances.")
  in
  let flush =
    Arg.(value & opt float 1.0 & info [ "flush" ] ~doc:"Batch flush timer, ms.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Also run the point as a forked loopback-TCP cluster and require \
             its final state hash to match the simulator's, bit for bit. \
             Exit 2 when the environment cannot create sockets.")
  in
  let attempts =
    Arg.(
      value & opt int 2
      & info [ "attempts" ]
          ~doc:"Best-of-k reruns for an unhealthy live point (checker-gated).")
  in
  let replay_check =
    Arg.(
      value & flag
      & info [ "replay-check" ]
          ~doc:
            "First rerun one deterministic sim service cell twice and fail \
             unless the trace fingerprints match.")
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:"Closed-loop KV/ledger service point, checker- and hash-gated"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs $(b,--clients) closed-loop sessions of $(b,--requests) \
              commands each against the replicated KV/ledger machine, on the \
              simulator and (with $(b,--live)) on a real loopback cluster. \
              Every point is gated by the full abcast checker battery plus \
              the application battery (exactly-once, per-client order, \
              state-hash agreement, progress); the live point must also \
              reproduce the simulator's final state hash. Exit status: 0 on \
              success, 1 on any checker/hash failure, 2 when $(b,--live) has \
              no socket support.";
         ])
    Term.(
      const exec $ n $ clients $ requests $ seed $ batch $ pipeline $ flush
      $ live $ attempts $ replay_check)

let list_cmd =
  let exec () =
    List.iter
      (fun f -> Format.printf "%-6s %s@." f.Figures.id f.Figures.title)
      Figures.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the figures this tool can regenerate") Term.(const exec $ const ())

let () =
  let doc = "Atomic broadcast with indirect consensus (Ekwall & Schiper, DSN 2006) simulator" in
  let info = Cmd.info "ics-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            figure_cmd;
            violation_cmd;
            chaos_cmd;
            trace_cmd;
            cluster_cmd;
            node_cmd;
            bench_cmd;
            service_cmd;
            list_cmd;
          ]))
