(* Determinism & protocol-safety linter CLI (see lib/lint/lint.mli for
   the rule catalog).  Exit status: 0 clean, 1 findings, 2 internal
   error — `make lint` runs this as part of `make verify`. *)

module Lint = Ics_lint.Lint

let usage =
  "ics_lint [--root DIR] [--format text|json|sarif] [--rule ID]... [--explain RULE] [FILE...]"

let () =
  let root = ref "." in
  let format = ref "text" in
  let rules = ref [] in
  let files = ref [] in
  let explain = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default .)");
      ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], fun s -> format := s),
        " output format" );
      ( "--rule",
        Arg.String (fun r -> rules := r :: !rules),
        "ID restrict the run to this rule id (repeatable; allow semantics follow)" );
      ( "--explain",
        Arg.String (fun r -> explain := r :: !explain),
        "RULE print what the rule checks and why, then exit" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  if !explain <> [] then begin
    let bad = ref false in
    List.iter
      (fun r ->
        match Lint.explain r with
        | Some text -> print_endline text
        | None ->
            Printf.eprintf "ics_lint: unknown rule %s (have: %s, allow)\n" r
              (String.concat ", " Lint.rule_ids);
            bad := true)
      (List.rev !explain);
    exit (if !bad then 2 else 0)
  end;
  List.iter
    (fun r ->
      if not (List.mem r ("allow" :: Lint.rule_ids)) then begin
        Printf.eprintf "ics_lint: unknown rule %s (have: %s)\n" r
          (String.concat ", " Lint.rule_ids);
        exit 2
      end)
    !rules;
  (* The rule filter runs inside the engine, not over its output: the
     suppression/stale-allow accounting must be computed against the
     active rule set, or a filtered run misreports allows as stale. *)
  let rules = match !rules with [] -> None | rs -> Some (List.rev rs) in
  let report =
    match List.rev !files with
    | [] -> Lint.run ?rules ~root:!root ()
    | files -> Lint.run_files ?rules ~root:!root ~files ()
  in
  (match !format with
  | "json" -> print_string (Lint.to_json report)
  | "sarif" -> print_string (Lint.to_sarif report)
  | _ -> Format.printf "%a" Lint.pp_report report);
  exit (Lint.exit_code report)
