(* Determinism & protocol-safety linter CLI (see lib/lint/lint.mli for
   the rule catalog).  Exit status: 0 clean, 1 findings, 2 internal
   error — `make lint` runs this as part of `make verify`. *)

module Lint = Ics_lint.Lint

let usage = "ics_lint [--root DIR] [--format text|json] [--rule ID]... [FILE...]"

let () =
  let root = ref "." in
  let format = ref "text" in
  let rules = ref [] in
  let files = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to scan (default .)");
      ("--format", Arg.Symbol ([ "text"; "json" ], fun s -> format := s), " output format");
      ( "--rule",
        Arg.String (fun r -> rules := r :: !rules),
        "ID restrict to this rule id (repeatable)" );
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  List.iter
    (fun r ->
      if not (List.mem r ("allow" :: Lint.rule_ids)) then begin
        Printf.eprintf "ics_lint: unknown rule %s (have: %s)\n" r
          (String.concat ", " Lint.rule_ids);
        exit 2
      end)
    !rules;
  let report =
    match List.rev !files with
    | [] -> Lint.run ~root:!root
    | files -> Lint.run_files ~root:!root ~files
  in
  let report =
    match !rules with
    | [] -> report
    | rules ->
        { report with Lint.findings = List.filter (fun f -> List.mem f.Lint.rule rules) report.Lint.findings }
  in
  (match !format with
  | "json" -> print_string (Lint.to_json report)
  | _ -> Format.printf "%a" Lint.pp_report report);
  exit (Lint.exit_code report)
