module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Msg_id = Ics_sim.Msg_id

type violation = { property : string; culprit : Pid.t option; detail : string }

let pp_violation ppf v =
  let culprit = match v.culprit with Some p -> Pid.to_string p | None -> "-" in
  Format.fprintf ppf "[%s] %s: %s" v.property culprit v.detail

type verdict = { violations : violation list; checked : string list }

let ok v = v.violations = []

let pp_verdict ppf v =
  if ok v then Format.fprintf ppf "OK (%s)" (String.concat ", " v.checked)
  else begin
    Format.fprintf ppf "%d violation(s):@." (List.length v.violations);
    List.iter (fun viol -> Format.fprintf ppf "  %a@." pp_violation viol) v.violations
  end

let merge verdicts =
  {
    violations = List.concat_map (fun v -> v.violations) verdicts;
    checked = List.concat_map (fun v -> v.checked) verdicts;
  }

module Id_set = Msg_id.Set

module Run = struct
  type t = {
    n : int;
    crash_times : (Pid.t, Time.t) Hashtbl.t;
    exit_times : (Pid.t, Time.t) Hashtbl.t;
        (* clean barrier exits (live runtime); exited processes are still
           correct, but termination checks stop at their exit time *)
    abroadcasts : (Pid.t * Msg_id.t * Time.t) list;
    adeliveries : Msg_id.t list array;  (* delivery order per process *)
    rdeliveries : Msg_id.t list array;  (* includes urb deliveries *)
    rdelivered_sets : Id_set.t array;
    proposes : (Pid.t * int * Msg_id.t list) list;
    decisions : (Pid.t * int * Msg_id.t list) list;
    first_propose_time : (int, Time.t) Hashtbl.t;
    first_decision_time : (int, Time.t) Hashtbl.t;
    first_rdeliver_time : (Pid.t * Msg_id.t, Time.t) Hashtbl.t;
    rbroadcasts : (Pid.t * Msg_id.t) list;  (* chronological *)
    local_events : [ `Bcast of Msg_id.t | `Deliv of Msg_id.t ] list array;
        (* per process, chronological broadcast-layer events *)
    app_submits : (Pid.t * int * int) list;
        (* chronological (pid, client, req); first attempts only *)
    app_applied : (int * int) list array;  (* per process, application order *)
    first_applied_time : (int * int, Time.t) Hashtbl.t;
        (* command -> earliest application anywhere *)
    app_hashes : (Pid.t * int * int64) list;  (* (pid, cursor, state hash) *)
    app_violation_events : (Pid.t * string) list;  (* machine probe firings *)
  }

  let of_trace trace ~n =
    let crash_times = Hashtbl.create 4 in
    let exit_times = Hashtbl.create 4 in
    let abroadcasts = ref [] in
    let adeliv = Array.make n [] in
    let rdeliv = Array.make n [] in
    let proposes = ref [] in
    let decisions = ref [] in
    let first_propose_time = Hashtbl.create 32 in
    let first_decision_time = Hashtbl.create 32 in
    let first_rdeliver_time = Hashtbl.create 256 in
    let rbroadcasts = ref [] in
    let local_events = Array.make n [] in
    let app_submits = ref [] in
    let app_applied = Array.make n [] in
    let first_applied_time = Hashtbl.create 256 in
    let app_hashes = ref [] in
    let app_violation_events = ref [] in
    Trace.iter trace (fun (e : Trace.event) ->
        match e.kind with
        | Trace.Crash ->
            if not (Hashtbl.mem crash_times e.pid) then
              Hashtbl.add crash_times e.pid e.time
        | Trace.Exit ->
            if not (Hashtbl.mem exit_times e.pid) then
              Hashtbl.add exit_times e.pid e.time
        | Trace.Abroadcast id -> abroadcasts := (e.pid, id, e.time) :: !abroadcasts
        | Trace.Adeliver id -> adeliv.(e.pid) <- id :: adeliv.(e.pid)
        | Trace.Rdeliver id | Trace.Urb_deliver id ->
            rdeliv.(e.pid) <- id :: rdeliv.(e.pid);
            local_events.(e.pid) <- `Deliv id :: local_events.(e.pid);
            if not (Hashtbl.mem first_rdeliver_time (e.pid, id)) then
              Hashtbl.add first_rdeliver_time (e.pid, id) e.time
        | Trace.Propose (k, ids) ->
            proposes := (e.pid, k, ids) :: !proposes;
            if not (Hashtbl.mem first_propose_time k) then
              Hashtbl.add first_propose_time k e.time
        | Trace.Decide (k, ids) ->
            decisions := (e.pid, k, ids) :: !decisions;
            if not (Hashtbl.mem first_decision_time k) then
              Hashtbl.add first_decision_time k e.time
        | Trace.Rbroadcast id | Trace.Urb_broadcast id ->
            rbroadcasts := (e.pid, id) :: !rbroadcasts;
            local_events.(e.pid) <- `Bcast id :: local_events.(e.pid)
        | Trace.App_submit (client, req) ->
            app_submits := (e.pid, client, req) :: !app_submits
        | Trace.App_applied (client, req) ->
            app_applied.(e.pid) <- (client, req) :: app_applied.(e.pid);
            if not (Hashtbl.mem first_applied_time (client, req)) then
              Hashtbl.add first_applied_time (client, req) e.time
        | Trace.App_hash (cursor, h) -> app_hashes := (e.pid, cursor, h) :: !app_hashes
        | Trace.App_violation msg ->
            app_violation_events := (e.pid, msg) :: !app_violation_events
        | Trace.Suspect _ | Trace.Trust _ | Trace.Note _
        (* Injected faults are environment events, not protocol steps: the
           properties are checked against what the protocol did under them. *)
        | Trace.Net_drop _ | Trace.Net_dup _ | Trace.Net_delay _
        | Trace.Partition_start _ | Trace.Partition_heal _ -> ());
    let adeliveries = Array.map List.rev adeliv in
    let rdeliveries = Array.map List.rev rdeliv in
    {
      n;
      crash_times;
      exit_times;
      abroadcasts = List.rev !abroadcasts;
      adeliveries;
      rdeliveries;
      rdelivered_sets = Array.map Id_set.of_list rdeliveries;
      proposes = List.rev !proposes;
      decisions = List.rev !decisions;
      first_propose_time;
      first_decision_time;
      first_rdeliver_time;
      rbroadcasts = List.rev !rbroadcasts;
      local_events = Array.map List.rev local_events;
      app_submits = List.rev !app_submits;
      app_applied = Array.map List.rev app_applied;
      first_applied_time;
      app_hashes = List.rev !app_hashes;
      app_violation_events = List.rev !app_violation_events;
    }

  let n t = t.n
  let crash_time t p = Hashtbl.find_opt t.crash_times p
  let exit_time t p = Hashtbl.find_opt t.exit_times p
  let is_correct t p = not (Hashtbl.mem t.crash_times p)
  let correct t = List.filter (is_correct t) (Pid.all ~n:t.n)
  let crashed t = List.filter (fun p -> not (is_correct t p)) (Pid.all ~n:t.n)
  let abroadcasts t = t.abroadcasts
  let adeliveries t p = t.adeliveries.(p)
  let rdeliveries t p = t.rdeliveries.(p)
  let decisions t = t.decisions
  let rbroadcasts t = t.rbroadcasts
  let local_events t p = t.local_events.(p)
  let app_submits t = t.app_submits
  let app_applied t p = t.app_applied.(p)
  let app_hashes t = t.app_hashes
end

let dup_check ~property ~primitive run seqs =
  List.concat_map
    (fun p ->
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun id ->
          if Hashtbl.mem seen id then
            Some
              {
                property;
                culprit = Some p;
                detail = Printf.sprintf "%s delivered %s twice" primitive (Msg_id.to_string id);
              }
          else begin
            Hashtbl.add seen id ();
            None
          end)
        (seqs p))
    (Pid.all ~n:(Run.n run))

(* Deliveries must come from broadcast messages. *)
let sourced_check ~property ~primitive run seqs broadcast_ids =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun id ->
          if Id_set.mem id broadcast_ids then None
          else
            Some
              {
                property;
                culprit = Some p;
                detail =
                  Printf.sprintf "%s delivered %s which was never broadcast" primitive
                    (Msg_id.to_string id);
              })
        (seqs p))
    (Pid.all ~n:(Run.n run))

let abroadcast_ids_of run =
  Id_set.of_list (List.map (fun (_, id, _) -> id) (Run.abroadcasts run))

(* Ids legitimately injected at the broadcast layer: either through atomic
   broadcast or directly via a broadcast primitive. *)
let broadcast_ids_of run =
  Id_set.union (abroadcast_ids_of run)
    (Id_set.of_list (List.map snd (Run.rbroadcasts run)))

let check_broadcast_generic ~uniform ~prefix run =
  let property name = prefix ^ "." ^ name in
  let seqs p = Run.rdeliveries run p in
  let broadcast_ids = broadcast_ids_of run in
  let correct = Run.correct run in
  let integrity =
    dup_check ~property:(property "uniform-integrity") ~primitive:prefix run seqs
    @ sourced_check ~property:(property "uniform-integrity") ~primitive:prefix run seqs
        broadcast_ids
  in
  let delivered_sets = Array.init (Run.n run) (fun p -> Id_set.of_list (seqs p)) in
  (* Validity: a correct broadcaster delivers its own message. *)
  let validity =
    List.filter_map
      (fun (p, id, _) ->
        if List.mem p correct && not (Id_set.mem id delivered_sets.(p)) then
          Some
            {
              property = property "validity";
              culprit = Some p;
              detail =
                Printf.sprintf "correct broadcaster never delivered its own %s"
                  (Msg_id.to_string id);
            }
        else None)
      (Run.abroadcasts run)
  in
  (* Agreement: deliveries by correct (or, if uniform, by any) process must
     reach every correct process. *)
  let witnesses =
    List.filter (fun p -> uniform || List.mem p correct) (Pid.all ~n:(Run.n run))
  in
  let witnessed =
    List.fold_left
      (fun acc w -> Id_set.union acc delivered_sets.(w))
      Id_set.empty witnesses
  in
  let agreement =
    List.concat_map
      (fun q ->
        let missing = Id_set.diff witnessed delivered_sets.(q) in
        List.map
          (fun id ->
            {
              property = property (if uniform then "uniform-agreement" else "agreement");
              culprit = Some q;
              detail =
                Printf.sprintf "%s delivered somewhere but not by correct %s"
                  (Msg_id.to_string id) (Pid.to_string q);
            })
          (Id_set.elements missing))
      correct
  in
  {
    violations = integrity @ validity @ agreement;
    checked =
      [
        property "validity";
        property "uniform-integrity";
        property (if uniform then "uniform-agreement" else "agreement");
      ];
  }

let check_reliable_broadcast run = check_broadcast_generic ~uniform:false ~prefix:"rb" run
let check_uniform_broadcast run = check_broadcast_generic ~uniform:true ~prefix:"urb" run

let group_by_instance events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (p, k, ids) ->
      let l = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k ((p, ids) :: l))
    events;
  Ics_prelude.Sorted_tbl.fold ~cmp:Int.compare
    (fun k l acc -> (k, List.rev l) :: acc)
    tbl []
  |> List.rev

let check_consensus run =
  let correct = Run.correct run in
  let decisions_by_k = group_by_instance run.Run.decisions in
  let proposes_by_k = group_by_instance run.Run.proposes in
  let violations = ref [] in
  let add property culprit detail = violations := { property; culprit; detail } :: !violations in
  (* Uniform integrity: at most one decision per (p, k). *)
  List.iter
    (fun (k, decs) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (p, _) ->
          if Hashtbl.mem seen p then
            add "consensus.uniform-integrity" (Some p)
              (Printf.sprintf "process decided twice in instance %d" k)
          else Hashtbl.add seen p ())
        decs)
    decisions_by_k;
  (* Uniform agreement: all decisions of an instance are the same set. *)
  List.iter
    (fun (k, decs) ->
      match decs with
      | [] -> ()
      | (p0, v0) :: rest ->
          List.iter
            (fun (p, v) ->
              if not (List.equal Msg_id.equal v v0) then
                add "consensus.uniform-agreement" (Some p)
                  (Printf.sprintf "instance %d: decided {%s} but %s decided {%s}" k
                     (String.concat "," (List.map Msg_id.to_string v))
                     (Pid.to_string p0)
                     (String.concat "," (List.map Msg_id.to_string v0))))
            rest)
    decisions_by_k;
  (* Uniform validity: the decided set was proposed by some process. *)
  List.iter
    (fun (k, decs) ->
      match decs with
      | [] -> ()
      | (_, v) :: _ ->
          let proposals =
            match List.assoc_opt k proposes_by_k with Some l -> List.map snd l | None -> []
          in
          let sorted l = List.sort Msg_id.compare l in
          if not
               (List.exists
                  (fun prop -> List.equal Msg_id.equal (sorted prop) (sorted v))
                  proposals)
          then
            add "consensus.uniform-validity" None
              (Printf.sprintf "instance %d: decided {%s} matches no proposal" k
                 (String.concat "," (List.map Msg_id.to_string v))))
    decisions_by_k;
  (* Termination: a decided instance is decided by every correct process.
     A clean barrier exit (live runtime) bounds the obligation: a process
     that left the run before an instance's first decision cannot be
     expected to have decided it (trailing pipelined instances keep
     deciding while the first nodes are already past the barrier). *)
  List.iter
    (fun (k, decs) ->
      let deciders = List.map fst decs in
      let first_decided = Hashtbl.find_opt run.Run.first_decision_time k in
      List.iter
        (fun q ->
          let excused =
            match (Run.exit_time run q, first_decided) with
            | Some te, Some td -> td > te
            | _ -> false
          in
          if (not (List.mem q deciders)) && not excused then
            add "consensus.termination" (Some q)
              (Printf.sprintf "instance %d decided elsewhere but not by correct process" k))
        correct)
    decisions_by_k;
  (* Termination: an instance proposed by a correct process decides.  Once
     the first clean exit has happened the quorum is no longer guaranteed,
     so instances first proposed after that point are exempt. *)
  let shutdown_start =
    List.fold_left
      (fun acc q ->
        match Run.exit_time run q with
        | Some te -> ( match acc with None -> Some te | Some t -> Some (Float.min t te))
        | None -> acc)
      None correct
  in
  List.iter
    (fun (k, props) ->
      let proposed_by_correct = List.exists (fun (p, _) -> List.mem p correct) props in
      let decided = List.mem_assoc k decisions_by_k in
      let excused =
        match (shutdown_start, Hashtbl.find_opt run.Run.first_propose_time k) with
        | Some te, Some tp -> tp > te
        | _ -> false
      in
      if proposed_by_correct && (not decided) && not excused then
        add "consensus.termination" None
          (Printf.sprintf "instance %d proposed by a correct process but never decided" k))
    proposes_by_k;
  {
    violations = List.rev !violations;
    checked =
      [
        "consensus.uniform-integrity";
        "consensus.uniform-agreement";
        "consensus.uniform-validity";
        "consensus.termination";
      ];
  }

let check_no_loss ?(strict = false) run =
  let correct = Run.correct run in
  (* Eventual reading: some correct process holds the payload by the end
     of the run.  Strict reading (the paper's statement): some correct
     process already held it when the instance's first decision fired. *)
  let held_by_correct ~deadline id =
    List.exists
      (fun p ->
        match deadline with
        | None -> Id_set.mem id run.Run.rdelivered_sets.(p)
        | Some t -> (
            match Hashtbl.find_opt run.Run.first_rdeliver_time (p, id) with
            | Some t' -> t' <= t
            | None -> false))
      correct
  in
  let decisions_by_k = group_by_instance run.Run.decisions in
  let violations =
    List.concat_map
      (fun (k, decs) ->
        match decs with
        | [] -> []
        | (_, v) :: _ ->
            let deadline =
              if strict then Hashtbl.find_opt run.Run.first_decision_time k else None
            in
            List.filter_map
              (fun id ->
                if held_by_correct ~deadline id then None
                else
                  Some
                    {
                      property =
                        (if strict then "indirect-consensus.no-loss-strict"
                         else "indirect-consensus.no-loss");
                      culprit = None;
                      detail =
                        Printf.sprintf
                          "instance %d decided %s but no correct process held its payload%s"
                          k (Msg_id.to_string id)
                          (if strict then " at decision time" else " by the end of the run");
                    })
              v)
      decisions_by_k
  in
  {
    violations;
    checked =
      [ (if strict then "indirect-consensus.no-loss-strict" else "indirect-consensus.no-loss") ];
  }

let is_prefix a b =
  (* a is a prefix of b *)
  let rec loop a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> Msg_id.equal x y && loop a' b'
  in
  loop a b

let check_atomic_broadcast run =
  let n = Run.n run in
  let correct = Run.correct run in
  let seqs p = Run.adeliveries run p in
  let broadcast_ids = abroadcast_ids_of run in
  let violations = ref [] in
  let add property culprit detail = violations := { property; culprit; detail } :: !violations in
  (* Uniform integrity. *)
  List.iter
    (fun v -> violations := v :: !violations)
    (dup_check ~property:"abcast.uniform-integrity" ~primitive:"abcast" run seqs
    @ sourced_check ~property:"abcast.uniform-integrity" ~primitive:"abcast" run seqs
        broadcast_ids);
  let delivered_sets = Array.init n (fun p -> Id_set.of_list (seqs p)) in
  (* Validity. *)
  List.iter
    (fun (p, id, _) ->
      if List.mem p correct && not (Id_set.mem id delivered_sets.(p)) then
        add "abcast.validity" (Some p)
          (Printf.sprintf "correct broadcaster never adelivered its own %s"
             (Msg_id.to_string id)))
    (Run.abroadcasts run);
  (* Uniform agreement: anything delivered anywhere (even by a process that
     later crashed) must be delivered by every correct process. *)
  let witnessed =
    Array.fold_left (fun acc s -> Id_set.union acc s) Id_set.empty delivered_sets
  in
  List.iter
    (fun q ->
      Id_set.iter
        (fun id ->
          add "abcast.uniform-agreement" (Some q)
            (Printf.sprintf "%s adelivered somewhere but not by correct %s"
               (Msg_id.to_string id) (Pid.to_string q)))
        (Id_set.diff witnessed delivered_sets.(q)))
    correct;
  (* Uniform total order: all sequences pairwise prefix-compatible. *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p < q then begin
            let sp = seqs p and sq = seqs q in
            let shorter, longer, sh, lo =
              if List.length sp <= List.length sq then (sp, sq, p, q) else (sq, sp, q, p)
            in
            if not (is_prefix shorter longer) then
              add "abcast.uniform-total-order" (Some sh)
                (Printf.sprintf "delivery sequence of %s is not a prefix of %s's"
                   (Pid.to_string sh) (Pid.to_string lo))
          end)
        (Pid.all ~n))
    (Pid.all ~n);
  {
    violations = List.rev !violations;
    checked =
      [
        "abcast.validity";
        "abcast.uniform-integrity";
        "abcast.uniform-agreement";
        "abcast.uniform-total-order";
      ];
  }

(* FIFO order: for each origin, a process's deliveries of that origin's
   messages must be a prefix of the origin's broadcast order. *)
let check_fifo_order run =
  let by_origin = Hashtbl.create 8 in
  List.iter
    (fun (origin, id) ->
      let l = try Hashtbl.find by_origin origin with Not_found -> [] in
      Hashtbl.replace by_origin origin (id :: l))
    (Run.rbroadcasts run);
  let violations = ref [] in
  (* Key-sorted so the violation report order is stable across runs. *)
  Ics_prelude.Sorted_tbl.iter ~cmp:Pid.compare
    (fun origin rev_order ->
      let order = List.rev rev_order in
      List.iter
        (fun p ->
          let delivered_from_origin =
            List.filter (fun id -> List.mem id order) (Run.rdeliveries run p)
          in
          if not (is_prefix delivered_from_origin order) then
            violations :=
              {
                property = "broadcast.fifo-order";
                culprit = Some p;
                detail =
                  Printf.sprintf "deliveries of %s's messages are out of broadcast order"
                    (Pid.to_string origin);
              }
              :: !violations)
        (Pid.all ~n:(Run.n run)))
    by_origin;
  { violations = List.rev !violations; checked = [ "broadcast.fifo-order" ] }

(* Causal order: m1 happens-before m2 when m2's origin had broadcast or
   delivered m1 before broadcasting m2; every process delivering both must
   deliver m1 first. *)
let check_causal_order run =
  (* For each broadcast message, the set of ids its origin had seen (sent
     or delivered) strictly before broadcasting it. *)
  let predecessors = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let seen = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | `Bcast id ->
              Hashtbl.replace predecessors id !seen;
              seen := id :: !seen
          | `Deliv id -> if not (List.mem id !seen) then seen := id :: !seen)
        (Run.local_events run p))
    (Pid.all ~n:(Run.n run));
  let violations = ref [] in
  List.iter
    (fun p ->
      let pos = Hashtbl.create 64 in
      List.iteri (fun i id -> if not (Hashtbl.mem pos id) then Hashtbl.add pos id i)
        (Run.rdeliveries run p);
      Ics_prelude.Sorted_tbl.iter ~cmp:Msg_id.compare
        (fun m2 preds ->
          match Hashtbl.find_opt pos m2 with
          | None -> ()
          | Some i2 ->
              List.iter
                (fun m1 ->
                  match Hashtbl.find_opt pos m1 with
                  | Some i1 when i1 > i2 ->
                      violations :=
                        {
                          property = "broadcast.causal-order";
                          culprit = Some p;
                          detail =
                            Printf.sprintf "%s causally precedes %s but was delivered after"
                              (Msg_id.to_string m1) (Msg_id.to_string m2);
                        }
                        :: !violations
                  | Some _ -> ()
                  | None ->
                      violations :=
                        {
                          property = "broadcast.causal-order";
                          culprit = Some p;
                          detail =
                            Printf.sprintf "%s delivered without its causal predecessor %s"
                              (Msg_id.to_string m2) (Msg_id.to_string m1);
                        }
                        :: !violations)
                preds)
        predecessors)
    (Pid.all ~n:(Run.n run));
  { violations = List.rev !violations; checked = [ "broadcast.causal-order" ] }

let check_all_abcast run =
  merge
    [
      check_atomic_broadcast run;
      check_consensus run;
      check_no_loss run;
      check_no_loss ~strict:true run;
    ]

(* The application layer's semantic properties, checked against the app
   trace events the hosted state machine emits.  These sit above the
   abstract abcast properties: a run can order ids perfectly and still be
   wrong here (a machine that lost a command, diverged state, or applied
   a retry twice), and conversely a blackout that merely *stalls* the
   stack shows up as client commands that never take effect even though
   no ordering property is violated. *)
let check_app run =
  let violations = ref [] in
  let add property culprit detail =
    violations := { property; culprit; detail } :: !violations
  in
  (* app.probes: the machine's own invariant probes (conservation of
     funds, read-your-writes, gap, cas) must never fire. *)
  List.iter
    (fun (p, msg) -> add "app.probes" (Some p) msg)
    run.Run.app_violation_events;
  (* app.dedup / app.order: effects are exactly-once and per-client FIFO.
     An App_applied event is an executed (non-duplicate) command, so per
     process each (client, req) appears at most once, with each client's
     reqs strictly increasing. *)
  List.iter
    (fun p ->
      let last = Hashtbl.create 64 in
      List.iter
        (fun (client, req) ->
          (match Hashtbl.find_opt last client with
          | Some r when req = r ->
              add "app.dedup" (Some p)
                (Printf.sprintf "client %d req %d took effect twice" client req)
          | Some r when req < r ->
              add "app.order" (Some p)
                (Printf.sprintf "client %d req %d applied after req %d" client req r)
          | _ -> ());
          match Hashtbl.find_opt last client with
          | Some r when r > req -> ()
          | _ -> Hashtbl.replace last client req)
        (Run.app_applied run p))
    (Pid.all ~n:(Run.n run));
  (* app.hash-agreement: replicas at the same cursor hold the same state.
     Stronger than total order alone — it certifies the machines executed
     the shared order to identical effect, on either backend. *)
  let by_cursor = Hashtbl.create 32 in
  List.iter
    (fun (p, cursor, h) ->
      let l = try Hashtbl.find by_cursor cursor with Not_found -> [] in
      Hashtbl.replace by_cursor cursor ((p, h) :: l))
    run.Run.app_hashes;
  Ics_prelude.Sorted_tbl.iter ~cmp:Int.compare
    (fun cursor entries ->
      match List.rev entries with
      | [] -> ()
      | (p0, h0) :: rest ->
          List.iter
            (fun (p, h) ->
              if not (Int64.equal h h0) then
                add "app.hash-agreement" (Some p)
                  (Printf.sprintf "state hash %Lx at cursor %d, but %s hashed %Lx" h
                     cursor (Pid.to_string p0) h0))
            rest)
    by_cursor;
  (* app.progress: a command submitted by a correct process takes effect
     at every correct replica.  This is the end-to-end liveness statement
     — and the semantic blackout signal: a stalled-but-safe run fails
     here, because clients submitted and nothing ever happened.  Crashed
     submitters are excused (their command may never have left the node);
     a replica that exited before the command's first application
     anywhere is excused (it left the run before the effect existed). *)
  let submit_seen = Hashtbl.create 256 in
  let correct = Run.correct run in
  List.iter
    (fun (src, client, req) ->
      if (not (Hashtbl.mem submit_seen (client, req))) && Run.is_correct run src
      then begin
        Hashtbl.add submit_seen (client, req) ();
        let first_applied = Hashtbl.find_opt run.Run.first_applied_time (client, req) in
        List.iter
          (fun q ->
            let applied_here =
              List.exists
                (fun (c, r) -> c = client && r = req)
                (Run.app_applied run q)
            in
            let excused =
              match (Run.exit_time run q, first_applied) with
              | Some te, Some ta -> ta > te
              | _ -> false
            in
            if (not applied_here) && not excused then
              add "app.progress" (Some q)
                (Printf.sprintf
                   "client %d req %d submitted by correct %s but never took effect"
                   client req (Pid.to_string src)))
          correct
      end)
    run.Run.app_submits;
  {
    violations = List.rev !violations;
    checked =
      [ "app.probes"; "app.dedup"; "app.order"; "app.hash-agreement"; "app.progress" ];
  }
