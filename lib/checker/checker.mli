(** Trace-based property checking.

    Every run of the simulator produces a {!Ics_sim.Trace.t}; this module
    replays a trace against the formal specifications of §2 of the paper
    and reports violations with enough detail to debug.  Checks are
    end-of-run (the "eventually" of liveness properties is interpreted as
    "by the quiescent end of the run", so liveness checks are only
    meaningful for runs that reached quiescence).

    Checked abstractions:
    - {e reliable broadcast}: Validity, Uniform integrity, Agreement;
    - {e uniform reliable broadcast}: the above plus Uniform agreement;
    - {e consensus / indirect consensus}: Uniform integrity, Uniform
      agreement, Uniform validity, Termination, and the {b No loss}
      property (every decided identifier is eventually held by some
      correct process — approximated on traces as: some correct process
      eventually rdelivers it);
    - {e atomic broadcast}: Validity, Uniform integrity, Uniform
      agreement, Uniform total order. *)

module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Msg_id = Ics_sim.Msg_id

type violation = {
  property : string;  (** e.g. ["abcast.validity"] *)
  culprit : Pid.t option;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type verdict = { violations : violation list; checked : string list }

val ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val merge : verdict list -> verdict
(** Concatenate violations and checked-property lists. *)

(** The crash/correctness view extracted from a trace. *)
module Run : sig
  type t

  val of_trace : Trace.t -> n:int -> t
  val n : t -> int
  val correct : t -> Pid.t list
  (** Processes with no [Crash] event in the trace. *)

  val crashed : t -> Pid.t list
  val crash_time : t -> Pid.t -> Time.t option

  val exit_time : t -> Pid.t -> Time.t option
  (** Clean barrier exit ([Trace.Exit]), if any: the process stayed
      correct but left the run at this time, so termination obligations
      stop accruing for it past this point. *)

  val abroadcasts : t -> (Pid.t * Msg_id.t * Time.t) list
  val adeliveries : t -> Pid.t -> Msg_id.t list
  (** Identifiers in delivery order at one process. *)

  val rdeliveries : t -> Pid.t -> Msg_id.t list
  val decisions : t -> (Pid.t * int * Msg_id.t list) list

  val rbroadcasts : t -> (Pid.t * Msg_id.t) list
  (** Broadcast-layer send events, chronological. *)

  val local_events : t -> Pid.t -> [ `Bcast of Msg_id.t | `Deliv of Msg_id.t ] list
  (** One process's broadcast-layer events in local order. *)

  val is_correct : t -> Pid.t -> bool

  val app_submits : t -> (Pid.t * int * int) list
  (** Client commands submitted ([App_submit]), chronological; the pid is
      the submitting client's home replica.  First attempts only —
      retries reuse the identity. *)

  val app_applied : t -> Pid.t -> (int * int) list
  (** Commands that took effect at one replica, in application order
      (duplicates dropped by the machine never appear here). *)

  val app_hashes : t -> (Pid.t * int * int64) list
  (** State-hash events: (replica, applied cursor, canonical hash). *)
end

val check_reliable_broadcast : Run.t -> verdict
(** Validity (a correct broadcaster delivers its own message), Uniform
    integrity (at most once, only if broadcast), Agreement (a delivery by a
    correct process implies delivery by all correct processes). *)

val check_uniform_broadcast : Run.t -> verdict
(** As above with {e uniform} agreement: any delivery (even by a process
    that later crashed) implies delivery by all correct processes. *)

val check_consensus : Run.t -> verdict
(** Per instance: Uniform integrity (one decision per process), Uniform
    agreement (all decisions equal), Uniform validity (the decision was
    proposed, id-wise: every decided identifier appeared in some
    proposal), Termination (every correct process that proposed or that
    saw any proposal decides). *)

val check_no_loss : ?strict:bool -> Run.t -> verdict
(** The indirect-consensus No-loss property, §2.3.

    Default (eventual) reading: every identifier in any decision is
    eventually rdelivered (payload held) by at least one correct process.

    With [~strict:true], the paper's exact statement is checked: {e at the
    time of the first decision} on a value, some correct process already
    held every payload — the v-stability the algorithms establish before
    deciding (§3.1).  The correct indirect algorithms satisfy the strict
    reading; a stack that merely repairs payloads after the fact would
    pass the eventual check and fail the strict one. *)

val check_fifo_order : Run.t -> verdict
(** FIFO broadcast order: each process delivers any origin's messages as a
    prefix of that origin's broadcast order. *)

val check_causal_order : Run.t -> verdict
(** Causal broadcast order: if [m1] was broadcast or delivered at [m2]'s
    origin before [m2] was broadcast, every process delivers [m1] before
    [m2] (and never [m2] without [m1]).  Implies {!check_fifo_order}. *)

val check_atomic_broadcast : Run.t -> verdict
(** Validity (correct broadcasters' messages are delivered by all correct
    processes), Uniform integrity (each delivery happens at most once and
    only for broadcast messages), Uniform agreement (any process's
    delivery is eventually delivered by all correct processes), Uniform
    total order (all delivery sequences are prefix-compatible, crashed
    processes included). *)

val check_all_abcast : Run.t -> verdict
(** Union of {!check_atomic_broadcast}, {!check_consensus} and
    {!check_no_loss} in both readings (eventual and strict). *)

val check_app : Run.t -> verdict
(** The hosted application's semantic properties:

    - [app.probes] — the state machine's invariant probes (conservation
      of funds, read-your-writes, gap, cas) never fired;
    - [app.dedup] — no command took effect twice at a replica
      (exactly-once despite client retries);
    - [app.order] — each client's commands took effect in request order;
    - [app.hash-agreement] — replicas at the same applied cursor report
      the same canonical state hash, across backends;
    - [app.progress] — a command submitted by a correct process takes
      effect at every correct replica (crashed submitters excused; a
      replica that exited before the command first took effect anywhere
      is excused).  This is the {e semantic} failure signal: a faulty
      ordering stack that merely stalls — safe but not live — fails here
      even when every abstract abcast property still holds. *)
