(** Binary encoding primitives: fixed-width big-endian writers over a
    byte queue ({!Bq.t}), readers over a string slice, and the CRC-32
    used by the frame checksum.

    Encoders append straight into the caller's queue — on the live wire
    that is the connection's outbound buffer, so encoding a frame costs
    no intermediate [Buffer]/[Bytes] allocation.

    Every decode failure — short input, out-of-range field, trailing
    bytes — raises {!Error} and nothing else, so callers can turn any
    malformed input into one clean error path. *)

exception Error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

(** {1 Writing} *)

type writer = Bq.t

val u8 : writer -> int -> unit
val u16 : writer -> int -> unit
val u32 : writer -> int -> unit
val f64 : writer -> float -> unit
val bool : writer -> bool -> unit

val filler : writer -> int -> unit
(** Append [n] zero bytes — the stand-in for application payload content,
    whose size (not content) is what the protocols carry. *)

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
val remaining : reader -> int
val r_u8 : reader -> int
val r_u16 : reader -> int
val r_u32 : reader -> int
val r_f64 : reader -> float
val r_bool : reader -> bool
val r_skip : reader -> int -> unit

val expect_end : reader -> unit
(** @raise Error if any input remains. *)

(** {1 Checksum} *)

val crc32 : ?pos:int -> ?len:int -> string -> int
(** CRC-32 (IEEE) of the slice, as a non-negative int below [2^32]. *)

val crc32_bytes : ?pos:int -> ?len:int -> Bytes.t -> int
(** Same, over a [Bytes.t] region in place — the frame encoder's
    checksum over the body it just wrote into a queue's storage. *)
