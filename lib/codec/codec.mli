(** Wire codec: a per-constructor payload codec registry plus the framed
    binary format the live runtime speaks (DESIGN.md section 8).

    Each protocol layer registers an encoder/decoder (and a fuzz
    generator, and an arithmetic size function) for its
    {!Ics_net.Message.payload} constructors, next to where it registers
    its transport handlers.  The arithmetic sizes are what the protocol
    layers pass as [body_bytes] — the codec test suite pins
    [size p = |encode p|] for every registered constructor, so the
    simulated byte accounting and the live wire format cannot drift
    apart. *)

module Rng = Ics_prelude.Rng
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

exception Error of string
(** Alias of {!Prim.Error}: the single decode-failure exception. *)

(** {1 Registry} *)

val register :
  tag:int ->
  name:string ->
  fits:(Message.payload -> bool) ->
  size:(Message.payload -> int) ->
  encode_into:(Bq.t -> Message.payload -> unit) ->
  dec:(Prim.reader -> Message.payload) ->
  gen:(Rng.t -> Message.payload) ->
  unit
(** Register the codec for one payload constructor under a globally
    unique wire [tag] (0..255).  [size] is the full encoded body length
    {e including} the tag byte; [encode_into]/[dec] handle only the
    fields ([tag] itself is written/consumed by the registry).
    [encode_into] appends straight into the caller's queue — on the live
    wire that is the connection's outbound {!Bq.t}, so encoding never
    stages through an intermediate [Buffer].  Re-registering the same
    [name] on the same [tag] is an idempotent no-op.
    @raise Invalid_argument on a tag collision with a different codec. *)

type entry = {
  tag : int;
  name : string;
  fits : Message.payload -> bool;
  size : Message.payload -> int;
  encode_into : Bq.t -> Message.payload -> unit;
  dec : Prim.reader -> Message.payload;
  gen : Rng.t -> Message.payload;
}

val entries : unit -> entry list
(** All registered codecs, in registration order — the coverage universe
    of the round-trip property test. *)

val encode_payload : Prim.writer -> Message.payload -> unit
(** Append tag byte + fields.  @raise Error on unregistered payloads. *)

val decode_payload : Prim.reader -> Message.payload
(** @raise Error on unknown tags or malformed fields. *)

val body_bytes : Message.payload -> int
(** The registered arithmetic size (= encoded length) of a payload. *)

val measure : (Prim.writer -> unit) -> int
(** Length of an encoding, via a scratch buffer (test/bench helper). *)

(** {1 Shared value codecs} *)

val msg_id_bytes : int
val enc_msg_id : Prim.writer -> Msg_id.t -> unit
val dec_msg_id : Prim.reader -> Msg_id.t
val gen_msg_id : Rng.t -> Msg_id.t

val app_msg_bytes : App_msg.t -> int
(** [msg_id_bytes + 4 + 8 + m.body_bytes]: the declared application bytes
    are carried as real filler bytes on the wire. *)

val enc_app_msg : Prim.writer -> App_msg.t -> unit
val dec_app_msg : Prim.reader -> App_msg.t
val gen_app_msg : Rng.t -> App_msg.t

(** {1 Framing} *)

val magic : int
val version : int

val header_bytes : int
(** 16: magic, version, src u16, dst u16, layer u16, body_len u32,
    crc32 u32. *)

val layer_to_wire : string -> int option
val layer_of_wire : int -> string option

type header = {
  h_src : int;
  h_dst : int;
  h_layer : string;
  h_body_len : int;
  h_crc : int;
}

val encode_frame :
  Prim.writer -> src:int -> dst:int -> layer:string -> Message.payload -> int
(** Append one full frame (header + body) into the caller's queue and
    return the body length.  The header's [body_len] and [crc32] fields
    are {!Bq.reserve}d before the body and backpatched after it, so the
    whole frame lands in the queue with no intermediate staging buffer.
    If the payload encoder raises, the queue is truncated back to its
    pre-frame length — a partial frame never reaches the wire.
    @raise Error on unregistered payloads or unknown layer names. *)

(** {1 Legacy encode-to-Buffer shims}

    The pre-[encode_into] API, kept for tests and benches that want
    frames as strings.  [encode_frame_legacy] preserves the old
    stage-then-copy arithmetic (body staged out of line, length by
    [String.length], CRC over the extracted string), making it an
    independent reference the codec fuzzer holds the backpatching
    in-place encoder to, byte for byte. *)

val encode_payload_legacy : Buffer.t -> Message.payload -> unit
val encode_frame_legacy :
  Buffer.t -> src:int -> dst:int -> layer:string -> Message.payload -> int

val decode_header : ?pos:int -> string -> (header, string) result
(** Parse the fixed header at [pos]; never raises. *)

val decode_body : ?pos:int -> string -> header -> (Message.payload, string) result
(** Checksum-verify and decode the body at [pos]; never raises. *)

val register_builtins : unit -> unit
(** Codecs for the payloads defined below the protocol libraries
    ({!Ics_net.Message.Ping}, {!Ics_net.Retransmit.Ack}).  Runs at module
    initialization; exposed for idempotent re-registration. *)
