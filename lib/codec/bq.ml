(* Growable byte queue: append at the tail, consume from the head,
   amortized O(1) both ways.  This is the buffer discipline the whole
   wire plane shares — the codec encodes frames straight into a
   connection's outbound queue (no intermediate Buffer/Bytes per frame)
   and the transport reads from the socket straight into the inbound
   queue's tail, decoding frames in place.

   Positions handed to callers are *logical* (offset from the current
   head), never physical: growth may reallocate and compaction may slide
   the live region to offset 0, but neither moves a byte relative to the
   head, so a logical offset taken before a growth boundary still names
   the same byte after it.  That invariant is what makes the
   reserve-then-patch framing protocol (write a zero length, encode the
   body, backpatch the real length and CRC) safe. *)

type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

let create cap = { buf = Bytes.create (max cap 16); start = 0; len = 0 }

let length q = q.len
let capacity q = Bytes.length q.buf
let head q = q.start
let tail q = q.start + q.len
let unsafe_bytes q = q.buf

(* Make room for [extra] more contiguous bytes at the tail: drop the
   consumed prefix when that suffices with slack, else grow
   geometrically. *)
let ensure q extra =
  let cap = Bytes.length q.buf in
  if q.start + q.len + extra > cap then
    if q.len + extra <= cap / 2 then begin
      Bytes.blit q.buf q.start q.buf 0 q.len;
      q.start <- 0
    end
    else begin
      let rec fit c = if c >= q.len + extra then c else fit (2 * c) in
      let nb = Bytes.create (fit (max cap 1024)) in
      Bytes.blit q.buf q.start nb 0 q.len;
      q.buf <- nb;
      q.start <- 0
    end

let tail_room q = Bytes.length q.buf - q.start - q.len

(* Commit [n] bytes written externally into the tail region (by a
   [Unix.read], or into a span handed out by [reserve]). *)
let advance q n =
  if n < 0 || n > tail_room q then
    invalid_arg (Printf.sprintf "Bq.advance: %d bytes, room %d" n (tail_room q));
  q.len <- q.len + n

(* Reserve an [n]-byte span at the tail and return its logical offset.
   The span's content is unspecified until patched; it is committed
   immediately, so subsequent appends land after it and growth across
   the reservation boundary cannot move it relative to the head. *)
let reserve q n =
  ensure q n;
  let at = q.len in
  q.len <- q.len + n;
  at

let check_patch q at n =
  if at < 0 || at + n > q.len then
    invalid_arg (Printf.sprintf "Bq.patch: %d+%d outside %d queued" at n q.len)

let patch_u32 q ~at v =
  check_patch q at 4;
  let p = q.start + at in
  Bytes.unsafe_set q.buf p (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set q.buf (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set q.buf (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set q.buf (p + 3) (Char.unsafe_chr (v land 0xff))

(* Drop the tail back to [len] queued bytes — the error path of a frame
   encoder that failed halfway, so a partial frame never reaches the
   wire. *)
let truncate q ~len =
  if len < 0 || len > q.len then
    invalid_arg (Printf.sprintf "Bq.truncate: %d of %d queued" len q.len);
  q.len <- len

let add_u8 q v =
  ensure q 1;
  Bytes.unsafe_set q.buf (q.start + q.len) (Char.unsafe_chr (v land 0xff));
  q.len <- q.len + 1

let add_substring q s ~pos ~len =
  ensure q len;
  Bytes.blit_string s pos q.buf (q.start + q.len) len;
  q.len <- q.len + len

let add_string q s = add_substring q s ~pos:0 ~len:(String.length s)

let add_buffer q b =
  let blen = Buffer.length b in
  ensure q blen;
  Buffer.blit b 0 q.buf (q.start + q.len) blen;
  q.len <- q.len + blen

let get q i =
  if i < 0 || i >= q.len then
    invalid_arg (Printf.sprintf "Bq.get: %d of %d queued" i q.len);
  Bytes.unsafe_get q.buf (q.start + i)

let contents q = Bytes.sub_string q.buf q.start q.len

(* A queue that ballooned during a burst must not pin the burst-sized
   allocation forever: once drained, anything bigger than this falls
   back to it, so the steady-state footprint reflects steady-state
   backlog. *)
let rest_cap = 64 * 1024

let consume q k =
  if k < 0 || k > q.len then
    invalid_arg (Printf.sprintf "Bq.consume: %d of %d queued" k q.len);
  q.start <- q.start + k;
  q.len <- q.len - k;
  if q.len = 0 then begin
    q.start <- 0;
    if Bytes.length q.buf > rest_cap then q.buf <- Bytes.create rest_cap
  end

let clear q =
  q.start <- 0;
  q.len <- 0;
  if Bytes.length q.buf > rest_cap then q.buf <- Bytes.create rest_cap
