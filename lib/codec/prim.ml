exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Writer: a byte queue (Bq.t) with fixed-width big-endian primitives.
   Encoders append straight into the caller's queue — on the live wire
   that is the connection's outbound buffer, so a frame costs zero
   intermediate allocations. *)

type writer = Bq.t

let zeros = String.make 4096 '\x00'

let u8 w v = Bq.add_u8 w v

let u16 w v =
  if v < 0 || v > 0xffff then fail "u16 out of range: %d" v;
  u8 w (v lsr 8);
  u8 w v

let u32 w v =
  if v < 0 || v > 0xffffffff then fail "u32 out of range: %d" v;
  u8 w (v lsr 24);
  u8 w (v lsr 16);
  u8 w (v lsr 8);
  u8 w v

let f64 w v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    u8 w (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let bool w b = u8 w (if b then 1 else 0)

let filler w n =
  if n < 0 then fail "negative filler: %d" n;
  let rec go n =
    if n > 0 then begin
      let k = Stdlib.min n (String.length zeros) in
      Bq.add_substring w zeros ~pos:0 ~len:k;
      go (n - k)
    end
  in
  go n

(* Reader over an immutable string slice.  All failures raise {!Error};
   nothing else escapes. *)

type reader = { buf : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len buf =
  let limit = match len with Some l -> pos + l | None -> String.length buf in
  if pos < 0 || limit > String.length buf || pos > limit then
    fail "reader: bad slice %d+%d/%d" pos (limit - pos) (String.length buf);
  { buf; pos; limit }

let remaining r = r.limit - r.pos

let need r n =
  if remaining r < n then
    fail "truncated: need %d bytes, have %d" n (remaining r)

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  let hi = r_u8 r in
  (hi lsl 8) lor r_u8 r

let r_u32 r =
  let hi = r_u16 r in
  (hi lsl 16) lor r_u16 r

let r_f64 r =
  need r 8;
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 r))
  done;
  Int64.float_of_bits !bits

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad bool byte: %d" v

let r_skip r n =
  if n < 0 then fail "negative skip: %d" n;
  need r n;
  r.pos <- r.pos + n

let expect_end r =
  if remaining r <> 0 then fail "trailing garbage: %d bytes" (remaining r)

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). *)

(* lint: allow DS1 — the table is a pure function of the polynomial; the first crc32 call in ics_runtest forces it before the sweep spawns domains, so later forces only read *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let table = Lazy.force crc_table in
  let len = match len with Some l -> l | None -> String.length s - pos in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* The in-place variant the frame encoder uses to checksum a body it
   just wrote into a queue's storage: reading Bytes.t through
   [Bytes.unsafe_to_string] is sound because nothing mutates the region
   during the scan. *)
let crc32_bytes ?pos ?len b = crc32 ?pos ?len (Bytes.unsafe_to_string b)
