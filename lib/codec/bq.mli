(** Growable byte queue: append at the tail, consume from the head,
    amortized O(1) both ways — the buffer discipline shared by the codec
    (frames encode straight into a connection's outbound queue) and the
    live transport (sockets read straight into the inbound queue's tail,
    frames decode in place).

    All positions handed to callers are {e logical} — offsets from the
    current head.  Growth and compaction may move the physical storage,
    but never a byte relative to the head, so a logical offset taken
    before a growth boundary still names the same byte after it.  That
    is the invariant behind {!reserve}/{!patch_u32}: reserve a span for
    a length field, keep encoding (growing freely), then backpatch. *)

type t

val create : int -> t
(** [create cap] — an empty queue with at least [cap] bytes of storage. *)

val length : t -> int
(** Unconsumed bytes queued. *)

val capacity : t -> int
(** Current backing-store size in bytes. *)

val rest_cap : int
(** The resting capacity a drained queue decays to (64 KiB). *)

(** {1 Appending} *)

val add_u8 : t -> int -> unit
(** Append one byte (low 8 bits). *)

val add_string : t -> string -> unit
val add_substring : t -> string -> pos:int -> len:int -> unit
val add_buffer : t -> Buffer.t -> unit

(** {1 Reserve / advance — grow-then-backpatch} *)

val reserve : t -> int -> int
(** [reserve q n] commits an [n]-byte span at the tail (content
    unspecified until patched) and returns its logical offset, which
    stays valid across any later growth or compaction. *)

val patch_u32 : t -> at:int -> int -> unit
(** Overwrite 4 queued bytes at logical offset [at] with a big-endian
    u32.  @raise Invalid_argument outside the queued region. *)

val ensure : t -> int -> unit
(** Make room for [n] more contiguous tail bytes without committing
    them (compact or grow as needed). *)

val advance : t -> int -> unit
(** Commit [n] bytes written externally into the tail region — the
    read(2) half of the pair: [ensure] room, write into
    [unsafe_bytes] at [tail], then [advance] by the byte count.
    @raise Invalid_argument beyond the ensured room. *)

val truncate : t -> len:int -> unit
(** Drop the tail back to [len] queued bytes — the error path of a
    frame encoder that failed halfway. *)

(** {1 Reading} *)

val get : t -> int -> char
(** Byte at a logical offset.  @raise Invalid_argument out of range. *)

val contents : t -> string
(** Copy of the queued bytes (test/shim helper — the hot paths read
    {!unsafe_bytes} in place). *)

val consume : t -> int -> unit
(** Drop [k] bytes from the head; a drained queue decays its storage
    back to {!rest_cap}. *)

val clear : t -> unit

(** {1 Physical access — the in-place fast paths} *)

val unsafe_bytes : t -> Bytes.t
(** The physical backing store.  Valid only until the next append,
    [ensure] or [reserve]; callers must bound all access by [head] +
    [length] (stale bytes live beyond the logical tail). *)

val head : t -> int
(** Physical offset of logical position 0. *)

val tail : t -> int
(** Physical offset one past the last queued byte — where externally
    written bytes (committed by {!advance}) land. *)

val tail_room : t -> int
(** Contiguous free bytes at the physical tail. *)
