module Rng = Ics_prelude.Rng
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

exception Error = Prim.Error

(* ------------------------------------------------------------------ *)
(* Payload codec registry.                                            *)
(* ------------------------------------------------------------------ *)

type entry = {
  tag : int;
  name : string;
  fits : Message.payload -> bool;
  size : Message.payload -> int;
  encode_into : Bq.t -> Message.payload -> unit;
  dec : Prim.reader -> Message.payload;
  gen : Rng.t -> Message.payload;
}

(* lint: allow DS1 — write-once registry: tags are constants, registration is idempotent and completes during stack assembly, before any sweep cell forks a domain *)
let by_tag : entry option array = Array.make 256 None

(* lint: allow DS1 — registration-order audit trail, written only inside the same pre-fork registration window as by_tag *)
let order : int list ref = ref []  (* tags in registration order *)

let register ~tag ~name ~fits ~size ~encode_into ~dec ~gen =
  if tag < 0 || tag > 255 then invalid_arg "Codec.register: tag out of range";
  (match by_tag.(tag) with
  | Some e when not (String.equal e.name name) ->
      invalid_arg
        (Printf.sprintf "Codec.register: tag 0x%02x taken by %s (wanted %s)"
           tag e.name name)
  | Some _ -> ()  (* idempotent re-registration of the same codec *)
  | None -> order := tag :: !order);
  by_tag.(tag) <- Some { tag; name; fits; size; encode_into; dec; gen }

let entries () =
  List.rev_map (fun tag -> Option.get by_tag.(tag)) !order

let find_for payload =
  let rec scan = function
    | [] -> None
    | tag :: rest -> (
        match by_tag.(tag) with
        | Some e when e.fits payload -> Some e
        | _ -> scan rest)
  in
  scan !order

let constructor_name payload =
  Obj.Extension_constructor.name (Obj.Extension_constructor.of_val payload)

let encode_payload w payload =
  match find_for payload with
  | None ->
      Prim.fail "encode: unregistered payload constructor %s" (constructor_name payload)
  | Some e ->
      Prim.u8 w e.tag;
      e.encode_into w payload

let decode_payload r =
  let tag = Prim.r_u8 r in
  match by_tag.(tag) with
  | None -> Prim.fail "decode: unknown payload tag 0x%02x" tag
  | Some e -> e.dec r

let body_bytes payload =
  match find_for payload with
  | None ->
      Prim.fail "size: unregistered payload constructor %s" (constructor_name payload)
  | Some e -> e.size payload

let measure enc =
  let w = Bq.create 256 in
  enc w;
  Bq.length w

(* ------------------------------------------------------------------ *)
(* Shared value codecs.  The arithmetic size of each value is defined *)
(* next to its encoder; the codec test suite pins size = |encoding|.  *)
(* ------------------------------------------------------------------ *)

let msg_id_bytes = 6  (* u16 origin + u32 seq *)

let enc_msg_id w (id : Msg_id.t) =
  Prim.u16 w id.Msg_id.origin;
  Prim.u32 w id.Msg_id.seq

let dec_msg_id r =
  let origin = Prim.r_u16 r in
  let seq = Prim.r_u32 r in
  Msg_id.make ~origin ~seq

(* id + declared payload length + creation stamp + payload filler: the
   declared application bytes become actual bytes on the wire, which is
   what makes [body_bytes] real instead of estimated.  When the payload is
   at least eight bytes its first eight carry the application blob (two
   big-endian u32 halves — Prim has no 64-bit primitive); a blob of zero
   encodes exactly like the pre-app all-zero filler, so content-free
   messages are byte-identical to what they always were. *)
let app_msg_bytes (m : App_msg.t) = msg_id_bytes + 4 + 8 + m.App_msg.body_bytes

let enc_app_msg w (m : App_msg.t) =
  enc_msg_id w m.App_msg.id;
  Prim.u32 w m.App_msg.body_bytes;
  Prim.f64 w m.App_msg.created_at;
  if m.App_msg.body_bytes >= 8 then begin
    let blob = m.App_msg.blob in
    Prim.u32 w (Int64.to_int (Int64.shift_right_logical blob 32));
    Prim.u32 w (Int64.to_int (Int64.logand blob 0xFFFF_FFFFL));
    Prim.filler w (m.App_msg.body_bytes - 8)
  end
  else Prim.filler w m.App_msg.body_bytes

let dec_app_msg r =
  let id = dec_msg_id r in
  let body_bytes = Prim.r_u32 r in
  let created_at = Prim.r_f64 r in
  let blob =
    if body_bytes >= 8 then begin
      let hi = Prim.r_u32 r in
      let lo = Prim.r_u32 r in
      Prim.r_skip r (body_bytes - 8);
      Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)
    end
    else begin
      Prim.r_skip r body_bytes;
      0L
    end
  in
  App_msg.make ~blob ~id ~body_bytes ~created_at ()

let gen_msg_id rng = Msg_id.make ~origin:(Rng.int rng 64) ~seq:(Rng.int rng 100_000)

let gen_app_msg rng =
  let body_bytes = Rng.int rng 200 in
  let blob =
    if body_bytes >= 8 && Rng.int rng 2 = 0 then
      Int64.logor
        (Int64.shift_left (Int64.of_int (Rng.int rng 0x3FFF_FFFF)) 32)
        (Int64.of_int (Rng.int rng 0x3FFF_FFFF))
    else 0L
  in
  App_msg.make ~blob ~id:(gen_msg_id rng) ~body_bytes
    ~created_at:(Rng.float rng 10_000.0)
    ()

(* ------------------------------------------------------------------ *)
(* Frame format (DESIGN.md section 8): a fixed 16-byte header and a    *)
(* checksummed body whose first byte is the payload tag.               *)
(*                                                                    *)
(*   0      magic     0xA7                                            *)
(*   1      version   1                                               *)
(*   2-3    src       u16                                             *)
(*   4-5    dst       u16                                             *)
(*   6-7    layer     u16 (static wire id, below)                     *)
(*   8-11   body_len  u32                                             *)
(*   12-15  crc32     u32 (CRC-32/IEEE of the body)                   *)
(* ------------------------------------------------------------------ *)

let magic = 0xA7
let version = 1
let header_bytes = 16

(* Static wire ids for the layer names of this stack: the header stays
   fixed-width and nodes never have to agree on dynamic interning order. *)
let layer_table =
  [
    ("rb", 1);
    ("urb", 2);
    ("consensus", 3);
    ("fd", 4);
    ("retx-ack", 5);
    ("ctl", 6);
    ("parity", 7);  (* cross-backend fault-parity harness traffic *)
    ("app", 8);  (* client plane: cross-node command submission *)
  ]

let layer_to_wire name = List.assoc_opt name layer_table

let layer_of_wire id =
  let rec scan = function
    | [] -> None
    | (name, i) :: rest -> if i = id then Some name else scan rest
  in
  scan layer_table

type header = { h_src : int; h_dst : int; h_layer : string; h_body_len : int; h_crc : int }

(* One frame, written straight into the caller's queue — on the live
   wire that is the connection's outbound buffer, so there is no
   intermediate staging copy.  The body length is not known until the
   body is encoded, so the header's body_len/crc32 words are reserved
   and backpatched (logical offsets survive any growth the body encode
   triggers — see Bq).  On any encoder failure the queue is truncated
   back to the frame start: a partial frame must never reach a byte
   stream that cannot be resynchronized. *)
let encode_frame w ~src ~dst ~layer (payload : Message.payload) =
  let wire_layer =
    match layer_to_wire layer with
    | Some id -> id
    | None -> Prim.fail "encode: layer %s has no wire id" layer
  in
  let frame_start = Bq.length w in
  match
    Prim.u8 w magic;
    Prim.u8 w version;
    Prim.u16 w src;
    Prim.u16 w dst;
    Prim.u16 w wire_layer;
    let patch_at = Bq.reserve w 8 in
    let body_start = Bq.length w in
    encode_payload w payload;
    let body_len = Bq.length w - body_start in
    Bq.patch_u32 w ~at:patch_at body_len;
    Bq.patch_u32 w ~at:(patch_at + 4)
      (Prim.crc32_bytes (Bq.unsafe_bytes w)
         ~pos:(Bq.head w + body_start)
         ~len:body_len);
    body_len
  with
  | body_len -> body_len
  | exception e ->
      Bq.truncate w ~len:frame_start;
      raise e

(* Legacy encode-to-fresh-Buffer API, kept as a thin shim for tests and
   benches.  The frame shim deliberately preserves the old
   stage-then-copy arithmetic — body staged out of line, length taken
   with String.length, CRC over the extracted string — so it stays an
   independent reference the fuzzer can hold the backpatching in-place
   encoder to, byte for byte. *)
let encode_payload_legacy b payload =
  let w = Bq.create 256 in
  encode_payload w payload;
  Buffer.add_string b (Bq.contents w)

let encode_frame_legacy b ~src ~dst ~layer payload =
  let wire_layer =
    match layer_to_wire layer with
    | Some id -> id
    | None -> Prim.fail "encode: layer %s has no wire id" layer
  in
  let bodyq = Bq.create 256 in
  encode_payload bodyq payload;
  let body = Bq.contents bodyq in
  let u8 v = Buffer.add_char b (Char.chr (v land 0xff)) in
  let u16 v = u8 (v lsr 8); u8 v in
  let u32 v = u16 ((v lsr 16) land 0xffff); u16 (v land 0xffff) in
  u8 magic;
  u8 version;
  u16 src;
  u16 dst;
  u16 wire_layer;
  u32 (String.length body);
  u32 (Prim.crc32 body);
  Buffer.add_string b body;
  String.length body

let decode_header ?(pos = 0) buf =
  try
    let r = Prim.reader ~pos ~len:header_bytes buf in
    if Prim.r_u8 r <> magic then Prim.fail "bad magic";
    let v = Prim.r_u8 r in
    if v <> version then Prim.fail "unsupported version %d" v;
    let h_src = Prim.r_u16 r in
    let h_dst = Prim.r_u16 r in
    let wire_layer = Prim.r_u16 r in
    let h_body_len = Prim.r_u32 r in
    let h_crc = Prim.r_u32 r in
    match layer_of_wire wire_layer with
    | None -> Stdlib.Error (Printf.sprintf "unknown wire layer id %d" wire_layer)
    | Some h_layer -> Stdlib.Ok { h_src; h_dst; h_layer; h_body_len; h_crc }
  with Prim.Error e -> Stdlib.Error e

let decode_body ?(pos = 0) buf (h : header) =
  try
    if String.length buf - pos < h.h_body_len then
      Prim.fail "truncated body: have %d of %d bytes" (String.length buf - pos)
        h.h_body_len
    else if Prim.crc32 ~pos ~len:h.h_body_len buf <> h.h_crc then
      Prim.fail "checksum mismatch"
    else begin
      let r = Prim.reader ~pos ~len:h.h_body_len buf in
      let payload = decode_payload r in
      Prim.expect_end r;
      Stdlib.Ok payload
    end
  with Prim.Error e -> Stdlib.Error e

(* ------------------------------------------------------------------ *)
(* Built-in payloads that live below the protocol libraries.           *)
(* ------------------------------------------------------------------ *)

let tag_ping = 0x01
let tag_retx_ack = 0x08
let tag_retx_seq = 0x09

let register_builtins () =
  register ~tag:tag_ping ~name:"ping"
    ~fits:(function Message.Ping -> true | _ -> false)
    ~size:(fun _ -> 1)
    ~encode_into:(fun _ _ -> ())
    ~dec:(fun _ -> Message.Ping)
    ~gen:(fun _ -> Message.Ping);
  register ~tag:tag_retx_ack ~name:"retx.ack"
    ~fits:(function Ics_net.Retransmit.Ack _ -> true | _ -> false)
    ~size:(fun _ -> 1 + 4)
    ~encode_into:(fun w p ->
      match p with
      | Ics_net.Retransmit.Ack { upto } -> Prim.u32 w upto
      | _ -> assert false)
    ~dec:(fun r -> Ics_net.Retransmit.Ack { upto = Prim.r_u32 r })
    ~gen:(fun rng -> Ics_net.Retransmit.Ack { upto = Rng.int rng 10_000 });
  (* Wire-level retransmission frame: sequence number + the nested
     payload, encoded through the registry recursively. *)
  register ~tag:tag_retx_seq ~name:"retx.seq"
    ~fits:(function Ics_net.Retransmit.Seq _ -> true | _ -> false)
    ~size:(fun p ->
      match p with
      | Ics_net.Retransmit.Seq { inner; _ } ->
          Ics_net.Retransmit.seq_overhead + body_bytes inner
      | _ -> assert false)
    ~encode_into:(fun w p ->
      match p with
      | Ics_net.Retransmit.Seq { seq; inner } ->
          Prim.u32 w seq;
          encode_payload w inner
      | _ -> assert false)
    ~dec:(fun r ->
      let seq = Prim.r_u32 r in
      Ics_net.Retransmit.Seq { seq; inner = decode_payload r })
    ~gen:(fun rng ->
      Ics_net.Retransmit.Seq { seq = Rng.int rng 10_000; inner = Message.Ping })

let () = register_builtins ()
