(** Unreliable failure detectors.

    The consensus algorithms of the paper are built on the class ◇S
    (eventually strong): eventually every crashed process is permanently
    suspected by every correct process (strong completeness) and eventually
    some correct process is never suspected (eventual weak accuracy).
    Before that "eventually", a detector may be arbitrarily wrong.

    Three implementations:
    - {!oracle}: a simulation-level eventually-perfect detector — observers
      learn of a crash a fixed delay after it happens and never suspect
      falsely.  ◇P ⊆ ◇S, so every algorithm requiring ◇S is happy; good
      runs carry no detector traffic, matching the paper's failure-free
      benchmark configuration.
    - {!heartbeat}: a message-based detector (periodic heartbeats + timeout)
      that loads the network and can suspect falsely under congestion —
      only eventually accurate, exactly ◇S-flavoured reality.
    - {!manual}: suspicion state driven explicitly by a test, used to build
      the adversarial executions of §3.3.2. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type t

val is_suspected : t -> by:Pid.t -> Pid.t -> bool
(** Does observer [by] currently suspect the target? *)

val on_suspect : t -> observer:Pid.t -> (Pid.t -> unit) -> unit
(** Persistent subscription: the callback fires each time [observer] starts
    suspecting some process.  Multiple subscribers are all notified, in
    registration order. *)

val on_trust : t -> observer:Pid.t -> (Pid.t -> unit) -> unit
(** Fires when a previously suspected process is trusted again (possible
    with {!heartbeat} and {!manual} only). *)

val leader : t -> observer:Pid.t -> Pid.t
(** The Ω-style leader estimate derived from the suspicion matrix: the
    lowest-numbered process the observer does not suspect (falling back to
    the observer itself — a process never suspects itself).  With an
    eventually accurate detector all correct observers eventually agree on
    the lowest-numbered correct process. *)

val oracle : Engine.t -> detection_delay:Time.t -> t
(** Perfect, crash-driven detector: a crash at time [t] is reported to every
    alive observer at [t + detection_delay].  No false suspicions, no
    network traffic. *)

val heartbeat : Ics_net.Transport.t -> period:Time.t -> timeout:Time.t -> t
(** Periodic heartbeats on layer ["fd"].  An observer suspects a target when
    no heartbeat arrived for [timeout]; a late heartbeat restores trust.
    [timeout] should comfortably exceed [period] plus worst-case latency to
    avoid false suspicions in good runs.

    The emit/check loops stop rescheduling once their next firing would
    fall past {!Engine.horizon} (or after {!stop}), so a run with a
    heartbeat detector still quiesces; an observer also retires a target's
    check loop once the target is dead {e and} suspected (settled under
    crash-stop).
    @raise Invalid_argument if [period <= 0] or [timeout <= period]. *)

val stop : t -> unit
(** Retire the detector's timer loops (heartbeat emission and deadline
    checks stop rescheduling).  Suspicion state freezes; {!oracle} and
    {!manual} detectors have no timers and are unaffected. *)

(** Handle to drive a {!manual} detector from a test. *)
module Control : sig
  type fd := t
  type t

  val suspect : t -> observer:Pid.t -> Pid.t -> unit
  (** Make [observer] suspect the target (fires subscriptions). *)

  val trust : t -> observer:Pid.t -> Pid.t -> unit
  val suspect_everywhere : t -> Pid.t -> unit
  (** All observers suspect the target. *)

  val fd : t -> fd
end

val manual : Engine.t -> Control.t
(** A detector whose output is entirely test-driven; initially nobody
    suspects anybody. *)

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
