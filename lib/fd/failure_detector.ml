module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message

type t = {
  engine : Engine.t;
  suspected : bool array array;  (* suspected.(observer).(target) *)
  mutable suspect_subs : (Pid.t -> unit) list array;
  mutable trust_subs : (Pid.t -> unit) list array;
  mutable stopped : bool;
}

let make engine =
  let n = Engine.n engine in
  {
    engine;
    suspected = Array.init n (fun _ -> Array.make n false);
    suspect_subs = Array.make n [];
    trust_subs = Array.make n [];
    stopped = false;
  }

let stop t = t.stopped <- true

let is_suspected t ~by target = t.suspected.(by).(target)

let on_suspect t ~observer f =
  t.suspect_subs.(observer) <- t.suspect_subs.(observer) @ [ f ]

let on_trust t ~observer f = t.trust_subs.(observer) <- t.trust_subs.(observer) @ [ f ]

let set_suspected t ~observer target =
  if (not t.suspected.(observer).(target)) && Engine.is_alive t.engine observer then begin
    t.suspected.(observer).(target) <- true;
    Engine.record t.engine observer (Trace.Suspect target);
    List.iter (fun f -> f target) t.suspect_subs.(observer)
  end

let set_trusted t ~observer target =
  if t.suspected.(observer).(target) && Engine.is_alive t.engine observer then begin
    t.suspected.(observer).(target) <- false;
    Engine.record t.engine observer (Trace.Trust target);
    List.iter (fun f -> f target) t.trust_subs.(observer)
  end

let leader t ~observer =
  let n = Array.length t.suspected in
  let rec scan q = if q >= n then observer else if t.suspected.(observer).(q) then scan (q + 1) else q in
  scan 0

let oracle engine ~detection_delay =
  let t = make engine in
  Engine.on_crash engine (fun dead ->
      Engine.after engine ~delay:detection_delay (fun () ->
          List.iter
            (fun observer ->
              if not (Pid.equal observer dead) then set_suspected t ~observer dead)
            (Engine.correct engine)));
  t

(* Heartbeat detector. *)

type Message.payload += Heartbeat

(* A heartbeat is pure signal: its encoding is the tag byte alone. *)
let hb_body_bytes = 1

let register_codec () =
  let module Codec = Ics_codec.Codec in
  Codec.register ~tag:0x40 ~name:"fd.heartbeat"
    ~fits:(function Heartbeat -> true | _ -> false)
    ~size:(fun _ -> hb_body_bytes)
    ~encode_into:(fun _ _ -> ())
    ~dec:(fun _ -> Heartbeat)
    ~gen:(fun _ -> Heartbeat)

let heartbeat transport ~period ~timeout =
  if period <= 0.0 then invalid_arg "Failure_detector.heartbeat: period <= 0";
  if timeout <= period then invalid_arg "Failure_detector.heartbeat: timeout <= period";
  let engine = Transport.engine transport in
  let n = Engine.n engine in
  let layer = Transport.intern transport "fd" in
  let t = make engine in
  let last_hb = Array.init n (fun _ -> Array.make n Time.zero) in
  (* Self-rearming loops must not outlive the run: rescheduling past the
     engine's horizon (or after [stop]) would keep the event queue
     non-empty forever, so a horizon-less [Engine.run] would never
     return. *)
  let rearm ~delay k =
    if not t.stopped then
      match Engine.horizon engine with
      | Some h when Time.compare (Time.( + ) (Engine.now engine) delay) h > 0 ->
          ()
      | _ -> Engine.after engine ~delay k
  in
  (* Sender side: emit heartbeats until crash, stop or horizon. *)
  let rec emit p () =
    if Engine.is_alive engine p && not t.stopped then begin
      Transport.send_to_others transport ~src:p ~layer ~body_bytes:hb_body_bytes
        Heartbeat;
      rearm ~delay:period (Engine.alive_guard engine p (emit p))
    end
  in
  (* Observer side: check each target's deadline; a target with no fresh
     heartbeat is suspected until one arrives.  A dead target that is
     already suspected is settled — crash-stop means it can never need
     re-trusting, so the loop retires. *)
  let rec check observer target () =
    if Engine.is_alive engine observer && not t.stopped then begin
      let now = Engine.now engine in
      let silent_for = Time.( - ) now last_hb.(observer).(target) in
      if silent_for >= timeout then set_suspected t ~observer target;
      let settled =
        (not (Engine.is_alive engine target))
        && t.suspected.(observer).(target)
      in
      if not settled then
        rearm ~delay:period (Engine.alive_guard engine observer (check observer target))
    end
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Heartbeat ->
              last_hb.(p).(msg.Message.src) <- Engine.now engine;
              set_trusted t ~observer:p msg.Message.src
          | _ -> ());
      emit p ();
      List.iter
        (fun q ->
          last_hb.(p).(q) <- Engine.now engine;
          Engine.after engine ~delay:timeout
            (Engine.alive_guard engine p (check p q)))
        (Pid.others ~n p))
    (Pid.all ~n);
  t

module Control = struct
  type nonrec t = t

  let suspect t ~observer target = set_suspected t ~observer target
  let trust t ~observer target = set_trusted t ~observer target

  let suspect_everywhere t target =
    Array.iteri
      (fun observer _ ->
        if not (Pid.equal observer target) then set_suspected t ~observer target)
      t.suspect_subs

  let fd t = t
end

let manual engine = make engine
