(** Seeded chaos sweep: protocol stacks × fault plans × seeds × backends.

    Each run builds a full stack over a nemesis-faulted network (optionally
    healed by {!Ics_net.Retransmit}), injects a small deterministic
    workload, runs to quiescence and validates the trace with
    {!Checker.check_all_abcast}.  On the [`Sim] backend everything — fault
    plan, fault decisions, workload timing — is a pure function of the
    run's seed, so any failure the sweep prints is replayable
    bit-identically from the seed alone ({!run_one} with equal arguments
    gives an equal {!result.fingerprint}).

    The [`Live] backend runs the same cell as a forked loopback-TCP
    cluster ({!Ics_runtime.Cluster}): the same generated plan is compiled
    into each node's transport interposer, the per-node traces are merged
    and judged by the same full checker battery, and the summed fault
    counters are — by per-link seeding — equal to what one simulation of
    the plan produces.  Live scheduling is real, so only the fault
    decisions and counters are deterministic, not the trace fingerprint.

    The sweep's purpose is asymmetric: the indirect-consensus stacks must
    stay clean under every plan, while the known-faulty consensus-on-ids
    stack is expected to produce violations (the [blackout] plan is §2.2 of
    the paper expressed as a fault plan — and must fail on real sockets
    exactly as it does in simulation). *)

module Time = Ics_sim.Time
module Nemesis = Ics_faults.Nemesis
module Checker = Ics_checker.Checker

type backend = [ `Sim | `Live ]

val backend_name : backend -> string

val live_supported : unit -> bool
(** Whether the [`Live] backend can run here (loopback TCP available);
    callers should skip, not fail, when it cannot. *)

type stack_kind =
  | Ct_indirect  (** Chandra–Toueg, indirect consensus, n = 3 *)
  | Mr_indirect  (** Mostéfaoui–Raynal, indirect consensus, n = 5 *)
  | Ct_on_ids  (** the faulty legacy stack (consensus on bare ids), n = 3 *)

val stack_name : stack_kind -> string
val stack_of_string : string -> stack_kind option
val all_stacks : stack_kind list
val default_n : stack_kind -> int

type plan_kind =
  | Drop  (** uniform per-message loss, p ∈ [0.05, 0.25) *)
  | Dup  (** per-message duplication, p ∈ [0.10, 0.30) *)
  | Reorder  (** random extra delay, so later messages overtake *)
  | Partition  (** random two-group split, healed after 15–40 ms *)
  | Storm  (** one random crash plus background loss *)
  | Blackout
      (** §2.2: origin 0's rb payloads suppressed entirely, origin crashes
          at t = 10 ms — undetectable by retransmission *)
  | Mixed  (** mild drop + dup + delay + brief isolation of p0 *)

val plan_name : plan_kind -> string
val plan_of_string : string -> plan_kind option
val all_plans : plan_kind list

val gen_plan : plan_kind -> n:int -> seed:int64 -> Nemesis.plan
(** Deterministic in (kind, n, seed) — the replay contract. *)

type result = {
  backend : backend;
  stack : stack_kind;
  plan_kind : plan_kind;
  n : int;
  seed : int64;
  retransmit : bool;
  plan : Nemesis.plan;
  verdict : Checker.verdict;
  quiescent : bool;  (** did the event queue drain before the horizon *)
  delivered : int;  (** adeliveries summed over correct processes *)
  blocked : int;  (** correct processes stuck on an undeliverable head *)
  faults : (string * int) list;  (** nemesis counters, {!Stack.fault_counters} format *)
  retx : (string * int) list;  (** retransmission-channel counters; [[]] without it *)
  fingerprint : string;  (** digest of the rendered trace — replay witness;
                             [""] on the live backend (not deterministic) *)
}

val passed : result -> bool
(** Clean verdict and quiescent.  On [`Live], "quiescent" means every
    node exited on its own — via the delivery barrier or its deadline —
    rather than crashing or being killed. *)

val run_one :
  ?backend:backend ->
  ?batching:Ics_core.Abcast.batching ->
  ?app:bool ->
  ?retransmit:bool ->
  ?n:int ->
  stack_kind ->
  plan_kind ->
  seed:int64 ->
  result
(** One run.  [batching] (default {!Ics_core.Abcast.no_batching})
    configures the abcast layer's batch/pipeline knobs on either backend —
    the batch=1/pipeline=1 default reproduces the pre-batching runs
    bit-identically.  [app] (default false) hosts the replicated KV
    machine on the same broadcasts ({!Ics_core.App_host} in [Ride] mode:
    slot [i] is one-request client [i]) and adds the application battery
    to the verdict — a cell where ordered commands never take effect then
    fails semantically, not just at the message level.  [retransmit]
    (default true) heals the faulted wire —
    {!Ics_net.Retransmit.wrap} over the nemesis model in simulation, the
    acknowledged wire channel ({!Ics_net.Retransmit.install}) on live
    nodes; [n] defaults per stack ({!default_n}).
    @raise Failure on [`Live] when {!live_supported} is false. *)

val replay_hint : result -> string
(** The exact CLI invocation that reproduces this run. *)

type cell = {
  c_stack : stack_kind;
  c_plan : plan_kind;
  runs : int;
  failures : result list;  (** chronological; empty for a clean cell *)
}

val sweep :
  ?backend:backend ->
  ?batching:Ics_core.Abcast.batching ->
  ?app:bool ->
  ?retransmit:bool ->
  ?n:int ->
  ?seed_base:int64 ->
  ?seeds:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  stacks:stack_kind list ->
  plans:plan_kind list ->
  unit ->
  cell list
(** Run [seeds] seeds ([seed_base + i]) for every stack × plan pair on
    the chosen backend (default [`Sim]).

    [jobs] (default 1) runs that many cells concurrently on OCaml 5
    domains ({!Domain_pool}).  Each cell's engine stays strictly
    single-domain; cells are merged in stack × plan order after every
    domain joins, so the returned cells — fingerprints, matrix, the
    {!indirect_clean}/{!blackout_reproduced} gates — are bit-identical
    to a [jobs = 1] sweep.  Only the interleaving of [progress] lines
    varies.  On the [`Live] backend [jobs] is forced to 1 (live cells
    fork processes; forking from a spawned domain is not safe). *)

val sweep_results :
  ?backend:backend ->
  ?batching:Ics_core.Abcast.batching ->
  ?app:bool ->
  ?retransmit:bool ->
  ?n:int ->
  ?seed_base:int64 ->
  ?seeds:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  stacks:stack_kind list ->
  plans:plan_kind list ->
  unit ->
  (cell * result list) list
(** {!sweep}, but each cell also carries {e every} run's result in seed
    order (not just the failures) — the hook the jobs-determinism fence
    uses to compare complete fingerprint sets between [jobs = 1] and
    [jobs = n] sweeps. *)

val matrix_table : cell list -> Ics_prelude.Table.t
val report : ?verbose:bool -> Format.formatter -> cell list -> unit
(** The pass/fail matrix, then per failing cell the failing plan, seed,
    violations and replay command (first failure only unless [verbose]). *)

val indirect_clean : cell list -> bool
(** True when every indirect-stack cell is failure-free — the sweep's
    pass/fail exit criterion ([Ct_on_ids] cells are allowed, and expected,
    to fail). *)

val blackout_reproduced : cell list -> bool
(** True when every [Ct_on_ids] × [Blackout] cell in the sweep has at
    least one failing seed (vacuously true when none is present).  The
    complementary exit criterion: a §2.2 cell that {e passes} means the
    fault plane or the checker has stopped seeing the payload loss. *)

type mismatch = {
  m_stack : stack_kind;
  m_plan : plan_kind;
  m_seed : int64;
  m_first : string;  (** fingerprint of the first run *)
  m_second : string;  (** fingerprint of the rerun — differs from [m_first] *)
}

val replay_check :
  ?batching:Ics_core.Abcast.batching ->
  ?app:bool ->
  ?retransmit:bool ->
  ?n:int ->
  ?seed_base:int64 ->
  ?jobs:int ->
  stacks:stack_kind list ->
  plans:plan_kind list ->
  unit ->
  mismatch list
(** The determinism gate behind {!replay_hint}: rerun one seed
    ([seed_base], default 1) for every stack × plan pair and compare trace
    fingerprints between the two runs.  Empty means every cell replayed
    bit-identically; any {!mismatch} is ambient nondeterminism (unordered
    iteration, real clock, un-threaded RNG) leaking into the simulation and
    invalidates every replay command the sweep prints.

    [jobs] (default 1) checks that many cells concurrently
    ({!Domain_pool}); both runs of a given cell stay on one domain, and
    mismatches are reported in stack × plan order regardless of [jobs]. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
