(** Offered-load saturation sweep: the knee-curve bench behind
    BENCH_PR6.json and [make saturation-smoke].

    One {!point} is one run of a fixed stack shape at one offered load,
    with the full checker battery on (every point is correctness-gated,
    not just timed).  A {!curve} is a sweep of points over increasing
    offered loads on one backend; {!knee} picks the fastest point that
    is still healthy — checker-green and finished cleanly — which is the
    saturation throughput the bench reports.

    Sim points run the Poisson open-loop {!Experiment} on Setup 2; live
    points run a real loopback {!Ics_runtime.Cluster} with a fixed-rate
    arrival window derived from the offered load ([gap_ms = n/offered],
    [count = offered * window / n] per node). *)

module Stats = Ics_prelude.Stats
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile

type point = {
  offered : float;  (** target arrival rate, msg/s cluster-wide *)
  achieved : float;  (** distinct messages ordered per second *)
  latency : Stats.summary;  (** abroadcast -> adelivery, ms *)
  checker_ok : bool;  (** full battery on the (merged) trace *)
  clean : bool;
      (** sim: event queue drained; live: every node exited through the
          delivery barrier (an overloaded point times out instead) *)
  util : float;
      (** busiest resource's utilization over the arrival window (sim
          only; NaN on live, where the barrier timeout is the overload
          signal instead) *)
  delivered : int;  (** (message, process) delivery pairs observed *)
}

type curve = {
  backend : [ `Sim | `Live ];
  n : int;
  batching : Abcast.batching;
  broadcast : Profile.broadcast_kind;
  points : point list;
}

val p99_bound_ms : float
(** p99 latency above which a sim point counts as saturated (50 ms) —
    the open-loop simulator drains its backlog, so achieved throughput
    tracks offered load even past capacity and the latency tail is the
    honest overload signal (live points are gated by the delivery
    barrier instead). *)

val healthy : point -> bool
(** [checker_ok && clean], and on sim points [p99 <= p99_bound_ms]. *)

val knee : curve -> point option
(** The fastest {!healthy} point; falls back to the fastest point
    overall when no point is healthy, [None] on an empty curve. *)

val sim_config :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  unit ->
  Stack.config
(** Setup 2 (1 Gb/s switched, P4 hosts) stack config for the sweep. *)

val sim_point :
  ?seed:int64 ->
  ?body_bytes:int ->
  ?duration_ms:float ->
  config:Stack.config ->
  float ->
  point
(** One simulated point at the given offered load (msg/s). *)

val sim_curve :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?body_bytes:int ->
  ?duration_ms:float ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  float list ->
  curve

val live_supported : unit -> bool
(** Whether this environment can run loopback TCP clusters. *)

val live_point :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?body_bytes:int ->
  ?duration_ms:float ->
  ?drain_ms:float ->
  ?attempts:int ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  float ->
  (point, string) result
(** One live cluster point.  [Error reason] only when the environment
    cannot run sockets; an overloaded run surfaces as [clean = false].
    [attempts] (default 1) reruns an unhealthy point and keeps the best
    attempt — capacity measurement on a shared host, where one co-tenant
    burst can wreck a one-second window; every attempt is still gated by
    the full checker battery. *)

val live_curve :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?body_bytes:int ->
  ?duration_ms:float ->
  ?drain_ms:float ->
  ?attempts:int ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  float list ->
  curve
(** Points whose environment probe failed are dropped, so the curve may
    be empty in socketless sandboxes. *)

val sim_fingerprint :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?offered:float ->
  ?duration_ms:float ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  unit ->
  string
(** Digest of the full event trace of one deterministic fixed-rate sim
    run of the saturation cell — the replay-check fingerprint. *)

val replay_check :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?offered:float ->
  ?duration_ms:float ->
  n:int ->
  batching:Abcast.batching ->
  broadcast:Profile.broadcast_kind ->
  unit ->
  (string, string * string) result
(** Run the cell twice; [Ok fingerprint] iff both traces are
    bit-identical ([Error (first, second)] otherwise). *)
