(* Cross-backend fault parity: one fixed probe workload under one fixed
   drop+partition plan, runnable on the simulated transport and — from
   the test suite — as a forked loopback cluster.  The interposer draws
   from per-(src, dst) streams, so the k-th probe on a link must see the
   same fate on both backends; the fault counters (summed per-node for
   the live run) and the per-destination receipt counts are the
   invariant.  No retransmission: the raw fault decisions are the thing
   under test. *)

module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Model = Ics_net.Model
module Host = Ics_net.Host
module Nemesis = Ics_faults.Nemesis
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim
module Rng = Ics_prelude.Rng

type Message.payload += Probe of int

let register_codec () =
  Codec.register ~tag:0x50 ~name:"parity.probe"
    ~fits:(function Probe _ -> true | _ -> false)
    ~size:(fun _ -> 5)
    ~encode_into:(fun w -> function Probe k -> Prim.u32 w k | _ -> assert false)
    ~dec:(fun r -> Probe (Prim.r_u32 r))
    ~gen:(fun rng -> Probe (Rng.int rng 10_000))

let n = 3
let probes = 40
let seed = 0xFA17L
let layer_name = "parity"

(* Partition cuts 0↔1 and 0↔2 for the whole run (4 directed links × 40
   probes = 160 partition drops, deterministically); the surviving 1↔2
   links face the seeded coin flips. *)
let plan =
  [
    Nemesis.Drop
      { link = Nemesis.any_link; prob = 0.5; window = Nemesis.always };
    Nemesis.Partition
      { groups = [ [ 0 ]; [ 1; 2 ] ]; window = Nemesis.always };
  ]

let send_time ~start k = start +. (3.0 *. float_of_int k)

(* Slot [k] sends probe [k] on every directed link whose source is in
   [srcs] — the whole mesh for the simulation, a single node's outbound
   links live.  Link decisions depend only on the per-link message index,
   so the two backends may run the slots at different wall times. *)
let schedule_sends engine transport ~layer ~start ~srcs =
  for k = 0 to probes - 1 do
    List.iter
      (fun src ->
        for dst = 0 to n - 1 do
          if dst <> src then
            Engine.schedule engine ~at:(send_time ~start k) (fun () ->
                Transport.send transport ~src ~dst ~layer ~body_bytes:5
                  (Probe k))
        done)
      srcs
  done

type outcome = {
  received : int array;  (** probe receipts per destination *)
  faults : (string * int) list;
  fingerprint : string;  (** digest of the simulated trace *)
}

let sim () =
  register_codec ();
  let engine = Engine.create ~seed ~trace:`On ~n () in
  let model = Model.constant ~delay:1.0 ~n ~seed:(Int64.add seed 7919L) () in
  let transport = Transport.create engine ~model ~host:Host.instant in
  let mw, stats =
    Nemesis.interposer ~env:(Transport.env transport) ~seed ~plan ()
  in
  Transport.interpose transport mw;
  let layer = Transport.intern transport layer_name in
  let received = Array.make n 0 in
  for pid = 0 to n - 1 do
    Transport.register transport pid ~layer (fun msg ->
        match msg.Message.payload with
        | Probe _ -> received.(msg.Message.dst) <- received.(msg.Message.dst) + 1
        | _ -> ())
  done;
  schedule_sends engine transport ~layer ~start:1.0 ~srcs:[ 0; 1; 2 ];
  Engine.run_due engine ~upto:1_000.0;
  let trace = Engine.trace engine in
  {
    received;
    faults = Model.Fault_stats.to_list stats;
    fingerprint =
      Digest.to_hex
        (Digest.string (Format.asprintf "%a" Ics_sim.Trace.pp trace));
  }
