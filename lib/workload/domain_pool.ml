(* Chunked parallel map over OCaml 5 domains — deliberately
   work-stealing-free: workers claim fixed chunks of the task index
   space from one Atomic counter, so there are no deques, no stealing
   order, and nothing about the claim protocol that can reorder
   results.  Each task's result lands in its own slot of a pre-sized
   array, and the merged output is read back in task order after every
   domain has joined — so the output is bit-identical whatever the
   interleaving, and identical to [jobs = 1].

   The tasks themselves must be pure (or confine their mutation to
   task-local state): the chaos sweep's cells are, by the same replay
   contract the lint's DS pass guards — this module is a DS root, so
   everything reachable from a task closure is checked for shared
   non-Atomic toplevel state. *)

type 'b outcome = Done of 'b | Raised of exn * Printexc.raw_backtrace

let run_task f tasks results i =
  results.(i) <-
    (match f tasks.(i) with
    | r -> Done r
    | exception e -> Raised (e, Printexc.get_raw_backtrace ()))

let map ?(jobs = 1) ?(chunk = 1) f tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map f tasks
  else begin
    let jobs = min jobs n in
    let chunk = max 1 chunk in
    (* Pre-sized per-task slots: no worker ever writes outside its
       claimed indices, so the array needs no lock — the Domain.join
       below is the happens-before edge that publishes every slot to
       the merging domain. *)
    let results = Array.make n (Raised (Not_found, Printexc.get_raw_backtrace ())) in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let base = Atomic.fetch_and_add next chunk in
        if base < n then begin
          for i = base to min (base + chunk) n - 1 do
            run_task f tasks results i
          done;
          go ()
        end
      in
      go ()
    in
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    (* Merge in task order; a raising task re-raises at its own index,
       so which task failed (and with what) is also interleaving-free. *)
    Array.map
      (function
        | Done r -> r
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)
      results
  end
