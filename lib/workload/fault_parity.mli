(** Cross-backend fault parity probe.

    A fixed workload ({!probes} probes on every directed link of an
    {!n}-process mesh) under a fixed always-on drop + partition {!plan},
    with the {!Ics_faults.Nemesis.interposer} installed as transport
    middleware and no retransmission.  Because the interposer draws from
    per-(src, dst) streams seeded only by ({!seed}, link), the k-th probe
    on a link meets the same fate whether all links run in one simulated
    process ({!sim}) or each link's source is a separate OS process (the
    live half lives in the test suite, which forks a loopback cluster
    running {!schedule_sends} per node and compares summed fault counters
    and receipt counts against {!sim}'s). *)

module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Nemesis = Ics_faults.Nemesis

type Message.payload += Probe of int

val register_codec : unit -> unit
val n : int
val probes : int
val seed : int64
val layer_name : string
val plan : Nemesis.plan

val send_time : start:float -> int -> float
(** When slot [k] fires, [start] being the backend's warm-up offset. *)

val schedule_sends :
  Engine.t -> Transport.t -> layer:Ics_net.Layer.t -> start:float -> srcs:int list -> unit
(** Schedule probe [k] on every directed link out of [srcs] at
    [send_time ~start k]. *)

type outcome = {
  received : int array;  (** probe receipts per destination *)
  faults : (string * int) list;
  fingerprint : string;  (** digest of the simulated trace *)
}

val sim : unit -> outcome
(** The simulated half: deterministic in every field — the fingerprint is
    pinned in the codec test suite. *)
