module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid
module Rng = Ics_prelude.Rng
module Table = Ics_prelude.Table
module Model = Ics_net.Model
module Retransmit = Ics_net.Retransmit
module Host = Ics_net.Host
module Nemesis = Ics_faults.Nemesis
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module App_host = Ics_core.App_host
module Cmd = Ics_app.Cmd
module Checker = Ics_checker.Checker
module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster

type backend = [ `Sim | `Live ]

let backend_name = function `Sim -> "sim" | `Live -> "live"
let live_supported () = Cluster.supported ()

type stack_kind = Ct_indirect | Mr_indirect | Ct_on_ids

let stack_name = function
  | Ct_indirect -> "ct-indirect"
  | Mr_indirect -> "mr-indirect"
  | Ct_on_ids -> "ct-on-ids"

let stack_of_string = function
  | "ct-indirect" -> Some Ct_indirect
  | "mr-indirect" -> Some Mr_indirect
  | "ct-on-ids" -> Some Ct_on_ids
  | _ -> None

let all_stacks = [ Ct_indirect; Mr_indirect; Ct_on_ids ]

(* MR's two-thirds quorums need n = 5 to tolerate one crash; CT's majority
   quorums are happy at n = 3. *)
let default_n = function Ct_indirect | Ct_on_ids -> 3 | Mr_indirect -> 5

type plan_kind = Drop | Dup | Reorder | Partition | Storm | Blackout | Mixed

let plan_name = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Reorder -> "reorder"
  | Partition -> "partition"
  | Storm -> "storm"
  | Blackout -> "blackout"
  | Mixed -> "mixed"

let plan_of_string = function
  | "drop" -> Some Drop
  | "dup" -> Some Dup
  | "reorder" -> Some Reorder
  | "partition" -> Some Partition
  | "storm" -> Some Storm
  | "blackout" -> Some Blackout
  | "mixed" -> Some Mixed
  | _ -> None

let all_plans = [ Drop; Dup; Reorder; Partition; Storm; Blackout; Mixed ]

(* Plan generation is a pure function of (kind, n, seed): the chaos CLI can
   replay a failure from nothing but the printed seed. *)
let gen_plan kind ~n ~seed =
  let rng = Rng.create (Int64.logxor seed 0x6b656d657369734cL) in
  let any = Nemesis.any_link in
  let always = Nemesis.always in
  match kind with
  | Drop ->
      [ Nemesis.Drop { link = any; prob = 0.05 +. Rng.float rng 0.20; window = always } ]
  | Dup ->
      [ Nemesis.Duplicate { link = any; prob = 0.10 +. Rng.float rng 0.20; window = always } ]
  | Reorder ->
      [
        Nemesis.Delay
          {
            link = any;
            prob = 0.20 +. Rng.float rng 0.20;
            max_extra = 2.0 +. Rng.float rng 8.0;
            window = always;
          };
      ]
  | Partition ->
      let pids = Array.init n (fun i -> i) in
      Rng.shuffle rng pids;
      let k = 1 + Rng.int rng (n - 1) in
      let pids = Array.to_list pids in
      let left = List.filteri (fun i _ -> i < k) pids in
      let right = List.filteri (fun i _ -> i >= k) pids in
      let from_t = 5.0 +. Rng.float rng 15.0 in
      let until_t = from_t +. 15.0 +. Rng.float rng 25.0 in
      [
        Nemesis.Partition
          { groups = [ left; right ]; window = Nemesis.window ~from_t ~until_t };
      ]
  | Storm ->
      let victim = Rng.int rng n in
      [
        Nemesis.Crash { pid = victim; at = 10.0 +. Rng.float rng 20.0 };
        Nemesis.Drop { link = any; prob = 0.10; window = always };
      ]
  | Blackout ->
      (* §2.2 as a fault plan: the first origin's reliable-broadcast
         payloads never reach the wire (consensus traffic flows), and the
         origin crashes once consensus has had time to order the id.
         Retransmission cannot help — every retry is also dropped. *)
      [
        Nemesis.Drop
          {
            link = { l_src = Some 0; l_dst = None; l_layer = Some "rb" };
            prob = 1.0;
            window = always;
          };
        Nemesis.Crash { pid = 0; at = 10.0 };
      ]
  | Mixed ->
      let from_t = 8.0 +. Rng.float rng 10.0 in
      [
        Nemesis.Drop { link = any; prob = 0.05; window = always };
        Nemesis.Duplicate { link = any; prob = 0.05; window = always };
        Nemesis.Delay
          { link = any; prob = 0.15; max_extra = 5.0; window = always };
        Nemesis.Partition
          {
            groups = [ [ 0 ]; List.init (n - 1) (fun i -> i + 1) ];
            window = Nemesis.window ~from_t ~until_t:(from_t +. 12.0);
          };
      ]

type result = {
  backend : backend;
  stack : stack_kind;
  plan_kind : plan_kind;
  n : int;
  seed : int64;
  retransmit : bool;
  plan : Nemesis.plan;
  verdict : Checker.verdict;
  quiescent : bool;
  delivered : int;
  blocked : int;
  faults : (string * int) list;
  retx : (string * int) list;
  fingerprint : string;
}

let passed r = Checker.ok r.verdict && r.quiescent

let horizon = 5_000.0
let messages = 10

(* The (algorithm, ordering) pair a stack kind names — shared by both
   backends so a cell means the same protocol either way. *)
let stack_shape = function
  | Ct_indirect -> (Stack.Ct, Abcast.Indirect_consensus)
  | Mr_indirect -> (Stack.Mr, Abcast.Indirect_consensus)
  | Ct_on_ids -> (Stack.Ct, Abcast.Consensus_on_ids)

(* App-on-top cells host the KV machine on the exact same chaos
   broadcasts (Ride mode: slot i = one-request client i), so a cell where
   ordered commands never take effect fails *semantically* — via
   app.progress and state-hash agreement — not just via the message-level
   battery.  The app fields are cell constants, identical on both
   backends, so a (stack, plan, seed) cell means the same run either
   way. *)
let app_seed = 42
let app_hash_every = 4

let run_one_sim ?(batching = Abcast.no_batching) ?(app = false) ~retransmit ?n
    stack plan_kind ~seed =
  let n = match n with Some n -> n | None -> default_n stack in
  let plan = gen_plan plan_kind ~n ~seed in
  let engine = Engine.create ~seed ~trace:`On ~n () in
  let base =
    Model.constant ~delay:1.0 ~n ~seed:(Int64.add seed 7919L) ()
  in
  let lossy, fstats =
    Nemesis.apply ~engine ~seed:(Int64.add seed 0x5DEECE66DL) ~plan ~base ()
  in
  let model, rstats =
    if retransmit then
      let m, s = Retransmit.wrap lossy in
      (m, Some s)
    else (lossy, None)
  in
  let algo, ordering = stack_shape stack in
  let config =
    {
      Stack.default_config with
      n;
      seed;
      algo;
      ordering;
      batching;
      setup =
        Stack.Custom
          { name = "chaos"; build = (fun ~n:_ -> (model, Host.instant)) };
      fd_kind = Stack.Oracle 10.0;
      trace = `On;
    }
  in
  let hosts = ref [||] in
  let on_deliver p m =
    if Array.length !hosts > 0 then App_host.on_deliver !hosts.(p) m
  in
  let stack_t = Stack.create ~engine ~on_deliver config in
  if app then begin
    let profile =
      {
        (Stack.profile config) with
        Profile.app = Profile.Kv;
        app_seed;
        hash_every = app_hash_every;
        count = messages;
        body_bytes = 32;
      }
    in
    hosts :=
      Array.init n (fun p ->
          App_host.install stack_t.Stack.transport ~abcast:stack_t.Stack.abcast
            ~profile ~self:p ~mode:App_host.Ride)
  end;
  (* Deterministic workload: [messages] abroadcasts, origin 0 first (the
     blackout victim must originate), then round-robin at seeded spacing.
     With the app hosted, slot [i] carries command (client = i, req = 0)
     in its blob — the broadcasts themselves are unchanged. *)
  let wrng = Rng.create (Int64.add seed 104729L) in
  let at = ref 1.0 in
  for i = 0 to messages - 1 do
    let t = !at in
    let src = i mod n in
    let blob = if app then Cmd.pack ~client:i ~req:0 else 0L in
    Engine.schedule engine ~at:t (fun () ->
        if app && Engine.is_alive engine src then
          Engine.record engine src (Ics_sim.Trace.App_submit (i, 0));
        ignore (Stack.abroadcast ~blob stack_t ~src ~body_bytes:32));
    at := t +. 2.0 +. Rng.float wrng 4.0
  done;
  Stack.run ~until:horizon stack_t;
  let quiescent = Engine.pending engine = 0 in
  let trace = Engine.trace engine in
  let run = Checker.Run.of_trace trace ~n in
  let verdict =
    if app then
      Checker.merge [ Checker.check_all_abcast run; Checker.check_app run ]
    else Checker.check_all_abcast run
  in
  let correct = Checker.Run.correct run in
  let delivered =
    List.fold_left
      (fun acc p ->
        acc + List.length (Abcast.delivered_sequence stack_t.Stack.abcast p))
      0 correct
  in
  let blocked =
    List.length
      (List.filter
         (fun p -> Abcast.blocked_head stack_t.Stack.abcast p <> None)
         correct)
  in
  let fingerprint =
    Digest.to_hex (Digest.string (Format.asprintf "%a" Ics_sim.Trace.pp trace))
  in
  {
    backend = `Sim;
    stack;
    plan_kind;
    n;
    seed;
    retransmit;
    plan;
    verdict;
    quiescent;
    delivered;
    blocked;
    faults = Model.Fault_stats.to_list fstats;
    retx =
      (match rstats with Some s -> Retransmit.stats_to_list s | None -> []);
    fingerprint;
  }

(* Live cells reuse the sim plan timeline (fault windows in the first few
   tens of ms) shifted past connection warm-up by Node.run itself; the
   deadline bounds a cell that can never reach its barrier (blackout,
   storm) to a couple of wall-clock seconds. *)
let live_warmup_ms = 400.0
let live_deadline_ms = 2_500.0

let live_profile ?(batching = Abcast.no_batching) ?(app = false) stack ~n =
  let algo, ordering = stack_shape stack in
  {
    Profile.default with
    Profile.n;
    algo;
    ordering;
    batch = batching.Abcast.batch;
    pipeline = batching.Abcast.pipeline;
    flush_ms = batching.Abcast.flush_ms;
    app = (if app then Profile.Kv else Profile.No_app);
    app_seed;
    hash_every = app_hash_every;
    count = messages;
    body_bytes = 32;
    warmup_ms = live_warmup_ms;
    deadline_ms = live_deadline_ms;
  }

let run_one_live ?batching ?(app = false) ~retransmit ?n stack plan_kind ~seed =
  let n = match n with Some n -> n | None -> default_n stack in
  let plan = gen_plan plan_kind ~n ~seed in
  let node =
    {
      Node.default_workload with
      Node.profile = live_profile ?batching ~app stack ~n;
      seed;
      plan;
      plan_seed = Int64.add seed 0x5DEECE66DL;
      retransmit;
      chaos_workload = true;
    }
  in
  match
    Cluster.run { Cluster.default with Cluster.node; check = `All }
  with
  | Error reason -> failwith ("chaos live backend: " ^ reason)
  | Ok o ->
      (* The live analogue of a drained event queue: every node exited on
         its own (barrier or deadline), none died or had to be killed. *)
      let quiescent =
        Array.for_all (fun c -> c = 0 || c = 10) o.Cluster.exits
      in
      {
        backend = `Live;
        stack;
        plan_kind;
        n;
        seed;
        retransmit;
        plan;
        verdict = o.Cluster.verdict;
        quiescent;
        delivered = Array.fold_left ( + ) 0 o.Cluster.delivered_per_node;
        blocked = 0;
        faults = o.Cluster.faults;
        retx = o.Cluster.retx;
        fingerprint = "";
      }

let run_one ?(backend = `Sim) ?batching ?app ?(retransmit = true) ?n stack
    plan_kind ~seed =
  match backend with
  | `Sim -> run_one_sim ?batching ?app ~retransmit ?n stack plan_kind ~seed
  | `Live -> run_one_live ?batching ?app ~retransmit ?n stack plan_kind ~seed

let replay_hint r =
  Printf.sprintf
    "ics_cli chaos --stacks %s --plans %s --seeds 1 --seed-base %Ld%s%s%s"
    (stack_name r.stack) (plan_name r.plan_kind) r.seed
    (if r.retransmit then "" else " --no-retransmit")
    (if r.n <> default_n r.stack then Printf.sprintf " --n %d" r.n else "")
    (match r.backend with `Sim -> "" | `Live -> " --live")

type cell = {
  c_stack : stack_kind;
  c_plan : plan_kind;
  runs : int;
  failures : result list;  (** chronological; empty for a clean cell *)
}

(* Shared mutable state a sweep cell reads — the codec registry and the
   CRC table — is write-once and must be fully populated before any
   domain spawns: registration mutates, and OCaml's [Lazy.force] is not
   domain-safe.  Forcing here turns every later access into a plain
   read, which is what the DS1 audits on those sites promise. *)
let force_shared_state () =
  Ics_core.Codecs.ensure ();
  ignore (Ics_codec.Prim.crc32 "" : int)

let clamp_jobs ~backend ~jobs =
  match backend with
  (* The live backend forks node processes; fork from a non-main domain
     is undefined enough to be off the table, so live sweeps stay
     sequential. *)
  | `Live -> 1
  | `Sim -> max 1 jobs

let sweep_results ?(backend = `Sim) ?batching ?app ?(retransmit = true) ?n
    ?(seed_base = 1L) ?(seeds = 100) ?(progress = fun _ -> ()) ?(jobs = 1)
    ~stacks ~plans () =
  let jobs = clamp_jobs ~backend ~jobs in
  let cells =
    Array.of_list
      (List.concat_map
         (fun stack -> List.map (fun plan -> (stack, plan)) plans)
         stacks)
  in
  (* Progress lines stream in completion order (cells race when jobs >
     1); only their interleaving varies — each line's content, and
     everything in the returned cells, is interleaving-free. *)
  let progress =
    if jobs <= 1 then progress
    else begin
      let m = Mutex.create () in
      fun s ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> progress s)
    end
  in
  let run_cell (stack, plan_kind) =
    let results = ref [] in
    for i = 0 to seeds - 1 do
      let seed = Int64.add seed_base (Int64.of_int i) in
      let r =
        run_one ~backend ?batching ?app ?n ~retransmit stack plan_kind ~seed
      in
      results := r :: !results
    done;
    let results = List.rev !results in
    let failures = List.filter (fun r -> not (passed r)) results in
    progress
      (Printf.sprintf "%s/%s: %d/%d pass" (stack_name stack)
         (plan_name plan_kind)
         (seeds - List.length failures)
         seeds);
    ({ c_stack = stack; c_plan = plan_kind; runs = seeds; failures }, results)
  in
  if jobs <= 1 then Array.to_list (Array.map run_cell cells)
  else begin
    force_shared_state ();
    Array.to_list (Domain_pool.map ~jobs run_cell cells)
  end

let sweep ?backend ?batching ?app ?retransmit ?n ?seed_base ?seeds ?progress
    ?jobs ~stacks ~plans () =
  List.map fst
    (sweep_results ?backend ?batching ?app ?retransmit ?n ?seed_base ?seeds
       ?progress ?jobs ~stacks ~plans ())

let matrix_table cells =
  let stacks =
    List.sort_uniq compare (List.map (fun c -> c.c_stack) cells)
  in
  let plans = List.sort_uniq compare (List.map (fun c -> c.c_plan) cells) in
  let table =
    Table.create ~title:"chaos sweep (pass/runs)"
      ~columns:("plan" :: List.map stack_name stacks)
  in
  List.iter
    (fun plan ->
      let row =
        List.map
          (fun stack ->
            match
              List.find_opt
                (fun c -> c.c_stack = stack && c.c_plan = plan)
                cells
            with
            | None -> "-"
            | Some c ->
                let pass = c.runs - List.length c.failures in
                if c.failures = [] then Printf.sprintf "%d/%d" pass c.runs
                else Printf.sprintf "%d/%d FAIL" pass c.runs)
          stacks
      in
      Table.add_row table (plan_name plan :: row))
    plans;
  table

let pp_failure ppf r =
  Format.fprintf ppf "%s x %s seed=%Ld%s@," (stack_name r.stack)
    (plan_name r.plan_kind) r.seed
    (if r.quiescent then "" else " (not quiescent)");
  Format.fprintf ppf "  plan: %a@," Nemesis.pp_plan r.plan;
  List.iter
    (fun v -> Format.fprintf ppf "  %a@," Checker.pp_violation v)
    r.verdict.Checker.violations;
  Format.fprintf ppf "  replay: %s@," (replay_hint r)

let report ?(verbose = false) ppf cells =
  Format.fprintf ppf "%a" Table.pp (matrix_table cells);
  let failing = List.filter (fun c -> c.failures <> []) cells in
  List.iter
    (fun c ->
      let shown = if verbose then c.failures else [ List.hd c.failures ] in
      Format.fprintf ppf "@,@[<v>%a@]" (Format.pp_print_list pp_failure) shown;
      if (not verbose) && List.length c.failures > 1 then
        Format.fprintf ppf "  (+%d more failing seeds in this cell)@,"
          (List.length c.failures - 1))
    failing;
  Format.fprintf ppf "@."

(* The sweep's exit criterion: the correct (indirect) stacks must be clean
   everywhere; the known-faulty on-ids stack is expected to fail (that
   failing is the point — §2.2 reproduced by fault injection). *)
let indirect_clean cells =
  List.for_all
    (fun c -> c.c_stack = Ct_on_ids || c.failures = [])
    cells

(* The complementary half of the exit criterion when the sweep includes
   the §2.2 cell: consensus-on-ids under a payload blackout must fail —
   on either backend.  A clean blackout cell would mean the fault plane
   (or the checker) lost its teeth. *)
let blackout_reproduced cells =
  List.for_all
    (fun c ->
      (not (c.c_stack = Ct_on_ids && c.c_plan = Blackout)) || c.failures <> [])
    cells

type mismatch = {
  m_stack : stack_kind;
  m_plan : plan_kind;
  m_seed : int64;
  m_first : string;
  m_second : string;
}

(* Two runs of the same (stack, plan, seed) in the same process: any
   fingerprint divergence is state leaking between runs or ambient
   nondeterminism, and means the replay commands the sweep prints are
   lies.  One seed per cell keeps this cheap enough for the smoke gate. *)
let replay_check ?batching ?app ?(retransmit = true) ?n ?(seed_base = 1L)
    ?(jobs = 1) ~stacks ~plans () =
  let jobs = clamp_jobs ~backend:`Sim ~jobs in
  let cells =
    Array.of_list
      (List.concat_map
         (fun stack -> List.map (fun plan -> (stack, plan)) plans)
         stacks)
  in
  let check (stack, plan_kind) =
    let fp () =
      (run_one ?batching ?app ?n ~retransmit stack plan_kind ~seed:seed_base)
        .fingerprint
    in
    let first = fp () in
    let second = fp () in
    if String.equal first second then None
    else
      Some
        {
          m_stack = stack;
          m_plan = plan_kind;
          m_seed = seed_base;
          m_first = first;
          m_second = second;
        }
  in
  if jobs > 1 then force_shared_state ();
  List.filter_map Fun.id
    (Array.to_list (Domain_pool.map ~jobs check cells))

let pp_mismatch ppf m =
  Format.fprintf ppf "%s x %s seed=%Ld: %s then %s" (stack_name m.m_stack)
    (plan_name m.m_plan) m.m_seed m.m_first m.m_second
