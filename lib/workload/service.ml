(* Closed-loop service workload: thousands of client sessions drive the
   replicated KV/ledger machine through the full broadcast stack, on the
   deterministic simulator and on the live loopback cluster.  Unlike the
   saturation sweep (open-loop, message-level), a service point measures
   what a client sees: submit -> applied-at-home latency, with every
   point gated by the full abcast battery *and* the application checker
   (dedup, per-client order, state-hash agreement, progress).  The same
   seed must yield the same final state hash on both backends — the
   machine is a function of the delivery order and the command stream is
   a function of the profile, so any divergence is a bug, not noise. *)

module Engine = Ics_sim.Engine
module Trace = Ics_sim.Trace
module Stats = Ics_prelude.Stats
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module App_host = Ics_core.App_host
module Machine = Ics_app.Machine
module Checker = Ics_checker.Checker
module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster

type point = {
  backend : [ `Sim | `Live ];
  n : int;
  clients : int;
  requests : int;
  commands : int;  (** clients * requests, the workload size *)
  achieved : float;  (** distinct commands ordered per second *)
  latency : Stats.summary;  (** client-visible: submit -> applied at home *)
  checker_ok : bool;  (** abcast battery + app battery on the trace *)
  clean : bool;
      (** every session completed and every replica applied the whole
          workload (sim); every node exited through the barrier (live) *)
  hash : (int * int64) option;  (** deepest (cursor, state hash) observed *)
}

(* Two backends agree when both finished the whole workload and landed on
   the same state hash at the same cursor.  An incomplete point never
   "agrees" — comparing partial prefixes would pass vacuously. *)
let hash_match a b =
  a.clean && b.clean
  &&
  match (a.hash, b.hash) with
  | Some (ca, ha), Some (cb, hb) ->
      ca = a.commands && cb = b.commands && ca = cb && Int64.equal ha hb
  | _ -> false

let latency_of_cluster = function
  | None -> Stats.empty_summary
  | Some l ->
      {
        Stats.empty_summary with
        Stats.count = l.Cluster.samples;
        mean = l.Cluster.mean_ms;
        p50 = l.Cluster.p50_ms;
        p95 = l.Cluster.p95_ms;
        p99 = l.Cluster.p99_ms;
        max = l.Cluster.max_ms;
      }

(* ------------------------------------------------------------------ *)
(* Simulated service point.                                           *)
(* ------------------------------------------------------------------ *)

let sim_config ?(seed = 1L) ?(algo = Profile.Ct)
    ?(ordering = Abcast.Indirect_consensus) ?(batching = Abcast.no_batching) ~n
    () =
  {
    Stack.default_config with
    Stack.n;
    seed;
    algo;
    ordering;
    batching;
    setup = Stack.Setup2;
  }

let app_profile config ~clients ~requests ~app_seed ~hash_every ~retry_ms =
  {
    (Stack.profile config) with
    Profile.app = Profile.Kv;
    clients;
    requests;
    app_seed;
    hash_every;
    retry_ms;
    count = clients * requests;
    body_bytes = 32;
  }

(* One simulated point: assemble a stack, install an App_host per
   replica (Service mode: the hosts own the client sessions), start the
   sessions staggered over [ramp_ms], and run to the horizon.  The hosts
   are wired through a ref because they need the stack's abcast, which
   does not exist until [Stack.create] returns — deliveries cannot race
   the assignment, the engine only runs inside [Stack.run]. *)
let sim_point ?(seed = 1L) ?algo ?ordering ?batching ?(app_seed = 42)
    ?(hash_every = 1024) ?(retry_ms = 500.0) ?(ramp_ms = 1_000.0)
    ?(horizon_ms = 120_000.0) ~n ~clients ~requests () =
  let config = sim_config ~seed ?algo ?ordering ?batching ~n () in
  let hosts = ref [||] in
  let on_deliver p m =
    if Array.length !hosts > 0 then App_host.on_deliver !hosts.(p) m
  in
  let stack = Stack.create ~on_deliver config in
  let profile = app_profile config ~clients ~requests ~app_seed ~hash_every ~retry_ms in
  hosts :=
    Array.init n (fun p ->
        App_host.install stack.Stack.transport ~abcast:stack.Stack.abcast
          ~profile ~self:p ~mode:App_host.Service);
  Array.iter (fun h -> App_host.start h ~at:10.0 ~over_ms:ramp_ms) !hosts;
  Stack.run ~until:horizon_ms stack;
  let trace = Engine.trace stack.Stack.engine in
  let run = Checker.Run.of_trace trace ~n in
  let verdict =
    Checker.merge [ Checker.check_all_abcast run; Checker.check_app run ]
  in
  let _, _, app_lat, throughput = Cluster.measure (Trace.events trace) in
  let clean =
    Array.for_all App_host.complete !hosts
    && Array.for_all App_host.sessions_done !hosts
  in
  let hash =
    Array.fold_left
      (fun best h ->
        let c = Machine.cursor (App_host.machine h) in
        match best with
        | Some (cb, _) when cb >= c -> best
        | _ -> Some (c, App_host.hash h))
      None !hosts
  in
  {
    backend = `Sim;
    n;
    clients;
    requests;
    commands = clients * requests;
    achieved = throughput;
    latency = latency_of_cluster app_lat;
    checker_ok = Checker.ok verdict;
    clean;
    hash;
  }

(* ------------------------------------------------------------------ *)
(* Live service point.                                                *)
(* ------------------------------------------------------------------ *)

let live_supported = Cluster.supported

let live_profile ?(algo = Profile.Ct) ?(ordering = Abcast.Indirect_consensus)
    ?(batching = Abcast.no_batching) ?(app_seed = 42) ?(hash_every = 1024)
    ?(retry_ms = 500.0) ~n ~clients ~requests ~deadline_ms () =
  let warmup_ms = 400.0 in
  {
    Profile.default with
    Profile.n;
    algo;
    ordering;
    batch = batching.Abcast.batch;
    pipeline = batching.Abcast.pipeline;
    flush_ms = batching.Abcast.flush_ms;
    app = Profile.Kv;
    clients;
    requests;
    app_seed;
    hash_every;
    retry_ms;
    count = clients * requests;
    body_bytes = 32;
    (* As in the saturation sweep: on an oversubscribed host a scheduler
       stall past the chaos-tuned heartbeat triggers a round-change storm
       that measures the detector, not the service. *)
    hb_timeout_ms = 2_000.0;
    warmup_ms;
    deadline_ms = warmup_ms +. deadline_ms;
  }

(* Best-of-k, saturation-style: a live point on a shared host can lose a
   whole percentile tier to one co-tenant burst; every attempt still runs
   the full checker battery, so retrying never trades correctness. *)
let live_point ?(seed = 1L) ?algo ?ordering ?batching ?app_seed ?hash_every
    ?retry_ms ?(deadline_ms = 20_000.0) ?(attempts = 1) ~n ~clients ~requests
    () =
  let profile =
    live_profile ?algo ?ordering ?batching ?app_seed ?hash_every ?retry_ms ~n
      ~clients ~requests ~deadline_ms ()
  in
  let node = { Node.default_workload with Node.profile; seed } in
  let once () =
    match Cluster.run { Cluster.default with Cluster.node; check = `All } with
    | Error reason -> Error reason
    | Ok o ->
        Ok
          {
            backend = `Live;
            n;
            clients;
            requests;
            commands = clients * requests;
            achieved = o.Cluster.throughput_msg_s;
            latency = latency_of_cluster o.Cluster.app_latency;
            checker_ok = Checker.ok o.Cluster.verdict;
            clean = Cluster.ok o;
            hash = o.Cluster.app_hash;
          }
  in
  let good p = p.checker_ok && p.clean in
  let better a b =
    match (good a, good b) with
    | true, false -> a
    | false, true -> b
    | _ -> if a.latency.Stats.p99 <= b.latency.Stats.p99 then a else b
  in
  let rec go k best =
    if k >= attempts || good best then Ok best
    else
      match once () with
      | Error _ -> Ok best (* environment flaked mid-sweep; keep what ran *)
      | Ok p -> go (k + 1) (better p best)
  in
  match once () with Error reason -> Error reason | Ok p -> go 1 p

(* ------------------------------------------------------------------ *)
(* Determinism gate.                                                  *)
(* ------------------------------------------------------------------ *)

(* The service cell under the replay discipline: two sim runs of the
   same seed must produce bit-identical traces — sessions, retries and
   state hashes included. *)
let sim_fingerprint ?(seed = 11L) ?algo ?ordering ?batching ?(clients = 24)
    ?(requests = 3) ~n () =
  let config = sim_config ~seed ?algo ?ordering ?batching ~n () in
  let config = { config with Stack.trace = `On } in
  let hosts = ref [||] in
  let on_deliver p m =
    if Array.length !hosts > 0 then App_host.on_deliver !hosts.(p) m
  in
  let stack = Stack.create ~on_deliver config in
  let profile =
    app_profile config ~clients ~requests ~app_seed:42 ~hash_every:16
      ~retry_ms:500.0
  in
  hosts :=
    Array.init n (fun p ->
        App_host.install stack.Stack.transport ~abcast:stack.Stack.abcast
          ~profile ~self:p ~mode:App_host.Service);
  Array.iter (fun h -> App_host.start h ~at:10.0 ~over_ms:200.0) !hosts;
  Stack.run ~until:60_000.0 stack;
  Digest.to_hex
    (Digest.string
       (Format.asprintf "%a" Trace.pp (Engine.trace stack.Stack.engine)))

let replay_check ?seed ?algo ?ordering ?batching ?clients ?requests ~n () =
  let fp () = sim_fingerprint ?seed ?algo ?ordering ?batching ?clients ?requests ~n () in
  let first = fp () in
  let second = fp () in
  if String.equal first second then Ok first else Error (first, second)
