(** Benchmark workloads and the experiment runner.

    The paper's workload (§4.2) is symmetric: all [n] processes A-broadcast
    messages of a fixed size at the same rate; the global rate is the
    throughput.  Arrivals are Poisson (exponential inter-arrival times).
    The metric is the {e latency}: the elapsed time between abroadcast(m)
    and adeliver(m), averaged over all processes and all messages in the
    measurement window. *)

module Time = Ics_sim.Time
module Stats = Ics_prelude.Stats
module Stack = Ics_core.Stack

type load = {
  throughput : float;  (** global abroadcast rate, messages per second *)
  body_bytes : int;  (** payload size of every message *)
  duration : Time.t;  (** arrivals stop after this much virtual time *)
  warmup : Time.t;  (** messages created before this are not measured *)
}

val default_load : load
(** 100 msg/s, 1-byte payloads, 10 s duration, 1 s warmup. *)

type result = {
  latency : Stats.summary;  (** per (message, process) delivery latency, ms *)
  measured : int;  (** latency samples collected *)
  abroadcasts : int;  (** messages injected (including unmeasured ones) *)
  sent_messages : int;  (** transport-level messages *)
  sent_bytes : int;  (** transport-level wire bytes *)
  quiescent : bool;  (** did the run drain all events before the horizon *)
  wall_clock : Time.t;  (** virtual time at the end of the run *)
  events : int;  (** simulator events executed (perf-harness denominator) *)
  verdict : Ics_checker.Checker.verdict option;  (** when run with [~check:true] *)
  utilization : (string * float) list;
      (** busy-time fraction per resource (CPUs, links) over the run *)
  per_layer : (string * int * int) list;
      (** traffic decomposition: (layer, messages, wire bytes) *)
}

val run : ?check:bool -> ?seed:int64 -> Stack.config -> load -> result
(** Run one configuration under one load.  The simulation runs until all
    events drain or a horizon of [duration + 60 s] passes.  With
    [~check:true] the full trace is validated with
    {!Ics_checker.Checker.check_all_abcast} (expensive — test-sized runs
    only); without it, trace recording is switched off (the config's
    [trace] field is overridden either way; scheduling is identical). *)

val run_seeds : ?check:bool -> seeds:int64 list -> Stack.config -> load -> result
(** Like {!run} but pooling latency samples over several seeds; counts are
    summed, [quiescent] is the conjunction, and the verdict is the merge. *)

val mean_latency : result -> float
(** Shorthand for [result.latency.mean]. *)
