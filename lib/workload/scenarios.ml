module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Model = Ics_net.Model
module Message = Ics_net.Message
module Checker = Ics_checker.Checker
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Failure_detector = Ics_fd.Failure_detector

type outcome = {
  description : string;
  verdict : Checker.verdict;
  blocked : (Pid.t * string) list;
  delivered : (Pid.t * int) list;
  decided_instances : int;
}

let pp_outcome ppf o =
  Format.fprintf ppf "%s@." o.description;
  Format.fprintf ppf "  verdict: %a@." Checker.pp_verdict o.verdict;
  List.iter
    (fun (p, id) -> Format.fprintf ppf "  %a blocked on %s@." Pid.pp p id)
    o.blocked;
  List.iter
    (fun (p, c) -> Format.fprintf ppf "  %a adelivered %d@." Pid.pp p c)
    o.delivered

let finish stack =
  let engine = stack.Stack.engine in
  let n = Engine.n engine in
  let run = Checker.Run.of_trace (Engine.trace engine) ~n in
  let correct = Checker.Run.correct run in
  let blocked =
    List.filter_map
      (fun p ->
        match Abcast.blocked_head stack.Stack.abcast p with
        | Some id when List.mem p correct -> Some (p, Ics_net.Msg_id.to_string id)
        | _ -> None)
      (Pid.all ~n)
  in
  let delivered =
    List.map
      (fun p -> (p, List.length (Abcast.delivered_sequence stack.Stack.abcast p)))
      (Pid.all ~n)
  in
  let decided_instances =
    List.sort_uniq Int.compare
      (List.map (fun (_, k, _) -> k) (Checker.Run.decisions run))
    |> List.length
  in
  (run, blocked, delivered, decided_instances)

type ab_variant = Faulty_ids | Indirect

(* §2.2: p0's reliable-broadcast payloads never reach the wire; everything
   else flows.  p0 crashes after consensus has ordered id(m); p1 then
   broadcasts a message of its own, which the faulty stack can never
   deliver. *)
let validity_scenario ?(n = 3) variant =
  let ordering =
    match variant with
    | Faulty_ids -> Abcast.Consensus_on_ids
    | Indirect -> Abcast.Indirect_consensus
  in
  let config =
    {
      Stack.abcast_ids_faulty with
      n;
      ordering;
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 20.0;
    }
  in
  let rule (msg : Message.t) =
    if Message.layer_name msg = "rb" && Pid.equal msg.src 0 then Model.Drop else Model.Pass
  in
  let stack = Stack.create ~rule config in
  let engine = stack.Stack.engine in
  Engine.schedule engine ~at:1.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:0 ~body_bytes:64));
  Engine.crash_at engine 0 ~at:10.0;
  Engine.schedule engine ~at:50.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:1 ~body_bytes:64));
  Stack.run ~until:5_000.0 stack;
  let run, blocked, delivered, decided_instances = finish stack in
  {
    description =
      Printf.sprintf "S2.2 validity scenario, %s"
        (match variant with Faulty_ids -> "faulty consensus on ids" | Indirect -> "indirect consensus");
    verdict = Checker.check_all_abcast run;
    blocked;
    delivered;
    decided_instances;
  }

type mr_variant = Naive | Indirect_mr

(* §3.3.2: coordinator p0 proposes id(m) holding the only copy of m.  In
   the naive adaptation, p1 and p2 vouch for the value they do not hold;
   p3/p4's ⊥-relays are delayed so the first majority quorum everyone
   observes is unanimous, and the system decides an id whose payload dies
   with p0. *)
let mr_scenario ?(n = 5) variant =
  let ordering =
    match variant with
    | Naive -> Abcast.Consensus_on_ids
    | Indirect_mr -> Abcast.Indirect_consensus
  in
  let config =
    {
      Stack.default_config with
      n;
      algo = Stack.Mr;
      ordering;
      setup = Stack.Ideal_lan { delay = 1.0; jitter = 0.0 };
      fd_kind = Stack.Oracle 20.0;
    }
  in
  (* p0's payloads never reach the wire; p3/p4 believe p0 crashed from the
     start (manual suspicions), and their consensus relays are slowed so
     the unanimous-looking quorum forms first. *)
  let rule (msg : Message.t) =
    if Message.layer_name msg = "rb" && Pid.equal msg.src 0 then Model.Drop
    else if Message.layer_name msg = "consensus" && (Pid.equal msg.src 3 || Pid.equal msg.src 4) then
      Model.Delay_by 10.0
    else Model.Pass
  in
  (* Manual FD: p3/p4 suspect p0 from the start (the paper's "p suspects
     the coordinator"); completeness for the actual crash is injected by
     hand at t=25. *)
  let engine = Engine.create ~seed:config.Stack.seed ~n () in
  let control = Failure_detector.manual engine in
  let stack = Stack.create ~engine ~rule ~manual_fd:control config in
  Engine.schedule engine ~at:0.5 (fun () ->
      Failure_detector.Control.suspect control ~observer:3 0;
      Failure_detector.Control.suspect control ~observer:4 0);
  Engine.schedule engine ~at:1.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:0 ~body_bytes:64));
  Engine.crash_at engine 0 ~at:5.0;
  Engine.schedule engine ~at:25.0 (fun () ->
      Failure_detector.Control.suspect_everywhere control 0);
  Engine.schedule engine ~at:30.0 (fun () ->
      ignore (Stack.abroadcast stack ~src:1 ~body_bytes:64));
  Stack.run ~until:5_000.0 stack;
  let run, blocked, delivered, decided_instances = finish stack in
  {
    description =
      Printf.sprintf "S3.3.2 MR scenario, %s"
        (match variant with
        | Naive -> "naive adaptation (original MR on ids)"
        | Indirect_mr -> "indirect MR (two-thirds quorums)");
    verdict = Checker.check_all_abcast run;
    blocked;
    delivered;
    decided_instances;
  }
