(* Offered-load saturation sweep: drive one stack shape at increasing
   arrival rates and record throughput/latency at each point, on the
   deterministic simulator and on the live loopback cluster.  The knee of
   the resulting curve — the highest offered load the stack absorbs
   without its latency tail or its backlog exploding — is the headline
   number for the batching/pipelining/ring work (Ring Paxos's evaluation
   methodology, applied to the indirect-consensus split). *)

module Engine = Ics_sim.Engine
module Stats = Ics_prelude.Stats
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module Checker = Ics_checker.Checker
module Node = Ics_runtime.Node
module Cluster = Ics_runtime.Cluster

type point = {
  offered : float;  (** target arrival rate, msg/s cluster-wide *)
  achieved : float;  (** distinct messages ordered per second *)
  latency : Stats.summary;  (** abroadcast -> adelivery, ms *)
  checker_ok : bool;  (** full battery on the (merged) trace *)
  clean : bool;
      (** sim: event queue drained; live: every node exited through the
          delivery barrier (an overloaded point times out instead) *)
  util : float;
      (** busiest resource's utilization over the arrival window (sim
          only; NaN on live, where the barrier timeout is the overload
          signal instead) *)
  delivered : int;  (** (message, process) delivery pairs observed *)
}

type curve = {
  backend : [ `Sim | `Live ];
  n : int;
  batching : Abcast.batching;
  broadcast : Profile.broadcast_kind;
  points : point list;
}

(* The knee: the fastest point that is still healthy.  Both backends
   eventually drain their whole backlog (the sim is open-loop; the live
   cluster gets a drain window after the arrival window), so achieved
   tracks offered even somewhat past capacity — the tail latency is the
   honest signal: below the knee the stack delivers in
   single-digit-to-tens of ms, past it p99 grows with the queue, so a
   fixed SLA bound separates serving from queueing.  The bound is set
   above the scheduling noise floor of an oversubscribed host: with n+1
   processes timesharing a core, a node's p99 includes waits of several
   scheduler quanta (tens of ms) even well below capacity, so a tighter
   bound would measure the host's scheduler rather than the stack's
   queue.  Falls back to the fastest point overall when nothing is
   healthy, so a degenerate sweep still reports. *)
let p99_bound_ms = 100.0

let healthy p =
  p.checker_ok && p.clean
  && (p.latency.Stats.count = 0 || p.latency.Stats.p99 <= p99_bound_ms)

let knee curve =
  let healthy = List.filter healthy curve.points in
  let fastest = function
    | [] -> None
    | ps ->
        Some
          (List.fold_left
             (fun best p -> if p.achieved > best.achieved then p else best)
             (List.hd ps) ps)
  in
  match fastest healthy with Some p -> Some p | None -> fastest curve.points

(* ------------------------------------------------------------------ *)
(* Simulated sweep.                                                   *)
(* ------------------------------------------------------------------ *)

let sim_config ?(seed = 1L) ?(algo = Profile.Ct)
    ?(ordering = Abcast.Indirect_consensus) ~n ~batching ~broadcast () =
  {
    Stack.default_config with
    Stack.n;
    seed;
    algo;
    ordering;
    broadcast;
    batching;
    setup = Stack.Setup2;
  }

let sim_point ?(seed = 1L) ?(body_bytes = 32) ?(duration_ms = 4_000.0)
    ~config offered =
  let load =
    {
      Experiment.throughput = offered;
      body_bytes;
      duration = duration_ms;
      warmup = Float.min 1_000.0 (duration_ms /. 4.0);
    }
  in
  let r = Experiment.run ~check:true ~seed config load in
  let n = config.Stack.n in
  let window_s = (load.Experiment.duration -. load.Experiment.warmup) /. 1000.0 in
  {
    offered;
    achieved = float_of_int (r.Experiment.measured / n) /. window_s;
    latency = r.Experiment.latency;
    checker_ok =
      (match r.Experiment.verdict with
      | Some v -> Checker.ok v
      | None -> false);
    clean = r.Experiment.quiescent;
    util =
      List.fold_left (fun m (_, u) -> Float.max m u) 0.0
        r.Experiment.utilization;
    delivered = r.Experiment.measured;
  }

let sim_curve ?seed ?algo ?ordering ?body_bytes ?duration_ms ~n ~batching
    ~broadcast offered_loads =
  let config = sim_config ?seed ?algo ?ordering ~n ~batching ~broadcast () in
  {
    backend = `Sim;
    n;
    batching;
    broadcast;
    points =
      List.map (fun o -> sim_point ?seed ?body_bytes ?duration_ms ~config o)
        offered_loads;
  }

(* ------------------------------------------------------------------ *)
(* Live sweep.                                                        *)
(* ------------------------------------------------------------------ *)

let live_supported = Cluster.supported

(* A fixed arrival window: each node broadcasts its share of [offered]
   at even gaps for [duration_ms], then the cluster drains to the
   delivery barrier (or times out, which marks the point un-clean). *)
let live_profile ?(algo = Profile.Ct) ?(ordering = Abcast.Indirect_consensus)
    ?(body_bytes = 32) ~n ~batching ~broadcast ~duration_ms ~drain_ms offered =
  let per_node = offered /. float_of_int n in
  let gap_ms = 1000.0 /. per_node in
  let count =
    int_of_float (Float.round (offered *. duration_ms /. 1000.0 /. float_of_int n))
  in
  let warmup_ms = 400.0 in
  {
    Profile.default with
    Profile.n;
    algo;
    ordering;
    broadcast;
    (* A saturation point injects no faults, so the failure detector's
       only job is crash liveness — but at saturation on an
       oversubscribed host, scheduler stalls routinely exceed the
       chaos-tuned 120 ms and a false suspicion triggers a round-change
       storm that measures the detector, not the stack.  Suspect only
       after a genuinely dead interval. *)
    hb_timeout_ms = 2_000.0;
    batch = batching.Abcast.batch;
    pipeline = batching.Abcast.pipeline;
    flush_ms = batching.Abcast.flush_ms;
    count = max 1 count;
    body_bytes;
    gap_ms;
    warmup_ms;
    deadline_ms = warmup_ms +. duration_ms +. drain_ms;
  }

(* The drain window is deliberately generous: the barrier exits as soon
   as delivery completes, so the deadline only binds for points past the
   knee — and those must still drain to a checker-clean trace rather
   than be killed mid-protocol, or the sweep reports truncation noise
   instead of overload.

   [attempts]: a live point measures *capacity*, and on an
   oversubscribed host a single co-tenant burst during a one-second
   arrival window inflates p99 by an order of magnitude — noise, not
   queueing.  Best-of-k (stop at the first healthy attempt, else keep
   the attempt with the lowest p99) approximates the uncontended
   machine; every attempt still runs the full checker battery, so
   robustness never trades against correctness. *)
let live_point ?(seed = 1L) ?algo ?ordering ?body_bytes
    ?(duration_ms = 2_000.0) ?(drain_ms = 10_000.0) ?(attempts = 1) ~n
    ~batching ~broadcast offered =
  let profile =
    live_profile ?algo ?ordering ?body_bytes ~n ~batching ~broadcast
      ~duration_ms ~drain_ms offered
  in
  let node = { Node.default_workload with Node.profile; seed } in
  let once () =
    match Cluster.run { Cluster.default with Cluster.node; check = `All } with
    | Error reason -> Error reason
    | Ok o ->
        let latency =
          match o.Cluster.latency with
          | None -> Stats.empty_summary
          | Some l ->
              {
                Stats.empty_summary with
                Stats.count = l.Cluster.samples;
                mean = l.Cluster.mean_ms;
                p50 = l.Cluster.p50_ms;
                p95 = l.Cluster.p95_ms;
                p99 = l.Cluster.p99_ms;
                max = l.Cluster.max_ms;
              }
        in
        Ok
          {
            offered;
            achieved = o.Cluster.throughput_msg_s;
            latency;
            checker_ok = Checker.ok o.Cluster.verdict;
            clean = Cluster.ok o;
            util = Float.nan;
            delivered = Array.fold_left ( + ) 0 o.Cluster.delivered_per_node;
          }
  in
  let better a b =
    (* checker-clean beats dirty regardless of speed; then lower p99. *)
    match (a.checker_ok && a.clean, b.checker_ok && b.clean) with
    | true, false -> a
    | false, true -> b
    | _ -> if a.latency.Stats.p99 <= b.latency.Stats.p99 then a else b
  in
  let rec go k best =
    if k >= attempts then Ok best
    else
      match once () with
      | Error _ -> Ok best (* environment flaked mid-sweep; keep what ran *)
      | Ok p ->
          let best = better p best in
          if healthy best then Ok best else go (k + 1) best
  in
  match once () with
  | Error reason -> Error reason
  | Ok p -> if healthy p then Ok p else go 1 p

let live_curve ?seed ?algo ?ordering ?body_bytes ?duration_ms ?drain_ms
    ?attempts ~n ~batching ~broadcast offered_loads =
  let points =
    List.filter_map
      (fun o ->
        match
          live_point ?seed ?algo ?ordering ?body_bytes ?duration_ms ?drain_ms
            ?attempts ~n ~batching ~broadcast o
        with
        | Ok p -> Some p
        | Error _ -> None)
      offered_loads
  in
  { backend = `Live; n; batching; broadcast; points }

(* ------------------------------------------------------------------ *)
(* Determinism gate for the smoke target.                             *)
(* ------------------------------------------------------------------ *)

(* Two sim runs of the same saturation cell must produce bit-identical
   traces — the same replay discipline the chaos sweep enforces, applied
   to the batched/pipelined/ring configuration. *)
let sim_fingerprint ?(seed = 11L) ?algo ?ordering ?(offered = 400.0)
    ?(duration_ms = 1_000.0) ~n ~batching ~broadcast () =
  let config = sim_config ~seed ?algo ?ordering ~n ~batching ~broadcast () in
  let config = { config with Stack.trace = `On } in
  let stack = Stack.create config in
  let engine = stack.Stack.engine in
  let gap = 1000.0 /. (offered /. float_of_int n) in
  let per_node = int_of_float (Float.round (duration_ms /. gap)) in
  for k = 0 to (per_node * n) - 1 do
    Engine.schedule engine
      ~at:(10.0 +. (gap *. float_of_int (k / n)))
      (fun () -> ignore (Stack.abroadcast stack ~src:(k mod n) ~body_bytes:32))
  done;
  Stack.run ~until:(duration_ms +. 10_000.0) stack;
  Digest.to_hex
    (Digest.string (Format.asprintf "%a" Ics_sim.Trace.pp (Engine.trace engine)))

let replay_check ?seed ?algo ?ordering ?offered ?duration_ms ~n ~batching
    ~broadcast () =
  let fp () =
    sim_fingerprint ?seed ?algo ?ordering ?offered ?duration_ms ~n ~batching
      ~broadcast ()
  in
  let first = fp () in
  let second = fp () in
  if String.equal first second then Ok first else Error (first, second)
