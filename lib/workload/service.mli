(** Closed-loop service workload: the client-plane bench behind
    BENCH_PR8.json and [make service-smoke].

    One {!point} runs [clients] closed-loop sessions, each submitting
    [requests] commands to the replicated KV/ledger machine through the
    full broadcast stack, and reports the {e client-visible} latency
    (submit → applied at the client's home replica).  Every point is
    gated by the full abcast checker battery plus the application
    battery — probe outcomes, exactly-once dedup, per-client order,
    state-hash agreement across replicas, and progress.

    Sim points assemble a {!Ics_core.Stack} with one
    {!Ics_core.App_host} per replica; live points run a real loopback
    {!Ics_runtime.Cluster} whose nodes host the same App_host code via
    the Env seam.  Per seed, the final state hash must be bit-identical
    across backends ({!hash_match}). *)

module Stats = Ics_prelude.Stats
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile

type point = {
  backend : [ `Sim | `Live ];
  n : int;
  clients : int;
  requests : int;
  commands : int;  (** clients * requests, the workload size *)
  achieved : float;  (** distinct commands ordered per second *)
  latency : Stats.summary;  (** client-visible: submit → applied at home *)
  checker_ok : bool;  (** abcast battery + app battery on the trace *)
  clean : bool;
      (** every session completed and every replica applied the whole
          workload (sim); every node exited through the barrier (live) *)
  hash : (int * int64) option;  (** deepest (cursor, state hash) observed *)
}

val hash_match : point -> point -> bool
(** Both points finished their whole workload and landed on the same
    state hash at the full cursor — the sim-vs-live agreement gate. *)

val sim_point :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?batching:Abcast.batching ->
  ?app_seed:int ->
  ?hash_every:int ->
  ?retry_ms:float ->
  ?ramp_ms:float ->
  ?horizon_ms:float ->
  n:int ->
  clients:int ->
  requests:int ->
  unit ->
  point
(** One simulated service point on Setup 2.  Sessions start staggered
    over [ramp_ms] (default 1 s); the run ends when the event queue
    drains or at [horizon_ms] (default 120 s virtual). *)

val live_supported : unit -> bool
(** Whether this environment can run loopback TCP clusters. *)

val live_point :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?batching:Abcast.batching ->
  ?app_seed:int ->
  ?hash_every:int ->
  ?retry_ms:float ->
  ?deadline_ms:float ->
  ?attempts:int ->
  n:int ->
  clients:int ->
  requests:int ->
  unit ->
  (point, string) result
(** One live cluster point.  [Error reason] only when the environment
    cannot run sockets; a run that misses the barrier surfaces as
    [clean = false].  [attempts] (default 1) reruns an unhealthy point
    best-of-k, every attempt still checker-gated. *)

val sim_fingerprint :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?batching:Abcast.batching ->
  ?clients:int ->
  ?requests:int ->
  n:int ->
  unit ->
  string
(** Digest of the full event trace of one deterministic sim run of the
    service cell — sessions, retries and state hashes included. *)

val replay_check :
  ?seed:int64 ->
  ?algo:Profile.algo ->
  ?ordering:Abcast.ordering ->
  ?batching:Abcast.batching ->
  ?clients:int ->
  ?requests:int ->
  n:int ->
  unit ->
  (string, string * string) result
(** Run the cell twice; [Ok fingerprint] iff both traces are
    bit-identical ([Error (first, second)] otherwise). *)
