(** Chunked parallel map over OCaml 5 domains, work-stealing-free.

    [map ~jobs f tasks] applies [f] to every element of [tasks] using
    [jobs] domains (the calling domain included) and returns the results
    in task order.  Workers claim [chunk]-sized index ranges from a
    single [Atomic] counter and write each result into its own slot, so
    the output — including which exception propagates when tasks raise
    (the lowest-index one, with its original backtrace) — is independent
    of scheduling and bit-identical to a [jobs = 1] run.

    [jobs <= 1] (or fewer than two tasks) degenerates to [Array.map] on
    the calling domain: no domain is spawned, which keeps single-job
    runs usable from contexts where spawning is off-limits (e.g. a
    caller that must [fork] afterwards).

    Tasks run concurrently, so [f] must not touch shared non-[Atomic]
    mutable state; this module is a root of the lint's DS (domain
    safety) pass, which checks everything reachable from the closures
    handed to it.  Lazies and write-once registries the tasks read must
    be forced {e before} calling [map] — [Lazy.force] is not
    domain-safe. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
