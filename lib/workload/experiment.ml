module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Time = Ics_sim.Time
module Stats = Ics_prelude.Stats
module Variate = Ics_prelude.Variate
module App_msg = Ics_net.App_msg
module Stack = Ics_core.Stack
module Checker = Ics_checker.Checker

type load = {
  throughput : float;
  body_bytes : int;
  duration : Time.t;
  warmup : Time.t;
}

let default_load =
  { throughput = 100.0; body_bytes = 1; duration = 10_000.0; warmup = 1_000.0 }

type result = {
  latency : Stats.summary;
  measured : int;
  abroadcasts : int;
  sent_messages : int;
  sent_bytes : int;
  quiescent : bool;
  wall_clock : Time.t;
  events : int;
  verdict : Checker.verdict option;
  utilization : (string * float) list;  (* over the arrival window *)
  per_layer : (string * int * int) list;
}

let drain_horizon = 60_000.0

let run ?(check = false) ?seed config load =
  if load.throughput <= 0.0 then invalid_arg "Experiment.run: throughput <= 0";
  if load.warmup >= load.duration then invalid_arg "Experiment.run: warmup >= duration";
  let config =
    match seed with None -> config | Some seed -> { config with Stack.seed }
  in
  (* Runs that never consult the checker skip trace recording entirely. *)
  let config = { config with Stack.trace = (if check then `On else `Off) } in
  let samples = Stats.Samples.create () in
  let measured = ref 0 in
  let abroadcasts = ref 0 in
  (* The delivery callback needs the engine's clock, so the stack is wired
     through a forward reference. *)
  let stack_ref = ref None in
  let on_deliver p (m : App_msg.t) =
    ignore p;
    match !stack_ref with
    | None -> ()
    | Some stack ->
        if m.created_at >= load.warmup && m.created_at < load.duration then begin
          incr measured;
          Stats.Samples.add samples
            (Time.( - ) (Engine.now stack.Stack.engine) m.created_at)
        end
  in
  let stack = Stack.create ~on_deliver config in
  stack_ref := Some stack;
  let engine = stack.Stack.engine in
  let n = config.Stack.n in
  (* Symmetric Poisson arrivals: each process broadcasts at throughput/n. *)
  let per_process_mean_ms = Time.of_s (float_of_int n /. load.throughput) in
  List.iter
    (fun p ->
      let rng = Engine.rng engine p in
      let rec arrival () =
        if Engine.now engine < load.duration && Engine.is_alive engine p then begin
          incr abroadcasts;
          ignore (Stack.abroadcast stack ~src:p ~body_bytes:load.body_bytes);
          Engine.after engine
            ~delay:(Variate.exponential rng ~mean:per_process_mean_ms)
            arrival
        end
      in
      Engine.after engine ~delay:(Variate.exponential rng ~mean:per_process_mean_ms) arrival)
    (Pid.all ~n);
  let horizon = Time.( + ) load.duration drain_horizon in
  Stack.run ~until:horizon stack;
  let quiescent = Engine.pending engine = 0 in
  let verdict =
    if check then
      Some (Checker.check_all_abcast (Checker.Run.of_trace (Engine.trace engine) ~n))
    else None
  in
  {
    latency = Stats.Samples.summarize samples;
    measured = !measured;
    abroadcasts = !abroadcasts;
    sent_messages = Ics_net.Transport.sent_messages stack.Stack.transport;
    sent_bytes = Ics_net.Transport.sent_bytes stack.Stack.transport;
    quiescent;
    wall_clock = Engine.now engine;
    events = Engine.events_executed engine;
    verdict;
    utilization = Stack.utilization ~horizon:load.duration stack;
    per_layer = Ics_net.Transport.per_layer_stats stack.Stack.transport;
  }

let run_seeds ?(check = false) ~seeds config load =
  let results = List.map (fun seed -> run ~check ~seed config load) seeds in
  match results with
  | [] -> invalid_arg "Experiment.run_seeds: empty seed list"
  | first :: _ ->
      let total_measured = List.fold_left (fun a r -> a + r.measured) 0 results in
      let pooled_mean =
        List.fold_left (fun a r -> a +. (r.latency.Stats.mean *. float_of_int r.measured)) 0.0
          results
        /. float_of_int (max 1 total_measured)
      in
      let latency = { first.latency with Stats.mean = pooled_mean; count = total_measured } in
      {
        latency;
        measured = total_measured;
        abroadcasts = List.fold_left (fun a r -> a + r.abroadcasts) 0 results;
        sent_messages = List.fold_left (fun a r -> a + r.sent_messages) 0 results;
        sent_bytes = List.fold_left (fun a r -> a + r.sent_bytes) 0 results;
        quiescent = List.for_all (fun r -> r.quiescent) results;
        wall_clock = (List.hd (List.rev results)).wall_clock;
        events = List.fold_left (fun a r -> a + r.events) 0 results;
        utilization = first.utilization;
        per_layer = first.per_layer;
        verdict =
          (if check then
             Some
               {
                 Checker.violations =
                   List.concat_map
                     (fun r ->
                       match r.verdict with
                       | Some v -> v.Checker.violations
                       | None -> [])
                     results;
                 checked =
                   (match first.verdict with Some v -> v.Checker.checked | None -> []);
               }
           else None);
      }

let mean_latency r = r.latency.Stats.mean
