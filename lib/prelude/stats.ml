type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  ci95_half_width : float;
}

let empty_summary =
  {
    count = 0;
    mean = Float.nan;
    stddev = Float.nan;
    min = Float.nan;
    max = Float.nan;
    p50 = Float.nan;
    p90 = Float.nan;
    p95 = Float.nan;
    p99 = Float.nan;
    ci95_half_width = Float.nan;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize_array a =
  let n = Array.length a in
  if n = 0 then empty_summary
  else begin
    let sorted = Array.copy a in
    Array.sort Float.compare sorted;
    (* Float.compare orders NaN before every number, so one check at the
       front catches any NaN in the input. *)
    if Float.is_nan sorted.(0) then
      invalid_arg "Stats.summarize_array: NaN sample";
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let mean = sum /. float_of_int n in
    let sq =
      Array.fold_left
        (fun acc x ->
          let d = x -. mean in
          acc +. (d *. d))
        0.0 sorted
    in
    let stddev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
    let sem = if n < 2 then 0.0 else stddev /. sqrt (float_of_int n) in
    {
      count = n;
      mean;
      stddev;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.50;
      p90 = percentile sorted 0.90;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99;
      ci95_half_width = 1.96 *. sem;
    }
  end

let summarize l = summarize_array (Array.of_list l)

let mean = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3fms sd=%.3f p50=%.3f p90=%.3f p95=%.3f p99=%.3f"
    s.count s.mean s.stddev s.p50 s.p90 s.p95 s.p99

module Samples = struct
  type t = { mutable data : float array; mutable length : int }

  let create ?(capacity = 1024) () =
    { data = Array.make (Stdlib.max 1 capacity) 0.0; length = 0 }

  let length t = t.length

  let add t x =
    if Float.is_nan x then invalid_arg "Stats.Samples.add: NaN sample";
    if t.length = Array.length t.data then begin
      let bigger = Array.make (2 * t.length) 0.0 in
      Array.blit t.data 0 bigger 0 t.length;
      t.data <- bigger
    end;
    t.data.(t.length) <- x;
    t.length <- t.length + 1

  let to_array t = Array.sub t.data 0 t.length
  let summarize t = summarize_array (to_array t)
end

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then Float.nan else t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = if t.n = 0 then Float.nan else t.min
  let max t = if t.n = 0 then Float.nan else t.max
end
