(** Summary statistics over latency samples.

    The paper's performance metric is the latency of atomic broadcast,
    averaged over all processes (§4.2).  This module computes that mean plus
    the dispersion measures we report alongside it in EXPERIMENTS.md. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  ci95_half_width : float;
      (** half-width of the 95% confidence interval on the mean, using a
          normal approximation (adequate for the sample sizes we use). *)
}

val empty_summary : summary
(** Summary of zero samples: count 0 and NaN statistics. *)

val summarize : float list -> summary
(** [summarize samples] computes the summary.  Order of samples is
    irrelevant. *)

val summarize_array : float array -> summary
(** Same on an array; the array is not modified. *)

val mean : float list -> float
(** Arithmetic mean; NaN on empty input. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] over a {e sorted} array,
    using linear interpolation between closest ranks.
    @raise Invalid_argument on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering, e.g. [n=930 mean=3.21ms sd=0.88 p50=3.01 p99=6.70]. *)

(** Growable unboxed sample buffer.  A [float array] stores its elements
    flat, so accumulating latencies here costs no per-sample allocation —
    unlike consing onto a [float list], which boxes every sample. *)
module Samples : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty buffer; [capacity] (default 1024) is the initial array
      size, grown by doubling. *)

  val add : t -> float -> unit
  (** Append a sample. @raise Invalid_argument on NaN. *)

  val length : t -> int

  val to_array : t -> float array
  (** The samples in insertion order, as a fresh array of exact length. *)

  val summarize : t -> summary
end

(** Incremental accumulator (Welford) for streams too large to retain. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end
