let keys ~cmp tbl =
  List.sort_uniq cmp (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let iter ~cmp f tbl =
  List.iter
    (fun k -> List.iter (fun v -> f k v) (List.rev (Hashtbl.find_all tbl k)))
    (keys ~cmp tbl)

let fold ~cmp f tbl init =
  List.fold_left
    (fun acc k ->
      List.fold_left (fun acc v -> f k v acc) acc (List.rev (Hashtbl.find_all tbl k)))
    init (keys ~cmp tbl)

let bindings ~cmp tbl = List.rev (fold ~cmp (fun k v acc -> (k, v) :: acc) tbl [])
