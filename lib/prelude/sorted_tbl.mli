(** Key-sorted iteration over [Hashtbl.t].

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in bucket order, which
    depends on hashing internals and insertion history — using them in a
    protocol layer makes the execution a function of memory layout rather
    than of the event schedule, silently breaking seeded replay.  These
    wrappers visit keys in ascending [cmp] order instead; they are the only
    sanctioned way to iterate a hashtable in the deterministic layers
    (enforced by [ics_lint] rule D1, see DESIGN.md section 9).

    [cmp] is deliberately a required argument: passing the key module's own
    comparison ([Int.compare], [Pid.compare], [Msg_id.compare], ...) keeps
    polymorphic [Stdlib.compare] out of the protocol layers (rule D3).

    Cost is O(n log n) per traversal; these sites are cold (suspicion
    handlers, end-of-run checking), not per-message paths. *)

val keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Distinct keys in ascending [cmp] order. *)

val iter : cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** Like [Hashtbl.iter], but keys ascend in [cmp] order.  For a key with
    several bindings (via [Hashtbl.add]), all are visited, oldest first. *)

val fold :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** Like [Hashtbl.fold], with the same order as {!iter}. *)

val bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings as a key-sorted association list. *)
