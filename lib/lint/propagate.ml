(* Phase 2 of the interprocedural analysis: condense the call graph
   into strongly connected components (Tarjan), propagate effect bits
   over the condensation in reverse topological order, and turn the
   results into findings:

   - D4: a function in a deterministic layer whose call chain crosses
     out of the deterministic scope and bottoms out in an ambient
     nondeterminism source the per-file D2 rule cannot see (the source
     sits where D2 is off — lib/runtime, lib/prelude/rng — or behind an
     allow audit).  Reported at the boundary call site, with the full
     chain in the message.
   - B2: the same shape for backend reach — a backend-neutral layer
     transitively naming Unix / Ics_runtime through modules B1 does not
     cover.
   - DS1: module-toplevel mutable state in any module reachable from
     the Domains-sweep entry points (the cells must be shareable across
     domains), unless it is Atomic.t/Mutex.t or DS1-audited.
   - DS2: such state both written and read by sweep-reachable functions
     — a read-after-write race once cells run on separate domains.

   Findings are reported once per boundary call site (a deterministic
   caller of a deterministic callee is not re-reported: the callee owns
   its own boundary), so mutually recursive helpers neither loop nor
   double-report. *)

type pfinding = {
  p_file : string;
  p_line : int;
  p_col : int;
  p_rule : string;
  p_message : string;
  p_hint : string;
  p_chain : string list;
}

let display (cg : Callgraph.t) (n : Callgraph.node) =
  match Callgraph.summary cg n.Callgraph.nfile with
  | Some s -> s.Summary.base ^ "." ^ n.Callgraph.nname
  | None -> n.Callgraph.nname

(* ------------------------------------------------------------------ *)
(* Direct effect sites                                                 *)

let nd_ident path =
  match path with
  | "Random" :: _ :: _ -> Some (String.concat "." path)
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Hashtbl"; "randomize" ] ->
      Some (String.concat "." path)
  | _ -> None

let be_ident path =
  match path with
  | (("Unix" | "Ics_runtime") :: _ :: _ | [ ("Unix" | "Ics_runtime") ]) ->
      Some (String.concat "." path)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tarjan SCC + reverse-topological effect propagation                 *)

type eff = { mutable nd : bool; mutable be : bool }

let condense nodes edges_of direct =
  let n = Array.length nodes in
  let index = Hashtbl.create n in
  Array.iteri (fun i nd -> Hashtbl.replace index nd i) nodes;
  let idx = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 and ncomp = ref 0 in
  let comp_eff = ref [] in
  let rec strongconnect v =
    idx.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      (edges_of v);
    if low.(v) = idx.(v) then begin
      (* Pop the component; every out-edge leaves into an already
         finished component, so its effects are final — reverse
         topological order for free. *)
      let members = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            members := w :: !members;
            if w = v then continue := false
        | [] -> continue := false
      done;
      let e = { nd = false; be = false } in
      List.iter
        (fun w ->
          let dnd, dbe = direct w in
          if dnd then e.nd <- true;
          if dbe then e.be <- true;
          List.iter
            (fun u ->
              if comp.(u) <> -1 && comp.(u) <> !ncomp then begin
                let eu = List.assoc comp.(u) !comp_eff in
                if eu.nd then e.nd <- true;
                if eu.be then e.be <- true
              end)
            (edges_of w))
        !members;
      comp_eff := (!ncomp, e) :: !comp_eff;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if idx.(v) = -1 then strongconnect v
  done;
  (comp, fun c -> List.assoc c !comp_eff)

(* ------------------------------------------------------------------ *)
(* Chain reconstruction: BFS from a node to the nearest direct site.   *)

let chain_to cg ~start ~site_of =
  let q = Queue.create () in
  let parent = Hashtbl.create 32 in
  Queue.add start q;
  Hashtbl.replace parent start None;
  let rec walk () =
    if Queue.is_empty q then None
    else
      let n = Queue.pop q in
      match site_of n with
      | Some ident ->
          (* Rebuild the path start -> ... -> n, then append the ident. *)
          let rec back acc n =
            match Hashtbl.find parent n with
            | None -> n :: acc
            | Some p -> back (n :: acc) p
          in
          Some (List.map (display cg) (back [] n) @ [ ident ])
      | None ->
          List.iter
            (fun (callee, _, _) ->
              if not (Hashtbl.mem parent callee) then begin
                Hashtbl.replace parent callee (Some n);
                Queue.add callee q
              end)
            (Callgraph.calls cg n);
          walk ()
  in
  walk ()

let pretty_chain chain = String.concat " \xe2\x86\x92 " chain

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)

let run ~(cg : Callgraph.t) ~det_scope ~neutral_scope ~nd_visible ~be_visible ~ds_roots
    ~ds_allowed =
  let nodes = Array.of_list (Callgraph.nodes cg) in
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i n -> Hashtbl.replace index n i) nodes;
  (* Direct effect sites per node, filtered down to the ones the
     per-file rules do NOT already report: a source D2/B1 flags (or
     would flag, absent its allow) is that rule's finding, not fuel for
     a second transitive one. *)
  let fn_of n =
    match Callgraph.summary cg n.Callgraph.nfile with
    | None -> None
    | Some s -> List.find_opt (fun (f : Summary.fn) -> f.Summary.fn_name = n.Callgraph.nname) s.Summary.fns
  in
  let nd_site n =
    match fn_of n with
    | None -> None
    | Some f ->
        List.find_map
          (fun (r : Summary.ident_ref) ->
            match nd_ident r.Summary.path with
            | Some ident when not (nd_visible n.Callgraph.nfile r.Summary.path r.Summary.line) ->
                Some ident
            | _ -> None)
          f.Summary.refs
  in
  let be_site n =
    match fn_of n with
    | None -> None
    | Some f ->
        List.find_map
          (fun (r : Summary.ident_ref) ->
            match be_ident r.Summary.path with
            | Some ident when not (be_visible n.Callgraph.nfile r.Summary.line) -> Some ident
            | _ -> None)
          f.Summary.refs
  in
  let edges_of v =
    List.filter_map (fun (c, _, _) -> Hashtbl.find_opt index c) (Callgraph.calls cg nodes.(v))
  in
  let direct v = (nd_site nodes.(v) <> None, be_site nodes.(v) <> None) in
  let comp, eff_of = condense nodes edges_of direct in
  let tainted_nd n =
    match Hashtbl.find_opt index n with Some i -> (eff_of comp.(i)).nd | None -> false
  in
  let tainted_be n =
    match Hashtbl.find_opt index n with Some i -> (eff_of comp.(i)).be | None -> false
  in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* D4 / B2: boundary call sites. *)
  Array.iter
    (fun n ->
      let file = n.Callgraph.nfile in
      List.iter
        (fun (callee, line, col) ->
          let cfile = callee.Callgraph.nfile in
          if det_scope file && (not (det_scope cfile)) && tainted_nd callee then begin
            match chain_to cg ~start:callee ~site_of:nd_site with
            | Some tail ->
                let chain = display cg n :: tail in
                emit
                  {
                    p_file = file;
                    p_line = line;
                    p_col = col;
                    p_rule = "D4";
                    p_message =
                      Printf.sprintf
                        "transitive nondeterminism: %s — the call chain leaves the \
                         deterministic scope and bottoms out in an ambient source D2 cannot \
                         see from here"
                        (pretty_chain chain);
                    p_hint =
                      "sever the chain or draw from the seeded Env/Engine stream; auditing \
                       the helper in its own file does not make its deterministic callers \
                       replayable";
                    p_chain = chain;
                  }
            | None -> ()
          end;
          if neutral_scope file && (not (neutral_scope cfile)) && tainted_be callee then begin
            match chain_to cg ~start:callee ~site_of:be_site with
            | Some tail ->
                let chain = display cg n :: tail in
                emit
                  {
                    p_file = file;
                    p_line = line;
                    p_col = col;
                    p_rule = "B2";
                    p_message =
                      Printf.sprintf
                        "transitive backend reach outside the Env seam: %s — this layer runs \
                         the same object code simulated and live, but the chain names a \
                         backend B1 cannot see from here"
                        (pretty_chain chain);
                    p_hint =
                      "reach time/scheduling/randomness/liveness through the Env capability \
                       record (lib/net/env.mli); hoist the backend call above the seam";
                    p_chain = chain;
                  }
            | None -> ()
          end)
        (Callgraph.calls cg n))
    nodes;
  (* DS1 / DS2: domain-safety over the sweep-reachable region. *)
  let reach = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun ds_root ->
      match Callgraph.summary cg ds_root with
      | None -> ()
      | Some s ->
          List.iter
            (fun (f : Summary.fn) ->
              let n = { Callgraph.nfile = ds_root; nname = f.Summary.fn_name } in
              if not (Hashtbl.mem reach n) then begin
                Hashtbl.replace reach n ();
                Hashtbl.replace parent n None;
                Queue.add n q
              end)
            s.Summary.fns)
    ds_roots;
  let first_in_file = Hashtbl.create 16 in
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    if not (Hashtbl.mem first_in_file n.Callgraph.nfile) then
      Hashtbl.replace first_in_file n.Callgraph.nfile n;
    List.iter
      (fun (callee, _, _) ->
        if not (Hashtbl.mem reach callee) then begin
          Hashtbl.replace reach callee ();
          Hashtbl.replace parent callee (Some n);
          Queue.add callee q
        end)
      (Callgraph.calls cg n)
  done;
  let witness file =
    match Hashtbl.find_opt first_in_file file with
    | None -> []
    | Some n ->
        let rec back acc n =
          match Hashtbl.find parent n with
          | None -> n :: acc
          | Some p -> back (n :: acc) p
        in
        List.map (display cg) (back [] n)
  in
  List.iter
    (fun (s : Summary.t) ->
      let rel = s.Summary.rel in
      if Hashtbl.mem first_in_file rel then
        List.iter
          (fun (g : Summary.global) ->
            let gnode = { Callgraph.nfile = rel; nname = g.Summary.g_name } in
            let writers =
              List.filter (fun (w, _, _) -> Hashtbl.mem reach w) (Callgraph.global_writers cg gnode)
            in
            let readers =
              List.filter (fun (r, _, _) -> Hashtbl.mem reach r) (Callgraph.global_readers cg gnode)
            in
            let mutable_ = g.Summary.g_alloc || Callgraph.global_writers cg gnode <> [] in
            if mutable_ && not g.Summary.g_atomic then begin
              let w = witness rel in
              emit
                {
                  p_file = rel;
                  p_line = g.Summary.g_line;
                  p_col = g.Summary.g_col;
                  p_rule = "DS1";
                  p_message =
                    Printf.sprintf
                      "module-toplevel mutable state '%s' (%s) in a module the Domains sweep \
                       reaches (%s): cells sharing this across domains race on it"
                      g.Summary.g_name g.Summary.g_kind (pretty_chain w);
                  p_hint =
                    "make it Atomic.t, move it into per-cell state, or audit the declaration \
                     with a reasoned DS1 allow";
                  p_chain = w;
                };
              (* A DS1 audit on the declaration is one decision covering
                 the derived hazard too: the DS1 finding above still goes
                 out (the textual allow suppresses it and is thereby
                 used, not stale), but no DS2 is derived from audited
                 state. *)
              if ds_allowed rel g.Summary.g_line then ()
              else
                match (writers, readers) with
              | (wn, wl, wc) :: _, (rn, _, _) :: _ ->
                  emit
                    {
                      p_file = rel;
                      p_line = wl;
                      p_col = wc;
                      p_rule = "DS2";
                      p_message =
                        Printf.sprintf
                          "concurrent read/write hazard on module-toplevel '%s': written by \
                           %s (%d writer%s) and read by %s (%d reader%s), all reachable from \
                           the sweep cells"
                          g.Summary.g_name (display cg wn) (List.length writers)
                          (if List.length writers = 1 then "" else "s")
                          (display cg rn) (List.length readers)
                          (if List.length readers = 1 then "" else "s")
                      ;
                      p_hint =
                        "serialise through Atomic.t or confine the state to one domain; a \
                         DS1 audit on the declaration also covers this";
                      p_chain = [];
                    }
              | _ -> ()
            end)
          s.Summary.globals)
    (Callgraph.summaries cg);
  List.rev !findings
