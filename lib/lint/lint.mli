(** [ics_lint]: a determinism & protocol-safety linter for this repo.

    Every guarantee the repo makes — bit-identical seeded chaos replay,
    pinned wire fingerprints, the §2.2 validity-violation reproduction —
    requires the protocol layers to be deterministic functions of the
    event schedule.  The pass parses every [.ml] under [lib/], [bin/]
    and [examples/] with compiler-libs ([Parse.implementation], no type
    information) and runs two phases over the parsetrees
    (DESIGN.md section 9):

    {b Phase 1 (per-file, syntactic)} walks each tree with
    [Ast_iterator] and checks the local rules, while also extracting a
    {!Summary.t} per compilation unit: the functions it defines, every
    ident path each body references, its write sites, and its
    module-toplevel globals.

    {b Phase 2 (interprocedural)} resolves the summaries' ident paths
    against the repo's module conventions into a cross-module call
    graph ({!Callgraph}), condenses it with Tarjan's SCC algorithm, and
    propagates effects transitively ({!Propagate}) — so a
    deterministic-layer function that reaches a wall clock through two
    helper modules is flagged even though no single file shows the
    violation.

    Rule catalog:

    - {b B1} — backend neutrality: modules under [lib/net], [lib/faults],
      [lib/consensus], [lib/broadcast], [lib/core] and [lib/app] must not
      reference [Unix] or [Ics_runtime] directly — as a value path, a
      module alias, or an [open].  Those layers run the same object code
      on the simulated and the live backend; the only sanctioned door to
      the outside world is the {!Ics_net.Env} capability record.
    - {b B2} — transitive backend reach: a backend-neutral function
      whose call chain crosses into modules B1 does not cover and
      bottoms out in [Unix]/[Ics_runtime].  Reported once at the
      boundary call site, with the full chain in the message and in
      {!finding.chain} (e.g. [core.tick → prelude.sys_probe.pid →
      Unix.getpid]).
    - {b D1} — no [Hashtbl.iter]/[Hashtbl.fold] (bucket-order, hence
      memory-layout-dependent) in the deterministic layers ([sim],
      [consensus], [broadcast], [core], [fd], [checker], [faults],
      [app]).  Key-sorted traversal via {!Ics_prelude.Sorted_tbl} is the
      sanctioned replacement.
    - {b D2} — no ambient nondeterminism: [Random.*] anywhere outside
      [lib/prelude/rng] (the seeded SplitMix64 home), and no
      [Sys.time]/[Unix.gettimeofday]/[Hashtbl.randomize] outside
      [lib/runtime] (the only layer allowed to read wall clocks).
    - {b D4} — transitive nondeterminism: a deterministic-layer function
      whose call chain leaves the deterministic scope and bottoms out in
      an ambient source D2 cannot see from the caller's file — the
      source sits where D2 is out of scope ([lib/runtime],
      [lib/prelude/rng]) or is allow-audited where it lives.  Reported
      at the boundary call site with the chain, like B2
      ([ct.on_suspect → prelude.foo → Unix.gettimeofday]).  Chains that
      stay inside the deterministic scope are not re-reported: the
      callee's own D2/D4 finding already covers them.
    - {b D3} — no polymorphic [Stdlib.compare] / structural equality on
      syntactically non-scalar values (records, tuples, payload-carrying
      constructors, list cells) in the deterministic layers; use the key
      module's own [compare]/[equal].
    - {b DS1} — domain-shared mutable state: module-toplevel mutable
      state ([ref], array, [Hashtbl.t], [Buffer.t], [Queue.t], ...) in
      any module reachable from the sweep-cell entry points (the
      toplevel functions of [lib/workload/chaos.ml]).  The
      Domains-parallel sweep shares such state across domains.
      [Atomic.t]/[Mutex.t] globals are exempt; anything else needs a
      reasoned [(* lint: allow DS1 — ... *)] on the declaration.  The
      message carries a reachability witness chain.
    - {b DS2} — concurrent read/write hazard: DS1 state that
      sweep-reachable functions both write and read — a data race once
      cells run concurrently.  Anchored at the first write site; a DS1
      audit on the declaration covers the derived DS2 findings too.
    - {b P1} — codec completeness: every [type Message.payload += ...]
      constructor must be covered by a [Codec.register ~fits:(function
      C ... -> true | ...)] somewhere in the tree, so an unregistered
      constructor fails [make lint], not a live cluster run.
    - {b P2} — timer hygiene: a self-rearming timer loop (a binding that
      passes itself back into [Engine.after]/[Engine.schedule], directly
      or through a local helper) must live in a module that consults a
      quiescence signal ([Engine.horizon], a [stop]/[stopped] flag) —
      otherwise the loop keeps the event queue non-empty forever and a
      horizon-less run never returns.

    Scopes: [examples/] gets the relaxed scope — D2 and P2 apply (an
    example must still be schedule-deterministic and quiesce), but
    D1/D3/B1 and the transitive rules are off, because examples may
    legitimately name the runtime and iterate unordered.

    Suppression: [(* lint: allow <rule> — reason *)] on the finding's
    line or the line above suppresses it; the reason is mandatory (a
    bare allow is itself reported, as is a stale allow that no longer
    suppresses anything), so every exception carries an audit trail.
    An audited source still feeds the transitive rules — allowing a
    [Unix.gettimeofday] where it lives does not license deterministic
    layers to call it — while a DS1 audit on a declaration clears that
    state's DS2 findings as well (same audit decision).

    Known limits (it is a linter, not a verifier): analysis is purely
    syntactic — no typing, so D3 only sees literal shapes; P1 matches
    constructors by name, so two layers' same-named constructors can
    mask each other (the codec round-trip test closes that gap
    dynamically); call-graph resolution covers toplevel [let]s and the
    repo's [Ics_<layer>.<Module>] / sibling-module conventions —
    functor applications, first-class modules and closures passed as
    values stay unresolved, which under-approximates (missed edges,
    never false chains).  [chaos --replay-check] is the dynamic
    complement. *)

type finding = {
  file : string;  (** path relative to the scan root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : string;  (** "B1".."P2", or "allow" for allow-comment misuse *)
  message : string;
  hint : string;  (** one-line fix hint *)
  chain : string list;
      (** for D4/B2/DS1/DS2: the call chain from the in-scope caller to
          the offending site, ["ct.on_suspect"; "prelude.foo";
          "Unix.gettimeofday"]; [[]] for the per-file rules *)
}

type report = {
  findings : finding list;  (** sorted by (file, line, col, rule) *)
  files_scanned : int;
  suppressed : int;  (** findings silenced by valid allow comments *)
  errors : (string * string) list;
      (** (file, message): unreadable/unparseable inputs — an internal
          error (exit 2), never silently skipped *)
}

val deterministic_layers : string list
(** ["sim"; "consensus"; "broadcast"; "core"; "fd"; "checker"; "faults";
    "app"] *)

val backend_neutral_layers : string list
(** ["net"; "faults"; "consensus"; "broadcast"; "core"; "app"] — the
    B1/B2 scope: layers below the runtime boundary, compiled once and
    run by both backends. *)

val rule_ids : string list
(** ["B1"; "B2"; "D1"; "D2"; "D3"; "D4"; "DS1"; "DS2"; "P1"; "P2"] —
    the allow-comment vocabulary. *)

val scan_root : string -> string list
(** The [.ml] files under [root/lib], [root/bin] and [root/examples],
    as root-relative paths in deterministic (sorted) order. *)

val run_files : ?rules:string list -> root:string -> files:string list -> unit -> report
(** Lint exactly [files] (root-relative).  Cross-file state (the P1
    registration pool, the call graph) is built from this file set
    only, so fixture tests see a closed world.

    [rules] (default: every rule plus ["allow"]) restricts the run to
    the listed rule ids: findings are generated for those rules only,
    and the suppression accounting follows — an allow comment for an
    unselected rule neither suppresses, nor counts in [suppressed], nor
    rots into a stale-allow finding.  Allow-hygiene findings appear
    only when ["allow"] itself is selected. *)

val run : ?rules:string list -> root:string -> unit -> report
(** [run_files] over [scan_root]. *)

val pp_report : Format.formatter -> report -> unit
(** Human format: [file:line:col: \[rule\] message] plus indented
    chain (when present) and hint lines per finding, then a one-line
    summary. *)

val to_json : report -> string
(** Machine format ([--format=json]): stable field order, findings
    sorted, no trailing whitespace.  The ["chain"] key is emitted only
    when non-empty, so reports from the per-file rules are byte-stable
    across the phase-2 introduction. *)

val to_sarif : report -> string
(** SARIF 2.1.0 ([--format=sarif]), minimal but schema-valid: one run,
    one result per finding (chain folded into the message text),
    internal errors as ruleId ["internal-error"].  For CI annotation;
    written to [_build/lint.sarif] by [make lint-report]. *)

val explain : string -> string option
(** [explain rule] is a paragraph describing the rule and its remedy
    ([--explain RULE]); [None] for an unknown id. *)

val exit_code : report -> int
(** 0 clean, 1 findings, 2 internal errors (errors win). *)
