(** [ics_lint]: a determinism & protocol-safety linter for this repo.

    Every guarantee the repo makes — bit-identical seeded chaos replay,
    pinned wire fingerprints, the §2.2 validity-violation reproduction —
    requires the protocol layers to be deterministic functions of the
    event schedule.  This pass parses every [.ml] under [lib/] and [bin/]
    with compiler-libs ([Parse.implementation], no type information) and
    walks the parsetree with [Ast_iterator], enforcing a small rule
    catalog with per-directory scopes (DESIGN.md section 9):

    - {b B1} — backend neutrality: modules under [lib/net], [lib/faults],
      [lib/consensus], [lib/broadcast] and [lib/core] must not reference
      [Unix] or [Ics_runtime] directly — as a value path, a module alias,
      or an [open].  Those layers run the same object code on the
      simulated and the live backend; the only sanctioned door to the
      outside world is the {!Ics_net.Env} capability record.
    - {b D1} — no [Hashtbl.iter]/[Hashtbl.fold] (bucket-order, hence
      memory-layout-dependent) in the deterministic layers ([sim],
      [consensus], [broadcast], [core], [fd], [checker], [faults]).
      Key-sorted traversal via {!Ics_prelude.Sorted_tbl} is the
      sanctioned replacement.
    - {b D2} — no ambient nondeterminism: [Random.*] anywhere outside
      [lib/prelude/rng] (the seeded SplitMix64 home), and no
      [Sys.time]/[Unix.gettimeofday]/[Hashtbl.randomize] outside
      [lib/runtime] (the only layer allowed to read wall clocks).
    - {b D3} — no polymorphic [Stdlib.compare] / structural equality on
      syntactically non-scalar values (records, tuples, payload-carrying
      constructors, list cells) in the deterministic layers; use the key
      module's own [compare]/[equal].
    - {b P1} — codec completeness: every [type Message.payload += ...]
      constructor must be covered by a [Codec.register ~fits:(function
      C ... -> true | ...)] somewhere in the tree, so an unregistered
      constructor fails [make lint], not a live cluster run.
    - {b P2} — timer hygiene: a self-rearming timer loop (a binding that
      passes itself back into [Engine.after]/[Engine.schedule], directly
      or through a local helper) must live in a module that consults a
      quiescence signal ([Engine.horizon], a [stop]/[stopped] flag) —
      otherwise the loop keeps the event queue non-empty forever and a
      horizon-less run never returns.

    Suppression: [(* lint: allow <rule> — reason *)] on the finding's
    line or the line above suppresses it; the reason is mandatory (a
    bare allow is itself reported, as is a stale allow that no longer
    suppresses anything), so every exception carries an audit trail.

    Known limits (it is a linter, not a verifier): analysis is purely
    syntactic — no typing, so D3 only sees literal shapes; P1 matches
    constructors by name, so two layers' same-named constructors can
    mask each other (the codec round-trip test closes that gap
    dynamically); P2's quiescence check is per-file.  [chaos
    --replay-check] is the dynamic complement. *)

type finding = {
  file : string;  (** path relative to the scan root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : string;  (** "D1".."P2", or "allow" for allow-comment misuse *)
  message : string;
  hint : string;  (** one-line fix hint *)
}

type report = {
  findings : finding list;  (** sorted by (file, line, col, rule) *)
  files_scanned : int;
  suppressed : int;  (** findings silenced by valid allow comments *)
  errors : (string * string) list;
      (** (file, message): unreadable/unparseable inputs — an internal
          error (exit 2), never silently skipped *)
}

val deterministic_layers : string list
(** ["sim"; "consensus"; "broadcast"; "core"; "fd"; "checker"; "faults"] *)

val backend_neutral_layers : string list
(** ["net"; "faults"; "consensus"; "broadcast"; "core"] — the B1 scope:
    layers below the runtime boundary, compiled once and run by both
    backends. *)

val rule_ids : string list
(** ["B1"; "D1"; "D2"; "D3"; "P1"; "P2"] — the allow-comment vocabulary. *)

val scan_root : string -> string list
(** The [.ml] files under [root/lib] and [root/bin], as root-relative
    paths in deterministic (sorted) order. *)

val run_files : root:string -> files:string list -> report
(** Lint exactly [files] (root-relative).  Cross-file state (the P1
    registration pool) is built from this file set only, so fixture
    tests see a closed world. *)

val run : root:string -> report
(** [run_files] over [scan_root]. *)

val pp_report : Format.formatter -> report -> unit
(** Human format: [file:line:col: \[rule\] message] plus an indented
    hint line per finding, then a one-line summary. *)

val to_json : report -> string
(** Machine format ([--format=json]): stable field order, findings
    sorted, no trailing whitespace. *)

val exit_code : report -> int
(** 0 clean, 1 findings, 2 internal errors (errors win). *)
