(** Phase 1½ of the interprocedural lint: the cross-module call graph.

    Built from every unit's {!Summary.t}, with ident paths resolved
    against the repo's module-path conventions:

    - [Ics_<layer>.<Module>.<name>] — the wrapped library under
      [lib/<layer>], submodule = capitalized file basename;
    - [<Module>.<name>] — a sibling [.ml] in the caller's own directory
      (same dune library);
    - [<name>] — a toplevel binding of the caller's own file.

    A path that matches none of these (stdlib modules, inner modules,
    functor applications) resolves to [`Unresolved] and contributes no
    edge — under-approximation is safe for every rule built on top.
    Resolution works over the supplied file set only, so fixture tests
    see a closed world. *)

type node = { nfile : string; nname : string }
(** A toplevel function — or, as the key of the access maps, a
    module-toplevel global — identified by (file, binding name). *)

val compare_node : node -> node -> int

type resolution = [ `Fn of node | `Global of node | `Unresolved ]

type t

val build : Summary.t list -> t

val nodes : t -> node list
(** Every toplevel function, sorted by (file, name). *)

val calls : t -> node -> (node * int * int) list
(** Resolved call edges out of a function, with the call-site line/col,
    sorted and deduplicated. *)

val global_readers : t -> node -> (node * int * int) list
(** Functions whose body mentions the global other than as a pure write
    target, with the reference site. *)

val global_writers : t -> node -> (node * int * int) list
(** Functions that mutate the global ([:=], [.( ) <-], [.field <- ],
    [Hashtbl.add], ...), with the write site. *)

val resolve : t -> from_rel:string -> string list -> resolution
(** Exposed for the unit tests: resolve one alias-expanded ident path
    as seen from [from_rel]. *)

val summary : t -> string -> Summary.t option
val summaries : t -> Summary.t list
(** The input summaries, in the order supplied to {!build}. *)
