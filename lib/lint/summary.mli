(** Phase 1 of the interprocedural lint: per-compilation-unit effect
    summaries.

    [of_structure] walks one parsed [.ml] and records, for every
    module-toplevel [let]-bound function, the value idents its body
    mentions ([refs], module aliases expanded to canonical paths) and
    the idents it mutates ([writes]: [x := ..], [t.(i) <- ..],
    [r.field <- ..], [Hashtbl.add t ..], ...).  Non-function toplevel
    bindings become [globals], classified by whether their right-hand
    side syntactically allocates mutable state ([ref], [Array.make],
    [Hashtbl.create], [Buffer.create], ...) and whether it is built for
    cross-domain sharing ([Atomic.make], [Mutex.create]).

    Known limits (shared by the whole phase-2 pipeline): only toplevel
    [Ppat_var] bindings are summarised — initializer expressions of
    non-function bindings and [let () = ...] effects are not walked, and
    functions inside nested [module ... = struct ... end] blocks are
    invisible.  Mutation is tracked only when the written operand is
    itself an ident; state mutated through a function argument is the
    callee's summary's problem, not alias analysis's. *)

type ident_ref = { path : string list; line : int; col : int }

type fn = {
  fn_name : string;
  fn_line : int;
  fn_col : int;
  refs : ident_ref list;  (** every value ident in the body, aliases expanded *)
  writes : ident_ref list;  (** mutation targets *)
}

type global = {
  g_name : string;
  g_line : int;
  g_col : int;
  g_kind : string;  (** "ref" | "array" | "Hashtbl.t" | ... | "value" *)
  g_alloc : bool;  (** right-hand side allocates mutable state *)
  g_atomic : bool;  (** [Atomic.make] / [Mutex.create]: built for sharing *)
}

type t = {
  rel : string;  (** scan-root-relative path of the unit *)
  base : string;  (** file basename without [.ml]: ["ct"] *)
  aliases : (string * string list) list;
      (** file-scoped [module X = Path] aliases, in declaration order *)
  globals : global list;
  fns : fn list;
}

val of_structure : rel:string -> Parsetree.structure -> t
val of_source : rel:string -> string -> t
(** [of_structure] over [Parse.implementation]; raises on unparseable
    input exactly like the syntactic pass. *)
