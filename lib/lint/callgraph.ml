(* Phase 1½ of the interprocedural analysis: resolve the raw ident
   paths in every unit's summary against the repo's module-path
   conventions and build the cross-module call graph plus the
   global-state access maps phase 2 propagates over.

   Resolution mirrors how dune actually wires the tree: a library under
   [lib/<layer>] is the wrapped module [Ics_<layer>], whose submodules
   are the capitalized file basenames; a bare module name is a sibling
   file in the caller's own directory (same library); everything else —
   stdlib modules, inner modules, functor results — stays unresolved
   and simply contributes no edge.  Unresolved is always safe for the
   rules built on top: fewer edges means fewer findings, never wrong
   ones. *)

type node = { nfile : string; nname : string }

let compare_node a b =
  match String.compare a.nfile b.nfile with
  | 0 -> String.compare a.nname b.nname
  | c -> c

type resolution = [ `Fn of node | `Global of node | `Unresolved ]

type t = {
  summaries : (string * Summary.t) list;  (* rel -> summary, input order *)
  nodes : node list;  (* every toplevel function, sorted *)
  calls : (node, (node * int * int) list) Hashtbl.t;  (* callee, call-site line/col *)
  reads : (node, (node * int * int) list) Hashtbl.t;  (* global -> reading fns *)
  writes : (node, (node * int * int) list) Hashtbl.t;  (* global -> writing fns *)
}

let summary t rel = List.assoc_opt rel t.summaries
let summaries t = List.map snd t.summaries

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let file_of_module summaries ~dir m =
  let rel = Filename.concat dir (String.uncapitalize_ascii m ^ ".ml") in
  if List.mem_assoc rel summaries then Some rel else None

let rec last = function [ x ] -> Some x | _ :: tl -> last tl | [] -> None

let lookup summaries file name : resolution =
  match List.assoc_opt file summaries with
  | None -> `Unresolved
  | Some (s : Summary.t) ->
      if List.exists (fun (f : Summary.fn) -> f.Summary.fn_name = name) s.Summary.fns then
        `Fn { nfile = file; nname = name }
      else if List.exists (fun (g : Summary.global) -> g.Summary.g_name = name) s.Summary.globals
      then `Global { nfile = file; nname = name }
      else `Unresolved

let resolve_in summaries ~from_rel path : resolution =
  match path with
  | [] -> `Unresolved
  | [ x ] -> lookup summaries from_rel x
  | head :: rest -> (
      if starts_with ~prefix:"Ics_" head then
        (* Ics_<layer>.<Module>...<name>: a wrapped library reference. *)
        let layer = String.lowercase_ascii (String.sub head 4 (String.length head - 4)) in
        match rest with
        | m :: (_ :: _ as more) -> (
            match (file_of_module summaries ~dir:(Filename.concat "lib" layer) m, last more) with
            | Some file, Some name -> lookup summaries file name
            | _ -> `Unresolved)
        | _ -> `Unresolved
      else
        (* Bare module name: a sibling file in the caller's directory. *)
        match (file_of_module summaries ~dir:(Filename.dirname from_rel) head, last rest) with
        | Some file, Some name -> lookup summaries file name
        | _ -> `Unresolved)

let build (summaries : Summary.t list) =
  let assoc = List.map (fun (s : Summary.t) -> (s.Summary.rel, s)) summaries in
  let calls = Hashtbl.create 256 in
  let reads = Hashtbl.create 64 in
  let writes = Hashtbl.create 64 in
  let push tbl key v =
    let prev = try Hashtbl.find tbl key with Not_found -> [] in
    if not (List.mem v prev) then Hashtbl.replace tbl key (v :: prev)
  in
  let nodes = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (f : Summary.fn) ->
          let from_node = { nfile = s.Summary.rel; nname = f.Summary.fn_name } in
          nodes := from_node :: !nodes;
          (* Write targets resolved first: a ref that is purely the
             written operand of the same site should not double as a
             read below. *)
          let write_sites = ref [] in
          List.iter
            (fun (w : Summary.ident_ref) ->
              match resolve_in assoc ~from_rel:s.Summary.rel w.Summary.path with
              | `Global g ->
                  write_sites := (w.Summary.line, w.Summary.col) :: !write_sites;
                  push writes g (from_node, w.Summary.line, w.Summary.col)
              | _ -> ())
            f.Summary.writes;
          List.iter
            (fun (r : Summary.ident_ref) ->
              match resolve_in assoc ~from_rel:s.Summary.rel r.Summary.path with
              | `Fn callee -> push calls from_node (callee, r.Summary.line, r.Summary.col)
              | `Global g ->
                  if not (List.mem (r.Summary.line, r.Summary.col) !write_sites) then
                    push reads g (from_node, r.Summary.line, r.Summary.col)
              | `Unresolved -> ())
            f.Summary.refs)
        s.Summary.fns)
    summaries;
  {
    summaries = assoc;
    nodes = List.sort_uniq compare_node !nodes;
    calls;
    reads;
    writes;
  }

let nodes t = t.nodes

let sorted3 l =
  List.sort
    (fun (a, la, ca) (b, lb, cb) ->
      match compare_node a b with
      | 0 -> ( match Int.compare la lb with 0 -> Int.compare ca cb | c -> c)
      | c -> c)
    l

let calls t n = sorted3 (try Hashtbl.find t.calls n with Not_found -> [])
let global_readers t g = sorted3 (try Hashtbl.find t.reads g with Not_found -> [])
let global_writers t g = sorted3 (try Hashtbl.find t.writes g with Not_found -> [])
let resolve t ~from_rel path = resolve_in t.summaries ~from_rel path
