(* Phase 1 of the interprocedural analysis: one pass over a parsed
   compilation unit producing its effect summary — per-toplevel-function
   facts (every value ident the body mentions, every mutation target it
   writes) plus the module-toplevel bindings themselves, classified by
   whether their right-hand side syntactically allocates mutable state.
   Module aliases ([module E = Ics_sim.Engine]) are expanded here, so
   everything downstream (callgraph, propagate) sees canonical paths.
   Still purely syntactic: no types, no build artefacts. *)

open Parsetree

type ident_ref = { path : string list; line : int; col : int }

type fn = {
  fn_name : string;
  fn_line : int;
  fn_col : int;
  refs : ident_ref list;  (* every value ident in the body, aliases expanded *)
  writes : ident_ref list;  (* mutation targets: x := .., t.(i) <- .., Hashtbl.add t .. *)
}

type global = {
  g_name : string;
  g_line : int;
  g_col : int;
  g_kind : string;  (* "ref" | "array" | "Hashtbl.t" | ... | "value" *)
  g_alloc : bool;  (* right-hand side allocates mutable state *)
  g_atomic : bool;  (* Atomic.make / Mutex.create: built for sharing *)
}

type t = {
  rel : string;
  base : string;  (* file basename without .ml: "ct" *)
  aliases : (string * string list) list;
  globals : global list;
  fns : fn list;
}

let flatten lid = try Longident.flatten lid with _ -> []

let loc_pos (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let expand aliases path =
  match path with
  | head :: rest -> (
      match List.assoc_opt head aliases with Some tgt -> tgt @ rest | None -> path)
  | [] -> path

(* Mutable-state allocators, by expanded head path.  [Atomic]/[Mutex]
   are classified separately: they exist to be shared across domains. *)
let alloc_kind = function
  | [ "ref" ] -> Some ("ref", false)
  | [ "Array"; ("make" | "create" | "init" | "make_matrix") ] -> Some ("array", false)
  | [ "Hashtbl"; "create" ] -> Some ("Hashtbl.t", false)
  | [ "Buffer"; "create" ] -> Some ("Buffer.t", false)
  | [ "Queue"; "create" ] -> Some ("Queue.t", false)
  | [ "Stack"; "create" ] -> Some ("Stack.t", false)
  | [ "Bytes"; ("create" | "make") ] -> Some ("Bytes.t", false)
  | [ "Atomic"; "make" ] -> Some ("Atomic.t", true)
  | [ "Mutex"; "create" ] -> Some ("Mutex.t", true)
  | _ -> None

(* Mutation heads: an application of one of these with an ident as the
   written operand is a write to that ident.  The operand is the first
   unlabelled argument throughout. *)
let is_write_head = function
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | [ "Array"; ("set" | "unsafe_set" | "fill") ] -> true
  | [ "Bytes"; ("set" | "unsafe_set" | "fill") ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
    ->
      true
  | "Buffer"
    :: [ ("add_string" | "add_char" | "add_bytes" | "add_buffer" | "add_subbytes"
         | "add_substring" | "clear" | "reset" | "truncate") ] ->
      true
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ] -> true
  | [ "Atomic"; ("set" | "incr" | "decr" | "exchange" | "compare_and_set") ] -> true
  | _ -> false

let rec peel_fun e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> Some body
  | Pexp_function _ -> Some e
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> peel_fun body
  | _ -> None

let is_function e = peel_fun e <> None

(* Collect refs and writes from one expression subtree. *)
let facts_of_body aliases body =
  let refs = ref [] and writes = ref [] in
  let add_ref path loc =
    let line, col = loc_pos loc in
    refs := { path = expand aliases path; line; col } :: !refs
  in
  let add_write e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let line, col = loc_pos loc in
        writes := { path = expand aliases (flatten txt); line; col } :: !writes
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> add_ref (flatten txt) loc
          | Pexp_setfield (tgt, _, _) -> add_write tgt
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
              if is_write_head (expand aliases (flatten txt)) then (
                match List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args with
                | Some (_, arg) -> add_write arg
                | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  (List.rev !refs, List.rev !writes)

let classify_global aliases e =
  let kind = ref "value" and alloc = ref false and atomic = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match alloc_kind (expand aliases (flatten txt)) with
              | Some (_, true) -> atomic := true
              | Some (k, false) ->
                  if not !alloc then kind := k;
                  alloc := true
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  (!kind, !alloc, !atomic)

let base_of rel =
  let b = Filename.basename rel in
  Filename.remove_extension b

let of_structure ~rel (str : structure) =
  (* Aliases first: they are file-scoped names and the bodies below need
     them regardless of declaration order. *)
  let aliases = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          { pmb_name = { txt = Some name; _ }; pmb_expr = { pmod_desc = Pmod_ident lid; _ }; _ }
        ->
          aliases := (name, expand !aliases (flatten lid.txt)) :: !aliases
      | _ -> ())
    str;
  let aliases = List.rev !aliases in
  let globals = ref [] and fns = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _) ->
                  let line, col = loc_pos vb.pvb_pat.ppat_loc in
                  if is_function vb.pvb_expr then begin
                    let refs, writes = facts_of_body aliases vb.pvb_expr in
                    fns := { fn_name = name; fn_line = line; fn_col = col; refs; writes } :: !fns
                  end
                  else begin
                    let kind, alloc, atomic = classify_global aliases vb.pvb_expr in
                    globals :=
                      {
                        g_name = name;
                        g_line = line;
                        g_col = col;
                        g_kind = kind;
                        g_alloc = alloc;
                        g_atomic = atomic;
                      }
                      :: !globals
                  end
              | _ -> ())
            vbs
      | _ -> ())
    str;
  {
    rel;
    base = base_of rel;
    aliases;
    globals = List.rev !globals;
    fns = List.rev !fns;
  }

let of_source ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  of_structure ~rel (Parse.implementation lexbuf)
