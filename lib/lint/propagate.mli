(** Phase 2 of the interprocedural lint: SCC condensation and
    transitive effect propagation over the {!Callgraph}.

    The call graph is condensed with Tarjan's algorithm; because a
    component is finished only after every component it points into,
    popping order is reverse topological and each component's effect
    bits (reaches ambient nondeterminism / reaches a backend) are final
    when computed — mutually recursive helpers converge in one pass and
    are reported at most once per boundary call site.

    Rules produced here:

    - {b D4} — a function in a deterministic layer whose call chain
      crosses out of the deterministic scope and bottoms out in an
      ambient nondeterminism source the per-file D2 rule cannot see
      (out of D2's scope, or allow-audited at the source).  Anchored at
      the boundary call site; the message carries the full chain
      ([ct.on_suspect → prelude.foo → Unix.gettimeofday]).
    - {b B2} — the same shape for backend reach: a backend-neutral
      layer transitively naming [Unix]/[Ics_runtime] through modules B1
      does not cover.
    - {b DS1} — module-toplevel mutable state in a module reachable
      from the sweep entry points (every toplevel function of each
      [ds_roots] file), unless [Atomic.t]/[Mutex.t] or DS1-audited at
      the declaration.  The message carries a reachability witness
      chain.
    - {b DS2} — such state both written and read by sweep-reachable
      functions: a read-after-write race once cells run on separate
      domains.  Anchored at the first write site; a DS1 audit on the
      declaration suppresses it together with DS1. *)

type pfinding = {
  p_file : string;
  p_line : int;
  p_col : int;
  p_rule : string;  (** "D4" | "B2" | "DS1" | "DS2" *)
  p_message : string;
  p_hint : string;
  p_chain : string list;  (** call chain, [["ct.on_suspect"; ...; "Unix.gettimeofday"]] *)
}

val run :
  cg:Callgraph.t ->
  det_scope:(string -> bool) ->
  neutral_scope:(string -> bool) ->
  nd_visible:(string -> string list -> int -> bool) ->
  be_visible:(string -> int -> bool) ->
  ds_roots:string list ->
  ds_allowed:(string -> int -> bool) ->
  pfinding list
(** [det_scope rel] / [neutral_scope rel]: is the file under the
    deterministic (D4) / backend-neutral (B2) discipline.  [nd_visible
    rel path line] / [be_visible rel line]: would the direct use at
    that site already be reported by D2 / B1 (in scope and not
    allow-suppressed) — such sites are that rule's findings, not fuel
    for a transitive one.  [ds_roots] are the files whose toplevel
    functions seed DS reachability — the sweep driver plus the
    domain-spawning pool it hands cell closures to; [ds_allowed rel
    line] answers whether a reasoned DS1 allow covers the
    declaration. *)
