(* Determinism & protocol-safety lint.  See lint.mli for the rule
   catalog.  The pass has two layers: the original per-file syntactic
   rules (D1..D3, P1, P2, B1 — this file), and the interprocedural
   pipeline (Summary -> Callgraph -> Propagate) that upgrades D2 to D4
   and B1 to B2 transitively and adds the DS1/DS2 domain-safety rules.
   Everything runs on any tree that parses, with no build or type
   information. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  hint : string;
  chain : string list;
}

type report = {
  findings : finding list;
  files_scanned : int;
  suppressed : int;
  errors : (string * string) list;
}

let deterministic_layers =
  [ "sim"; "consensus"; "broadcast"; "core"; "fd"; "checker"; "faults"; "app" ]

(* Layers below the runtime boundary: they may reach the outside world
   only through the Env capability seam (lib/net/env.mli), never by
   naming a backend module directly. *)
let backend_neutral_layers = [ "net"; "faults"; "consensus"; "broadcast"; "core"; "app" ]
let rule_ids = [ "B1"; "B2"; "D1"; "D2"; "D3"; "D4"; "DS1"; "DS2"; "P1"; "P2" ]
let all_rules = "allow" :: rule_ids

(* The files whose toplevel functions seed DS1/DS2 reachability: every
   chaos-sweep cell body lives in chaos.ml, and domain_pool.ml is the
   Domains-spawning driver that actually runs the cell closures
   concurrently — anything either can reach executes on a spawned
   domain under --jobs. *)
let ds_roots = [ "lib/workload/chaos.ml"; "lib/workload/domain_pool.ml" ]

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let is_ml name =
  String.length name > 3 && String.sub name (String.length name - 3) 3 = ".ml"

let scan_root root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then begin
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.iter
        (fun e ->
          if String.length e > 0 && e.[0] <> '_' && e.[0] <> '.' then
            walk (Filename.concat rel e))
        entries
    end
    else if is_ml rel then acc := rel :: !acc
  in
  List.iter
    (fun top -> if Sys.file_exists (Filename.concat root top) then walk top)
    [ "lib"; "bin"; "examples" ];
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)

let split_path rel = String.split_on_char '/' rel

let layer_of_rel rel =
  match split_path rel with
  | "lib" :: layer :: _ :: _ -> layer
  | "bin" :: _ -> "bin"
  | "examples" :: _ -> "examples"
  | _ -> "?"

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

type scope = {
  rel : string;
  layer : string;
  d1 : bool;  (* deterministic layer: sorted iteration only *)
  d3 : bool;  (* deterministic layer: no polymorphic compare *)
  d2_random : bool;  (* Random.* banned here *)
  d2_time : bool;  (* wall-clock reads banned here *)
  p2 : bool;  (* timer hygiene enforced here *)
  b1 : bool;  (* backend-neutral layer: no Unix / Ics_runtime *)
}

let scope_of rel =
  let layer = layer_of_rel rel in
  let det = List.mem layer deterministic_layers in
  {
    rel;
    layer;
    d1 = det;
    d3 = det;
    d2_random = not (starts_with ~prefix:"lib/prelude/rng" rel);
    d2_time = layer <> "runtime";
    (* examples get the relaxed scope: ambient nondeterminism (D2) and
       timer hygiene (P2) still apply, everything else — D1/D3/B1 and
       the transitive rules — is off, because examples may legitimately
       use the runtime and unordered iteration. *)
    p2 = det || List.mem layer [ "net"; "workload"; "runtime"; "examples" ];
    b1 = List.mem layer backend_neutral_layers;
  }

(* ------------------------------------------------------------------ *)
(* Allow comments.  The marker is assembled at runtime so that this
   file's own strings (hints quoting the syntax) don't register as
   allow comments — the scanner works on raw text, not tokens.         *)

let allow_marker = "lint:" ^ " allow"

type allow = {
  a_line : int;
  a_rule : string option;  (* None: unknown rule id *)
  a_reason : bool;  (* a non-empty reason was given *)
  mutable a_used : bool;
}

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t') do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

(* Drop a leading dash run: "-", "--" or an em/en dash (UTF-8). *)
let strip_dash s =
  let s = strip s in
  let drop k = strip (String.sub s k (String.length s - k)) in
  if starts_with ~prefix:"\xe2\x80\x94" s || starts_with ~prefix:"\xe2\x80\x93" s then drop 3
  else if starts_with ~prefix:"--" s then drop 2
  else if starts_with ~prefix:"-" s then drop 1
  else s

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

let parse_allows text =
  let allows = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line allow_marker with
      | None -> ()
      | Some at ->
          let skip = at + String.length allow_marker in
          let rest = strip (String.sub line skip (String.length line - skip)) in
          (* rule id = leading token; reason = what follows a dash *)
          let rule, after =
            match String.index_opt rest ' ' with
            | None -> (rest, "")
            | Some sp -> (String.sub rest 0 sp, String.sub rest sp (String.length rest - sp))
          in
          let rule = strip rule in
          let reason =
            let r = strip_dash after in
            let r = match find_sub r "*)" with Some e -> String.sub r 0 e | None -> r in
            strip r
          in
          allows :=
            {
              a_line = i + 1;
              a_rule = (if List.mem rule rule_ids then Some rule else None);
              a_reason = reason <> "" && strip_dash after <> strip after;
              a_used = false;
            }
            :: !allows)
    (String.split_on_char '\n' text);
  List.rev !allows

(* ------------------------------------------------------------------ *)
(* Parsetree helpers                                                   *)

open Parsetree

let flatten lid = try Longident.flatten lid with _ -> []
let last_of lid = match List.rev (flatten lid) with x :: _ -> x | [] -> ""

let last2_of lid =
  match List.rev (flatten lid) with x :: y :: _ -> Some (y, x) | [ x ] -> Some ("", x) | [] -> None

let loc_pos (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

(* Collect facts about one expression subtree. *)
let idents_of_expr e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> acc := flatten txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

let expr_mentions_dotted e pairs =
  List.exists
    (fun path ->
      match List.rev path with
      | x :: y :: _ -> List.mem (y, x) pairs
      | _ -> false)
    (idents_of_expr e)

let expr_mentions_bare e names =
  List.exists (function [ x ] -> List.mem x names | _ -> false) (idents_of_expr e)

let sched_pairs = [ ("Engine", "after"); ("Engine", "schedule") ]

(* Syntactically non-scalar: a value whose structural comparison walks a
   heap shape (records, tuples, payload-carrying constructors, list
   cells, arrays).  Variables and nullary constructors pass — without
   types we cannot judge them, and flagging them would drown the signal. *)
let rec non_scalar e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_construct ({ txt; _ }, Some arg) ->
      (match last_of txt with "Some" -> non_scalar arg | _ -> true)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-file syntactic pass                                             *)

type filestate = {
  scope : scope;
  mutable raw : finding list;  (* pre-suppression, traversal order *)
  mutable decls : (string * int * int) list;  (* payload ctor, line, col *)
  mutable fits : string list;  (* ctor names covered by a ~fits here *)
  mutable bindings : (string * expression) list;  (* every let-bound function *)
  mutable quiesce : bool;  (* mentions horizon / stop / stopped *)
  mutable defines_compare : bool;
  mutable skip : (int * int) list;  (* operator idents already handled *)
}

let finding st ~loc ~rule ~message ~hint =
  let line, col = loc_pos loc in
  st.raw <- { file = st.scope.rel; line; col; rule; message; hint; chain = [] } :: st.raw

let d1_hint =
  Printf.sprintf
    "iterate key-sorted via Ics_prelude.Sorted_tbl.iter/fold ~cmp:<Key>.compare, or justify \
     with (* %s D1 — reason *)" allow_marker

let quiesce_names = [ "horizon"; "stop"; "stopped" ]

(* fits:(function C _ -> true | ...) — collect the constructor names of
   the cases whose right-hand side is literally [true]. *)
let fits_ctors e =
  let rec pat_ctors p =
    match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> [ last_of txt ]
    | Ppat_or (a, b) -> pat_ctors a @ pat_ctors b
    | Ppat_alias (p, _) -> pat_ctors p
    | _ -> []
  in
  let of_cases cases =
    List.concat_map
      (fun c ->
        match c.pc_rhs.pexp_desc with
        | Pexp_construct ({ txt = Longident.Lident "true"; _ }, None) -> pat_ctors c.pc_lhs
        | _ -> [])
      cases
  in
  match e.pexp_desc with
  | Pexp_function cases -> of_cases cases
  | Pexp_fun (_, _, _, { pexp_desc = Pexp_match (_, cases); _ }) -> of_cases cases
  | _ -> []

(* B1: a backend-neutral layer naming a backend module.  Applied to
   value paths (Unix.getpid, Ics_runtime.Clock.now) and to module paths
   (module C = Ics_runtime.Clock, open Unix) alike. *)
let check_b1 st path loc =
  let sc = st.scope in
  match path with
  | (("Unix" | "Ics_runtime") as head) :: _ when sc.b1 ->
      finding st ~loc ~rule:"B1"
        ~message:
          (Printf.sprintf
             "backend reference (%s) below the runtime boundary: layer '%s' must stay \
              backend-neutral, the same object file runs simulated and live"
             (String.concat "." path) sc.layer)
        ~hint:
          (Printf.sprintf
             "reach time/scheduling/randomness/liveness through the Env capability record \
              (lib/net/env.mli); only lib/runtime and bin/ may name %s" head)
  | _ -> ()

let check_ident st (lid : Longident.t) loc =
  let path = flatten lid in
  let sc = st.scope in
  check_b1 st path loc;
  (* D1: unordered hashtable traversal *)
  (match last2_of lid with
  | Some (("Hashtbl" | "Table"), (("iter" | "fold") as f)) when sc.d1 ->
      finding st ~loc ~rule:"D1"
        ~message:
          (Printf.sprintf
             "unordered Hashtbl.%s in deterministic layer '%s': bucket order depends on \
              hashing internals and insertion history, not on the event schedule"
             f sc.layer)
        ~hint:d1_hint
  | _ -> ());
  (* D2: ambient nondeterminism *)
  (match path with
  | "Random" :: _ :: _ when sc.d2_random ->
      finding st ~loc ~rule:"D2"
        ~message:
          (Printf.sprintf "Stdlib.Random (%s) outside lib/prelude/rng: unseeded global state"
             (String.concat "." path))
        ~hint:"draw from the engine's seeded stream: Engine.rng / Ics_prelude.Rng"
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] when sc.d2_time ->
      finding st ~loc ~rule:"D2"
        ~message:
          (Printf.sprintf "wall-clock read (%s) outside lib/runtime: simulated layers must \
                           only see virtual time" (String.concat "." path))
        ~hint:"use Engine.now (virtual clock); only lib/runtime may touch the real clock"
  | [ "Hashtbl"; "randomize" ] when sc.d2_time ->
      finding st ~loc ~rule:"D2"
        ~message:"Hashtbl.randomize makes every hashtable traversal seed-dependent"
        ~hint:"never randomize hashing in a replayable system"
  | _ -> ());
  (* D3: polymorphic compare *)
  if sc.d3 then
    match path with
    | [ "Stdlib"; "compare" ] ->
        finding st ~loc ~rule:"D3"
          ~message:"polymorphic Stdlib.compare on protocol state"
          ~hint:"use the key module's own compare (Int.compare, Pid.compare, Msg_id.compare, ...)"
    | [ "compare" ] when not st.defines_compare ->
        finding st ~loc ~rule:"D3"
          ~message:"bare polymorphic compare on protocol state"
          ~hint:"use the key module's own compare (Int.compare, Pid.compare, Msg_id.compare, ...)"
    | [ "Stdlib"; ("=" | "<>") ] ->
        finding st ~loc ~rule:"D3"
          ~message:"polymorphic structural equality as a value"
          ~hint:"pass the protocol type's own equal function instead"
    | [ ("=" | "<>") ] when not (List.mem (loc_pos loc) st.skip) ->
        finding st ~loc ~rule:"D3"
          ~message:"polymorphic structural equality passed as a value"
          ~hint:"pass the protocol type's own equal function instead"
    | _ -> ()

let poly_cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let check_apply st f args loc =
  (* Binary comparison with a syntactically non-scalar operand (D3). *)
  (match f.pexp_desc with
  | Pexp_ident { txt = Longident.Lident op; loc = oploc } when List.mem op poly_cmp_ops ->
      st.skip <- loc_pos oploc :: st.skip;
      if st.scope.d3 && List.exists (fun (_, a) -> non_scalar a) args then
        finding st ~loc ~rule:"D3"
          ~message:
            (Printf.sprintf
               "structural (%s) on a non-scalar value: polymorphic comparison of protocol \
                state" op)
          ~hint:"compare with the type's own equal/compare, field by field"
  | _ -> ());
  (* Codec registration (P1 coverage). *)
  match f.pexp_desc with
  | Pexp_ident { txt; _ } when last_of txt = "register" ->
      List.iter
        (function
          | Asttypes.Labelled "fits", arg -> st.fits <- fits_ctors arg @ st.fits
          | _ -> ())
        args
  | _ -> ()

(* Payload extension points: [type Message.payload += C | ...]. *)
let check_typext st (te : type_extension) =
  if last_of te.ptyext_path.Location.txt = "payload" then
    List.iter
      (fun ec ->
        match ec.pext_kind with
        | Pext_decl _ ->
            let line, col = loc_pos ec.pext_loc in
            st.decls <- (ec.pext_name.Location.txt, line, col) :: st.decls
        | Pext_rebind _ -> ())
      te.ptyext_constructors

(* P2: a binding that hands itself back to a scheduling function.  The
   scheduler set is the transitive closure of "body mentions
   Engine.after/schedule" over this file's local bindings, so loops that
   rearm through a helper (fd's [rearm]) are still seen. *)
let schedulers_of bindings =
  let direct =
    List.filter_map
      (fun (n, body) -> if expr_mentions_dotted body sched_pairs then Some n else None)
      bindings
  in
  let rec fix known =
    let more =
      List.filter_map
        (fun (n, body) ->
          if (not (List.mem n known)) && expr_mentions_bare body known then Some n else None)
        bindings
    in
    if more = [] then known else fix (more @ known)
  in
  fix direct

let check_p2 st =
  if st.scope.p2 && not st.quiesce then begin
    let schedulers = schedulers_of st.bindings in
    List.iter
      (fun (fname, body) ->
        let rearms = ref [] in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.pexp_desc with
                | Pexp_apply (f, args) ->
                    let is_sched =
                      match f.pexp_desc with
                      | Pexp_ident { txt; _ } -> (
                          (match last2_of txt with
                          | Some (y, x) -> List.mem (y, x) sched_pairs
                          | None -> false)
                          ||
                          match txt with
                          | Longident.Lident n -> List.mem n schedulers
                          | _ -> false)
                      | _ -> false
                    in
                    if is_sched && List.exists (fun (_, a) -> expr_mentions_bare a [ fname ]) args
                    then rearms := e.pexp_loc :: !rearms
                | _ -> ());
                Ast_iterator.default_iterator.expr it e);
          }
        in
        it.expr it body;
        List.iter
          (fun loc ->
            finding st ~loc ~rule:"P2"
              ~message:
                (Printf.sprintf
                   "self-rearming timer '%s' with no reachable stop: this file never consults \
                    Engine.horizon or a stop flag, so the loop outlives the run" fname)
              ~hint:
                "gate the rescheduling on Engine.horizon (see Failure_detector.heartbeat's \
                 rearm) or on a stopped flag with a stop entry point")
          (List.rev !rearms))
      st.bindings
  end

let parse_source ~rel text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf rel;
  Parse.implementation lexbuf

let lint_structure ~scope str =
  let st =
    {
      scope;
      raw = [];
      decls = [];
      fits = [];
      bindings = [];
      quiesce = false;
      defines_compare = false;
      skip = [];
    }
  in
  (* Pre-pass: bindings, compare definitions, quiescence vocabulary. *)
  let pre =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
              st.bindings <- (txt, vb.pvb_expr) :: st.bindings;
              if txt = "compare" then st.defines_compare <- true;
              if List.mem txt quiesce_names then st.quiesce <- true
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when List.mem (last_of txt) quiesce_names -> st.quiesce <- true
          | Pexp_field (_, { txt; _ }) when List.mem (last_of txt) quiesce_names ->
              st.quiesce <- true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  pre.structure pre str;
  (* Main pass. *)
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> check_apply st f args e.pexp_loc
          | Pexp_ident { txt; loc } -> check_ident st txt loc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      type_extension =
        (fun it te ->
          check_typext st te;
          Ast_iterator.default_iterator.type_extension it te);
      module_expr =
        (fun it me ->
          (match me.pmod_desc with
          | Pmod_ident { txt; loc } -> check_b1 st (flatten txt) loc
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  it.structure it str;
  check_p2 st;
  st

(* ------------------------------------------------------------------ *)
(* Whole-run assembly                                                  *)

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> ( match Int.compare a.col b.col with 0 -> String.compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

let run_files ?(rules = all_rules) ~root ~files () =
  let active r = List.mem r rules in
  let errors = ref [] in
  let states = ref [] in
  let summaries = ref [] in
  let allows_by_file = ref [] in
  List.iter
    (fun rel ->
      let abs = Filename.concat root rel in
      match
        let ic = open_in_bin abs in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        text
      with
      | exception Sys_error e -> errors := (rel, e) :: !errors
      | text -> (
          allows_by_file := (rel, parse_allows text) :: !allows_by_file;
          match parse_source ~rel text with
          | str ->
              states := lint_structure ~scope:(scope_of rel) str :: !states;
              summaries := Summary.of_structure ~rel str :: !summaries
          | exception e ->
              errors := (rel, Printf.sprintf "parse error: %s" (Printexc.to_string e)) :: !errors))
    files;
  let states = List.rev !states in
  let summaries = List.rev !summaries in
  (* P1: a declared payload constructor must be fits-covered, in its own
     file or (for layers whose codecs live below them, like
     Codec.register_builtins) anywhere in the scanned set. *)
  let global_fits = List.concat_map (fun st -> st.fits) states in
  let p1 =
    List.concat_map
      (fun st ->
        List.filter_map
          (fun (ctor, line, col) ->
            if List.mem ctor st.fits || List.mem ctor global_fits then None
            else
              Some
                {
                  file = st.scope.rel;
                  line;
                  col;
                  rule = "P1";
                  message =
                    Printf.sprintf
                      "payload constructor %s has no Codec.register ~fits coverage: it would \
                       be rejected at encode time on a live wire, not at build time" ctor;
                  hint =
                    "register a codec for it next to the layer's handlers (see ct.ml's \
                     register_codec) and hook it into Codecs.ensure";
                  chain = [];
                })
          (List.rev st.decls))
      states
  in
  (* Phase 2: the interprocedural rules, over the same parsed set.  A
     reasoned allow participates here *semantically* (a D2-audited
     source still taints its deterministic callers; a DS1 audit clears
     its state's DS2 hazards) without being marked used — usage
     accounting belongs to the finding it textually suppresses. *)
  let covered rel rule line =
    match List.assoc_opt rel !allows_by_file with
    | None -> false
    | Some allows ->
        List.exists
          (fun a ->
            a.a_rule = Some rule && a.a_reason && (a.a_line = line || a.a_line = line - 1))
          allows
  in
  let interproc =
    let cg = Callgraph.build summaries in
    let pf =
      Propagate.run ~cg
        ~det_scope:(fun rel -> (scope_of rel).d1)
        ~neutral_scope:(fun rel -> (scope_of rel).b1)
        ~nd_visible:(fun rel path line ->
          let sc = scope_of rel in
          let in_scope =
            match path with "Random" :: _ -> sc.d2_random | _ -> sc.d2_time
          in
          in_scope && not (covered rel "D2" line))
        ~be_visible:(fun rel line -> (scope_of rel).b1 && not (covered rel "B1" line))
        ~ds_roots
        ~ds_allowed:(fun rel line -> covered rel "DS1" line)
    in
    List.map
      (fun (p : Propagate.pfinding) ->
        {
          file = p.Propagate.p_file;
          line = p.Propagate.p_line;
          col = p.Propagate.p_col;
          rule = p.Propagate.p_rule;
          message = p.Propagate.p_message;
          hint = p.Propagate.p_hint;
          chain = p.Propagate.p_chain;
        })
      pf
  in
  let raw = List.concat_map (fun st -> List.rev st.raw) states @ p1 @ interproc in
  (* Restrict to the active rule set *before* allow accounting: an
     allow for a rule that is not being checked neither suppresses nor
     rots — it is simply out of scope for this run. *)
  let raw = List.filter (fun f -> active f.rule) raw in
  (* Apply allow comments: same line or the line above, rule must match,
     reason mandatory. *)
  let suppressed = ref 0 in
  let visible =
    List.filter
      (fun f ->
        let allows = try List.assoc f.file !allows_by_file with Not_found -> [] in
        match
          List.find_opt
            (fun a ->
              a.a_rule = Some f.rule && a.a_reason
              && (a.a_line = f.line || a.a_line = f.line - 1))
            allows
        with
        | Some a ->
            a.a_used <- true;
            incr suppressed;
            false
        | None -> true)
      raw
  in
  (* Allow-comment hygiene: malformed or stale allows are findings too —
     but only judged against the active rule set. *)
  let allow_findings =
    if not (active "allow") then []
    else
      List.concat_map
        (fun (rel, allows) ->
          List.filter_map
            (fun a ->
              if a.a_rule = None then
                Some
                  {
                    file = rel;
                    line = a.a_line;
                    col = 0;
                    rule = "allow";
                    message = "malformed lint-allow comment: unknown rule id";
                    hint =
                      Printf.sprintf "use (* %s <%s> — reason *)" allow_marker
                        (String.concat "|" rule_ids);
                    chain = [];
                  }
              else if not (active (Option.get a.a_rule)) then None
              else if not a.a_reason then
                Some
                  {
                    file = rel;
                    line = a.a_line;
                    col = 0;
                    rule = "allow";
                    message = "lint-allow comment without a reason: suppression needs an audit trail";
                    hint = "append '— why this site is safe' to the allow comment";
                    chain = [];
                  }
              else if not a.a_used then
                Some
                  {
                    file = rel;
                    line = a.a_line;
                    col = 0;
                    rule = "allow";
                    message = "stale lint-allow comment: it no longer suppresses anything";
                    hint = "delete the comment (the violation it excused is gone)";
                    chain = [];
                  }
              else None)
            allows)
        !allows_by_file
  in
  {
    findings = List.sort compare_findings (visible @ allow_findings);
    files_scanned = List.length files;
    suppressed = !suppressed;
    errors = List.rev !errors;
  }

let run ?rules ~root () = run_files ?rules ~root ~files:(scan_root root) ()

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let pp_report ppf r =
  List.iter
    (fun (f, e) -> Format.fprintf ppf "%s: internal error: %s@." f e)
    r.errors;
  List.iter
    (fun f ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s@." f.file f.line f.col f.rule f.message;
      if f.chain <> [] then
        Format.fprintf ppf "    chain: %s@." (String.concat " \xe2\x86\x92 " f.chain);
      Format.fprintf ppf "    hint: %s@." f.hint)
    r.findings;
  if r.findings = [] && r.errors = [] then
    Format.fprintf ppf "ics_lint: clean — %d file(s) scanned, %d suppression(s)@."
      r.files_scanned r.suppressed
  else
    Format.fprintf ppf "ics_lint: %d finding(s), %d internal error(s) in %d file(s)@."
      (List.length r.findings) (List.length r.errors) r.files_scanned

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"version\": 1,\n");
  Buffer.add_string b (Printf.sprintf "  \"files_scanned\": %d,\n" r.files_scanned);
  Buffer.add_string b (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      let chain =
        if f.chain = [] then ""
        else
          Printf.sprintf ", \"chain\": [%s]"
            (String.concat ", "
               (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) f.chain))
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
            \"message\": \"%s\", \"hint\": \"%s\"%s}"
           (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)
           (json_escape f.hint) chain))
    r.findings;
  if r.findings <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n";
  Buffer.add_string b "  \"errors\": [";
  List.iteri
    (fun i (f, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    {\"file\": \"%s\", \"message\": \"%s\"}" (json_escape f)
           (json_escape e)))
    r.errors;
  if r.errors <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

(* SARIF 2.1.0, minimal but schema-valid: one run, one driver, one
   result per finding (internal errors become ruleId
   "internal-error").  Stable field order for CI diffing. *)
let to_sarif r =
  let b = Buffer.create 2048 in
  let e = json_escape in
  Buffer.add_string b
    "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
     \"tool\": {\n        \"driver\": {\n          \"name\": \"ics_lint\",\n          \
     \"rules\": [";
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n            {\"id\": \"%s\"}" (e id)))
    all_rules;
  Buffer.add_string b "\n          ]\n        }\n      },\n      \"results\": [";
  let results =
    List.map
      (fun f ->
        let text =
          if f.chain = [] then Printf.sprintf "%s | hint: %s" f.message f.hint
          else
            Printf.sprintf "%s | chain: %s | hint: %s" f.message
              (String.concat " -> " f.chain) f.hint
        in
        (f.rule, f.file, f.line, max 1 (f.col + 1), text))
      r.findings
    @ List.map (fun (file, msg) -> ("internal-error", file, 1, 1, msg)) r.errors
  in
  List.iteri
    (fun i (rule, file, line, col, text) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
            \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
            {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d, \"startColumn\": %d}}}]}"
           (e rule) (e text) (e file) line col))
    results;
  if results <> [] then Buffer.add_string b "\n      ";
  Buffer.add_string b "]\n    }\n  ]\n}\n";
  Buffer.contents b

let explain rule =
  let text =
    match rule with
    | "D1" ->
        Some
          "D1 — unordered iteration.  Hashtbl.iter/fold in a deterministic layer: bucket \
           order is a function of hashing internals and insertion history, not of the event \
           schedule.  Iterate key-sorted via Ics_prelude.Sorted_tbl."
    | "D2" ->
        Some
          "D2 — ambient nondeterminism.  Random.* outside lib/prelude/rng, and \
           Sys.time/Unix.gettimeofday/Hashtbl.randomize outside lib/runtime.  All \
           simulation randomness flows from the seeded Rng; only the runtime reads wall \
           clocks."
    | "D3" ->
        Some
          "D3 — polymorphic comparison on protocol state.  Stdlib.compare / bare compare / \
           structural =/<> on syntactically non-scalar values in deterministic layers; use \
           the key module's own compare/equal."
    | "D4" ->
        Some
          "D4 — transitive nondeterminism.  A deterministic-layer function whose call chain \
           crosses out of the deterministic scope and bottoms out in an ambient source D2 \
           cannot see from the caller's file (the source is out of D2's scope, or audited \
           where it lives).  Reported at the boundary call site with the full chain."
    | "B1" ->
        Some
          "B1 — backend neutrality.  Layers below the runtime boundary (lib/net, faults, \
           consensus, broadcast, core, app) must not name Unix or Ics_runtime — value \
           paths, module aliases and opens alike.  The only door to the world is the Env \
           capability record (lib/net/env.mli)."
    | "B2" ->
        Some
          "B2 — transitive backend reach.  A backend-neutral function reaching \
           Unix/Ics_runtime through a call chain into modules B1 does not cover.  Same \
           remedy as B1: route through Env, reported with the chain."
    | "DS1" ->
        Some
          "DS1 — domain-shared mutable state.  Module-toplevel mutable state (ref, array, \
           Hashtbl.t, Buffer.t, ...) in any module reachable from the chaos-sweep cell \
           entry points (lib/workload/chaos.ml) or the domain pool that runs them \
           (lib/workload/domain_pool.ml): the --jobs sweep shares it across domains.  \
           Make it Atomic.t, confine it, or audit the declaration."
    | "DS2" ->
        Some
          "DS2 — concurrent read/write hazard.  DS1 state that sweep-reachable functions \
           both write and read: a data race once cells run concurrently.  A DS1 audit on \
           the declaration covers the derived DS2 findings."
    | "P1" ->
        Some
          "P1 — codec completeness.  Every `type Message.payload += C` constructor must be \
           covered by a Codec.register ~fits dispatcher somewhere in the tree, or it fails \
           at encode time on a live wire."
    | "P2" ->
        Some
          "P2 — timer hygiene.  A self-rearming timer loop must live in a module that \
           consults a quiescence signal (Engine.horizon, a stop flag), or the event queue \
           never drains."
    | "allow" ->
        Some
          (Printf.sprintf
             "allow — suppression hygiene.  (* %s <rule> — reason *) on the finding's line \
              or the line above suppresses it.  The reason is mandatory, and stale allows \
              (suppressing nothing) are findings themselves."
             allow_marker)
    | _ -> None
  in
  text

let exit_code r = if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0
