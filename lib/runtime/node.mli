(** One live node: the full protocol stack over the socket transport.

    A node embodies exactly one pid of the [n]-process stack.  The same
    protocol code as the simulator runs unchanged: the engine is the
    timer heap, driven by the real clock; remote sends leave through the
    codec and the TCP mesh.

    Termination: each node A-broadcasts [count] messages ([gap_ms]
    apart, after [warmup_ms]); when it has A-delivered [count * n]
    messages it announces [Done] on the ["ctl"] layer, and exits once
    every peer has announced — or at [deadline_ms], whichever is first. *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Message = Ics_net.Message

type Message.payload += Done of int
(** Control-plane completion announcement (the sender's delivery count). *)

val register_codec : unit -> unit

type config = {
  self : int;
  n : int;
  algo : Stack.algo;
  ordering : Abcast.ordering;
  broadcast : Stack.broadcast_kind;
  count : int;  (** messages this node A-broadcasts *)
  body_bytes : int;
  gap_ms : float;  (** spacing between this node's abroadcasts *)
  warmup_ms : float;  (** clock time before the first abroadcast *)
  hb_period_ms : float;
  hb_timeout_ms : float;
  deadline_ms : float;  (** hard stop, in ms since the epoch *)
}

val default_workload : config
(** n = 3, CT, indirect, flood, 20 messages × 128 B at 5 ms gap, 10 s
    deadline. *)

type result = {
  delivered : int;  (** A-deliveries at this node *)
  expected : int;
  clean_exit : bool;  (** finished via the all-done barrier, not the deadline *)
  net : Socket_transport.stats;
  trace : Ics_sim.Trace.t;
}

val run :
  epoch:float ->
  listen:Unix.file_descr ->
  peer_addrs:Unix.sockaddr array ->
  config ->
  result
(** Run to completion (barrier or deadline).  [epoch] must be shared by
    the whole cluster — virtual time is ms since it.  [listen] must
    already be bound and listening.  The returned trace holds this
    node's own events (filter on [pid = self] before writing: the shared
    protocol code also books foreign-pid detector events). *)
