(** One live node: the full protocol stack over the socket transport.

    A node embodies exactly one pid of the [n]-process stack.  The same
    protocol code as the simulator runs unchanged: the engine is the
    timer heap, driven by the real clock; remote sends leave through the
    codec and the TCP mesh.

    Fault plane: when [plan] is non-empty the node compiles it into the
    backend-neutral {!Ics_faults.Nemesis.interposer} (scoped to this
    node's outbound links and its own crash clauses) and — unless
    [retransmit] is off — installs the wire retransmission channel
    ({!Ics_net.Retransmit.install}) outermost, so retries traverse the
    injected faults exactly as in the simulated chaos stack.

    Termination: with the legacy workload each node A-broadcasts
    [profile.count] messages ([gap_ms] apart, after [warmup_ms]) and
    expects [count * n] deliveries; with [chaos_workload] the cluster
    replays the chaos sweep's seeded round-robin schedule ([count] total
    messages).  When a node has A-delivered everything it announces
    [Done] on the ["ctl"] layer and exits once every peer has announced —
    or at [deadline_ms], or when a plan clause crashes its own pid. *)

module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module Message = Ics_net.Message
module Nemesis = Ics_faults.Nemesis

type Message.payload += Done of int
(** Control-plane completion announcement (the sender's delivery count). *)

val register_codec : unit -> unit

type config = {
  self : int;
  profile : Profile.t;  (** shape + workload; [n] comes from here *)
  seed : int64;  (** cell seed; the chaos schedule derives from it *)
  plan : Nemesis.plan;
      (** run-relative fault plan; shifted past [warmup_ms] internally *)
  plan_seed : int64;
  retransmit : bool;  (** wire retransmission channel when a plan is set *)
  chaos_workload : bool;
      (** replicate the chaos sweep's round-robin schedule instead of the
          every-node-broadcasts-[count] workload *)
}

val default_workload : config
(** [Profile.default] shape and workload, no fault plan. *)

type result = {
  delivered : int;  (** A-deliveries at this node *)
  expected : int;
  clean_exit : bool;  (** finished via the all-done barrier, not the deadline *)
  net : Socket_transport.stats;
  faults : (string * int) list;
      (** this node's outbound-link fault counters; summed across a
          cluster they equal the one-simulation counters for the same
          (seed, plan) — the cross-backend parity invariant *)
  retx : (string * int) list;
  trace : Ics_sim.Trace.t;
}

val result_kv : result -> (string * int) list
(** Fault and retransmission counters as one flat ["fault."]/["retx."]
    prefixed list — the stats-file format a {!Cluster} parent sums. *)

val run :
  epoch:float ->
  listen:Unix.file_descr ->
  peer_addrs:Unix.sockaddr array ->
  config ->
  result
(** Run to completion (barrier, deadline, or own-pid crash clause).
    [epoch] must be shared by the whole cluster — virtual time is ms
    since it.  [listen] must already be bound and listening.  The
    returned trace holds this node's own events (filter on [pid = self]
    before writing: the shared protocol code also books foreign-pid
    detector events). *)
