module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Checker = Ics_checker.Checker

type config = {
  node : Node.config;  (** [self] is ignored; each fork gets its own *)
  dir : string option;  (** where per-node trace files go (default: temp) *)
  keep_dir : bool;
}

let default = { node = Node.default_workload; dir = None; keep_dir = false }

type latency = { samples : int; mean_ms : float; p95_ms : float; max_ms : float }

type outcome = {
  verdict : Checker.verdict;
  delivered_per_node : int array;
  expected_per_node : int;
  exits : int array;  (** per-node exit codes (0 = clean barrier exit) *)
  duration_ms : float;  (** first abroadcast to last adelivery, merged clock *)
  latency : latency option;
  throughput_msg_s : float;  (** distinct messages ordered per second *)
  events : int;
  trace_dir : string;
}

let ok outcome = Checker.ok outcome.verdict && Array.for_all (fun c -> c = 0) outcome.exits

(* Can this sandbox do loopback TCP at all?  Some build environments
   forbid socket creation; the smoke target skips gracefully there. *)
let supported () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd -> (
      match
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd 1
      with
      | () ->
          Unix.close fd;
          true
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          false)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base
        (Printf.sprintf "ics-cluster-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (EEXIST, _, _) -> go (k + 1)
  in
  go 0

let trace_path dir i = Filename.concat dir (Printf.sprintf "node%d.trace" i)

(* Latency/throughput digest of the merged trace. *)
let measure events =
  let bcast = Msg_id.Table.create 256 in
  let first_b = ref infinity and last_d = ref neg_infinity in
  let samples = ref [] in
  let ordered = Msg_id.Table.create 256 in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Abroadcast id ->
          if not (Msg_id.Table.mem bcast id) then Msg_id.Table.add bcast id e.Trace.time;
          if e.Trace.time < !first_b then first_b := e.Trace.time
      | Trace.Adeliver id ->
          if e.Trace.time > !last_d then last_d := e.Trace.time;
          Msg_id.Table.replace ordered id ();
          (match Msg_id.Table.find_opt bcast id with
          | Some t0 -> samples := (e.Trace.time -. t0) :: !samples
          | None -> ())
      | _ -> ())
    events;
  let duration = if !last_d > !first_b then !last_d -. !first_b else 0.0 in
  let latency =
    match !samples with
    | [] -> None
    | l ->
        let a = Array.of_list l in
        Array.sort compare a;
        let k = Array.length a in
        let sum = Array.fold_left ( +. ) 0.0 a in
        Some
          {
            samples = k;
            mean_ms = sum /. float_of_int k;
            p95_ms = a.(min (k - 1) (k * 95 / 100));
            max_ms = a.(k - 1);
          }
  in
  let throughput =
    if duration > 0.0 then float_of_int (Msg_id.Table.length ordered) /. duration *. 1000.0
    else 0.0
  in
  (duration, latency, throughput)

let run config =
  if not (supported ()) then Error "loopback sockets unavailable in this environment"
  else begin
    let n = config.node.Node.n in
    if n <= 0 then invalid_arg "Cluster.run: n <= 0";
    let dir = match config.dir with Some d -> d | None -> fresh_dir () in
    (* Pre-bind every listener in the parent: children inherit them, so a
       child's dial can never hit a not-yet-bound port. *)
    let listeners =
      Array.init n (fun _ ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          Unix.listen fd 64;
          fd)
    in
    let addrs = Array.map Unix.getsockname listeners in
    let epoch = Unix.gettimeofday () in
    flush stdout;
    flush stderr;
    let children =
      Array.init n (fun i ->
          match Unix.fork () with
          | 0 ->
              (* Child: embody pid [i].  [Unix._exit] skips at_exit (the
                 parent's buffered output must not be re-flushed here). *)
              let code =
                try
                  Array.iteri (fun j fd -> if j <> i then Unix.close fd) listeners;
                  let r =
                    Node.run ~epoch ~listen:listeners.(i) ~peer_addrs:addrs
                      { config.node with Node.self = i }
                  in
                  Trace_io.save (trace_path dir i) r.Node.trace ~keep:(fun e ->
                      e.Trace.pid = i);
                  if r.Node.clean_exit then 0 else 10
                with e ->
                  Printf.eprintf "[node %d] fatal: %s\n%!" i (Printexc.to_string e);
                  11
              in
              flush stdout;
              flush stderr;
              Unix._exit code
          | pid -> pid)
    in
    Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
    (* Reap with a hard wall-clock cap: deadline + slack, then SIGKILL. *)
    let slack_ms = 3_000.0 in
    let give_up = epoch +. ((config.node.Node.deadline_ms +. slack_ms) /. 1000.0) in
    let exits = Array.make n (-1) in
    let remaining = ref n in
    while !remaining > 0 && Unix.gettimeofday () < give_up do
      Array.iteri
        (fun i pid ->
          if exits.(i) < 0 then
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | _, Unix.WEXITED c ->
                exits.(i) <- c;
                decr remaining
            | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
                exits.(i) <- 12;
                decr remaining
            | exception Unix.Unix_error (ECHILD, _, _) ->
                exits.(i) <- 13;
                decr remaining)
        children;
      if !remaining > 0 then Unix.sleepf 0.02
    done;
    Array.iteri
      (fun i pid ->
        if exits.(i) < 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          exits.(i) <- 14
        end)
      children;
    (* Merge the per-node logs and replay the checker over them — in a
       live run the checker, not determinism, is the oracle. *)
    let per_node =
      Array.to_list
        (Array.init n (fun i ->
             let path = trace_path dir i in
             if Sys.file_exists path then Trace_io.load path else []))
    in
    let merged = Trace_io.merge per_node in
    let run = Checker.Run.of_trace merged ~n in
    let verdict =
      match config.node.Node.ordering with
      | Abcast.Indirect_consensus -> Checker.check_all_abcast run
      | Abcast.Consensus_on_messages | Abcast.Consensus_on_ids ->
          Checker.check_atomic_broadcast run
    in
    let events_list = Trace.events merged in
    let duration_ms, latency, throughput_msg_s = measure events_list in
    let delivered_per_node =
      Array.init n (fun i -> List.length (Checker.Run.adeliveries run i))
    in
    let outcome =
      {
        verdict;
        delivered_per_node;
        expected_per_node = config.node.Node.count * n;
        exits;
        duration_ms;
        latency;
        throughput_msg_s;
        events = Trace.length merged;
        trace_dir = dir;
      }
    in
    if (not config.keep_dir) && config.dir = None then begin
      Array.iter
        (fun i ->
          let p = trace_path dir i in
          if Sys.file_exists p then Sys.remove p)
        (Array.init n Fun.id);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end;
    Ok outcome
  end
