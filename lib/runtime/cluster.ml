module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module Checker = Ics_checker.Checker

type spawn =
  [ `Fork  (** fork this process; config passes by inheritance *)
  | `Exec of string
    (** spawn [exe node ...] children; config passes through
        [Profile.to_args] — plain workloads only (no fault plan) *) ]

type config = {
  node : Node.config;  (** [self] is ignored; each child gets its own *)
  dir : string option;  (** where per-node trace files go (default: temp) *)
  keep_dir : bool;
  spawn : spawn;
  check : [ `By_ordering | `All ];
      (** which checker battery judges the merged trace *)
}

let default =
  {
    node = Node.default_workload;
    dir = None;
    keep_dir = false;
    spawn = `Fork;
    check = `By_ordering;
  }

type latency = {
  samples : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type outcome = {
  verdict : Checker.verdict;
  delivered_per_node : int array;
  expected_per_node : int;
  exits : int array;  (** per-node exit codes (0 = clean barrier exit) *)
  duration_ms : float;  (** first abroadcast to last adelivery, merged clock *)
  latency : latency option;
  app_latency : latency option;
      (** client-visible: App_submit to App_applied at the client's home *)
  app_hash : (int * int64) option;
      (** deepest state-hash event: (applied cursor, canonical hash) *)
  throughput_msg_s : float;  (** distinct messages ordered per second *)
  events : int;
  faults : (string * int) list;  (** per-node fault counters, summed *)
  retx : (string * int) list;
  trace_dir : string;
}

let ok outcome = Checker.ok outcome.verdict && Array.for_all (fun c -> c = 0) outcome.exits

(* Can this sandbox do loopback TCP at all?  Some build environments
   forbid socket creation; the smoke target skips gracefully there. *)
let supported () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd -> (
      match
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.listen fd 1
      with
      | () ->
          Unix.close fd;
          true
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          false)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base
        (Printf.sprintf "ics-cluster-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (EEXIST, _, _) -> go (k + 1)
  in
  go 0

let trace_path dir i = Filename.concat dir (Printf.sprintf "node%d.trace" i)
let stats_path dir i = Filename.concat dir (Printf.sprintf "node%d.stats" i)

let split_kv prefix kvs =
  List.filter_map
    (fun (k, v) ->
      let plen = String.length prefix in
      if String.length k > plen && String.sub k 0 plen = prefix then
        Some (String.sub k plen (String.length k - plen), v)
      else None)
    kvs

(* Percentile digest, None when no samples arrived: a run where nothing
   was delivered (or no command took effect) must report "no data", not a
   summary of an empty list. *)
let summarize_opt = function
  | [] -> None
  | l ->
      let s = Ics_prelude.Stats.summarize l in
      Some
        {
          samples = s.Ics_prelude.Stats.count;
          mean_ms = s.Ics_prelude.Stats.mean;
          p50_ms = s.Ics_prelude.Stats.p50;
          p95_ms = s.Ics_prelude.Stats.p95;
          p99_ms = s.Ics_prelude.Stats.p99;
          max_ms = s.Ics_prelude.Stats.max;
        }

(* Latency/throughput digest of the merged trace.  Message latency is
   Abroadcast -> Adeliver per delivery; app latency is client-visible —
   App_submit to the App_applied at the same pid (the client's home
   replica, where the closed loop unblocks). *)
let measure events =
  let bcast = Msg_id.Table.create 256 in
  let first_b = ref infinity and last_d = ref neg_infinity in
  let samples = ref [] in
  let ordered = Msg_id.Table.create 256 in
  let app_submit = Hashtbl.create 256 in
  let app_samples = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Abroadcast id ->
          if not (Msg_id.Table.mem bcast id) then Msg_id.Table.add bcast id e.Trace.time;
          if e.Trace.time < !first_b then first_b := e.Trace.time
      | Trace.Adeliver id ->
          if e.Trace.time > !last_d then last_d := e.Trace.time;
          Msg_id.Table.replace ordered id ();
          (match Msg_id.Table.find_opt bcast id with
          | Some t0 -> samples := (e.Trace.time -. t0) :: !samples
          | None -> ())
      | Trace.App_submit (c, r) ->
          if not (Hashtbl.mem app_submit (c, r)) then
            Hashtbl.add app_submit (c, r) (e.Trace.pid, e.Trace.time)
      | Trace.App_applied (c, r) -> (
          match Hashtbl.find_opt app_submit (c, r) with
          | Some (home, t0) when home = e.Trace.pid ->
              app_samples := (e.Trace.time -. t0) :: !app_samples;
              Hashtbl.remove app_submit (c, r)
          | _ -> ())
      | _ -> ())
    events;
  let duration = if !last_d > !first_b then !last_d -. !first_b else 0.0 in
  let throughput =
    if duration > 0.0 then float_of_int (Msg_id.Table.length ordered) /. duration *. 1000.0
    else 0.0
  in
  (duration, summarize_opt !samples, summarize_opt !app_samples, throughput)

let fork_children ~config ~dir ~epoch ~listeners ~addrs n =
  flush stdout;
  flush stderr;
  let children =
    Array.init n (fun i ->
        match Unix.fork () with
        | 0 ->
            (* Child: embody pid [i].  [Unix._exit] skips at_exit (the
               parent's buffered output must not be re-flushed here). *)
            let code =
              try
                Array.iteri (fun j fd -> if j <> i then Unix.close fd) listeners;
                let r =
                  Node.run ~epoch ~listen:listeners.(i) ~peer_addrs:addrs
                    { config.node with Node.self = i }
                in
                Trace_io.save (trace_path dir i) r.Node.trace ~keep:(fun e ->
                    e.Trace.pid = i);
                Trace_io.save_kv (stats_path dir i) (Node.result_kv r);
                if r.Node.clean_exit then 0 else 10
              with e ->
                Printf.eprintf "[node %d] fatal: %s\n%!" i (Printexc.to_string e);
                11
            in
            flush stdout;
            flush stderr;
            Unix._exit code
        | pid -> pid)
  in
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  children

let exec_children ~config ~dir ~epoch ~listeners ~addrs ~exe n =
  if config.node.Node.plan <> [] then
    invalid_arg "Cluster.run: `Exec spawn cannot carry a fault plan";
  let ports =
    Array.map
      (function Unix.ADDR_INET (_, port) -> port | _ -> assert false)
      addrs
  in
  (* Exec children bind their own listeners from --ports; release the
     parent's reservations first.  (A brief reuse race is possible, which
     is why `Fork — inherited pre-bound listeners — is the default.) *)
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  let ports_csv =
    String.concat "," (Array.to_list (Array.map string_of_int ports))
  in
  Array.init n (fun i ->
      let argv =
        [
          exe;
          "node";
          "--self";
          string_of_int i;
          "--ports";
          ports_csv;
          "--epoch";
          Printf.sprintf "%.6f" epoch;
          "--trace-out";
          trace_path dir i;
          "--stats-out";
          stats_path dir i;
        ]
        @ Profile.to_args config.node.Node.profile
      in
      Unix.create_process exe (Array.of_list argv) Unix.stdin Unix.stdout
        Unix.stderr)

let run config =
  if not (supported ()) then Error "loopback sockets unavailable in this environment"
  else begin
    let profile = config.node.Node.profile in
    let n = profile.Profile.n in
    if n <= 0 then invalid_arg "Cluster.run: n <= 0";
    let dir = match config.dir with Some d -> d | None -> fresh_dir () in
    (* Pre-bind every listener in the parent: children inherit them, so a
       child's dial can never hit a not-yet-bound port. *)
    let listeners =
      Array.init n (fun _ ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          Unix.listen fd 64;
          fd)
    in
    let addrs = Array.map Unix.getsockname listeners in
    let epoch = Unix.gettimeofday () in
    let children =
      match config.spawn with
      | `Fork -> fork_children ~config ~dir ~epoch ~listeners ~addrs n
      | `Exec exe -> exec_children ~config ~dir ~epoch ~listeners ~addrs ~exe n
    in
    (* Reap with a hard wall-clock cap: deadline + slack, then SIGKILL. *)
    let slack_ms = 3_000.0 in
    let give_up = epoch +. ((profile.Profile.deadline_ms +. slack_ms) /. 1000.0) in
    let exits = Array.make n (-1) in
    let remaining = ref n in
    while !remaining > 0 && Unix.gettimeofday () < give_up do
      Array.iteri
        (fun i pid ->
          if exits.(i) < 0 then
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> ()
            | _, Unix.WEXITED c ->
                exits.(i) <- c;
                decr remaining
            | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
                exits.(i) <- 12;
                decr remaining
            | exception Unix.Unix_error (ECHILD, _, _) ->
                exits.(i) <- 13;
                decr remaining)
        children;
      if !remaining > 0 then Unix.sleepf 0.02
    done;
    Array.iteri
      (fun i pid ->
        if exits.(i) < 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          exits.(i) <- 14
        end)
      children;
    (* Merge the per-node logs and replay the checker over them — in a
       live run the checker, not determinism, is the oracle. *)
    let per_node =
      Array.to_list
        (Array.init n (fun i ->
             let path = trace_path dir i in
             if Sys.file_exists path then Trace_io.load path else []))
    in
    let merged = Trace_io.merge per_node in
    let run = Checker.Run.of_trace merged ~n in
    let verdict =
      match (config.check, profile.Profile.ordering) with
      | `All, _ | `By_ordering, Abcast.Indirect_consensus ->
          Checker.check_all_abcast run
      | `By_ordering, (Abcast.Consensus_on_messages | Abcast.Consensus_on_ids)
        ->
          Checker.check_atomic_broadcast run
    in
    (* With an app hosted, its semantic battery judges the run too. *)
    let verdict =
      match profile.Profile.app with
      | Profile.Kv -> Checker.merge [ verdict; Checker.check_app run ]
      | Profile.No_app -> verdict
    in
    let app_hash =
      List.fold_left
        (fun acc (_, c, h) ->
          match acc with Some (c0, _) when c0 >= c -> acc | _ -> Some (c, h))
        None
        (Checker.Run.app_hashes run)
    in
    let events_list = Trace.events merged in
    let duration_ms, latency, app_latency, throughput_msg_s = measure events_list in
    let delivered_per_node =
      Array.init n (fun i -> List.length (Checker.Run.adeliveries run i))
    in
    let node_stats =
      Array.to_list
        (Array.init n (fun i ->
             let path = stats_path dir i in
             if Sys.file_exists path then Trace_io.load_kv path else []))
    in
    let totals = Trace_io.sum_kv node_stats in
    let expected_per_node =
      match profile.Profile.app with
      | Profile.Kv when not config.node.Node.chaos_workload ->
          profile.Profile.clients * profile.Profile.requests
      | _ ->
          if config.node.Node.chaos_workload then profile.Profile.count
          else profile.Profile.count * n
    in
    let outcome =
      {
        verdict;
        delivered_per_node;
        expected_per_node;
        exits;
        duration_ms;
        latency;
        app_latency;
        app_hash;
        throughput_msg_s;
        events = Trace.length merged;
        faults = split_kv "fault." totals;
        retx = split_kv "retx." totals;
        trace_dir = dir;
      }
    in
    if (not config.keep_dir) && config.dir = None then begin
      Array.iter
        (fun i ->
          List.iter
            (fun p -> if Sys.file_exists p then Sys.remove p)
            [ trace_path dir i; stats_path dir i ])
        (Array.init n Fun.id);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end;
    Ok outcome
  end
