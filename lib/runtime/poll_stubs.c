/* Minimal poll(2) binding for the live event loop.
 *
 * The caller keeps three parallel arrays (fds, events, revents) alive
 * across iterations; this stub copies the first [nfds] entries into a
 * C pollfd array, releases the OCaml runtime lock around the blocking
 * poll, and writes revents back after reacquiring it.  The copy-in /
 * copy-out is mandatory: the GC may move the OCaml arrays while the
 * lock is released.
 *
 * Errors (including EINTR) are reported as a -1 return, not an OCaml
 * exception — the loop treats a negative return as "zero descriptors
 * ready" and re-evaluates its timers, which is exactly the EINTR
 * behaviour the old select loop had.
 */

#include <poll.h>
#include <stdlib.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>

#define ICS_POLL_STACK_FDS 64

CAMLprim value ics_poll_stub(value v_fds, value v_events, value v_revents,
                             value v_nfds, value v_timeout)
{
  CAMLparam5(v_fds, v_events, v_revents, v_nfds, v_timeout);
  int nfds = Int_val(v_nfds);
  int timeout = Int_val(v_timeout);
  struct pollfd stack_pfds[ICS_POLL_STACK_FDS];
  struct pollfd *pfds = stack_pfds;
  int i, ret;

  if (nfds < 0 || nfds > Wosize_val(v_fds) || nfds > Wosize_val(v_events) ||
      nfds > Wosize_val(v_revents))
    caml_invalid_argument("ics_poll: nfds exceeds array size");

  if (nfds > ICS_POLL_STACK_FDS) {
    pfds = malloc(nfds * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
  }

  for (i = 0; i < nfds; i++) {
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)Int_val(Field(v_events, i));
    pfds[i].revents = 0;
  }

  caml_enter_blocking_section();
  ret = poll(pfds, (nfds_t)nfds, timeout);
  caml_leave_blocking_section();

  if (ret >= 0)
    for (i = 0; i < nfds; i++)
      Field(v_revents, i) = Val_int(pfds[i].revents);

  if (pfds != stack_pfds) free(pfds);
  CAMLreturn(Val_int(ret < 0 ? -1 : ret));
}
