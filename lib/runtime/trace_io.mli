(** Trace serialization for the live runtime.

    Each node of a live cluster records its own {!Ics_sim.Trace.t} and
    writes it out as one event per line; the parent parses and merges the
    per-node files into a single chronological trace for the checker.
    The format is append-only text, so a node that dies mid-run still
    leaves a parseable prefix. *)

module Trace = Ics_sim.Trace

exception Error of string
(** Raised by {!parse_line} and {!load} on malformed input. *)

val write_event : out_channel -> Trace.event -> unit

val write : out_channel -> Trace.t -> keep:(Trace.event -> bool) -> unit
(** Write the events satisfying [keep] (a live node keeps only its own
    pid: foreign-pid events are simulation artifacts of the shared
    protocol code). *)

val save : string -> Trace.t -> keep:(Trace.event -> bool) -> unit

val parse_line : string -> Trace.event
val load : string -> Trace.event list

val merge : Trace.event list list -> Trace.t
(** Merge per-node event lists into one trace, stably sorted by time. *)

(** {1 Counter files}

    One ["key value"] line per counter — how a cluster child reports its
    fault and retransmission counters to the parent. *)

val save_kv : string -> (string * int) list -> unit

val load_kv : string -> (string * int) list
(** @raise Error on malformed input. *)

val sum_kv : (string * int) list list -> (string * int) list
(** Key-wise sum, keys in first-appearance order — per-node counters
    into cluster totals. *)
