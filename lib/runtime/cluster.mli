(** Fork-and-check driver: a real [n]-node cluster over loopback TCP.

    The parent pre-binds one listener per node on [127.0.0.1:0] (so a
    child's dial can never race an unbound port), spawns [n] children
    that each run {!Node.run} for one pid, reaps them against the run
    deadline, merges the per-node delivery logs, and replays the
    existing {!Ics_checker.Checker} over the merged trace.  Live runs
    are not deterministic — the checker is the oracle (with one seeded
    exception: fault counters, which are a per-link deterministic
    function of the plan seed and sum to the simulated totals).

    Children are forked by default; [`Exec exe] spawns [exe node ...]
    processes instead, passing the whole configuration through
    {!Ics_core.Profile.to_args} — the same flag vocabulary a human uses
    to drive a cluster by hand. *)

module Checker = Ics_checker.Checker

type spawn =
  [ `Fork  (** fork this process; config passes by inheritance *)
  | `Exec of string
    (** spawn [exe node ...] children; config passes through
        [Profile.to_args] — plain workloads only (no fault plan) *) ]

type config = {
  node : Node.config;  (** [self] is ignored; each child gets its own *)
  dir : string option;  (** where per-node trace files go (default: temp) *)
  keep_dir : bool;  (** keep trace files after a successful run *)
  spawn : spawn;
  check : [ `By_ordering | `All ];
      (** [`By_ordering] (default) judges indirect stacks with the full
          battery ({!Checker.check_all_abcast}) and the §2.1/§2.2
          baselines with atomic broadcast alone — matching what each
          ordering claims.  [`All] forces the full battery regardless:
          chaos sweeps use it so a live cell fails for exactly the same
          property a simulated cell does (e.g. the ct-on-ids blackout
          loses payloads, which only {!Checker.check_no_loss} sees). *)
}

val default : config

type latency = {
  samples : int;
  mean_ms : float;
  p50_ms : float;  (** client-visible medians headline the service bench *)
  p95_ms : float;
  p99_ms : float;  (** knee curves report tail latency, not just p95 *)
  max_ms : float;
}

type outcome = {
  verdict : Checker.verdict;
  delivered_per_node : int array;
  expected_per_node : int;
  exits : int array;  (** per-node exit codes (0 = clean barrier exit) *)
  duration_ms : float;  (** first abroadcast to last adelivery, merged clock *)
  latency : latency option;  (** abroadcast → adelivery, all (msg, node) pairs *)
  app_latency : latency option;
      (** client-visible: App_submit to App_applied at the client's home
          replica; [None] when no app is hosted (or nothing applied) *)
  app_hash : (int * int64) option;
      (** deepest state-hash event of the run: (applied cursor, hash) —
          comparable bit-for-bit against a simulated run of the same
          workload once both are complete *)
  throughput_msg_s : float;  (** distinct messages ordered per second *)
  events : int;  (** merged trace size *)
  faults : (string * int) list;
      (** per-node fault counters summed; for a seeded plan these equal
          the counters one simulation of the same plan produces *)
  retx : (string * int) list;  (** wire retransmission counters, summed *)
  trace_dir : string;
}

val ok : outcome -> bool
(** Checker verdict passed and every node exited via the done barrier. *)

val measure :
  Ics_sim.Trace.event list -> float * latency option * latency option * float
(** [(duration_ms, latency, app_latency, throughput_msg_s)] digest of a
    merged trace.  Both latency summaries are [None] — never a summary
    of an empty sample list — when the trace holds no deliveries
    (resp. no applied client commands). *)

val supported : unit -> bool
(** Whether this environment can create and bind loopback TCP sockets
    (some sandboxes cannot; callers should skip gracefully). *)

val run : config -> (outcome, string) result
(** [Error reason] only when the environment cannot run sockets at all;
    protocol failures surface in the outcome's verdict and exit codes.
    @raise Invalid_argument on [`Exec] spawn with a non-empty fault
    plan (the [node] argv carries no plan vocabulary). *)
