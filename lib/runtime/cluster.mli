(** Fork-and-check driver: a real [n]-node cluster over loopback TCP.

    The parent pre-binds one listener per node on [127.0.0.1:0] (so a
    child's dial can never race an unbound port), forks [n] children
    that each run {!Node.run} for one pid, reaps them against the run
    deadline, merges the per-node delivery logs, and replays the
    existing {!Ics_checker.Checker} over the merged trace.  Live runs
    are not deterministic — the checker is the oracle. *)

module Checker = Ics_checker.Checker

type config = {
  node : Node.config;  (** [self] is ignored; each fork gets its own *)
  dir : string option;  (** where per-node trace files go (default: temp) *)
  keep_dir : bool;  (** keep trace files after a successful run *)
}

val default : config

type latency = { samples : int; mean_ms : float; p95_ms : float; max_ms : float }

type outcome = {
  verdict : Checker.verdict;
  delivered_per_node : int array;
  expected_per_node : int;
  exits : int array;  (** per-node exit codes (0 = clean barrier exit) *)
  duration_ms : float;  (** first abroadcast to last adelivery, merged clock *)
  latency : latency option;  (** abroadcast → adelivery, all (msg, node) pairs *)
  throughput_msg_s : float;  (** distinct messages ordered per second *)
  events : int;  (** merged trace size *)
  trace_dir : string;
}

val ok : outcome -> bool
(** Checker verdict passed and every node exited via the done barrier. *)

val supported : unit -> bool
(** Whether this environment can create and bind loopback TCP sockets
    (some sandboxes cannot; callers should skip gracefully). *)

val run : config -> (outcome, string) result
(** [Error reason] only when the environment cannot run sockets at all;
    protocol failures surface in the outcome's verdict and exit codes. *)
