(* The stdlib's Unix binding exposes no monotonic clock, so the live
   runtime derives virtual time from [gettimeofday] relative to a shared
   epoch and clamps it non-decreasing: a wall-clock step backwards (NTP
   slew) must never move the engine's virtual clock backwards. *)

type t = { epoch : float; mutable last : float }

let create ~epoch = { epoch; last = 0.0 }

let now t =
  let ms = (Unix.gettimeofday () -. t.epoch) *. 1000.0 in
  if ms > t.last then t.last <- ms;
  t.last

let epoch t = t.epoch

(* The live backend environment: wall-clock [now], everything else (timer
   scheduling, per-pid RNG, trace recording, horizon, crash-stop) from the
   engine the socket loop drives.  Middleware built against this record
   runs unchanged over the simulated backend's [Env.of_engine]. *)
let env t engine =
  { (Ics_net.Env.of_engine engine) with Ics_net.Env.now = (fun () -> now t) }
