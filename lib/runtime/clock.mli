(** Real time as engine time.

    The live runtime drives {!Ics_sim.Engine} with the wall clock: virtual
    time is milliseconds since a cluster-wide epoch (chosen by the parent
    and inherited through fork), monotonically clamped so wall-clock
    regressions never move the engine backwards. *)

type t

val create : epoch:float -> t
(** [epoch] is a [Unix.gettimeofday] instant; times read as ms since it. *)

val now : t -> float
(** Milliseconds since the epoch; never decreases across calls. *)

val epoch : t -> float

val env : t -> Ics_sim.Engine.t -> Ics_net.Env.t
(** The live backend's capability record: [now] reads this clock, and
    scheduling, RNG, tracing, horizon and crash delivery go to [engine].
    {!Socket_transport.create} installs it on the transport before any
    middleware is built, so fault interposers and the retransmission
    channel program against the same {!Ics_net.Env} on both backends. *)
