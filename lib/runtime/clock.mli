(** Real time as engine time.

    The live runtime drives {!Ics_sim.Engine} with the wall clock: virtual
    time is milliseconds since a cluster-wide epoch (chosen by the parent
    and inherited through fork), monotonically clamped so wall-clock
    regressions never move the engine backwards. *)

type t

val create : epoch:float -> t
(** [epoch] is a [Unix.gettimeofday] instant; times read as ms since it. *)

val now : t -> float
(** Milliseconds since the epoch; never decreases across calls. *)

val epoch : t -> float
