(** The live transport backend: localhost TCP mesh + select loop.

    Wraps {!Ics_net.Transport.create_ext} with real sockets.  Node [i]
    dials every peer once and uses the dialed socket for outbound frames
    only; inbound frames arrive on sockets accepted from the peers'
    dials.  Frames are the {!Ics_codec.Codec} wire format; a malformed
    frame closes its connection (a corrupted TCP byte stream cannot be
    resynchronized) and is counted in {!stats}.

    The event loop ({!run}) drives the engine's timer queue from the real
    clock via {!Ics_sim.Engine.run_due}, pinning the engine horizon once
    to the run deadline so self-rearming timers (heartbeats) retire on
    their own. *)

module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport

(** The loop's growable byte queue (append at tail, consume at head,
    amortized O(1) both ways).  Grows geometrically under a burst and
    — the part worth testing — shrinks back to its resting capacity
    once drained, so one burst doesn't pin its peak allocation for the
    rest of the run. *)
module Bq : sig
  type t

  val create : int -> t
  val add_buffer : t -> Buffer.t -> unit
  val consume : t -> int -> unit
  val clear : t -> unit

  val capacity : t -> int
  (** Current backing-store size in bytes. *)

  val length : t -> int
  (** Unconsumed bytes queued. *)

  val rest_cap : int
  (** The resting capacity a drained queue decays to (64 KiB). *)
end

type t

val create :
  engine:Engine.t ->
  clock:Clock.t ->
  self:int ->
  listen:Unix.file_descr ->
  peer_addrs:Unix.sockaddr array ->
  unit ->
  t
(** [listen] must already be bound and listening; it is switched to
    non-blocking.  Dials every [peer_addrs] entry except [self]'s
    (retrying briefly, so standalone nodes may start in any order).
    @raise Invalid_argument if [peer_addrs] doesn't have one entry per
    process. *)

val transport : t -> Transport.t
(** The [Ext]-backend transport protocol layers plug into. *)

val connected : t -> int
(** Number of peers with a live outbound connection. *)

val run : t -> deadline:float -> stop:(unit -> bool) -> unit
(** Loop until the clock passes [deadline] (engine-time ms) or [stop]
    returns true and the outbound buffers have drained (with a short
    grace cap, so a dead peer cannot hold the node hostage). *)

val close : t -> unit

type stats = {
  frames_out : int;
  bytes_out : int;
  writes_out : int;
      (** write(2) calls that moved bytes; [frames_out / writes_out] is
          the outbound coalescing factor *)
  frames_in : int;
  bytes_in : int;
  decode_errors : int;
}

val stats : t -> stats
