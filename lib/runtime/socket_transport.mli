(** The live transport backend: localhost TCP mesh + poll(2) readiness
    loop.

    Wraps {!Ics_net.Transport.create_ext} with real sockets.  Node [i]
    dials every peer once and uses the dialed socket for outbound frames
    only; inbound frames arrive on sockets accepted from the peers'
    dials.  Frames are the {!Ics_codec.Codec} wire format, encoded
    straight into each peer's outbound {!Bq.t} (backpatched header, no
    per-frame staging buffer) and decoded in place from each
    connection's inbound queue; a malformed frame closes its connection
    (a corrupted TCP byte stream cannot be resynchronized) and is
    counted in {!stats}.

    The event loop ({!run}) keeps one persistent pollset for the whole
    run: readiness interest is flipped in place when a queue's occupancy
    changes — a peer's slot carries [POLLOUT] exactly while its outbound
    queue is nonempty — never rebuilt per iteration.  It drives the
    engine's timer queue from the real clock via
    {!Ics_sim.Engine.run_due}, pinning the engine horizon once to the
    run deadline so self-rearming timers (heartbeats) retire on their
    own. *)

module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport

(** The loop's byte queues are the codec plane's {!Ics_codec.Bq} — one
    shared buffer discipline from encoder to socket and socket to
    decoder. *)
module Bq = Ics_codec.Bq

type t

val create :
  engine:Engine.t ->
  clock:Clock.t ->
  self:int ->
  listen:Unix.file_descr ->
  peer_addrs:Unix.sockaddr array ->
  unit ->
  t
(** [listen] must already be bound and listening; it is switched to
    non-blocking.  Dials every [peer_addrs] entry except [self]'s
    (retrying briefly, so standalone nodes may start in any order).
    @raise Invalid_argument if [peer_addrs] doesn't have one entry per
    process. *)

val transport : t -> Transport.t
(** The [Ext]-backend transport protocol layers plug into. *)

val connected : t -> int
(** Number of peers with a live outbound connection. *)

val run : t -> deadline:float -> stop:(unit -> bool) -> unit
(** Loop until the clock passes [deadline] (engine-time ms) or [stop]
    returns true and the outbound buffers have drained (with a short
    grace cap, so a dead peer cannot hold the node hostage). *)

val close : t -> unit

type stats = {
  frames_out : int;
  bytes_out : int;
  writes_out : int;
      (** write(2) calls that moved bytes; [frames_out / writes_out] is
          the outbound coalescing factor *)
  frames_in : int;
  bytes_in : int;
  decode_errors : int;
}

val stats : t -> stats
