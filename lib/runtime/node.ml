module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Retransmit = Ics_net.Retransmit
module Model = Ics_net.Model
module Failure_detector = Ics_fd.Failure_detector
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Profile = Ics_core.Profile
module Nemesis = Ics_faults.Nemesis
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim
module Rng = Ics_prelude.Rng

(* Runtime control plane: each node announces on the "ctl" layer when it
   has A-delivered the full workload, and exits once every peer has
   announced too — the distributed analogue of the simulator's quiescence
   check, with the run deadline as the fallback. *)
type Message.payload += Done of int

let ctl_layer = "ctl"

let register_codec () =
  Codec.register ~tag:0x48 ~name:"ctl.done"
    ~fits:(function Done _ -> true | _ -> false)
    ~size:(fun _ -> 5)
    ~encode_into:(fun w -> function Done d -> Prim.u32 w d | _ -> assert false)
    ~dec:(fun r -> Done (Prim.r_u32 r))
    ~gen:(fun rng -> Done (Rng.int rng 10_000))

type config = {
  self : int;
  profile : Profile.t;  (** shape + workload; [n] comes from here *)
  seed : int64;  (** cell seed; the chaos schedule derives from it *)
  plan : Nemesis.plan;
      (** run-relative fault plan; shifted past [warmup_ms] here *)
  plan_seed : int64;
  retransmit : bool;  (** wire retransmission channel when a plan is set *)
  chaos_workload : bool;
      (** replicate the chaos sweep's round-robin schedule instead of the
          every-node-broadcasts-[count] workload *)
}

let default_workload =
  {
    self = 0;
    profile = Profile.default;
    seed = 1L;
    plan = [];
    plan_seed = 1L;
    retransmit = true;
    chaos_workload = false;
  }

type result = {
  delivered : int;  (** A-deliveries at this node *)
  expected : int;
  clean_exit : bool;  (** finished via the all-done barrier, not the deadline *)
  net : Socket_transport.stats;
  faults : (string * int) list;  (** this node's outbound-link fault counters *)
  retx : (string * int) list;
  trace : Ics_sim.Trace.t;
}

(* Both counter families in one flat list, prefixed so the cluster parent
   can split them apart again after summing across nodes. *)
let result_kv r =
  List.map (fun (k, v) -> ("fault." ^ k, v)) r.faults
  @ List.map (fun (k, v) -> ("retx." ^ k, v)) r.retx

(* The chaos sweep's workload, replayed from the cell seed: every node
   computes the same round-robin schedule (the RNG is drawn for every slot
   whether or not it is ours) and fires only the slots it originates.
   With an app hosted, slot [i] carries command (client = i, req = 0) in
   its blob — one Create per one-request client, since this open-loop
   schedule cannot promise per-client FIFO delivery (see App_host).  The
   machine rides the exact same broadcasts, so the sweep's pinned
   fingerprints only gain app events, and a cell where commands never
   take effect fails semantically. *)
let schedule_chaos engine config abcast =
  let p = config.profile in
  let app = match p.Profile.app with Profile.Kv -> true | Profile.No_app -> false in
  let body_bytes =
    if app then Ics_core.App_host.body_bytes p else p.Profile.body_bytes
  in
  let wrng = Rng.create (Int64.add config.seed 104729L) in
  let at = ref 1.0 in
  for i = 0 to p.Profile.count - 1 do
    let t = !at in
    if i mod p.Profile.n = config.self then begin
      let blob = if app then Ics_app.Cmd.pack ~client:i ~req:0 else 0L in
      Engine.schedule engine ~at:(p.Profile.warmup_ms +. t) (fun () ->
          if app && Engine.is_alive engine config.self then
            Engine.record engine config.self (Trace.App_submit (i, 0));
          ignore
            (Abcast.abroadcast ~blob abcast ~src:config.self ~body_bytes
              : Ics_net.App_msg.t))
    end;
    at := t +. 2.0 +. Rng.float wrng 4.0
  done

let schedule_legacy engine config abcast =
  let p = config.profile in
  for k = 0 to p.Profile.count - 1 do
    Engine.schedule engine
      ~at:(p.Profile.warmup_ms +. (p.Profile.gap_ms *. float_of_int k))
      (fun () ->
        ignore
          (Abcast.abroadcast abcast ~src:config.self
             ~body_bytes:p.Profile.body_bytes
            : Ics_net.App_msg.t))
  done

let run ~epoch ~listen ~peer_addrs config =
  let p = config.profile in
  let n = p.Profile.n in
  if config.self < 0 || config.self >= n then invalid_arg "Node.run: self out of range";
  register_codec ();
  (* The heartbeat detector emits before [Stack.assemble] would get a
     chance to register the layer codecs — do it up front. *)
  Ics_core.Codecs.ensure ();
  let engine = Engine.create ~seed:(Int64.of_int (config.self + 1)) ~trace:`On ~n () in
  let clock = Clock.create ~epoch in
  let st =
    Socket_transport.create ~engine ~clock ~self:config.self ~listen ~peer_addrs ()
  in
  let transport = Socket_transport.transport st in
  (* Middleware order matters: faults first, the retransmission channel
     last (outermost), so every retry traverses the faults — same layering
     as the simulated chaos stack (nemesis under Retransmit). *)
  let fstats =
    match config.plan with
    | [] -> None
    | plan ->
        let plan = Nemesis.shift plan ~by:p.Profile.warmup_ms in
        let mw, stats =
          Nemesis.interposer ~self:config.self ~env:(Transport.env transport)
            ~seed:config.plan_seed ~plan ()
        in
        Transport.interpose transport mw;
        Some stats
  in
  let rstats =
    if config.plan <> [] && config.retransmit then
      Some (Retransmit.install transport)
    else None
  in
  let fd =
    Failure_detector.heartbeat transport ~period:p.Profile.hb_period_ms
      ~timeout:p.Profile.hb_timeout_ms
  in
  let app_mode = match p.Profile.app with Profile.Kv -> true | Profile.No_app -> false in
  (* Service mode: the closed-loop client plane generates the workload
     and the barrier is semantic — every command applied here — instead
     of a delivery count (retries make raw deliveries overshoot). *)
  let service = app_mode && not config.chaos_workload in
  let expected =
    if service then p.Profile.clients * p.Profile.requests
    else if config.chaos_workload then p.Profile.count
    else p.Profile.count * n
  in
  let delivered = ref 0 in
  let done_from = Array.make n false in
  let announced = ref false in
  let ctl = Transport.intern transport ctl_layer in
  let announce () =
    if not !announced then begin
      announced := true;
      done_from.(config.self) <- true;
      Transport.send_to_others transport ~src:config.self ~layer:ctl ~body_bytes:5
        (Done !delivered)
    end
  in
  let host = ref None in
  let barrier_reached () =
    match !host with
    | Some h when service -> Ics_core.App_host.complete h
    | _ -> !delivered >= expected
  in
  let on_deliver pid m =
    if Pid.equal pid config.self then begin
      incr delivered;
      (match !host with Some h -> Ics_core.App_host.on_deliver h m | None -> ());
      if barrier_reached () then announce ()
    end
  in
  let abcast = Stack.assemble transport ~fd ~profile:p ~on_deliver in
  if app_mode then begin
    let mode =
      if service then Ics_core.App_host.Service else Ics_core.App_host.Ride
    in
    let h =
      Ics_core.App_host.install transport ~abcast ~profile:p ~self:config.self ~mode
    in
    host := Some h;
    if service then
      Ics_core.App_host.start h ~at:p.Profile.warmup_ms ~over_ms:200.0
  end;
  Transport.register transport config.self ~layer:ctl (fun msg ->
      match msg.Message.payload with
      | Done _ -> done_from.(msg.Message.src) <- true
      | _ -> ());
  if config.chaos_workload then schedule_chaos engine config abcast
  else if not service then schedule_legacy engine config abcast;
  let all_done () = !announced && Array.for_all Fun.id done_from in
  (* A plan-scheduled crash of our own pid is process death: leave the
     loop instead of idling to the deadline as a zombie. *)
  let exit_recorded = ref false in
  let stop () =
    if all_done () then begin
      (* Mark the clean exit in the trace: the checker's termination
         properties must not demand this node's participation in
         consensus decisions first reached after it left the run. *)
      if not !exit_recorded then begin
        exit_recorded := true;
        Engine.record engine config.self Trace.Exit
      end;
      true
    end
    else not (Engine.is_alive engine config.self)
  in
  Socket_transport.run st ~deadline:p.Profile.deadline_ms ~stop;
  let clean = all_done () in
  Socket_transport.close st;
  {
    delivered = !delivered;
    expected;
    clean_exit = clean;
    net = Socket_transport.stats st;
    faults =
      (match fstats with Some s -> Model.Fault_stats.to_list s | None -> []);
    retx =
      (match rstats with Some s -> Retransmit.stats_to_list s | None -> []);
    trace = Engine.trace engine;
  }
