module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Failure_detector = Ics_fd.Failure_detector
module Stack = Ics_core.Stack
module Abcast = Ics_core.Abcast
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim
module Rng = Ics_prelude.Rng

(* Runtime control plane: each node announces on the "ctl" layer when it
   has A-delivered the full workload, and exits once every peer has
   announced too — the distributed analogue of the simulator's quiescence
   check, with the run deadline as the fallback. *)
type Message.payload += Done of int

let ctl_layer = "ctl"

let register_codec () =
  Codec.register ~tag:0x48 ~name:"ctl.done"
    ~fits:(function Done _ -> true | _ -> false)
    ~size:(fun _ -> 5)
    ~enc:(fun w -> function Done d -> Prim.u32 w d | _ -> assert false)
    ~dec:(fun r -> Done (Prim.r_u32 r))
    ~gen:(fun rng -> Done (Rng.int rng 10_000))

type config = {
  self : int;
  n : int;
  algo : Stack.algo;
  ordering : Abcast.ordering;
  broadcast : Stack.broadcast_kind;
  count : int;  (** messages this node A-broadcasts *)
  body_bytes : int;
  gap_ms : float;  (** spacing between this node's abroadcasts *)
  warmup_ms : float;  (** clock time before the first abroadcast *)
  hb_period_ms : float;
  hb_timeout_ms : float;
  deadline_ms : float;  (** hard stop, in ms since the epoch *)
}

let default_workload =
  {
    self = 0;
    n = 3;
    algo = Stack.Ct;
    ordering = Abcast.Indirect_consensus;
    broadcast = Stack.Flood;
    count = 20;
    body_bytes = 128;
    gap_ms = 5.0;
    warmup_ms = 150.0;
    hb_period_ms = 25.0;
    hb_timeout_ms = 120.0;
    deadline_ms = 10_000.0;
  }

type result = {
  delivered : int;  (** A-deliveries at this node *)
  expected : int;
  clean_exit : bool;  (** finished via the all-done barrier, not the deadline *)
  net : Socket_transport.stats;
  trace : Ics_sim.Trace.t;
}

let run ~epoch ~listen ~peer_addrs config =
  if config.self < 0 || config.self >= config.n then invalid_arg "Node.run: self out of range";
  register_codec ();
  (* The heartbeat detector emits before [Stack.assemble] would get a
     chance to register the layer codecs — do it up front. *)
  Ics_core.Codecs.ensure ();
  let engine = Engine.create ~seed:(Int64.of_int (config.self + 1)) ~trace:`On ~n:config.n () in
  let clock = Clock.create ~epoch in
  let st =
    Socket_transport.create ~engine ~clock ~self:config.self ~listen ~peer_addrs ()
  in
  let transport = Socket_transport.transport st in
  let fd =
    Failure_detector.heartbeat transport ~period:config.hb_period_ms
      ~timeout:config.hb_timeout_ms
  in
  let expected = config.count * config.n in
  let delivered = ref 0 in
  let done_from = Array.make config.n false in
  let announced = ref false in
  let ctl = Transport.intern transport ctl_layer in
  let announce () =
    if not !announced then begin
      announced := true;
      done_from.(config.self) <- true;
      Transport.send_to_others transport ~src:config.self ~layer:ctl ~body_bytes:5
        (Done !delivered)
    end
  in
  let on_deliver p _m =
    if Pid.equal p config.self then begin
      incr delivered;
      if !delivered >= expected then announce ()
    end
  in
  let abcast =
    Stack.assemble transport ~fd ~algo:config.algo ~ordering:config.ordering
      ~broadcast:config.broadcast ~on_deliver
  in
  Transport.register transport config.self ~layer:ctl (fun msg ->
      match msg.Message.payload with
      | Done _ -> done_from.(msg.Message.src) <- true
      | _ -> ());
  for k = 0 to config.count - 1 do
    Engine.schedule engine
      ~at:(config.warmup_ms +. (config.gap_ms *. float_of_int k))
      (fun () ->
        ignore
          (Abcast.abroadcast abcast ~src:config.self ~body_bytes:config.body_bytes
            : Ics_net.App_msg.t))
  done;
  let all_done () = !announced && Array.for_all Fun.id done_from in
  Socket_transport.run st ~deadline:config.deadline_ms ~stop:all_done;
  let clean = all_done () in
  Socket_transport.close st;
  {
    delivered = !delivered;
    expected;
    clean_exit = clean;
    net = Socket_transport.stats st;
    trace = Engine.trace engine;
  }
