module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Layer = Ics_net.Layer
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim

(* Connection topology: node [i] dials every peer and uses the dialed
   socket for its outbound frames only; inbound frames arrive on sockets
   accepted from the peers' dials.  One-directional sockets mean a node
   never has to agree with a peer about which of two crossing connections
   to keep. *)

type peer = {
  mutable out_fd : Unix.file_descr option;
  out_buf : Buffer.t;
  mutable out_pos : int;  (* consumed prefix of [out_buf] *)
}

type conn = { fd : Unix.file_descr; mutable in_buf : string }

type t = {
  engine : Engine.t;
  clock : Clock.t;
  self : int;
  n : int;
  listen : Unix.file_descr;
  peers : peer array;
  mutable conns : conn list;
  mutable transport : Transport.t option;
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable decode_errors : int;
}

let transport t = Option.get t.transport

let close_peer peer =
  match peer.out_fd with
  | None -> ()
  | Some fd ->
      peer.out_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let pending peer = Buffer.length peer.out_buf - peer.out_pos

(* Non-blocking drain of one peer's outbound buffer. *)
let flush_peer peer =
  match peer.out_fd with
  | None ->
      Buffer.clear peer.out_buf;
      peer.out_pos <- 0
  | Some fd -> (
      let len = pending peer in
      if len > 0 then
        match
          Unix.write_substring fd (Buffer.contents peer.out_buf) peer.out_pos len
        with
        | written ->
            peer.out_pos <- peer.out_pos + written;
            if peer.out_pos >= Buffer.length peer.out_buf then begin
              Buffer.clear peer.out_buf;
              peer.out_pos <- 0
            end
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
            close_peer peer)

let emit t (msg : Message.t) =
  if msg.Message.dst >= 0 && msg.Message.dst < t.n && msg.Message.dst <> t.self then begin
    let peer = t.peers.(msg.Message.dst) in
    if peer.out_fd <> None then begin
      let before = Buffer.length peer.out_buf in
      ignore
        (Codec.encode_frame peer.out_buf ~src:msg.Message.src ~dst:msg.Message.dst
           ~layer:(Layer.name msg.Message.layer) msg.Message.payload
          : int);
      t.frames_out <- t.frames_out + 1;
      t.bytes_out <- t.bytes_out + (Buffer.length peer.out_buf - before);
      flush_peer peer
    end
  end

(* Decode every complete frame in [conn.in_buf] and re-enter it through
   the transport; a malformed frame kills the connection (a corrupted TCP
   byte stream cannot be resynchronized). *)
let drain_input t conn =
  let buf = conn.in_buf in
  let len = String.length buf in
  let pos = ref 0 in
  let alive = ref true in
  while
    !alive
    && len - !pos >= Codec.header_bytes
    &&
    match Codec.decode_header ~pos:!pos buf with
    | Error e ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame header error: %s\n%!" t.self e;
        close_conn t conn;
        alive := false;
        false
    | Ok h when h.Codec.h_body_len > 16 * 1024 * 1024 ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame body length %d exceeds cap\n%!" t.self
          h.Codec.h_body_len;
        close_conn t conn;
        alive := false;
        false
    | Ok h ->
        if len - !pos - Codec.header_bytes < h.Codec.h_body_len then false
        else begin
          (match Codec.decode_body ~pos:(!pos + Codec.header_bytes) buf h with
          | Error e ->
              t.decode_errors <- t.decode_errors + 1;
              Printf.eprintf "[node %d] frame body error: %s\n%!" t.self e;
              close_conn t conn;
              alive := false
          | Ok payload ->
              t.frames_in <- t.frames_in + 1;
              t.bytes_in <- t.bytes_in + Codec.header_bytes + h.Codec.h_body_len;
              let msg =
                {
                  Message.src = h.Codec.h_src;
                  dst = h.Codec.h_dst;
                  layer = Layer.unregistered h.Codec.h_layer;
                  payload;
                  body_bytes = h.Codec.h_body_len;
                  sent_at = Engine.now t.engine;
                }
              in
              Transport.inject (transport t) msg);
          !alive && (pos := !pos + Codec.header_bytes + h.Codec.h_body_len;
                     true)
        end
  do
    ()
  done;
  if !alive then
    conn.in_buf <- (if !pos = 0 then buf else String.sub buf !pos (len - !pos))

let read_chunk = Bytes.create 65536

let handle_readable t conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> close_conn t conn
  | nread ->
      conn.in_buf <- conn.in_buf ^ Bytes.sub_string read_chunk 0 nread;
      drain_input t conn
  | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> close_conn t conn

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        t.conns <- { fd; in_buf = "" } :: t.conns;
        go ()
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  in
  go ()

let dial addr ~attempts ~retry_delay =
  let rec go k =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Unix.set_nonblock fd;
        Some fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if k + 1 >= attempts then (
          ignore e;
          None)
        else begin
          Unix.sleepf retry_delay;
          go (k + 1)
        end
  in
  go 0

let create ~engine ~clock ~self ~listen ~peer_addrs () =
  let n = Engine.n engine in
  if Array.length peer_addrs <> n then
    invalid_arg "Socket_transport.create: peer_addrs size mismatch";
  (* A peer that exits early (deadline, plan-scheduled crash) closes its
     sockets while we may still be writing; without this the kernel kills
     us with SIGPIPE before [flush_peer]'s EPIPE handler can run. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Unix.set_nonblock listen;
  let t =
    {
      engine;
      clock;
      self;
      n;
      listen;
      peers = Array.init n (fun _ -> { out_fd = None; out_buf = Buffer.create 4096; out_pos = 0 });
      conns = [];
      transport = None;
      frames_out = 0;
      bytes_out = 0;
      frames_in = 0;
      bytes_in = 0;
      decode_errors = 0;
    }
  in
  let transport = Transport.create_ext engine ~self ~emit:(fun msg -> emit t msg) () in
  (* Before any middleware exists: interposers capture the transport's env
     at install time, so the wall-clock variant must already be in place. *)
  Transport.set_env transport (Clock.env clock engine);
  t.transport <- Some transport;
  for p = 0 to n - 1 do
    if p <> self then
      (* The cluster parent pre-binds every listener before forking, so a
         dial normally succeeds on the first try; standalone nodes may
         start in any order and get the retry loop. *)
      t.peers.(p).out_fd <- dial peer_addrs.(p) ~attempts:100 ~retry_delay:0.05
  done;
  t

let connected t =
  let up = ref 0 in
  Array.iteri (fun p peer -> if p <> t.self && peer.out_fd <> None then incr up) t.peers;
  !up

(* The live event loop: execute due engine events, then block in select
   until the next timer, inbound traffic, or writability of a clogged
   peer.  The engine's horizon is pinned once to [deadline] so that
   self-rearming timer loops (heartbeats) retire by themselves. *)
let run t ~deadline ~stop =
  Engine.set_horizon t.engine (Some deadline);
  let stopped_at = ref None in
  let grace = 250.0 (* ms to drain output after [stop] turns true *) in
  let finished now =
    now >= deadline
    ||
    match !stopped_at with
    | None ->
        if stop () then begin
          stopped_at := Some now;
          Array.for_all (fun p -> pending p = 0) t.peers
        end
        else false
    | Some t0 ->
        t0 +. grace <= now || Array.for_all (fun p -> pending p = 0) t.peers
  in
  let rec loop () =
    let now = Clock.now t.clock in
    Engine.run_due t.engine ~upto:now;
    Array.iter flush_peer t.peers;
    let now = Clock.now t.clock in
    if not (finished now) then begin
      let horizon = match !stopped_at with Some t0 -> Float.min deadline (t0 +. grace) | None -> deadline in
      let next_timer =
        match Engine.next_due t.engine with
        | Some at -> Float.max 0.0 (at -. now)
        | None -> 50.0
      in
      let timeout_ms = Float.min 50.0 (Float.min next_timer (Float.max 0.0 (horizon -. now))) in
      let rfds = t.listen :: List.map (fun c -> c.fd) t.conns in
      let wfds =
        Array.to_list t.peers
        |> List.filter_map (fun p -> if pending p > 0 then p.out_fd else None)
      in
      (match Unix.select rfds wfds [] (timeout_ms /. 1000.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.memq t.listen readable then accept_ready t;
          List.iter
            (fun conn -> if List.memq conn.fd readable then handle_readable t conn)
            t.conns;
          Array.iter
            (fun peer ->
              match peer.out_fd with
              | Some fd when List.memq fd writable -> flush_peer peer
              | _ -> ())
            t.peers);
      loop ()
    end
  in
  loop ()

let close t =
  Array.iter close_peer t.peers;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  try Unix.close t.listen with Unix.Unix_error _ -> ()

type stats = {
  frames_out : int;
  bytes_out : int;
  frames_in : int;
  bytes_in : int;
  decode_errors : int;
}

let stats (t : t) =
  {
    frames_out = t.frames_out;
    bytes_out = t.bytes_out;
    frames_in = t.frames_in;
    bytes_in = t.bytes_in;
    decode_errors = t.decode_errors;
  }
