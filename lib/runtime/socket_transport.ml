module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Layer = Ics_net.Layer
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim

(* Connection topology: node [i] dials every peer and uses the dialed
   socket for its outbound frames only; inbound frames arrive on sockets
   accepted from the peers' dials.  One-directional sockets mean a node
   never has to agree with a peer about which of two crossing connections
   to keep. *)

(* The loop's buffers are the shared byte queue from the codec plane:
   frames encode straight into a peer's outbound queue (backpatched
   header, no per-frame staging buffer) and sockets read straight into a
   connection's inbound queue, where frames decode in place.  The queue
   must never copy its whole contents per syscall — a descheduled node
   (five of them timeshare one core) accumulates megabytes of backlog,
   and an O(backlog) copy per 64 KB read turns the catch-up quadratic:
   the node falls further behind the longer it is behind, which is
   exactly the congestion collapse the saturation sweep exposes past the
   knee. *)
module Bq = Ics_codec.Bq

(* Persistent pollset over poll(2).  The fds/events/revents arrays live
   across loop iterations — readiness interest is flipped in place when
   a queue's occupancy changes, never rebuilt per iteration (the select
   loop this replaces re-assembled its fd lists on every pass).  Slots
   are compacted by swap-with-last; [reslot] tells the owner its new
   index so owner records can keep an O(1) handle on their slot. *)
module Poll = struct
  (* poll(2) event bits (Linux/BSD values; poll.h has used these
     everywhere that matters for two decades). *)
  let pollin = 0x001
  let pollout = 0x004
  let pollerr = 0x008
  let pollhup = 0x010
  let pollnval = 0x020

  external poll_fds :
    Unix.file_descr array -> int array -> int array -> int -> int -> int
    = "ics_poll_stub"

  type 'a t = {
    mutable fds : Unix.file_descr array;
    mutable events : int array;
    mutable revents : int array;
    mutable owners : 'a array;
    mutable n : int;
    dummy : 'a;
    reslot : 'a -> int -> unit;
  }

  let create ~dummy ~reslot =
    {
      fds = Array.make 8 Unix.stdin;
      events = Array.make 8 0;
      revents = Array.make 8 0;
      owners = Array.make 8 dummy;
      n = 0;
      dummy;
      reslot;
    }

  let grow t =
    let cap = Array.length t.fds in
    if t.n = cap then begin
      let ncap = 2 * cap in
      let nf = Array.make ncap Unix.stdin in
      let ne = Array.make ncap 0 in
      let nr = Array.make ncap 0 in
      let no = Array.make ncap t.dummy in
      Array.blit t.fds 0 nf 0 cap;
      Array.blit t.events 0 ne 0 cap;
      Array.blit t.revents 0 nr 0 cap;
      Array.blit t.owners 0 no 0 cap;
      t.fds <- nf;
      t.events <- ne;
      t.revents <- nr;
      t.owners <- no
    end

  let add t fd ~events owner =
    grow t;
    let slot = t.n in
    t.fds.(slot) <- fd;
    t.events.(slot) <- events;
    t.revents.(slot) <- 0;
    t.owners.(slot) <- owner;
    t.n <- slot + 1;
    t.reslot owner slot;
    slot

  let remove t slot =
    if slot < 0 || slot >= t.n then invalid_arg "Poll.remove: bad slot";
    let last = t.n - 1 in
    if slot <> last then begin
      t.fds.(slot) <- t.fds.(last);
      t.events.(slot) <- t.events.(last);
      t.revents.(slot) <- t.revents.(last);
      t.owners.(slot) <- t.owners.(last);
      t.reslot t.owners.(slot) slot
    end;
    t.owners.(last) <- t.dummy;
    t.n <- last

  let set_events t slot ev =
    if slot < 0 || slot >= t.n then invalid_arg "Poll.set_events: bad slot";
    t.events.(slot) <- ev

  (* Negative return = transient failure (EINTR): report zero ready and
     let the loop re-evaluate its timers, as the select loop did. *)
  let wait t ~timeout_ms =
    let r = poll_fds t.fds t.events t.revents t.n timeout_ms in
    if r < 0 then 0 else r

  (* Snapshot the ready owners before dispatching any of them: dispatch
     may close a connection, and the swap-with-last removal would
     otherwise make an index walk skip (or double-visit) slots.  Owners
     invalidated mid-dispatch are skipped by the dispatcher via their
     own liveness marker. *)
  let ready t =
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      if t.revents.(i) <> 0 then acc := (t.owners.(i), t.revents.(i)) :: !acc
    done;
    !acc
end

type peer = {
  mutable out_fd : Unix.file_descr option;
  out : Bq.t;
  mutable pslot : int;  (* pollset slot; -1 when out_fd = None *)
}

type conn = {
  fd : Unix.file_descr;
  in_q : Bq.t;
  mutable cslot : int;  (* pollset slot; -1 once closed *)
}

type owner = Nobody | Listen | Conn of conn | Peer of peer

type t = {
  engine : Engine.t;
  clock : Clock.t;
  self : int;
  n : int;
  listen : Unix.file_descr;
  peers : peer array;
  pollset : owner Poll.t;
  mutable conns : conn list;
  mutable transport : Transport.t option;
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable writes_out : int;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable decode_errors : int;
}

let transport t = Option.get t.transport

let close_peer t peer =
  match peer.out_fd with
  | None -> ()
  | Some fd ->
      peer.out_fd <- None;
      if peer.pslot >= 0 then Poll.remove t.pollset peer.pslot;
      peer.pslot <- -1;
      Bq.clear peer.out;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  if conn.cslot >= 0 then Poll.remove t.pollset conn.cslot;
  conn.cslot <- -1;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let pending peer = Bq.length peer.out

let high_water = 256 * 1024

(* Readiness-interest invariant: a peer's slot carries POLLOUT exactly
   while its outbound queue is nonempty.  [emit] raises the flag on the
   empty->nonempty edge; the drain below lowers it on nonempty->empty.
   Everything else about the pollset is static per connection lifetime,
   so the loop never rebuilds interest sets. *)
let set_pollout t peer on =
  if peer.pslot >= 0 then
    Poll.set_events t.pollset peer.pslot (if on then Poll.pollout else 0)

(* Non-blocking drain of one peer's outbound queue.  Frames accumulate
   between poll iterations ([emit] does not flush), so one write here
   carries every frame queued since the last readiness burst — straight
   from the queue's storage, no copy. *)
let flush_peer t peer =
  match peer.out_fd with
  | None -> Bq.clear peer.out
  | Some fd -> (
      let q = peer.out in
      if Bq.length q > 0 then
        match Unix.write fd (Bq.unsafe_bytes q) (Bq.head q) (Bq.length q) with
        | written ->
            t.writes_out <- t.writes_out + 1;
            Bq.consume q written;
            if Bq.length q = 0 then set_pollout t peer false
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
            close_peer t peer)

let emit t (msg : Message.t) =
  if msg.Message.dst >= 0 && msg.Message.dst < t.n && msg.Message.dst <> t.self then begin
    let peer = t.peers.(msg.Message.dst) in
    if peer.out_fd <> None then begin
      let before = Bq.length peer.out in
      (* Straight into the outbound queue: header reserved, body encoded,
         length+CRC backpatched — no per-frame staging buffer.  On an
         encoder exception the codec truncates the queue back, so a
         partial frame never reaches the wire. *)
      ignore
        (Codec.encode_frame peer.out ~src:msg.Message.src ~dst:msg.Message.dst
           ~layer:(Layer.name msg.Message.layer) msg.Message.payload
          : int);
      t.frames_out <- t.frames_out + 1;
      t.bytes_out <- t.bytes_out + (Bq.length peer.out - before);
      if before = 0 then set_pollout t peer true;
      (* Coalesce: leave the frame queued for the next readiness burst
         unless the queue has grown past the high-water mark (bounds
         memory if a peer stalls mid-burst). *)
      if pending peer > high_water then flush_peer t peer
    end
  end

(* Decode every complete frame queued on [conn] and re-enter it through
   the transport; a malformed frame kills the connection (a corrupted TCP
   byte stream cannot be resynchronized).  Decoding reads the queue's
   storage in place — [Bytes.unsafe_to_string] is sound here because the
   codec retains no reference into its input past the call — and only
   [limit] (the logical tail) bounds parsing, never the physical buffer,
   which holds stale bytes beyond it. *)
let drain_input t conn =
  let q = conn.in_q in
  let buf = Bytes.unsafe_to_string (Bq.unsafe_bytes q) in
  let limit = Bq.tail q in
  let pos = ref (Bq.head q) in
  let alive = ref true in
  while
    !alive
    && limit - !pos >= Codec.header_bytes
    &&
    match Codec.decode_header ~pos:!pos buf with
    | Error e ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame header error: %s\n%!" t.self e;
        close_conn t conn;
        alive := false;
        false
    | Ok h when h.Codec.h_body_len > 16 * 1024 * 1024 ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame body length %d exceeds cap\n%!" t.self
          h.Codec.h_body_len;
        close_conn t conn;
        alive := false;
        false
    | Ok h ->
        if limit - !pos - Codec.header_bytes < h.Codec.h_body_len then false
        else begin
          (match Codec.decode_body ~pos:(!pos + Codec.header_bytes) buf h with
          | Error e ->
              t.decode_errors <- t.decode_errors + 1;
              Printf.eprintf "[node %d] frame body error: %s\n%!" t.self e;
              close_conn t conn;
              alive := false
          | Ok payload ->
              t.frames_in <- t.frames_in + 1;
              t.bytes_in <- t.bytes_in + Codec.header_bytes + h.Codec.h_body_len;
              (* Re-pin the virtual clock per frame: a descheduled process
                 drains a multi-second backlog in one burst, and stamping
                 every resulting trace event with the loop iteration's
                 start time makes decisions appear to precede the
                 broadcasts they order (merged-trace causality breaks). *)
              Engine.advance t.engine ~upto:(Clock.now t.clock);
              let msg =
                {
                  Message.src = h.Codec.h_src;
                  dst = h.Codec.h_dst;
                  layer = Layer.unregistered h.Codec.h_layer;
                  payload;
                  body_bytes = h.Codec.h_body_len;
                  sent_at = Engine.now t.engine;
                }
              in
              Transport.inject (transport t) msg);
          !alive && (pos := !pos + Codec.header_bytes + h.Codec.h_body_len;
                     true)
        end
  do
    ()
  done;
  if !alive then Bq.consume q (!pos - Bq.head q)

let read_size = 65536

(* Read straight into the queue's tail — no intermediate chunk, no
   concatenation; whatever a burst leaves unparsed just stays queued. *)
let handle_readable t conn =
  let q = conn.in_q in
  Bq.ensure q read_size;
  match Unix.read conn.fd (Bq.unsafe_bytes q) (Bq.tail q) (Bq.tail_room q) with
  | 0 -> close_conn t conn
  | nread ->
      Bq.advance q nread;
      drain_input t conn
  | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> close_conn t conn

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let conn = { fd; in_q = Bq.create read_size; cslot = -1 } in
        ignore (Poll.add t.pollset fd ~events:Poll.pollin (Conn conn) : int);
        t.conns <- conn :: t.conns;
        go ()
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  in
  go ()

let dial addr ~attempts ~retry_delay =
  let rec go k =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Unix.set_nonblock fd;
        Some fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if k + 1 >= attempts then (
          ignore e;
          None)
        else begin
          Unix.sleepf retry_delay;
          go (k + 1)
        end
  in
  go 0

let create ~engine ~clock ~self ~listen ~peer_addrs () =
  let n = Engine.n engine in
  if Array.length peer_addrs <> n then
    invalid_arg "Socket_transport.create: peer_addrs size mismatch";
  (* A peer that exits early (deadline, plan-scheduled crash) closes its
     sockets while we may still be writing; without this the kernel kills
     us with SIGPIPE before [flush_peer]'s EPIPE handler can run. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Unix.set_nonblock listen;
  let pollset =
    Poll.create ~dummy:Nobody ~reslot:(fun owner slot ->
        match owner with
        | Nobody | Listen -> ()  (* listen is slot 0 and never removed *)
        | Conn c -> c.cslot <- slot
        | Peer p -> p.pslot <- slot)
  in
  let t =
    {
      engine;
      clock;
      self;
      n;
      listen;
      peers = Array.init n (fun _ -> { out_fd = None; out = Bq.create 4096; pslot = -1 });
      pollset;
      conns = [];
      transport = None;
      frames_out = 0;
      bytes_out = 0;
      writes_out = 0;
      frames_in = 0;
      bytes_in = 0;
      decode_errors = 0;
    }
  in
  ignore (Poll.add pollset listen ~events:Poll.pollin Listen : int);
  let transport = Transport.create_ext engine ~self ~emit:(fun msg -> emit t msg) () in
  (* Before any middleware exists: interposers capture the transport's env
     at install time, so the wall-clock variant must already be in place. *)
  Transport.set_env transport (Clock.env clock engine);
  t.transport <- Some transport;
  for p = 0 to n - 1 do
    if p <> self then begin
      (* The cluster parent pre-binds every listener before forking, so a
         dial normally succeeds on the first try; standalone nodes may
         start in any order and get the retry loop. *)
      let peer = t.peers.(p) in
      peer.out_fd <- dial peer_addrs.(p) ~attempts:100 ~retry_delay:0.05;
      match peer.out_fd with
      | Some fd ->
          (* Registered with no interest bits: POLLOUT is raised by the
             first queued byte, and poll still reports ERR/HUP on an idle
             slot, which is how a vanished peer is noticed. *)
          ignore (Poll.add pollset fd ~events:0 (Peer peer) : int)
      | None -> ()
    end
  done;
  t

let connected t =
  let up = ref 0 in
  Array.iteri (fun p peer -> if p <> t.self && peer.out_fd <> None then incr up) t.peers;
  !up

(* The live event loop: execute due engine events, then block in poll(2)
   until the next timer, inbound traffic, or writability of a clogged
   peer.  The engine's horizon is pinned once to [deadline] so that
   self-rearming timer loops (heartbeats) retire by themselves. *)
let run t ~deadline ~stop =
  Engine.set_horizon t.engine (Some deadline);
  let stopped_at = ref None in
  (* After [stop] turns true the node lingers for the full grace window —
     draining its output AND processing input.  Exiting as soon as the
     output is flushed would close the sockets while peers' last decide
     floods for trailing pipelined instances are still in flight; the
     linger absorbs them, so a cleanly-exited node has seen every decision
     reached before its barrier. *)
  let grace = 250.0 (* ms *) in
  let finished now =
    now >= deadline
    ||
    match !stopped_at with
    | None ->
        if stop () then stopped_at := Some now;
        false
    | Some t0 -> t0 +. grace <= now
  in
  let err_bits = Poll.pollerr lor Poll.pollhup lor Poll.pollnval in
  let dispatch (o, re) =
    match o with
    | Nobody -> ()
    | Listen -> accept_ready t
    | Conn conn ->
        (* cslot < 0: closed by an earlier dispatch in this same burst. *)
        if conn.cslot >= 0 then handle_readable t conn
    | Peer peer -> (
        match peer.out_fd with
        | None -> ()
        | Some _ ->
            if Bq.length peer.out > 0 then
              (* Writable (or erroring — the write surfaces it): one
                 coalesced write per readiness burst. *)
              flush_peer t peer
            else if re land err_bits <> 0 then
              (* ERR/HUP on an idle slot (interest 0): the peer is gone. *)
              close_peer t peer)
  in
  let rec loop () =
    let now = Clock.now t.clock in
    Engine.run_due t.engine ~upto:now;
    let now = Clock.now t.clock in
    if not (finished now) then begin
      let horizon = match !stopped_at with Some t0 -> Float.min deadline (t0 +. grace) | None -> deadline in
      let next_timer =
        match Engine.next_due t.engine with
        | Some at -> Float.max 0.0 (at -. now)
        | None -> 50.0
      in
      let timeout_ms = Float.min 50.0 (Float.min next_timer (Float.max 0.0 (horizon -. now))) in
      let nready = Poll.wait t.pollset ~timeout_ms:(int_of_float (Float.ceil timeout_ms)) in
      if nready > 0 then List.iter dispatch (Poll.ready t.pollset);
      loop ()
    end
  in
  loop ()

let close t =
  Array.iter (close_peer t) t.peers;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  try Unix.close t.listen with Unix.Unix_error _ -> ()

type stats = {
  frames_out : int;
  bytes_out : int;
  writes_out : int;
  frames_in : int;
  bytes_in : int;
  decode_errors : int;
}

let stats (t : t) =
  {
    frames_out = t.frames_out;
    bytes_out = t.bytes_out;
    writes_out = t.writes_out;
    frames_in = t.frames_in;
    bytes_in = t.bytes_in;
    decode_errors = t.decode_errors;
  }
