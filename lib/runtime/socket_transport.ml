module Engine = Ics_sim.Engine
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Layer = Ics_net.Layer
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim

(* Connection topology: node [i] dials every peer and uses the dialed
   socket for its outbound frames only; inbound frames arrive on sockets
   accepted from the peers' dials.  One-directional sockets mean a node
   never has to agree with a peer about which of two crossing connections
   to keep. *)

(* Growable byte queue: append at the tail, consume from the head,
   amortized O(1) both ways.  The live loop's buffers must never copy
   their whole contents per syscall — a descheduled node (five of them
   timeshare one core) accumulates megabytes of backlog, and an
   O(backlog) copy per 64 KB read turns the catch-up quadratic: the
   node falls further behind the longer it is behind, which is exactly
   the congestion collapse the saturation sweep exposes past the knee. *)
module Bq = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create cap = { buf = Bytes.create cap; start = 0; len = 0 }

  (* Make room for [extra] more bytes at the tail: drop the consumed
     prefix when that suffices with slack, else grow geometrically. *)
  let reserve q extra =
    let cap = Bytes.length q.buf in
    if q.start + q.len + extra > cap then
      if q.len + extra <= cap / 2 then begin
        Bytes.blit q.buf q.start q.buf 0 q.len;
        q.start <- 0
      end
      else begin
        let rec fit c = if c >= q.len + extra then c else fit (2 * c) in
        let nb = Bytes.create (fit (max cap 1024)) in
        Bytes.blit q.buf q.start nb 0 q.len;
        q.buf <- nb;
        q.start <- 0
      end

  (* A queue that ballooned during a burst must not pin the burst-sized
     allocation forever: five nodes timeshare one machine, and the
     steady-state footprint should reflect steady-state backlog.  Once
     drained, anything bigger than this falls back to it. *)
  let rest_cap = 64 * 1024

  let consume q k =
    q.start <- q.start + k;
    q.len <- q.len - k;
    if q.len = 0 then begin
      q.start <- 0;
      if Bytes.length q.buf > rest_cap then q.buf <- Bytes.create rest_cap
    end

  let clear q =
    q.start <- 0;
    q.len <- 0;
    if Bytes.length q.buf > rest_cap then q.buf <- Bytes.create rest_cap

  let capacity q = Bytes.length q.buf
  let length q = q.len

  let add_buffer q b =
    let blen = Buffer.length b in
    reserve q blen;
    Buffer.blit b 0 q.buf (q.start + q.len) blen;
    q.len <- q.len + blen
end

type peer = { mutable out_fd : Unix.file_descr option; out : Bq.t }

type conn = { fd : Unix.file_descr; in_q : Bq.t }

type t = {
  engine : Engine.t;
  clock : Clock.t;
  self : int;
  n : int;
  listen : Unix.file_descr;
  peers : peer array;
  scratch : Buffer.t;  (* per-frame encode staging, reused across emits *)
  mutable conns : conn list;
  mutable transport : Transport.t option;
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable writes_out : int;
  mutable frames_in : int;
  mutable bytes_in : int;
  mutable decode_errors : int;
}

let transport t = Option.get t.transport

let close_peer peer =
  match peer.out_fd with
  | None -> ()
  | Some fd ->
      peer.out_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close_conn t conn =
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let pending peer = peer.out.Bq.len

let high_water = 256 * 1024

(* Non-blocking drain of one peer's outbound queue.  Frames accumulate
   between select iterations ([emit] no longer flushes), so one write
   here carries every frame queued since the last drain — straight from
   the queue's storage, no copy. *)
let flush_peer t peer =
  match peer.out_fd with
  | None -> Bq.clear peer.out
  | Some fd -> (
      let q = peer.out in
      if q.Bq.len > 0 then
        match Unix.write fd q.Bq.buf q.Bq.start q.Bq.len with
        | written ->
            t.writes_out <- t.writes_out + 1;
            Bq.consume q written
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
            close_peer peer)

let emit t (msg : Message.t) =
  if msg.Message.dst >= 0 && msg.Message.dst < t.n && msg.Message.dst <> t.self then begin
    let peer = t.peers.(msg.Message.dst) in
    if peer.out_fd <> None then begin
      Buffer.clear t.scratch;
      ignore
        (Codec.encode_frame t.scratch ~src:msg.Message.src ~dst:msg.Message.dst
           ~layer:(Layer.name msg.Message.layer) msg.Message.payload
          : int);
      t.frames_out <- t.frames_out + 1;
      t.bytes_out <- t.bytes_out + Buffer.length t.scratch;
      Bq.add_buffer peer.out t.scratch;
      (* Coalesce: leave the frame queued for the next loop-iteration
         drain unless the queue has grown past the high-water mark
         (bounds memory if a peer stalls mid-burst). *)
      if pending peer > high_water then flush_peer t peer
    end
  end

(* Decode every complete frame queued on [conn] and re-enter it through
   the transport; a malformed frame kills the connection (a corrupted TCP
   byte stream cannot be resynchronized).  Decoding reads the queue's
   storage in place — [Bytes.unsafe_to_string] is sound here because the
   codec retains no reference into its input past the call — and only
   [limit] (the logical tail) bounds parsing, never the physical buffer,
   which holds stale bytes beyond it. *)
let drain_input t conn =
  let q = conn.in_q in
  let buf = Bytes.unsafe_to_string q.Bq.buf in
  let limit = q.Bq.start + q.Bq.len in
  let pos = ref q.Bq.start in
  let alive = ref true in
  while
    !alive
    && limit - !pos >= Codec.header_bytes
    &&
    match Codec.decode_header ~pos:!pos buf with
    | Error e ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame header error: %s\n%!" t.self e;
        close_conn t conn;
        alive := false;
        false
    | Ok h when h.Codec.h_body_len > 16 * 1024 * 1024 ->
        t.decode_errors <- t.decode_errors + 1;
        Printf.eprintf "[node %d] frame body length %d exceeds cap\n%!" t.self
          h.Codec.h_body_len;
        close_conn t conn;
        alive := false;
        false
    | Ok h ->
        if limit - !pos - Codec.header_bytes < h.Codec.h_body_len then false
        else begin
          (match Codec.decode_body ~pos:(!pos + Codec.header_bytes) buf h with
          | Error e ->
              t.decode_errors <- t.decode_errors + 1;
              Printf.eprintf "[node %d] frame body error: %s\n%!" t.self e;
              close_conn t conn;
              alive := false
          | Ok payload ->
              t.frames_in <- t.frames_in + 1;
              t.bytes_in <- t.bytes_in + Codec.header_bytes + h.Codec.h_body_len;
              (* Re-pin the virtual clock per frame: a descheduled process
                 drains a multi-second backlog in one burst, and stamping
                 every resulting trace event with the loop iteration's
                 start time makes decisions appear to precede the
                 broadcasts they order (merged-trace causality breaks). *)
              Engine.advance t.engine ~upto:(Clock.now t.clock);
              let msg =
                {
                  Message.src = h.Codec.h_src;
                  dst = h.Codec.h_dst;
                  layer = Layer.unregistered h.Codec.h_layer;
                  payload;
                  body_bytes = h.Codec.h_body_len;
                  sent_at = Engine.now t.engine;
                }
              in
              Transport.inject (transport t) msg);
          !alive && (pos := !pos + Codec.header_bytes + h.Codec.h_body_len;
                     true)
        end
  do
    ()
  done;
  if !alive then Bq.consume q (!pos - q.Bq.start)

let read_size = 65536

(* Read straight into the queue's tail — no intermediate chunk, no
   concatenation; whatever a burst leaves unparsed just stays queued. *)
let handle_readable t conn =
  let q = conn.in_q in
  Bq.reserve q read_size;
  let tail = q.Bq.start + q.Bq.len in
  match Unix.read conn.fd q.Bq.buf tail (Bytes.length q.Bq.buf - tail) with
  | 0 -> close_conn t conn
  | nread ->
      q.Bq.len <- q.Bq.len + nread;
      drain_input t conn
  | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> close_conn t conn

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        t.conns <- { fd; in_q = Bq.create read_size } :: t.conns;
        go ()
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) -> ()
  in
  go ()

let dial addr ~attempts ~retry_delay =
  let rec go k =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        Unix.set_nonblock fd;
        Some fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if k + 1 >= attempts then (
          ignore e;
          None)
        else begin
          Unix.sleepf retry_delay;
          go (k + 1)
        end
  in
  go 0

let create ~engine ~clock ~self ~listen ~peer_addrs () =
  let n = Engine.n engine in
  if Array.length peer_addrs <> n then
    invalid_arg "Socket_transport.create: peer_addrs size mismatch";
  (* A peer that exits early (deadline, plan-scheduled crash) closes its
     sockets while we may still be writing; without this the kernel kills
     us with SIGPIPE before [flush_peer]'s EPIPE handler can run. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Unix.set_nonblock listen;
  let t =
    {
      engine;
      clock;
      self;
      n;
      listen;
      peers = Array.init n (fun _ -> { out_fd = None; out = Bq.create 4096 });
      scratch = Buffer.create 512;
      conns = [];
      transport = None;
      frames_out = 0;
      bytes_out = 0;
      writes_out = 0;
      frames_in = 0;
      bytes_in = 0;
      decode_errors = 0;
    }
  in
  let transport = Transport.create_ext engine ~self ~emit:(fun msg -> emit t msg) () in
  (* Before any middleware exists: interposers capture the transport's env
     at install time, so the wall-clock variant must already be in place. *)
  Transport.set_env transport (Clock.env clock engine);
  t.transport <- Some transport;
  for p = 0 to n - 1 do
    if p <> self then
      (* The cluster parent pre-binds every listener before forking, so a
         dial normally succeeds on the first try; standalone nodes may
         start in any order and get the retry loop. *)
      t.peers.(p).out_fd <- dial peer_addrs.(p) ~attempts:100 ~retry_delay:0.05
  done;
  t

let connected t =
  let up = ref 0 in
  Array.iteri (fun p peer -> if p <> t.self && peer.out_fd <> None then incr up) t.peers;
  !up

(* The live event loop: execute due engine events, then block in select
   until the next timer, inbound traffic, or writability of a clogged
   peer.  The engine's horizon is pinned once to [deadline] so that
   self-rearming timer loops (heartbeats) retire by themselves. *)
let run t ~deadline ~stop =
  Engine.set_horizon t.engine (Some deadline);
  let stopped_at = ref None in
  (* After [stop] turns true the node lingers for the full grace window —
     draining its output AND processing input.  Exiting as soon as the
     output is flushed would close the sockets while peers' last decide
     floods for trailing pipelined instances are still in flight; the
     linger absorbs them, so a cleanly-exited node has seen every decision
     reached before its barrier. *)
  let grace = 250.0 (* ms *) in
  let finished now =
    now >= deadline
    ||
    match !stopped_at with
    | None ->
        if stop () then stopped_at := Some now;
        false
    | Some t0 -> t0 +. grace <= now
  in
  let rec loop () =
    let now = Clock.now t.clock in
    Engine.run_due t.engine ~upto:now;
    Array.iter (flush_peer t) t.peers;
    let now = Clock.now t.clock in
    if not (finished now) then begin
      let horizon = match !stopped_at with Some t0 -> Float.min deadline (t0 +. grace) | None -> deadline in
      let next_timer =
        match Engine.next_due t.engine with
        | Some at -> Float.max 0.0 (at -. now)
        | None -> 50.0
      in
      let timeout_ms = Float.min 50.0 (Float.min next_timer (Float.max 0.0 (horizon -. now))) in
      let rfds = t.listen :: List.map (fun c -> c.fd) t.conns in
      let wfds =
        Array.to_list t.peers
        |> List.filter_map (fun p -> if pending p > 0 then p.out_fd else None)
      in
      (match Unix.select rfds wfds [] (timeout_ms /. 1000.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.memq t.listen readable then accept_ready t;
          List.iter
            (fun conn -> if List.memq conn.fd readable then handle_readable t conn)
            t.conns;
          Array.iter
            (fun peer ->
              match peer.out_fd with
              | Some fd when List.memq fd writable -> flush_peer t peer
              | _ -> ())
            t.peers);
      loop ()
    end
  in
  loop ()

let close t =
  Array.iter close_peer t.peers;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  try Unix.close t.listen with Unix.Unix_error _ -> ()

type stats = {
  frames_out : int;
  bytes_out : int;
  writes_out : int;
  frames_in : int;
  bytes_in : int;
  decode_errors : int;
}

let stats (t : t) =
  {
    frames_out = t.frames_out;
    bytes_out = t.bytes_out;
    writes_out = t.writes_out;
    frames_in = t.frames_in;
    bytes_in = t.bytes_in;
    decode_errors = t.decode_errors;
  }
