module Trace = Ics_sim.Trace
module Msg_id = Ics_net.Msg_id

(* One event per line: time, pid, a short tag, then tag-specific fields.
   The format is line-oriented and append-only so a node that dies mid-run
   leaves a readable prefix; the parser rejects, rather than guesses at,
   anything malformed. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let id_str (id : Msg_id.t) = Printf.sprintf "%d:%d" id.Msg_id.origin id.Msg_id.seq

let id_of_str s =
  match String.index_opt s ':' with
  | None -> fail "bad msg id %S" s
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some origin, Some seq when origin >= 0 && seq >= 0 -> Msg_id.make ~origin ~seq
      | _ -> fail "bad msg id %S" s)

let ids_str = function
  | [] -> "-"
  | ids -> String.concat "," (List.map id_str ids)

let ids_of_str = function
  | "-" -> []
  | s -> List.map id_of_str (String.split_on_char ',' s)

let kind_str (kind : Trace.kind) =
  match kind with
  | Trace.Crash -> "C"
  | Trace.Exit -> "EX"
  | Trace.Abroadcast id -> "AB " ^ id_str id
  | Trace.Adeliver id -> "AD " ^ id_str id
  | Trace.Rbroadcast id -> "RB " ^ id_str id
  | Trace.Rdeliver id -> "RD " ^ id_str id
  | Trace.Urb_broadcast id -> "UB " ^ id_str id
  | Trace.Urb_deliver id -> "UD " ^ id_str id
  | Trace.Propose (k, ids) -> Printf.sprintf "P %d %s" k (ids_str ids)
  | Trace.Decide (k, ids) -> Printf.sprintf "D %d %s" k (ids_str ids)
  | Trace.Suspect p -> Printf.sprintf "S %d" p
  | Trace.Trust p -> Printf.sprintf "T %d" p
  | Trace.Net_drop p -> Printf.sprintf "ND %d" p
  | Trace.Net_dup p -> Printf.sprintf "NU %d" p
  | Trace.Net_delay p -> Printf.sprintf "NL %d" p
  | Trace.Partition_start s -> Printf.sprintf "PS %S" s
  | Trace.Partition_heal s -> Printf.sprintf "PH %S" s
  | Trace.App_submit (c, r) -> Printf.sprintf "AS %d %d" c r
  | Trace.App_applied (c, r) -> Printf.sprintf "AA %d %d" c r
  | Trace.App_hash (cur, h) -> Printf.sprintf "AH %d %Ld" cur h
  | Trace.App_violation s -> Printf.sprintf "AV %S" s
  | Trace.Note s -> Printf.sprintf "N %S" s

let write_event oc (e : Trace.event) =
  Printf.fprintf oc "%.6f %d %s\n" e.Trace.time e.Trace.pid (kind_str e.Trace.kind)

let write oc trace ~keep = Trace.iter trace (fun e -> if keep e then write_event oc e)

let save path trace ~keep =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc trace ~keep)

let int_field s =
  match int_of_string_opt s with Some v -> v | None -> fail "bad int %S" s

let pid_field s =
  let p = int_field s in
  if p < 0 then fail "negative pid %d" p;
  p

let kind_of_fields tag args line =
  match (tag, args) with
  | "C", [] -> Trace.Crash
  | "EX", [] -> Trace.Exit
  | "AB", [ id ] -> Trace.Abroadcast (id_of_str id)
  | "AD", [ id ] -> Trace.Adeliver (id_of_str id)
  | "RB", [ id ] -> Trace.Rbroadcast (id_of_str id)
  | "RD", [ id ] -> Trace.Rdeliver (id_of_str id)
  | "UB", [ id ] -> Trace.Urb_broadcast (id_of_str id)
  | "UD", [ id ] -> Trace.Urb_deliver (id_of_str id)
  | "P", [ k; ids ] -> Trace.Propose (int_field k, ids_of_str ids)
  | "D", [ k; ids ] -> Trace.Decide (int_field k, ids_of_str ids)
  | "S", [ p ] -> Trace.Suspect (pid_field p)
  | "T", [ p ] -> Trace.Trust (pid_field p)
  | "ND", [ p ] -> Trace.Net_drop (pid_field p)
  | "NU", [ p ] -> Trace.Net_dup (pid_field p)
  | "NL", [ p ] -> Trace.Net_delay (pid_field p)
  | "AS", [ c; r ] -> Trace.App_submit (int_field c, int_field r)
  | "AA", [ c; r ] -> Trace.App_applied (int_field c, int_field r)
  | "AH", [ cur; h ] -> (
      match Int64.of_string_opt h with
      | Some h -> Trace.App_hash (int_field cur, h)
      | None -> fail "bad hash %S" h)
  | "AV", _ :: _ -> Trace.App_violation (Scanf.sscanf (String.concat " " args) "%S" Fun.id)
  | "PS", _ :: _ -> Trace.Partition_start (Scanf.sscanf (String.concat " " args) "%S" Fun.id)
  | "PH", _ :: _ -> Trace.Partition_heal (Scanf.sscanf (String.concat " " args) "%S" Fun.id)
  | "N", _ :: _ -> Trace.Note (Scanf.sscanf (String.concat " " args) "%S" Fun.id)
  | _ -> fail "unparseable event line %S" line

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | time :: pid :: tag :: args -> (
      match float_of_string_opt time with
      | None -> fail "bad time %S" time
      | Some time ->
          let pid = pid_field pid in
          let kind = try kind_of_fields tag args line with Scanf.Scan_failure _ | End_of_file -> fail "unparseable event line %S" line in
          { Trace.time; pid; kind })
  | _ -> fail "unparseable event line %S" line

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc
        | line -> go (parse_line line :: acc)
      in
      go [])

(* Counter files: one "key value" line per counter.  A cluster child
   reports its fault/retransmission counters this way; the parent sums
   the per-node files key-wise (cross-backend parity compares the sums
   against one whole-cluster simulation). *)

let save_kv path kvs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun (k, v) -> Printf.fprintf oc "%s %d\n" k v) kvs)

let load_kv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc
        | line -> (
            match String.rindex_opt line ' ' with
            | None -> fail "unparseable counter line %S" line
            | Some i -> (
                let key = String.sub line 0 i in
                let v = String.sub line (i + 1) (String.length line - i - 1) in
                match int_of_string_opt v with
                | Some v when key <> "" -> go ((key, v) :: acc)
                | _ -> fail "unparseable counter line %S" line))
      in
      go [])

let sum_kv kv_lists =
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt totals k with
         | Some prev -> Hashtbl.replace totals k (prev + v)
         | None ->
             order := k :: !order;
             Hashtbl.add totals k v))
    kv_lists;
  List.rev_map (fun k -> (k, Hashtbl.find totals k)) !order

let merge event_lists =
  (* Stable sort keeps each node's own (already chronological) order for
     equal timestamps; cross-node ties break on pid, so the merged trace
     (and every fingerprint computed over it) is independent of the order
     the per-node logs were handed in. *)
  let all =
    List.stable_sort
      (fun (a : Trace.event) b ->
        match Float.compare a.Trace.time b.Trace.time with
        | 0 -> Int.compare a.Trace.pid b.Trace.pid
        | c -> c)
      (List.concat event_lists)
  in
  let t = Trace.create () in
  List.iter (fun (e : Trace.event) -> Trace.record t ~time:e.Trace.time ~pid:e.Trace.pid e.Trace.kind) all;
  t
