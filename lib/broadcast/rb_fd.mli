(** Reliable broadcast with failure-detector-triggered relay — O(n)
    messages per broadcast in good runs (§4.4, Figure 6).

    The origin sends [m] to all other processes; receivers deliver
    immediately and {e remember} [m].  A receiver relays the messages it
    holds from origin [q] only when its failure detector suspects [q]
    (each message is relayed at most once per process).  In failure- and
    suspicion-free runs each broadcast therefore costs exactly [n-1]
    messages; agreement under crashes is restored by the suspicion relays,
    because strong completeness guarantees every crashed origin is
    eventually suspected by every correct process.

    A false suspicion merely causes redundant relays (duplicates are
    filtered by first-receipt delivery), never a safety violation. *)

val layer : string
(** ["rb"] — same layer name as {!Rb_flood}; a stack installs one or the
    other, never both. *)

val create :
  Ics_net.Transport.t ->
  fd:Ics_fd.Failure_detector.t ->
  deliver:Broadcast_intf.deliver ->
  Broadcast_intf.handle

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
