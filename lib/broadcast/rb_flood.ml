module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

type Message.payload += Data of App_msg.t

let layer = "rb"

let register_codec () =
  let module Codec = Ics_codec.Codec in
  Codec.register ~tag:0x10 ~name:"rb.data"
    ~fits:(function Data _ -> true | _ -> false)
    ~size:(function Data m -> App_msg.rb_body_bytes m | _ -> assert false)
    ~encode_into:(fun w -> function Data m -> Codec.enc_app_msg w m | _ -> assert false)
    ~dec:(fun r -> Data (Codec.dec_app_msg r))
    ~gen:(fun rng -> Data (Codec.gen_app_msg rng))

type proc_state = { delivered : unit Msg_id.Table.t }

let create transport ~deliver =
  let engine = Transport.engine transport in
  let layer = Transport.intern transport layer in
  let n = Transport.n transport in
  let states = Array.init n (fun _ -> { delivered = Msg_id.Table.create 64 }) in
  let holds p id = Msg_id.Table.mem states.(p).delivered id in
  let deliver_local p (m : App_msg.t) =
    let st = states.(p) in
    if not (Msg_id.Table.mem st.delivered m.id) then begin
      Msg_id.Table.add st.delivered m.id ();
      Engine.record engine p (Trace.Rdeliver m.id);
      deliver p m
    end
  in
  let relay p (m : App_msg.t) =
    let origin = App_msg.origin m in
    let dsts = List.filter (fun q -> not (Pid.equal q origin)) (Pid.others ~n p) in
    Transport.multicast transport ~src:p ~dsts ~layer ~body_bytes:(App_msg.rb_body_bytes m)
      (Data m)
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Data m ->
              if not (holds p m.App_msg.id) then begin
                relay p m;
                deliver_local p m
              end
          | _ -> ()))
    (Pid.all ~n);
  let broadcast ~src (m : App_msg.t) =
    if Engine.is_alive engine src then begin
      Engine.record engine src (Trace.Rbroadcast m.id);
      Transport.send_to_others transport ~src ~layer ~body_bytes:(App_msg.rb_body_bytes m)
        (Data m);
      deliver_local src m
    end
  in
  { Broadcast_intf.name = "rb-flood(O(n^2))"; broadcast; holds }
