(** Uniform reliable broadcast — the all-ack algorithm the paper benchmarks
    against in §4.4.

    To URB-broadcast [m], the origin sends [m] to all other processes.  On
    first learning of [m] (by receiving its payload), a process acknowledges
    [m]'s identifier to everybody.  A process {e urb-delivers} [m] once it
    holds the payload and has counted acknowledgements from a majority
    [⌈(n+1)/2⌉] of processes — hence a decision to deliver implies at least
    one {e correct} process holds [m], which is what makes agreement
    uniform: even a process that delivers and immediately crashes is
    guaranteed that all correct processes eventually deliver [m] too.

    A process that sees acknowledgements for an identifier whose payload it
    is missing (origin crashed mid-multicast) pulls the payload from an
    acknowledger, then acknowledges in turn — completing agreement without
    shipping payloads inside every ack.

    Cost in good runs: [n-1] payload messages plus [n(n-1)] acks = O(n²)
    messages, and 2 communication steps before delivery — one step more
    than reliable broadcast, which is the latency gap Figures 5–7
    measure.  Tolerates [f < n/2] crashes. *)

val layer : string
(** ["urb"]. *)

val create :
  Ics_net.Transport.t -> deliver:Broadcast_intf.deliver -> Broadcast_intf.handle
(** [holds] on the returned handle reports payload possession (not
    delivery), which is what an [rcv]-style predicate needs. *)

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
