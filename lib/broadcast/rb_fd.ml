module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Failure_detector = Ics_fd.Failure_detector

type Message.payload += Data of App_msg.t

let layer = "rb"

let register_codec () =
  let module Codec = Ics_codec.Codec in
  Codec.register ~tag:0x12 ~name:"rb-fd.data"
    ~fits:(function Data _ -> true | _ -> false)
    ~size:(function Data m -> App_msg.rb_body_bytes m | _ -> assert false)
    ~encode_into:(fun w -> function Data m -> Codec.enc_app_msg w m | _ -> assert false)
    ~dec:(fun r -> Data (Codec.dec_app_msg r))
    ~gen:(fun rng -> Data (Codec.gen_app_msg rng))

type proc_state = {
  delivered : App_msg.t Msg_id.Table.t;  (* id -> message, also the store *)
  relayed : unit Msg_id.Table.t;
  by_origin : (Pid.t, App_msg.t list ref) Hashtbl.t;
}

let create transport ~fd ~deliver =
  let engine = Transport.engine transport in
  let layer = Transport.intern transport layer in
  let n = Transport.n transport in
  let states =
    Array.init n (fun _ ->
        {
          delivered = Msg_id.Table.create 64;
          relayed = Msg_id.Table.create 16;
          by_origin = Hashtbl.create 8;
        })
  in
  let holds p id = Msg_id.Table.mem states.(p).delivered id in
  let remember p (m : App_msg.t) =
    let origin = App_msg.origin m in
    let bucket =
      match Hashtbl.find_opt states.(p).by_origin origin with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add states.(p).by_origin origin b;
          b
    in
    bucket := m :: !bucket
  in
  let deliver_local p (m : App_msg.t) =
    let st = states.(p) in
    if not (Msg_id.Table.mem st.delivered m.id) then begin
      Msg_id.Table.add st.delivered m.id m;
      remember p m;
      Engine.record engine p (Trace.Rdeliver m.id);
      deliver p m
    end
  in
  let relay p (m : App_msg.t) =
    let st = states.(p) in
    if not (Msg_id.Table.mem st.relayed m.id) then begin
      Msg_id.Table.add st.relayed m.id ();
      Transport.send_to_others transport ~src:p ~layer
        ~body_bytes:(App_msg.rb_body_bytes m) (Data m)
    end
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Data m ->
              deliver_local p m;
              (* If the origin is already suspected when its message shows
                 up (e.g. it crashed mid-multicast), relay right away. *)
              if Failure_detector.is_suspected fd ~by:p (App_msg.origin m) then relay p m
          | _ -> ());
      Failure_detector.on_suspect fd ~observer:p (fun suspect ->
          match Hashtbl.find_opt states.(p).by_origin suspect with
          | None -> ()
          | Some bucket -> List.iter (relay p) !bucket))
    (Pid.all ~n);
  let broadcast ~src (m : App_msg.t) =
    if Engine.is_alive engine src then begin
      Engine.record engine src (Trace.Rbroadcast m.id);
      Transport.send_to_others transport ~src ~layer ~body_bytes:(App_msg.rb_body_bytes m)
        (Data m);
      deliver_local src m
    end
  in
  { Broadcast_intf.name = "rb-fd(O(n))"; broadcast; holds }
