(** Reliable broadcast by flooding — the O(n²) algorithm of Chandra &
    Toueg [2].

    To R-broadcast [m], the origin sends [m] to all other processes and
    delivers it locally.  On the first receipt of [m], a process relays it
    to every process other than itself and the origin, then delivers.  Each
    broadcast thus costs [(n-1) + (n-1)(n-2) = O(n²)] messages but a single
    communication step of delivery latency in good runs.

    Properties (all proved by the relay-on-first-receipt structure, assuming
    reliable channels and crash-stop faults): Validity, Uniform integrity,
    and Agreement — if a {e correct} process delivers [m], every correct
    process eventually delivers [m].  Note the agreement is {e not} uniform:
    a process that delivers [m] and crashes before relaying may be the only
    one that ever saw [m].  That gap is precisely what breaks atomic
    broadcast when consensus runs on raw identifiers (§2.2). *)

val layer : string
(** Transport layer name, ["rb"]. *)

val create :
  Ics_net.Transport.t -> deliver:Broadcast_intf.deliver -> Broadcast_intf.handle
(** Installs handlers for every process.  [deliver] is called exactly once
    per (alive process, message), in a zero-time event after receipt. *)

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
