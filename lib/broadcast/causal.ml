module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

type Message.payload += Data of App_msg.t * int array  (* message + sender VC *)

let layer = "cb"

let vc_bytes n = 4 * n

type proc_state = {
  vc : int array;  (* vc.(q) = number of q's messages delivered here *)
  mutable pending : (App_msg.t * int array) list;
  delivered : unit Msg_id.Table.t;
  relayed : unit Msg_id.Table.t;
}

let create transport ~deliver =
  let engine = Transport.engine transport in
  let layer = Transport.intern transport layer in
  let n = Transport.n transport in
  let states =
    Array.init n (fun _ ->
        {
          vc = Array.make n 0;
          pending = [];
          delivered = Msg_id.Table.create 64;
          relayed = Msg_id.Table.create 64;
        })
  in
  let holds p id = Msg_id.Table.mem states.(p).delivered id in
  let body_bytes m = App_msg.rb_body_bytes m + vc_bytes n in
  let deliverable st (m : App_msg.t) (vc : int array) =
    let origin = App_msg.origin m in
    let ok = ref (vc.(origin) = st.vc.(origin) + 1) in
    Array.iteri (fun i v -> if i <> origin && v > st.vc.(i) then ok := false) vc;
    !ok
  in
  let rec try_deliver p =
    let st = states.(p) in
    match List.find_opt (fun (m, vc) -> deliverable st m vc) st.pending with
    | None -> ()
    | Some ((m, vc) as entry) ->
        st.pending <- List.filter (fun e -> e != entry) st.pending;
        ignore vc;
        Msg_id.Table.add st.delivered m.App_msg.id ();
        st.vc.(App_msg.origin m) <- st.vc.(App_msg.origin m) + 1;
        Engine.record engine p (Trace.Rdeliver m.App_msg.id);
        deliver p m;
        try_deliver p
  in
  let accept p (m : App_msg.t) (vc : int array) ~relay_from =
    let st = states.(p) in
    if
      (not (Msg_id.Table.mem st.delivered m.id))
      && not (List.exists (fun (m', _) -> Msg_id.equal m'.App_msg.id m.id) st.pending)
    then begin
      (* Relay once (flood), then buffer until causally deliverable. *)
      if not (Msg_id.Table.mem st.relayed m.id) then begin
        Msg_id.Table.add st.relayed m.id ();
        let dsts =
          List.filter
            (fun q ->
              (not (Pid.equal q (App_msg.origin m)))
              && match relay_from with Some s -> not (Pid.equal q s) | None -> true)
            (Pid.others ~n p)
        in
        Transport.multicast transport ~src:p ~dsts ~layer ~body_bytes:(body_bytes m)
          (Data (m, vc))
      end;
      st.pending <- (m, vc) :: st.pending;
      try_deliver p
    end
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Data (m, vc) -> accept p m vc ~relay_from:(Some msg.Message.src)
          | _ -> ()))
    (Pid.all ~n);
  let broadcast ~src (m : App_msg.t) =
    if Engine.is_alive engine src then begin
      let st = states.(src) in
      (* The sender's VC stamped with its own next slot. *)
      let vc = Array.copy st.vc in
      vc.(src) <- vc.(src) + 1;
      Engine.record engine src (Trace.Rbroadcast m.id);
      Transport.send_to_others transport ~src ~layer ~body_bytes:(body_bytes m)
        (Data (m, vc));
      (* Local delivery is immediate: nothing can causally precede a
         message at its own origin that the origin has not delivered. *)
      Msg_id.Table.add st.delivered m.id ();
      Msg_id.Table.add st.relayed m.id ();
      st.vc.(src) <- st.vc.(src) + 1;
      Engine.record engine src (Trace.Rdeliver m.id);
      deliver src m
    end
  in
  { Broadcast_intf.name = "causal(O(n^2))"; broadcast; holds }
