module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Wire = Ics_net.Wire

type Message.payload +=
  | Data of App_msg.t
  | Ack of Msg_id.t
  | Pull of Msg_id.t

let layer = "urb"

let register_codec () =
  let module Codec = Ics_codec.Codec in
  Codec.register ~tag:0x18 ~name:"urb.data"
    ~fits:(function Data _ -> true | _ -> false)
    ~size:(function Data m -> App_msg.rb_body_bytes m | _ -> assert false)
    ~encode_into:(fun w -> function Data m -> Codec.enc_app_msg w m | _ -> assert false)
    ~dec:(fun r -> Data (Codec.dec_app_msg r))
    ~gen:(fun rng -> Data (Codec.gen_app_msg rng));
  Codec.register ~tag:0x19 ~name:"urb.ack"
    ~fits:(function Ack _ -> true | _ -> false)
    ~size:(fun _ -> Wire.id_only_bytes)
    ~encode_into:(fun w -> function Ack id -> Codec.enc_msg_id w id | _ -> assert false)
    ~dec:(fun r -> Ack (Codec.dec_msg_id r))
    ~gen:(fun rng -> Ack (Codec.gen_msg_id rng));
  Codec.register ~tag:0x1A ~name:"urb.pull"
    ~fits:(function Pull _ -> true | _ -> false)
    ~size:(fun _ -> Wire.id_only_bytes)
    ~encode_into:(fun w -> function Pull id -> Codec.enc_msg_id w id | _ -> assert false)
    ~dec:(fun r -> Pull (Codec.dec_msg_id r))
    ~gen:(fun rng -> Pull (Codec.gen_msg_id rng))

type entry = {
  mutable payload : App_msg.t option;
  mutable ackers : Pid.t list;  (* distinct processes whose ack we counted *)
  mutable acked : bool;  (* did we ack ourselves *)
  mutable pulled : bool;  (* did we already issue a pull *)
  mutable delivered : bool;
}

type proc_state = { entries : entry Msg_id.Table.t }

let create transport ~deliver =
  let engine = Transport.engine transport in
  let layer = Transport.intern transport layer in
  let n = Transport.n transport in
  let majority = (n + 2) / 2 in
  (* ⌈(n+1)/2⌉ *)
  let states = Array.init n (fun _ -> { entries = Msg_id.Table.create 64 }) in
  let entry p id =
    match Msg_id.Table.find_opt states.(p).entries id with
    | Some e -> e
    | None ->
        let e =
          { payload = None; ackers = []; acked = false; pulled = false; delivered = false }
        in
        Msg_id.Table.add states.(p).entries id e;
        e
  in
  let holds p id =
    match Msg_id.Table.find_opt states.(p).entries id with
    | Some { payload = Some _; _ } -> true
    | _ -> false
  in
  let try_deliver p id e =
    match e.payload with
    | Some m when (not e.delivered) && List.length e.ackers >= majority ->
        e.delivered <- true;
        Engine.record engine p (Trace.Urb_deliver id);
        deliver p m
    | _ -> ()
  in
  let count_ack p id e q =
    if not (List.exists (Pid.equal q) e.ackers) then begin
      e.ackers <- q :: e.ackers;
      try_deliver p id e
    end
  in
  let ack_out p id e =
    if not e.acked then begin
      e.acked <- true;
      Transport.send_to_others transport ~src:p ~layer ~body_bytes:Wire.id_only_bytes (Ack id);
      count_ack p id e p
    end
  in
  let store p (m : App_msg.t) =
    let e = entry p m.id in
    if e.payload = None then begin
      e.payload <- Some m;
      ack_out p m.id e
    end
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Data m -> store p m
          | Ack id ->
              let e = entry p id in
              let fresh = not (List.exists (Pid.equal msg.Message.src) e.ackers) in
              count_ack p id e msg.Message.src;
              (* Missing payload but the acker has it: fetch.  Pulling from
                 every distinct acker (at most n-1 of them) keeps liveness
                 even if some pull targets crash before responding — the
                 majority rule guarantees a correct acker exists once
                 delivery is possible anywhere. *)
              if fresh && e.payload = None then begin
                e.pulled <- true;
                Transport.send transport ~src:p ~dst:msg.Message.src ~layer
                  ~body_bytes:Wire.id_only_bytes (Pull id)
              end
          | Pull id -> (
              match Msg_id.Table.find_opt states.(p).entries id with
              | Some { payload = Some m; _ } ->
                  Transport.send transport ~src:p ~dst:msg.Message.src ~layer
                    ~body_bytes:(App_msg.rb_body_bytes m) (Data m)
              | _ -> ())
          | _ -> ()))
    (Pid.all ~n);
  let broadcast ~src (m : App_msg.t) =
    if Engine.is_alive engine src then begin
      Engine.record engine src (Trace.Urb_broadcast m.id);
      Transport.send_to_others transport ~src ~layer ~body_bytes:(App_msg.rb_body_bytes m)
        (Data m);
      store src m
    end
  in
  { Broadcast_intf.name = "urb(O(n^2))"; broadcast; holds }
