(** Reliable broadcast by ring (chain) dissemination — the payload plane
    of Ring Paxos, adapted to the indirect-consensus split.

    To R-broadcast [m], the origin delivers locally and sends a [Pass]
    batch to its successor [(origin+1) mod n]; each process delivers the
    batch's fresh messages and forwards it one hop further until the
    batch has travelled [n-1] hops.  Each broadcast thus costs exactly
    [n-1] unicasts — O(n) against flood's O(n²) — and spreads the send
    load evenly around the ring instead of concentrating it on the
    origin's (or a coordinator's) NIC.  The price is latency (up to
    [n-1] sequential hops to the last process) and fault coverage: a
    crashed process breaks the chain for batches that have not passed it
    yet, and the chain is not repaired from the failure detector, so
    Agreement holds only in crash-free runs.  Use it for saturation
    benchmarking; keep flood or fd-relay wherever faults are in play
    (the chaos sweeps do). *)

val layer : string
(** Transport layer name, ["rb"] — ring traffic shares the rb wire id. *)

val create :
  Ics_net.Transport.t -> deliver:Broadcast_intf.deliver -> Broadcast_intf.handle
(** Installs handlers for every process.  [deliver] is called exactly once
    per (alive process, message), in a zero-time event after receipt. *)

val register_codec : unit -> unit
(** Register the [Pass] batch constructor (tag 0x14, ["rb.ring"]) with
    {!Ics_codec.Codec} (idempotent); {!Ics_core.Codecs.ensure} calls it. *)
