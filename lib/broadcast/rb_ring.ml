(* Ring (chain) payload dissemination, after Ring Paxos: the origin hands
   a payload batch to its successor only, and each process forwards it
   one hop further until every process has seen it — (n-1) unicasts per
   broadcast instead of flood's O(n²), and no single NIC carries more
   than its share.  This is a performance substrate for fault-free
   saturation runs: a crashed process breaks the chain for payloads that
   have not passed it yet, and repairing the ring from the failure
   detector is future work, so chaos sweeps keep flood/fd-relay. *)

module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Wire = Ics_net.Wire

type Message.payload += Pass of { hops : int; msgs : App_msg.t list }

let layer = "rb"

(* tag byte + u16 hops + u16 count, then each message without its own
   tag byte (rb_body_bytes includes one). *)
let batch_bytes msgs =
  Wire.tag_bytes + 4
  + List.fold_left
      (fun acc m -> acc + (App_msg.rb_body_bytes m - Wire.tag_bytes))
      0 msgs

let register_codec () =
  let module Codec = Ics_codec.Codec in
  let module Prim = Ics_codec.Prim in
  let module Rng = Ics_prelude.Rng in
  Codec.register ~tag:0x14 ~name:"rb.ring"
    ~fits:(function Pass _ -> true | _ -> false)
    ~size:(function Pass { msgs; _ } -> batch_bytes msgs | _ -> assert false)
    ~encode_into:(fun w -> function
      | Pass { hops; msgs } ->
          Prim.u16 w hops;
          Prim.u16 w (List.length msgs);
          List.iter (Codec.enc_app_msg w) msgs
      | _ -> assert false)
    ~dec:(fun r ->
      let hops = Prim.r_u16 r in
      let count = Prim.r_u16 r in
      (* explicit recursion: the reader is stateful, so decode order
         must be the encode order *)
      let rec read k acc =
        if k = 0 then List.rev acc else read (k - 1) (Codec.dec_app_msg r :: acc)
      in
      Pass { hops; msgs = read count [] })
    ~gen:(fun rng ->
      let hops = Rng.int rng 16 in
      let count = Rng.int rng 4 in
      let rec draw k acc =
        if k = 0 then List.rev acc else draw (k - 1) (Codec.gen_app_msg rng :: acc)
      in
      Pass { hops; msgs = draw count [] })

type proc_state = { delivered : unit Msg_id.Table.t }

let create transport ~deliver =
  let engine = Transport.engine transport in
  let layer = Transport.intern transport layer in
  let n = Transport.n transport in
  let states = Array.init n (fun _ -> { delivered = Msg_id.Table.create 64 }) in
  let holds p id = Msg_id.Table.mem states.(p).delivered id in
  let succ p = (p + 1) mod n in
  let deliver_local p (m : App_msg.t) =
    let st = states.(p) in
    if Msg_id.Table.mem st.delivered m.id then false
    else begin
      Msg_id.Table.add st.delivered m.id ();
      Engine.record engine p (Trace.Rdeliver m.id);
      deliver p m;
      true
    end
  in
  let forward p ~hops msgs =
    if hops < n - 1 then
      Transport.send transport ~src:p ~dst:(succ p) ~layer
        ~body_bytes:(batch_bytes msgs)
        (Pass { hops = hops + 1; msgs })
  in
  List.iter
    (fun p ->
      Transport.register transport p ~layer (fun msg ->
          match msg.Message.payload with
          | Pass { hops; msgs } ->
              let fresh =
                List.fold_left (fun any m -> deliver_local p m || any) false msgs
              in
              (* A wholly stale batch is a retransmission duplicate; the
                 first copy already went around, so don't loop it again. *)
              if fresh then forward p ~hops msgs
          | _ -> ()))
    (Pid.all ~n);
  let broadcast ~src (m : App_msg.t) =
    if Engine.is_alive engine src then begin
      Engine.record engine src (Trace.Rbroadcast m.id);
      ignore (deliver_local src m : bool);
      if n > 1 then
        Transport.send transport ~src ~dst:(succ src) ~layer
          ~body_bytes:(batch_bytes [ m ])
          (Pass { hops = 1; msgs = [ m ] })
    end
  in
  { Broadcast_intf.name = "rb-ring(O(n))"; broadcast; holds }
