module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Rng = Ics_prelude.Rng
module Model = Ics_net.Model
module Message = Ics_net.Message
module Env = Ics_net.Env

type window = { from_t : Time.t; until_t : Time.t }

let always = { from_t = Time.zero; until_t = infinity }
let window ~from_t ~until_t = { from_t; until_t }
let in_window w now = now >= w.from_t && now < w.until_t

type link = {
  l_src : Pid.t option;
  l_dst : Pid.t option;
  l_layer : string option;
}

let any_link = { l_src = None; l_dst = None; l_layer = None }

let link_matches l (msg : Message.t) =
  (match l.l_src with None -> true | Some p -> p = msg.src)
  && (match l.l_dst with None -> true | Some p -> p = msg.dst)
  && match l.l_layer with
     | None -> true
     | Some name -> String.equal name (Message.layer_name msg)

type clause =
  | Drop of { link : link; prob : float; window : window }
  | Duplicate of { link : link; prob : float; window : window }
  | Delay of { link : link; prob : float; max_extra : Time.t; window : window }
  | Slow of { link : link; extra : Time.t; window : window }
  | Partition of { groups : Pid.t list list; window : window }
  | Isolate of { pid : Pid.t; inbound : bool; outbound : bool; window : window }
  | Crash of { pid : Pid.t; at : Time.t }

type plan = clause list

let pp_window ppf w =
  if w.until_t = infinity then
    if w.from_t = Time.zero then Format.fprintf ppf "always"
    else Format.fprintf ppf "[%a,inf)" Time.pp w.from_t
  else Format.fprintf ppf "[%a,%a)" Time.pp w.from_t Time.pp w.until_t

let pp_link ppf l =
  let part name = function
    | None -> []
    | Some v -> [ Printf.sprintf "%s=%s" name v ]
  in
  let parts =
    part "src" (Option.map string_of_int l.l_src)
    @ part "dst" (Option.map string_of_int l.l_dst)
    @ part "layer" l.l_layer
  in
  match parts with
  | [] -> Format.fprintf ppf "*"
  | parts -> Format.fprintf ppf "%s" (String.concat "," parts)

let pp_clause ppf = function
  | Drop { link; prob; window } ->
      Format.fprintf ppf "drop(%a, p=%.2f, %a)" pp_link link prob pp_window
        window
  | Duplicate { link; prob; window } ->
      Format.fprintf ppf "dup(%a, p=%.2f, %a)" pp_link link prob pp_window
        window
  | Delay { link; prob; max_extra; window } ->
      Format.fprintf ppf "delay(%a, p=%.2f, max=%a, %a)" pp_link link prob
        Time.pp max_extra pp_window window
  | Slow { link; extra; window } ->
      Format.fprintf ppf "slow(%a, +%a, %a)" pp_link link Time.pp extra
        pp_window window
  | Partition { groups; window } ->
      let group g = "{" ^ String.concat " " (List.map string_of_int g) ^ "}" in
      Format.fprintf ppf "partition(%s, %a)"
        (String.concat "|" (List.map group groups))
        pp_window window
  | Isolate { pid; inbound; outbound; window } ->
      Format.fprintf ppf "isolate(p%d, in=%b, out=%b, %a)" pid inbound outbound
        pp_window window
  | Crash { pid; at } -> Format.fprintf ppf "crash(p%d at %a)" pid Time.pp at

let pp_plan ppf plan =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_clause)
    plan

let plan_to_string plan = Format.asprintf "%a" pp_plan plan

let partition_name groups =
  String.concat "|"
    (List.map
       (fun g -> "{" ^ String.concat " " (List.map string_of_int g) ^ "}")
       groups)

(* A partition cuts (src, dst) iff both appear in listed groups and the
   groups differ; a pid absent from every group is unaffected. *)
let partition_cuts groups ~src ~dst =
  let find p =
    List.find_index (fun g -> List.mem p g) groups
  in
  match (find src, find dst) with
  | Some a, Some b -> a <> b
  | _ -> false

let cut_by_partition plan now (msg : Message.t) =
  List.exists
    (fun clause ->
      match clause with
      | Partition { groups; window } ->
          in_window window now
          && partition_cuts groups ~src:msg.Message.src ~dst:msg.Message.dst
      | Isolate { pid; inbound; outbound; window } ->
          in_window window now
          && ((inbound && msg.Message.dst = pid)
             || (outbound && msg.Message.src = pid))
      | _ -> false)
    plan

(* Evaluate the probabilistic clauses for one message.  Draws come from
   [rng] in fixed plan order and continue even after a drop decision, so
   the stream of draws — hence every later decision — depends only on the
   message sequence, not on earlier outcomes.  [on_delay]/[on_slow] fire
   (mid-iteration, matching the historical accounting order) only when the
   message is not already dropped. *)
let draw ~plan ~rng ~now ~on_delay ~on_slow (msg : Message.t) =
  let dropped = ref false in
  let dup = ref false in
  let extra = ref Time.zero in
  List.iter
    (fun clause ->
      match clause with
      | Drop { link; prob; window } ->
          if in_window window now && link_matches link msg then
            if Rng.float rng 1.0 < prob then dropped := true
      | Duplicate { link; prob; window } ->
          if in_window window now && link_matches link msg then
            if Rng.float rng 1.0 < prob then dup := true
      | Delay { link; prob; max_extra; window } ->
          if in_window window now && link_matches link msg then
            if Rng.float rng 1.0 < prob then begin
              extra := Time.( + ) !extra (Rng.float rng max_extra);
              if not !dropped then on_delay ()
            end
      | Slow { link; extra = e; window } ->
          if in_window window now && link_matches link msg then begin
            extra := Time.( + ) !extra e;
            if not !dropped then on_slow ()
          end
      | Partition _ | Isolate _ | Crash _ -> ())
    plan;
  (!dropped, !dup, !extra)

let shift_window w ~by =
  (* infinity + by = infinity, so open windows stay open. *)
  { from_t = Time.( + ) w.from_t by; until_t = Time.( + ) w.until_t by }

let shift plan ~by =
  if by < 0.0 then invalid_arg "Nemesis.shift: negative offset";
  List.map
    (fun clause ->
      match clause with
      | Drop ({ window; _ } as c) -> Drop { c with window = shift_window window ~by }
      | Duplicate ({ window; _ } as c) ->
          Duplicate { c with window = shift_window window ~by }
      | Delay ({ window; _ } as c) -> Delay { c with window = shift_window window ~by }
      | Slow ({ window; _ } as c) -> Slow { c with window = shift_window window ~by }
      | Partition ({ window; _ } as c) ->
          Partition { c with window = shift_window window ~by }
      | Isolate ({ window; _ } as c) ->
          Isolate { c with window = shift_window window ~by }
      | Crash { pid; at } -> Crash { pid; at = Time.( + ) at by })
    plan

let apply ?engine ~seed ~plan ~base () =
  let rng = Rng.create seed in
  let stats = Model.Fault_stats.create () in
  (* Scheduled clauses (crashes, partition trace markers) need an engine at
     build time; probabilistic clauses do not — [engine] is optional so
     engineless harnesses (bench table builders) can still use lossy plans. *)
  (match engine with
  | None -> ()
  | Some engine ->
      List.iter
        (fun clause ->
          match clause with
          | Crash { pid; at } ->
              Engine.schedule engine ~at (fun () ->
                  if Engine.is_alive engine pid then (
                    stats.Model.Fault_stats.crashes <-
                      stats.Model.Fault_stats.crashes + 1;
                    Engine.crash engine pid))
          | Partition { groups; window } ->
              let name = partition_name groups in
              Engine.schedule engine ~at:window.from_t (fun () ->
                  Engine.record engine 0 (Trace.Partition_start name));
              if window.until_t < infinity then
                Engine.schedule engine ~at:window.until_t (fun () ->
                    Engine.record engine 0 (Trace.Partition_heal name))
          | Isolate { pid; window; _ } ->
              let name = Printf.sprintf "isolate(p%d)" pid in
              Engine.schedule engine ~at:window.from_t (fun () ->
                  Engine.record engine 0 (Trace.Partition_start name));
              if window.until_t < infinity then
                Engine.schedule engine ~at:window.until_t (fun () ->
                    Engine.record engine 0 (Trace.Partition_heal name))
          | Drop _ | Duplicate _ | Delay _ | Slow _ -> ())
        plan);
  let send engine msg ~arrive =
    let now = Engine.now engine in
    if cut_by_partition plan now msg then (
      stats.Model.Fault_stats.partition_drops <-
        stats.Model.Fault_stats.partition_drops + 1;
      Model.Fault_stats.count_layer_drop stats (Message.layer_name msg);
      Engine.record engine msg.Message.src (Trace.Net_drop msg.Message.dst))
    else begin
      let dropped, dup, extra =
        draw ~plan ~rng ~now msg
          ~on_delay:(fun () ->
            stats.Model.Fault_stats.delays <-
              stats.Model.Fault_stats.delays + 1;
            Engine.record engine msg.Message.src
              (Trace.Net_delay msg.Message.dst))
          ~on_slow:(fun () ->
            stats.Model.Fault_stats.slowdowns <-
              stats.Model.Fault_stats.slowdowns + 1)
      in
      if dropped then begin
        stats.Model.Fault_stats.drops <- stats.Model.Fault_stats.drops + 1;
        Model.Fault_stats.count_layer_drop stats (Message.layer_name msg);
        Engine.record engine msg.Message.src (Trace.Net_drop msg.Message.dst)
      end
      else begin
        let forward () =
          Model.send base engine msg ~arrive;
          if dup then begin
            stats.Model.Fault_stats.dups <- stats.Model.Fault_stats.dups + 1;
            Engine.record engine msg.Message.src
              (Trace.Net_dup msg.Message.dst);
            Model.send base engine msg ~arrive
          end
        in
        if extra > Time.zero then Engine.after engine ~delay:extra forward
        else forward ()
      end
    end
  in
  let model =
    Model.make ~faults:stats
      ~name:("nemesis(" ^ Model.name base ^ ")")
      ~resources:(Model.resources base) send
  in
  (model, stats)

(* Backend-neutral sibling of [apply]: instead of wrapping a network
   model, compile the plan into a {!Transport.interpose} middleware that
   draws its randomness from per-(src, dst) streams.  Per-link seeding is
   what makes the sim and live backends agree: the k-th message on a link
   sees the same decisions no matter how sends from different processes
   interleave, and a live node that only ever observes its own outbound
   links still draws the same stream the whole-cluster simulation does. *)
let link_rngs seed =
  let rngs : (int, Rng.t) Hashtbl.t = Hashtbl.create 16 in
  fun ~src ~dst ->
    let key = (src * 0x10000) + dst in
    match Hashtbl.find_opt rngs key with
    | Some rng -> rng
    | None ->
        let rng =
          Rng.create
            (Int64.logxor seed
               (Int64.of_int ((((src + 1) * 0x10000) + dst) + 1)))
        in
        Hashtbl.add rngs key rng;
        rng

let interposer ?self ~env ~seed ~plan () =
  let stats = Model.Fault_stats.create () in
  let rng_for = link_rngs seed in
  let local pid = match self with None -> true | Some p -> p = pid in
  (* Partition markers are cluster-level events; emit them from exactly
     one place (the simulated world, or live node 0) so a merged trace
     carries each marker once. *)
  let markers = match self with None -> true | Some p -> p = 0 in
  List.iter
    (fun clause ->
      match clause with
      | Crash { pid; at } ->
          if local pid then
            env.Env.schedule ~at (fun () ->
                if env.Env.is_alive pid then begin
                  stats.Model.Fault_stats.crashes <-
                    stats.Model.Fault_stats.crashes + 1;
                  env.Env.crash pid
                end)
      | Partition { groups; window } ->
          if markers then begin
            let name = partition_name groups in
            env.Env.schedule ~at:window.from_t (fun () ->
                env.Env.record 0 (Trace.Partition_start name));
            if window.until_t < infinity then
              env.Env.schedule ~at:window.until_t (fun () ->
                  env.Env.record 0 (Trace.Partition_heal name))
          end
      | Isolate { pid; window; _ } ->
          if markers then begin
            let name = Printf.sprintf "isolate(p%d)" pid in
            env.Env.schedule ~at:window.from_t (fun () ->
                env.Env.record 0 (Trace.Partition_start name));
            if window.until_t < infinity then
              env.Env.schedule ~at:window.until_t (fun () ->
                  env.Env.record 0 (Trace.Partition_heal name))
          end
      | Drop _ | Duplicate _ | Delay _ | Slow _ -> ())
    plan;
  let middleware inner (msg : Message.t) =
    let now = env.Env.now () in
    if cut_by_partition plan now msg then begin
      stats.Model.Fault_stats.partition_drops <-
        stats.Model.Fault_stats.partition_drops + 1;
      Model.Fault_stats.count_layer_drop stats (Message.layer_name msg);
      env.Env.record msg.Message.src (Trace.Net_drop msg.Message.dst)
    end
    else begin
      let rng = rng_for ~src:msg.Message.src ~dst:msg.Message.dst in
      let dropped, dup, extra =
        draw ~plan ~rng ~now msg
          ~on_delay:(fun () ->
            stats.Model.Fault_stats.delays <-
              stats.Model.Fault_stats.delays + 1;
            env.Env.record msg.Message.src (Trace.Net_delay msg.Message.dst))
          ~on_slow:(fun () ->
            stats.Model.Fault_stats.slowdowns <-
              stats.Model.Fault_stats.slowdowns + 1)
      in
      if dropped then begin
        stats.Model.Fault_stats.drops <- stats.Model.Fault_stats.drops + 1;
        Model.Fault_stats.count_layer_drop stats (Message.layer_name msg);
        env.Env.record msg.Message.src (Trace.Net_drop msg.Message.dst)
      end
      else begin
        let forward () =
          inner msg;
          if dup then begin
            stats.Model.Fault_stats.dups <- stats.Model.Fault_stats.dups + 1;
            env.Env.record msg.Message.src (Trace.Net_dup msg.Message.dst);
            inner msg
          end
        in
        if extra > Time.zero then
          env.Env.schedule ~at:(Time.( + ) now extra) forward
        else forward ()
      end
    end
  in
  (middleware, stats)
