(** Composable, seeded fault injection over any network model.

    A {e plan} is a list of declarative fault clauses — probabilistic
    per-link drop/duplicate/delay, deterministic slowdown windows,
    symmetric partitions with scheduled heal, per-process isolation, and
    scheduled crashes.  {!apply} compiles a plan into a {!Model.t} wrapper
    around any base model: every message consults the plan, all random
    choices come from one RNG derived from [seed] (same seed + same plan +
    same run ⇒ bit-identical faults), every injected fault is recorded in
    the engine trace ({!Trace.Net_drop}, {!Trace.Net_dup},
    {!Trace.Net_delay}, {!Trace.Partition_start}/[_heal]) and counted in
    the returned {!Model.Fault_stats}.

    The nemesis models a {e fair-lossy} environment: it may lose, duplicate,
    reorder (via random extra delay) and slow messages, but it never
    corrupts them and never forges them.  Layer it under {!Retransmit.wrap}
    to recover the quasi-reliable channels the protocol stack assumes. *)

module Engine = Ics_sim.Engine
module Time = Ics_sim.Time
module Pid = Ics_sim.Pid
module Model = Ics_net.Model
module Env = Ics_net.Env

(** {1 Plan grammar} *)

type window = { from_t : Time.t; until_t : Time.t }
(** Half-open activity interval [\[from_t, until_t)] in virtual time. *)

val always : window
val window : from_t:Time.t -> until_t:Time.t -> window
val in_window : window -> Time.t -> bool

type link = {
  l_src : Pid.t option;  (** [None] matches any sender *)
  l_dst : Pid.t option;  (** [None] matches any receiver *)
  l_layer : string option;  (** [None] matches any protocol layer *)
}
(** A link selector; unspecified fields are wildcards. *)

val any_link : link
val link_matches : link -> Ics_net.Message.t -> bool

type clause =
  | Drop of { link : link; prob : float; window : window }
      (** lose each matching message independently with probability [prob] *)
  | Duplicate of { link : link; prob : float; window : window }
      (** deliver each matching message twice with probability [prob] *)
  | Delay of { link : link; prob : float; max_extra : Time.t; window : window }
      (** add uniform extra latency in [\[0, max_extra)] with probability
          [prob] — the reordering fault, since other traffic overtakes *)
  | Slow of { link : link; extra : Time.t; window : window }
      (** add fixed extra latency to every matching message (degraded-link
          window) *)
  | Partition of { groups : Pid.t list list; window : window }
      (** cut every link between different groups for the window; the heal
          is the window's end.  Pids absent from all groups are unaffected
          (asymmetric partitions come from {!Isolate}) *)
  | Isolate of { pid : Pid.t; inbound : bool; outbound : bool; window : window }
      (** cut [pid]'s inbound and/or outbound links — [outbound]-only is an
          asymmetric partition: the victim hears everyone but nobody hears
          it *)
  | Crash of { pid : Pid.t; at : Time.t }
      (** schedule a crash-stop failure (requires [?engine] in {!apply}) *)

type plan = clause list

val pp_window : Format.formatter -> window -> unit
val pp_link : Format.formatter -> link -> unit
val pp_clause : Format.formatter -> clause -> unit
val pp_plan : Format.formatter -> plan -> unit

val plan_to_string : plan -> string
(** Compact one-line rendering, printed by the chaos sweep for replay. *)

val shift : plan -> by:Time.t -> plan
(** Shift every window and crash time later by [by] (open-ended windows
    stay open).  The live runtime uses this to move a plan authored in
    run-relative time past its warm-up/connect phase.
    @raise Invalid_argument on negative [by]. *)

(** {1 Applying a plan} *)

val apply :
  ?engine:Engine.t ->
  seed:int64 ->
  plan:plan ->
  base:Model.t ->
  unit ->
  Model.t * Model.Fault_stats.t
(** Wrap [base] with the plan's faults.  [engine] is needed to schedule
    [Crash] clauses and partition trace markers at build time; plans with
    only probabilistic clauses work without it (engineless bench
    harnesses).  Probabilistic clauses draw from a dedicated RNG seeded
    with [seed] in fixed plan order per message, so fault decisions are a
    deterministic function of (seed, plan, message sequence) and replays
    are bit-identical.  The returned stats record is also reachable
    through {!Model.fault_stats} on the wrapped model (and so through
    [Stack.fault_counters]). *)

val interposer :
  ?self:Pid.t ->
  env:Env.t ->
  seed:int64 ->
  plan:plan ->
  unit ->
  ((Ics_net.Message.t -> unit) -> Ics_net.Message.t -> unit) * Model.Fault_stats.t
(** Backend-neutral sibling of {!apply}: compile the plan into an outbound
    middleware for {!Ics_net.Transport.interpose}, drawing every random
    choice from a per-(src, dst) RNG stream derived from [seed].  Per-link
    streams are what make the two backends agree: the k-th message on a
    link sees the same drop/dup/delay decisions whether all links run in
    one simulated process or each live node only observes its own outbound
    links — so a seeded plan produces identical {!Model.Fault_stats}
    counters on both.  [self] scopes side effects for a live node: [Crash]
    clauses fire only for [self], and partition trace markers are emitted
    only by node 0 ([None] keeps whole-cluster behaviour for the sim
    backend).  Clause scheduling, trace recording and crash delivery all go
    through [env], never through a concrete engine. *)
