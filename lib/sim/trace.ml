type kind =
  | Crash
  | Exit
  | Abroadcast of Msg_id.t
  | Adeliver of Msg_id.t
  | Rbroadcast of Msg_id.t
  | Rdeliver of Msg_id.t
  | Urb_broadcast of Msg_id.t
  | Urb_deliver of Msg_id.t
  | Propose of int * Msg_id.t list
  | Decide of int * Msg_id.t list
  | Suspect of Pid.t
  | Trust of Pid.t
  | Net_drop of Pid.t
  | Net_dup of Pid.t
  | Net_delay of Pid.t
  | Partition_start of string
  | Partition_heal of string
  | App_submit of int * int
  | App_applied of int * int
  | App_hash of int * int64
  | App_violation of string
  | Note of string

type event = { time : Time.t; pid : Pid.t; kind : kind }

(* Growable array of events: one record per event, no list spine, O(1)
   amortized append.  Rendering is deferred to [pp]; recording an event
   never formats a string. *)
type t = { mutable events : event array; mutable length : int }

let dummy = { time = 0.0; pid = 0; kind = Crash }

let create () = { events = [||]; length = 0 }

let grow t =
  let cap = Stdlib.max 256 (2 * Array.length t.events) in
  let bigger = Array.make cap dummy in
  Array.blit t.events 0 bigger 0 t.length;
  t.events <- bigger

let record t ~time ~pid kind =
  if t.length = Array.length t.events then grow t;
  t.events.(t.length) <- { time; pid; kind };
  t.length <- t.length + 1

let length t = t.length

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Trace.get: out of bounds";
  t.events.(i)

let iter t f =
  for i = 0 to t.length - 1 do
    f t.events.(i)
  done

let events t = List.init t.length (fun i -> t.events.(i))

let filter t pred =
  let acc = ref [] in
  for i = t.length - 1 downto 0 do
    if pred t.events.(i) then acc := t.events.(i) :: !acc
  done;
  !acc

let find_all t ~pid pred =
  filter t (fun e -> Pid.equal e.pid pid && pred e.kind)

let pp_ids ppf ids =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map Msg_id.to_string ids))

let pp_kind ppf = function
  | Crash -> Format.fprintf ppf "crash"
  | Exit -> Format.fprintf ppf "exit"
  | Abroadcast m -> Format.fprintf ppf "abroadcast(%a)" Msg_id.pp m
  | Adeliver m -> Format.fprintf ppf "adeliver(%a)" Msg_id.pp m
  | Rbroadcast m -> Format.fprintf ppf "rbroadcast(%a)" Msg_id.pp m
  | Rdeliver m -> Format.fprintf ppf "rdeliver(%a)" Msg_id.pp m
  | Urb_broadcast m -> Format.fprintf ppf "urb-broadcast(%a)" Msg_id.pp m
  | Urb_deliver m -> Format.fprintf ppf "urb-deliver(%a)" Msg_id.pp m
  | Propose (k, ids) -> Format.fprintf ppf "propose(#%d, %a)" k pp_ids ids
  | Decide (k, ids) -> Format.fprintf ppf "decide(#%d, %a)" k pp_ids ids
  | Suspect q -> Format.fprintf ppf "suspect(%a)" Pid.pp q
  | Trust q -> Format.fprintf ppf "trust(%a)" Pid.pp q
  | Net_drop q -> Format.fprintf ppf "net-drop(->%a)" Pid.pp q
  | Net_dup q -> Format.fprintf ppf "net-dup(->%a)" Pid.pp q
  | Net_delay q -> Format.fprintf ppf "net-delay(->%a)" Pid.pp q
  | Partition_start s -> Format.fprintf ppf "partition-start(%s)" s
  | Partition_heal s -> Format.fprintf ppf "partition-heal(%s)" s
  | App_submit (c, r) -> Format.fprintf ppf "app-submit(%d#%d)" c r
  | App_applied (c, r) -> Format.fprintf ppf "app-applied(%d#%d)" c r
  | App_hash (cur, h) -> Format.fprintf ppf "app-hash(@%d %Lx)" cur h
  | App_violation s -> Format.fprintf ppf "app-violation(%s)" s
  | Note s -> Format.fprintf ppf "note(%s)" s

let pp_event ppf e =
  Format.fprintf ppf "%a %a %a" Time.pp e.time Pid.pp e.pid pp_kind e.kind

let pp ppf t = iter t (fun e -> Format.fprintf ppf "%a@." pp_event e)
