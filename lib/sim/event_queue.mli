(** Pending-event set of the discrete-event simulator.

    A binary min-heap ordered by (time, sequence number).  The sequence
    number is assigned at insertion, so simultaneous events run in insertion
    order — this is what makes whole simulations deterministic.

    The heap is stored as parallel arrays (times unboxed); {!push} and
    {!pop_run_exn} allocate nothing, so the engine's inner loop is free of
    queue-induced GC pressure. *)

type t

val create : unit -> t

val push : t -> time:Time.t -> (unit -> unit) -> unit
(** Schedule an action.  Scheduling in the past is a programming error.
    @raise Invalid_argument if [time] is NaN. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Remove and return the earliest event, ties broken by insertion order.
    Allocates the option/tuple; the engine's hot loop uses
    {!min_time_exn}/{!pop_run_exn} instead. *)

val min_time_exn : t -> Time.t
(** Timestamp of the earliest event, without allocating.
    @raise Invalid_argument on an empty queue. *)

val pop_run_exn : t -> unit -> unit
(** Remove the earliest event and return its action, without allocating.
    @raise Invalid_argument on an empty queue. *)

val peek_time : t -> Time.t option
val size : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop all pending events (used when aborting a run).  The insertion
    sequence counter is preserved. *)
