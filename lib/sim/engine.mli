module Rng = Ics_prelude.Rng

(** The discrete-event simulation engine.

    An engine owns the virtual clock, the pending-event queue, the crash
    state of the [n] simulated processes, the execution trace, and one
    deterministic random stream per process.  Protocol layers never touch
    the queue directly: they schedule closures via {!schedule}/{!after} and
    guard process-local work with {!alive_guard} so that a crashed process
    stops taking steps (crash-stop model, no Byzantine behaviour — §2.1 of
    the paper). *)

type t

val create : ?seed:int64 -> ?trace:[ `On | `Off ] -> n:int -> unit -> t
(** [create ~n ()] builds an engine for processes [0 .. n-1].  [seed]
    defaults to [1L]; equal seeds give bitwise-identical runs.

    [trace] (default [`On]) controls event recording: with [`Off] every
    {!record} call is a no-op, so experiments that never run the checker
    skip all trace allocation.  Tracing never affects scheduling — a run
    is bit-identical with tracing on or off.
    @raise Invalid_argument if [n <= 0]. *)

val n : t -> int
val now : t -> Time.t

val schedule : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule an action at an absolute time.  Actions scheduled at the same
    time run in scheduling order.  Scheduling before [now] is clamped to
    [now] (zero-delay events are legal and common). *)

val after : t -> delay:Time.t -> (unit -> unit) -> unit
(** [after t ~delay f] is [schedule t ~at:(now t + delay) f].  Negative
    delays are a programming error.
    @raise Invalid_argument on negative delay. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Execute pending events in timestamp order until the queue is empty, the
    optional horizon [until] is passed (events strictly later than [until]
    stay queued and [now] advances to [until]), [max_events] have run, or
    {!stop} is called.

    Passing [until] also records it as the engine's {!horizon}; a later
    [run] without [until] keeps the previous horizon (so it can drain
    leftovers and return), while a new [until] replaces it. *)

val horizon : t -> Time.t option
(** The most recent [until] passed to {!run}, if any.  Self-rearming timer
    loops (heartbeat failure detectors, retransmission channels) consult it
    to stop rescheduling once their next firing would fall beyond it —
    without this, such loops keep the event queue non-empty forever and a
    horizon-less {!run} never returns. *)

val set_horizon : t -> Time.t option -> unit
(** Set the horizon without running anything.  The live runtime pins it
    once to the real-clock deadline of the run so self-rearming timer
    loops know when to retire, then drives events with {!run_due}. *)

val next_due : t -> Time.t option
(** Timestamp of the earliest queued event — the live loop's select
    timeout. *)

val run_due : t -> upto:Time.t -> unit
(** Execute every queued event with timestamp [<= upto] and advance the
    virtual clock to [upto].  Unlike {!run}, the horizon is untouched:
    in a live run the virtual clock is the real monotonic clock, and
    [upto] is simply "now". *)

val advance : t -> upto:Time.t -> unit
(** Advance the virtual clock to [upto] (never backwards) without running
    any queued event.  The live socket loop calls this as it decodes each
    inbound frame: handler work triggered by the frame then records trace
    events at (close to) the real arrival time instead of the loop
    iteration's start time, which can be seconds stale when the process
    was descheduled and a large input backlog is drained in one burst. *)

val step : t -> bool
(** Run the single earliest event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_executed : t -> int
(** Total events executed since creation (across all {!run}/{!step}
    calls); the denominator of the perf harness's events/sec metric. *)

val stop : t -> unit
(** Make {!run} return after the current event; the queue is preserved. *)

(** {1 Crash-stop faults} *)

val crash : t -> Pid.t -> unit
(** Crash a process now: records a {!Trace.Crash} event, marks it dead, and
    fires the crash hooks.  Idempotent. *)

val crash_at : t -> Pid.t -> at:Time.t -> unit
(** Schedule a crash. *)

val is_alive : t -> Pid.t -> bool

val correct : t -> Pid.t list
(** Processes currently alive. *)

val on_crash : t -> (Pid.t -> unit) -> unit
(** Register a hook called (at crash time) for every crash; used by oracle
    failure detectors and by network models that drop a crashed process's
    queued sends. *)

val alive_guard : t -> Pid.t -> (unit -> unit) -> unit -> unit
(** [alive_guard t p f] wraps [f] so it becomes a no-op once [p] has
    crashed.  Every handler of process [p] must be wrapped. *)

(** {1 Randomness, tracing} *)

val rng : t -> Pid.t -> Rng.t
(** The process-local random stream. *)

val global_rng : t -> Rng.t
(** Stream for engine-wide choices (workload arrivals, fault injection). *)

val trace : t -> Trace.t
(** The event log.  Empty for the whole run when tracing is [`Off]. *)

val tracing : t -> bool
(** Whether {!record} actually records. *)

val record : t -> Pid.t -> Trace.kind -> unit
(** Append to the trace at the current virtual time; no-op when tracing
    is [`Off]. *)
