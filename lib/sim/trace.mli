(** Structured execution traces.

    Every protocol layer records its externally visible actions here; the
    checker library replays a trace against the formal properties of the
    abstraction (reliable broadcast, consensus, atomic broadcast).  Events
    carry structural data — {!Msg_id.t} values, instance numbers, pids —
    and are rendered to text only by the pretty-printers, so recording an
    event costs one record allocation and no formatting. *)

type kind =
  | Crash  (** the process stops taking steps *)
  | Exit
      (** the process left the run {e cleanly} (live runtime's delivery
          barrier) — unlike {!Crash} it still counts as correct, but the
          checker must not demand participation in decisions first reached
          after this point *)
  | Abroadcast of Msg_id.t  (** atomic broadcast invoked with this message id *)
  | Adeliver of Msg_id.t  (** atomic broadcast delivery *)
  | Rbroadcast of Msg_id.t  (** reliable broadcast invoked *)
  | Rdeliver of Msg_id.t  (** reliable broadcast delivery *)
  | Urb_broadcast of Msg_id.t  (** uniform reliable broadcast invoked *)
  | Urb_deliver of Msg_id.t  (** uniform reliable broadcast delivery *)
  | Propose of int * Msg_id.t list  (** consensus instance, proposed id set *)
  | Decide of int * Msg_id.t list  (** consensus instance, decided id set *)
  | Suspect of Pid.t  (** failure detector starts suspecting [pid] *)
  | Trust of Pid.t  (** failure detector stops suspecting [pid] *)
  | Net_drop of Pid.t
      (** fault injection lost a message from this process to [pid] *)
  | Net_dup of Pid.t  (** fault injection duplicated a message to [pid] *)
  | Net_delay of Pid.t  (** fault injection delayed a message to [pid] *)
  | Partition_start of string  (** a partition/isolation window opened *)
  | Partition_heal of string  (** the window closed; links flow again *)
  | App_submit of int * int
      (** client session [c] submitted request [r] (recorded at the
          client's home process, first attempt only) *)
  | App_applied of int * int
      (** the replica applied client [c]'s request [r] to its state machine *)
  | App_hash of int * int64
      (** state hash at applied-cursor [c] — replicas at equal cursors
          must carry equal hashes *)
  | App_violation of string  (** a state-machine invariant probe fired *)
  | Note of string  (** free-form, for debugging only *)

type event = { time : Time.t; pid : Pid.t; kind : kind }

type t
(** A mutable, append-only event log backed by a growable array. *)

val create : unit -> t
val record : t -> time:Time.t -> pid:Pid.t -> kind -> unit

val length : t -> int

val get : t -> int -> event
(** [get t i] is the [i]-th event in insertion (= chronological) order.
    @raise Invalid_argument out of bounds. *)

val iter : t -> (event -> unit) -> unit
(** Iterate in chronological order without materializing a list. *)

val events : t -> event list
(** Events in chronological (= insertion) order.  Allocates a fresh list;
    prefer {!iter} on hot paths. *)

val filter : t -> (event -> bool) -> event list
val find_all : t -> pid:Pid.t -> (kind -> bool) -> event list

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
