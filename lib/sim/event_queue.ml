(* Binary min-heap over (time, seq), stored as three parallel arrays.

   The struct-of-arrays layout keeps the timestamps in a flat [float array]
   (unboxed), so pushing an event allocates nothing beyond the caller's
   closure and every comparison reads an unboxed float.  Sifting uses the
   hold-the-hole technique: the moving element stays in locals while
   ancestors/descendants shift into the hole, one store per level instead
   of a three-store swap. *)

type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
}

let nop () = ()
let initial_capacity = 256

let create () =
  {
    times = Array.make initial_capacity 0.0;
    seqs = Array.make initial_capacity 0;
    runs = Array.make initial_capacity nop;
    size = 0;
    next_seq = 0;
  }

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let runs = Array.make cap nop in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.runs 0 runs 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.runs <- runs

let push t ~time run =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Sift up with a hole.  The fresh seq is larger than every queued seq,
     so on equal times the new event never moves up — FIFO tie-break. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if time < t.times.(parent) then begin
      t.times.(!i) <- t.times.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.runs.(!i) <- t.runs.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.runs.(!i) <- run

let is_empty t = t.size = 0
let size t = t.size

let min_time_exn t =
  if t.size = 0 then invalid_arg "Event_queue.min_time_exn: empty queue";
  t.times.(0)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let pop_run_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_run_exn: empty queue";
  let top = t.runs.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last = 0 then t.runs.(0) <- nop
  else begin
    (* Remove the last element and sift it down from the root hole. *)
    let lt = t.times.(last) and ls = t.seqs.(last) and lr = t.runs.(last) in
    t.runs.(last) <- nop;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (t.times.(r) < t.times.(l)
               || (t.times.(r) = t.times.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        if t.times.(c) < lt || (t.times.(c) = lt && t.seqs.(c) < ls) then begin
          t.times.(!i) <- t.times.(c);
          t.seqs.(!i) <- t.seqs.(c);
          t.runs.(!i) <- t.runs.(c);
          i := c
        end
        else continue := false
      end
    done;
    t.times.(!i) <- lt;
    t.seqs.(!i) <- ls;
    t.runs.(!i) <- lr
  end;
  top

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let run = pop_run_exn t in
    Some (time, run)
  end

let clear t =
  Array.fill t.runs 0 t.size nop;
  t.size <- 0
