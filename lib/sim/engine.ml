module Rng = Ics_prelude.Rng

type t = {
  n : int;
  queue : Event_queue.t;
  mutable now : Time.t;
  mutable stopped : bool;
  mutable horizon : Time.t option;
  mutable executed : int;
  alive : bool array;
  trace : Trace.t;
  trace_on : bool;
  global_rng : Rng.t;
  proc_rngs : Rng.t array;
  mutable crash_hooks : (Pid.t -> unit) list;
}

let create ?(seed = 1L) ?(trace = `On) ~n () =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  let global_rng = Rng.create seed in
  {
    n;
    queue = Event_queue.create ();
    now = Time.zero;
    stopped = false;
    horizon = None;
    executed = 0;
    alive = Array.make n true;
    trace = Trace.create ();
    trace_on = (match trace with `On -> true | `Off -> false);
    global_rng;
    proc_rngs = Array.init n (fun _ -> Rng.split global_rng);
    crash_hooks = [];
  }

let n t = t.n
let now t = t.now
let events_executed t = t.executed
let tracing t = t.trace_on

let schedule t ~at f =
  let at = Time.max at t.now in
  Event_queue.push t.queue ~time:at f

let after t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(Time.( + ) t.now delay) f

let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let time = Event_queue.min_time_exn t.queue in
    let run = Event_queue.pop_run_exn t.queue in
    if time > t.now then t.now <- time;
    t.executed <- t.executed + 1;
    run ();
    true
  end

let run ?until ?max_events t =
  t.stopped <- false;
  (* The horizon persists across later horizon-less runs, so self-rearming
     timers (heartbeats, retransmission) know when to stop and a draining
     [run t] after a [run ~until] terminates. *)
  (match until with Some h -> t.horizon <- Some h | None -> ());
  let budget = match max_events with None -> max_int | Some m -> m in
  let executed = ref 0 in
  (match until with
  | None ->
      let continue = ref true in
      while !continue && (not t.stopped) && !executed < budget do
        if step t then incr executed
        else begin
          t.stopped <- true;
          continue := false
        end
      done
  | Some horizon ->
      let continue = ref true in
      while !continue && (not t.stopped) && !executed < budget do
        if
          Event_queue.is_empty t.queue
          || Event_queue.min_time_exn t.queue > horizon
        then continue := false
        else begin
          ignore (step t : bool);
          incr executed
        end
      done);
  match until with
  | Some horizon when t.now < horizon && not t.stopped -> t.now <- horizon
  | _ -> ()

let pending t = Event_queue.size t.queue
let stop t = t.stopped <- true
let horizon t = t.horizon
let set_horizon t h = t.horizon <- h

let next_due t =
  if Event_queue.is_empty t.queue then None
  else Some (Event_queue.min_time_exn t.queue)

(* Live-runtime driver: execute everything due by the real clock and pin
   the virtual clock to it, without touching the horizon (which the live
   loop sets once, to the run deadline, via [set_horizon]). *)
let run_due t ~upto =
  t.stopped <- false;
  let continue = ref true in
  while
    !continue && (not t.stopped)
    && (not (Event_queue.is_empty t.queue))
    && Event_queue.min_time_exn t.queue <= upto
  do
    continue := step t
  done;
  if t.now < upto then t.now <- upto

let advance t ~upto = if t.now < upto then t.now <- upto

let is_alive t p = t.alive.(p)

let correct t =
  List.filter (fun p -> t.alive.(p)) (Pid.all ~n:t.n)

let record t pid kind =
  if t.trace_on then Trace.record t.trace ~time:t.now ~pid kind

let crash t p =
  if t.alive.(p) then begin
    t.alive.(p) <- false;
    record t p Trace.Crash;
    List.iter (fun hook -> hook p) (List.rev t.crash_hooks)
  end

let crash_at t p ~at = schedule t ~at (fun () -> crash t p)

let on_crash t hook = t.crash_hooks <- hook :: t.crash_hooks

let alive_guard t p f = fun () -> if t.alive.(p) then f ()

let rng t p = t.proc_rngs.(p)
let global_rng t = t.global_rng
let trace t = t.trace
