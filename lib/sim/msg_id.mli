(** Unique message identifiers.

    Each application message [m] has a unique identifier [id(m)] — the pair
    (origin process, per-origin sequence number).  The relationship between
    messages and identifiers is bijective (§2.1), so a totally ordered
    sequence of identifiers induces the delivery order of the messages. *)

(* inside ics_sim: Pid is a sibling module *)

type t = { origin : Pid.t; seq : int }

val make : origin:Pid.t -> seq:int -> t
val compare : t -> t -> int
(** Total order by (origin, seq) — the "deterministic order" Algorithm 1
    uses to linearize a decided identifier set. *)

val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
(** ["p2#17"]. *)

val pp : Format.formatter -> t -> unit

(** Hashtables keyed by identifier. *)
module Table : Hashtbl.S with type key = t

(** Sets of identifiers. *)
module Set : Set.S with type elt = t
