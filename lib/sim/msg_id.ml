(* inside ics_sim: Pid is a sibling module *)

module Core = struct
  type t = { origin : Pid.t; seq : int }

  let compare a b =
    match Int.compare a.origin b.origin with
    | 0 -> Int.compare a.seq b.seq
    | c -> c

  let equal a b = compare a b = 0
  let hash a = (a.origin * 1000003) + a.seq
end

include Core

let make ~origin ~seq = { origin; seq }
let to_string t = Printf.sprintf "p%d#%d" t.origin t.seq
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Table = Hashtbl.Make (Core)
module Set = Set.Make (Core)
