(* Deterministic command derivation: what operation client [c]'s request
   [r] performs, and what value it writes, are pure functions of
   (app seed, c, r).  Both the submitting session and every replica's
   state machine derive the command independently — the wire carries only
   the (client, request) pair, packed into the message blob — so the
   whole client plane adds eight bytes to a payload, not an op encoding.

   Everything here is 64-bit integer arithmetic (a splitmix64 finalizer),
   identical on the simulated and live backends by construction. *)

let slots = 4

(* blob layout: high 32 bits = client + 1, low 32 bits = request.  The
   +1 keeps a real command distinct from the all-zero blob that plain
   (non-app) workload messages carry. *)
let pack ~client ~req =
  if client < 0 || req < 0 then invalid_arg "Cmd.pack: negative client/req";
  Int64.logor
    (Int64.shift_left (Int64.of_int (client + 1)) 32)
    (Int64.of_int (req land 0xFFFF_FFFF))

let unpack blob =
  if Int64.equal blob 0L then None
  else
    let client = Int64.to_int (Int64.shift_right_logical blob 32) - 1 in
    let req = Int64.to_int (Int64.logand blob 0xFFFF_FFFFL) in
    if client < 0 then None else Some (client, req)

(* splitmix64: the standard finalizer over a keyed counter. *)
let mix seed ~client ~req ~salt =
  let z =
    Int64.add seed
      (Int64.mul
         (Int64.of_int ((((client * 2) + salt) * 0x3FFF_FFFF) + req))
         0x9E3779B97F4A7C15L)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* The value any op of (client, req) leaves in its slot: bounded so sums
   over thousands of clients stay far from int overflow. *)
let val_of seed ~client ~req =
  Int64.to_int (Int64.logand (mix seed ~client ~req ~salt:0) 0xFF_FFFFL) + 1

type kind =
  | Create  (** open the account with the grant of 1000 units *)
  | Put  (** blind slot write *)
  | Get  (** read the slot and check read-your-writes *)
  | Cas  (** compare the slot against its derived value, then write *)
  | Transfer of { dst : int; amount : int }
      (** move units to [dst]'s account; overdraft allowed, so the two
          balance updates commute with every other command *)

let kind_of seed ~nclients ~client ~req =
  if req = 0 then Create
  else
    let m = mix seed ~client ~req ~salt:1 in
    match Int64.to_int (Int64.logand m 0xFFL) mod 4 with
    | 0 -> Put
    | 1 -> Get
    | 2 -> Cas
    | _ ->
        let pick = Int64.to_int (Int64.logand (Int64.shift_right_logical m 8) 0xFFFFFFL) in
        let dst =
          if nclients <= 1 then client
          else (client + 1 + (pick mod (nclients - 1))) mod nclients
        in
        let amount = 1 + (Int64.to_int (Int64.logand (Int64.shift_right_logical m 32) 0xFFL)) in
        Transfer { dst; amount }
