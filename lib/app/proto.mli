(** Client-plane wire protocol: redirect-to-proposer submission.

    A retrying session forwards its command identity to another replica
    on the ["app"] layer; the receiver abroadcasts the command on the
    client's behalf.  Dedup is the state machine's job, so forwarding the
    same command to several proposers is safe. *)

module Message = Ics_net.Message

type Message.payload += Submit of { client : int; req : int }

val layer : string
(** ["app"] — has a static wire id in {!Ics_codec.Codec.layer_table};
    the submit payload carries codec tag [0x58]. *)

val submit_bytes : int
val register_codec : unit -> unit
