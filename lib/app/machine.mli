(** The replicated accounts/KV state machine.

    One instance per replica, driven purely by A-deliveries: {!apply}
    executes commands in delivery order, dedups retries against each
    account's watermark (exactly-once in effect), runs the invariant
    probes (conservation of funds, read-your-writes, gap detection) and
    advances the applied cursor.  {!hash} is the canonical state hash the
    checker compares across replicas at matching cursors — state is flat
    client-indexed arrays and seeded integer derivation throughout, so
    equal cursors imply bit-equal hashes on both backends. *)

type t

val create : ?emit:(string -> unit) -> nclients:int -> seed:int64 -> unit -> t
(** [emit] receives each invariant-probe violation as it fires (the host
    records it as a {!Ics_sim.Trace.App_violation} event). *)

type outcome =
  | Applied
  | Duplicate  (** a retry below the client's watermark; state untouched *)
  | Rejected  (** out-of-workload or above-watermark (a probe fired) *)

val apply : t -> client:int -> req:int -> outcome

val nclients : t -> int

val cursor : t -> int
(** Commands applied so far, duplicates excluded — the replica's position
    in the total order of distinct commands. *)

val duplicates : t -> int
val violations : t -> int
val watermark : t -> client:int -> int
val balance : t -> client:int -> int

val hash : t -> int64
(** Canonical state hash (FNV-1a 64 over the client-id-sorted encoding).
    Also recomputes the balance sum and fires the conservation probe if
    it disagrees with the incrementally tracked sum. *)

val grant : int
(** Units minted by each Create (request 0 of every client). *)
