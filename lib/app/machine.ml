(* The replicated accounts/KV state machine.  One instance lives on each
   replica and is driven purely by A-deliveries: [apply] is called in
   delivery order with the (client, request) identity carried by the
   message blob, derives the command with Cmd, executes it, and advances
   the applied cursor.

   Determinism discipline: state is flat int arrays indexed by client id
   (no hashtable traversal anywhere, rule D1), derivation is seeded
   (D2), comparisons are on ints (D3) — so two replicas at the same
   cursor hold bit-identical state, across backends, and the canonical
   state hash is a meaningful agreement check.

   Exactly-once: each account carries a watermark (the next request it
   expects).  Atomic broadcast preserves the per-client submission order
   — a session submits request r+1 only after r was applied at its home
   replica, so r's first delivery precedes r+1's everywhere — which
   makes the watermark a complete dedup: a retried command arrives with
   req < watermark and is dropped.  req > watermark can only mean the
   ordering layer lost or reordered a command, and fires a probe.

   The final state is order-independent by construction: slots are
   client-private (per-client order is fixed by the watermark), and the
   only cross-client op, Transfer, is commutative addition with
   overdraft allowed — so the sim and live backends reach the same final
   hash even though their interleavings differ. *)

let grant = 1_000

type t = {
  nclients : int;
  seed : int64;
  emit : string -> unit;  (* invariant-probe violations *)
  balance : int array;
  watermark : int array;  (* next expected request per client *)
  slot : int array;  (* nclients x Cmd.slots, flattened *)
  mutable created : int;
  mutable sum : int;  (* incrementally tracked sum of balances *)
  mutable cursor : int;  (* commands applied (duplicates excluded) *)
  mutable dups : int;
  mutable violations : int;
}

let create ?(emit = fun _ -> ()) ~nclients ~seed () =
  if nclients <= 0 then invalid_arg "Machine.create: nclients <= 0";
  {
    nclients;
    seed;
    emit;
    balance = Array.make nclients 0;
    watermark = Array.make nclients 0;
    slot = Array.make (nclients * Cmd.slots) 0;
    created = 0;
    sum = 0;
    cursor = 0;
    dups = 0;
    violations = 0;
  }

let nclients t = t.nclients
let cursor t = t.cursor
let duplicates t = t.dups
let violations t = t.violations
let watermark t ~client = t.watermark.(client)
let balance t ~client = t.balance.(client)

let violate t fmt =
  Printf.ksprintf
    (fun s ->
      t.violations <- t.violations + 1;
      t.emit s)
    fmt

let slot_ix ~client ~req = (client * Cmd.slots) + (req mod Cmd.slots)

(* What the slot [req] is about to touch must still hold: the value of
   the last request that wrote it ([req - slots]), or 0 before any did.
   This is the read-your-writes probe Get and Cas share. *)
let expected_slot t ~client ~req =
  if req >= Cmd.slots then Cmd.val_of t.seed ~client ~req:(req - Cmd.slots) else 0

type outcome = Applied | Duplicate | Rejected

let apply t ~client ~req =
  if client < 0 || client >= t.nclients || req < 0 then begin
    violate t "app.bogus-command: client %d req %d outside the workload" client req;
    Rejected
  end
  else
    let w = t.watermark.(client) in
    if req < w then begin
      t.dups <- t.dups + 1;
      Duplicate
    end
    else if req > w then begin
      (* The ordering layer skipped a command: per-client FIFO is a
         consequence of closed-loop submission over atomic broadcast, so
         a gap means a command was ordered-but-lost or reordered. *)
      violate t "app.gap: client %d applied req %d above watermark %d" client req w;
      Rejected
    end
    else begin
      (match Cmd.kind_of t.seed ~nclients:t.nclients ~client ~req with
      | Cmd.Create ->
          t.balance.(client) <- t.balance.(client) + grant;
          t.created <- t.created + 1;
          t.sum <- t.sum + grant
      | Cmd.Put -> ()
      | Cmd.Get ->
          let got = t.slot.(slot_ix ~client ~req) in
          let want = expected_slot t ~client ~req in
          if got <> want then
            violate t "app.read-your-writes: client %d req %d read %d, wrote %d" client
              req got want
      | Cmd.Cas ->
          let got = t.slot.(slot_ix ~client ~req) in
          let want = expected_slot t ~client ~req in
          if got <> want then
            violate t "app.cas: client %d req %d expected %d, found %d" client req want
              got
      | Cmd.Transfer { dst; amount } ->
          t.balance.(client) <- t.balance.(client) - amount;
          t.balance.(dst) <- t.balance.(dst) + amount);
      t.slot.(slot_ix ~client ~req) <- Cmd.val_of t.seed ~client ~req;
      t.watermark.(client) <- req + 1;
      t.cursor <- t.cursor + 1;
      (* Conservation of funds, O(1) per apply against the tracked sum:
         transfers move units, only Create mints them. *)
      if t.sum <> t.created * grant then
        violate t "app.conservation: balances sum to %d, %d accounts minted %d" t.sum
          t.created (t.created * grant);
      Applied
    end

(* Canonical state hash: FNV-1a 64 over the sorted-by-construction
   encoding (client ids index the arrays, so traversal order is the key
   order).  The walk recomputes the balance sum and checks it against
   the incremental tracker — the full-scan half of the conservation
   probe, paid only at hash points. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash t =
  let h = ref fnv_offset in
  let feed v =
    (* eight bytes of [v], low to high *)
    let v = ref (Int64.of_int v) in
    for _ = 0 to 7 do
      h := Int64.mul (Int64.logxor !h (Int64.logand !v 0xFFL)) fnv_prime;
      v := Int64.shift_right_logical !v 8
    done
  in
  feed t.nclients;
  feed t.created;
  let full_sum = ref 0 in
  for c = 0 to t.nclients - 1 do
    feed t.balance.(c);
    feed t.watermark.(c);
    for s = 0 to Cmd.slots - 1 do
      feed t.slot.((c * Cmd.slots) + s)
    done;
    full_sum := !full_sum + t.balance.(c)
  done;
  if !full_sum <> t.sum then
    violate t "app.conservation: tracked sum %d but balances sum to %d" t.sum !full_sum;
  !h
