(* The client plane's only wire message: a command identity forwarded to
   a non-home proposer.  A session's first attempt is abroadcast directly
   by its home replica; a retry rotates to the next proposer in the ring,
   which receives this frame and abroadcasts the command on the client's
   behalf.  The command itself needs no encoding — the receiving replica
   packs the same (client, req) pair into the message blob. *)

module Message = Ics_net.Message
module Codec = Ics_codec.Codec
module Prim = Ics_codec.Prim
module Rng = Ics_prelude.Rng

type Message.payload += Submit of { client : int; req : int }

let layer = "app"
let submit_bytes = 1 + 4 + 4

let register_codec () =
  Codec.register ~tag:0x58 ~name:"app.submit"
    ~fits:(function Submit _ -> true | _ -> false)
    ~size:(fun _ -> submit_bytes)
    ~encode_into:(fun w p ->
      match p with
      | Submit { client; req } ->
          Prim.u32 w client;
          Prim.u32 w req
      | _ -> assert false)
    ~dec:(fun r ->
      let client = Prim.r_u32 r in
      let req = Prim.r_u32 r in
      Submit { client; req })
    ~gen:(fun rng -> Submit { client = Rng.int rng 100_000; req = Rng.int rng 10_000 })
