(** Closed-loop client sessions, hosted on their home replica.

    Client [c] is homed on replica [c mod n].  A session submits request
    [r], waits for the home replica's machine to apply [(c, r)], then
    submits [r+1] — repeat until [requests] commands are done.  Retries
    rotate the proposer through the ring with linear backoff; the state
    machine's watermark dedup makes retried commands exactly-once in
    effect.  All timers are horizon-guarded so faulted runs quiesce. *)

module Time = Ics_sim.Time

type host = {
  now : unit -> Time.t;
  schedule : at:Time.t -> (unit -> unit) -> unit;
  beyond_horizon : at:Time.t -> bool;
  alive : unit -> bool;
  submit : proposer:int -> client:int -> req:int -> unit;
  record_submit : client:int -> req:int -> unit;
}

type t

val create :
  host -> n:int -> home:int -> clients:int -> requests:int -> retry_ms:float -> t
(** Sessions for every client [c < clients] with [c mod n = home]. *)

val start : t -> at:Time.t -> over_ms:float -> unit
(** Schedule each session's first submission, staggered across [over_ms]. *)

val on_applied : t -> client:int -> req:int -> unit
(** Feed every application at this replica; foreign clients are ignored. *)

val count : t -> int
val done_count : t -> int
val all_done : t -> bool
