(** Deterministic command derivation for the replicated KV/ledger.

    A command is identified on the wire by nothing but its
    [(client, request)] pair, packed into the eight-byte message blob;
    what the command {e does} is a pure function of the app seed and
    that pair, recomputed identically by the submitting session and by
    every replica.  All derivation is 64-bit integer arithmetic
    (splitmix64), so the simulated and live backends agree bit for bit. *)

val slots : int
(** Client-private key slots per account (requests write slot
    [req mod slots]). *)

val pack : client:int -> req:int -> int64
(** Pack a command identity into a blob; never [0L] (the high half
    carries [client + 1]). @raise Invalid_argument on negative input. *)

val unpack : int64 -> (int * int) option
(** Inverse of {!pack}; [None] for the all-zero (non-app) blob. *)

val val_of : int64 -> client:int -> req:int -> int
(** The (positive, small) value [(client, req)]'s op writes to its slot. *)

type kind =
  | Create  (** open the account with the grant of 1000 units *)
  | Put  (** blind slot write *)
  | Get  (** read the slot and check read-your-writes *)
  | Cas  (** compare the slot against its derived value, then write *)
  | Transfer of { dst : int; amount : int }
      (** move units to [dst]'s account; overdraft allowed, so the two
          balance updates commute with every other command *)

val kind_of : int64 -> nclients:int -> client:int -> req:int -> kind
(** Request 0 is always [Create]; later requests draw uniformly from the
    other four kinds. *)
