(* Closed-loop client sessions.  Each replica hosts the sessions of the
   clients homed on it (client c lives at replica c mod n); a session
   submits request r, waits until its home replica's state machine
   applies (c, r), then immediately submits r+1 — so the offered load is
   set by client count, not by a rate knob.

   Submission is redirect-to-any-proposer: attempt 0 is abroadcast by
   the home replica itself; attempt k rotates to replica (home + k)
   mod n, reached with a Proto.Submit frame.  A retry fires when the
   command has not been applied within the (linearly backed off) retry
   window — under the fault plane the original, the retry, or both may
   get through, and the machine's watermark dedup makes the effect
   exactly-once either way.

   Retry timers respect the run horizon (they never re-arm past it, so a
   faulted run still quiesces) and die silently once their request has
   been applied or the home replica has stopped. *)

module Time = Ics_sim.Time

type host = {
  now : unit -> Time.t;
  schedule : at:Time.t -> (unit -> unit) -> unit;
  beyond_horizon : at:Time.t -> bool;
      (* true when [at] lies past the run's pinned horizon *)
  alive : unit -> bool;  (* the home replica is still taking steps *)
  submit : proposer:int -> client:int -> req:int -> unit;
  record_submit : client:int -> req:int -> unit;
      (* trace App_submit; first attempt of each request only *)
}

type session = {
  client : int;
  mutable inflight : int;  (* request awaiting application; -1 when idle/done *)
  mutable attempt : int;
}

type t = {
  host : host;
  n : int;
  home : int;
  requests : int;
  retry_ms : float;
  sessions : session array;  (* position i holds client home + i*n *)
  mutable completed : int;
}

let sessions_of ~n ~home ~clients =
  let count = if clients <= home then 0 else ((clients - home - 1) / n) + 1 in
  Array.init count (fun i -> { client = home + (i * n); inflight = -1; attempt = 0 })

let create host ~n ~home ~clients ~requests ~retry_ms =
  if n <= 0 || home < 0 || home >= n then invalid_arg "Session.create: bad home/n";
  if requests < 0 || clients < 0 then invalid_arg "Session.create: bad workload";
  if retry_ms <= 0.0 || not (Float.is_finite retry_ms) then
    invalid_arg "Session.create: bad retry_ms";
  {
    host;
    n;
    home;
    requests;
    retry_ms;
    sessions = sessions_of ~n ~home ~clients;
    completed = 0;
  }

let count t = Array.length t.sessions
let done_count t = t.completed
let all_done t = t.completed = Array.length t.sessions

let rec submit_now t s =
  let proposer = (t.home + s.attempt) mod t.n in
  if s.attempt = 0 then t.host.record_submit ~client:s.client ~req:s.inflight;
  t.host.submit ~proposer ~client:s.client ~req:s.inflight;
  arm_retry t s s.inflight

and arm_retry t s req =
  (* Linear backoff: the k-th retry waits (k+1) windows, so a congested
     run is not compounded by its own retry traffic. *)
  let at = t.host.now () +. (t.retry_ms *. float_of_int (s.attempt + 1)) in
  if not (t.host.beyond_horizon ~at) then
    t.host.schedule ~at (fun () ->
        if s.inflight = req && t.host.alive () then begin
          s.attempt <- s.attempt + 1;
          submit_now t s
        end)

let start_session t s =
  if t.requests = 0 then t.completed <- t.completed + 1
  else begin
    s.inflight <- 0;
    s.attempt <- 0;
    submit_now t s
  end

(* Stagger session starts across [over_ms] after [at] in client order, so
   ten thousand sessions do not land their first request on one tick. *)
let start t ~at ~over_ms =
  let count = Array.length t.sessions in
  let gap = if count <= 1 then 0.0 else over_ms /. float_of_int count in
  Array.iteri
    (fun i s ->
      let when_ = at +. (gap *. float_of_int i) in
      t.host.schedule ~at:when_ (fun () -> if t.host.alive () then start_session t s))
    t.sessions

let on_applied t ~client ~req =
  if client >= 0 && client mod t.n = t.home then begin
    let i = (client - t.home) / t.n in
    if i < Array.length t.sessions then begin
      let s = t.sessions.(i) in
      if s.inflight = req then
        if req + 1 < t.requests then begin
          s.inflight <- req + 1;
          s.attempt <- 0;
          submit_now t s
        end
        else begin
          s.inflight <- -1;
          t.completed <- t.completed + 1
        end
    end
  end
