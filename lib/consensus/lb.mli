(** Leader-based (Paxos-style) consensus — original and indirect.

    The paper notes (§3.2.2) that the rcv-guard it adds to Chandra–Toueg
    mirrors mechanisms in Paxos [Lamport 98] and PBFT [Castro–Liskov 99].
    This module makes that remark concrete: a classic single-decree
    ballot-voting algorithm driven by an Ω leader estimate (derived from
    the same failure detector the other algorithms use), in both the
    original form and an indirect form with the acceptance guard.

    Ballot [b] is owned by process [b mod n].  The leader of ballot [b]
    (a process that believes itself leader per {!Ics_fd.Failure_detector.leader}):

    + {e Prepare} (skipped for ballot 0, like CT's round-1 shortcut):
      asks all processes to promise ballot [b]; a promise carries the
      highest value the process has accepted so far.
    + On a majority of promises, the leader picks the accepted value with
      the highest ballot (or its own estimate if none) and sends
      {e Accept(b, v)}.
    + A process accepts [(b, v)] if it has not promised a higher ballot —
      and, in the {b indirect} variant, only if [rcv(v)] holds; otherwise
      it nacks (without disturbing its promise state), exactly the
      "don't vouch for payloads you don't hold" rule of Algorithm 2.
    + On a majority of accepts the leader R-broadcasts the decision; on
      any nack it retries with its next ballot ([b + n]).

    Safety is ballot-voting safety (two majorities intersect), so both
    variants keep [f < n/2].  The indirect variant satisfies No loss: a
    decided [v] was accepted by a majority, each member of which held
    [msgs(v)] when accepting — the configuration is v-stable.

    Liveness needs Ω to converge (eventual accuracy of the underlying
    detector): dueling leaders nack each other's ballots but a uniquely
    trusted leader eventually runs a ballot high enough to win. *)

module Transport = Ics_net.Transport
module Failure_detector = Ics_fd.Failure_detector

type config = {
  layer : string;
  rcv : Consensus_intf.rcv option;
      (** [None]: plain ballot voting.  [Some rcv]: the indirect variant. *)
}

val create :
  Transport.t -> Failure_detector.t -> config -> Consensus_intf.callbacks ->
  Consensus_intf.handle

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
