module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Wire = Ics_net.Wire

type t = { ids : Msg_id.t list; wire_bytes : int }

let normalize ids = Msg_id.Set.elements (Msg_id.Set.of_list ids)

let on_ids raw =
  let ids = normalize raw in
  { ids; wire_bytes = Wire.id_set_bytes (List.length ids) }

let of_sorted ids = { ids; wire_bytes = Wire.id_set_bytes (List.length ids) }

let on_messages msgs =
  let module T = Msg_id.Table in
  let by_id = T.create (List.length msgs) in
  List.iter (fun (m : App_msg.t) -> T.replace by_id m.id m) msgs;
  let ids = normalize (List.map (fun (m : App_msg.t) -> m.id) msgs) in
  let payload_bytes =
    List.fold_left (fun acc id -> acc + (T.find by_id id).App_msg.body_bytes) 0 ids
  in
  { ids; wire_bytes = Wire.id_set_bytes (List.length ids) + payload_bytes }

let empty = { ids = []; wire_bytes = Wire.id_set_bytes 0 }
let is_empty t = t.ids = []
let cardinal t = List.length t.ids
let equal a b = List.equal Msg_id.equal a.ids b.ids
let ids t = t.ids
let wire_bytes t = t.wire_bytes
let describe t = List.map Msg_id.to_string t.ids

(* Wire form: u32 wire_bytes, u32 cardinality, the ids, then filler for
   the payload bytes an on-messages value would carry.  [wire_bytes]
   already includes the id-set length prefix, so the full encoding is
   exactly [4 + wire_bytes] — consensus messages charge the codec size
   and the checksum covers real bytes either way. *)
let encoded_bytes t = 4 + t.wire_bytes

module Prim = Ics_codec.Prim
module Codec = Ics_codec.Codec

let encode w t =
  let k = List.length t.ids in
  Prim.u32 w t.wire_bytes;
  Prim.u32 w k;
  List.iter (Codec.enc_msg_id w) t.ids;
  Prim.filler w (t.wire_bytes - Wire.id_set_bytes k)

let decode r =
  let wire_bytes = Prim.r_u32 r in
  let k = Prim.r_u32 r in
  let ids = List.init k (fun _ -> Codec.dec_msg_id r) in
  Prim.r_skip r (wire_bytes - Wire.id_set_bytes k);
  { ids; wire_bytes }

let gen rng =
  let module Rng = Ics_prelude.Rng in
  let k = Rng.int rng 6 in
  let ids = List.init k (fun _ -> Codec.gen_msg_id rng) in
  if Rng.bool rng then on_ids ids
  else
    on_messages
      (List.map
         (fun id ->
           App_msg.make ~id ~body_bytes:(Rng.int rng 100)
             ~created_at:(Rng.float rng 1_000.0) ())
         ids)

let pp ppf t =
  Format.fprintf ppf "{%s}/%dB" (String.concat ", " (describe t)) t.wire_bytes
