module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg
module Wire = Ics_net.Wire

type t = { ids : Msg_id.t list; wire_bytes : int }

let normalize ids = Msg_id.Set.elements (Msg_id.Set.of_list ids)

let on_ids raw =
  let ids = normalize raw in
  { ids; wire_bytes = Wire.id_set_bytes (List.length ids) }

let of_sorted ids = { ids; wire_bytes = Wire.id_set_bytes (List.length ids) }

let on_messages msgs =
  let module T = Msg_id.Table in
  let by_id = T.create (List.length msgs) in
  List.iter (fun (m : App_msg.t) -> T.replace by_id m.id m) msgs;
  let ids = normalize (List.map (fun (m : App_msg.t) -> m.id) msgs) in
  let payload_bytes =
    List.fold_left (fun acc id -> acc + (T.find by_id id).App_msg.body_bytes) 0 ids
  in
  { ids; wire_bytes = Wire.id_set_bytes (List.length ids) + payload_bytes }

let empty = { ids = []; wire_bytes = Wire.id_set_bytes 0 }
let is_empty t = t.ids = []
let cardinal t = List.length t.ids
let equal a b = List.equal Msg_id.equal a.ids b.ids
let ids t = t.ids
let wire_bytes t = t.wire_bytes
let describe t = List.map Msg_id.to_string t.ids

let pp ppf t =
  Format.fprintf ppf "{%s}/%dB" (String.concat ", " (describe t)) t.wire_bytes
