module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Host = Ics_net.Host
module Failure_detector = Ics_fd.Failure_detector

type Message.payload +=
  | Est of { k : int; r : int; est : Proposal.t; ts : int }
  | Prop of { k : int; r : int; est : Proposal.t }
  | Ack of { k : int; r : int; ok : bool }
  | Decide of { k : int; est : Proposal.t }

type config = { layer : string; rcv : Consensus_intf.rcv option }

(* Exact encoded body sizes (tag byte + fields + proposal). *)
let est_bytes est = 13 + Proposal.encoded_bytes est
let prop_bytes est = 9 + Proposal.encoded_bytes est
let ack_bytes = 10
let decide_bytes est = 5 + Proposal.encoded_bytes est

let register_codec () =
  let module Codec = Ics_codec.Codec in
  let module Prim = Ics_codec.Prim in
  let module Rng = Ics_prelude.Rng in
  let gen_k rng = Ics_prelude.Rng.int rng 100 in
  let gen_r rng = 1 + Ics_prelude.Rng.int rng 8 in
  Codec.register ~tag:0x20 ~name:"ct.est"
    ~fits:(function Est _ -> true | _ -> false)
    ~size:(function Est { est; _ } -> est_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Est { k; r; est; ts } ->
          Prim.u32 w k;
          Prim.u32 w r;
          Prim.u32 w ts;
          Proposal.encode w est
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let r = Prim.r_u32 rd in
      let ts = Prim.r_u32 rd in
      Est { k; r; est = Proposal.decode rd; ts })
    ~gen:(fun rng ->
      Est { k = gen_k rng; r = gen_r rng; est = Proposal.gen rng; ts = Rng.int rng 8 });
  Codec.register ~tag:0x21 ~name:"ct.prop"
    ~fits:(function Prop _ -> true | _ -> false)
    ~size:(function Prop { est; _ } -> prop_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Prop { k; r; est } ->
          Prim.u32 w k;
          Prim.u32 w r;
          Proposal.encode w est
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let r = Prim.r_u32 rd in
      Prop { k; r; est = Proposal.decode rd })
    ~gen:(fun rng -> Prop { k = gen_k rng; r = gen_r rng; est = Proposal.gen rng });
  Codec.register ~tag:0x22 ~name:"ct.ack"
    ~fits:(function Ack _ -> true | _ -> false)
    ~size:(fun _ -> ack_bytes)
    ~encode_into:(fun w -> function
      | Ack { k; r; ok } ->
          Prim.u32 w k;
          Prim.u32 w r;
          Prim.bool w ok
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let r = Prim.r_u32 rd in
      Ack { k; r; ok = Prim.r_bool rd })
    ~gen:(fun rng -> Ack { k = gen_k rng; r = gen_r rng; ok = Rng.bool rng });
  Codec.register ~tag:0x23 ~name:"ct.decide"
    ~fits:(function Decide _ -> true | _ -> false)
    ~size:(function Decide { est; _ } -> decide_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Decide { k; est } ->
          Prim.u32 w k;
          Proposal.encode w est
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Decide { k; est = Proposal.decode rd })
    ~gen:(fun rng -> Decide { k = gen_k rng; est = Proposal.gen rng })

(* Coordinator-side state of the round the process currently leads. *)
type coord_phase =
  | Not_coordinator
  | Collecting  (* Phase 2, r > 1: gathering estimates *)
  | Waiting_acks of Proposal.t  (* Phase 4: proposal sent, counting replies *)

type inst = {
  k : int;
  mutable estimate : Proposal.t;  (* estimate_p *)
  mutable ts : int;
  mutable r : int;
  mutable coord : coord_phase;
  mutable waiting_prop : bool;  (* Phase 3 *)
  mutable decided : bool;
  est_in : (int, (Pid.t * int * Proposal.t) list ref) Hashtbl.t;
  prop_in : (int, Proposal.t) Hashtbl.t;
  acks_in : (int, (int ref * int ref)) Hashtbl.t;  (* round -> acks, nacks *)
}

type proc = { pid : Pid.t; instances : (int, inst) Hashtbl.t }

let get_list tbl key =
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add tbl key l;
      l

let get_counts tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.add tbl key c;
      c

let create ?(announce = false) transport fd config (cb : Consensus_intf.callbacks) =
  let engine = Transport.engine transport in
  let host = Transport.host transport in
  let n = Transport.n transport in
  let majority = Quorum.majority ~n in
  let layer = Transport.intern transport config.layer in
  let procs =
    Array.init n (fun pid -> { pid; instances = Hashtbl.create 16 })
  in
  let send ~src ~dst ~bytes payload =
    Transport.send transport ~src ~dst ~layer ~body_bytes:bytes payload
  in
  let send_all ~src ~bytes payload =
    Transport.send_to_all transport ~src ~layer ~body_bytes:bytes payload
  in

  (* Evaluate the rcv predicate (indirect variant), charging its CPU cost;
     the original variant adopts unconditionally and costs nothing. *)
  let accepts p (est : Proposal.t) =
    match config.rcv with
    | None -> true
    | Some rcv ->
        let ids = Proposal.ids est in
        Transport.charge_cpu transport p (Host.rcv_check_cost host ~ids:(List.length ids));
        rcv p ids
  in

  let decide_flood p inst est ~relay_from =
    if not inst.decided then begin
      inst.decided <- true;
      inst.waiting_prop <- false;
      inst.coord <- Not_coordinator;
      let dsts =
        List.filter
          (fun q -> match relay_from with Some src -> not (Pid.equal q src) | None -> true)
          (Pid.others ~n p)
      in
      Transport.multicast transport ~src:p ~dsts ~layer
        ~body_bytes:(decide_bytes est) (Decide { k = inst.k; est });
      Engine.record engine p (Trace.Decide (inst.k, Proposal.ids est));
      cb.on_decide p inst.k est
    end
  in

  (* Phase 4 check: the coordinator decides on a majority of acks and gives
     up the round on the first nack. *)
  let rec coord_check_acks p inst =
    match inst.coord with
    | Waiting_acks proposal ->
        let acks, nacks = get_counts inst.acks_in inst.r in
        if !acks >= majority then decide_flood p inst proposal ~relay_from:None
        else if !nacks >= 1 then advance_round p inst
    | Not_coordinator | Collecting -> ()

  (* Phase 2, rounds > 1: with a majority of estimates in hand, propose one
     carrying the largest timestamp. *)
  and coord_check_estimates p inst =
    match inst.coord with
    | Collecting ->
        let ests = !(get_list inst.est_in inst.r) in
        if List.length ests >= majority then begin
          let _, _, best =
            List.fold_left
              (fun ((_, bts, _) as acc) ((_, ts, _) as e) ->
                if ts > bts then e else acc)
              (List.hd ests) (List.tl ests)
          in
          inst.coord <- Waiting_acks best;
          send_all ~src:p ~bytes:(prop_bytes best)
            (Prop { k = inst.k; r = inst.r; est = best });
          coord_check_acks p inst
        end
    | Not_coordinator | Waiting_acks _ -> ()

  (* Phase 3: react to the coordinator's proposal for the current round. *)
  and handle_prop p inst (est : Proposal.t) =
    if inst.waiting_prop then begin
      inst.waiting_prop <- false;
      let c = Pid.coordinator ~n ~round:inst.r in
      let ok = accepts p est in
      if ok then begin
        inst.estimate <- est;
        inst.ts <- inst.r
      end;
      send ~src:p ~dst:c ~bytes:ack_bytes (Ack { k = inst.k; r = inst.r; ok });
      if not (Pid.equal p c) then advance_round p inst
    end

  and enter_phase3 p inst =
    inst.waiting_prop <- true;
    let c = Pid.coordinator ~n ~round:inst.r in
    match Hashtbl.find_opt inst.prop_in inst.r with
    | Some est -> handle_prop p inst est
    | None ->
        if Failure_detector.is_suspected fd ~by:p c then begin
          inst.waiting_prop <- false;
          send ~src:p ~dst:c ~bytes:ack_bytes (Ack { k = inst.k; r = inst.r; ok = false });
          if not (Pid.equal p c) then advance_round p inst
        end

  and start_round p inst =
    if not inst.decided then begin
      let c = Pid.coordinator ~n ~round:inst.r in
      (* Phase 1: send the timestamped estimate to the coordinator. *)
      if inst.r > 1 then
        send ~src:p ~dst:c ~bytes:(est_bytes inst.estimate)
          (Est { k = inst.k; r = inst.r; est = inst.estimate; ts = inst.ts });
      (* Phase 2 entry for the coordinator. *)
      if Pid.equal p c then begin
        if inst.r = 1 then begin
          (* First round: the coordinator proposes its own estimate without
             gathering (Algorithm 2 line 20). *)
          inst.coord <- Waiting_acks inst.estimate;
          send_all ~src:p ~bytes:(prop_bytes inst.estimate)
            (Prop { k = inst.k; r = 1; est = inst.estimate })
        end
        else begin
          inst.coord <- Collecting;
          coord_check_estimates p inst
        end
      end
      else inst.coord <- Not_coordinator;
      enter_phase3 p inst;
      (* Replies may already be buffered if this process lags behind. *)
      coord_check_acks p inst
    end

  and advance_round p inst =
    if not inst.decided then begin
      inst.r <- inst.r + 1;
      inst.coord <- Not_coordinator;
      inst.waiting_prop <- false;
      start_round p inst
    end
  in

  let new_instance p k estimate =
    let inst =
      {
        k;
        estimate;
        ts = 0;
        r = 1;
        coord = Not_coordinator;
        waiting_prop = false;
        decided = false;
        est_in = Hashtbl.create 8;
        prop_in = Hashtbl.create 8;
        acks_in = Hashtbl.create 8;
      }
    in
    Hashtbl.add procs.(p).instances k inst;
    Engine.record engine p (Trace.Propose (k, Proposal.ids estimate));
    inst
  in

  (* Find the instance, joining it (with the AB layer's current candidate
     value) if an instance-k message reaches a process that has not proposed
     yet — required for quorum liveness. *)
  let get_inst p k =
    match Hashtbl.find_opt procs.(p).instances k with
    | Some inst -> inst
    | None ->
        let inst = new_instance p k (cb.join p k) in
        start_round p inst;
        inst
  in

  let on_message p (msg : Message.t) =
    match msg.payload with
    | Est { k; r; est; ts } ->
        let inst =
          (* Announce path: a round-1 estimate reaching the round-1
             coordinator before it knows the instance seeds its join.  The
             AB layer's join value may be empty under batching (everything
             fresh already rides other open instances); adopting the
             announced estimate instead keeps the coordinator from
             proposing — and the instance from deciding — an empty set. *)
          if
            announce && r = 1
            && (not (Hashtbl.mem procs.(p).instances k))
            && Pid.equal p (Pid.coordinator ~n ~round:1)
          then begin
            let own = cb.join p k in
            let inst =
              new_instance p k (if Proposal.is_empty own then est else own)
            in
            start_round p inst;
            inst
          end
          else get_inst p k
        in
        if (not inst.decided) && r >= inst.r then begin
          let l = get_list inst.est_in r in
          l := (msg.src, ts, est) :: !l;
          if r = inst.r then coord_check_estimates p inst
        end
    | Prop { k; r; est } ->
        let inst = get_inst p k in
        if (not inst.decided) && r >= inst.r then begin
          Hashtbl.replace inst.prop_in r est;
          if r = inst.r then handle_prop p inst est
        end
    | Ack { k; r; ok } ->
        let inst = get_inst p k in
        if (not inst.decided) && r >= inst.r then begin
          let acks, nacks = get_counts inst.acks_in r in
          if ok then incr acks else incr nacks;
          if r = inst.r then coord_check_acks p inst
        end
    | Decide { k; est } ->
        let inst =
          match Hashtbl.find_opt procs.(p).instances k with
          | Some inst -> inst
          | None ->
              (* A decision can reach a process that never participated:
                 adopt it without running any round. *)
              let inst = new_instance p k est in
              inst
        in
        decide_flood p inst est ~relay_from:(Some msg.src)
    | _ -> ()
  in

  let on_suspect p suspect =
    (* Key-sorted: bucket-order iteration would make the ack/round-advance
       order — and hence the trace — depend on hashing internals. *)
    Ics_prelude.Sorted_tbl.iter ~cmp:Int.compare
      (fun _ inst ->
        if
          (not inst.decided) && inst.waiting_prop
          && Pid.equal (Pid.coordinator ~n ~round:inst.r) suspect
        then begin
          inst.waiting_prop <- false;
          send ~src:p ~dst:suspect ~bytes:ack_bytes
            (Ack { k = inst.k; r = inst.r; ok = false });
          advance_round p inst
        end)
      procs.(p).instances
  in

  List.iter
    (fun p ->
      Transport.register transport p ~layer (on_message p);
      Failure_detector.on_suspect fd ~observer:p (on_suspect p))
    (Pid.all ~n);

  let propose p k value =
    if Engine.is_alive engine p && not (Hashtbl.mem procs.(p).instances k) then begin
      let inst = new_instance p k value in
      start_round p inst;
      (* Round-1 non-coordinator proposals are otherwise silent — the
         coordinator alone multicasts in round 1.  Under batching /
         pipelining the proposers of an instance can be exactly the
         non-coordinators (the coordinator's fresh set may be empty), so
         a silent proposal would deadlock the instance: announce it by
         sending the phase-1 estimate to the coordinator, which joins and
         proposes (the r > 1 send, generalized to round 1).  Off by
         default so the unbatched traffic — and the pinned replay
         fingerprints — stay byte-identical. *)
      if announce && (not inst.decided) && inst.r = 1 then begin
        let c = Pid.coordinator ~n ~round:1 in
        if not (Pid.equal p c) then
          send ~src:p ~dst:c ~bytes:(est_bytes inst.estimate)
            (Est { k; r = 1; est = inst.estimate; ts = inst.ts })
      end
    end
  in
  let has_instance p k = Hashtbl.mem procs.(p).instances k in
  let name = match config.rcv with None -> "ct" | Some _ -> "ct-indirect" in
  { Consensus_intf.name; propose; has_instance }
