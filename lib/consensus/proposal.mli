(** Consensus proposal values.

    The reduction runs consensus on {e sets of message identifiers} (or on
    sets of full messages, for the baseline of Figure 1).  Because the
    simulator never materializes payload bytes, both cases are represented
    the same way: the sorted identifier list plus the encoded wire size the
    value would occupy inside a consensus message.  Ordering consensus on
    identifiers makes [wire_bytes] independent of payload size — that
    decoupling is the paper's performance argument. *)

module Msg_id = Ics_net.Msg_id
module App_msg = Ics_net.App_msg

type t = private { ids : Msg_id.t list; wire_bytes : int }
(** [ids] is sorted by {!Msg_id.compare} and duplicate-free. *)

val on_ids : Msg_id.t list -> t
(** A set-of-identifiers value: wire size is {!Ics_net.Wire.id_set_bytes}
    of the cardinality.  Input may be unsorted and contain duplicates. *)

val of_sorted : Msg_id.t list -> t
(** Like {!on_ids} but trusts the input to already be sorted and
    duplicate-free (e.g. [Msg_id.Set.elements]), skipping normalization. *)

val on_messages : App_msg.t list -> t
(** A set-of-messages value: wire size additionally counts every payload
    byte — consensus traffic then grows with message size. *)

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val ids : t -> Msg_id.t list
val wire_bytes : t -> int

val describe : t -> string list
(** Identifier strings for trace events. *)

(** {1 Wire form}

    Proposals ride inside consensus messages; their encoding carries the
    declared [wire_bytes] (so on-messages values occupy their payload
    bytes as real filler) followed by the id set. *)

val encoded_bytes : t -> int
(** Exact encoded size: [4 + wire_bytes t]. *)

val encode : Ics_codec.Prim.writer -> t -> unit
val decode : Ics_codec.Prim.reader -> t
val gen : Ics_prelude.Rng.t -> t
(** Fuzz generator mixing on-ids and on-messages shapes. *)

val pp : Format.formatter -> t -> unit
