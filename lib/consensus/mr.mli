(** Mostéfaoui–Raynal ◇S consensus (original and indirect — Algorithm 3).

    The algorithm proceeds in rounds of two phases with a rotating
    coordinator; in suspicion-free rounds every process can decide within
    two communication steps.

    + {e Phase 1}: the round's coordinator sends its estimate to all.  Every
      other process waits for that value or for a suspicion, then relays to
      everybody what it got: the coordinator's value, or ⊥ on suspicion.
      The {b indirect} variant additionally relays ⊥ when the [rcv] check on
      the coordinator's value fails (Algorithm 3 lines 16–19): a process
      must not vouch for payloads it does not hold.
    + {e Phase 2}: every process waits for a quorum of Phase-1 relays —
      ⌈(n+1)/2⌉ in the original, {b ⌈(2n+1)/3⌉ in the indirect variant}.
      If all are the same value [v], it decides [v] and R-broadcasts the
      decision.  If it saw [v] mixed with ⊥, it adopts [v] — in the
      indirect variant only if it holds [msgs(v)] or saw [v] at least
      ⌈(n+1)/3⌉ times (i.e. from at least one correct payload-holder).
      Then on to the next round.

    The quorum enlargement is the paper's second contribution: §3.3.2 shows
    that with majority quorums no acceptance rule for mixed rounds can
    satisfy both Uniform agreement and No loss, so the indirect variant
    {e loses resilience}: [f < n/3] instead of [f < n/2].  Any two
    ⌈(2n+1)/3⌉ quorums overlap in ⌈(n+1)/3⌉ ≥ f+1 processes, which restores
    both properties (Figure 2).

    The {e naive} adaptation — running the original algorithm on bare
    identifiers — is exactly [create] with [rcv = None] over id proposals;
    the test suite uses it to reproduce the §3.3.2 counterexample. *)

module Transport = Ics_net.Transport
module Failure_detector = Ics_fd.Failure_detector

type config = {
  layer : string;
  rcv : Consensus_intf.rcv option;
      (** [None]: original MR (majority quorums, unconditional adoption).
          [Some rcv]: indirect MR (⌈(2n+1)/3⌉ quorums, guarded adoption). *)
}

val create :
  ?announce:bool ->
  Transport.t -> Failure_detector.t -> config -> Consensus_intf.callbacks ->
  Consensus_intf.handle
(** [announce] (default false): a round-1 non-coordinator proposer sends
    a [Nudge] to the round-1 coordinator, which joins and relays its
    estimate.  Required for termination when instance proposers are
    chosen by batching / pipelining (the coordinator may never propose
    the instance itself); off by default so unbatched traffic is
    unchanged. *)

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
