module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Host = Ics_net.Host
module Failure_detector = Ics_fd.Failure_detector

type Message.payload +=
  | Kick of { k : int }  (* non-leader proposer nudges the leader *)
  | Prepare of { k : int; b : int }
  | Promise of { k : int; b : int; accepted : (int * Proposal.t) option }
  | Accept of { k : int; b : int; v : Proposal.t }
  | Accepted of { k : int; b : int }
  | Nack of { k : int; b : int; promised : int }
  | Decide of { k : int; v : Proposal.t }

type config = { layer : string; rcv : Consensus_intf.rcv option }

(* Exact encoded body sizes (tag byte + fields + proposal, where carried).
   Ballot numbers and [promised] are shifted by one on the wire so the
   sentinel -1 fits an unsigned field. *)
let kick_bytes = 5
let prepare_bytes = 9
let promise_bytes = function
  | Some (_, v) -> 14 + Proposal.encoded_bytes v
  | None -> 10
let accept_bytes v = 9 + Proposal.encoded_bytes v
let accepted_bytes = 9
let nack_bytes = 13
let decide_bytes v = 5 + Proposal.encoded_bytes v

let register_codec () =
  let module Codec = Ics_codec.Codec in
  let module Prim = Ics_codec.Prim in
  let module Rng = Ics_prelude.Rng in
  let gen_k rng = Rng.int rng 100 in
  let gen_b rng = Rng.int rng 16 in
  Codec.register ~tag:0x30 ~name:"lb.kick"
    ~fits:(function Kick _ -> true | _ -> false)
    ~size:(fun _ -> kick_bytes)
    ~encode_into:(fun w -> function Kick { k } -> Prim.u32 w k | _ -> assert false)
    ~dec:(fun rd -> Kick { k = Prim.r_u32 rd })
    ~gen:(fun rng -> Kick { k = gen_k rng });
  Codec.register ~tag:0x31 ~name:"lb.prepare"
    ~fits:(function Prepare _ -> true | _ -> false)
    ~size:(fun _ -> prepare_bytes)
    ~encode_into:(fun w -> function
      | Prepare { k; b } ->
          Prim.u32 w k;
          Prim.u32 w b
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Prepare { k; b = Prim.r_u32 rd })
    ~gen:(fun rng -> Prepare { k = gen_k rng; b = gen_b rng });
  Codec.register ~tag:0x32 ~name:"lb.promise"
    ~fits:(function Promise _ -> true | _ -> false)
    ~size:(function Promise { accepted; _ } -> promise_bytes accepted | _ -> assert false)
    ~encode_into:(fun w -> function
      | Promise { k; b; accepted } -> (
          Prim.u32 w k;
          Prim.u32 w b;
          match accepted with
          | Some (ab, v) ->
              Prim.bool w true;
              Prim.u32 w ab;
              Proposal.encode w v
          | None -> Prim.bool w false)
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let b = Prim.r_u32 rd in
      let accepted =
        if Prim.r_bool rd then begin
          let ab = Prim.r_u32 rd in
          Some (ab, Proposal.decode rd)
        end
        else None
      in
      Promise { k; b; accepted })
    ~gen:(fun rng ->
      Promise
        {
          k = gen_k rng;
          b = gen_b rng;
          accepted =
            (if Rng.bool rng then Some (gen_b rng, Proposal.gen rng) else None);
        });
  Codec.register ~tag:0x33 ~name:"lb.accept"
    ~fits:(function Accept _ -> true | _ -> false)
    ~size:(function Accept { v; _ } -> accept_bytes v | _ -> assert false)
    ~encode_into:(fun w -> function
      | Accept { k; b; v } ->
          Prim.u32 w k;
          Prim.u32 w b;
          Proposal.encode w v
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let b = Prim.r_u32 rd in
      Accept { k; b; v = Proposal.decode rd })
    ~gen:(fun rng -> Accept { k = gen_k rng; b = gen_b rng; v = Proposal.gen rng });
  Codec.register ~tag:0x34 ~name:"lb.accepted"
    ~fits:(function Accepted _ -> true | _ -> false)
    ~size:(fun _ -> accepted_bytes)
    ~encode_into:(fun w -> function
      | Accepted { k; b } ->
          Prim.u32 w k;
          Prim.u32 w b
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Accepted { k; b = Prim.r_u32 rd })
    ~gen:(fun rng -> Accepted { k = gen_k rng; b = gen_b rng });
  Codec.register ~tag:0x35 ~name:"lb.nack"
    ~fits:(function Nack _ -> true | _ -> false)
    ~size:(fun _ -> nack_bytes)
    ~encode_into:(fun w -> function
      | Nack { k; b; promised } ->
          Prim.u32 w k;
          Prim.u32 w b;
          Prim.u32 w (promised + 1)
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let b = Prim.r_u32 rd in
      Nack { k; b; promised = Prim.r_u32 rd - 1 })
    ~gen:(fun rng -> Nack { k = gen_k rng; b = gen_b rng; promised = Rng.int rng 16 - 1 });
  Codec.register ~tag:0x36 ~name:"lb.decide"
    ~fits:(function Decide _ -> true | _ -> false)
    ~size:(function Decide { v; _ } -> decide_bytes v | _ -> assert false)
    ~encode_into:(fun w -> function
      | Decide { k; v } ->
          Prim.u32 w k;
          Proposal.encode w v
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Decide { k; v = Proposal.decode rd })
    ~gen:(fun rng -> Decide { k = gen_k rng; v = Proposal.gen rng })

type leader_phase = Idle | Preparing | Accepting of Proposal.t

type inst = {
  k : int;
  mutable estimate : Proposal.t;
  mutable promised : int;  (* highest ballot promised; -1 = none *)
  mutable accepted : (int * Proposal.t) option;
  mutable decided : bool;
  mutable highest_seen : int;  (* highest ballot observed anywhere *)
  (* leader-side state for the ballot this process currently drives *)
  mutable my_ballot : int;  (* -1 = never initiated *)
  mutable phase : leader_phase;
  mutable promises : (int * Proposal.t) option list;
  mutable accepts : int;
}

type proc = { pid : Pid.t; instances : (int, inst) Hashtbl.t }

(* Smallest ballot owned by [p] strictly greater than [above]. *)
let next_ballot ~n ~p ~above =
  let b0 = above + 1 in
  let off = (((p - b0) mod n) + n) mod n in
  b0 + off

let create transport fd config (cb : Consensus_intf.callbacks) =
  let engine = Transport.engine transport in
  let host = Transport.host transport in
  let n = Transport.n transport in
  let majority = Quorum.majority ~n in
  let layer = Transport.intern transport config.layer in
  let procs = Array.init n (fun pid -> { pid; instances = Hashtbl.create 16 }) in

  let send ~src ~dst ~bytes payload =
    Transport.send transport ~src ~dst ~layer ~body_bytes:bytes payload
  in
  let send_all ~src ~bytes payload =
    Transport.send_to_all transport ~src ~layer ~body_bytes:bytes payload
  in

  let rcv_holds p (v : Proposal.t) =
    match config.rcv with
    | None -> true
    | Some rcv ->
        let ids = Proposal.ids v in
        Transport.charge_cpu transport p (Host.rcv_check_cost host ~ids:(List.length ids));
        rcv p ids
  in

  let decide_flood p inst v ~relay_from =
    if not inst.decided then begin
      inst.decided <- true;
      inst.phase <- Idle;
      let dsts =
        List.filter
          (fun q -> match relay_from with Some src -> not (Pid.equal q src) | None -> true)
          (Pid.others ~n p)
      in
      Transport.multicast transport ~src:p ~dsts ~layer
        ~body_bytes:(decide_bytes v) (Decide { k = inst.k; v });
      Engine.record engine p (Trace.Decide (inst.k, Proposal.ids v));
      cb.on_decide p inst.k v
    end
  in

  let start_ballot p inst =
    if not inst.decided then begin
      let b = next_ballot ~n ~p ~above:(max inst.highest_seen inst.my_ballot) in
      inst.my_ballot <- b;
      inst.highest_seen <- max inst.highest_seen b;
      inst.promises <- [];
      inst.accepts <- 0;
      if b = 0 then begin
        (* Nothing can have been accepted below ballot 0: go straight to
           the accept phase with our own estimate. *)
        inst.phase <- Accepting inst.estimate;
        send_all ~src:p ~bytes:(accept_bytes inst.estimate)
          (Accept { k = inst.k; b; v = inst.estimate })
      end
      else begin
        inst.phase <- Preparing;
        send_all ~src:p ~bytes:prepare_bytes (Prepare { k = inst.k; b })
      end
    end
  in

  let new_instance p k estimate =
    let inst =
      {
        k;
        estimate;
        promised = -1;
        accepted = None;
        decided = false;
        highest_seen = -1;
        my_ballot = -1;
        phase = Idle;
        promises = [];
        accepts = 0;
      }
    in
    Hashtbl.add procs.(p).instances k inst;
    Engine.record engine p (Trace.Propose (k, Proposal.ids estimate));
    inst
  in

  (* Drive or delegate: leaders start a ballot, everyone else nudges the
     process they currently believe to be the leader. *)
  let engage p inst =
    if not inst.decided then begin
      let l = Failure_detector.leader fd ~observer:p in
      if Pid.equal l p then begin
        if inst.phase = Idle then start_ballot p inst
      end
      else send ~src:p ~dst:l ~bytes:kick_bytes (Kick { k = inst.k })
    end
  in

  let get_inst p k =
    match Hashtbl.find_opt procs.(p).instances k with
    | Some inst -> inst
    | None ->
        let inst = new_instance p k (cb.join p k) in
        engage p inst;
        inst
  in

  let leader_pick_value inst =
    let best =
      List.fold_left
        (fun acc promise ->
          match (acc, promise) with
          | None, p -> p
          | Some (ab, _), Some (pb, pv) when pb > ab -> Some (pb, pv)
          | acc, _ -> acc)
        None inst.promises
    in
    match best with Some (_, v) -> v | None -> inst.estimate
  in

  let on_message p (msg : Message.t) =
    match msg.payload with
    | Kick { k } ->
        let inst = get_inst p k in
        if Failure_detector.leader fd ~observer:p = p && inst.phase = Idle then
          start_ballot p inst
    | Prepare { k; b } ->
        let inst = get_inst p k in
        if not inst.decided then begin
          inst.highest_seen <- max inst.highest_seen b;
          if b >= inst.promised then begin
            inst.promised <- b;
            send ~src:p ~dst:msg.src ~bytes:(promise_bytes inst.accepted)
              (Promise { k; b; accepted = inst.accepted })
          end
          else
            send ~src:p ~dst:msg.src ~bytes:nack_bytes
              (Nack { k; b; promised = inst.promised })
        end
    | Promise { k; b; accepted } ->
        let inst = get_inst p k in
        if (not inst.decided) && inst.phase = Preparing && b = inst.my_ballot then begin
          inst.promises <- accepted :: inst.promises;
          if List.length inst.promises >= majority then begin
            let v = leader_pick_value inst in
            inst.phase <- Accepting v;
            inst.accepts <- 0;
            send_all ~src:p ~bytes:(accept_bytes v) (Accept { k; b; v })
          end
        end
    | Accept { k; b; v } ->
        let inst = get_inst p k in
        if not inst.decided then begin
          inst.highest_seen <- max inst.highest_seen b;
          if b >= inst.promised && rcv_holds p v then begin
            inst.promised <- b;
            inst.accepted <- Some (b, v);
            send ~src:p ~dst:msg.src ~bytes:accepted_bytes (Accepted { k; b })
          end
          else
            send ~src:p ~dst:msg.src ~bytes:nack_bytes
              (Nack { k; b; promised = inst.promised })
        end
    | Accepted { k; b } ->
        let inst = get_inst p k in
        (match inst.phase with
        | Accepting v when (not inst.decided) && b = inst.my_ballot ->
            inst.accepts <- inst.accepts + 1;
            if inst.accepts >= majority then decide_flood p inst v ~relay_from:None
        | Accepting _ | Idle | Preparing -> ())
    | Nack { k; b; promised } ->
        let inst = get_inst p k in
        if (not inst.decided) && b = inst.my_ballot && inst.phase <> Idle then begin
          inst.highest_seen <- max inst.highest_seen promised;
          inst.phase <- Idle;
          (* Retry while we still believe we lead; otherwise defer to the
             real leader (it will be kicked by the suspicion handler or by
             other proposers). *)
          if Failure_detector.leader fd ~observer:p = p then start_ballot p inst
        end
    | Decide { k; v } ->
        let inst =
          match Hashtbl.find_opt procs.(p).instances k with
          | Some inst -> inst
          | None -> new_instance p k v
        in
        decide_flood p inst v ~relay_from:(Some msg.src)
    | _ -> ()
  in

  (* Leadership changes: every undecided instance re-engages. *)
  let on_fd_change p _target =
    (* Key-sorted: the re-engage order is visible in the trace. *)
    Ics_prelude.Sorted_tbl.iter ~cmp:Int.compare
      (fun _ inst -> if not inst.decided then engage p inst)
      procs.(p).instances
  in

  List.iter
    (fun p ->
      Transport.register transport p ~layer (on_message p);
      Failure_detector.on_suspect fd ~observer:p (on_fd_change p);
      Failure_detector.on_trust fd ~observer:p (on_fd_change p))
    (Pid.all ~n);

  let propose p k value =
    if Engine.is_alive engine p && not (Hashtbl.mem procs.(p).instances k) then begin
      let inst = new_instance p k value in
      engage p inst
    end
  in
  let has_instance p k = Hashtbl.mem procs.(p).instances k in
  let name = match config.rcv with None -> "lb" | Some _ -> "lb-indirect" in
  { Consensus_intf.name; propose; has_instance }
