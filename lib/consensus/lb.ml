module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Host = Ics_net.Host
module Wire = Ics_net.Wire
module Failure_detector = Ics_fd.Failure_detector

type Message.payload +=
  | Kick of { k : int }  (* non-leader proposer nudges the leader *)
  | Prepare of { k : int; b : int }
  | Promise of { k : int; b : int; accepted : (int * Proposal.t) option }
  | Accept of { k : int; b : int; v : Proposal.t }
  | Accepted of { k : int; b : int }
  | Nack of { k : int; b : int; promised : int }
  | Decide of { k : int; v : Proposal.t }

type config = { layer : string; rcv : Consensus_intf.rcv option }

type leader_phase = Idle | Preparing | Accepting of Proposal.t

type inst = {
  k : int;
  mutable estimate : Proposal.t;
  mutable promised : int;  (* highest ballot promised; -1 = none *)
  mutable accepted : (int * Proposal.t) option;
  mutable decided : bool;
  mutable highest_seen : int;  (* highest ballot observed anywhere *)
  (* leader-side state for the ballot this process currently drives *)
  mutable my_ballot : int;  (* -1 = never initiated *)
  mutable phase : leader_phase;
  mutable promises : (int * Proposal.t) option list;
  mutable accepts : int;
}

type proc = { pid : Pid.t; instances : (int, inst) Hashtbl.t }

(* Smallest ballot owned by [p] strictly greater than [above]. *)
let next_ballot ~n ~p ~above =
  let b0 = above + 1 in
  let off = (((p - b0) mod n) + n) mod n in
  b0 + off

let create transport fd config (cb : Consensus_intf.callbacks) =
  let engine = Transport.engine transport in
  let host = Transport.host transport in
  let n = Transport.n transport in
  let majority = Quorum.majority ~n in
  let layer = Transport.intern transport config.layer in
  let procs = Array.init n (fun pid -> { pid; instances = Hashtbl.create 16 }) in

  let send ~src ~dst ~bytes payload =
    Transport.send transport ~src ~dst ~layer ~body_bytes:bytes payload
  in
  let send_all ~src ~bytes payload =
    Transport.send_to_all transport ~src ~layer ~body_bytes:bytes payload
  in

  let rcv_holds p (v : Proposal.t) =
    match config.rcv with
    | None -> true
    | Some rcv ->
        let ids = Proposal.ids v in
        Transport.charge_cpu transport p (Host.rcv_check_cost host ~ids:(List.length ids));
        rcv p ids
  in

  let decide_flood p inst v ~relay_from =
    if not inst.decided then begin
      inst.decided <- true;
      inst.phase <- Idle;
      let dsts =
        List.filter
          (fun q -> match relay_from with Some src -> not (Pid.equal q src) | None -> true)
          (Pid.others ~n p)
      in
      Transport.multicast transport ~src:p ~dsts ~layer
        ~body_bytes:(Wire.estimate_bytes (Proposal.wire_bytes v))
        (Decide { k = inst.k; v });
      Engine.record engine p (Trace.Decide (inst.k, Proposal.ids v));
      cb.on_decide p inst.k v
    end
  in

  let start_ballot p inst =
    if not inst.decided then begin
      let b = next_ballot ~n ~p ~above:(max inst.highest_seen inst.my_ballot) in
      inst.my_ballot <- b;
      inst.highest_seen <- max inst.highest_seen b;
      inst.promises <- [];
      inst.accepts <- 0;
      if b = 0 then begin
        (* Nothing can have been accepted below ballot 0: go straight to
           the accept phase with our own estimate. *)
        inst.phase <- Accepting inst.estimate;
        send_all ~src:p
          ~bytes:(Wire.estimate_bytes (Proposal.wire_bytes inst.estimate))
          (Accept { k = inst.k; b; v = inst.estimate })
      end
      else begin
        inst.phase <- Preparing;
        send_all ~src:p ~bytes:Wire.ack_bytes (Prepare { k = inst.k; b })
      end
    end
  in

  let new_instance p k estimate =
    let inst =
      {
        k;
        estimate;
        promised = -1;
        accepted = None;
        decided = false;
        highest_seen = -1;
        my_ballot = -1;
        phase = Idle;
        promises = [];
        accepts = 0;
      }
    in
    Hashtbl.add procs.(p).instances k inst;
    Engine.record engine p (Trace.Propose (k, Proposal.ids estimate));
    inst
  in

  (* Drive or delegate: leaders start a ballot, everyone else nudges the
     process they currently believe to be the leader. *)
  let engage p inst =
    if not inst.decided then begin
      let l = Failure_detector.leader fd ~observer:p in
      if Pid.equal l p then begin
        if inst.phase = Idle then start_ballot p inst
      end
      else send ~src:p ~dst:l ~bytes:Wire.ack_bytes (Kick { k = inst.k })
    end
  in

  let get_inst p k =
    match Hashtbl.find_opt procs.(p).instances k with
    | Some inst -> inst
    | None ->
        let inst = new_instance p k (cb.join p k) in
        engage p inst;
        inst
  in

  let leader_pick_value inst =
    let best =
      List.fold_left
        (fun acc promise ->
          match (acc, promise) with
          | None, p -> p
          | Some (ab, _), Some (pb, pv) when pb > ab -> Some (pb, pv)
          | acc, _ -> acc)
        None inst.promises
    in
    match best with Some (_, v) -> v | None -> inst.estimate
  in

  let on_message p (msg : Message.t) =
    match msg.payload with
    | Kick { k } ->
        let inst = get_inst p k in
        if Failure_detector.leader fd ~observer:p = p && inst.phase = Idle then
          start_ballot p inst
    | Prepare { k; b } ->
        let inst = get_inst p k in
        if not inst.decided then begin
          inst.highest_seen <- max inst.highest_seen b;
          if b >= inst.promised then begin
            inst.promised <- b;
            send ~src:p ~dst:msg.src
              ~bytes:
                (Wire.estimate_bytes
                   (match inst.accepted with
                   | Some (_, v) -> Proposal.wire_bytes v
                   | None -> 0))
              (Promise { k; b; accepted = inst.accepted })
          end
          else
            send ~src:p ~dst:msg.src ~bytes:Wire.ack_bytes
              (Nack { k; b; promised = inst.promised })
        end
    | Promise { k; b; accepted } ->
        let inst = get_inst p k in
        if (not inst.decided) && inst.phase = Preparing && b = inst.my_ballot then begin
          inst.promises <- accepted :: inst.promises;
          if List.length inst.promises >= majority then begin
            let v = leader_pick_value inst in
            inst.phase <- Accepting v;
            inst.accepts <- 0;
            send_all ~src:p
              ~bytes:(Wire.estimate_bytes (Proposal.wire_bytes v))
              (Accept { k; b; v })
          end
        end
    | Accept { k; b; v } ->
        let inst = get_inst p k in
        if not inst.decided then begin
          inst.highest_seen <- max inst.highest_seen b;
          if b >= inst.promised && rcv_holds p v then begin
            inst.promised <- b;
            inst.accepted <- Some (b, v);
            send ~src:p ~dst:msg.src ~bytes:Wire.ack_bytes (Accepted { k; b })
          end
          else
            send ~src:p ~dst:msg.src ~bytes:Wire.ack_bytes
              (Nack { k; b; promised = inst.promised })
        end
    | Accepted { k; b } ->
        let inst = get_inst p k in
        (match inst.phase with
        | Accepting v when (not inst.decided) && b = inst.my_ballot ->
            inst.accepts <- inst.accepts + 1;
            if inst.accepts >= majority then decide_flood p inst v ~relay_from:None
        | Accepting _ | Idle | Preparing -> ())
    | Nack { k; b; promised } ->
        let inst = get_inst p k in
        if (not inst.decided) && b = inst.my_ballot && inst.phase <> Idle then begin
          inst.highest_seen <- max inst.highest_seen promised;
          inst.phase <- Idle;
          (* Retry while we still believe we lead; otherwise defer to the
             real leader (it will be kicked by the suspicion handler or by
             other proposers). *)
          if Failure_detector.leader fd ~observer:p = p then start_ballot p inst
        end
    | Decide { k; v } ->
        let inst =
          match Hashtbl.find_opt procs.(p).instances k with
          | Some inst -> inst
          | None -> new_instance p k v
        in
        decide_flood p inst v ~relay_from:(Some msg.src)
    | _ -> ()
  in

  (* Leadership changes: every undecided instance re-engages. *)
  let on_fd_change p _target =
    Hashtbl.iter (fun _ inst -> if not inst.decided then engage p inst) procs.(p).instances
  in

  List.iter
    (fun p ->
      Transport.register transport p ~layer (on_message p);
      Failure_detector.on_suspect fd ~observer:p (on_fd_change p);
      Failure_detector.on_trust fd ~observer:p (on_fd_change p))
    (Pid.all ~n);

  let propose p k value =
    if Engine.is_alive engine p && not (Hashtbl.mem procs.(p).instances k) then begin
      let inst = new_instance p k value in
      engage p inst
    end
  in
  let has_instance p k = Hashtbl.mem procs.(p).instances k in
  let name = match config.rcv with None -> "lb" | Some _ -> "lb-indirect" in
  { Consensus_intf.name; propose; has_instance }
