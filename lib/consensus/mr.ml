module Engine = Ics_sim.Engine
module Pid = Ics_sim.Pid
module Trace = Ics_sim.Trace
module Transport = Ics_net.Transport
module Message = Ics_net.Message
module Host = Ics_net.Host
module Failure_detector = Ics_fd.Failure_detector

(* One message type per round: every process (coordinator included)
   broadcasts its [est_from_c] — the coordinator's value, or ⊥.  The
   coordinator's own broadcast doubles as its Phase-1 proposal, exactly as
   in Algorithm 3 where line 20's send is shared by all processes. *)
type Message.payload +=
  | Relay of { k : int; r : int; est : Proposal.t option }
  | Decide of { k : int; est : Proposal.t }
  | Nudge of { k : int; est : Proposal.t }
      (* a round-1 non-coordinator proposer waking the coordinator (the
         batched/pipelined proposers of an instance may not include it);
         carries the proposer's estimate so a coordinator with nothing
         fresh of its own seeds the instance with it instead of an empty
         set *)

type config = { layer : string; rcv : Consensus_intf.rcv option }

type inst = {
  k : int;
  mutable estimate : Proposal.t;
  mutable r : int;
  mutable waiting_prop : bool;  (* Phase 1, non-coordinator *)
  mutable in_phase2 : bool;
  mutable decided : bool;
  relay_in : (int, (Pid.t * Proposal.t option) list ref) Hashtbl.t;
}

type proc = { pid : Pid.t; instances : (int, inst) Hashtbl.t }

let get_list tbl key =
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add tbl key l;
      l

(* Exact encoded body sizes (tag byte + fields + optional proposal). *)
let relay_bytes = function
  | Some est -> 10 + Proposal.encoded_bytes est
  | None -> 10

let decide_bytes est = 5 + Proposal.encoded_bytes est
let nudge_bytes est = 5 + Proposal.encoded_bytes est

let register_codec () =
  let module Codec = Ics_codec.Codec in
  let module Prim = Ics_codec.Prim in
  let module Rng = Ics_prelude.Rng in
  Codec.register ~tag:0x28 ~name:"mr.relay"
    ~fits:(function Relay _ -> true | _ -> false)
    ~size:(function Relay { est; _ } -> relay_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Relay { k; r; est } -> (
          Prim.u32 w k;
          Prim.u32 w r;
          match est with
          | Some e ->
              Prim.bool w true;
              Proposal.encode w e
          | None -> Prim.bool w false)
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      let r = Prim.r_u32 rd in
      let est = if Prim.r_bool rd then Some (Proposal.decode rd) else None in
      Relay { k; r; est })
    ~gen:(fun rng ->
      Relay
        {
          k = Rng.int rng 100;
          r = 1 + Rng.int rng 8;
          est = (if Rng.bool rng then Some (Proposal.gen rng) else None);
        });
  Codec.register ~tag:0x29 ~name:"mr.decide"
    ~fits:(function Decide _ -> true | _ -> false)
    ~size:(function Decide { est; _ } -> decide_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Decide { k; est } ->
          Prim.u32 w k;
          Proposal.encode w est
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Decide { k; est = Proposal.decode rd })
    ~gen:(fun rng -> Decide { k = Rng.int rng 100; est = Proposal.gen rng });
  Codec.register ~tag:0x2A ~name:"mr.nudge"
    ~fits:(function Nudge _ -> true | _ -> false)
    ~size:(function Nudge { est; _ } -> nudge_bytes est | _ -> assert false)
    ~encode_into:(fun w -> function
      | Nudge { k; est } ->
          Prim.u32 w k;
          Proposal.encode w est
      | _ -> assert false)
    ~dec:(fun rd ->
      let k = Prim.r_u32 rd in
      Nudge { k; est = Proposal.decode rd })
    ~gen:(fun rng -> Nudge { k = Rng.int rng 100; est = Proposal.gen rng })

let create ?(announce = false) transport fd config (cb : Consensus_intf.callbacks) =
  let engine = Transport.engine transport in
  let host = Transport.host transport in
  let n = Transport.n transport in
  let quorum =
    match config.rcv with
    | None -> Quorum.majority ~n
    | Some _ -> Quorum.two_thirds ~n
  in
  let adoption_threshold = Quorum.one_third ~n in
  let layer = Transport.intern transport config.layer in
  let procs = Array.init n (fun pid -> { pid; instances = Hashtbl.create 16 }) in

  let rcv_holds p (est : Proposal.t) =
    match config.rcv with
    | None -> true
    | Some rcv ->
        let ids = Proposal.ids est in
        Transport.charge_cpu transport p (Host.rcv_check_cost host ~ids:(List.length ids));
        rcv p ids
  in

  let decide_flood p inst est ~relay_from =
    if not inst.decided then begin
      inst.decided <- true;
      inst.waiting_prop <- false;
      inst.in_phase2 <- false;
      let dsts =
        List.filter
          (fun q -> match relay_from with Some src -> not (Pid.equal q src) | None -> true)
          (Pid.others ~n p)
      in
      Transport.multicast transport ~src:p ~dsts ~layer
        ~body_bytes:(decide_bytes est) (Decide { k = inst.k; est });
      Engine.record engine p (Trace.Decide (inst.k, Proposal.ids est));
      cb.on_decide p inst.k est
    end
  in

  (* Phase 2: with a quorum of relays in hand, decide on unanimity, adopt on
     a mixed round (guarded in the indirect variant), and move on. *)
  let rec check_phase2 p inst =
    if inst.in_phase2 && not inst.decided then begin
      let relays = !(get_list inst.relay_in inst.r) in
      if List.length relays >= quorum then begin
        inst.in_phase2 <- false;
        let valids = List.filter_map (fun (_, e) -> e) relays in
        let bots = List.length relays - List.length valids in
        match valids with
        | [] -> advance_round p inst
        | v :: _ ->
            (* All valid relays of a round carry the same coordinator
               value, so inspecting the first is enough. *)
            if bots = 0 then begin
              inst.estimate <- v;
              decide_flood p inst v ~relay_from:None
            end
            else begin
              (* Algorithm 3 line 28: adopt v iff rcv(v) holds or v was
                 seen ⌈(n+1)/3⌉ times; the original adopts unconditionally. *)
              let adopt =
                match config.rcv with
                | None -> true
                | Some _ -> List.length valids >= adoption_threshold || rcv_holds p v
              in
              if adopt then inst.estimate <- v;
              advance_round p inst
            end
      end
    end

  (* End of Phase 1 at a non-coordinator: relay the coordinator's value, or
     ⊥ if the coordinator is suspected or (indirect) its payloads are
     missing. *)
  and finish_phase1 p inst (est_from_c : Proposal.t option) =
    if inst.waiting_prop then begin
      inst.waiting_prop <- false;
      let contribution =
        match est_from_c with
        | Some est when rcv_holds p est -> Some est
        | Some _ | None -> None
      in
      Transport.send_to_all transport ~src:p ~layer ~body_bytes:(relay_bytes contribution)
        (Relay { k = inst.k; r = inst.r; est = contribution });
      inst.in_phase2 <- true;
      check_phase2 p inst
    end

  and start_round p inst =
    if not inst.decided then begin
      let c = Pid.coordinator ~n ~round:inst.r in
      if Pid.equal p c then begin
        (* The coordinator's relay of its own estimate is the proposal.  It
           trivially holds its own value's payloads: an estimate becomes
           one's own only through rcv or as the initial proposal. *)
        Transport.send_to_all transport ~src:p ~layer
          ~body_bytes:(relay_bytes (Some inst.estimate))
          (Relay { k = inst.k; r = inst.r; est = Some inst.estimate });
        inst.waiting_prop <- false;
        inst.in_phase2 <- true;
        check_phase2 p inst
      end
      else begin
        inst.waiting_prop <- true;
        (* The coordinator's relay may already be buffered if p lags. *)
        let buffered = !(get_list inst.relay_in inst.r) in
        match List.find_opt (fun (q, _) -> Pid.equal q c) buffered with
        | Some (_, est) -> finish_phase1 p inst est
        | None ->
            if Failure_detector.is_suspected fd ~by:p c then finish_phase1 p inst None
      end
    end

  and advance_round p inst =
    if not inst.decided then begin
      inst.r <- inst.r + 1;
      inst.waiting_prop <- false;
      inst.in_phase2 <- false;
      start_round p inst
    end
  in

  let new_instance p k estimate =
    let inst =
      {
        k;
        estimate;
        r = 1;
        waiting_prop = false;
        in_phase2 = false;
        decided = false;
        relay_in = Hashtbl.create 8;
      }
    in
    Hashtbl.add procs.(p).instances k inst;
    Engine.record engine p (Trace.Propose (k, Proposal.ids estimate));
    inst
  in

  let get_inst p k =
    match Hashtbl.find_opt procs.(p).instances k with
    | Some inst -> inst
    | None ->
        let inst = new_instance p k (cb.join p k) in
        start_round p inst;
        inst
  in

  let on_message p (msg : Message.t) =
    match msg.payload with
    | Relay { k; r; est } ->
        let inst = get_inst p k in
        if (not inst.decided) && r >= inst.r then begin
          let l = get_list inst.relay_in r in
          l := (msg.src, est) :: !l;
          if r = inst.r then begin
            let c = Pid.coordinator ~n ~round:inst.r in
            if inst.waiting_prop && Pid.equal msg.src c then finish_phase1 p inst est
            else check_phase2 p inst
          end
        end
    | Decide { k; est } ->
        let inst =
          match Hashtbl.find_opt procs.(p).instances k with
          | Some inst -> inst
          | None -> new_instance p k est
        in
        decide_flood p inst est ~relay_from:(Some msg.src)
    | Nudge { k; est } ->
        (* Joining is the point: a nudged coordinator starts round 1 and
           relays its estimate, giving the instance its first traffic.
           When the AB layer's join value is empty (everything fresh is
           already inflight elsewhere), seed with the announced estimate —
           the receivers' rcv guards still protect No-loss even though
           this coordinator may not hold those payloads yet. *)
        if not (Hashtbl.mem procs.(p).instances k) then begin
          let own = cb.join p k in
          let inst =
            new_instance p k (if Proposal.is_empty own then est else own)
          in
          start_round p inst
        end
    | _ -> ()
  in

  let on_suspect p suspect =
    (* Key-sorted: bucket-order iteration would make the phase-1 finish
       order — and hence the trace — depend on hashing internals. *)
    Ics_prelude.Sorted_tbl.iter ~cmp:Int.compare
      (fun _ inst ->
        if
          (not inst.decided) && inst.waiting_prop
          && Pid.equal (Pid.coordinator ~n ~round:inst.r) suspect
        then finish_phase1 p inst None)
      procs.(p).instances
  in

  List.iter
    (fun p ->
      Transport.register transport p ~layer (on_message p);
      Failure_detector.on_suspect fd ~observer:p (on_suspect p))
    (Pid.all ~n);

  let propose p k value =
    if Engine.is_alive engine p && not (Hashtbl.mem procs.(p).instances k) then begin
      let inst = new_instance p k value in
      start_round p inst;
      (* Same liveness hole as CT's round 1: a non-coordinator proposer
         sends nothing until the coordinator's relay arrives, and under
         batching / pipelining the coordinator may never propose this
         instance itself.  Announce with a nudge (LB's Kick, ported).
         Off by default to keep the unbatched traffic — and the pinned
         replay fingerprints — byte-identical. *)
      if announce && (not inst.decided) && inst.r = 1 then begin
        let c = Pid.coordinator ~n ~round:1 in
        if not (Pid.equal p c) then
          Transport.send transport ~src:p ~dst:c ~layer
            ~body_bytes:(nudge_bytes inst.estimate)
            (Nudge { k; est = inst.estimate })
      end
    end
  in
  let has_instance p k = Hashtbl.mem procs.(p).instances k in
  let name = match config.rcv with None -> "mr" | Some _ -> "mr-indirect" in
  { Consensus_intf.name; propose; has_instance }
