(** Chandra–Toueg ◇S consensus (original and indirect — Algorithm 2).

    The algorithm proceeds in asynchronous rounds with a rotating
    coordinator and requires a majority of correct processes ([f < n/2]).
    Round [r] at process [p]:

    + {e Phase 1} (if [r > 1]): [p] sends its timestamped estimate to the
      round's coordinator.
    + {e Phase 2} (coordinator): in round 1 the coordinator proposes its own
      estimate; in later rounds it gathers ⌈(n+1)/2⌉ estimates and proposes
      one with the largest timestamp.  The proposal is sent to all
      (including itself).
    + {e Phase 3}: [p] waits for the coordinator's proposal or a suspicion
      from its failure detector.  On a proposal: the {b original} variant
      always adopts it (estimate ← proposal, timestamp ← r) and acks; the
      {b indirect} variant first evaluates [rcv] on the proposal and nacks
      without adopting when payloads are missing (Algorithm 2 lines
      25–30) — the coordinator's selected value ({e estimate_c}) thus stays
      distinct from each process's own estimate ({e estimate_p}).  On a
      suspicion: nack.  Non-coordinators then move to round [r+1].
    + {e Phase 4} (coordinator): wait for ⌈(n+1)/2⌉ acks (then R-broadcast
      the decision) or a single nack (then move to round [r+1]).

    Decisions are disseminated by flooding ("R-broadcast the decide
    message"), so a coordinator crash after deciding cannot block anyone.

    The indirect variant preserves the original resilience [f < n/2]: a
    v-valent configuration requires a majority holding estimate [v], each
    of which either started with [v] (and holds [msgs(v)] by construction
    of the atomic broadcast layer) or passed the [rcv] check — so the
    configuration is v-stable (§3.2.3). *)

module Transport = Ics_net.Transport
module Failure_detector = Ics_fd.Failure_detector

type config = {
  layer : string;  (** transport layer name, e.g. ["consensus"] *)
  rcv : Consensus_intf.rcv option;
      (** [None]: original algorithm (always adopt — used both for
          consensus on messages and for the {e faulty} consensus on raw
          identifiers).  [Some rcv]: the indirect algorithm; each [rcv]
          evaluation also charges its CPU cost
          ({!Ics_net.Host.rcv_check_cost}). *)
}

val create :
  ?announce:bool ->
  Transport.t -> Failure_detector.t -> config -> Consensus_intf.callbacks ->
  Consensus_intf.handle
(** [announce] (default false): a round-1 non-coordinator proposer also
    sends its phase-1 estimate to the round-1 coordinator.  Required for
    termination when instance proposers are chosen by batching /
    pipelining (the coordinator may never propose the instance itself);
    off by default so unbatched traffic is unchanged. *)

val register_codec : unit -> unit
(** Register this layer's payload codecs with {!Ics_codec.Codec}
    (idempotent); {!Ics_core.Codecs.ensure} calls every layer's. *)
