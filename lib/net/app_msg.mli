(** Application messages submitted to atomic broadcast.

    The simulator never materializes payload contents — only their size
    matters for performance, and only their identity matters for
    correctness — so a message is its identifier, its payload size and its
    submission time. *)

module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type t = {
  id : Msg_id.t;
  body_bytes : int;  (** application payload size in bytes *)
  created_at : Time.t;  (** when [abroadcast] was invoked *)
  blob : int64;
      (** opaque application command carried in the payload's first eight
          bytes; [0L] (the default) means "content-free filler" and keeps
          the pre-app wire encoding byte-identical *)
}

val make :
  ?blob:int64 -> id:Msg_id.t -> body_bytes:int -> created_at:Time.t -> unit -> t
(** @raise Invalid_argument when a non-zero [blob] is given with
    [body_bytes < 8] — the blob rides inside the payload bytes, so there
    must be room for it. *)

val origin : t -> Pid.t
val pp : Format.formatter -> t -> unit

val rb_body_bytes : t -> int
(** Encoded size when carried by a broadcast primitive: identifier plus
    payload. *)
