(** Messages exchanged by simulated processes.

    The payload type is an extensible variant: each protocol layer declares
    its own constructors and registers a handler for its layer token, so the
    transport stays independent of the protocols above it. *)

module Pid = Ics_sim.Pid
module Time = Ics_sim.Time

type payload = ..
(** Extended by each protocol layer, e.g.
    [type Message.payload += Rb_data of ...]. *)

type payload += Ping
(** A trivial payload used by tests and the failure detector. *)

type t = {
  src : Pid.t;
  dst : Pid.t;
  layer : Layer.t;  (** interned dispatch key, e.g. ["rb"], ["consensus"] *)
  payload : payload;
  body_bytes : int;  (** encoded payload size, excluding framing *)
  sent_at : Time.t;
}

val wire_size : t -> int
(** [body_bytes + Wire.header_bytes]. *)

val layer_name : t -> string
(** The layer's name; what scripted network rules match on. *)

val pp : Format.formatter -> t -> unit
(** Renders src/dst/layer/size; payloads are opaque. *)
